(* rpki-sim: command-line driver for the misbehaving-authorities toolkit.

   Subcommands:
     show     — print the model RPKI hierarchy (Figure 2)
     validate — sync a relying party and list VRPs and issues
     ov       — classify a route against the model RPKI
     whack    — plan (and optionally execute) a targeted whack
     monitor  — run a manipulation and show what a monitor would report
     sim      — run the Section 6 closed-loop timeline
     grid     — print the Figure 5 validity grid
     transparency — run the split-view attack under gossiping vantages
     gossip   — partial-mesh overlays and Byzantine equivocating vantages
     soak     — long-run endurance: segmented persistence and eviction curves
     scale    — split-view detection on a generated internet-scale world *)

open Cmdliner
open Rpki_core
open Rpki_repo
open Rpki_ip

(* --- shared arguments --- *)

let fig5_right =
  let doc = "Include Sprint's covering ROA (63.160.0.0/12-13, AS 1239), i.e. Figure 5 right." in
  Arg.(value & flag & info [ "fig5-right" ] ~doc)

let build_model ~right =
  let m = Model.build () in
  if right then ignore (Model.add_fig5_right_roa m ~now:1);
  m

let sync_model m =
  let rp = Model.relying_party m in
  let r = Relying_party.sync rp ~now:1 ~universe:m.Model.universe () in
  (r, r.Relying_party.index)

let overlay_conv =
  let parse s =
    match Gossip.Overlay.of_string s with
    | Some o -> Ok o
    | None ->
      Error (`Msg (Printf.sprintf "unknown overlay %S (want full|k:N|star:N|random:N)" s))
  in
  Arg.conv (parse, fun ppf o -> Format.pp_print_string ppf (Gossip.Overlay.to_string o))

let overlay_arg =
  Arg.(value & opt overlay_conv Gossip.Overlay.Full_mesh
       & info [ "overlay" ] ~docv:"SPEC"
           ~doc:"Gossip overlay: $(b,full) (every pair), $(b,k:N) (seeded k-regular \
                 ring+chords), $(b,star:N) (N monitor hubs), $(b,random:N) (fresh \
                 N-peer sample each round).")

(* --- show --- *)

let show_cmd =
  let run right =
    let m = build_model ~right in
    print_string (Model.render m)
  in
  Cmd.v (Cmd.info "show" ~doc:"Print the model RPKI hierarchy (Figure 2)")
    Term.(const run $ fig5_right)

(* --- validate --- *)

let validate_cmd =
  let run right =
    let m = build_model ~right in
    let result, _ = sync_model m in
    Printf.printf "VRPs (%d):\n" (List.length result.Relying_party.vrps);
    List.iter (fun v -> Printf.printf "  %s\n" (Vrp.to_string v)) result.Relying_party.vrps;
    Printf.printf "issues (%d):\n" (List.length result.Relying_party.issues);
    List.iter
      (fun (i : Relying_party.issue) ->
        Printf.printf "  [%s] %s %s: %s\n"
          (Validation.issue_kind_to_string i.Relying_party.kind)
          i.Relying_party.uri
          (Option.value i.Relying_party.filename ~default:"-")
          i.Relying_party.reason)
      result.Relying_party.issues;
    (match Relying_party.issue_counts result.Relying_party.issues with
    | [] -> ()
    | counts ->
      Printf.printf "issues by category:\n";
      List.iter
        (fun (kind, n) ->
          Printf.printf "  %-24s %d\n" (Validation.issue_kind_to_string kind) n)
        counts)
  in
  Cmd.v (Cmd.info "validate" ~doc:"Sync a relying party against the model RPKI")
    Term.(const run $ fig5_right)

(* --- ov --- *)

let prefix_arg =
  let parse s =
    match V4.Prefix.of_string s with
    | Some p -> Ok p
    | None -> Error (`Msg (Printf.sprintf "bad prefix %S (want e.g. 63.174.16.0/20)" s))
  in
  Arg.conv (parse, fun fmt p -> Format.pp_print_string fmt (V4.Prefix.to_string p))

let ov_cmd =
  let prefix =
    Arg.(required & pos 0 (some prefix_arg) None & info [] ~docv:"PREFIX" ~doc:"Route prefix.")
  in
  let origin =
    Arg.(required & pos 1 (some int) None & info [] ~docv:"ORIGIN-AS" ~doc:"Origin AS number.")
  in
  let run right prefix origin =
    let m = build_model ~right in
    let _, idx = sync_model m in
    let route = Route.make prefix origin in
    let state, matching, covering = Origin_validation.explain idx route in
    Printf.printf "%s -> %s\n" (Route.to_string route)
      (Origin_validation.state_to_string state);
    List.iter (fun v -> Printf.printf "  matching: %s\n" (Vrp.to_string v)) matching;
    List.iter (fun v -> Printf.printf "  covering: %s\n" (Vrp.to_string v)) covering
  in
  Cmd.v
    (Cmd.info "ov" ~doc:"Classify a route (origin validation) against the model RPKI")
    Term.(const run $ fig5_right $ prefix $ origin)

(* --- whack --- *)

let whack_cmd =
  let target =
    let doc = "Target: 20 = ROA (63.174.16.0/20, AS 17054); 22 = ROA (63.174.16.0/22, AS 7341)." in
    Arg.(value & opt int 20 & info [ "target" ] ~doc)
  in
  let execute =
    Arg.(value & flag & info [ "execute" ] ~doc:"Execute the plan and report collateral.")
  in
  let run target execute =
    let m = Model.build () in
    let target_filename, target_vrps =
      match target with
      | 20 -> (m.Model.roa_target20, [ Vrp.make ~max_len:20 (V4.p "63.174.16.0/20") 17054 ])
      | 22 -> (m.Model.roa_target22, [ Vrp.make ~max_len:22 (V4.p "63.174.16.0/22") 7341 ])
      | _ -> failwith "--target must be 20 or 22"
    in
    let plan =
      Rpki_attack.Whack.plan_targeted ~manipulator:m.Model.sprint ~target_issuer:"Continental"
        ~target_filename
    in
    print_string (Rpki_attack.Whack.describe plan);
    if execute then begin
      let rp = Model.relying_party m in
      let d, collateral =
        Rpki_attack.Assess.measure ~rp ~universe:m.Model.universe ~now:1 ~target:target_vrps
          (fun () -> ignore (Rpki_attack.Whack.execute ~manipulator:m.Model.sprint plan ~now:1))
      in
      Printf.printf "whacked: %s\ncollateral: %d\n"
        (String.concat ", " (List.map Vrp.to_string d.Rpki_attack.Assess.net_lost))
        (List.length collateral)
    end
  in
  Cmd.v
    (Cmd.info "whack" ~doc:"Plan a targeted grandchild whack (Section 3.1)")
    Term.(const run $ target $ execute)

(* --- monitor --- *)

let monitor_cmd =
  let action =
    let doc = "Manipulation to observe: stealth-delete, revoke, shrink, mbb." in
    Arg.(value & opt string "mbb" & info [ "action" ] ~doc)
  in
  let run action =
    let m = Model.build () in
    let before = Rpki_monitor.Monitor.take ~now:1 m.Model.universe in
    (match action with
    | "stealth-delete" ->
      Authority.stealth_delete_roa m.Model.continental ~filename:m.Model.roa_cb_25 ~now:2
    | "revoke" -> Authority.revoke_roa m.Model.continental ~filename:m.Model.roa_cb_25 ~now:2
    | "shrink" | "mbb" ->
      let target_filename =
        if action = "shrink" then m.Model.roa_target20 else m.Model.roa_target22
      in
      let plan =
        Rpki_attack.Whack.plan_targeted ~manipulator:m.Model.sprint ~target_issuer:"Continental"
          ~target_filename
      in
      ignore (Rpki_attack.Whack.execute ~manipulator:m.Model.sprint plan ~now:2)
    | other -> failwith (Printf.sprintf "unknown action %S" other));
    let after = Rpki_monitor.Monitor.take ~now:2 m.Model.universe in
    List.iter
      (fun a -> Format.printf "%a@." Rpki_monitor.Monitor.pp_alert a)
      (Rpki_monitor.Monitor.diff ~before ~after)
  in
  Cmd.v
    (Cmd.info "monitor" ~doc:"Run a manipulation and print the monitor's alerts")
    Term.(const run $ action)

(* --- sim --- *)

let policy_arg =
  let parse = function
    | "drop" -> Ok Rpki_bgp.Policy.Drop_invalid
    | "depref" -> Ok Rpki_bgp.Policy.Depref_invalid
    | "ignore" -> Ok Rpki_bgp.Policy.Ignore_rpki
    | s -> Error (`Msg (Printf.sprintf "unknown policy %S (want drop|depref|ignore)" s))
  in
  Arg.conv (parse, fun fmt p -> Format.pp_print_string fmt (Rpki_bgp.Policy.to_string p))

let sim_cmd =
  let policy =
    Arg.(value & opt policy_arg Rpki_bgp.Policy.Drop_invalid
         & info [ "policy" ] ~doc:"Relying-party policy: drop, depref or ignore.")
  in
  let run policy =
    let sc, hist = Rpki_sim.Loop.run_section6 ~policy () in
    List.iter (fun r -> Format.printf "%a@." Rpki_sim.Loop.pp_record r) hist;
    match Relying_party.last_result sc.Rpki_sim.Loop.sim.Rpki_sim.Loop.rp with
    | None -> ()
    | Some result -> (
      match Relying_party.issue_counts result.Relying_party.issues with
      | [] -> ()
      | counts ->
        Printf.printf "final sync issues by category:\n";
        List.iter
          (fun (kind, n) ->
            Printf.printf "  %-24s %d\n" (Validation.issue_kind_to_string kind) n)
          counts)
  in
  Cmd.v
    (Cmd.info "sim" ~doc:"Run the Section 6 transient-fault timeline")
    Term.(const run $ policy)

(* --- faultmix --- *)

let faultmix_cmd =
  let rate =
    Arg.(value & opt float 0.2
         & info [ "rate" ] ~doc:"Per-authority per-tick fault probability, in [0,1].")
  in
  let ticks =
    Arg.(value & opt int 12 & info [ "ticks" ] ~doc:"Simulation length, in ticks.")
  in
  let seed = Arg.(value & opt int 7 & info [ "seed" ] ~doc:"Sampler seed.") in
  let unsafe =
    let parse = function
      | "accept" -> Ok Relying_party.Unsafe_accept
      | "warn" -> Ok Relying_party.Unsafe_warn
      | "reject" -> Ok Relying_party.Unsafe_reject
      | s -> Error (`Msg (Printf.sprintf "bad unsafe policy %S (accept|warn|reject)" s))
    in
    let print fmt p =
      Format.pp_print_string fmt (Relying_party.unsafe_policy_to_string p)
    in
    Arg.(value & opt (conv (parse, print)) Relying_party.Unsafe_warn
         & info [ "unsafe" ] ~doc:"Unsafe-VRP policy: accept, warn or reject.")
  in
  let run rate ticks seed unsafe =
    let rig = Rpki_sim.Loop.fault_mix_scenario ~seed ~rate ~unsafe () in
    let all_issues = ref [] in
    for now = 1 to ticks do
      let injections, r = Rpki_sim.Loop.fault_mix_step rig ~now in
      List.iter
        (fun (inj : Fault_mix.injection) ->
          Printf.printf "t%d inject %s: %s\n" now
            (Fault_corpus.to_string inj.Fault_mix.inj_category)
            inj.Fault_mix.inj_description)
        injections;
      Format.printf "%a (unsafe %d)@." Rpki_sim.Loop.pp_record r
        r.Rpki_sim.Loop.unsafe_count;
      match Relying_party.last_result rig.Rpki_sim.Loop.fm_sim.Rpki_sim.Loop.rp with
      | Some result -> all_issues := result.Relying_party.issues @ !all_issues
      | None -> ()
    done;
    let engine = rig.Rpki_sim.Loop.fm_engine in
    Printf.printf "injected %d, repaired %d, still active %d\n"
      (Fault_mix.injected engine) (Fault_mix.repaired engine)
      (List.length (Fault_mix.active engine));
    (match Fault_mix.counts engine with
    | [] -> ()
    | counts ->
      Printf.printf "injections by category:\n";
      List.iter
        (fun (c, n) -> Printf.printf "  %-24s %d\n" (Fault_corpus.to_string c) n)
        counts);
    match Relying_party.issue_counts !all_issues with
    | [] -> ()
    | counts ->
      Printf.printf "issues by category (all ticks):\n";
      List.iter
        (fun (kind, n) ->
          Printf.printf "  %-24s %d\n" (Validation.issue_kind_to_string kind) n)
        counts
  in
  Cmd.v
    (Cmd.info "faultmix"
       ~doc:"Run the closed loop under corpus-weighted background faults")
    Term.(const run $ rate $ ticks $ seed $ unsafe)

(* --- grid --- *)

let grid_cmd =
  let origin =
    Arg.(value & opt int 1239 & info [ "origin" ] ~doc:"Origin AS for the grid.")
  in
  let run right origin =
    let m = build_model ~right in
    let _, idx = sync_model m in
    List.iter
      (fun (s : Validity_grid.length_summary) ->
        Printf.printf "/%d: valid=%d invalid=%d unknown=%d\n" s.Validity_grid.len
          s.Validity_grid.valid s.Validity_grid.invalid s.Validity_grid.unknown)
      (Validity_grid.grid idx ~root:(V4.p "63.160.0.0/12") ~min_len:12 ~max_len:24 ~origin)
  in
  Cmd.v
    (Cmd.info "grid" ~doc:"Print the Figure 5 validity grid for an origin AS")
    Term.(const run $ fig5_right $ origin)

(* --- transparency --- *)

let transparency_cmd =
  let monitors =
    Arg.(value & opt int 2
         & info [ "monitors" ] ~doc:"Monitor vantages besides the victim (0-3; 0 = no gossip).")
  in
  let period =
    Arg.(value & opt int 1 & info [ "period" ] ~doc:"Gossip period in ticks.")
  in
  let grace =
    Arg.(value & opt int 4
         & info [ "grace" ] ~doc:"Victim's Suspenders-style VRP hold, in ticks.")
  in
  let overt =
    Arg.(value & flag
         & info [ "overt" ]
             ~doc:"Overt fork (keep the honest manifest) instead of a stealthy re-signed one.")
  in
  let vantages =
    Arg.(value & opt (some int) None
         & info [ "vantages" ] ~docv:"N"
             ~doc:"Total relying-party vantages (victim + N-1 monitors; monitors \
                   beyond the three named ones are synthesized).  Overrides \
                   $(b,--monitors).")
  in
  let no_valcache =
    Arg.(value & flag
         & info [ "no-valcache" ]
             ~doc:"Disable the shared cross-vantage validation cache: every \
                   vantage verifies every signature itself.")
  in
  let run monitors period grace overt vantages no_valcache overlay =
    let monitors = match vantages with Some n -> n - 1 | None -> monitors in
    let sv =
      Rpki_sim.Loop.split_view_scenario ~monitors ~grace ~gossip_period:period
        ~valcache:(not no_valcache) ~overlay ()
    in
    let t = sv.Rpki_sim.Loop.sv_sim in
    let stealth =
      if overt then Rpki_attack.Split_view.Overt else Rpki_attack.Split_view.Stealthy
    in
    let atk =
      Rpki_attack.Split_view.plan ~authority:sv.Rpki_sim.Loop.sv_model.Model.continental
        ~target_filename:sv.Rpki_sim.Loop.sv_target_filename ~stealth ()
    in
    for now = 1 to 10 do
      if now = 3 then begin
        Printf.printf "t3: %s\n" (Rpki_attack.Split_view.describe atk);
        Rpki_attack.Split_view.apply atk (Rpki_sim.Loop.transport t)
      end;
      let r = Rpki_sim.Loop.step t ~now in
      Format.printf "%a@." Rpki_sim.Loop.pp_record r
    done;
    let checks, saved =
      List.fold_left
        (fun (c, s) (r : Rpki_sim.Loop.tick_record) ->
          (c + r.Rpki_sim.Loop.sig_checks, s + r.Rpki_sim.Loop.sig_saved))
        (0, 0) (Rpki_sim.Loop.history t)
    in
    Printf.printf "\nRSA verifications: %d executed, %d answered by the shared cache\n"
      checks saved;
    match Rpki_sim.Loop.gossip_mesh t with
    | None -> print_endline "\nno gossip mesh: the fork goes undetected"
    | Some g ->
      let pulls, skipped, verifies, saved =
        List.fold_left
          (fun (p, s, v, m) (r : Rpki_sim.Loop.tick_record) ->
            match r.Rpki_sim.Loop.gossip_report with
            | None -> (p, s, v, m)
            | Some gr ->
              ( p + gr.Gossip.r_pulls, s + gr.Gossip.r_skipped,
                v + gr.Gossip.r_verifies, m + gr.Gossip.r_verifies_saved ))
          (0, 0, 0, 0) (Rpki_sim.Loop.history t)
      in
      Printf.printf
        "gossip (%s overlay): %d pulls, %d skipped, %d STH verifies (+%d memoized)\n"
        (Gossip.Overlay.to_string (Gossip.overlay g)) pulls skipped verifies saved;
      print_endline "";
      List.iter
        (fun a ->
          Format.printf "%a@." Rpki_monitor.Monitor.pp_alert
            (List.hd (Rpki_monitor.Monitor.gossip_alerts [ a ])))
        (Rpki_repo.Gossip.alarms g)
  in
  Cmd.v
    (Cmd.info "transparency"
       ~doc:"Run a split-view (mirror world) attack under gossiping vantages")
    Term.(const run $ monitors $ period $ grace $ overt $ vantages $ no_valcache
          $ overlay_arg)

(* --- gossip --- *)

let gossip_cmd =
  let vantages =
    Arg.(value & opt int 16
         & info [ "vantages" ] ~docv:"N"
             ~doc:"Total relying-party vantages (victim + N-1 monitors).")
  in
  let period =
    Arg.(value & opt int 1 & info [ "period" ] ~doc:"Gossip period in ticks.")
  in
  let byzantine =
    Arg.(value & opt int 0
         & info [ "byzantine" ] ~docv:"F"
             ~doc:"F monitor vantages turn Byzantine: each serves the victim an \
                   equivocating shadow log signed with its real log key, and stays \
                   silent in gossip rounds.")
  in
  let ticks =
    Arg.(value & opt int 8
         & info [ "ticks" ]
             ~doc:"Ticks to run.  The split view runs from t1 — the victim's first \
                   sync — so its log is forked from birth and only an honest \
                   cross-check can catch it.")
  in
  let run n period f ticks overlay =
    (* from the victim's first sync: a victim with honest pre-attack history
       self-detects any mirrored shadow (its first-seen record conflicts
       with the shadow's delta), which would defeat the equivocators *)
    let attack_at = 1 in
    let rec take k = function
      | [] -> []
      | _ when k <= 0 -> []
      | x :: tl -> x :: take (k - 1) tl
    in
    let sv =
      Rpki_sim.Loop.split_view_scenario ~monitors:(n - 1) ~gossip_period:period ~overlay ()
    in
    let t = sv.Rpki_sim.Loop.sv_sim in
    let model = sv.Rpki_sim.Loop.sv_model in
    let g = Option.get (Rpki_sim.Loop.gossip_mesh t) in
    let byz =
      take f
        (Rpki_util.Rng.shuffle (Rpki_util.Rng.create 0xb12a) sv.Rpki_sim.Loop.sv_monitors)
    in
    let atk =
      Rpki_attack.Split_view.plan ~authority:model.Model.continental
        ~target_filename:sv.Rpki_sim.Loop.sv_target_filename
        ~stealth:Rpki_attack.Split_view.Stealthy ()
    in
    let eqs =
      List.map
        (fun name ->
          let v = Rpki_sim.Loop.vantage t ~name in
          let shadow =
            Model.relying_party ~name ~asn:(Relying_party.asn v.Gossip.v_rp) model
          in
          let eq =
            Rpki_attack.Equivocator.plan ~universe:model.Model.universe ~name ~shadow
              ~fork_to:(fun r -> String.equal r "victim-rp") ()
          in
          Rpki_attack.Equivocator.apply eq g;
          Printf.printf "byzantine: %s\n" (Rpki_attack.Equivocator.describe eq);
          eq)
        byz
    in
    Printf.printf "overlay %s over %d vantages, %d byzantine, gossip every %d tick(s)\n\n"
      (Gossip.Overlay.to_string overlay) n f period;
    for now = 1 to ticks do
      if now = attack_at then begin
        Printf.printf "t%d: %s\n" now (Rpki_attack.Split_view.describe atk);
        Rpki_attack.Split_view.apply atk (Rpki_sim.Loop.transport t);
        List.iter
          (fun eq ->
            Rpki_attack.Split_view.apply atk (Rpki_attack.Equivocator.shadow_transport eq))
          eqs
      end;
      let r = Rpki_sim.Loop.step t ~now in
      match r.Rpki_sim.Loop.gossip_report with
      | Some gr -> Format.printf "t%d %a@." now Gossip.pp_report gr
      | None -> ()
    done;
    let names =
      List.map (fun (v : Gossip.vantage) -> v.Gossip.v_name) (Gossip.vantages g)
    in
    let honest_edge (a, b) =
      let honest x = not (List.mem x byz) in
      (String.equal a "victim-rp" && honest b && not (String.equal b "victim-rp"))
      || (String.equal b "victim-rp" && honest a && not (String.equal a "victim-rp"))
    in
    let honest_adjacent =
      List.exists
        (fun now ->
          List.exists honest_edge
            (Gossip.Overlay.pulls overlay ~seed:Gossip.Overlay.default_seed ~round:now names))
        (List.init (max 1 (ticks - attack_at + 1)) (fun i -> attack_at + i))
    in
    List.iter
      (fun eq ->
        Printf.printf "%s served the forked shadow %d time(s), the honest view %d\n"
          (Rpki_attack.Equivocator.name eq)
          (Rpki_attack.Equivocator.served_forked eq)
          (Rpki_attack.Equivocator.served_honest eq))
      eqs;
    Printf.printf "victim honest-connected after the attack: %b\n" honest_adjacent;
    (match Rpki_sim.Loop.first_fork_tick t with
     | Some tk -> Printf.printf "fork detected at t%d (+%d rounds after the attack)\n" tk (tk - attack_at)
     | None ->
       Printf.printf "fork NOT detected%s\n"
         (if honest_adjacent then "" else " — the victim's every neighbor is byzantine"))
  in
  Cmd.v
    (Cmd.info "gossip"
       ~doc:"Partial-mesh gossip overlays and Byzantine equivocating vantages")
    Term.(const run $ vantages $ period $ byzantine $ ticks $ overlay_arg)

(* --- restart --- *)

let restart_cmd =
  let fault_arg =
    let parse = function
      | "none" -> Ok None
      | "torn" -> Ok (Some Rpki_persist.Disk.Torn_write)
      | "partial" -> Ok (Some Rpki_persist.Disk.Partial_flush)
      | "bitflip" -> Ok (Some (Rpki_persist.Disk.Bit_flip 12345))
      | "drop-rename" -> Ok (Some Rpki_persist.Disk.Drop_rename)
      | s ->
        Error
          (`Msg (Printf.sprintf "unknown fault %S (want none|torn|partial|bitflip|drop-rename)" s))
    in
    let print fmt = function
      | None -> Format.pp_print_string fmt "none"
      | Some f -> Format.pp_print_string fmt (Rpki_persist.Disk.fault_to_string f)
    in
    Arg.conv (parse, print)
  in
  let fault =
    Arg.(value & opt fault_arg None
         & info [ "fault" ]
             ~doc:"Disk fault armed on the victim's last pre-crash snapshot: \
                   none, torn, partial, bitflip or drop-rename.")
  in
  let no_persist =
    Arg.(value & flag
         & info [ "no-persist" ]
             ~doc:"Disable snapshots entirely — the fresh-start oracle a rollback \
                   adversary exploits.")
  in
  let restart_at =
    Arg.(value & opt int 6 & info [ "restart-at" ] ~doc:"Tick the victim restarts on.")
  in
  let evidence =
    Arg.(value & opt (some string) None
         & info [ "evidence" ] ~docv:"FILE"
             ~doc:"Export the first verified rollback alarm as a portable DER \
                   evidence bundle to $(docv).")
  in
  let verify =
    Arg.(value & opt (some string) None
         & info [ "verify" ] ~docv:"FILE"
             ~doc:"Do not simulate: load the DER evidence bundle $(docv) and \
                   re-verify it offline under its embedded keys.")
  in
  let vantages =
    Arg.(value & opt (some int) None
         & info [ "vantages" ] ~docv:"N"
             ~doc:"Total relying-party vantages (victim + N-1 monitors; default 3).")
  in
  let no_valcache =
    Arg.(value & flag
         & info [ "no-valcache" ]
             ~doc:"Disable the shared cross-vantage validation cache.")
  in
  let run fault no_persist restart_at evidence verify vantages no_valcache =
    match verify with
    | Some file -> (
      let ic = open_in_bin file in
      let n = in_channel_length ic in
      let bytes = really_input_string ic n in
      close_in ic;
      match Evidence.verify bytes with
      | Ok alarm ->
        Printf.printf "VERIFIED: %s\n" (Gossip.describe_alarm alarm);
        print_endline
          "The bundle's two attested sides verify from scratch under its embedded\n\
           keys: genuine evidence, no trust in the exporter needed.  Whether to\n\
           trust those keys is yours to decide (compare fingerprints out-of-band)."
      | Error why ->
        Printf.printf "REJECTED: %s\n" why;
        exit 1)
    | None ->
      let persist = not no_persist in
      let monitors = match vantages with Some n -> n - 1 | None -> 2 in
      let rig =
        Rpki_sim.Loop.restart_scenario ~persist ~grace:0 ~monitors
          ~valcache:(not no_valcache) ()
      in
      let sv = rig.Rpki_sim.Loop.rr_sv in
      let t = sv.Rpki_sim.Loop.sv_sim in
      let model = sv.Rpki_sim.Loop.sv_model in
      let atk = Rpki_attack.Rollback.plan ~authority:model.Model.continental in
      let victim = "victim-rp" in
      for now = 1 to max 10 (restart_at + 3) do
        if now = 3 then begin
          Printf.printf "t3: authority revokes ROA (63.174.25.0/24, AS %d)\n"
            Model.as_continental;
          Authority.revoke_roa model.Model.continental ~filename:model.Model.roa_cb_25 ~now
        end;
        if now = 5 then Option.iter (Rpki_persist.Disk.inject rig.Rpki_sim.Loop.rr_disk) fault;
        if now = restart_at then begin
          let r =
            Rpki_sim.Loop.restart_vantage t ~name:victim ~now ~make:rig.Rpki_sim.Loop.rr_respawn
          in
          Printf.printf "t%d: victim restarts: %s\n" now (Relying_party.recovery_to_string r)
        end;
        let r = Rpki_sim.Loop.step t ~now in
        Format.printf "%a@." Rpki_sim.Loop.pp_record r;
        List.iter
          (fun rg -> Printf.printf "  REGRESSION: %s\n" (Relying_party.regression_to_string rg))
          r.Rpki_sim.Loop.regressions;
        if now = 2 then Rpki_attack.Rollback.capture atk ~now;
        if now = 5 then begin
          Rpki_sim.Loop.kill_vantage t ~name:victim;
          Rpki_attack.Rollback.apply atk (Rpki_sim.Loop.transport t);
          Printf.printf "t5: victim killed; %s\n" (Rpki_attack.Rollback.describe atk)
        end
      done;
      print_endline "";
      (match Rpki_sim.Loop.first_rollback_tick t with
      | Some tk -> Printf.printf "rollback detected at t%d\n" tk
      | None -> print_endline "rollback NOT detected (the fresh-start oracle)");
      match Rpki_sim.Loop.gossip_mesh t with
      | None -> ()
      | Some g -> (
        List.iter
          (fun a ->
            Format.printf "%a@." Rpki_monitor.Monitor.pp_alert
              (List.hd (Rpki_monitor.Monitor.gossip_alerts [ a ])))
          (Gossip.alarms g);
        match (evidence, Gossip.rollbacks g) with
        | None, _ -> ()
        | Some file, alarm :: _ -> (
          let key_of name =
            List.find_map
              (fun (v : Gossip.vantage) ->
                if String.equal v.Gossip.v_name name then
                  Some (Relying_party.transparency_key v.Gossip.v_rp)
                else None)
              (Gossip.vantages g)
          in
          match Evidence.export ~key_of alarm with
          | Ok bytes ->
            let oc = open_out_bin file in
            output_string oc bytes;
            close_out oc;
            Printf.printf "wrote %d-byte evidence bundle to %s (re-check: rpki_sim restart --verify %s)\n"
              (String.length bytes) file file
          | Error why -> Printf.printf "evidence export failed: %s\n" why)
        | Some _, [] ->
          print_endline "no rollback alarm was raised; nothing to export")
  in
  Cmd.v
    (Cmd.info "restart"
       ~doc:"Crash and restart the victim under a rollback adversary; optionally \
             export or offline-verify portable evidence")
    Term.(const run $ fault $ no_persist $ restart_at $ evidence $ verify $ vantages
          $ no_valcache)

(* --- rtr: the multiplexed serving plane --- *)

let rtr_cmd =
  let sessions =
    Arg.(value & opt int 256 & info [ "sessions" ] ~doc:"Router sessions to attach.")
  in
  let ticks =
    Arg.(value & opt int 12 & info [ "ticks" ] ~doc:"Publish/flush rounds to run.")
  in
  let churn =
    Arg.(value & opt int 16
         & info [ "churn" ] ~doc:"VRPs that change origin every round.")
  in
  let domains =
    Arg.(value & opt int 1
         & info [ "domains" ] ~doc:"Domains for the flush fan-out.")
  in
  let run sessions ticks churn domains =
    if sessions < 1 || ticks < 1 || churn < 0 || domains < 1 then
      failwith "rtr: --sessions/--ticks/--domains must be >= 1, --churn >= 0";
    let module Server = Rpki_rtr.Server in
    let universe = max 64 (4 * churn) in
    let set_at t =
      List.init universe (fun i ->
          let asn = if i < churn then 1000 + t else 100 + (i mod 50) in
          Vrp.make (V4.Prefix.make ((10 lsl 24) lor (i lsl 8)) 24) asn)
    in
    let server = Server.create () in
    let _ = List.init sessions (fun _ -> Server.attach server) in
    Printf.printf
      "%d sessions against one cache (%d VRPs, %d churned per round, %d domain%s)\n\n"
      sessions universe churn domains (if domains = 1 then "" else "s");
    for t = 0 to ticks - 1 do
      Server.publish server (set_at t);
      let rep = Server.flush ~domains server in
      Printf.printf
        "t%-3d serial %-4d notified %-5d delta %-5d reset %-4d skip %-5d %s\n" t
        rep.Server.fr_serial rep.Server.fr_notified rep.Server.fr_advanced
        (rep.Server.fr_resets) rep.Server.fr_skipped
        (if Server.all_synced server then "all-synced" else "DIVERGED")
    done;
    let st = Server.stats server in
    Printf.printf
      "\nserials %d, notify batches %d (%d coalesced)\n\
       encoded %d bytes in %d encodings (%d B/serial); replayed %d responses\n\
       sent %d bytes / received %d bytes across %d sessions\n"
      st.Server.serial_bumps st.Server.notify_batches st.Server.coalesced
      st.Server.bytes_encoded st.Server.encode_calls
      (st.Server.bytes_encoded / max 1 st.Server.serial_bumps)
      st.Server.replays st.Server.bytes_sent st.Server.bytes_received sessions
  in
  Cmd.v
    (Cmd.info "rtr"
       ~doc:"Fan one RTR cache out to many router sessions: encode-once deltas, \
             one batched serial-notify per round")
    Term.(const run $ sessions $ ticks $ churn $ domains)

(* --- soak: long-run endurance --- *)

let soak_cmd =
  let ticks =
    Arg.(value & opt int 2000
         & info [ "ticks" ] ~doc:"Simulation length in ticks.")
  in
  let churn =
    Arg.(value & opt int 0
         & info [ "churn" ] ~doc:"Re-issue ARIN's subtree every N ticks (0 = no churn).")
  in
  let no_compact =
    Arg.(value & flag
         & info [ "no-compact" ] ~doc:"Never fold persistence chains into their base snapshot.")
  in
  let no_evict =
    Arg.(value & flag
         & info [ "no-evict" ] ~doc:"Disable epoch-based Valcache eviction at tick end.")
  in
  let full_snapshots =
    Arg.(value & flag
         & info [ "full-snapshots" ]
             ~doc:"Force O(history) full saves instead of O(delta) segments (the \
                   pre-segmentation baseline).")
  in
  let run ticks churn no_compact no_evict full_snapshots =
    if ticks < 1 then failwith "soak: --ticks must be >= 1";
    if churn < 0 then failwith "soak: --churn must be >= 0";
    let module Loop = Rpki_sim.Loop in
    let config =
      { Loop.default_soak with
        Loop.sk_ticks = ticks; sk_churn_every = churn;
        sk_compact_every = (if no_compact then 0 else Loop.default_soak.Loop.sk_compact_every);
        sk_evict = not no_evict; sk_full_snapshots = full_snapshots;
        sk_sample_every = max 1 (ticks / 10) }
    in
    Printf.printf
      "soak: %d ticks, churn every %s, %s saves, compaction %s, eviction %s\n\n"
      ticks
      (if churn = 0 then "never" else Printf.sprintf "%d ticks" churn)
      (if full_snapshots then "full-snapshot" else "segmented")
      (if config.Loop.sk_compact_every = 0 then "off"
       else Printf.sprintf "every %d ticks" config.Loop.sk_compact_every)
      (if no_evict then "off" else "on");
    let r = Loop.run_soak ~config () in
    Printf.printf
      "%6s %12s %10s %10s %9s %12s %8s %10s %9s\n"
      "tick" "live words" "snap B" "chain B" "segments" "save B" "log" "resident" "evicted";
    List.iter
      (fun (s : Loop.soak_sample) ->
        let resident, evicted =
          match s.Loop.so_residency with
          | None -> ("-", "-")
          | Some rs ->
            ( string_of_int (rs.Valcache.rs_verdicts + rs.Valcache.rs_outcomes),
              string_of_int (rs.Valcache.rs_verdicts_evicted + rs.Valcache.rs_outcomes_evicted) )
        in
        Printf.printf "%6d %12d %10d %10d %9d %12d %8d %10s %9s\n"
          s.Loop.so_tick s.Loop.so_live_words s.Loop.so_snapshot_bytes
          s.Loop.so_chain_bytes s.Loop.so_segments s.Loop.so_save_bytes
          s.Loop.so_log_size resident evicted)
      r.Loop.so_samples;
    Printf.printf "\n%d saves, %d bytes written, %.1f bytes/save\n"
      r.Loop.so_saves r.Loop.so_total_save_bytes r.Loop.so_bytes_per_save
  in
  Cmd.v
    (Cmd.info "soak"
       ~doc:"Run the long-run endurance soak: segmented persistence, Valcache \
             eviction and memory growth curves over thousands of ticks")
    Term.(const run $ ticks $ churn $ no_compact $ no_evict $ full_snapshots)

(* --- scale: generated worlds --- *)

let scale_cmd =
  let ases =
    Arg.(value & opt int 1000
         & info [ "ases" ] ~doc:"Number of ASes in the generated topology.")
  in
  let seed =
    Arg.(value & opt int 11 & info [ "seed" ] ~doc:"Generator seed.")
  in
  let monitors =
    Arg.(value & opt int 3
         & info [ "monitors" ] ~doc:"Monitor vantages gossiping with the victim RP.")
  in
  let placement =
    Arg.(value & opt string "degree"
         & info [ "placement" ]
             ~doc:"Vantage placement policy: degree, role, random or random:SEED.")
  in
  let ticks =
    Arg.(value & opt int 10 & info [ "ticks" ] ~doc:"Simulation length in ticks.")
  in
  let attack_at =
    Arg.(value & opt int 3
         & info [ "attack-at" ]
             ~doc:"Tick at which the split-view fork is applied (0 = no attack).")
  in
  let run ases seed monitors placement ticks attack_at =
    if ases < 8 then failwith "scale: --ases must be >= 8";
    if ticks < 1 then failwith "scale: --ticks must be >= 1";
    let module World = Rpki_world.Synthesis in
    let module Placement = Rpki_world.Placement in
    let module Loop = Rpki_sim.Loop in
    let placement =
      match Placement.policy_of_string placement with
      | Some p -> p
      | None -> failwith (Printf.sprintf "scale: unknown placement %S" placement)
    in
    let spec =
      { World.default_spec with
        World.graph =
          { Rpki_bgp.As_graph.default_spec with Rpki_bgp.As_graph.ases; seed } }
    in
    let rig = Loop.world_scenario ~monitors ~placement ~world:spec () in
    print_endline (World.summary rig.Loop.wr_world);
    Printf.printf "monitors (%s): %s\n\n"
      (Placement.policy_to_string placement)
      (String.concat ", " rig.Loop.wr_monitors);
    let sim = rig.Loop.wr_sim in
    let atk =
      Rpki_attack.Split_view.plan ~authority:rig.Loop.wr_target_authority
        ~target_filename:rig.Loop.wr_target_filename ()
    in
    for now = 1 to ticks do
      if now = attack_at then begin
        Printf.printf "t%d: forking the victim CA's view (split-view attack)\n" now;
        Rpki_attack.Split_view.apply atk (Loop.transport sim)
      end;
      let r = Loop.step sim ~now in
      Printf.printf "t%-3d vrps %-5d probe %s%s\n" now r.Loop.vrp_count
        (String.concat ","
           (List.map (fun (n, ok) -> Printf.sprintf "%s:%b" n ok) r.Loop.probe_results))
        (match r.Loop.gossip_report with
        | Some rep when rep.Gossip.r_alarms <> [] ->
          "  FORK: "
          ^ String.concat "; " (List.map Gossip.describe_alarm rep.Gossip.r_alarms)
        | _ -> "")
    done;
    match (attack_at > 0 && attack_at <= ticks, Loop.first_fork_tick sim) with
    | false, _ -> ()
    | true, Some tk ->
      Printf.printf "\nfork detected at t%d (latency %d ticks after the attack)\n" tk
        (tk - attack_at)
    | true, None -> Printf.printf "\nfork NOT detected within %d ticks\n" ticks
  in
  Cmd.v
    (Cmd.info "scale"
       ~doc:"Generate an internet-scale AS topology, synthesize an RPKI universe \
             onto it, and re-run the split-view detection scenario on the result")
    Term.(const run $ ases $ seed $ monitors $ placement $ ticks $ attack_at)

let () =
  let doc = "the misbehaving-RPKI-authorities toolkit (HotNets'13 reproduction)" in
  let info = Cmd.info "rpki-sim" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ show_cmd; validate_cmd; ov_cmd; whack_cmd; monitor_cmd; sim_cmd;
            faultmix_cmd; grid_cmd; transparency_cmd; gossip_cmd; restart_cmd; rtr_cmd;
            soak_cmd; scale_cmd ]))
