(* rpki-sim: command-line driver for the misbehaving-authorities toolkit.

   Subcommands:
     show     — print the model RPKI hierarchy (Figure 2)
     validate — sync a relying party and list VRPs and issues
     ov       — classify a route against the model RPKI
     whack    — plan (and optionally execute) a targeted whack
     monitor  — run a manipulation and show what a monitor would report
     sim      — run the Section 6 closed-loop timeline
     grid     — print the Figure 5 validity grid
     transparency — run the split-view attack under gossiping vantages *)

open Cmdliner
open Rpki_core
open Rpki_repo
open Rpki_ip

(* --- shared arguments --- *)

let fig5_right =
  let doc = "Include Sprint's covering ROA (63.160.0.0/12-13, AS 1239), i.e. Figure 5 right." in
  Arg.(value & flag & info [ "fig5-right" ] ~doc)

let build_model ~right =
  let m = Model.build () in
  if right then ignore (Model.add_fig5_right_roa m ~now:1);
  m

let sync_model m =
  let rp = Model.relying_party m in
  let r = Relying_party.sync rp ~now:1 ~universe:m.Model.universe () in
  (r, r.Relying_party.index)

(* --- show --- *)

let show_cmd =
  let run right =
    let m = build_model ~right in
    print_string (Model.render m)
  in
  Cmd.v (Cmd.info "show" ~doc:"Print the model RPKI hierarchy (Figure 2)")
    Term.(const run $ fig5_right)

(* --- validate --- *)

let validate_cmd =
  let run right =
    let m = build_model ~right in
    let result, _ = sync_model m in
    Printf.printf "VRPs (%d):\n" (List.length result.Relying_party.vrps);
    List.iter (fun v -> Printf.printf "  %s\n" (Vrp.to_string v)) result.Relying_party.vrps;
    Printf.printf "issues (%d):\n" (List.length result.Relying_party.issues);
    List.iter
      (fun (i : Relying_party.issue) ->
        Printf.printf "  %s %s: %s\n" i.Relying_party.uri
          (Option.value i.Relying_party.filename ~default:"-")
          i.Relying_party.reason)
      result.Relying_party.issues
  in
  Cmd.v (Cmd.info "validate" ~doc:"Sync a relying party against the model RPKI")
    Term.(const run $ fig5_right)

(* --- ov --- *)

let prefix_arg =
  let parse s =
    match V4.Prefix.of_string s with
    | Some p -> Ok p
    | None -> Error (`Msg (Printf.sprintf "bad prefix %S (want e.g. 63.174.16.0/20)" s))
  in
  Arg.conv (parse, fun fmt p -> Format.pp_print_string fmt (V4.Prefix.to_string p))

let ov_cmd =
  let prefix =
    Arg.(required & pos 0 (some prefix_arg) None & info [] ~docv:"PREFIX" ~doc:"Route prefix.")
  in
  let origin =
    Arg.(required & pos 1 (some int) None & info [] ~docv:"ORIGIN-AS" ~doc:"Origin AS number.")
  in
  let run right prefix origin =
    let m = build_model ~right in
    let _, idx = sync_model m in
    let route = Route.make prefix origin in
    let state, matching, covering = Origin_validation.explain idx route in
    Printf.printf "%s -> %s\n" (Route.to_string route)
      (Origin_validation.state_to_string state);
    List.iter (fun v -> Printf.printf "  matching: %s\n" (Vrp.to_string v)) matching;
    List.iter (fun v -> Printf.printf "  covering: %s\n" (Vrp.to_string v)) covering
  in
  Cmd.v
    (Cmd.info "ov" ~doc:"Classify a route (origin validation) against the model RPKI")
    Term.(const run $ fig5_right $ prefix $ origin)

(* --- whack --- *)

let whack_cmd =
  let target =
    let doc = "Target: 20 = ROA (63.174.16.0/20, AS 17054); 22 = ROA (63.174.16.0/22, AS 7341)." in
    Arg.(value & opt int 20 & info [ "target" ] ~doc)
  in
  let execute =
    Arg.(value & flag & info [ "execute" ] ~doc:"Execute the plan and report collateral.")
  in
  let run target execute =
    let m = Model.build () in
    let target_filename, target_vrps =
      match target with
      | 20 -> (m.Model.roa_target20, [ Vrp.make ~max_len:20 (V4.p "63.174.16.0/20") 17054 ])
      | 22 -> (m.Model.roa_target22, [ Vrp.make ~max_len:22 (V4.p "63.174.16.0/22") 7341 ])
      | _ -> failwith "--target must be 20 or 22"
    in
    let plan =
      Rpki_attack.Whack.plan_targeted ~manipulator:m.Model.sprint ~target_issuer:"Continental"
        ~target_filename
    in
    print_string (Rpki_attack.Whack.describe plan);
    if execute then begin
      let rp = Model.relying_party m in
      let d, collateral =
        Rpki_attack.Assess.measure ~rp ~universe:m.Model.universe ~now:1 ~target:target_vrps
          (fun () -> ignore (Rpki_attack.Whack.execute ~manipulator:m.Model.sprint plan ~now:1))
      in
      Printf.printf "whacked: %s\ncollateral: %d\n"
        (String.concat ", " (List.map Vrp.to_string d.Rpki_attack.Assess.net_lost))
        (List.length collateral)
    end
  in
  Cmd.v
    (Cmd.info "whack" ~doc:"Plan a targeted grandchild whack (Section 3.1)")
    Term.(const run $ target $ execute)

(* --- monitor --- *)

let monitor_cmd =
  let action =
    let doc = "Manipulation to observe: stealth-delete, revoke, shrink, mbb." in
    Arg.(value & opt string "mbb" & info [ "action" ] ~doc)
  in
  let run action =
    let m = Model.build () in
    let before = Rpki_monitor.Monitor.take ~now:1 m.Model.universe in
    (match action with
    | "stealth-delete" ->
      Authority.stealth_delete_roa m.Model.continental ~filename:m.Model.roa_cb_25 ~now:2
    | "revoke" -> Authority.revoke_roa m.Model.continental ~filename:m.Model.roa_cb_25 ~now:2
    | "shrink" | "mbb" ->
      let target_filename =
        if action = "shrink" then m.Model.roa_target20 else m.Model.roa_target22
      in
      let plan =
        Rpki_attack.Whack.plan_targeted ~manipulator:m.Model.sprint ~target_issuer:"Continental"
          ~target_filename
      in
      ignore (Rpki_attack.Whack.execute ~manipulator:m.Model.sprint plan ~now:2)
    | other -> failwith (Printf.sprintf "unknown action %S" other));
    let after = Rpki_monitor.Monitor.take ~now:2 m.Model.universe in
    List.iter
      (fun a -> Format.printf "%a@." Rpki_monitor.Monitor.pp_alert a)
      (Rpki_monitor.Monitor.diff ~before ~after)
  in
  Cmd.v
    (Cmd.info "monitor" ~doc:"Run a manipulation and print the monitor's alerts")
    Term.(const run $ action)

(* --- sim --- *)

let policy_arg =
  let parse = function
    | "drop" -> Ok Rpki_bgp.Policy.Drop_invalid
    | "depref" -> Ok Rpki_bgp.Policy.Depref_invalid
    | "ignore" -> Ok Rpki_bgp.Policy.Ignore_rpki
    | s -> Error (`Msg (Printf.sprintf "unknown policy %S (want drop|depref|ignore)" s))
  in
  Arg.conv (parse, fun fmt p -> Format.pp_print_string fmt (Rpki_bgp.Policy.to_string p))

let sim_cmd =
  let policy =
    Arg.(value & opt policy_arg Rpki_bgp.Policy.Drop_invalid
         & info [ "policy" ] ~doc:"Relying-party policy: drop, depref or ignore.")
  in
  let run policy =
    let _, hist = Rpki_sim.Loop.run_section6 ~policy () in
    List.iter (fun r -> Format.printf "%a@." Rpki_sim.Loop.pp_record r) hist
  in
  Cmd.v
    (Cmd.info "sim" ~doc:"Run the Section 6 transient-fault timeline")
    Term.(const run $ policy)

(* --- grid --- *)

let grid_cmd =
  let origin =
    Arg.(value & opt int 1239 & info [ "origin" ] ~doc:"Origin AS for the grid.")
  in
  let run right origin =
    let m = build_model ~right in
    let _, idx = sync_model m in
    List.iter
      (fun (s : Validity_grid.length_summary) ->
        Printf.printf "/%d: valid=%d invalid=%d unknown=%d\n" s.Validity_grid.len
          s.Validity_grid.valid s.Validity_grid.invalid s.Validity_grid.unknown)
      (Validity_grid.grid idx ~root:(V4.p "63.160.0.0/12") ~min_len:12 ~max_len:24 ~origin)
  in
  Cmd.v
    (Cmd.info "grid" ~doc:"Print the Figure 5 validity grid for an origin AS")
    Term.(const run $ fig5_right $ origin)

(* --- transparency --- *)

let transparency_cmd =
  let monitors =
    Arg.(value & opt int 2
         & info [ "monitors" ] ~doc:"Monitor vantages besides the victim (0-3; 0 = no gossip).")
  in
  let period =
    Arg.(value & opt int 1 & info [ "period" ] ~doc:"Gossip period in ticks.")
  in
  let grace =
    Arg.(value & opt int 4
         & info [ "grace" ] ~doc:"Victim's Suspenders-style VRP hold, in ticks.")
  in
  let overt =
    Arg.(value & flag
         & info [ "overt" ]
             ~doc:"Overt fork (keep the honest manifest) instead of a stealthy re-signed one.")
  in
  let run monitors period grace overt =
    let sv = Rpki_sim.Loop.split_view_scenario ~monitors ~grace ~gossip_period:period () in
    let t = sv.Rpki_sim.Loop.sv_sim in
    let stealth =
      if overt then Rpki_attack.Split_view.Overt else Rpki_attack.Split_view.Stealthy
    in
    let atk =
      Rpki_attack.Split_view.plan ~authority:sv.Rpki_sim.Loop.sv_model.Model.continental
        ~target_filename:sv.Rpki_sim.Loop.sv_target_filename ~stealth ()
    in
    for now = 1 to 10 do
      if now = 3 then begin
        Printf.printf "t3: %s\n" (Rpki_attack.Split_view.describe atk);
        Rpki_attack.Split_view.apply atk (Rpki_sim.Loop.transport t)
      end;
      let r = Rpki_sim.Loop.step t ~now in
      Format.printf "%a@." Rpki_sim.Loop.pp_record r
    done;
    match Rpki_sim.Loop.gossip_mesh t with
    | None -> print_endline "\nno gossip mesh: the fork goes undetected"
    | Some g ->
      print_endline "";
      List.iter
        (fun a ->
          Format.printf "%a@." Rpki_monitor.Monitor.pp_alert
            (List.hd (Rpki_monitor.Monitor.gossip_alerts [ a ])))
        (Rpki_repo.Gossip.alarms g)
  in
  Cmd.v
    (Cmd.info "transparency"
       ~doc:"Run a split-view (mirror world) attack under gossiping vantages")
    Term.(const run $ monitors $ period $ grace $ overt)

let () =
  let doc = "the misbehaving-RPKI-authorities toolkit (HotNets'13 reproduction)" in
  let info = Cmd.info "rpki-sim" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ show_cmd; validate_cmd; ov_cmd; whack_cmd; monitor_cmd; sim_cmd; grid_cmd;
            transparency_cmd ]))
