(** Generation-numbered snapshot store with atomic write-then-rename.

    A store owns two files on the simulated disk: the snapshot itself and a
    generation marker written after the snapshot rename.  A crash between
    the two renames is detectable: the marker runs ahead of the snapshot and
    [load] reports [Stale] instead of silently serving the old generation. *)

type t

val create : Disk.t -> name:string -> t
val name : t -> string
val disk : t -> Disk.t

val save : t -> now:int -> Codec.record list -> int
(** Write a new snapshot; returns its generation (marker + 1). *)

type load_error =
  | No_snapshot
  | Corrupt of string
  | Stale of { snap_generation : int; marker : int }

val load_error_to_string : load_error -> string

val load : t -> (Codec.snapshot, load_error) result
val generation : t -> int
(** The marker's generation; 0 if never saved. *)

val snapshot_bytes : t -> int
(** Size of the current snapshot file; 0 if none. *)

val wipe : t -> unit
(** Delete snapshot, marker and temporaries (simulates losing the disk). *)
