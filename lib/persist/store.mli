(** Generation-numbered snapshot store with atomic write-then-rename: a
    checkpointed base snapshot plus an append-only chain of sealed segments.

    A store owns a base snapshot file, zero or more segment files (one per
    {!append}, named by generation) and a generation marker written after
    every data rename.  A crash between the two renames is detectable: the
    marker runs ahead of the chain and {!load_chain} reports [Stale] instead
    of silently serving an older generation.

    {!save} writes a full base (retiring any segments) — the O(history)
    path.  {!append} seals a new segment holding only the records handed to
    it — the O(delta) path a long-running relying party saves through.
    {!compact} folds base + segments back into one base snapshot; it stages,
    verifies, swaps and only then deletes, so any one-shot {!Disk} fault
    fired mid-compaction leaves the store exactly as it was. *)

type t

val create : Disk.t -> name:string -> t
val name : t -> string
val disk : t -> Disk.t

val save : t -> now:int -> Codec.record list -> int
(** Write a full base snapshot and retire any sealed segments; returns its
    generation (marker + 1). *)

val append : t -> now:int -> Codec.record list -> int
(** Seal a new segment holding exactly [records]; returns its generation.
    Falls back to {!save} when no base snapshot exists yet. *)

type load_error =
  | No_snapshot
  | Corrupt of string
  | Stale of { snap_generation : int; marker : int }

val load_error_to_string : load_error -> string

val load : t -> (Codec.snapshot, load_error) result
(** The base snapshot alone (validated against the chain's marker).  Most
    callers want {!load_chain}. *)

val load_chain : t -> (Codec.snapshot list, load_error) result
(** The whole chain, base snapshot first, then each sealed segment in
    generation order.  Every generation between the base's and the marker's
    must be present and decode cleanly, or the chain is refused ([Stale]
    for a missing segment — the dropped-rename crash window — [Corrupt]
    for a damaged one). *)

val compact :
  t -> now:int -> fold:(Codec.record list list -> Codec.record list) ->
  (int, string) result
(** Fold base + segments into one base snapshot.  [fold] receives each
    container's records, base first, and returns the folded record list.
    The folded base keeps the chain's newest generation (the marker does
    not move).  Crash-safe against the one-shot {!Disk} faults: the folded
    container is staged and read back before the swap, and the swap is
    re-read before the segments are deleted — on any detected fault the
    result is [Error] and the store is untouched (still segmented, still
    loadable).  [Ok generation] with no segments sealed is a no-op. *)

val generation : t -> int
(** The marker's generation; 0 if never saved. *)

val segment_count : t -> int
(** Sealed segments beyond the base in the currently loadable chain; 0 when
    the chain is unreadable. *)

val snapshot_bytes : t -> int
(** Size of the base snapshot file; 0 if none. *)

val chain_bytes : t -> int
(** Total on-disk bytes of base + segments (what restore must read). *)

val wipe : t -> unit
(** Delete base, segments, marker and temporaries (simulates losing the
    disk). *)
