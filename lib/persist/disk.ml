(* A simulated disk: a flat namespace of byte blobs with one-shot injected
   faults.

   The point is not to model a filesystem but to model the failure envelope
   a relying party's persistence layer must survive: a write that lands
   half-done (torn), a write whose tail never reaches the platter (partial
   flush), silent media corruption (bit flip), and a crash between the data
   rename and the generation-marker rename (dropped rename, which surfaces
   as a stale snapshot).  Faults are armed explicitly and fire exactly once,
   on the next matching operation, so experiments stay deterministic. *)

type fault =
  | Torn_write
  | Partial_flush
  | Bit_flip of int
  | Drop_rename

let fault_to_string = function
  | Torn_write -> "torn-write"
  | Partial_flush -> "partial-flush"
  | Bit_flip i -> Printf.sprintf "bit-flip:%d" i
  | Drop_rename -> "drop-rename"

type t = {
  files : (string, string) Hashtbl.t;
  mutable armed : fault option;
  mutable fired : fault list; (* most recent first *)
  mutable writes : int;
  mutable renames : int;
  mutable bytes_written : int;
}

let create () =
  { files = Hashtbl.create 7; armed = None; fired = []; writes = 0; renames = 0;
    bytes_written = 0 }

let inject t fault =
  (match t.armed with
  | Some f ->
    invalid_arg
      (Printf.sprintf "Disk.inject: fault %s already armed" (fault_to_string f))
  | None -> ());
  t.armed <- Some fault

let armed t = t.armed
let fired t = t.fired

let corrupt_write fault data =
  let n = String.length data in
  match fault with
  | Torn_write -> String.sub data 0 (n / 2)
  | Partial_flush ->
    (* full length reached the file, but the tail never hit stable storage *)
    String.sub data 0 (n / 2) ^ String.make (n - (n / 2)) '\000'
  | Bit_flip i ->
    if n = 0 then data
    else begin
      let b = Bytes.of_string data in
      let bit = ((i mod (n * 8)) + (n * 8)) mod (n * 8) in
      let byte = bit / 8 in
      Bytes.set b byte (Char.chr (Char.code (Bytes.get b byte) lxor (1 lsl (bit mod 8))));
      Bytes.to_string b
    end
  | Drop_rename -> data

let write t ~name data =
  t.writes <- t.writes + 1;
  t.bytes_written <- t.bytes_written + String.length data;
  let data =
    match t.armed with
    | Some (Torn_write | Partial_flush | Bit_flip _) as f ->
      let fault = Option.get f in
      t.armed <- None;
      t.fired <- fault :: t.fired;
      corrupt_write fault data
    | Some Drop_rename | None -> data
  in
  Hashtbl.replace t.files name data

let read t ~name = Hashtbl.find_opt t.files name

let rename t ~src ~dst =
  t.renames <- t.renames + 1;
  match t.armed with
  | Some Drop_rename ->
    (* the crash window: the new bytes exist under the temporary name but the
       atomic swap never happened *)
    t.armed <- None;
    t.fired <- Drop_rename :: t.fired
  | _ -> (
    match Hashtbl.find_opt t.files src with
    | None -> invalid_arg (Printf.sprintf "Disk.rename: no such file %S" src)
    | Some data ->
      Hashtbl.remove t.files src;
      Hashtbl.replace t.files dst data)

let delete t ~name = Hashtbl.remove t.files name
let exists t ~name = Hashtbl.mem t.files name

let files t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.files [] |> List.sort compare

let size t ~name =
  match Hashtbl.find_opt t.files name with None -> 0 | Some d -> String.length d

let bytes_used t = Hashtbl.fold (fun _ d acc -> acc + String.length d) t.files 0
let writes t = t.writes
let renames t = t.renames
let bytes_written t = t.bytes_written
