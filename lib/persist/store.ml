(* Generation-numbered snapshot store with atomic write-then-rename.

   Layout on the simulated disk, for a store named [v]:
     v.snap       — the current snapshot (Codec container)
     v.gen        — the generation marker, written *after* the snapshot rename

   Save writes both files through a temporary name and renames into place,
   snapshot first, marker second.  A crash (dropped rename) between the two
   leaves the marker ahead of the snapshot: [load] reports that as [Stale]
   rather than handing back the old generation as if it were current. *)

type t = { disk : Disk.t; name : string }

let snap_file t = t.name ^ ".snap"
let gen_file t = t.name ^ ".gen"

let create disk ~name = { disk; name }
let name t = t.name
let disk t = t.disk

let marker t =
  match Disk.read t.disk ~name:(gen_file t) with
  | None -> None
  | Some s -> int_of_string_opt (String.trim s)

let generation t = Option.value (marker t) ~default:0

type load_error =
  | No_snapshot
  | Corrupt of string
  | Stale of { snap_generation : int; marker : int }

let load_error_to_string = function
  | No_snapshot -> "no snapshot"
  | Corrupt why -> Printf.sprintf "corrupt snapshot: %s" why
  | Stale { snap_generation; marker } ->
    Printf.sprintf "stale snapshot: generation %d but marker says %d"
      snap_generation marker

let save t ~now records =
  let generation = generation t + 1 in
  let snap =
    Codec.encode { Codec.s_generation = generation; s_saved_at = now;
                   s_records = records }
  in
  let tmp = snap_file t ^ ".tmp" in
  Disk.write t.disk ~name:tmp snap;
  Disk.rename t.disk ~src:tmp ~dst:(snap_file t);
  let gtmp = gen_file t ^ ".tmp" in
  Disk.write t.disk ~name:gtmp (string_of_int generation);
  Disk.rename t.disk ~src:gtmp ~dst:(gen_file t);
  generation

let load t =
  match Disk.read t.disk ~name:(snap_file t) with
  | None -> Error No_snapshot
  | Some bytes -> (
    match Codec.decode bytes with
    | Error e -> Error (Corrupt (Codec.error_to_string e))
    | Ok snap -> (
      match marker t with
      | Some m when m > snap.Codec.s_generation ->
        Error (Stale { snap_generation = snap.Codec.s_generation; marker = m })
      | _ -> Ok snap))

let snapshot_bytes t = Disk.size t.disk ~name:(snap_file t)

let wipe t =
  Disk.delete t.disk ~name:(snap_file t);
  Disk.delete t.disk ~name:(gen_file t);
  Disk.delete t.disk ~name:(snap_file t ^ ".tmp");
  Disk.delete t.disk ~name:(gen_file t ^ ".tmp")
