(* Generation-numbered snapshot store: a checkpointed base plus an
   append-only chain of sealed segments, all under atomic write-then-rename.

   Layout on the simulated disk, for a store named [v]:
     v.snap       — the base snapshot (Codec container, generation g0)
     v.seg.<g>    — sealed segment g, one per [append], g in g0+1 .. marker
     v.gen        — the generation marker, written *after* every data rename

   [save] writes a full base snapshot (and retires any segments); [append]
   seals a new segment holding only the records the caller hands it — the
   O(delta) path a long-running relying party saves through.  Both write the
   data file through a temporary name and rename into place, data first,
   marker second.  A crash (dropped rename) between the two leaves the
   marker ahead of the chain: [load]/[load_chain] report that as [Stale]
   rather than handing back an older generation as if it were current.

   [compact] folds base + segments back into one base snapshot.  It stages
   the folded container under a side name, reads it back (so an armed
   one-shot write fault is caught before anything is replaced), renames it
   over the base and re-reads to confirm the swap (so a dropped rename is
   caught too), and only then deletes the segments.  On any detected fault
   the store is left exactly as it was — still segmented, still loadable. *)

type t = { disk : Disk.t; name : string }

let snap_file t = t.name ^ ".snap"
let gen_file t = t.name ^ ".gen"
let seg_file t g = Printf.sprintf "%s.seg.%d" t.name g
let seg_prefix t = t.name ^ ".seg."
let staging_file t = t.name ^ ".cmp"

let create disk ~name = { disk; name }
let name t = t.name
let disk t = t.disk

let marker t =
  match Disk.read t.disk ~name:(gen_file t) with
  | None -> None
  | Some s -> int_of_string_opt (String.trim s)

let generation t = Option.value (marker t) ~default:0

type load_error =
  | No_snapshot
  | Corrupt of string
  | Stale of { snap_generation : int; marker : int }

let load_error_to_string = function
  | No_snapshot -> "no snapshot"
  | Corrupt why -> Printf.sprintf "corrupt snapshot: %s" why
  | Stale { snap_generation; marker } ->
    Printf.sprintf "stale snapshot: generation %d but marker says %d"
      snap_generation marker

(* Write [data] under [name] through a temporary, then advance the marker —
   the shared tail of [save] and [append]. *)
let seal t ~name ~generation data =
  let tmp = name ^ ".tmp" in
  Disk.write t.disk ~name:tmp data;
  Disk.rename t.disk ~src:tmp ~dst:name;
  let gtmp = gen_file t ^ ".tmp" in
  Disk.write t.disk ~name:gtmp (string_of_int generation);
  Disk.rename t.disk ~src:gtmp ~dst:(gen_file t)

let delete_segments t =
  List.iter
    (fun name ->
      let p = seg_prefix t in
      if String.length name > String.length p
         && String.equal (String.sub name 0 (String.length p)) p
      then Disk.delete t.disk ~name)
    (Disk.files t.disk)

let save t ~now records =
  let generation = generation t + 1 in
  let snap =
    Codec.encode { Codec.s_generation = generation; s_saved_at = now;
                   s_records = records }
  in
  seal t ~name:(snap_file t) ~generation snap;
  delete_segments t;
  generation

let append t ~now records =
  if not (Disk.exists t.disk ~name:(snap_file t)) then save t ~now records
  else begin
    let generation = generation t + 1 in
    let seg =
      Codec.encode { Codec.s_generation = generation; s_saved_at = now;
                     s_records = records }
    in
    seal t ~name:(seg_file t generation) ~generation seg;
    generation
  end

(* The whole chain, base first.  The marker names the newest sealed
   generation; every generation between the base's and the marker's must be
   present and internally consistent, or the chain is refused. *)
let load_chain t =
  match Disk.read t.disk ~name:(snap_file t) with
  | None -> Error No_snapshot
  | Some bytes -> (
    match Codec.decode bytes with
    | Error e -> Error (Corrupt (Codec.error_to_string e))
    | Ok base ->
      let g0 = base.Codec.s_generation in
      let m = Option.value (marker t) ~default:g0 in
      if m <= g0 then Ok [ base ]
        (* marker at or behind the base: a crash between the base rename and
           the marker rename — the base is newer than the marker and wins *)
      else begin
        let rec segs acc g =
          if g > m then Ok (List.rev acc)
          else
            match Disk.read t.disk ~name:(seg_file t g) with
            | None -> Error (Stale { snap_generation = g - 1; marker = m })
            | Some bytes -> (
              match Codec.decode bytes with
              | Error e ->
                Error (Corrupt (Printf.sprintf "segment %d: %s" g (Codec.error_to_string e)))
              | Ok seg ->
                if seg.Codec.s_generation <> g then
                  Error
                    (Corrupt
                       (Printf.sprintf "segment %d carries generation %d" g
                          seg.Codec.s_generation))
                else segs (seg :: acc) (g + 1))
        in
        match segs [] (g0 + 1) with
        | Ok rest -> Ok (base :: rest)
        | Error e -> Error e
      end)

let load t =
  match load_chain t with
  | Ok (base :: _) -> Ok base
  | Ok [] -> Error No_snapshot (* unreachable: a chain always has a base *)
  | Error e -> Error e

let segment_count t =
  match load_chain t with Ok (_ :: segs) -> List.length segs | _ -> 0

let compact t ~now ~fold =
  match load_chain t with
  | Error e -> Error (load_error_to_string e)
  | Ok [ _ ] -> Ok (generation t) (* nothing sealed beyond the base: no-op *)
  | Ok [] -> Error "empty chain"
  | Ok containers ->
    let last = List.nth containers (List.length containers - 1) in
    let records = fold (List.map (fun (s : Codec.snapshot) -> s.Codec.s_records) containers) in
    let gen = last.Codec.s_generation in
    (* compaction re-expresses the same generation: the marker is untouched *)
    let folded =
      Codec.encode { Codec.s_generation = gen; s_saved_at = now; s_records = records }
    in
    let staging = staging_file t in
    Disk.write t.disk ~name:staging folded;
    (match Disk.read t.disk ~name:staging with
    | Some b when String.equal b folded -> (
      Disk.rename t.disk ~src:staging ~dst:(snap_file t);
      match Disk.read t.disk ~name:(snap_file t) with
      | Some b' when String.equal b' folded ->
        delete_segments t;
        Ok gen
      | _ ->
        (* the rename was dropped: the old base and every segment are still
           in place — clean the staging copy and report *)
        Disk.delete t.disk ~name:staging;
        Error "compaction rename lost; store left segmented")
    | _ ->
      Disk.delete t.disk ~name:staging;
      Error "compaction staging write corrupted; store left segmented")

let snapshot_bytes t = Disk.size t.disk ~name:(snap_file t)

let chain_bytes t =
  let p = seg_prefix t in
  List.fold_left
    (fun acc name ->
      if String.equal name (snap_file t)
         || (String.length name > String.length p
             && String.equal (String.sub name 0 (String.length p)) p)
      then acc + Disk.size t.disk ~name
      else acc)
    0 (Disk.files t.disk)

let wipe t =
  Disk.delete t.disk ~name:(snap_file t);
  Disk.delete t.disk ~name:(gen_file t);
  Disk.delete t.disk ~name:(snap_file t ^ ".tmp");
  Disk.delete t.disk ~name:(gen_file t ^ ".tmp");
  Disk.delete t.disk ~name:(staging_file t);
  delete_segments t (* the name prefix also covers segment temporaries *)
