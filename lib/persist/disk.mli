(** A simulated disk with one-shot injected faults.

    Models the failure envelope a relying party's persistence layer must
    survive: torn writes, partial flushes, bit flips, and a crash between
    a data rename and its generation-marker rename.  Deterministic: faults
    are armed explicitly and fire exactly once on the next matching
    operation. *)

type fault =
  | Torn_write      (** next write stores only the first half of the bytes *)
  | Partial_flush   (** next write keeps its length but the tail reads as zeros *)
  | Bit_flip of int (** next write has one bit flipped (index mod total bits) *)
  | Drop_rename     (** next rename is silently lost (crash before the swap) *)

val fault_to_string : fault -> string

type t

val create : unit -> t

val inject : t -> fault -> unit
(** Arm a one-shot fault. Raises [Invalid_argument] if one is already armed. *)

val armed : t -> fault option
val fired : t -> fault list
(** Faults that have fired, most recent first. *)

val write : t -> name:string -> string -> unit
val read : t -> name:string -> string option
val rename : t -> src:string -> dst:string -> unit
(** Raises [Invalid_argument] if [src] does not exist (unless the armed
    [Drop_rename] swallows the operation). *)

val delete : t -> name:string -> unit
val exists : t -> name:string -> bool
val files : t -> string list
val size : t -> name:string -> int
val bytes_used : t -> int
val writes : t -> int
val renames : t -> int

val bytes_written : t -> int
(** Cumulative bytes handed to {!write} since creation (before any armed
    fault shortened them) — the I/O cost line the soak experiments plot. *)
