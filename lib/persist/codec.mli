(** Deterministic, checksummed snapshot codec over the strict DER encoder.

    A snapshot is a generation-numbered, timestamped container of typed
    records; every record carries a SHA-256 of its payload and the container
    carries a SHA-256 over generation, timestamp and body.  Any single-byte
    corruption is rejected at decode time — either as a DER error, a bad
    magic, or a checksum mismatch — never silently accepted. *)

type record = { r_kind : string; r_payload : string }

type snapshot = { s_generation : int; s_saved_at : int; s_records : record list }

type error =
  | Bad_magic of string
  | Checksum_mismatch of string  (** which checksum: ["snapshot"] or [record "kind"] *)
  | Malformed of string

val error_to_string : error -> string

val magic : string

val encode : snapshot -> string
val decode : string -> (snapshot, error) result
