(* The snapshot codec: a deterministic, checksummed container built on the
   strict DER encoder from [Rpki_asn].

   A snapshot is
     SEQUENCE {
       UTF8String  "rpki-persist-v1",
       INTEGER     generation,
       INTEGER     saved_at,
       OCTET STRING body,          -- concatenated records
       OCTET STRING digest         -- SHA-256 over generation | saved_at | body
     }
   and each record in [body] is
     SEQUENCE {
       UTF8String  kind,
       OCTET STRING payload,
       OCTET STRING SHA-256(payload)
     }

   The outer digest covers the generation and timestamp, not just the body:
   a flipped bit anywhere in the file must fail closed, including one that
   would silently age or rejuvenate the snapshot.  Decoding pattern-matches
   constructors exactly — [Der.to_string_exn] accepts both UTF8String and
   OCTET STRING, which would let a tag flip (0x0c <-> 0x04) slip through a
   lenient projector. *)

open Rpki_crypto
open Rpki_asn

let magic = "rpki-persist-v1"

type record = { r_kind : string; r_payload : string }

type snapshot = { s_generation : int; s_saved_at : int; s_records : record list }

type error =
  | Bad_magic of string
  | Checksum_mismatch of string
  | Malformed of string

let error_to_string = function
  | Bad_magic m -> Printf.sprintf "bad magic %S" m
  | Checksum_mismatch what -> Printf.sprintf "checksum mismatch (%s)" what
  | Malformed why -> Printf.sprintf "malformed snapshot: %s" why

let overall_digest ~generation ~saved_at body =
  Sha256.digest_list
    [ string_of_int generation; ":"; string_of_int saved_at; ":"; body ]

let encode_record r =
  Der.encode
    (Der.Sequence
       [ Der.Utf8 r.r_kind;
         Der.Octet_string r.r_payload;
         Der.Octet_string (Sha256.digest r.r_payload) ])

let encode snap =
  let body = String.concat "" (List.map encode_record snap.s_records) in
  Der.encode
    (Der.Sequence
       [ Der.Utf8 magic;
         Der.int_ snap.s_generation;
         Der.int_ snap.s_saved_at;
         Der.Octet_string body;
         Der.Octet_string
           (overall_digest ~generation:snap.s_generation ~saved_at:snap.s_saved_at
              body) ])

let decode_record = function
  | Der.Sequence [ Der.Utf8 kind; Der.Octet_string payload; Der.Octet_string sum ]
    ->
    if not (String.equal sum (Sha256.digest payload)) then
      Error (Checksum_mismatch (Printf.sprintf "record %S" kind))
    else Ok { r_kind = kind; r_payload = payload }
  | v ->
    Error
      (Malformed (Format.asprintf "record is not a checksummed triple: %a" Der.pp v))

let decode bytes =
  match Der.decode bytes with
  | Error e -> Error (Malformed e)
  | Ok
      (Der.Sequence
        [ Der.Utf8 m; Der.Integer _ as gen; Der.Integer _ as at;
          Der.Octet_string body; Der.Octet_string sum ]) -> (
    if not (String.equal m magic) then Error (Bad_magic m)
    else
      match (Der.to_int_exn gen, Der.to_int_exn at) with
      | exception Der.Decode_error e -> Error (Malformed e)
      | generation, saved_at ->
        if not (String.equal sum (overall_digest ~generation ~saved_at body)) then
          Error (Checksum_mismatch "snapshot")
        else (
          match Der.decode_all body with
          | exception Der.Decode_error e -> Error (Malformed e)
          | values ->
            let rec go acc = function
              | [] -> Ok { s_generation = generation; s_saved_at = saved_at;
                           s_records = List.rev acc }
              | v :: rest -> (
                match decode_record v with
                | Ok r -> go (r :: acc) rest
                | Error e -> Error e)
            in
            go [] values))
  | Ok v ->
    Error (Malformed (Format.asprintf "not a rpki-persist container: %a" Der.pp v))
