(* RPKI monitoring: detecting manipulations from repository snapshots.

   The paper poses as an open problem "the design of monitoring schemes that
   deter RPKI manipulations by detecting suspiciously reissued objects".
   This monitor is such a scheme: it diffs consecutive snapshots of every
   publication point, purely syntactically (no trust anchors needed), and
   classifies changes:

   - overt revocations (CRL-backed removals);
   - *stealthy* removals — an object vanishes with no CRL trace
     (Side Effect 2);
   - RC shrinking — a subject's resources lose address space
     (Side Effect 3's primitive);
   - make-before-break signatures — a ROA's routing meaning reappears under
     a different issuer in the same window (Figure 3's tell-tale). *)

open Rpki_core

type decoded_point = {
  uri : string;
  certs : (string * Cert.t) list; (* filename -> cert *)
  roas : (string * Roa.t) list;
  crl : Crl.t option;
}

type snapshot = {
  taken_at : Rtime.t;
  points : decoded_point list;
}

let decode_point (pp : Rpki_repo.Pub_point.t) =
  let certs = ref [] and roas = ref [] and crl = ref None in
  List.iter
    (fun (filename, bytes) ->
      match Obj.decode ~filename bytes with
      | Ok (Obj.Cert c) -> certs := (filename, c) :: !certs
      | Ok (Obj.Roa r) -> roas := (filename, r) :: !roas
      | Ok (Obj.Crl c) -> crl := Some c
      | Ok (Obj.Manifest _) | Error _ -> ())
    (Rpki_repo.Pub_point.snapshot pp);
  { uri = (Rpki_repo.Pub_point.uri pp); certs = !certs; roas = !roas; crl = !crl }

let take ~now universe =
  { taken_at = now; points = List.map decode_point (Rpki_repo.Universe.points universe) }

type severity = Info | Warning | Alarm

type alert = {
  severity : severity;
  uri : string;
  what : string;
}

let alert severity uri fmt = Printf.ksprintf (fun what -> { severity; uri; what }) fmt

let severity_to_string = function Info -> "info" | Warning -> "WARNING" | Alarm -> "ALARM"

let pp_alert fmt a =
  Format.fprintf fmt "[%s] %s: %s" (severity_to_string a.severity) a.uri a.what

(* Is [serial] revoked by the point's CRL after the change? *)
let revoked_by (point : decoded_point) serial =
  match point.crl with Some crl -> Crl.revokes crl serial | None -> false

let roa_key (r : Roa.t) = List.sort compare (Vrp.of_roa r)

let diff ~(before : snapshot) ~(after : snapshot) =
  let alerts = ref [] in
  let push a = alerts := a :: !alerts in
  (* index of ROAs appearing anywhere in [after], for reissue correlation *)
  let appeared_roas = ref [] in
  let pairs =
    List.filter_map
      (fun (b : decoded_point) ->
        Option.map (fun a -> (b, a))
          (List.find_opt (fun (a : decoded_point) -> a.uri = b.uri) after.points))
      before.points
  in
  (* pass 1: additions *)
  List.iter
    (fun ((b : decoded_point), (a : decoded_point)) ->
      List.iter
        (fun (filename, roa) ->
          if not (List.mem_assoc filename b.roas) then begin
            appeared_roas := (a.uri, roa) :: !appeared_roas;
            push (alert Info a.uri "new ROA %s (%s)" (Roa.to_string roa) filename)
          end)
        a.roas;
      List.iter
        (fun (filename, (cert : Cert.t)) ->
          if not (List.mem_assoc filename b.certs) then
            push
              (alert
                 (if cert.Cert.is_ca then Warning else Info)
                 a.uri "new certificate for %s (%s)" cert.Cert.subject filename))
        a.certs)
    pairs;
  (* pass 1b: a new ROA that duplicates a ROA still live at another point is
     the make-before-break preparation step *)
  List.iter
    (fun (uri, (roa : Roa.t)) ->
      let other_homes =
        List.concat_map
          (fun (p : decoded_point) ->
            if p.uri = uri then []
            else
              List.filter_map
                (fun (_, r) -> if roa_key r = roa_key roa then Some p.uri else None)
                p.roas)
          after.points
      in
      if other_homes <> [] then
        push
          (alert Warning uri
             "new ROA %s duplicates a ROA published at %s (possible make-before-break)"
             (Roa.to_string roa)
             (String.concat ", " other_homes)))
    !appeared_roas;
  (* pass 2: removals and rewrites *)
  List.iter
    (fun ((b : decoded_point), (a : decoded_point)) ->
      (* ROAs *)
      List.iter
        (fun (filename, (roa : Roa.t)) ->
          match List.assoc_opt filename a.roas with
          | Some roa' ->
            if roa_key roa <> roa_key roa' then
              push
                (alert Warning a.uri "ROA rewritten: %s -> %s" (Roa.to_string roa)
                   (Roa.to_string roa'))
          | None ->
            let reissued_at =
              List.filter_map
                (fun (uri, r) -> if roa_key r = roa_key roa && uri <> a.uri then Some uri else None)
                !appeared_roas
            in
            if reissued_at <> [] then
              push
                (alert Alarm a.uri
                   "make-before-break signature: ROA %s removed here and reissued at %s"
                   (Roa.to_string roa) (String.concat ", " reissued_at))
            else if revoked_by a roa.Roa.ee.Cert.serial then
              push (alert Warning a.uri "ROA %s revoked via CRL" (Roa.to_string roa))
            else
              push
                (alert Alarm a.uri "ROA %s deleted stealthily (no CRL trace)"
                   (Roa.to_string roa)))
        b.roas;
      (* certificates *)
      List.iter
        (fun (filename, (cert : Cert.t)) ->
          match List.assoc_opt filename a.certs with
          | Some cert' ->
            if not (Resources.equal cert.Cert.resources cert'.Cert.resources) then begin
              let removed =
                Resources.diff cert.Cert.resources cert'.Cert.resources
              in
              let added = Resources.diff cert'.Cert.resources cert.Cert.resources in
              if not (Resources.is_empty removed) then
                push
                  (alert Alarm a.uri "RC for %s shrunk: lost [%s]" cert.Cert.subject
                     (Resources.to_string removed))
              else
                push
                  (alert Info a.uri "RC for %s grew: gained [%s]" cert.Cert.subject
                     (Resources.to_string added))
            end
          | None ->
            if revoked_by a cert.Cert.serial then
              push
                (alert Warning a.uri "certificate for %s revoked via CRL" cert.Cert.subject)
            else
              push
                (alert Alarm a.uri "certificate for %s removed stealthily (no CRL trace)"
                   cert.Cert.subject))
        b.certs)
    pairs;
  (* pass 3: duplicate subjects across points (reissued RCs live at the
     manipulator's point while the original may persist elsewhere) *)
  let all_ca_subjects =
    List.concat_map
      (fun (p : decoded_point) ->
        List.filter_map
          (fun (_, (c : Cert.t)) -> if c.Cert.is_ca then Some (c.Cert.subject, p.uri) else None)
          p.certs)
      after.points
  in
  let subjects = List.sort_uniq String.compare (List.map fst all_ca_subjects) in
  List.iter
    (fun subject ->
      let homes =
        List.sort_uniq String.compare
          (List.filter_map (fun (s, u) -> if s = subject then Some u else None) all_ca_subjects)
      in
      match homes with
      | first :: _ :: _ ->
        push
          (alert Warning first "CA %s certified at multiple publication points: %s" subject
             (String.concat ", " homes))
      | _ -> ())
    subjects;
  List.rev !alerts

(* Freshness monitoring: a content monitor sees what is published; this
   watches what a relying party actually *used*.  A point served from stale
   cache is degraded service; served stale beyond [threshold] ticks — or not
   served at all — it is exactly the downgrade a stalling adversary
   (Stalloris) or a misbehaving authority's outage produces, and worth an
   alarm even though every published object still verifies. *)
let staleness_alerts ?(threshold = 2) (result : Rpki_repo.Relying_party.sync_result) =
  let open Rpki_repo.Relying_party in
  let point_alerts =
    List.filter_map
      (fun tr ->
        match tr.t_status with
        | Fetched -> None
        | Fetched_mirror | Fetched_rrdp ->
          Some
            { severity = Info; uri = tr.t_uri;
              what = Printf.sprintf "served via fallback channel %s" tr.t_channel }
        | Stale_cache ->
          let severity = if tr.t_data_age > threshold then Alarm else Warning in
          Some
            { severity; uri = tr.t_uri;
              what =
                Printf.sprintf "served from stale cache, data %d tick(s) old%s" tr.t_data_age
                  (if tr.t_data_age > threshold then
                     Printf.sprintf " (over the %d-tick staleness threshold)" threshold
                   else "") }
        | Unavailable ->
          Some { severity = Alarm; uri = tr.t_uri; what = "no copy obtained on any channel" })
      result.transfers
  in
  if result.budget_exhausted then
    { severity = Alarm; uri = "-";
      what =
        Printf.sprintf
          "sync budget exhausted after %d transport tick(s): fetches were abandoned"
          result.sync_elapsed }
    :: point_alerts
  else point_alerts

(* Gossip monitoring: a content monitor compares what a point published
   over time; gossip compares what different vantages were *served* at the
   same time.  Every gossip alarm is cryptographic — a fork carries two
   signed, inclusion-proved observations — so everything maps to [Alarm]. *)
let gossip_alerts gossip_alarms =
  List.map
    (fun ga ->
      let uri, severity =
        match ga with
        | Rpki_repo.Gossip.Fork { fork_uri; _ } -> (fork_uri, Alarm)
        | Rpki_repo.Gossip.Rollback { rb_uri; _ } -> (rb_uri, Alarm)
        | Rpki_repo.Gossip.Inconsistent_heads _ | Rpki_repo.Gossip.Bad_head_signature _
        | Rpki_repo.Gossip.Bad_inclusion _ -> ("-", Alarm)
        (* a log reset is a lost baseline, not proof of misbehavior — but it
           is exactly the window a rollback adversary needs, so it warrants
           a warning rather than silence *)
        | Rpki_repo.Gossip.Log_reset _ -> ("-", Warning)
      in
      { severity; uri; what = Rpki_repo.Gossip.describe_alarm ga })
    gossip_alarms

let alarms alerts = List.filter (fun a -> a.severity = Alarm) alerts
let warnings alerts = List.filter (fun a -> a.severity = Warning) alerts
