(** RPKI monitoring: detecting manipulations from repository snapshots.

    The paper poses as an open problem "the design of monitoring schemes
    that deter RPKI manipulations by detecting suspiciously reissued
    objects".  This monitor diffs consecutive snapshots of every publication
    point — purely syntactically, no trust anchors needed — and classifies
    changes: overt revocations, stealthy removals (Side Effect 2), RC
    shrinking (Side Effect 3's primitive), and make-before-break signatures
    (Figure 3's tell-tale). *)

open Rpki_core

type decoded_point = {
  uri : string;
  certs : (string * Cert.t) list;
  roas : (string * Roa.t) list;
  crl : Crl.t option;
}

type snapshot = {
  taken_at : Rtime.t;
  points : decoded_point list;
}

val decode_point : Rpki_repo.Pub_point.t -> decoded_point

val take : now:Rtime.t -> Rpki_repo.Universe.t -> snapshot
(** Snapshot every publication point. *)

type severity = Info | Warning | Alarm

type alert = {
  severity : severity;
  uri : string;
  what : string;
}

val severity_to_string : severity -> string
val pp_alert : Format.formatter -> alert -> unit

val diff : before:snapshot -> after:snapshot -> alert list
(** Classify every change between two snapshots.  Benign churn (renewals,
    refreshes, new issuance, RC growth) stays at [Info]; CRL-backed
    revocations are [Warning]; stealthy removals, RC shrinks and correlated
    make-before-break patterns are [Alarm]. *)

val staleness_alerts :
  ?threshold:int -> Rpki_repo.Relying_party.sync_result -> alert list
(** Freshness monitoring from a relying party's own sync accounting: points
    served via a fallback channel are [Info]; points served from stale cache
    are [Warning], escalating to [Alarm] when the data is older than
    [threshold] ticks (default 2); points with no copy at all — and a sync
    whose fetch budget ran out — are [Alarm].  This catches transport-level
    downgrade (a Stalloris-style stalling adversary, or an authority outage)
    that a content diff cannot see, since every published object still
    verifies. *)

val gossip_alerts : Rpki_repo.Gossip.alarm list -> alert list
(** Cross-vantage monitoring from the transparency layer: every
    {!Rpki_repo.Gossip.alarm} becomes an [Alarm]-severity alert (fork and
    rollback evidence is cryptographic, not heuristic), except
    {!Rpki_repo.Gossip.alarm.Log_reset} — a lost baseline, not proof of
    misbehavior — which surfaces as a [Warning].  This is the detector for
    the manipulations neither a content diff nor freshness accounting can
    see: a split view, or a rewritten past served to a restarted vantage. *)

val alarms : alert list -> alert list
val warnings : alert list -> alert list
