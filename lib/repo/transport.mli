(** The transport layer between a relying party and the repositories.

    A transport prices every repository request in virtual "transport
    ticks": a latency oracle (normally wired to the BGP data plane by the
    simulation layer — the paper's Section 6 circularity expressed as time)
    plus per-point fault state that operators or adversaries may set.  The
    relying party's fetch policy spends those ticks against per-point
    timeouts and a total sync budget.

    A zero-latency fault-free transport ({!instant}) is behaviourally
    identical to PR 1's boolean reachability oracle; the incremental-sync
    equivalence property is asserted under exactly that transport. *)

type fault =
  | Healthy
  | Slow of int        (** additive latency on every request *)
  | Stalling of int    (** Stalloris-style trickle: multiplies transfer time *)
  | Unreachable        (** black-holed: no route at all *)
  | Refused            (** connection refused — fails as fast as unreachable,
                           but the relying party attributes it differently *)
  | Dns_failure        (** no address associated with name *)
  | Timing_out         (** connect timeout: every attempt outlives the
                           caller's timeout, like a total stall *)
  | Redirect of string (** cross-origin redirect to the given origin; RPs
                           refuse to follow, so the fetch fails fast *)

val fault_to_string : fault -> string

type t
(** Opaque transport state: latency oracle + per-URI fault table. *)

val create :
  ?latency_of:(Pub_point.t -> int option) -> ?failure_cost:int -> unit -> t
(** [latency_of] prices a request to a point ([None] = no route; default:
    everything reachable at zero cost).  [failure_cost] (default 1) is the
    time burned discovering that a point is unroutable. *)

val instant : unit -> t
(** Zero latency, zero failure cost, no faults — the PR-1 oracle. *)

val of_oracle : (Pub_point.t -> bool) -> t
(** A zero-latency transport gated by a boolean reachability oracle. *)

val set_latency_of : t -> (Pub_point.t -> int option) -> unit
(** Swap the latency oracle (the simulation layer points it at each tick's
    data plane). *)

val set_fault : t -> uri:string -> fault -> unit
(** Set a point's fault state; [Healthy] clears it. *)

val fault_of : t -> uri:string -> fault
val clear_fault : t -> uri:string -> unit
val clear_faults : t -> unit

val faults : t -> (string * fault) list
(** Every non-healthy point. *)

val set_view : t -> uri:string -> (unit -> (string * string) list) -> unit
(** Install a split view: {!fetch}es of [uri] {e through this transport}
    serve the given listing instead of the point's published content — the
    mirror-world primitive (a misbehaving authority, or an on-path
    adversary, discriminating by requester).  Timing and faults are
    unaffected; only the payload forks.  Other transports (other vantages)
    keep seeing the genuine listing, which is exactly what the transparency
    layer's gossip is built to catch. *)

val clear_view : t -> uri:string -> unit

val view_of : t -> uri:string -> (unit -> (string * string) list) option

val views : t -> string list
(** URIs with an installed split view. *)

val probe :
  t -> point:Pub_point.t -> timeout:int ->
  [ `Ok of int | `Stalled of int | `Unroutable of int ]
(** Price one request: [`Ok dt] completes within [timeout]; [`Stalled t]
    would outlive it (the caller's time is spent either way); [`Unroutable]
    fails fast.  A [Stalling k] fault prices the transfer at
    [(base_latency + 1) * k], so even a zero-latency link stalls once
    throttled. *)

type reply =
  | Served of { files : (string * string) list; fp : string; elapsed : int }
  | Stalled of { elapsed : int }
  | Unroutable of { elapsed : int }

val fetch : t -> point:Pub_point.t -> timeout:int -> reply
(** {!probe}, then on success the point's current listing + fingerprint. *)

val pp : Format.formatter -> t -> unit
