(* Third-party fault injection against publication points.

   These are *not* authority operations: they model filesystem corruption,
   server failures and expiry (Side Effect 6's "information can be missing
   for a variety of reasons"), so they do not update the manifest — leaving
   the inconsistencies a manifest is designed to expose. *)

type applied = {
  description : string;
  undo : unit -> unit; (* repair the fault (restore the previous bytes) *)
}

let delete_object (pp : Pub_point.t) ~filename =
  match Pub_point.get pp ~filename with
  | None -> None
  | Some original ->
    Pub_point.delete pp ~filename;
    Some
      { description = Printf.sprintf "deleted %s from %s" filename (Pub_point.uri pp);
        undo = (fun () -> Pub_point.put pp ~filename original) }

let corrupt_object (pp : Pub_point.t) ~filename ?(byte_index = 7) () =
  match Pub_point.get pp ~filename with
  | None -> None
  | Some original ->
    if not (Pub_point.corrupt pp ~filename ~byte_index) then None
    else
      Some
        { description = Printf.sprintf "corrupted %s at %s" filename (Pub_point.uri pp);
          undo = (fun () -> Pub_point.put pp ~filename original) }

(* Replace every file with garbage: total repository loss. *)
let wipe (pp : Pub_point.t) =
  let originals = Pub_point.files pp in
  List.iter (fun (filename, _) -> Pub_point.delete pp ~filename) originals;
  { description = Printf.sprintf "wiped %s" (Pub_point.uri pp);
    undo = (fun () -> List.iter (fun (filename, bytes) -> Pub_point.put pp ~filename bytes) originals) }

let repair (a : applied) = a.undo ()
