(** The set of all publication points, addressable by URI — the stand-in for
    "repositories distributed throughout the Internet".

    The relying party resolves rsync URIs here, subject to a caller-supplied
    reachability oracle; the simulation layer wires that oracle to the BGP
    data plane, closing the paper's Figure 1 loop. *)

type t

val create : unit -> t

val add : t -> Pub_point.t -> unit
(** Raises [Invalid_argument] on a duplicate URI. *)

val find : t -> string -> Pub_point.t option
val find_exn : t -> string -> Pub_point.t
val points : t -> Pub_point.t list

val add_mirror : t -> of_uri:string -> Pub_point.t -> unit
(** Register a mirror of an existing point
    (draft-ietf-sidr-multiple-publication-points, the paper's ref [16]):
    the same objects served from a second location, ideally hosted outside
    the address space the objects themselves validate.  Raises
    [Invalid_argument] when the primary is unknown. *)

val mirrors_of : t -> string -> Pub_point.t list

val refresh_mirrors : t -> unit
(** Copy each primary's current files onto its mirrors.  Mirrors lag until
    refreshed, like real ones. *)

val add_rrdp : t -> of_uri:string -> Pub_point.t -> unit
(** Register an RRDP delta service (RFC 8182) for an existing primary.  The
    given point carries addressing only (the notification endpoint's URI,
    host address and AS), so a transport can price and fault the RRDP
    channel independently of the rsync primary.  Raises [Invalid_argument]
    when the primary is unknown or already has a service. *)

val rrdp_of : t -> string -> (Pub_point.t * Rrdp.server) option
(** The RRDP endpoint and server tracking a primary, if registered. *)

val refresh_rrdp : t -> unit
(** Version each RRDP server against its primary's current content.  Like
    mirrors, RRDP lags until refreshed. *)
