(* The transport layer between a relying party and the repositories.

   PR 1 treated fetch as an instantaneous reachability-oracle call; this
   module makes the network explicit.  A transport answers one question —
   "what does it cost to pull this publication point right now?" — from two
   inputs:

   - a *latency oracle*, normally wired by the simulation layer to the BGP
     data plane (time proportional to the forwarding path the RP's previous
     sync produced; [None] when no working route exists).  This is the
     paper's Section 6 circularity expressed as time instead of a boolean;
   - per-point *fault state*, set by operators or adversaries: a repository
     can be healthy, slow (fixed added latency), stalling (a Stalloris-style
     trickle that multiplies transfer time, typically past any timeout), or
     hard-unreachable.

   Time is virtual and unit-free ("transport ticks"); the relying party's
   fetch policy spends them against per-point timeouts and a total sync
   budget.  A zero-latency, fault-free transport ([instant]) is
   behaviourally identical to the PR-1 oracle — the equivalence tests pin
   that down. *)

type fault =
  | Healthy
  | Slow of int        (* additive latency on every request *)
  | Stalling of int    (* trickle-served: multiplies transfer time *)
  | Unreachable        (* black-holed: no route at all *)
  | Refused            (* connection refused: the host answers, with a RST *)
  | Dns_failure        (* no address associated with name *)
  | Timing_out         (* connect timeout: every attempt outlives the budget *)
  | Redirect of string (* cross-origin redirect; RPs refuse to follow *)

let fault_to_string = function
  | Healthy -> "healthy"
  | Slow d -> Printf.sprintf "slow(+%d)" d
  | Stalling k -> Printf.sprintf "stalling(x%d)" k
  | Unreachable -> "unreachable"
  | Refused -> "refused"
  | Dns_failure -> "dns-failure"
  | Timing_out -> "timing-out"
  | Redirect origin -> Printf.sprintf "redirect(%s)" origin

type t = {
  mutable latency_of : Pub_point.t -> int option;
  faults : (string, fault) Hashtbl.t;
  views : (string, unit -> (string * string) list) Hashtbl.t;
  (* per-URI listing overrides: what THIS client is served instead of the
     point's published content — a split-view (mirror-world) authority or
     an on-path adversary discriminating by requester.  Timing is
     unaffected; only the payload forks. *)
  failure_cost : int; (* time burned learning that there is no route *)
}

let create ?(latency_of = fun _ -> Some 0) ?(failure_cost = 1) () =
  { latency_of; faults = Hashtbl.create 8; views = Hashtbl.create 4; failure_cost }

(* The PR-1 world: every request costs nothing and nothing is faulty. *)
let instant () = create ~failure_cost:0 ()

let of_oracle reachable =
  create ~latency_of:(fun pp -> if reachable pp then Some 0 else None) ()

let set_latency_of t f = t.latency_of <- f

let set_fault t ~uri fault =
  match fault with
  | Healthy -> Hashtbl.remove t.faults uri
  | _ -> Hashtbl.replace t.faults uri fault

let fault_of t ~uri = Option.value (Hashtbl.find_opt t.faults uri) ~default:Healthy
let clear_fault t ~uri = Hashtbl.remove t.faults uri
let clear_faults t = Hashtbl.reset t.faults

let faults t = Hashtbl.fold (fun uri f acc -> (uri, f) :: acc) t.faults []

let set_view t ~uri listing = Hashtbl.replace t.views uri listing
let clear_view t ~uri = Hashtbl.remove t.views uri
let view_of t ~uri = Hashtbl.find_opt t.views uri
let views t = Hashtbl.fold (fun uri _ acc -> uri :: acc) t.views []

(* One request against [point]: how long until the transfer completes?
   [`Ok dt] within the timeout, [`Stalled timeout] when the transfer would
   outlive it (the caller's time is spent either way), [`Unroutable dt]
   when no route exists or the host refuses — detected quickly. *)
let probe t ~(point : Pub_point.t) ~timeout =
  let uri = Pub_point.uri point in
  match t.latency_of point with
  | None -> `Unroutable (min t.failure_cost timeout)
  | Some base -> (
    match fault_of t ~uri with
    (* the corpus's fast failures all price alike — what differs is the
       attribution the relying party records (see [fault_of]) *)
    | Unreachable | Refused | Dns_failure | Redirect _ ->
      `Unroutable (min t.failure_cost timeout)
    | Timing_out -> `Stalled timeout
    | fault ->
      let dt =
        match fault with
        | Healthy | Unreachable | Refused | Dns_failure | Timing_out | Redirect _ -> base
        | Slow d -> base + d
        (* a stall multiplies the whole transfer; [base + 1] so that even a
           zero-latency link stalls once an adversary throttles it *)
        | Stalling k -> (base + 1) * k
      in
      if dt > timeout then `Stalled timeout else `Ok dt)

type reply =
  | Served of { files : (string * string) list; fp : string; elapsed : int }
  | Stalled of { elapsed : int }
  | Unroutable of { elapsed : int }

(* Fetch the point's current listing through the transport — or, when a
   split view is installed for the URI, whatever this client is being
   shown instead. *)
let fetch t ~(point : Pub_point.t) ~timeout =
  match probe t ~point ~timeout with
  | `Ok elapsed -> (
    match view_of t ~uri:(Pub_point.uri point) with
    | None ->
      Served { files = Pub_point.snapshot point; fp = Pub_point.fingerprint point; elapsed }
    | Some listing ->
      let files = listing () in
      Served { files; fp = Pub_point.fingerprint_of_listing files; elapsed })
  | `Stalled elapsed -> Stalled { elapsed }
  | `Unroutable elapsed -> Unroutable { elapsed }

let pp fmt t =
  let fs = faults t in
  if fs = [] then Format.fprintf fmt "transport: no faults"
  else
    Format.fprintf fmt "transport faults: %s"
      (String.concat ", "
         (List.map (fun (uri, f) -> Printf.sprintf "%s=%s" uri (fault_to_string f)) fs))
