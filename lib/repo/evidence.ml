(* Signed fork/rollback evidence bundles: a portable DER container for the
   two-sided cryptographic evidence a Gossip alarm carries, so a detected
   manipulation can be exported, shipped to an operator or registry, and
   re-verified offline by someone who trusts neither the vantages nor the
   tool that raised the alarm.

   Layout (strict DER, decodable by anyone with the Rpki_asn subset):

     Evidence ::= SEQUENCE {
       magic      UTF8String ("rpki-evidence-v1"),
       kind       UTF8String ("fork" | "rollback"),
       uri        UTF8String,
       serial     INTEGER,          -- fork: the contested manifest number;
                                    -- rollback: 0 (the serials are in the obs)
       left       Attested,         -- fork: receiver side; rollback: earlier
       right      Attested,         -- fork: peer side;     rollback: later
       keys       SEQUENCE OF Key   -- vantage tree-head keys to verify under
     }
     Attested ::= SEQUENCE {
       vantage    UTF8String,
       observation OCTET STRING,    -- Log.encode_observation
       index      INTEGER,
       head       OCTET STRING,     -- Log.encode_head
       signature  OCTET STRING,
       proof      SEQUENCE OF OCTET STRING
     }
     Key ::= SEQUENCE { vantage UTF8String, n OCTET STRING, e OCTET STRING }

   The bundle embeds the public keys it claims the heads verify under; the
   offline verifier must still decide whether to trust those keys (e.g.
   compare against out-of-band vantage key fingerprints).  [verify] answers
   the purely cryptographic question: under the embedded keys, is this
   bundle genuine two-sided evidence?  It reuses {!Gossip.verify_fork}
   unchanged, so the CLI and the gossip layer cannot drift apart. *)

module Log = Rpki_transparency.Log
module Der = Rpki_asn.Der
open Rpki_crypto

let magic = "rpki-evidence-v1"

exception Bundle_error of string

let bad fmt = Printf.ksprintf (fun s -> raise (Bundle_error s)) fmt

let attested_to_der (a : Gossip.attested) =
  Der.Sequence
    [ Der.Utf8 a.Gossip.att_vantage;
      Der.Octet_string (Log.encode_observation a.Gossip.att_obs);
      Der.int_ a.Gossip.att_index;
      Der.Octet_string (Log.encode_head a.Gossip.att_head.Log.sh_head);
      Der.Octet_string a.Gossip.att_head.Log.sh_sig;
      Der.Sequence (List.map (fun h -> Der.Octet_string h) a.Gossip.att_proof) ]

let attested_of_der = function
  | Der.Sequence
      [ Der.Utf8 vantage; Der.Octet_string obs; (Der.Integer _ as index);
        Der.Octet_string head; Der.Octet_string signature; Der.Sequence proof ] ->
    let obs =
      match Log.decode_observation obs with
      | Some o -> o
      | None -> bad "malformed observation for %s" vantage
    in
    let head =
      match Log.decode_head head with
      | Some h -> h
      | None -> bad "malformed head for %s" vantage
    in
    let proof =
      List.map
        (function Der.Octet_string h -> h | _ -> bad "malformed proof node")
        proof
    in
    { Gossip.att_vantage = vantage; att_obs = obs; att_index = Der.to_int_exn index;
      att_head = { Log.sh_head = head; sh_sig = signature }; att_proof = proof }
  | _ -> bad "attested record is not the expected sextuple"

let key_to_der (vantage, (key : Rsa.public)) =
  Der.Sequence
    [ Der.Utf8 vantage;
      Der.Octet_string (Rpki_bignum.Nat.to_bytes_be key.Rsa.n);
      Der.Octet_string (Rpki_bignum.Nat.to_bytes_be key.Rsa.e) ]

let key_of_der = function
  | Der.Sequence [ Der.Utf8 vantage; Der.Octet_string n; Der.Octet_string e ] ->
    ( vantage,
      { Rsa.n = Rpki_bignum.Nat.of_bytes_be n; Rsa.e = Rpki_bignum.Nat.of_bytes_be e } )
  | _ -> bad "key record is not the expected triple"

(* The two attested sides and headline (uri, serial, kind) of an alarm, if
   it is the portable-evidence kind. *)
let sides = function
  | Gossip.Fork { fork_uri; fork_serial; left; right } ->
    Some ("fork", fork_uri, fork_serial, left, right)
  | Gossip.Rollback { rb_uri; rb_earlier; rb_later } ->
    Some ("rollback", rb_uri, 0, rb_earlier, rb_later)
  | Gossip.Inconsistent_heads _ | Gossip.Bad_head_signature _ | Gossip.Bad_inclusion _
  | Gossip.Log_reset _ -> None

let exportable alarm = sides alarm <> None

let export ~key_of alarm =
  match sides alarm with
  | None -> Error "only fork and rollback alarms carry portable evidence"
  | Some (kind, uri, serial, left, right) -> (
    let vantages =
      List.sort_uniq compare [ left.Gossip.att_vantage; right.Gossip.att_vantage ]
    in
    let keys =
      List.filter_map
        (fun v -> Option.map (fun k -> (v, k)) (key_of v))
        vantages
    in
    if List.length keys <> List.length vantages then
      Error "missing tree-head key for a vantage in the evidence"
    else
      Ok
        (Der.encode
           (Der.Sequence
              [ Der.Utf8 magic; Der.Utf8 kind; Der.Utf8 uri; Der.int_ serial;
                attested_to_der left; attested_to_der right;
                Der.Sequence (List.map key_to_der keys) ])))

(* Decode a bundle back into the alarm it was exported from plus the
   embedded keys. *)
let import bytes =
  match Der.decode bytes with
  | Error e -> Error e
  | Ok
      (Der.Sequence
        [ Der.Utf8 m; Der.Utf8 kind; Der.Utf8 uri; (Der.Integer _ as serial);
          (Der.Sequence _ as left); (Der.Sequence _ as right); Der.Sequence keys ])
    when String.equal m magic -> (
    try
      let left = attested_of_der left in
      let right = attested_of_der right in
      let keys = List.map key_of_der keys in
      let alarm =
        match kind with
        | "fork" ->
          Gossip.Fork
            { fork_uri = uri; fork_serial = Der.to_int_exn serial; left; right }
        | "rollback" -> Gossip.Rollback { rb_uri = uri; rb_earlier = left; rb_later = right }
        | other -> bad "unknown evidence kind %S" other
      in
      Ok (alarm, keys)
    with
    | Bundle_error why -> Error why
    | Der.Decode_error why -> Error why)
  | Ok _ -> Error "not a rpki-evidence container"

(* Offline verification: decode, then re-run the gossip layer's from-scratch
   evidence check under the embedded keys. *)
let verify bytes =
  match import bytes with
  | Error e -> Error e
  | Ok (alarm, keys) ->
    if Gossip.verify_fork ~key_of:(fun v -> List.assoc_opt v keys) alarm then
      Ok alarm
    else Error "evidence does not verify under its embedded keys"
