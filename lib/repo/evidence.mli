(** Signed fork/rollback evidence bundles: portable DER containers for the
    two-sided cryptographic evidence a {!Gossip.alarm} carries.

    A bundle embeds both attested sides (observations, leaf indexes, signed
    tree heads, inclusion proofs) and the vantage public keys it claims the
    heads verify under.  {!verify} answers the purely cryptographic
    question — under the embedded keys, is this genuine evidence? — by
    re-running {!Gossip.verify_fork} from scratch; whether to {e trust}
    those keys is the importer's decision (compare fingerprints
    out-of-band). *)

open Rpki_crypto

val magic : string

val exportable : Gossip.alarm -> bool
(** Only [Fork] and [Rollback] alarms carry portable evidence. *)

val export :
  key_of:(string -> Rsa.public option) -> Gossip.alarm -> (string, string) result
(** Encode an alarm as a bundle, embedding each involved vantage's tree-head
    key from [key_of].  [Error] for non-exportable alarms or missing keys. *)

val import : string -> (Gossip.alarm * (string * Rsa.public) list, string) result
(** Decode a bundle into the alarm and its embedded keys.  Decoding alone
    proves nothing — call {!verify}. *)

val verify : string -> (Gossip.alarm, string) result
(** Decode and re-verify from scratch under the embedded keys.  [Ok] is
    cryptographic proof of a split view or served rollback, needing no
    trust in the exporter. *)
