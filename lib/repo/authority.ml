(* A stateful RPKI authority (certification authority).

   Owns a keypair, a resource certificate signed by its parent (or by itself
   for a trust anchor), and a publication point holding everything it has
   issued: child RCs, ROAs, its CRL and its manifest (RFC 6481 layout).

   All legitimate operations *and* all of the paper's manipulations are
   methods here — a misbehaving authority is just an authority whose owner
   calls the wrong methods, which is exactly the paper's point. *)

open Rpki_core
open Rpki_crypto

type t = {
  name : string;
  mutable key : Rsa.keypair; (* mutable to support RFC 6489 key rollover *)
  ee_key : Rsa.keypair; (* reused for EE certificates; reuse is permitted and
                           cuts keygen cost when building large hierarchies *)
  key_bits : int;
  rng : Rpki_util.Rng.t; (* deterministic per-authority entropy for EE keys *)
  mutable cert : Cert.t; (* current RC (parent-signed, or self-signed TA) *)
  parent : t option;
  pub : Pub_point.t;
  mutable next_serial : int;
  mutable revoked : int list;
  mutable manifest_number : int;
  mutable children : t list;
  mutable roas : (string * Roa.t) list; (* filename -> current ROA *)
  validity : int; (* ticks of validity given to issued objects *)
  refresh_interval : int; (* ticks of CRL/manifest currency *)
}

(* Read-only accessors: the record itself stays private so every state
   change flows through the operations below (and thus republishes). *)
let name t = t.name
let key t = t.key
let ee_key t = t.ee_key
let cert t = t.cert
let parent t = t.parent
let pub t = t.pub
let children t = t.children
let roas t = t.roas
let revoked t = t.revoked

let crl_filename t = t.name ^ ".crl"
let manifest_filename t = t.name ^ ".mft"
let cert_filename name = name ^ ".cer"

let fresh_serial t =
  let s = t.next_serial in
  t.next_serial <- s + 1;
  s

(* Regenerate and publish the CRL, then the manifest over everything else at
   the publication point.  Called after every mutation: an authority always
   keeps its *own* publication point consistent — inconsistency only arises
   from third-party faults, which is the distinction the manifest exists to
   surface. *)
let publish_manifest t ~now =
  t.manifest_number <- t.manifest_number + 1;
  let files =
    List.filter (fun (name, _) -> name <> manifest_filename t) (Pub_point.files t.pub)
  in
  let mft =
    Manifest.issue ~ca_key:t.key.Rsa.private_ ~ca_subject:t.name ~serial:(fresh_serial t)
      ~rng:t.rng ~ee_key:t.ee_key ~manifest_number:t.manifest_number ~this_update:now
      ~next_update:(Rtime.add now t.refresh_interval) ~files ()
  in
  Pub_point.put t.pub ~filename:(manifest_filename t) (Manifest.encode mft)

let republish t ~now =
  let crl =
    Crl.issue ~ca_key:t.key.Rsa.private_ ~issuer:t.name ~this_update:now
      ~next_update:(Rtime.add now t.refresh_interval) ~revoked_serials:t.revoked
  in
  Pub_point.put t.pub ~filename:(crl_filename t) (Crl.encode crl);
  publish_manifest t ~now

let default_validity = Rtime.year
let default_refresh = Rtime.day * 14

let create_trust_anchor ~name ~resources ~uri ~addr ~host_asn ~now ~universe
    ?(key_bits = Rsa.default_bits) ?(validity = default_validity)
    ?(refresh_interval = default_refresh) () =
  let rng = Drbg.to_rng (Drbg.create ~seed:("authority:" ^ name)) in
  let key = Rsa.generate ~bits:key_bits rng in
  let ee_key = Rsa.generate ~bits:key_bits rng in
  let cert =
    Cert.self_signed ~key ~subject:name ~resources ~not_before:now
      ~not_after:(Rtime.add now validity) ~repo_uri:uri ~manifest_uri:(name ^ ".mft") ()
  in
  let pub = Pub_point.create ~uri ~addr ~host_asn in
  Universe.add universe pub;
  let t =
    { name; key; ee_key; key_bits; rng; cert; parent = None; pub; next_serial = 2; revoked = [];
      manifest_number = 0; children = []; roas = []; validity; refresh_interval }
  in
  (* the TA certificate itself is fetched from the TA's publication point *)
  Pub_point.put pub ~filename:(cert_filename name) (Cert.encode cert);
  republish t ~now;
  t

(* The TAL a relying party needs to start from this trust anchor. *)
let tal t =
  if t.parent <> None then invalid_arg "Authority.tal: not a trust anchor";
  (t.name, t.key.Rsa.public, (Pub_point.uri t.pub), cert_filename t.name)

(* Issue a child CA with its own key, certificate and publication point. *)
let create_child parent ~name ~resources ~uri ~addr ~host_asn ~now ~universe
    ?key_bits ?validity ?refresh_interval () =
  let key_bits = Option.value key_bits ~default:parent.key_bits in
  let validity = Option.value validity ~default:parent.validity in
  let refresh_interval = Option.value refresh_interval ~default:parent.refresh_interval in
  let rng = Drbg.to_rng (Drbg.create ~seed:("authority:" ^ name)) in
  let key = Rsa.generate ~bits:key_bits rng in
  let ee_key = Rsa.generate ~bits:key_bits rng in
  let serial = fresh_serial parent in
  let cert =
    Cert.issue ~issuer_key:parent.key.Rsa.private_ ~serial ~issuer:parent.name ~subject:name
      ~public_key:key.Rsa.public ~resources ~not_before:now ~not_after:(Rtime.add now validity)
      ~is_ca:true ~crl_uri:(crl_filename parent) ~aia_uri:(Pub_point.uri parent.pub) ~repo_uri:uri
      ~manifest_uri:(name ^ ".mft") ()
  in
  let pub = Pub_point.create ~uri ~addr ~host_asn in
  Universe.add universe pub;
  let child =
    { name; key; ee_key; key_bits; rng; cert; parent = Some parent; pub; next_serial = 2; revoked = [];
      manifest_number = 0; children = []; roas = []; validity; refresh_interval }
  in
  parent.children <- parent.children @ [ child ];
  Pub_point.put parent.pub ~filename:(cert_filename name) (Cert.encode cert);
  republish parent ~now;
  republish child ~now;
  child

(* Issue a ROA; returns the filename it is published under. *)
let issue_roa t ~asid ~v4_entries ?(v6_entries = []) ~now () =
  let serial = fresh_serial t in
  let roa =
    Roa.issue ~ca_key:t.key.Rsa.private_ ~ca_subject:t.name ~serial ~rng:t.rng
      ~ee_key:t.ee_key ~asid ~v4_entries ~v6_entries ~not_before:now
      ~not_after:(Rtime.add now t.validity) ~crl_uri:(crl_filename t)
      ~aia_uri:(Pub_point.uri t.pub) ()
  in
  let filename = Printf.sprintf "roa-%d.roa" serial in
  t.roas <- t.roas @ [ (filename, roa) ];
  Pub_point.put t.pub ~filename (Roa.encode roa);
  republish t ~now;
  (filename, roa)

(* Convenience used by fixtures: single-prefix ROA. *)
let issue_simple_roa t ~asid ~prefix ?max_len ~now () =
  issue_roa t ~asid ~v4_entries:[ Roa.entry ?max_len prefix ] ~now ()

(* --- legitimate maintenance --- *)

(* Refresh the CRL and manifest windows (a healthy authority does this well
   before nextUpdate; a faulty one forgets — Side Effect 6). *)
let refresh t ~now = republish t ~now

(* Re-sign an expiring ROA in place. *)
let renew_roa t ~filename ~now =
  match List.assoc_opt filename t.roas with
  | None -> invalid_arg "Authority.renew_roa: unknown ROA"
  | Some roa ->
    let serial = fresh_serial t in
    let roa' =
      Roa.issue ~ca_key:t.key.Rsa.private_ ~ca_subject:t.name ~serial ~rng:t.rng
        ~ee_key:t.ee_key ~asid:roa.Roa.asid ~v4_entries:roa.Roa.v4_entries
        ~v6_entries:roa.Roa.v6_entries ~not_before:now ~not_after:(Rtime.add now t.validity)
        ~crl_uri:(crl_filename t) ~aia_uri:(Pub_point.uri t.pub) ()
    in
    t.roas <- List.map (fun (f, r) -> if f = filename then (f, roa') else (f, r)) t.roas;
    Pub_point.put t.pub ~filename (Roa.encode roa');
    republish t ~now;
    roa'

(* --- the fault corpus's authority-side misbehaviors ---

   The real RPKI's background noise (SNIPPETS.md): operators who let their
   CRL lapse, publish forward-dated certificates, skip or rewind manifest
   numbers, overclaim resources, or stop serving a manifest entirely.  Each
   is an authority keeping its point *self-consistent* while violating one
   currency or containment rule — exactly the kind of misbehavior third-party
   faults (delete/corrupt/wipe) cannot express. *)

(* Backdated windows clamp at the epoch: times are encoded as naturals, and
   an injection at an early tick only needs the window to be closed, not to
   reach a particular depth into the past. *)
let back now delta = max Rtime.epoch (Rtime.add now (-delta))

(* Publish a CRL whose nextUpdate is already past (47x "CRL has expired").
   The manifest is regenerated over the stale CRL, so hashes still match and
   the lapsed window is the only fault. *)
let expire_crl t ~now =
  let crl =
    Crl.issue ~ca_key:t.key.Rsa.private_ ~issuer:t.name
      ~this_update:(back now t.refresh_interval)
      ~next_update:(back now 1) ~revoked_serials:t.revoked
  in
  Pub_point.put t.pub ~filename:(crl_filename t) (Crl.encode crl);
  publish_manifest t ~now

(* Re-sign a ROA with an already-closed validity window (13x "certificate
   has expired" — the EE certificate carries the window). *)
let expire_roa t ~filename ~now =
  match List.assoc_opt filename t.roas with
  | None -> invalid_arg "Authority.expire_roa: unknown ROA"
  | Some roa ->
    let serial = fresh_serial t in
    let roa' =
      Roa.issue ~ca_key:t.key.Rsa.private_ ~ca_subject:t.name ~serial ~rng:t.rng
        ~ee_key:t.ee_key ~asid:roa.Roa.asid ~v4_entries:roa.Roa.v4_entries
        ~v6_entries:roa.Roa.v6_entries ~not_before:(back now t.validity)
        ~not_after:(back now 1) ~crl_uri:(crl_filename t)
        ~aia_uri:(Pub_point.uri t.pub) ()
    in
    t.roas <- List.map (fun (f, r) -> if f = filename then (f, roa') else (f, r)) t.roas;
    Pub_point.put t.pub ~filename (Roa.encode roa');
    republish t ~now

(* Re-sign a ROA forward-dated by [delay] ticks (7x "not yet valid"). *)
let postdate_roa t ~filename ~delay ~now =
  match List.assoc_opt filename t.roas with
  | None -> invalid_arg "Authority.postdate_roa: unknown ROA"
  | Some roa ->
    let serial = fresh_serial t in
    let roa' =
      Roa.issue ~ca_key:t.key.Rsa.private_ ~ca_subject:t.name ~serial ~rng:t.rng
        ~ee_key:t.ee_key ~asid:roa.Roa.asid ~v4_entries:roa.Roa.v4_entries
        ~v6_entries:roa.Roa.v6_entries ~not_before:(Rtime.add now delay)
        ~not_after:(Rtime.add now (delay + t.validity)) ~crl_uri:(crl_filename t)
        ~aia_uri:(Pub_point.uri t.pub) ()
    in
    t.roas <- List.map (fun (f, r) -> if f = filename then (f, roa') else (f, r)) t.roas;
    Pub_point.put t.pub ~filename (Roa.encode roa');
    republish t ~now

(* Jump the manifest number forward by [gap] (18x "seqnum gap detected"):
   the states in between were never published, so a relying party replaying
   the point sees the number leap. *)
let skip_manifest_numbers t ~gap ~now =
  t.manifest_number <- t.manifest_number + max 0 gap;
  republish t ~now

(* Publish with a manifest number lower than the last one served (2x
   "manifest numbers lower than expected").  [republish] adds one back, so
   the net published number drops by [by]. *)
let regress_manifest_number t ~by ~now =
  t.manifest_number <- max 0 (t.manifest_number - max 0 by - 1);
  republish t ~now

(* Issue a ROA for space outside this authority's own certificate (7x
   "RFC 3779 resource not subset of parent's resources").  Returns the
   filename; [revoke_roa] is the repair. *)
let overclaim_roa t ~asid ~prefix ~now =
  let serial = fresh_serial t in
  let roa =
    Roa.issue ~ca_key:t.key.Rsa.private_ ~ca_subject:t.name ~serial ~rng:t.rng
      ~ee_key:t.ee_key ~asid ~v4_entries:[ Roa.entry prefix ] ~v6_entries:[]
      ~not_before:now ~not_after:(Rtime.add now t.validity) ~crl_uri:(crl_filename t)
      ~aia_uri:(Pub_point.uri t.pub) ()
  in
  let filename = Printf.sprintf "roa-%d.roa" serial in
  t.roas <- t.roas @ [ (filename, roa) ];
  Pub_point.put t.pub ~filename (Roa.encode roa);
  republish t ~now;
  filename

(* Stop serving a manifest (20x "no valid manifest available") without
   touching anything else; [refresh] is the repair. *)
let withhold_manifest t = Pub_point.delete t.pub ~filename:(manifest_filename t)

(* --- the paper's manipulations (Section 3) --- *)

(* Overt revocation of a child RC via the CRL (Side Effect 1).  Also removes
   the published file, as a revoking CA would. *)
let revoke_child t (child : t) ~now =
  t.revoked <- child.cert.Cert.serial :: t.revoked;
  Pub_point.delete t.pub ~filename:(cert_filename child.name);
  t.children <- List.filter (fun c -> c.name <> child.name) t.children;
  republish t ~now

(* Overt revocation of a ROA: revoke its EE certificate and delist it. *)
let revoke_roa t ~filename ~now =
  match List.assoc_opt filename t.roas with
  | None -> invalid_arg "Authority.revoke_roa: unknown ROA"
  | Some roa ->
    t.revoked <- roa.Roa.ee.Cert.serial :: t.revoked;
    t.roas <- List.remove_assoc filename t.roas;
    Pub_point.delete t.pub ~filename;
    republish t ~now

(* Stealthy revocation (Side Effect 2): simply delete the object from the
   repository, leaving the CRL untouched.  The manifest is regenerated —
   the authority controls it, so nothing looks locally inconsistent. *)
let stealth_delete_roa t ~filename ~now =
  if not (Pub_point.mem t.pub ~filename) then
    invalid_arg "Authority.stealth_delete_roa: unknown file";
  t.roas <- List.remove_assoc filename t.roas;
  Pub_point.delete t.pub ~filename;
  republish t ~now

let stealth_delete_child_cert t (child : t) ~now =
  Pub_point.delete t.pub ~filename:(cert_filename child.name);
  t.children <- List.filter (fun c -> c.name <> child.name) t.children;
  republish t ~now

(* Overwrite a child's RC with one for a smaller resource set (the key
   primitive behind targeted whacking, Side Effect 3).  The child keeps its
   key; only the resource bundle shrinks.  Stealthy: no CRL entry. *)
let shrink_child_cert t (child : t) ~resources ~now =
  if not (List.exists (fun c -> c.name = child.name) t.children) then
    invalid_arg "Authority.shrink_child_cert: not my child";
  let serial = fresh_serial t in
  let cert' =
    Cert.issue ~issuer_key:t.key.Rsa.private_ ~serial ~issuer:t.name ~subject:child.name
      ~public_key:child.key.Rsa.public ~resources ~not_before:now
      ~not_after:(Rtime.add now t.validity) ~is_ca:true ~crl_uri:(crl_filename t)
      ~aia_uri:(Pub_point.uri t.pub) ~repo_uri:(Pub_point.uri child.pub)
      ~manifest_uri:(child.name ^ ".mft") ()
  in
  child.cert <- cert';
  Pub_point.put t.pub ~filename:(cert_filename child.name) (Cert.encode cert');
  republish t ~now;
  cert'

(* Certify another authority's existing key directly — the "reissue the
   damaged descendant objects as its own" step of make-before-break
   (Figure 3).  The subject keeps its publication point; relying parties
   will discover it through this certificate instead of the (about to be
   damaged) original chain. *)
let certify_key t ~subject ~public_key ~resources ~repo_uri ~manifest_uri ~now =
  let serial = fresh_serial t in
  let cert =
    Cert.issue ~issuer_key:t.key.Rsa.private_ ~serial ~issuer:t.name ~subject
      ~public_key ~resources ~not_before:now ~not_after:(Rtime.add now t.validity) ~is_ca:true
      ~crl_uri:(crl_filename t) ~aia_uri:(Pub_point.uri t.pub) ~repo_uri ~manifest_uri ()
  in
  let filename = Printf.sprintf "%s-reissued-by-%s.cer" subject t.name in
  Pub_point.put t.pub ~filename (Cert.encode cert);
  republish t ~now;
  (filename, cert)

(* RFC 6489 key rollover: generate a new key pair, obtain a new RC for it
   from the parent (revoking the old one), and re-sign everything this
   authority has issued.  Object filenames persist — the "objects can be
   overwritten" design decision exists precisely to make this easy, which is
   also what makes Side Effect 2 possible. *)
let rec roll_key t ~now =
  let old_serial = t.cert.Cert.serial in
  let new_key = Rsa.generate ~bits:t.key_bits t.rng in
  t.key <- new_key;
  (match t.parent with
  | None ->
    t.cert <-
      Cert.self_signed ~key:new_key ~subject:t.name ~resources:t.cert.Cert.resources
        ~not_before:now ~not_after:(Rtime.add now t.validity) ~repo_uri:(Pub_point.uri t.pub)
        ~manifest_uri:(manifest_filename t) ();
    Pub_point.put t.pub ~filename:(cert_filename t.name) (Cert.encode t.cert)
  | Some parent ->
    parent.revoked <- old_serial :: parent.revoked;
    let serial = fresh_serial parent in
    t.cert <-
      Cert.issue ~issuer_key:parent.key.Rsa.private_ ~serial ~issuer:parent.name ~subject:t.name
        ~public_key:new_key.Rsa.public ~resources:t.cert.Cert.resources ~not_before:now
        ~not_after:(Rtime.add now t.validity) ~is_ca:true ~crl_uri:(crl_filename parent)
        ~aia_uri:(Pub_point.uri parent.pub) ~repo_uri:(Pub_point.uri t.pub)
        ~manifest_uri:(manifest_filename t) ();
    Pub_point.put parent.pub ~filename:(cert_filename t.name) (Cert.encode t.cert);
    republish parent ~now);
  (* everything below was signed with the old key: re-sign in place *)
  List.iter (fun child -> reissue_child_cert t child ~now) t.children;
  t.roas <-
    List.map
      (fun (filename, roa) ->
        let serial = fresh_serial t in
        let roa' =
          Roa.issue ~ca_key:t.key.Rsa.private_ ~ca_subject:t.name ~serial ~rng:t.rng
            ~ee_key:t.ee_key ~asid:roa.Roa.asid ~v4_entries:roa.Roa.v4_entries
            ~v6_entries:roa.Roa.v6_entries ~not_before:now ~not_after:(Rtime.add now t.validity)
            ~crl_uri:(crl_filename t) ~aia_uri:(Pub_point.uri t.pub) ()
        in
        Pub_point.put t.pub ~filename (Roa.encode roa');
        (filename, roa'))
      t.roas;
  republish t ~now

(* Re-sign a child's RC with this authority's current key (same subject key
   and resources, fresh serial). *)
and reissue_child_cert t (child : t) ~now =
  let serial = fresh_serial t in
  child.cert <-
    Cert.issue ~issuer_key:t.key.Rsa.private_ ~serial ~issuer:t.name ~subject:child.name
      ~public_key:child.key.Rsa.public ~resources:child.cert.Cert.resources ~not_before:now
      ~not_after:(Rtime.add now t.validity) ~is_ca:true ~crl_uri:(crl_filename t)
      ~aia_uri:(Pub_point.uri t.pub) ~repo_uri:(Pub_point.uri child.pub)
      ~manifest_uri:(manifest_filename child) ();
  Pub_point.put t.pub ~filename:(cert_filename child.name) (Cert.encode child.cert)

(* --- traversal helpers --- *)

let rec iter_descendants t ~f = List.iter (fun c -> f c; iter_descendants c ~f) t.children

let descendants t =
  let acc = ref [] in
  iter_descendants t ~f:(fun c -> acc := c :: !acc);
  List.rev !acc

let rec find_descendant t ~name =
  if t.name = name then Some t
  else List.find_map (fun c -> find_descendant c ~name) t.children

(* Full upkeep of an authority subtree: re-sign every RC and ROA and refresh
   each CRL/manifest window — what a healthy operator's cron job does each
   period.  The stall experiments run this every tick for everyone, so only
   a relying party that cannot *fetch* sees objects age toward expiry. *)
let maintain t ~now =
  let upkeep a =
    (match a.parent with
    | None ->
      (* the trust anchor re-signs its own certificate; same key, so TALs
         stay valid *)
      a.cert <-
        Cert.self_signed ~key:a.key ~subject:a.name ~resources:a.cert.Cert.resources
          ~not_before:now ~not_after:(Rtime.add now a.validity) ~repo_uri:(Pub_point.uri a.pub)
          ~manifest_uri:(manifest_filename a) ();
      Pub_point.put a.pub ~filename:(cert_filename a.name) (Cert.encode a.cert)
    | Some _ -> () (* re-signed by its parent's [upkeep] *));
    List.iter (fun child -> reissue_child_cert a child ~now) a.children;
    List.iter (fun (filename, _) -> ignore (renew_roa a ~filename ~now)) a.roas;
    refresh a ~now
  in
  upkeep t;
  iter_descendants t ~f:upkeep

(* Every ROA currently published by [t] or any descendant, with its issuer. *)
let all_roas t =
  let acc = ref (List.map (fun (f, r) -> (t, f, r)) t.roas) in
  iter_descendants t ~f:(fun c -> acc := !acc @ List.map (fun (f, r) -> (c, f, r)) c.roas);
  !acc

let pp fmt t =
  Format.fprintf fmt "%s [%s] (%d children, %d ROAs)" t.name
    (Resources.to_string t.cert.Cert.resources)
    (List.length t.children) (List.length t.roas)
