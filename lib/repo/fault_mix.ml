(* The fault-mix engine: corpus-weighted background noise for a running
   simulation.

   Each tick, every target authority independently draws against the fault
   rate; a firing draw samples a {!Fault_corpus.category} and injects the
   corresponding misbehavior — authority-side (expired CRL, withheld
   manifest, seqnum gap, expired / forward-dated ROA, RFC 3779 overclaim,
   manifest-number regression) or transport-side (DNS failure, refused /
   timed-out connects, cross-origin redirect) on every transport given.
   Injected faults age out: after [repair_after] ticks the engine runs the
   matching repair (a fresh republish, a renewed ROA, a cleared fault), so
   the mix is a churning background, not monotone decay.

   Determinism: all randomness flows through one seeded [Rng.t], consumed
   in a fixed order (targets in list order; one gate draw each, plus the
   draws of the category actually fired).  At [rate = 0.] the generator is
   never consulted and no target is touched, so a rate-zero run is
   byte-identical to one with no engine at all — the property the QCheck
   suite pins down. *)

open Rpki_core
module Rng = Rpki_util.Rng

type active = {
  af_category : Fault_corpus.category;
  af_authority : string;
  af_at : Rtime.t;
  af_repair : now:Rtime.t -> unit;
  af_description : string;
}

type injection = {
  inj_category : Fault_corpus.category;
  inj_authority : string;
  inj_at : Rtime.t;
  inj_description : string;
}

type t = {
  rng : Rng.t;
  rate : float;
  repair_after : int;
  mutable active : active list;
  mutable injected : int;
  mutable repaired : int;
  counts : (Fault_corpus.category, int) Hashtbl.t;
}

let create ~seed ~rate ?(repair_after = 4) () =
  if rate < 0. || rate > 1. then invalid_arg "Fault_mix.create: rate outside [0,1]";
  { rng = Rng.create seed; rate; repair_after; active = []; injected = 0; repaired = 0;
    counts = Hashtbl.create 16 }

let rate t = t.rate
let active t = t.active
let injected t = t.injected
let repaired t = t.repaired

let counts t =
  List.filter_map
    (fun (c, _) ->
      match Hashtbl.find_opt t.counts c with Some n -> Some (c, n) | None -> None)
    Fault_corpus.weights

(* An out-of-tree prefix for RFC 3779 overclaims: TEST-NET-3 is outside
   both the paper fixture's 63/8 and the world generator's 10/8. *)
let overclaim_prefix = Rpki_ip.V4.p "203.0.113.0/24"
let overclaim_asid = 64511

(* A seqnum-gap injection must leap further than honest churn does: every
   maintenance pass advances a point's manifest number once per republish
   (one per ROA renewal plus one per refresh), so the relying party only
   flags jumps beyond {!Relying_party.seqnum_gap_threshold}.  The corpus
   gaps (3, 15, ...) are scaled up accordingly. *)
let gap_size rng = 100 + Rng.int rng 100

let transport_uri authority = Pub_point.uri (Authority.pub authority)

let set_transport_fault transports ~uri fault =
  List.iter (fun tr -> Transport.set_fault tr ~uri fault) transports

let clear_transport_fault transports ~uri =
  List.iter (fun tr -> Transport.clear_fault tr ~uri) transports

(* Turn one sampled category into a concrete fault on [authority] (or its
   transport path).  Returns [None] when the category needs a ROA and the
   authority has none to break. *)
let apply t ~authority ~transports ~now category =
  let name = Authority.name authority in
  let uri = transport_uri authority in
  let roa_target () =
    match Authority.roas authority with
    | [] -> None
    | roas -> Some (fst (Rng.pick t.rng roas))
  in
  match (category : Fault_corpus.category) with
  | Expired_crl ->
    Authority.expire_crl authority ~now;
    Some
      ( Printf.sprintf "%s: CRL published already expired" name,
        fun ~now -> Authority.refresh authority ~now )
  | Missing_manifest ->
    Authority.withhold_manifest authority;
    Some
      ( Printf.sprintf "%s: manifest withheld" name,
        fun ~now -> Authority.refresh authority ~now )
  | Seqnum_gap ->
    let gap = gap_size t.rng in
    Authority.skip_manifest_numbers authority ~gap ~now;
    Some (Printf.sprintf "%s: manifest number jumped by %d" name gap, fun ~now:_ -> ())
  | Expired_cert -> (
    match roa_target () with
    | None -> None
    | Some filename ->
      Authority.expire_roa authority ~filename ~now;
      Some
        ( Printf.sprintf "%s: %s re-signed already expired" name filename,
          fun ~now -> ignore (Authority.renew_roa authority ~filename ~now) ))
  | Not_yet_valid_cert -> (
    match roa_target () with
    | None -> None
    | Some filename ->
      Authority.postdate_roa authority ~filename ~delay:(8 * (t.repair_after + 1)) ~now;
      Some
        ( Printf.sprintf "%s: %s forward-dated" name filename,
          fun ~now -> ignore (Authority.renew_roa authority ~filename ~now) ))
  | Rfc3779_violation ->
    let filename =
      Authority.overclaim_roa authority ~asid:overclaim_asid ~prefix:overclaim_prefix ~now
    in
    Some
      ( Printf.sprintf "%s: %s claims resources outside the certificate" name filename,
        fun ~now -> Authority.revoke_roa authority ~filename ~now )
  | Manifest_regression ->
    let by = 1 + Rng.int t.rng 3 in
    Authority.regress_manifest_number authority ~by ~now;
    Some (Printf.sprintf "%s: manifest number regressed by %d" name by, fun ~now:_ -> ())
  | Dns_failure ->
    set_transport_fault transports ~uri Transport.Dns_failure;
    Some
      ( Printf.sprintf "%s: no address associated with name" name,
        fun ~now:_ -> clear_transport_fault transports ~uri )
  | Connect_refused ->
    set_transport_fault transports ~uri Transport.Refused;
    Some
      ( Printf.sprintf "%s: connect refused" name,
        fun ~now:_ -> clear_transport_fault transports ~uri )
  | Connect_timeout ->
    set_transport_fault transports ~uri Transport.Timing_out;
    Some
      ( Printf.sprintf "%s: connect timeout" name,
        fun ~now:_ -> clear_transport_fault transports ~uri )
  | Cross_origin_redirect ->
    set_transport_fault transports ~uri (Transport.Redirect ("mirror." ^ uri));
    Some
      ( Printf.sprintf "%s: cross-origin redirect" name,
        fun ~now:_ -> clear_transport_fault transports ~uri )

let tick t ~targets ~transports ~now =
  (* age out and repair first, so a slot freed this tick can fault again *)
  let due, live =
    List.partition (fun a -> now - a.af_at >= t.repair_after) t.active
  in
  List.iter
    (fun a ->
      a.af_repair ~now;
      t.repaired <- t.repaired + 1)
    due;
  t.active <- live;
  if t.rate = 0. then []
  else
    List.filter_map
      (fun authority ->
        if Rng.float t.rng >= t.rate then None
        else
          let category = Fault_corpus.sample t.rng in
          match apply t ~authority ~transports ~now category with
          | None -> None
          | Some (description, repair) ->
            let name = Authority.name authority in
            t.injected <- t.injected + 1;
            Hashtbl.replace t.counts category
              (1 + Option.value (Hashtbl.find_opt t.counts category) ~default:0);
            t.active <-
              { af_category = category; af_authority = name; af_at = now;
                af_repair = repair; af_description = description }
              :: t.active;
            Some
              { inj_category = category; inj_authority = name; inj_at = now;
                inj_description = description })
      targets
