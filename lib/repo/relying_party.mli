(** The relying party: fetches the distributed RPKI and computes the set of
    validated ROA payloads (RFC 6480 section 6, RFC 6483).

    Fetching goes through an explicit {!Transport}: every request costs
    transport time (in the closed-loop simulation that cost is derived from
    the RP's own BGP data plane — the paper's Section 6 circularity expressed
    as latency) and a publication point may be slow, stalling or unreachable.
    A {!fetch_policy} governs how the RP spends that time: per-point timeout,
    total sync budget, bounded retries with deterministic backoff, and a
    fallback ladder live -> mirror -> RRDP -> stale cache.  Whatever channel
    ultimately served each point — and how stale its data was — is recorded
    as a {!transfer} on the sync result.

    Sync is incremental: per publication point the RP memoizes the
    validation outcome keyed by the point's content fingerprint, the
    issuing certificate, and the validity windows consulted; unchanged
    points are not re-validated.  Each {!sync} also reports the VRP
    {!Vrp.diff} against the previous sync and maintains an
    {!Origin_validation.index} patched in place by that diff.  A warm sync
    is guaranteed to produce exactly the VRP set and classification results
    of a from-scratch sync; under a zero-latency fault-free transport this
    holds bit-for-bit against the pre-transport behaviour.

    The relying-party state is opaque; all incremental bookkeeping is
    internal and can only be dropped wholesale via {!flush_cache}. *)

open Rpki_core

type tal = {
  ta_name : string;
  ta_key : Rpki_crypto.Rsa.public;
  ta_uri : string;
  ta_cert_filename : string;
}

val tal_of_authority : Authority.t -> tal
(** The TAL of a trust-anchor authority. *)

type fetch_status =
  | Fetched          (** live copy obtained *)
  | Fetched_mirror   (** primary failed; a mirror served the copy *)
  | Fetched_rrdp     (** primary failed; the RRDP delta service served it *)
  | Stale_cache      (** all channels failed; last-known snapshot used *)
  | Unavailable      (** all channels failed and nothing cached *)

(** What to do with {e unsafe} VRPs — VRPs whose prefix overlaps the
    resources of a CA that failed to fetch or validate this sync
    (Routinator's [--unsafe-vrps] analysis).  Such a VRP may be the last
    surviving cover of address space whose more-specific ROAs just became
    invisible: keeping it can flip routes of the failed CA's customers to
    Invalid, dropping it abandons the covered space to hijack. *)
type unsafe_policy =
  | Unsafe_accept  (** use them unchanged; no analysis is run *)
  | Unsafe_warn    (** use them, but report each as an {!issue} *)
  | Unsafe_reject  (** drop them from the effective set (and report) *)

val unsafe_policy_to_string : unsafe_policy -> string

type fetch_policy = {
  point_timeout : int;  (** cap on any single request, in transport ticks *)
  sync_budget : int;    (** cap on the whole sync's transport time *)
  retries : int;        (** extra live attempts after a stalled request *)
  backoff : int;        (** base backoff between retries; 0 disables it *)
  use_mirrors : bool;
  use_rrdp : bool;
  use_stale : bool;     (** ANDed with the RP's own [use_stale] flag *)
  unsafe : unsafe_policy;  (** unsafe-VRP handling; [Unsafe_accept] in every
                               canned policy *)
}
(** How the RP spends transport time during one sync. *)

val default_policy : fetch_policy
(** Moderate timeouts, two retries, every fallback channel enabled. *)

val naive_policy : fetch_policy
(** The Stalloris victim: patient timeouts, eager retries, no alternate
    channels — a single stalling repository can eat the whole sync budget. *)

val resilient_policy : fetch_policy
(** Short timeouts, one retry, every fallback channel: confines a stalling
    adversary's damage to added staleness on the targeted points. *)

type issue = {
  uri : string;
  filename : string option;
  kind : Validation.issue_kind;  (** the corpus-aligned category *)
  reason : string;               (** human-readable detail *)
}
(** One fetch or validation problem, attributed to a location and
    classified into the typed {!Validation.issue_kind} taxonomy. *)

val issue_counts : issue list -> (Validation.issue_kind * int) list
(** Per-category totals over a sync's issues, most frequent first (ties
    broken by category label) — the run summary's histogram. *)

val seqnum_gap_threshold : int
(** Manifest-number jumps at most this large are treated as honest churn
    (every republish advances the number); larger jumps raise
    {!Validation.Ik_seqnum_gap}. *)

type transfer = {
  t_uri : string;
  t_status : fetch_status;
  t_channel : string;  (** ["live"], ["mirror:<uri>"], ["rrdp:<uri>"],
                           ["cache"] or ["none"] *)
  t_attempts : int;    (** requests issued across all channels *)
  t_elapsed : int;     (** transport time spent on this point *)
  t_data_age : int;    (** age of the data used; 0 unless a stale copy *)
}
(** The transport-level story of one publication point's fetch. *)

(** A publication point contradicting this vantage's {e own} recorded
    history — the local, no-gossip-needed signal of a rewritten past.  Only
    a log that survived the restart can raise these; a fresh log has no
    baseline to contradict. *)
type regression =
  | Serial_regression of {
      rg_uri : string;
      rg_prev : Rpki_transparency.Log.observation;
          (** the state this vantage last recorded for the point *)
      rg_now : Rpki_transparency.Log.observation;
          (** the older manifest number the point serves now *)
    }
  | Content_equivocation of {
      rg_uri : string;
      rg_index : int;  (** log index of the first observation under this key *)
      rg_prev : Rpki_transparency.Log.observation;
      rg_now : Rpki_transparency.Log.observation;
    }

val regression_to_string : regression -> string

type sync_result = {
  vrps : Vrp.t list;                       (** the effective VRP set, sorted *)
  unsafe_vrps : Vrp.t list;                (** VRPs overlapping a failed CA's
                                               resources; [[]] under
                                               [Unsafe_accept].  Under
                                               [Unsafe_reject] they are also
                                               excluded from [vrps]. *)
  failed_resources : Resources.t;          (** union of resources of every CA
                                               that failed to fetch or
                                               validate this sync *)
  issues : issue list;
  fetches : (string * fetch_status) list;
  transfers : transfer list;               (** per-point transport accounting *)
  sync_elapsed : int;                      (** total transport time spent *)
  budget_exhausted : bool;                 (** the sync budget ran out before
                                               every point was tried *)
  cas_validated : string list;
  index : Origin_validation.index;         (** index over [vrps], maintained
                                               incrementally across syncs *)
  diff : Vrp.diff;                         (** change since the previous sync *)
  points_reused : int;                     (** points whose memoized validation
                                               was replayed *)
  points_revalidated : int;                (** points validated from scratch *)
  observations_appended : int;             (** distinct new publication-point
                                               states recorded in the
                                               transparency log this sync *)
  regressions : regression list;           (** points that contradicted this
                                               vantage's own recorded history *)
  tree_head : Rpki_transparency.Log.head;  (** the log's head after this sync *)
}

val max_data_age : sync_result -> int
(** The worst data staleness the sync accepted: 0 when every point came from
    a fresh channel (live, mirror or RRDP), the oldest cache age otherwise. *)

type t
(** Opaque relying-party state. *)

val create :
  name:string -> asn:int -> tals:tal list -> ?use_stale:bool -> ?grace:int ->
  ?log_epoch:int -> unit -> t
(** [grace] is the Suspenders-style fail-safe (the paper's ref [25]): when
    set, a VRP that disappears keeps being used for this many ticks after it
    was last seen — softening Side Effects 6 and 7 at the price of delaying
    legitimate revocations by the same window.

    [log_epoch] (default 0) is the vantage's incarnation counter: a restart
    that could not restore its snapshot must start a visibly {e new}
    transparency log (log id [name/e<k>]) rather than impersonate a
    truncated continuation of the old one.  Epoch 0 keeps the log id equal
    to [name]. *)

val name : t -> string

val asn : t -> int
(** The AS where this relying party sits. *)

val vrps : t -> Vrp.t list
(** The current effective VRP set (the baseline the next sync diffs
    against) — after {!restore}, the persisted last-good set. *)

val last_result : t -> sync_result option
(** The most recent {!sync} result, if any. *)

val cached_points : t -> string list
(** URIs with a locally cached snapshot (stale-cache fallback material). *)

val flush_cache : t -> unit
(** Drop cached snapshots, RRDP client state, memoized validations and grace
    memory (the manual operator intervention the paper mentions for Side
    Effect 7 recovery).  The next sync revalidates everything from scratch;
    its [diff] is still relative to the last result.  The transparency log
    is {e not} flushed: it is append-only evidence, and a cache wipe must
    not be able to erase it. *)

(** {2 Transparency}

    Every sync appends one content-addressed observation per distinct
    publication-point state fetched (point URI, manifest number, manifest
    hash, VRP-set hash, listing fingerprint) to this vantage's append-only
    Merkle log.  {!Gossip} exchanges signed tree heads between vantages;
    a split-view authority that shows this RP a forked repository leaves
    two irreconcilable observations under the same (point, manifest number)
    key — portable cryptographic evidence of misbehavior. *)

val transparency_log : t -> Rpki_transparency.Log.t
(** This vantage's observation log (live — do not mutate). *)

val tree_head : t -> now:Rtime.t -> Rpki_transparency.Log.head
(** The log's current head. *)

val signed_tree_head : t -> now:Rtime.t -> Rpki_transparency.Log.signed_head
(** The current head under this vantage's signing key (generated
    deterministically from the RP name on first use).  While the tree is
    unchanged (same log id, size and root) the last signed head is served
    as-is — like a CT log answering every pull with its current STH — so
    a static log costs one signature total, not one per serve; its
    [h_at] is the time of the last tree change. *)

val transparency_key : t -> Rpki_crypto.Rsa.public
(** The key {!signed_tree_head} signs with — what peers verify against.
    Seeded from the vantage name, so it is stable across restarts and
    epochs. *)

val log_epoch : t -> int
(** The current incarnation counter (see {!create}). *)

val peer_heads : t -> (string * Rpki_transparency.Log.head) list
(** Last gossip-verified tree head per peer, as recorded by
    {!note_peer_head} — the persisted anti-rollback baseline for other
    vantages' logs. *)

val note_peer_head : t -> peer:string -> Rpki_transparency.Log.head -> unit
(** Record a gossip-verified head for [peer] (replaces any previous one).
    Called by {!Gossip} after verification; persisted by {!save}. *)

val point_vrps : t -> uri:string -> Vrp.t list
(** The VRPs this vantage last validated out of publication point [uri] —
    i.e. which prefixes a fork at that point can affect.  Empty if the point
    was never validated (or the memo was flushed). *)

val rollback_last_good : t -> uri:string -> vrp_hash:string -> Vrp.t list option
(** The honest-side rollback.  When gossip proves a fork at [uri] one or
    more periods late, the tainted view may already be absorbed into this
    vantage's current state; the evidence bundle's proven-honest side
    carries the VRP-set hash of the newest state honest vantages saw.
    This returns the VRP contribution this vantage itself validated under
    exactly that hash (from a bounded per-point history of recent states),
    so the caller can freeze the RTR hold at the rolled-back set instead of
    pinning the tainted one.  [None] when this vantage never validated that
    state — e.g. a fresh post-restart incarnation — in which case a hold
    pinning nothing is the fail-closed answer. *)

(** {2 Persistence}

    {!save} writes the anti-rollback baseline — transparency log, own signed
    tree head, gossip-verified peer heads, last-good VRP set, RTR serial —
    through a generation-numbered, checksummed {!Rpki_persist.Store}.  The
    first save writes a full base snapshot; later saves seal an O(delta)
    segment holding only the observations appended since the last persisted
    checkpoint, under a Merkle consistency proof tying it to the previous
    head.  {!compact_store} folds a long chain back into one base.
    {!restore} walks base through segments, re-verifies every checkpoint
    and the final head, and is fail-closed: a missing, corrupt, stale or
    internally inconsistent chain (e.g. a rehydrated log that disagrees
    with its own signed head, or a segment whose consistency proof fails)
    degrades to {!Recovered_fresh} with a typed reason.  It never crashes
    and never silently trusts a bad snapshot. *)

type fresh_reason =
  | No_snapshot
  | Snapshot_corrupt of string
  | Snapshot_stale of { snap_generation : int; marker : int }
  | Log_inconsistent of string
      (** checksums passed but the contents don't hold together: bad record
          shapes, replay/head mismatch, or a signature failure *)

val fresh_reason_to_string : fresh_reason -> string

type recovery =
  | Recovered of { rc_generation : int; rc_saved_at : int; rc_rtr_serial : int }
  | Recovered_fresh of fresh_reason

val recovery_to_string : recovery -> string

val save :
  t -> now:Rtime.t -> ?rtr_serial:int -> ?mode:[ `Auto | `Full ] ->
  Rpki_persist.Store.t -> int
(** Persist this vantage's durable state; returns the new generation.
    [rtr_serial] (default 0) is the RTR cache serial to persist alongside.
    [`Auto] (the default) appends an O(delta) checkpointed segment when the
    store already holds a chain this relying party has a mark for, and
    falls back to a full base snapshot otherwise (first save, wiped store,
    log reset).  [`Full] forces the O(history) full snapshot — the
    pre-segmentation behavior, kept for baseline comparisons. *)

val compact_store : Rpki_persist.Store.t -> now:Rtime.t -> (int, string) result
(** Fold a relying-party store's base + segments into one full base
    snapshot (all observations in order, newest bounded records, no
    checkpoints).  Crash-safe: on any detected disk fault the store is left
    segmented and loadable, and the error says why. *)

val restore : t -> Rpki_persist.Store.t -> recovery
(** Rehydrate a freshly {!create}d relying party from a snapshot chain.  On
    success the transparency log (rebuilt from base + segments, each
    segment's consistency proof re-verified, the whole verified against the
    newest persisted signed head), peer heads, effective VRP set (with a
    rebuilt origin-validation index) and log epoch are restored; caches,
    memos and grace memory start empty.  On failure the relying party is
    left untouched. *)

val sync :
  t ->
  now:Rtime.t ->
  universe:Universe.t ->
  ?reachable:(Pub_point.t -> bool) ->
  ?transport:Transport.t ->
  ?policy:fetch_policy ->
  ?valcache:Valcache.t ->
  unit ->
  sync_result
(** Fetch from every trust anchor down, validate top-down (manifest and CRL
    checks included) skipping fingerprint-unchanged points, and return the
    validated ROA payloads together with every problem encountered, the
    updated origin-validation index, the VRP diff since the previous sync,
    and the per-point transport accounting.

    Fetching goes through [transport] under [policy] (default
    {!default_policy}).  When no [transport] is given one is built: from
    [reachable] as a zero-latency {!Transport.of_oracle} when that is
    supplied (the PR-1 behaviour, kept for compatibility), otherwise
    {!Transport.instant}.  [reachable] is ignored when [transport] is
    given.

    [valcache], when given, attaches the shared cross-vantage validation
    plane: signature checks route through its verdict memo and
    publication-point outcomes missing from this RP's private memo are
    replayed from (or contributed to) its content-addressed outcome store.
    Sharing is transparent — the sync result, including the
    [points_reused]/[points_revalidated] counters (which count only this
    RP's private memo), is identical with and without it; only the number
    of RSA verifications actually executed changes.  Transport accounting
    is never short-circuited by the cache. *)
