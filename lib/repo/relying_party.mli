(** The relying party: fetches the distributed RPKI and computes the set of
    validated ROA payloads (RFC 6480 section 6, RFC 6483).

    Fetching is subject to a reachability oracle — in the closed-loop
    simulation that oracle is the RP's own BGP data plane, which is how the
    paper's Section 6 circularity arises.  Like rsync, the RP keeps the last
    successfully fetched copy of each publication point and falls back to it
    when the point is unreachable.

    Sync is incremental: per publication point the RP memoizes the
    validation outcome keyed by the point's content fingerprint, the
    issuing certificate, and the validity windows consulted; unchanged
    points are not re-validated.  Each {!sync} also reports the VRP
    {!Vrp.diff} against the previous sync and maintains an
    {!Origin_validation.index} patched in place by that diff.  A warm sync
    is guaranteed to produce exactly the VRP set and classification results
    of a from-scratch sync.

    The relying-party state is opaque; all incremental bookkeeping is
    internal and can only be dropped wholesale via {!flush_cache}. *)

open Rpki_core

type tal = {
  ta_name : string;
  ta_key : Rpki_crypto.Rsa.public;
  ta_uri : string;
  ta_cert_filename : string;
}

val tal_of_authority : Authority.t -> tal
(** The TAL of a trust-anchor authority. *)

type fetch_status =
  | Fetched          (** live copy obtained *)
  | Fetched_mirror   (** primary unreachable; a mirror served the copy *)
  | Stale_cache      (** unreachable; last-known snapshot used *)
  | Unavailable      (** unreachable and nothing cached *)

type issue = {
  uri : string;
  filename : string option;
  reason : string;
}
(** One fetch or validation problem, attributed to a location. *)

type sync_result = {
  vrps : Vrp.t list;                       (** the effective VRP set, sorted *)
  issues : issue list;
  fetches : (string * fetch_status) list;
  cas_validated : string list;
  index : Origin_validation.index;         (** index over [vrps], maintained
                                               incrementally across syncs *)
  diff : Vrp.diff;                         (** change since the previous sync *)
  points_reused : int;                     (** points whose memoized validation
                                               was replayed *)
  points_revalidated : int;                (** points validated from scratch *)
}

type t
(** Opaque relying-party state. *)

val create :
  name:string -> asn:int -> tals:tal list -> ?use_stale:bool -> ?grace:int -> unit -> t
(** [grace] is the Suspenders-style fail-safe (the paper's ref [25]): when
    set, a VRP that disappears keeps being used for this many ticks after it
    was last seen — softening Side Effects 6 and 7 at the price of delaying
    legitimate revocations by the same window. *)

val name : t -> string

val asn : t -> int
(** The AS where this relying party sits. *)

val last_result : t -> sync_result option
(** The most recent {!sync} result, if any. *)

val cached_points : t -> string list
(** URIs with a locally cached snapshot (stale-cache fallback material). *)

val flush_cache : t -> unit
(** Drop cached snapshots, memoized validations and grace memory (the manual
    operator intervention the paper mentions for Side Effect 7 recovery).
    The next sync revalidates everything from scratch; its [diff] is still
    relative to the last result. *)

val sync :
  t ->
  now:Rtime.t ->
  universe:Universe.t ->
  ?reachable:(Pub_point.t -> bool) ->
  unit ->
  sync_result
(** Fetch from every trust anchor down, validate top-down (manifest and CRL
    checks included) skipping fingerprint-unchanged points, and return the
    validated ROA payloads together with every problem encountered, the
    updated origin-validation index, and the VRP diff since the previous
    sync. *)

val sync_index :
  t ->
  now:Rtime.t ->
  universe:Universe.t ->
  ?reachable:(Pub_point.t -> bool) ->
  unit ->
  sync_result * Origin_validation.index
  [@@deprecated "use sync; the index now rides on the sync_result"]
(** @deprecated The index is carried by {!sync}'s result. *)
