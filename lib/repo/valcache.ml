(* The shared validation plane: a content-addressed verification cache that
   many relying-party vantages consult during one simulation tick.

   Two layers, both keyed purely by content:

   - RSA verdicts: (issuer key id, SHA-256 of signature + message) -> bool.
     Sound because RSA verification is a pure function of its inputs; a
     verdict computed for one vantage is the verdict for every vantage.

   - Publication-point outcomes: (issuing certificate digest, listing
     fingerprint) -> the full validation outcome (VRPs, issues, child CAs,
     manifest identity), together with every validity-window boundary the
     validation consulted.  An outcome is replayable at a different [now]
     exactly when [now] sits on the same side of every recorded boundary —
     the same rule the per-vantage memo uses.

   Split-view safety is structural, not policed: a misbehaving authority
   that serves a forked manifest to one vantage necessarily changes that
   vantage's listing fingerprint, so the victim's lookups key to a
   different cache line than the honest vantages'.  The cache can never
   merge the two views; per-vantage transport accounting, transparency
   observations and gossip evidence are computed outside it and keep their
   per-vantage divergence.  Cache hits skip crypto — never transport.

   The outcome deliberately carries no URI: a point's validation outcome is
   a function of (issuing certificate bytes, listing bytes, window sides)
   only.  Issue records store just the optional filename and reason; each
   relying party re-attaches its own URI when replaying. *)

open Rpki_core

type outcome = {
  o_parent_fp : string;          (* digest of the issuing cert's encoding *)
  o_snap_fp : string;            (* fingerprint of the listing validated *)
  o_at : Rtime.t;                (* when it was validated *)
  o_boundaries : Rtime.t list;   (* every validity boundary consulted *)
  o_subject : string;
  o_vrps : Vrp.t list;           (* the point's direct VRP contribution *)
  o_issues : (string option * string) list;  (* filename, reason — no URI *)
  o_children : Cert.t list;      (* validated child CA certs, in file order *)
  o_mft_number : int;            (* manifest number as served; 0 if none *)
  o_mft_hash : string;           (* SHA-256 of the manifest bytes; "" if none *)
}

(* Same boundary-side rule as the relying party's private memo. *)
let side a b = compare (Rtime.compare a b) 0

let outcome_current o ~now =
  Rtime.compare o.o_at now = 0
  || List.for_all (fun b -> side now b = side o.o_at b) o.o_boundaries

type stats = {
  sig_checked : int;   (* RSA verifications executed through the cache *)
  sig_saved : int;     (* RSA verifications answered from a memoized verdict *)
  point_hits : int;    (* publication-point outcomes replayed *)
  point_misses : int;  (* publication-point outcomes validated from scratch *)
}

let empty_stats = { sig_checked = 0; sig_saved = 0; point_hits = 0; point_misses = 0 }

let add_stats a b =
  { sig_checked = a.sig_checked + b.sig_checked;
    sig_saved = a.sig_saved + b.sig_saved;
    point_hits = a.point_hits + b.point_hits;
    point_misses = a.point_misses + b.point_misses }

let sub_stats a b =
  { sig_checked = a.sig_checked - b.sig_checked;
    sig_saved = a.sig_saved - b.sig_saved;
    point_hits = a.point_hits - b.point_hits;
    point_misses = a.point_misses - b.point_misses }

type t = {
  verdicts : (string, bool) Hashtbl.t;
  points : (string, outcome) Hashtbl.t;
  mutable digest : string;       (* the current tick's universe digest *)
  mutable totals : stats;        (* cumulative since creation *)
  mutable tick_base : stats;     (* totals at the last [begin_tick] *)
}

let create () =
  { verdicts = Hashtbl.create 256; points = Hashtbl.create 64;
    digest = ""; totals = empty_stats; tick_base = empty_stats }

let clear t =
  Hashtbl.reset t.verdicts;
  Hashtbl.reset t.points;
  t.digest <- "";
  t.totals <- empty_stats;
  t.tick_base <- empty_stats

let stats t = t.totals
let tick_stats t = sub_stats t.totals t.tick_base

(* --- the RSA verdict layer --- *)

(* Content address of one verification: issuer key id plus a digest of the
   length-prefixed signature and message (length prefix: no concatenation
   ambiguity).  Two calls with the same key, signature and message are the
   same verification, whoever asks. *)
let verdict_key ~key ~signature msg =
  Rpki_crypto.Rsa.key_id key
  ^ Rpki_crypto.Sha256.digest
      (Printf.sprintf "%d:%s%s" (String.length signature) signature msg)

let verify t ~key ~signature msg =
  let k = verdict_key ~key ~signature msg in
  match Hashtbl.find_opt t.verdicts k with
  | Some v ->
    t.totals <- add_stats t.totals { empty_stats with sig_saved = 1 };
    v
  | None ->
    t.totals <- add_stats t.totals { empty_stats with sig_checked = 1 };
    let v = Rpki_crypto.Rsa.verify ~key ~signature msg in
    Hashtbl.replace t.verdicts k v;
    v

(* --- the publication-point outcome layer --- *)

(* Both components are fixed-width SHA-256 digests, so plain concatenation
   is unambiguous. *)
let point_key ~parent_fp ~snap_fp = parent_fp ^ snap_fp

let find_point t ~parent_fp ~snap_fp ~now =
  match Hashtbl.find_opt t.points (point_key ~parent_fp ~snap_fp) with
  | Some o when outcome_current o ~now ->
    t.totals <- add_stats t.totals { empty_stats with point_hits = 1 };
    Some o
  | _ ->
    t.totals <- add_stats t.totals { empty_stats with point_misses = 1 };
    None

let store_point t o =
  Hashtbl.replace t.points (point_key ~parent_fp:o.o_parent_fp ~snap_fp:o.o_snap_fp) o

(* --- the batch scheduler's tick boundary --- *)

(* One digest of the whole publication universe, computed once per tick by
   the simulation loop and handed to every vantage: the walk plan all
   vantages share.  (Per-vantage views can still diverge below it — the
   digest is over the universe's honest contents, and per-vantage transport
   forks are applied at fetch time.) *)
let universe_digest universe =
  Rpki_crypto.Sha256.digest
    (String.concat "\n"
       (List.map
          (fun pp -> Pub_point.uri pp ^ " " ^ Pub_point.fingerprint pp)
          (Universe.points universe)))

let begin_tick t ~digest =
  t.digest <- digest;
  t.tick_base <- t.totals

let digest t = t.digest
