(* The shared validation plane: a content-addressed verification cache that
   many relying-party vantages consult during one simulation tick.

   Two layers, both keyed purely by content:

   - RSA verdicts: (issuer key id, SHA-256 of signature + message) -> bool.
     Sound because RSA verification is a pure function of its inputs; a
     verdict computed for one vantage is the verdict for every vantage.

   - Publication-point outcomes: (issuing certificate digest, listing
     fingerprint) -> the full validation outcome (VRPs, issues, child CAs,
     manifest identity), together with every validity-window boundary the
     validation consulted.  An outcome is replayable at a different [now]
     exactly when [now] sits on the same side of every recorded boundary —
     the same rule the per-vantage memo uses.

   Split-view safety is structural, not policed: a misbehaving authority
   that serves a forked manifest to one vantage necessarily changes that
   vantage's listing fingerprint, so the victim's lookups key to a
   different cache line than the honest vantages'.  The cache can never
   merge the two views; per-vantage transport accounting, transparency
   observations and gossip evidence are computed outside it and keep their
   per-vantage divergence.  Cache hits skip crypto — never transport.

   The outcome deliberately carries no URI: a point's validation outcome is
   a function of (issuing certificate bytes, listing bytes, window sides)
   only.  Issue records store just the optional filename and reason; each
   relying party re-attaches its own URI when replaying. *)

open Rpki_core

type outcome = {
  o_parent_fp : string;          (* digest of the issuing cert's encoding *)
  o_snap_fp : string;            (* fingerprint of the listing validated *)
  o_at : Rtime.t;                (* when it was validated *)
  o_boundaries : Rtime.t list;   (* every validity boundary consulted *)
  o_subject : string;
  o_vrps : Vrp.t list;           (* the point's direct VRP contribution *)
  o_issues : (string option * Validation.issue_kind * string) list;
                                 (* filename, kind, reason — no URI *)
  o_failed_resources : Resources.t;
                                 (* resources claimed by child CA certs that
                                    failed validation here — unsafe-VRP input *)
  o_children : Cert.t list;      (* validated child CA certs, in file order *)
  o_mft_number : int;            (* manifest number as served; 0 if none *)
  o_mft_hash : string;           (* SHA-256 of the manifest bytes; "" if none *)
}

(* Same boundary-side rule as the relying party's private memo. *)
let side a b = compare (Rtime.compare a b) 0

let outcome_current o ~now =
  Rtime.compare o.o_at now = 0
  || List.for_all (fun b -> side now b = side o.o_at b) o.o_boundaries

type stats = {
  sig_checked : int;   (* RSA verifications executed through the cache *)
  sig_saved : int;     (* RSA verifications answered from a memoized verdict *)
  point_hits : int;    (* publication-point outcomes replayed *)
  point_misses : int;  (* publication-point outcomes validated from scratch *)
}

let empty_stats = { sig_checked = 0; sig_saved = 0; point_hits = 0; point_misses = 0 }

let add_stats a b =
  { sig_checked = a.sig_checked + b.sig_checked;
    sig_saved = a.sig_saved + b.sig_saved;
    point_hits = a.point_hits + b.point_hits;
    point_misses = a.point_misses + b.point_misses }

let sub_stats a b =
  { sig_checked = a.sig_checked - b.sig_checked;
    sig_saved = a.sig_saved - b.sig_saved;
    point_hits = a.point_hits - b.point_hits;
    point_misses = a.point_misses - b.point_misses }

(* A memoized verdict, with the expiry epoch-based eviction judges it by:
   the latest validity boundary among the publication-point outcomes whose
   validation consulted it.  [None] until the first such outcome is stored
   (a verdict is never evicted before its content has been tied to a
   window). *)
type verdict = { vd_value : bool; mutable vd_deadline : Rtime.t option }

type residency = {
  rs_verdicts : int;          (* memoized verdicts currently resident *)
  rs_outcomes : int;          (* publication-point outcomes currently resident *)
  rs_verdicts_evicted : int;  (* cumulative verdicts dropped by [evict] *)
  rs_outcomes_evicted : int;  (* cumulative outcomes dropped by [evict] *)
}

type t = {
  verdicts : (string, verdict) Hashtbl.t;
  points : (string, outcome) Hashtbl.t;
  mutable digest : string;       (* the current tick's universe digest *)
  mutable totals : stats;        (* cumulative since creation *)
  mutable tick_base : stats;     (* totals at the last [begin_tick] *)
  pending : (string, unit) Hashtbl.t;
                                 (* verdict keys consulted since the last
                                    [store_point] — they inherit that
                                    outcome's expiry deadline *)
  mutable verdicts_evicted : int;
  mutable outcomes_evicted : int;
}

let create () =
  { verdicts = Hashtbl.create 256; points = Hashtbl.create 64;
    digest = ""; totals = empty_stats; tick_base = empty_stats;
    pending = Hashtbl.create 32; verdicts_evicted = 0; outcomes_evicted = 0 }

(* The operator's wipe: drop everything, statistics included.  Distinct
   from {!evict}, which drops only window-expired entries and keeps the
   counters — so a wipe can never masquerade as eviction in a bench. *)
let clear t =
  Hashtbl.reset t.verdicts;
  Hashtbl.reset t.points;
  t.digest <- "";
  t.totals <- empty_stats;
  t.tick_base <- empty_stats;
  Hashtbl.reset t.pending;
  t.verdicts_evicted <- 0;
  t.outcomes_evicted <- 0

let stats t = t.totals
let tick_stats t = sub_stats t.totals t.tick_base

let residency t =
  { rs_verdicts = Hashtbl.length t.verdicts;
    rs_outcomes = Hashtbl.length t.points;
    rs_verdicts_evicted = t.verdicts_evicted;
    rs_outcomes_evicted = t.outcomes_evicted }

(* --- the RSA verdict layer --- *)

(* Content address of one verification: issuer key id plus a digest of the
   length-prefixed signature and message (length prefix: no concatenation
   ambiguity).  Two calls with the same key, signature and message are the
   same verification, whoever asks. *)
let verdict_key ~key ~signature msg =
  Rpki_crypto.Rsa.key_id key
  ^ Rpki_crypto.Sha256.digest
      (Printf.sprintf "%d:%s%s" (String.length signature) signature msg)

let verify t ~key ~signature msg =
  let k = verdict_key ~key ~signature msg in
  Hashtbl.replace t.pending k ();
  match Hashtbl.find_opt t.verdicts k with
  | Some v ->
    t.totals <- add_stats t.totals { empty_stats with sig_saved = 1 };
    v.vd_value
  | None ->
    t.totals <- add_stats t.totals { empty_stats with sig_checked = 1 };
    let v = Rpki_crypto.Rsa.verify ~key ~signature msg in
    Hashtbl.replace t.verdicts k { vd_value = v; vd_deadline = None };
    v

(* --- the publication-point outcome layer --- *)

(* Both components are fixed-width SHA-256 digests, so plain concatenation
   is unambiguous. *)
let point_key ~parent_fp ~snap_fp = parent_fp ^ snap_fp

let find_point t ~parent_fp ~snap_fp ~now =
  match Hashtbl.find_opt t.points (point_key ~parent_fp ~snap_fp) with
  | Some o when outcome_current o ~now ->
    t.totals <- add_stats t.totals { empty_stats with point_hits = 1 };
    Some o
  | _ ->
    t.totals <- add_stats t.totals { empty_stats with point_misses = 1 };
    None

let rtime_max a b = if Rtime.compare a b >= 0 then a else b

let store_point t o =
  Hashtbl.replace t.points (point_key ~parent_fp:o.o_parent_fp ~snap_fp:o.o_snap_fp) o;
  (* the verdicts consulted on the way to this outcome expire with its last
     validity boundary: once every window the validation compared against
     has passed, neither the outcome nor its signatures can serve a future
     lookup profitably *)
  (match o.o_boundaries with
  | [] -> ()
  | b :: bs ->
    let deadline = List.fold_left rtime_max b bs in
    Hashtbl.iter
      (fun k () ->
        match Hashtbl.find_opt t.verdicts k with
        | None -> ()
        | Some v ->
          v.vd_deadline <-
            Some
              (match v.vd_deadline with
              | None -> deadline
              | Some d -> rtime_max d deadline))
      t.pending);
  Hashtbl.reset t.pending

(* --- epoch-based eviction ------------------------------------------------

   The cache is a pure memo, so dropping entries can never change results —
   only re-run crypto.  [evict ~now] drops exactly the entries whose every
   consulted validity boundary lies strictly in the past: an outcome all of
   whose windows have closed, and a verdict whose inherited deadline (the
   latest boundary of the outcomes that consulted it) has passed.  Entries
   for live content are untouched, so residency tracks the distinct live
   content in the universe instead of growing with history. *)

let all_passed boundaries ~now =
  boundaries <> [] && List.for_all (fun b -> Rtime.compare b now < 0) boundaries

let evict t ~now =
  let dead_points =
    Hashtbl.fold
      (fun k o acc -> if all_passed o.o_boundaries ~now then k :: acc else acc)
      t.points []
  in
  List.iter (Hashtbl.remove t.points) dead_points;
  t.outcomes_evicted <- t.outcomes_evicted + List.length dead_points;
  let dead_verdicts =
    Hashtbl.fold
      (fun k v acc ->
        match v.vd_deadline with
        | Some d when Rtime.compare d now < 0 -> k :: acc
        | _ -> acc)
      t.verdicts []
  in
  List.iter (Hashtbl.remove t.verdicts) dead_verdicts;
  t.verdicts_evicted <- t.verdicts_evicted + List.length dead_verdicts

let end_tick t ~now = evict t ~now

(* --- the batch scheduler's tick boundary --- *)

(* One digest of the whole publication universe, computed once per tick by
   the simulation loop and handed to every vantage: the walk plan all
   vantages share.  (Per-vantage views can still diverge below it — the
   digest is over the universe's honest contents, and per-vantage transport
   forks are applied at fetch time.) *)
let universe_digest universe =
  Rpki_crypto.Sha256.digest
    (String.concat "\n"
       (List.map
          (fun pp -> Pub_point.uri pp ^ " " ^ Pub_point.fingerprint pp)
          (Universe.points universe)))

let begin_tick t ~digest =
  t.digest <- digest;
  t.tick_base <- t.totals

let digest t = t.digest
