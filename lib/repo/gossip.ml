(* Tree-head gossip between relying-party vantages: split-view detection.
   See the .mli for the protocol; this file is the mechanics.

   The "message" a peer would serve is assembled here from the peer's own
   log (we play both endpoints of the pull), but everything the receiver
   does with it goes through the same verification a remote would run:
   signature, consistency from the last head it saw, inclusion of every
   delta record.  Only verified records are cross-checked, so a Fork alarm
   is always backed by checkable evidence. *)

module Log = Rpki_transparency.Log
module Merkle = Rpki_transparency.Merkle

type vantage = {
  v_name : string;
  mutable v_rp : Relying_party.t; (* mutable: a restarted vantage re-enters the
                                     mesh as a new RP instance under its name *)
  v_endpoint : Pub_point.t;
  v_transport : Transport.t;
}

type attested = {
  att_vantage : string;
  att_obs : Log.observation;
  att_index : int;
  att_head : Log.signed_head;
  att_proof : Merkle.proof;
}

type alarm =
  | Fork of {
      fork_uri : string;
      fork_serial : int;
      left : attested;
      right : attested;
    }
  | Inconsistent_heads of {
      ih_peer : string;
      ih_seen_by : string;
      ih_old : Log.head;
      ih_new : Log.head;
    }
  | Bad_head_signature of { bs_peer : string; bs_seen_by : string }
  | Bad_inclusion of { bi_peer : string; bi_seen_by : string; bi_index : int }
  | Rollback of {
      rb_uri : string;
      rb_earlier : attested; (* recorded earlier in the same log, higher serial *)
      rb_later : attested;   (* recorded later, lower serial: a served rollback *)
    }
  | Log_reset of {
      lr_peer : string;
      lr_seen_by : string;
      lr_old : Log.head;  (* the last head verified for the previous log *)
      lr_new : Log.head;  (* the head of the new incarnation *)
    }

let is_fork = function Fork _ -> true | _ -> false
let is_rollback = function Rollback _ -> true | _ -> false

let describe_alarm = function
  | Fork f ->
    Printf.sprintf
      "FORK at %s #%d: %s saw %s but %s saw %s — the authority equivocated"
      f.fork_uri f.fork_serial f.left.att_vantage
      (Log.observation_to_string f.left.att_obs)
      f.right.att_vantage
      (Log.observation_to_string f.right.att_obs)
  | Inconsistent_heads i ->
    Printf.sprintf "%s: peer %s's head %s does not extend its earlier head %s"
      i.ih_seen_by i.ih_peer (Log.head_to_string i.ih_new) (Log.head_to_string i.ih_old)
  | Bad_head_signature b ->
    Printf.sprintf "%s: peer %s served a tree head with a bad signature" b.bs_seen_by b.bs_peer
  | Bad_inclusion b ->
    Printf.sprintf "%s: peer %s's record %d failed its inclusion proof" b.bi_seen_by b.bi_peer
      b.bi_index
  | Rollback r ->
    Printf.sprintf
      "ROLLBACK at %s: %s's log recorded #%d (index %d) and later #%d (index %d) — it was served a rewritten past"
      r.rb_uri r.rb_later.att_vantage
      r.rb_earlier.att_obs.Log.ob_serial r.rb_earlier.att_index
      r.rb_later.att_obs.Log.ob_serial r.rb_later.att_index
  | Log_reset l ->
    Printf.sprintf
      "%s: peer %s's log restarted (%s -> %s) — its history baseline is gone"
      l.lr_seen_by l.lr_peer (Log.head_to_string l.lr_old) (Log.head_to_string l.lr_new)

(* Re-verify fork or rollback evidence from scratch; a [true] needs no trust
   in the vantage that raised the alarm. *)
let verify_fork ~key_of alarm =
  let side (a : attested) =
    match key_of a.att_vantage with
    | None -> false
    | Some key ->
      Log.verify_head ~key a.att_head
      && Log.verify_observation_inclusion a.att_obs ~index:a.att_index
           ~head:a.att_head.Log.sh_head a.att_proof
  in
  match alarm with
  | Inconsistent_heads _ | Bad_head_signature _ | Bad_inclusion _ | Log_reset _ -> false
  | Fork f ->
    let lo = f.left.att_obs and ro = f.right.att_obs in
    side f.left && side f.right
    && String.equal lo.Log.ob_uri f.fork_uri
    && String.equal ro.Log.ob_uri f.fork_uri
    && lo.Log.ob_serial = f.fork_serial
    && ro.Log.ob_serial = f.fork_serial
    && not (Log.observation_equal lo ro)
  | Rollback r ->
    (* both records must sit in the *same* signed log (same vantage, the
       identical head), in append order, with the manifest number going
       backwards — one log attesting that the authority served a rewritten,
       older past after a newer one *)
    let e = r.rb_earlier and l = r.rb_later in
    side e && side l
    && String.equal e.att_vantage l.att_vantage
    && String.equal (Log.encode_head e.att_head.Log.sh_head)
         (Log.encode_head l.att_head.Log.sh_head)
    && String.equal e.att_obs.Log.ob_uri r.rb_uri
    && String.equal l.att_obs.Log.ob_uri r.rb_uri
    && e.att_index < l.att_index
    && e.att_obs.Log.ob_serial > l.att_obs.Log.ob_serial

type exchange = {
  ex_from : string;
  ex_to : string;
  ex_outcome : [ `Ok of int | `Stalled | `Unroutable ];
  ex_elapsed : int;
  ex_proof_bytes : int;
}

type round_report = {
  r_at : int;
  r_exchanges : exchange list;
  r_alarms : alarm list;
  r_proof_bytes : int;
  r_elapsed : int;
}

type t = {
  vantages : vantage list;
  timeout : int;
  last_seen : (string * string, Log.head) Hashtbl.t;
      (* (receiver, peer) -> the peer head the receiver last verified *)
  best_serial : (string * string * string, int * Log.observation) Hashtbl.t;
      (* (receiver, peer, uri) -> the highest-serial verified record the
         receiver has seen in the peer's log (with its leaf index) — the
         baseline a served rollback regresses against *)
  mutable alarm_log : alarm list; (* newest first *)
  reported : (string, unit) Hashtbl.t; (* dedup keys for raised alarms *)
}

let create ?(timeout = 32) vantages =
  (match vantages with
  | [] -> invalid_arg "Gossip.create: no vantages"
  | _ -> ());
  let names = List.map (fun v -> v.v_name) vantages in
  if List.length (List.sort_uniq compare names) <> List.length names then
    invalid_arg "Gossip.create: duplicate vantage names";
  { vantages; timeout; last_seen = Hashtbl.create 16; best_serial = Hashtbl.create 32;
    alarm_log = []; reported = Hashtbl.create 16 }

let vantages t = t.vantages
let alarms t = List.rev t.alarm_log
let forks t = List.filter is_fork (alarms t)
let rollbacks t = List.filter is_rollback (alarms t)

(* A vantage's gossip-receiver state (what it verified about its peers) is
   process state: it dies with the process.  [forget_receiver] models that;
   [reseed_receiver] rehydrates the consistency baselines from the heads the
   vantage's relying party persisted ({!Relying_party.peer_heads}). *)
let forget_receiver t ~name =
  Hashtbl.iter
    (fun ((r, _) as k) _ -> if String.equal r name then Hashtbl.remove t.last_seen k)
    (Hashtbl.copy t.last_seen);
  Hashtbl.iter
    (fun ((r, _, _) as k) _ -> if String.equal r name then Hashtbl.remove t.best_serial k)
    (Hashtbl.copy t.best_serial)

let reseed_receiver t ~name =
  match List.find_opt (fun v -> String.equal v.v_name name) t.vantages with
  | None -> ()
  | Some v ->
    List.iter
      (fun (peer, head) -> Hashtbl.replace t.last_seen (name, peer) head)
      (Relying_party.peer_heads v.v_rp)

(* Raise an alarm unless its dedup key was already reported. *)
let raise_alarm t ~key alarm acc =
  if Hashtbl.mem t.reported key then acc
  else begin
    Hashtbl.replace t.reported key ();
    t.alarm_log <- alarm :: t.alarm_log;
    alarm :: acc
  end

let fork_key uri serial a b =
  let x, y = if a < b then (a, b) else (b, a) in
  Printf.sprintf "fork:%s:%d:%s:%s" uri serial x y

(* One pull: [receiver] fetches [peer]'s head + delta and verifies it.
   Returns (exchange, new alarms). *)
let pull t ~now ~(receiver : vantage) ~(peer : vantage) =
  match Transport.probe receiver.v_transport ~point:peer.v_endpoint ~timeout:t.timeout with
  | `Stalled dt ->
    ({ ex_from = peer.v_name; ex_to = receiver.v_name; ex_outcome = `Stalled;
       ex_elapsed = dt; ex_proof_bytes = 0 }, [])
  | `Unroutable dt ->
    ({ ex_from = peer.v_name; ex_to = receiver.v_name; ex_outcome = `Unroutable;
       ex_elapsed = dt; ex_proof_bytes = 0 }, [])
  | `Ok dt ->
    let peer_log = Relying_party.transparency_log peer.v_rp in
    let own_log = Relying_party.transparency_log receiver.v_rp in
    let sth = Relying_party.signed_tree_head peer.v_rp ~now in
    let new_head = sth.Log.sh_head in
    let seen_key = (receiver.v_name, peer.v_name) in
    let prior_head = Hashtbl.find_opt t.last_seen seen_key in
    (* A changed log id means the peer's log did not continue — it restarted
       without its baseline.  The receiver must not judge the new log against
       the old one's heads (that would misread every fresh restart as
       history rewriting); it notes the reset and starts over. *)
    let log_reset =
      match prior_head with
      | Some oh when not (String.equal oh.Log.h_log_id new_head.Log.h_log_id) -> Some oh
      | _ -> None
    in
    let old_head = if log_reset = None then prior_head else None in
    let old_size = match old_head with Some h -> h.Log.h_size | None -> 0 in
    (* the peer's message: consistency from the last head we verified,
       plus every record appended since, each with an inclusion proof *)
    let consistency =
      if old_size = 0 || old_size > new_head.Log.h_size then []
      else Log.consistency_proof peer_log ~old_size ~size:new_head.Log.h_size
    in
    let delta =
      if new_head.Log.h_size <= old_size then []
      else
        List.map
          (fun (i, ob) -> (i, ob, Log.inclusion_proof peer_log ~index:i ~size:new_head.Log.h_size))
          (Log.since peer_log old_size)
    in
    let proof_bytes =
      Merkle.proof_bytes consistency
      + List.fold_left (fun acc (_, _, p) -> acc + Merkle.proof_bytes p) 0 delta
      + String.length sth.Log.sh_sig
    in
    let alarms = ref [] in
    let note ~key a = alarms := raise_alarm t ~key a !alarms in
    (* 1. the head must be the peer's statement *)
    if not (Log.verify_head ~key:(Relying_party.transparency_key peer.v_rp) sth) then
      note ~key:(Printf.sprintf "badsig:%s:%s:%d" receiver.v_name peer.v_name now)
        (Bad_head_signature { bs_peer = peer.v_name; bs_seen_by = receiver.v_name })
    else begin
      (match log_reset with
      | Some oh ->
        (* the old log's verified state no longer applies to the new one *)
        Hashtbl.remove t.last_seen seen_key;
        Hashtbl.iter
          (fun ((r, p, _) as k) _ ->
            if String.equal r receiver.v_name && String.equal p peer.v_name then
              Hashtbl.remove t.best_serial k)
          (Hashtbl.copy t.best_serial);
        note
          ~key:
            (Printf.sprintf "logreset:%s:%s:%s" receiver.v_name peer.v_name
               new_head.Log.h_log_id)
          (Log_reset
             { lr_peer = peer.v_name; lr_seen_by = receiver.v_name; lr_old = oh;
               lr_new = new_head })
      | None -> ());
      (* 2. the new head must extend the one we last verified *)
      let consistent =
        match old_head with
        | None -> true
        | Some oh -> Log.verify_head_consistency ~old_head:oh ~new_head consistency
      in
      if not consistent then
        note
          ~key:(Printf.sprintf "inconsistent:%s:%s:%d" receiver.v_name peer.v_name old_size)
          (Inconsistent_heads
             { ih_peer = peer.v_name; ih_seen_by = receiver.v_name;
               ih_old = Option.get old_head; ih_new = new_head })
      else begin
        Hashtbl.replace t.last_seen seen_key new_head;
        Relying_party.note_peer_head receiver.v_rp ~peer:peer.v_name new_head;
        (* 3. each delta record must be in the tree the head commits to *)
        List.iter
          (fun (i, ob, proof) ->
            if not (Log.verify_observation_inclusion ob ~index:i ~head:new_head proof) then
              note ~key:(Printf.sprintf "badincl:%s:%s:%d" receiver.v_name peer.v_name i)
                (Bad_inclusion { bi_peer = peer.v_name; bi_seen_by = receiver.v_name; bi_index = i })
            else begin
              (* 4. cross-check against our own history: same publication
                 point, same manifest number, different content = fork *)
              (match Log.find own_log ~uri:ob.Log.ob_uri ~serial:ob.Log.ob_serial with
              | Some (own_i, own_ob) when not (Log.observation_equal own_ob ob) ->
                let own_sth = Relying_party.signed_tree_head receiver.v_rp ~now in
                let own_head = own_sth.Log.sh_head in
                let left =
                  { att_vantage = receiver.v_name; att_obs = own_ob; att_index = own_i;
                    att_head = own_sth;
                    att_proof =
                      Log.inclusion_proof own_log ~index:own_i ~size:own_head.Log.h_size }
                in
                let right =
                  { att_vantage = peer.v_name; att_obs = ob; att_index = i;
                    att_head = sth; att_proof = proof }
                in
                note
                  ~key:(fork_key ob.Log.ob_uri ob.Log.ob_serial receiver.v_name peer.v_name)
                  (Fork
                     { fork_uri = ob.Log.ob_uri; fork_serial = ob.Log.ob_serial; left; right })
              | _ -> ());
              (* 5. serial regression *within the peer's own log*: the log
                 recorded a higher manifest number for this point earlier
                 and now appends a lower one — somebody served the peer a
                 rewritten past, and the peer's own log is the evidence.
                 (A peer merely *behind* — slow, stale — never trips this:
                 its serials arrive in nondecreasing order.) *)
              let bs_key = (receiver.v_name, peer.v_name, ob.Log.ob_uri) in
              (match Hashtbl.find_opt t.best_serial bs_key with
              | Some (best_i, best_ob) when ob.Log.ob_serial < best_ob.Log.ob_serial ->
                let attested_at index obs =
                  { att_vantage = peer.v_name; att_obs = obs; att_index = index;
                    att_head = sth;
                    att_proof =
                      Log.inclusion_proof peer_log ~index ~size:new_head.Log.h_size }
                in
                note
                  ~key:
                    (Printf.sprintf "rollback:%s:%s:%d:%d" peer.v_name ob.Log.ob_uri
                       best_i i)
                  (Rollback
                     { rb_uri = ob.Log.ob_uri;
                       rb_earlier = attested_at best_i best_ob;
                       rb_later = { (attested_at i ob) with att_proof = proof } })
              | Some (_, best_ob) when ob.Log.ob_serial > best_ob.Log.ob_serial ->
                Hashtbl.replace t.best_serial bs_key (i, ob)
              | Some _ -> ()
              | None -> Hashtbl.replace t.best_serial bs_key (i, ob))
            end)
          delta
      end
    end;
    ({ ex_from = peer.v_name; ex_to = receiver.v_name; ex_outcome = `Ok (List.length delta);
       ex_elapsed = dt; ex_proof_bytes = proof_bytes }, List.rev !alarms)

let round ?(alive = fun _ -> true) t ~now =
  let exchanges = ref [] and alarms = ref [] in
  List.iter
    (fun receiver ->
      List.iter
        (fun peer ->
          if peer.v_name <> receiver.v_name && alive receiver.v_name && alive peer.v_name
          then begin
            let ex, al = pull t ~now ~receiver ~peer in
            exchanges := ex :: !exchanges;
            alarms := !alarms @ al
          end)
        t.vantages)
    t.vantages;
  let exchanges = List.rev !exchanges in
  { r_at = now;
    r_exchanges = exchanges;
    r_alarms = !alarms;
    r_proof_bytes = List.fold_left (fun acc e -> acc + e.ex_proof_bytes) 0 exchanges;
    r_elapsed = List.fold_left (fun acc e -> acc + e.ex_elapsed) 0 exchanges }

let pp_report fmt r =
  let ok, failed =
    List.partition (fun e -> match e.ex_outcome with `Ok _ -> true | _ -> false) r.r_exchanges
  in
  Format.fprintf fmt "gossip@t%d: %d/%d exchanges ok, %d proof bytes, %d alarm(s)%s" r.r_at
    (List.length ok)
    (List.length r.r_exchanges)
    r.r_proof_bytes
    (List.length r.r_alarms)
    (if failed = [] then ""
     else
       Printf.sprintf " [failed: %s]"
         (String.concat ", "
            (List.map (fun e -> Printf.sprintf "%s<-%s" e.ex_to e.ex_from) failed)))
