(* Tree-head gossip between relying-party vantages: split-view detection.
   See the .mli for the protocol; this file is the mechanics.

   The "message" a peer would serve is assembled here from the peer's own
   log (we play both endpoints of the pull), but everything the receiver
   does with it goes through the same verification a remote would run:
   signature, consistency from the last head it saw, inclusion of every
   delta record.  Only verified records are cross-checked, so a Fork alarm
   is always backed by checkable evidence.

   Two layers keep a round cheap at scale:
   - the Overlay selects O(n·k) edges instead of the full O(n²) mesh;
   - a per-round cache signs each served head once, verifies each distinct
     (peer, head, signature) once, and builds each Merkle proof once per
     (tree root, range) — honest vantages hold identical logs, so the
     same proof serves every receiver of the same delta. *)

module Rng = Rpki_util.Rng
module Log = Rpki_transparency.Log
module Merkle = Rpki_transparency.Merkle

module Overlay = struct
  type spec =
    | Full_mesh
    | K_regular of int
    | Star of int
    | Random_peers of int

  let default_seed = 0x6f5e1d

  let validate = function
    | Full_mesh -> ()
    | K_regular k | Star k | Random_peers k ->
      if k < 1 then invalid_arg "Gossip.Overlay: degree/hub count must be >= 1"

  let to_string = function
    | Full_mesh -> "full"
    | K_regular k -> Printf.sprintf "k:%d" k
    | Star h -> Printf.sprintf "star:%d" h
    | Random_peers k -> Printf.sprintf "random:%d" k

  let of_string s =
    let num k f =
      match int_of_string_opt k with Some v when v >= 1 -> Some (f v) | _ -> None
    in
    match String.split_on_char ':' (String.lowercase_ascii (String.trim s)) with
    | [ ("full" | "full-mesh" | "mesh") ] -> Some Full_mesh
    | [ ("k" | "k-regular" | "kregular"); k ] -> num k (fun v -> K_regular v)
    | [ "star" ] -> Some (Star 1)
    | [ "star"; h ] -> num h (fun v -> Star v)
    | [ ("random" | "random-peers"); k ] -> num k (fun v -> Random_peers v)
    | _ -> None

  let rec take k = function
    | [] -> []
    | _ when k <= 0 -> []
    | x :: tl -> x :: take (k - 1) tl

  let pulls spec ~seed ~round names =
    validate spec;
    let arr = Array.of_list names in
    let n = Array.length arr in
    if n <= 1 then []
    else
      match spec with
      | Full_mesh ->
        (* receiver-outer in registration order: the legacy pairwise mesh *)
        List.concat_map
          (fun r ->
            List.filter_map (fun p -> if String.equal p r then None else Some (r, p)) names)
          names
      | K_regular k ->
        (* seeded Hamiltonian cycle + chords: put the vantages on a shuffled
           ring and connect ring offsets 1..⌈k/2⌉ — a circulant graph,
           connected by the cycle, undirected degree ≈ k *)
        let perm = Array.of_list (Rng.shuffle (Rng.create (seed lxor 0x6b7265)) names) in
        let m = (k + 1) / 2 in
        let adj = Array.make n [] in
        let seen = Hashtbl.create (n * m) in
        for i = 0 to n - 1 do
          for o = 1 to m do
            let j = (i + o) mod n in
            let e = (min i j, max i j) in
            if j <> i && not (Hashtbl.mem seen e) then begin
              Hashtbl.replace seen e ();
              adj.(i) <- j :: adj.(i);
              adj.(j) <- i :: adj.(j)
            end
          done
        done;
        List.concat
          (List.init n (fun i ->
               List.map
                 (fun j -> (perm.(i), perm.(j)))
                 (List.sort_uniq compare adj.(i))))
      | Star h ->
        (* hubs = the last h registered vantages (monitors register after
           the primary); spokes pull hubs only, hubs pull everyone *)
        let h = min h (n - 1) in
        let is_hub i = i >= n - h in
        List.concat
          (List.init n (fun i ->
               let peers =
                 if is_hub i then List.init n (fun j -> j)
                 else List.init h (fun o -> n - h + o)
               in
               List.filter_map
                 (fun j -> if j = i then None else Some (arr.(i), arr.(j)))
                 peers))
      | Random_peers k ->
        (* a fresh seeded sample per receiver per round *)
        let rng = Rng.create (seed lxor ((round + 1) * 0x9e3779b9)) in
        List.concat
          (List.init n (fun i ->
               let others = List.filter (fun p -> not (String.equal p arr.(i))) names in
               List.map (fun p -> (arr.(i), p)) (take k (Rng.shuffle rng others))))

  let connected pulls ~names =
    match names with
    | [] | [ _ ] -> true
    | first :: _ ->
      let adj = Hashtbl.create 64 in
      let neighbors x = Option.value (Hashtbl.find_opt adj x) ~default:[] in
      List.iter
        (fun (a, b) ->
          Hashtbl.replace adj a (b :: neighbors a);
          Hashtbl.replace adj b (a :: neighbors b))
        pulls;
      let visited = Hashtbl.create 64 in
      let rec dfs x =
        if not (Hashtbl.mem visited x) then begin
          Hashtbl.replace visited x ();
          List.iter dfs (neighbors x)
        end
      in
      dfs first;
      List.for_all (Hashtbl.mem visited) names
end

type vantage = {
  v_name : string;
  mutable v_rp : Relying_party.t; (* mutable: a restarted vantage re-enters the
                                     mesh as a new RP instance under its name *)
  v_endpoint : Pub_point.t;
  v_transport : Transport.t;
}

type attested = {
  att_vantage : string;
  att_obs : Log.observation;
  att_index : int;
  att_head : Log.signed_head;
  att_proof : Merkle.proof;
}

type alarm =
  | Fork of {
      fork_uri : string;
      fork_serial : int;
      left : attested;
      right : attested;
    }
  | Inconsistent_heads of {
      ih_peer : string;
      ih_seen_by : string;
      ih_old : Log.head;
      ih_new : Log.head;
    }
  | Bad_head_signature of { bs_peer : string; bs_seen_by : string }
  | Bad_inclusion of { bi_peer : string; bi_seen_by : string; bi_index : int }
  | Rollback of {
      rb_uri : string;
      rb_earlier : attested; (* recorded earlier in the same log, higher serial *)
      rb_later : attested;   (* recorded later, lower serial: a served rollback *)
    }
  | Log_reset of {
      lr_peer : string;
      lr_seen_by : string;
      lr_old : Log.head;  (* the last head verified for the previous log *)
      lr_new : Log.head;  (* the head of the new incarnation *)
    }

let is_fork = function Fork _ -> true | _ -> false
let is_rollback = function Rollback _ -> true | _ -> false

let describe_alarm = function
  | Fork f ->
    Printf.sprintf
      "FORK at %s #%d: %s saw %s but %s saw %s — the authority equivocated"
      f.fork_uri f.fork_serial f.left.att_vantage
      (Log.observation_to_string f.left.att_obs)
      f.right.att_vantage
      (Log.observation_to_string f.right.att_obs)
  | Inconsistent_heads i ->
    Printf.sprintf "%s: peer %s's head %s does not extend its earlier head %s"
      i.ih_seen_by i.ih_peer (Log.head_to_string i.ih_new) (Log.head_to_string i.ih_old)
  | Bad_head_signature b ->
    Printf.sprintf "%s: peer %s served a tree head with a bad signature" b.bs_seen_by b.bs_peer
  | Bad_inclusion b ->
    Printf.sprintf "%s: peer %s's record %d failed its inclusion proof" b.bi_seen_by b.bi_peer
      b.bi_index
  | Rollback r ->
    Printf.sprintf
      "ROLLBACK at %s: %s's log recorded #%d (index %d) and later #%d (index %d) — it was served a rewritten past"
      r.rb_uri r.rb_later.att_vantage
      r.rb_earlier.att_obs.Log.ob_serial r.rb_earlier.att_index
      r.rb_later.att_obs.Log.ob_serial r.rb_later.att_index
  | Log_reset l ->
    Printf.sprintf
      "%s: peer %s's log restarted (%s -> %s) — its history baseline is gone"
      l.lr_seen_by l.lr_peer (Log.head_to_string l.lr_old) (Log.head_to_string l.lr_new)

(* Re-verify fork or rollback evidence from scratch; a [true] needs no trust
   in the vantage that raised the alarm. *)
let verify_fork ~key_of alarm =
  let side (a : attested) =
    match key_of a.att_vantage with
    | None -> false
    | Some key ->
      Log.verify_head ~key a.att_head
      && Log.verify_observation_inclusion a.att_obs ~index:a.att_index
           ~head:a.att_head.Log.sh_head a.att_proof
  in
  match alarm with
  | Inconsistent_heads _ | Bad_head_signature _ | Bad_inclusion _ | Log_reset _ -> false
  | Fork f ->
    let lo = f.left.att_obs and ro = f.right.att_obs in
    side f.left && side f.right
    && String.equal lo.Log.ob_uri f.fork_uri
    && String.equal ro.Log.ob_uri f.fork_uri
    && lo.Log.ob_serial = f.fork_serial
    && ro.Log.ob_serial = f.fork_serial
    && not (Log.observation_equal lo ro)
  | Rollback r ->
    (* both records must sit in the *same* signed log (same vantage, the
       identical head), in append order, with the manifest number going
       backwards — one log attesting that the authority served a rewritten,
       older past after a newer one *)
    let e = r.rb_earlier and l = r.rb_later in
    side e && side l
    && String.equal e.att_vantage l.att_vantage
    && String.equal (Log.encode_head e.att_head.Log.sh_head)
         (Log.encode_head l.att_head.Log.sh_head)
    && String.equal e.att_obs.Log.ob_uri r.rb_uri
    && String.equal l.att_obs.Log.ob_uri r.rb_uri
    && e.att_index < l.att_index
    && e.att_obs.Log.ob_serial > l.att_obs.Log.ob_serial

type exchange = {
  ex_from : string;
  ex_to : string;
  ex_outcome : [ `Ok of int | `Stalled | `Unroutable ];
  ex_elapsed : int;
  ex_proof_bytes : int;
}

type round_report = {
  r_at : int;
  r_exchanges : exchange list;
  r_alarms : alarm list;
  r_proof_bytes : int;
  r_elapsed : int;
  r_pulls : int;
  r_skipped : int;
  r_sths_signed : int;
  r_verifies : int;
  r_verifies_saved : int;
  r_proofs_built : int;
  r_proofs_reused : int;
}

(* A Byzantine serving override: what vantage [name] answers with, per
   receiver.  While installed, the vantage also stops pulling. *)
type server = {
  srv_serve : receiver:string -> Relying_party.t;
  srv_refresh : (now:int -> unit) option;
}

type t = {
  vantages : vantage list;
  timeout : int;
  overlay : Overlay.spec;
  overlay_seed : int;
  servers : (string, server) Hashtbl.t;
  last_seen : (string * string, Log.head) Hashtbl.t;
      (* (receiver, peer) -> the peer head the receiver last verified *)
  best_serial : (string * string * string, int * Log.observation) Hashtbl.t;
      (* (receiver, peer, uri) -> the highest-serial verified record the
         receiver has seen in the peer's log (with its leaf index) — the
         baseline a served rollback regresses against *)
  mutable alarm_log : alarm list; (* newest first *)
  reported : (string, unit) Hashtbl.t; (* dedup keys for raised alarms *)
}

let create ?(timeout = 32) ?(overlay = Overlay.Full_mesh)
    ?(overlay_seed = Overlay.default_seed) vantages =
  (match vantages with
  | [] -> invalid_arg "Gossip.create: no vantages"
  | _ -> ());
  Overlay.validate overlay;
  let names = List.map (fun v -> v.v_name) vantages in
  if List.length (List.sort_uniq compare names) <> List.length names then
    invalid_arg "Gossip.create: duplicate vantage names";
  { vantages; timeout; overlay; overlay_seed; servers = Hashtbl.create 4;
    last_seen = Hashtbl.create 16; best_serial = Hashtbl.create 32;
    alarm_log = []; reported = Hashtbl.create 16 }

let vantages t = t.vantages
let overlay t = t.overlay
let alarms t = List.rev t.alarm_log
let forks t = List.filter is_fork (alarms t)
let rollbacks t = List.filter is_rollback (alarms t)

let set_server t ~name ?refresh serve =
  if not (List.exists (fun v -> String.equal v.v_name name) t.vantages) then
    invalid_arg ("Gossip.set_server: unknown vantage " ^ name);
  Hashtbl.replace t.servers name { srv_serve = serve; srv_refresh = refresh }

let clear_server t ~name = Hashtbl.remove t.servers name

let server_names t =
  List.filter_map
    (fun v -> if Hashtbl.mem t.servers v.v_name then Some v.v_name else None)
    t.vantages

(* A vantage's gossip-receiver state (what it verified about its peers) is
   process state: it dies with the process.  [forget_receiver] models that;
   [reseed_receiver] rehydrates the consistency baselines from the heads the
   vantage's relying party persisted ({!Relying_party.peer_heads}). *)
let forget_receiver t ~name =
  Hashtbl.iter
    (fun ((r, _) as k) _ -> if String.equal r name then Hashtbl.remove t.last_seen k)
    (Hashtbl.copy t.last_seen);
  Hashtbl.iter
    (fun ((r, _, _) as k) _ -> if String.equal r name then Hashtbl.remove t.best_serial k)
    (Hashtbl.copy t.best_serial)

let reseed_receiver t ~name =
  match List.find_opt (fun v -> String.equal v.v_name name) t.vantages with
  | None -> ()
  | Some v ->
    List.iter
      (fun (peer, head) -> Hashtbl.replace t.last_seen (name, peer) head)
      (Relying_party.peer_heads v.v_rp)

(* Raise an alarm unless its dedup key was already reported. *)
let raise_alarm t ~key alarm acc =
  if Hashtbl.mem t.reported key then acc
  else begin
    Hashtbl.replace t.reported key ();
    t.alarm_log <- alarm :: t.alarm_log;
    alarm :: acc
  end

let fork_key uri serial a b =
  let x, y = if a < b then (a, b) else (b, a) in
  Printf.sprintf "fork:%s:%d:%s:%s" uri serial x y

(* Per-round work sharing.  The STH memo is keyed on the RP *instance*
   (physical equality) — an equivocator serves different instances under
   one name, and each must sign its own head.  The verify memo is keyed on
   the full (peer, head bytes, signature) triple, so two different heads
   served under one name each get their own verification.  Proofs are
   keyed on the committing root + range: a Merkle root pins the tree
   content, so identical logs (every honest vantage) share proofs. *)
type round_ctx = {
  rc_sths : (Relying_party.t * Log.signed_head) list ref;
  rc_heads : (string, bool) Hashtbl.t;
  rc_proofs : (string, Merkle.proof) Hashtbl.t;
  mutable rc_sths_signed : int;
  mutable rc_verifies : int;
  mutable rc_verifies_saved : int;
  mutable rc_proofs_built : int;
  mutable rc_proofs_reused : int;
}

let new_round_ctx () =
  { rc_sths = ref []; rc_heads = Hashtbl.create 64; rc_proofs = Hashtbl.create 256;
    rc_sths_signed = 0; rc_verifies = 0; rc_verifies_saved = 0;
    rc_proofs_built = 0; rc_proofs_reused = 0 }

let sth_once ctx ~now rp =
  match List.find_opt (fun (r, _) -> r == rp) !(ctx.rc_sths) with
  | Some (_, sth) -> sth
  | None ->
    let sth = Relying_party.signed_tree_head rp ~now in
    ctx.rc_sths := (rp, sth) :: !(ctx.rc_sths);
    ctx.rc_sths_signed <- ctx.rc_sths_signed + 1;
    sth

let verify_head_once ctx ~peer ~key sth =
  let memo =
    String.concat "\x00" [ peer; Log.encode_head sth.Log.sh_head; sth.Log.sh_sig ]
  in
  match Hashtbl.find_opt ctx.rc_heads memo with
  | Some ok ->
    ctx.rc_verifies_saved <- ctx.rc_verifies_saved + 1;
    ok
  | None ->
    let ok = Log.verify_head ~key sth in
    ctx.rc_verifies <- ctx.rc_verifies + 1;
    Hashtbl.replace ctx.rc_heads memo ok;
    ok

let proof_once ctx ~kind ~root ~a ~b build =
  let key = Printf.sprintf "%s\x00%s\x00%d\x00%d" kind root a b in
  match Hashtbl.find_opt ctx.rc_proofs key with
  | Some p ->
    ctx.rc_proofs_reused <- ctx.rc_proofs_reused + 1;
    p
  | None ->
    let p = build () in
    ctx.rc_proofs_built <- ctx.rc_proofs_built + 1;
    Hashtbl.replace ctx.rc_proofs key p;
    p

let consistency_once ctx log ~root ~old_size ~size =
  proof_once ctx ~kind:"c" ~root ~a:old_size ~b:size (fun () ->
      Log.consistency_proof log ~old_size ~size)

let inclusion_once ctx log ~root ~index ~size =
  proof_once ctx ~kind:"i" ~root ~a:index ~b:size (fun () ->
      Log.inclusion_proof log ~index ~size)

(* One pull: [receiver] fetches [served]'s head + delta over [peer]'s
   endpoint and verifies it.  [served] is [peer.v_rp] unless a Byzantine
   override chose a different log for this receiver.
   Returns (exchange, new alarms). *)
let pull t ctx ~now ~(receiver : vantage) ~(peer : vantage) ~served =
  match Transport.probe receiver.v_transport ~point:peer.v_endpoint ~timeout:t.timeout with
  | `Stalled dt ->
    ({ ex_from = peer.v_name; ex_to = receiver.v_name; ex_outcome = `Stalled;
       ex_elapsed = dt; ex_proof_bytes = 0 }, [])
  | `Unroutable dt ->
    ({ ex_from = peer.v_name; ex_to = receiver.v_name; ex_outcome = `Unroutable;
       ex_elapsed = dt; ex_proof_bytes = 0 }, [])
  | `Ok dt ->
    let peer_log = Relying_party.transparency_log served in
    let own_log = Relying_party.transparency_log receiver.v_rp in
    let sth = sth_once ctx ~now served in
    let new_head = sth.Log.sh_head in
    let seen_key = (receiver.v_name, peer.v_name) in
    let prior_head = Hashtbl.find_opt t.last_seen seen_key in
    (* A changed log id means the peer's log did not continue — it restarted
       without its baseline.  The receiver must not judge the new log against
       the old one's heads (that would misread every fresh restart as
       history rewriting); it notes the reset and starts over. *)
    let log_reset =
      match prior_head with
      | Some oh when not (String.equal oh.Log.h_log_id new_head.Log.h_log_id) -> Some oh
      | _ -> None
    in
    let old_head = if log_reset = None then prior_head else None in
    let old_size = match old_head with Some h -> h.Log.h_size | None -> 0 in
    (* the peer's message: consistency from the last head we verified,
       plus every record appended since, each with an inclusion proof *)
    let consistency =
      if old_size = 0 || old_size > new_head.Log.h_size then []
      else
        consistency_once ctx peer_log ~root:new_head.Log.h_root ~old_size
          ~size:new_head.Log.h_size
    in
    let delta =
      if new_head.Log.h_size <= old_size then []
      else
        List.map
          (fun (i, ob) ->
            ( i, ob,
              inclusion_once ctx peer_log ~root:new_head.Log.h_root ~index:i
                ~size:new_head.Log.h_size ))
          (Log.since peer_log old_size)
    in
    let proof_bytes =
      Merkle.proof_bytes consistency
      + List.fold_left (fun acc (_, _, p) -> acc + Merkle.proof_bytes p) 0 delta
      + String.length sth.Log.sh_sig
    in
    let alarms = ref [] in
    let note ~key a = alarms := raise_alarm t ~key a !alarms in
    (* 1. the head must be the peer's statement *)
    if
      not
        (verify_head_once ctx ~peer:peer.v_name
           ~key:(Relying_party.transparency_key served) sth)
    then
      note ~key:(Printf.sprintf "badsig:%s:%s:%d" receiver.v_name peer.v_name now)
        (Bad_head_signature { bs_peer = peer.v_name; bs_seen_by = receiver.v_name })
    else begin
      (match log_reset with
      | Some oh ->
        (* the old log's verified state no longer applies to the new one *)
        Hashtbl.remove t.last_seen seen_key;
        Hashtbl.iter
          (fun ((r, p, _) as k) _ ->
            if String.equal r receiver.v_name && String.equal p peer.v_name then
              Hashtbl.remove t.best_serial k)
          (Hashtbl.copy t.best_serial);
        note
          ~key:
            (Printf.sprintf "logreset:%s:%s:%s" receiver.v_name peer.v_name
               new_head.Log.h_log_id)
          (Log_reset
             { lr_peer = peer.v_name; lr_seen_by = receiver.v_name; lr_old = oh;
               lr_new = new_head })
      | None -> ());
      (* 2. the new head must extend the one we last verified *)
      let consistent =
        match old_head with
        | None -> true
        | Some oh -> Log.verify_head_consistency ~old_head:oh ~new_head consistency
      in
      if not consistent then
        note
          ~key:(Printf.sprintf "inconsistent:%s:%s:%d" receiver.v_name peer.v_name old_size)
          (Inconsistent_heads
             { ih_peer = peer.v_name; ih_seen_by = receiver.v_name;
               ih_old = Option.get old_head; ih_new = new_head })
      else begin
        Hashtbl.replace t.last_seen seen_key new_head;
        Relying_party.note_peer_head receiver.v_rp ~peer:peer.v_name new_head;
        (* 3. each delta record must be in the tree the head commits to *)
        List.iter
          (fun (i, ob, proof) ->
            if not (Log.verify_observation_inclusion ob ~index:i ~head:new_head proof) then
              note ~key:(Printf.sprintf "badincl:%s:%s:%d" receiver.v_name peer.v_name i)
                (Bad_inclusion { bi_peer = peer.v_name; bi_seen_by = receiver.v_name; bi_index = i })
            else begin
              (* 4. cross-check against our own history: same publication
                 point, same manifest number, different content = fork *)
              (match Log.find own_log ~uri:ob.Log.ob_uri ~serial:ob.Log.ob_serial with
              | Some (own_i, own_ob) when not (Log.observation_equal own_ob ob) ->
                let own_sth = sth_once ctx ~now receiver.v_rp in
                let own_head = own_sth.Log.sh_head in
                let left =
                  { att_vantage = receiver.v_name; att_obs = own_ob; att_index = own_i;
                    att_head = own_sth;
                    att_proof =
                      inclusion_once ctx own_log ~root:own_head.Log.h_root ~index:own_i
                        ~size:own_head.Log.h_size }
                in
                let right =
                  { att_vantage = peer.v_name; att_obs = ob; att_index = i;
                    att_head = sth; att_proof = proof }
                in
                note
                  ~key:(fork_key ob.Log.ob_uri ob.Log.ob_serial receiver.v_name peer.v_name)
                  (Fork
                     { fork_uri = ob.Log.ob_uri; fork_serial = ob.Log.ob_serial; left; right })
              | _ -> ());
              (* 5. serial regression *within the peer's own log*: the log
                 recorded a higher manifest number for this point earlier
                 and now appends a lower one — somebody served the peer a
                 rewritten past, and the peer's own log is the evidence.
                 (A peer merely *behind* — slow, stale — never trips this:
                 its serials arrive in nondecreasing order.) *)
              let bs_key = (receiver.v_name, peer.v_name, ob.Log.ob_uri) in
              (match Hashtbl.find_opt t.best_serial bs_key with
              | Some (best_i, best_ob) when ob.Log.ob_serial < best_ob.Log.ob_serial ->
                let attested_at index obs =
                  { att_vantage = peer.v_name; att_obs = obs; att_index = index;
                    att_head = sth;
                    att_proof =
                      inclusion_once ctx peer_log ~root:new_head.Log.h_root ~index
                        ~size:new_head.Log.h_size }
                in
                note
                  ~key:
                    (Printf.sprintf "rollback:%s:%s:%d:%d" peer.v_name ob.Log.ob_uri
                       best_i i)
                  (Rollback
                     { rb_uri = ob.Log.ob_uri;
                       rb_earlier = attested_at best_i best_ob;
                       rb_later = { (attested_at i ob) with att_proof = proof } })
              | Some (_, best_ob) when ob.Log.ob_serial > best_ob.Log.ob_serial ->
                Hashtbl.replace t.best_serial bs_key (i, ob)
              | Some _ -> ()
              | None -> Hashtbl.replace t.best_serial bs_key (i, ob))
            end)
          delta
      end
    end;
    ({ ex_from = peer.v_name; ex_to = receiver.v_name; ex_outcome = `Ok (List.length delta);
       ex_elapsed = dt; ex_proof_bytes = proof_bytes }, List.rev !alarms)

let round ?(alive = fun _ -> true) t ~now =
  (* Byzantine shadow state syncs first: an equivocator refreshes the view
     it is about to serve this round *)
  List.iter
    (fun v ->
      if alive v.v_name then
        match Hashtbl.find_opt t.servers v.v_name with
        | Some { srv_refresh = Some f; _ } -> f ~now
        | _ -> ())
    t.vantages;
  let names = List.map (fun v -> v.v_name) t.vantages in
  let by_name = Hashtbl.create (List.length names) in
  List.iter (fun v -> Hashtbl.replace by_name v.v_name v) t.vantages;
  let ctx = new_round_ctx () in
  let exchanges = ref [] and alarms = ref [] in
  let pulls = ref 0 and skipped = ref 0 in
  List.iter
    (fun (rname, pname) ->
      if (not (alive rname)) || (not (alive pname)) || Hashtbl.mem t.servers rname then
        (* dead endpoint, or a Byzantine receiver: a traitor pulls nothing —
           it would not report what it finds *)
        incr skipped
      else begin
        incr pulls;
        let receiver = Hashtbl.find by_name rname and peer = Hashtbl.find by_name pname in
        let served =
          match Hashtbl.find_opt t.servers pname with
          | Some srv -> srv.srv_serve ~receiver:rname
          | None -> peer.v_rp
        in
        let ex, al = pull t ctx ~now ~receiver ~peer ~served in
        exchanges := ex :: !exchanges;
        alarms := !alarms @ al
      end)
    (Overlay.pulls t.overlay ~seed:t.overlay_seed ~round:now names);
  let exchanges = List.rev !exchanges in
  { r_at = now;
    r_exchanges = exchanges;
    r_alarms = !alarms;
    r_proof_bytes = List.fold_left (fun acc e -> acc + e.ex_proof_bytes) 0 exchanges;
    r_elapsed = List.fold_left (fun acc e -> acc + e.ex_elapsed) 0 exchanges;
    r_pulls = !pulls;
    r_skipped = !skipped;
    r_sths_signed = ctx.rc_sths_signed;
    r_verifies = ctx.rc_verifies;
    r_verifies_saved = ctx.rc_verifies_saved;
    r_proofs_built = ctx.rc_proofs_built;
    r_proofs_reused = ctx.rc_proofs_reused }

let pp_report fmt r =
  let ok, failed =
    List.partition (fun e -> match e.ex_outcome with `Ok _ -> true | _ -> false) r.r_exchanges
  in
  Format.fprintf fmt
    "gossip@t%d: %d/%d pulls ok (%d skipped), %d proof bytes, %d verifies (+%d memoized), %d alarm(s)%s"
    r.r_at (List.length ok) r.r_pulls r.r_skipped r.r_proof_bytes r.r_verifies
    r.r_verifies_saved
    (List.length r.r_alarms)
    (if failed = [] then ""
     else
       Printf.sprintf " [failed: %s]"
         (String.concat ", "
            (List.map (fun e -> Printf.sprintf "%s<-%s" e.ex_to e.ex_from) failed)))
