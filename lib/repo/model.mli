(** The paper's model RPKI (Figure 2), reconstructed from the text.

    Every object is pinned by a claim in the prose — see the implementation
    header and EXPERIMENTS.md for the reconstruction argument.  The fixture
    is the substrate for most experiments and integration tests. *)

open Rpki_core

type t = {
  universe : Universe.t;
  arin : Authority.t;          (** trust anchor, 63.0.0.0/8 *)
  sprint : Authority.t;        (** RC 63.160.0.0/12 *)
  etb : Authority.t;           (** RC 63.170.0.0/16 *)
  continental : Authority.t;   (** RC 63.174.16.0/20, repo at 63.174.23.0 *)
  roa_sprint_1 : string;       (** (63.161.0.0/16-24, AS 1239) *)
  roa_sprint_2 : string;       (** (63.168.0.0/16-24, AS 1239) *)
  roa_etb : string;            (** (63.170.0.0/16, AS 19429) *)
  roa_target20 : string;       (** (63.174.16.0/20, AS 17054) — whack target 1 *)
  roa_target22 : string;       (** (63.174.16.0/22, AS 7341) — whack target 2 *)
  roa_cb_25 : string;          (** (63.174.25.0/24, AS 17054) *)
  roa_cb_26 : string;          (** (63.174.26.0/24, AS 17054) *)
  roa_cb_28 : string;          (** (63.174.28.0/24, AS 17054) *)
}

val as_sprint : int
val as_etb : int
val as_continental : int
val as_customer7341 : int
val as_arin_host : int

val arin_repo_addr : Rpki_ip.Addr.V4.t
val sprint_repo_addr : Rpki_ip.Addr.V4.t
val etb_repo_addr : Rpki_ip.Addr.V4.t

val continental_repo_addr : Rpki_ip.Addr.V4.t
(** The paper's 63.174.23.0 — inside Continental's own certified space,
    which is what makes Section 6 circular. *)

val build :
  ?now:Rtime.t -> ?key_bits:int -> ?validity:int -> ?refresh_interval:int -> unit -> t
(** Construct the full hierarchy with real keys and publication points.
    [validity] / [refresh_interval] (defaults
    {!Authority.default_validity} / {!Authority.default_refresh}) apply to
    every authority — short windows let the stall experiments age a starved
    relying party's cache to expiry within a few ticks. *)

val add_fig5_right_roa : t -> now:Rtime.t -> string
(** Issue Sprint's covering ROA (63.160.0.0/12-13, AS 1239) — the Figure 5
    (right) / Side Effect 5 trigger.  Returns its filename. *)

val relying_party :
  ?name:string -> ?asn:int -> ?use_stale:bool -> ?grace:int -> ?log_epoch:int ->
  t -> Relying_party.t
(** A relying party configured with ARIN as its single trust anchor.
    [log_epoch] seeds the transparency-log incarnation counter (see
    {!Relying_party.create}) — restart machinery bumps it when a snapshot
    cannot be restored. *)

val render : t -> string
(** The hierarchy as indented text — Figure 2 in ASCII. *)
