(* The relying party: fetches the distributed RPKI and computes the set of
   validated ROA payloads (RFC 6480 section 6, RFC 6483).

   Fetching goes through an explicit {!Transport}: every request has a time
   cost (in the closed-loop simulation, derived from the RP's own BGP data
   plane — the paper's Section 6 circularity expressed as latency) and a
   publication point may be slow, stalling or unreachable.  A {!fetch_policy}
   governs how the RP spends time: a per-point timeout, a total sync budget,
   bounded retries with deterministic backoff, and a fallback ladder
   live -> mirror -> RRDP -> stale cache.  Like rsync, the RP keeps the last
   successfully fetched copy of each publication point; when it has to fall
   back to it, the age of that copy is recorded on the sync result.

   Sync is incremental.  Each publication point's listing carries a SHA-256
   fingerprint; per (point, issuing certificate) the RP memoizes the full
   validation outcome — VRPs, issues, child CA certificates — together with
   every validity-window boundary that outcome depended on.  A warm tick
   re-fetches (cheap: the fingerprint is cached on the point) but only
   re-validates points whose fingerprint, parent certificate, or
   time-window side changed.  The resulting VRP set is diffed against the
   previous tick's and the diff patches the origin-validation index in
   place; the same diff feeds the RTR cache as a serial delta.

   Equivalence invariant: a warm sync produces exactly the VRP set, index
   and classification results a cold from-scratch sync would.  Reuse is
   only ever taken when (a) the listing bytes are fingerprint-identical,
   (b) the issuing certificate is byte-identical, and (c) [now] sits on the
   same side of every validity boundary the original validation consulted —
   validation's only dependence on time is those window comparisons. *)

open Rpki_core

type tal = {
  ta_name : string;
  ta_key : Rpki_crypto.Rsa.public;
  ta_uri : string;
  ta_cert_filename : string;
}

let tal_of_authority a =
  let ta_name, ta_key, ta_uri, ta_cert_filename = Authority.tal a in
  { ta_name; ta_key; ta_uri; ta_cert_filename }

type fetch_status =
  | Fetched                 (* live copy obtained *)
  | Fetched_mirror          (* primary failed; a mirror served the copy *)
  | Fetched_rrdp            (* primary failed; the RRDP delta service served it *)
  | Stale_cache             (* all channels failed; last-known snapshot used *)
  | Unavailable             (* all channels failed and nothing cached *)

(* Routinator-style unsafe-VRP handling: a VRP whose prefix overlaps the
   resources of a CA that failed to validate this sync may be shielding —
   or shadowing — announcements the failed CA would have spoken for.
   [Unsafe_accept] skips the analysis entirely (the pre-existing behavior,
   bit-for-bit); [Unsafe_warn] computes and reports the unsafe set;
   [Unsafe_reject] additionally drops unsafe VRPs from the effective set —
   which silently withdraws the covering ROA's protection (the downgrade
   the faultmix bench measures). *)
type unsafe_policy = Unsafe_accept | Unsafe_warn | Unsafe_reject

let unsafe_policy_to_string = function
  | Unsafe_accept -> "accept"
  | Unsafe_warn -> "warn"
  | Unsafe_reject -> "reject"

(* How the RP spends transport time during one sync. *)
type fetch_policy = {
  point_timeout : int;      (* cap on any single request *)
  sync_budget : int;        (* cap on the whole sync's transport time *)
  retries : int;            (* extra live attempts after a stalled request *)
  backoff : int;            (* base backoff between retries; 0 = none *)
  use_mirrors : bool;
  use_rrdp : bool;
  use_stale : bool;         (* combined with the RP's own use_stale flag *)
  unsafe : unsafe_policy;   (* what to do with VRPs overlapping failed CAs *)
}

let default_policy =
  { point_timeout = 64; sync_budget = 4096; retries = 2; backoff = 2;
    use_mirrors = true; use_rrdp = true; use_stale = true; unsafe = Unsafe_accept }

(* The Stalloris victim: patient timeouts, eager retries, no alternate
   channels — a stalling repository eats the whole budget. *)
let naive_policy =
  { point_timeout = 512; sync_budget = 2048; retries = 8; backoff = 0;
    use_mirrors = false; use_rrdp = false; use_stale = true; unsafe = Unsafe_accept }

(* Short timeouts, one retry, every fallback channel: the damage-confining
   counter-policy. *)
let resilient_policy =
  { point_timeout = 16; sync_budget = 1024; retries = 1; backoff = 2;
    use_mirrors = true; use_rrdp = true; use_stale = true; unsafe = Unsafe_accept }

type issue = {
  uri : string;
  filename : string option;
  kind : Validation.issue_kind;
  reason : string;          (* human detail; [kind] is what gets counted *)
}

(* Per-category issue counters: descending by count, then by label, so the
   order is deterministic and the biggest problem reads first. *)
let issue_counts issues =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun i ->
      Hashtbl.replace tbl i.kind (1 + Option.value (Hashtbl.find_opt tbl i.kind) ~default:0))
    issues;
  Hashtbl.fold (fun k n acc -> (k, n) :: acc) tbl []
  |> List.sort (fun (k1, n1) (k2, n2) ->
         match compare n2 n1 with
         | 0 ->
           String.compare
             (Validation.issue_kind_to_string k1)
             (Validation.issue_kind_to_string k2)
         | c -> c)

(* Honest maintenance advances a point's manifest number once per republish
   — one per ROA renewal plus one per refresh — so between two syncs the
   number routinely jumps by the operation count.  Only leaps beyond this
   threshold are flagged as corpus-style seqnum gaps. *)
let seqnum_gap_threshold = 64

(* The transport-level story of one publication point's fetch. *)
type transfer = {
  t_uri : string;
  t_status : fetch_status;
  t_channel : string;       (* "live" | "mirror:<uri>" | "rrdp:<uri>" | "cache" | "none" *)
  t_attempts : int;         (* requests issued across all channels *)
  t_elapsed : int;          (* transport time spent on this point *)
  t_data_age : int;         (* age of the data used; 0 unless a stale copy *)
}

(* A publication point contradicting this vantage's own recorded history —
   the local (no-gossip-needed) signal of a rewritten past.  Only a log that
   survived the restart can raise these; a fresh log has no baseline. *)
type regression =
  | Serial_regression of {
      rg_uri : string;
      rg_prev : Rpki_transparency.Log.observation;  (* what we last recorded *)
      rg_now : Rpki_transparency.Log.observation;   (* the older serial served now *)
    }
  | Content_equivocation of {
      rg_uri : string;
      rg_index : int;  (* index of the first observation under this key *)
      rg_prev : Rpki_transparency.Log.observation;
      rg_now : Rpki_transparency.Log.observation;
    }

let regression_to_string = function
  | Serial_regression r ->
    Printf.sprintf "serial regression at %s: saw #%d after recording #%d" r.rg_uri
      r.rg_now.Rpki_transparency.Log.ob_serial r.rg_prev.Rpki_transparency.Log.ob_serial
  | Content_equivocation r ->
    Printf.sprintf "equivocation at %s: two states under manifest #%d (first at index %d)"
      r.rg_uri r.rg_now.Rpki_transparency.Log.ob_serial r.rg_index

type sync_result = {
  vrps : Vrp.t list;
  unsafe_vrps : Vrp.t list;
  (* VRPs overlapping resources of a CA that failed this sync.  Empty under
     [Unsafe_accept] (the analysis is skipped); under [Unsafe_reject] these
     are additionally absent from [vrps]. *)
  failed_resources : Resources.t;
  (* the union of resources claimed by CAs that failed to validate *)
  issues : issue list;
  fetches : (string * fetch_status) list;
  transfers : transfer list;
  sync_elapsed : int;
  budget_exhausted : bool;
  cas_validated : string list;
  index : Origin_validation.index;
  diff : Vrp.diff;
  points_reused : int;
  points_revalidated : int;
  observations_appended : int;
  regressions : regression list;
  tree_head : Rpki_transparency.Log.head;
}

(* The memoized outcome of validating one publication point under one
   issuing certificate.  The shape is {!Valcache.outcome} — URI-free, a
   pure function of (issuing certificate bytes, listing bytes, window
   sides) — so an outcome computed by one vantage can be replayed verbatim
   from the shared validation plane by any other vantage that observed the
   same content; each vantage re-attaches its own URI to the issues. *)
type memo_entry = Valcache.outcome

type cached_point = {
  cp_files : (string * string) list;
  cp_fp : string;
  cp_at : Rtime.t; (* when this copy was last confirmed fresh *)
}

(* Where incremental persistence left off against one store: how many log
   observations the chain already holds and the head they were sealed
   under — the checkpoint the next segment's consistency proof starts
   from.  Keyed by store name so one vantage can save to several stores. *)
type persist_mark = {
  pm_obs : int;
  pm_head : Rpki_transparency.Log.head;
}

(* One state a publication point served this vantage, as this vantage
   validated it — the rollback layer's unit of "proven-honest state". *)
type point_state = {
  ps_at : Rtime.t;
  ps_vrp_hash : string;  (* vrp_set_hash of ps_vrps: the content address
                            gossip evidence carries *)
  ps_vrps : Vrp.t list;
}

type t = {
  name : string;
  asn : int; (* the AS where this relying party sits *)
  tals : tal list;
  use_stale : bool;
  grace : int option;
  (* Suspenders-style fail-safe (Kent & Mandelberg, the paper's ref [25]):
     when set, a VRP that disappears keeps being used for this many ticks
     after it was last seen, softening Side Effects 6 and 7 — at the price
     of delaying legitimate revocations by the same window. *)
  cache : (string, cached_point) Hashtbl.t; (* uri -> last good copy *)
  rrdp_clients : (string, Rrdp.client) Hashtbl.t; (* primary uri -> RRDP state *)
  memo : (string, memo_entry) Hashtbl.t; (* uri + parent key id -> outcome *)
  vrp_memory : (Vrp.t, Rtime.t) Hashtbl.t; (* vrp -> last time seen *)
  mutable last_result : sync_result option;
  mutable effective_vrps : Vrp.t list; (* baseline the next diff is against *)
  mutable index : Origin_validation.index;
  mutable log_epoch : int; (* incarnation counter bound into the log id: a
                              fresh restart (no usable snapshot) must start a
                              *new* log rather than impersonate a truncated
                              continuation of the old one *)
  mutable tlog : Rpki_transparency.Log.t; (* this vantage's transparency log:
                                     one observation per distinct publication-
                                     point state ever fetched.  Append-only;
                                     survives flush_cache by design (evidence
                                     must not be erasable by a cache wipe).
                                     Mutable only so {!restore} can swap in the
                                     rehydrated log. *)
  mutable peer_heads : (string * Rpki_transparency.Log.head) list;
  (* last gossip-verified head per peer — the persisted anti-rollback baseline
     for *other* vantages' logs *)
  mutable log_baseline : int; (* leaves of [tlog] that predate this process
                                 incarnation (restored from a snapshot).  Only
                                 contradictions of *that* prefix are flagged as
                                 regressions: within one continuous run, a
                                 changed point is ordinary churn or corruption
                                 (Side Effect 7), handled by validation and
                                 gossip — never a rollback alarm. *)
  mutable tkey : Rpki_crypto.Rsa.keypair option; (* lazy tree-head signing key *)
  mutable sth_cache : Rpki_transparency.Log.signed_head option;
  (* the last head signed: reused while the tree (log id, size, root) is
     unchanged — a static log keeps serving one STH to every pull instead
     of paying an RSA signature per serve *)
  persist_marks : (string, persist_mark) Hashtbl.t; (* store name -> mark *)
  point_history : (string, point_state list) Hashtbl.t;
  (* bounded per-uri history (newest first) of the VRP contributions this
     vantage itself validated.  {!rollback_last_good} searches it when
     gossip proves a fork late: the entry matching the proven-honest side's
     VRP-set hash is the state the RTR hold should freeze at.  Process
     state only — after a restart the history is empty and rollback
     degrades to pinning nothing, which is fail-closed. *)
}

(* Epoch 0 keeps the PR-3 log id (= the vantage name); later incarnations are
   visibly distinct logs. *)
let log_id_for ~name ~epoch =
  if epoch = 0 then name else Printf.sprintf "%s/e%d" name epoch

let create ~name ~asn ~tals ?(use_stale = true) ?grace ?(log_epoch = 0) () =
  { name; asn; tals; use_stale; grace; cache = Hashtbl.create 16;
    rrdp_clients = Hashtbl.create 4; memo = Hashtbl.create 64;
    vrp_memory = Hashtbl.create 64; last_result = None; effective_vrps = [];
    index = Origin_validation.empty_index; log_epoch;
    tlog = Rpki_transparency.Log.create ~log_id:(log_id_for ~name ~epoch:log_epoch);
    peer_heads = []; log_baseline = 0; tkey = None; sth_cache = None;
    persist_marks = Hashtbl.create 4; point_history = Hashtbl.create 16 }

let name t = t.name
let asn t = t.asn
let vrps t = t.effective_vrps
let last_result t = t.last_result
let cached_points t =
  List.sort String.compare (Hashtbl.fold (fun uri _ acc -> uri :: acc) t.cache [])

let transparency_log t = t.tlog
let log_epoch t = t.log_epoch

let peer_heads t = t.peer_heads

let note_peer_head t ~peer head =
  t.peer_heads <- (peer, head) :: List.remove_assoc peer t.peer_heads

(* VRPs this vantage last validated out of one publication point — which
   prefixes a fork at that point can affect (feeds the evidence-triggered
   RTR hold). *)
let point_vrps t ~uri =
  let prefix = uri ^ "\x00" in
  let plen = String.length prefix in
  Hashtbl.fold
    (fun k (e : memo_entry) acc ->
      if String.length k > plen && String.equal (String.sub k 0 plen) prefix then
        e.Valcache.o_vrps @ acc
      else acc)
    t.memo []
  |> List.sort_uniq Vrp.compare

(* The vantage's tree-head signing key, generated on first use (keygen is
   too costly to pay at [create] for the many RPs that never gossip). *)
let transparency_keypair t =
  match t.tkey with
  | Some k -> k
  | None ->
    let rng =
      Rpki_crypto.Drbg.to_rng (Rpki_crypto.Drbg.create ~seed:("rp-log:" ^ t.name))
    in
    let k = Rpki_crypto.Rsa.generate rng in
    t.tkey <- Some k;
    k

let transparency_key t = (transparency_keypair t).Rpki_crypto.Rsa.public

let tree_head t ~now = Rpki_transparency.Log.head t.tlog ~at:now

let signed_tree_head t ~now =
  let h = tree_head t ~now in
  let same (c : Rpki_transparency.Log.signed_head) =
    let ch = c.Rpki_transparency.Log.sh_head in
    ch.Rpki_transparency.Log.h_size = h.Rpki_transparency.Log.h_size
    && String.equal ch.Rpki_transparency.Log.h_root h.Rpki_transparency.Log.h_root
    && String.equal ch.Rpki_transparency.Log.h_log_id h.Rpki_transparency.Log.h_log_id
  in
  match t.sth_cache with
  | Some c when same c -> c
  | _ ->
    let sth =
      Rpki_transparency.Log.sign_head
        ~key:(transparency_keypair t).Rpki_crypto.Rsa.private_ h
    in
    t.sth_cache <- Some sth;
    sth

(* Drop cached snapshots, memoized validations and grace memory (manual
   operator intervention; the paper notes recovery from Side Effect 7
   requires exactly this kind of manual fix).  The diff baseline survives:
   the next sync still reports the change relative to the last result. *)
let flush_cache t =
  Hashtbl.reset t.cache;
  Hashtbl.reset t.rrdp_clients;
  Hashtbl.reset t.memo;
  Hashtbl.reset t.vrp_memory

let cert_fp cert = Rpki_crypto.Sha256.digest (Cert.encode cert)

(* Canonical digest of a point's VRP contribution — one of the
   content-addressed fields of a transparency observation. *)
let vrp_set_hash vrps =
  Rpki_crypto.Sha256.digest
    (String.concat "\n" (List.map Vrp.to_string (List.sort_uniq Vrp.compare vrps)))

(* A memo entry survives a change of [now] iff [now] falls on the same side
   of every boundary the original validation compared against — the rule is
   shared with the cross-vantage cache. *)
let entry_current (entry : memo_entry) ~now = Valcache.outcome_current entry ~now

let history_depth = 8

(* Record the state [uri] served this sync.  A re-observed hash moves to the
   front (it *is* the newest state again); depth is bounded so long runs
   keep O(points) history, not O(history). *)
let note_point_state t ~uri ~at ~vrp_hash vrps =
  let prior = Option.value (Hashtbl.find_opt t.point_history uri) ~default:[] in
  let prior = List.filter (fun ps -> not (String.equal ps.ps_vrp_hash vrp_hash)) prior in
  (* canonical (sorted, deduplicated) form, same as {!point_vrps}, so a
     rolled-back last-good is indistinguishable from a freshly validated one *)
  let entry =
    { ps_at = at; ps_vrp_hash = vrp_hash; ps_vrps = List.sort_uniq Vrp.compare vrps }
  in
  Hashtbl.replace t.point_history uri
    (List.filteri (fun i _ -> i < history_depth) (entry :: prior))

(* The honest-side rollback: gossip has proved a fork at [uri] and
   identified the proven-honest side's VRP-set hash; return the VRP
   contribution this vantage itself validated under that hash, newest such
   state first.  [None] when this vantage never validated that state (e.g.
   a fresh post-restart incarnation) — the caller's hold then pins nothing
   for the point, which fails closed. *)
let rollback_last_good t ~uri ~vrp_hash =
  match Hashtbl.find_opt t.point_history uri with
  | None -> None
  | Some hist ->
    Option.map (fun ps -> ps.ps_vrps)
      (List.find_opt (fun ps -> String.equal ps.ps_vrp_hash vrp_hash) hist)

(* Deterministic retry backoff: exponential in the attempt number plus a
   per-(uri, attempt) jitter derived by hashing — no RNG state, so a sync
   under a fault-free transport never consults it and stays bit-for-bit
   reproducible. *)
let backoff_delay policy ~uri ~attempt =
  if policy.backoff <= 0 then 0
  else (policy.backoff * (1 lsl min attempt 6)) + (Hashtbl.hash (uri, attempt) mod policy.backoff)

let sync t ~now ~universe ?reachable ?transport ?(policy = default_policy) ?valcache () =
  let transport =
    match (transport, reachable) with
    | Some tr, _ -> tr
    | None, Some oracle -> Transport.of_oracle oracle
    | None, None -> Transport.instant ()
  in
  let allow_stale = policy.use_stale && t.use_stale in
  let issues = ref [] in
  let vrps = ref [] in
  let fetches = ref [] in
  let transfers = ref [] in
  let cas = ref [] in
  let reused = ref 0 in
  let revalidated = ref 0 in
  let appended = ref 0 in
  let regressions = ref [] in
  let clock = ref 0 in
  let exhausted = ref false in
  let seen_keys = Hashtbl.create 16 in
  (* signature checks route through the shared verdict cache when one is
     attached; otherwise straight to Rsa.verify *)
  let verify =
    match valcache with
    | Some vc -> Some (Valcache.verify vc)
    | None -> None
  in
  let problem ~uri ?filename kind reason =
    issues := { uri; filename; kind; reason } :: !issues
  in
  (* resources claimed by CAs that failed to validate this sync — the
     unsafe-VRP analysis' input.  Tracked unconditionally (it is cheap);
     the per-VRP overlap scan only runs under Warn/Reject. *)
  let failed_resources = ref Resources.empty in
  let note_failed rs = failed_resources := Resources.union !failed_resources rs in
  let remember uri snap fp =
    Hashtbl.replace t.cache uri { cp_files = snap; cp_fp = fp; cp_at = now }
  in
  let spend dt = clock := !clock + dt in
  let remaining () = policy.sync_budget - !clock in
  let out_of_budget () =
    if remaining () <= 0 then (exhausted := true; true) else false
  in
  let fetch uri =
    let attempts = ref 0 in
    let spent_before = !clock in
    let record status channel data_age =
      transfers :=
        { t_uri = uri; t_status = status; t_channel = channel; t_attempts = !attempts;
          t_elapsed = !clock - spent_before; t_data_age = data_age }
        :: !transfers;
      fetches := (uri, status) :: !fetches
    in
    match Universe.find universe uri with
    | None ->
      record Unavailable "none" 0;
      problem ~uri Validation.Ik_no_publication_point "no such publication point";
      None
    | Some pp ->
      (* channel 1: the live primary, with bounded retries on a stall *)
      let rec live attempt =
        if out_of_budget () then `Give_up
        else begin
          incr attempts;
          let timeout = min policy.point_timeout (remaining ()) in
          match Transport.fetch transport ~point:pp ~timeout with
          | Transport.Served { files; fp; elapsed } ->
            spend elapsed;
            `Served (files, fp)
          | Transport.Stalled { elapsed } ->
            spend elapsed;
            if attempt < policy.retries then begin
              spend (min (backoff_delay policy ~uri ~attempt) (max 0 (remaining ())));
              live (attempt + 1)
            end
            else `Failed (Validation.Ik_transport_timeout, "stalled past the fetch timeout")
          | Transport.Unroutable { elapsed } ->
            (* no route: retrying within this sync cannot help.  The fault
               table tells refused / DNS / redirect failures apart — same
               price, different attribution (the corpus records them as
               distinct outcomes). *)
            spend elapsed;
            let attribution =
              match Transport.fault_of transport ~uri with
              | Transport.Refused -> (Validation.Ik_transport_refused, "connection refused")
              | Transport.Dns_failure ->
                (Validation.Ik_transport_dns, "no address associated with name")
              | Transport.Redirect origin ->
                ( Validation.Ik_transport_redirect,
                  Printf.sprintf "cross-origin redirect to %s" origin )
              | _ -> (Validation.Ik_transport_unreachable, "unreachable")
            in
            `Failed attribution
        end
      in
      (* channel 2: rsync mirrors, in registration order *)
      let try_mirrors () =
        if not policy.use_mirrors then None
        else
          List.fold_left
            (fun acc mirror ->
              match acc with
              | Some _ -> acc
              | None ->
                if out_of_budget () then None
                else begin
                  incr attempts;
                  let timeout = min policy.point_timeout (remaining ()) in
                  match Transport.fetch transport ~point:mirror ~timeout with
                  | Transport.Served { files; fp; elapsed } ->
                    spend elapsed;
                    Some (mirror, files, fp)
                  | Transport.Stalled { elapsed } | Transport.Unroutable { elapsed } ->
                    spend elapsed;
                    None
                end)
            None (Universe.mirrors_of universe uri)
      in
      (* channel 3: the RRDP delta service (RFC 8182), priced and faulted
         through its own endpoint *)
      let try_rrdp () =
        if not policy.use_rrdp then None
        else
          match Universe.rrdp_of universe uri with
          | None -> None
          | Some (endpoint, server) ->
            if out_of_budget () then None
            else begin
              incr attempts;
              let timeout = min policy.point_timeout (remaining ()) in
              match Transport.probe transport ~point:endpoint ~timeout with
              | `Stalled dt | `Unroutable dt ->
                spend dt;
                None
              | `Ok dt -> (
                spend dt;
                let client =
                  match Hashtbl.find_opt t.rrdp_clients uri with
                  | Some c -> c
                  | None ->
                    let c = Rrdp.create_client () in
                    Hashtbl.replace t.rrdp_clients uri c;
                    c
                in
                match Rrdp.sync client server with
                | exception Rrdp.Desync msg ->
                  problem ~uri Validation.Ik_rrdp_desync (Printf.sprintf "RRDP desync: %s" msg);
                  Hashtbl.remove t.rrdp_clients uri;
                  None
                | _ ->
                  let files = Rrdp.client_files client in
                  Some (Pub_point.uri endpoint, files, Pub_point.fingerprint_of_listing files))
            end
      in
      (* channel 4: the stale local copy, its age on the record.  Fallback
         issues keep the kind of the *primary* failure, so the per-category
         counters attribute the underlying transport problem even when a
         fallback channel saved the sync. *)
      let stale (kind, why) =
        match Hashtbl.find_opt t.cache uri with
        | Some cp when allow_stale ->
          record Stale_cache "cache" (Rtime.diff now cp.cp_at);
          problem ~uri kind (Printf.sprintf "publication point %s; using stale cache" why);
          Some (cp.cp_files, cp.cp_fp)
        | _ ->
          record Unavailable "none" 0;
          problem ~uri kind (Printf.sprintf "publication point %s" why);
          None
      in
      (match live 0 with
      | `Served (files, fp) ->
        remember uri files fp;
        record Fetched "live" 0;
        Some (files, fp)
      | (`Failed _ | `Give_up) as failure -> (
        let ((kind, why) as attribution) =
          match failure with
          | `Failed attribution -> attribution
          | `Give_up -> (Validation.Ik_budget_exhausted, "skipped: sync budget exhausted")
        in
        match try_mirrors () with
        | Some (mirror, files, fp) ->
          remember uri files fp;
          record Fetched_mirror ("mirror:" ^ Pub_point.uri mirror) 0;
          problem ~uri kind
            (Printf.sprintf "primary %s; fetched mirror %s" why (Pub_point.uri mirror));
          Some (files, fp)
        | None -> (
          match try_rrdp () with
          | Some (ep_uri, files, fp) ->
            remember uri files fp;
            record Fetched_rrdp ("rrdp:" ^ ep_uri) 0;
            problem ~uri kind (Printf.sprintf "primary %s; synced via RRDP %s" why ep_uri);
            Some (files, fp)
          | None -> stale attribution)))
  in
  (* Validate and walk one CA's publication point. *)
  let rec process_ca (ca_cert : Cert.t) =
    let key = Cert.key_id ca_cert in
    if Hashtbl.mem seen_keys key then ()
    else begin
      Hashtbl.add seen_keys key ();
      cas := ca_cert.Cert.subject :: !cas;
      match ca_cert.Cert.repo_uri with
      | None ->
        note_failed ca_cert.Cert.resources;
        problem ~uri:"-" Validation.Ik_no_publication_point
          (Printf.sprintf "CA %s has no repository" ca_cert.Cert.subject)
      | Some uri -> (
        match fetch uri with
        | None ->
          (* every channel failed and nothing was cached: the CA's whole
             subtree is invisible this sync, so its claimed resources join
             the failed set the unsafe-VRP analysis scans against *)
          note_failed ca_cert.Cert.resources
        | Some (snapshot, snap_fp) ->
          let memo_key = uri ^ "\x00" ^ key in
          let parent_fp = cert_fp ca_cert in
          let entry =
            match Hashtbl.find_opt t.memo memo_key with
            | Some e
              when String.equal e.Valcache.o_parent_fp parent_fp
                   && String.equal e.Valcache.o_snap_fp snap_fp && entry_current e ~now ->
              incr reused;
              e
            | _ ->
              (* a per-vantage miss; [reused]/[revalidated] count only this
                 private memo, so the sync result is identical whether the
                 miss is then served by the shared plane or by fresh
                 validation.  A shared outcome is rebased to [now] — sound
                 because {!Valcache.find_point} already checked that [now]
                 sits on the same side of every recorded boundary, so a
                 fresh validation at [now] would produce exactly this entry. *)
              incr revalidated;
              let e =
                let fresh () = validate_point ~uri ~ca_cert ~parent_fp ~snapshot ~snap_fp in
                match valcache with
                | None -> fresh ()
                | Some vc -> (
                  match Valcache.find_point vc ~parent_fp ~snap_fp ~now with
                  | Some o -> { o with Valcache.o_at = now }
                  | None ->
                    let e = fresh () in
                    Valcache.store_point vc e;
                    e)
              in
              Hashtbl.replace t.memo memo_key e;
              e
          in
          issues :=
            List.rev_append
              (List.map (fun (filename, kind, reason) -> { uri; filename; kind; reason })
                 entry.Valcache.o_issues)
              !issues;
          vrps := entry.Valcache.o_vrps @ !vrps;
          note_failed entry.Valcache.o_failed_resources;
          (* transparency: record the state this point served us.  The leaf
             is content-addressed, so a memo replay of an unchanged point
             dedups to a no-op, while a split-view authority serving this
             vantage different bytes necessarily forks the log. *)
          let ob =
            { Rpki_transparency.Log.ob_uri = uri;
              ob_serial = entry.Valcache.o_mft_number;
              ob_manifest_hash = entry.Valcache.o_mft_hash;
              ob_vrp_hash = vrp_set_hash entry.Valcache.o_vrps;
              ob_snapshot_fp = snap_fp;
              ob_at = now }
          in
          let prev = Rpki_transparency.Log.latest_for t.tlog ~uri in
          (match Rpki_transparency.Log.append t.tlog ob with
          | `Appended _ ->
            incr appended;
            (* corpus-style manifest-number anomalies, judged against this
               run's own history for the point (serial 0 means "no manifest
               served" and is excluded — that is already a missing-manifest
               issue).  A leap past the honest-churn threshold is a seqnum
               gap; any step backwards is a manifest-number regression. *)
            (match prev with
            | Some p
              when ob.Rpki_transparency.Log.ob_serial > 0
                   && p.Rpki_transparency.Log.ob_serial > 0 ->
              let prev_serial = p.Rpki_transparency.Log.ob_serial in
              let now_serial = ob.Rpki_transparency.Log.ob_serial in
              if now_serial - prev_serial > seqnum_gap_threshold then
                problem ~uri Validation.Ik_seqnum_gap
                  (Printf.sprintf "seqnum gap detected: manifest #%d -> #%d" prev_serial
                     now_serial)
              else if now_serial < prev_serial then
                problem ~uri Validation.Ik_manifest_regression
                  (Printf.sprintf "manifest number lower than expected: #%d -> #%d"
                     prev_serial now_serial)
            | _ -> ());
            (* the point's state changed — does it contradict the history this
               instance *restored from disk*?  A lower manifest number than the
               restored baseline recorded is a served rollback; a different
               state under a baseline-recorded number is equivocation.  Within
               one continuous run (baseline 0, or leaves appended since
               restore) a change is ordinary churn/corruption, not a
               regression: only pre-restart history makes the past
               contradictable. *)
            let in_baseline ~uri ~serial =
              match Rpki_transparency.Log.find t.tlog ~uri ~serial with
              | Some (i, _) -> i < t.log_baseline
              | None -> false
            in
            (match prev with
            | Some p
              when ob.Rpki_transparency.Log.ob_serial < p.Rpki_transparency.Log.ob_serial
                   && in_baseline ~uri ~serial:p.Rpki_transparency.Log.ob_serial ->
              regressions :=
                Serial_regression { rg_uri = uri; rg_prev = p; rg_now = ob } :: !regressions
            | _ -> ());
            (match Rpki_transparency.Log.find t.tlog ~uri ~serial:ob.Rpki_transparency.Log.ob_serial with
            | Some (i, prior)
              when i < t.log_baseline
                   && not (Rpki_transparency.Log.observation_equal prior ob) ->
              regressions :=
                Content_equivocation { rg_uri = uri; rg_index = i; rg_prev = prior; rg_now = ob }
                :: !regressions
            | _ -> ())
          | `Unchanged -> ());
          note_point_state t ~uri ~at:now
            ~vrp_hash:ob.Rpki_transparency.Log.ob_vrp_hash entry.Valcache.o_vrps;
          List.iter process_ca entry.Valcache.o_children)
    end
  (* From-scratch validation of one point's contents, recording every
     validity boundary consulted so the outcome can be replayed at a
     different [now]. *)
  and validate_point ~uri ~ca_cert ~parent_fp ~snapshot ~snap_fp =
    ignore uri;
    (* the outcome is URI-free (see {!Valcache.outcome}): issues carry only
       filename and reason here, and the caller re-attaches the URI *)
    let local_issues = ref [] in
    let local_vrps = ref [] in
    let children = ref [] in
    let failed = ref Resources.empty in
    let boundaries = ref [ ca_cert.Cert.not_before; ca_cert.Cert.not_after ] in
    let window (c : Cert.t) = boundaries := c.Cert.not_before :: c.Cert.not_after :: !boundaries in
    let problem ?filename kind reason =
      local_issues := (filename, kind, reason) :: !local_issues
    in
    let decode_file filename =
      match List.assoc_opt filename snapshot with
      | None -> None
      | Some bytes -> (
        match Obj.decode ~filename bytes with
        | Ok o ->
          (match o with
          | Obj.Cert c -> window c
          | Obj.Roa r -> window r.Roa.ee
          | Obj.Crl c -> boundaries := c.Crl.this_update :: c.Crl.next_update :: !boundaries
          | Obj.Manifest m ->
            window m.Manifest.ee;
            boundaries := m.Manifest.this_update :: m.Manifest.next_update :: !boundaries);
          Some o
        | Error e ->
          problem ~filename Validation.Ik_malformed e;
          None)
    in
    (* the CA's own manifest, if present and well-formed *)
    let mft_name =
      Option.value ca_cert.Cert.manifest_uri ~default:(ca_cert.Cert.subject ^ ".mft")
    in
    (* transparency fields: what the point *served*, recorded even when the
       manifest fails validation — the log keeps evidence, not judgements *)
    let mft_hash =
      match List.assoc_opt mft_name snapshot with
      | Some bytes -> Rpki_crypto.Sha256.digest bytes
      | None -> ""
    in
    let mft_number = ref 0 in
    let manifest =
      match decode_file mft_name with
      | Some (Obj.Manifest m) -> (
        mft_number := m.Manifest.manifest_number;
        match Validation.validate_manifest ?verify ~now ~parent:ca_cert m with
        | Ok () -> Some m
        | Error f ->
          (* the shared Stale_crl failure means "window closed" here — on a
             manifest that is staleness, not an expired CRL *)
          let kind =
            match f with
            | Validation.Stale_crl _ -> Validation.Ik_stale_manifest
            | f -> Validation.failure_kind f
          in
          problem ~filename:mft_name kind (Validation.failure_to_string f);
          None)
      | Some _ ->
        problem ~filename:mft_name Validation.Ik_missing_manifest
          "manifest slot holds a different object";
        None
      | None ->
        problem ~filename:mft_name Validation.Ik_missing_manifest
          "manifest missing or undecodable";
        None
    in
    (* manifest completeness / integrity check *)
    (match manifest with
    | None -> ()
    | Some m ->
      List.iter
        (fun (e : Manifest.entry) ->
          match List.assoc_opt e.Manifest.filename snapshot with
          | None ->
            problem ~filename:e.Manifest.filename Validation.Ik_missing_object
              "listed on manifest but missing"
          | Some bytes ->
            if not (Rpki_crypto.Hmac.equal_digest (Rpki_crypto.Sha256.digest bytes) e.Manifest.hash)
            then
              problem ~filename:e.Manifest.filename Validation.Ik_hash_mismatch
                "hash mismatch with manifest")
        m.Manifest.entries;
      List.iter
        (fun (filename, _) ->
          if filename <> mft_name && Manifest.find m filename = None then
            problem ~filename Validation.Ik_unlisted_object "present but not listed on manifest")
        snapshot);
    (* the CA's CRL for the objects it issued *)
    let crl_name = ca_cert.Cert.subject ^ ".crl" in
    let crl =
      match decode_file crl_name with
      | Some (Obj.Crl c) -> (
        match Validation.validate_crl ?verify ~now ~parent:ca_cert c with
        | Ok () -> Some c
        | Error f ->
          problem ~filename:crl_name (Validation.failure_kind f)
            (Validation.failure_to_string f);
          None)
      | Some _ | None ->
        problem ~filename:crl_name Validation.Ik_missing_crl "CRL missing or undecodable";
        None
    in
    (* process every other object at the point *)
    List.iter
      (fun (filename, _) ->
        if filename = mft_name || filename = crl_name then ()
        else begin
          match decode_file filename with
          | None -> ()
          | Some (Obj.Cert c) -> (
            match Validation.validate_cert ?verify ~now ~parent:ca_cert ?crl c with
            | Ok () -> if c.Cert.is_ca then children := c :: !children
            | Error f ->
              (* a child CA that fails here is a CA we cannot descend into:
                 whatever it would have spoken for is dark, so its claimed
                 resources feed the unsafe-VRP analysis *)
              if c.Cert.is_ca then failed := Resources.union !failed c.Cert.resources;
              problem ~filename (Validation.failure_kind f) (Validation.failure_to_string f))
          | Some (Obj.Roa r) -> (
            match Validation.validate_roa ?verify ~now ~parent:ca_cert ?crl r with
            | Ok vs -> local_vrps := vs @ !local_vrps
            | Error f ->
              problem ~filename (Validation.failure_kind f) (Validation.failure_to_string f))
          | Some (Obj.Crl _) -> problem ~filename Validation.Ik_unlisted_object "unexpected extra CRL"
          | Some (Obj.Manifest _) ->
            problem ~filename Validation.Ik_unlisted_object "unexpected extra manifest"
        end)
      snapshot;
    { Valcache.o_parent_fp = parent_fp;
      o_snap_fp = snap_fp;
      o_at = now;
      o_boundaries = !boundaries;
      o_subject = ca_cert.Cert.subject;
      o_vrps = !local_vrps;
      o_issues = List.rev !local_issues;
      o_failed_resources = !failed;
      o_children = List.rev !children;
      o_mft_number = !mft_number;
      o_mft_hash = mft_hash }
  in
  List.iter
    (fun tal ->
      match fetch tal.ta_uri with
      | None -> ()
      | Some (snapshot, _) -> (
        match List.assoc_opt tal.ta_cert_filename snapshot with
        | None ->
          problem ~uri:tal.ta_uri ~filename:tal.ta_cert_filename Validation.Ik_missing_object
            "TA certificate missing"
        | Some bytes -> (
          match Cert.decode bytes with
          | Error e ->
            problem ~uri:tal.ta_uri ~filename:tal.ta_cert_filename Validation.Ik_malformed e
          | Ok cert -> (
            match Validation.validate_trust_anchor ?verify ~now ~expected_key:tal.ta_key cert with
            | Ok () -> process_ca cert
            | Error f ->
              problem ~uri:tal.ta_uri ~filename:tal.ta_cert_filename
                (Validation.failure_kind f) (Validation.failure_to_string f)))))
    t.tals;
  let current = List.sort_uniq Vrp.compare !vrps in
  let effective =
    match t.grace with
    | None -> current
    | Some grace ->
      (* remember when each VRP was last seen; resurrect those seen within
         the grace window.  [current] is sorted, so a membership set makes
         the held scan O(memory) instead of O(memory * current). *)
      let in_current = Hashtbl.create (List.length current) in
      List.iter
        (fun v ->
          Hashtbl.replace in_current v ();
          Hashtbl.replace t.vrp_memory v now)
        current;
      let held =
        Hashtbl.fold
          (fun v last acc ->
            if Rtime.( <= ) (Rtime.diff now last) grace && not (Hashtbl.mem in_current v)
            then v :: acc
            else acc)
          t.vrp_memory []
        |> List.sort Vrp.compare
      in
      List.iter
        (fun v ->
          issues :=
            { uri = "-"; filename = None; kind = Validation.Ik_grace_hold;
              reason = Printf.sprintf "grace: holding disappeared VRP %s" (Vrp.to_string v) }
            :: !issues)
        held;
      List.sort_uniq Vrp.compare (current @ held)
  in
  (* Routinator-style unsafe-VRP analysis: a VRP whose prefix overlaps the
     resources of a CA that failed this sync.  [Unsafe_accept] skips the
     scan entirely — the pre-existing behavior, byte for byte.  Warn and
     Reject both report the set; Reject additionally withdraws it from the
     effective VRPs (and thus from the index, the diff and RTR). *)
  let unsafe_vrps, effective =
    match policy.unsafe with
    | Unsafe_accept -> ([], effective)
    | Unsafe_warn | Unsafe_reject ->
      let failed = !failed_resources in
      let unsafe =
        if Resources.is_empty failed then []
        else
          List.filter
            (fun (v : Vrp.t) ->
              Resources.overlaps
                (Resources.make ~v4:(Rpki_ip.V4.Set.of_prefix v.Vrp.prefix) ())
                failed)
            effective
      in
      List.iter
        (fun v ->
          problem ~uri:"-" Validation.Ik_unsafe_vrp
            (Printf.sprintf "unsafe VRP %s: overlaps resources of a CA that failed to validate (%s)"
               (Vrp.to_string v) (unsafe_policy_to_string policy.unsafe)))
        unsafe;
      ( unsafe,
        if policy.unsafe = Unsafe_reject && unsafe <> [] then
          List.filter (fun v -> not (List.exists (fun u -> Vrp.compare u v = 0) unsafe)) effective
        else effective )
  in
  (* The diff against the previous sync is the currency everything
     downstream consumes: it patches the trie here and becomes the RTR
     serial delta in the simulation loop. *)
  let diff = Vrp.diff_of ~before:t.effective_vrps ~after:effective in
  t.index <- Origin_validation.apply_diff t.index diff;
  t.effective_vrps <- effective;
  let result =
    { vrps = effective;
      unsafe_vrps;
      failed_resources = !failed_resources;
      issues = List.rev !issues;
      fetches = List.rev !fetches;
      transfers = List.rev !transfers;
      sync_elapsed = !clock;
      budget_exhausted = !exhausted;
      cas_validated = List.rev !cas;
      index = t.index;
      diff;
      points_reused = !reused;
      points_revalidated = !revalidated;
      observations_appended = !appended;
      regressions = List.rev !regressions;
      tree_head = Rpki_transparency.Log.head t.tlog ~at:now }
  in
  t.last_result <- Some result;
  result

(* The worst data staleness a sync accepted: 0 when every point came from a
   fresh channel, the oldest cache age otherwise.  Monitors alarm on it and
   the RTR layer surfaces it next to its serial. *)
let max_data_age (result : sync_result) =
  List.fold_left (fun acc tr -> max acc tr.t_data_age) 0 result.transfers

(* --- persistence ---------------------------------------------------------

   What survives a restart is exactly the anti-rollback baseline: the
   transparency log (replayed observation by observation), the signed tree
   head it must still be consistent with, the last gossip-verified peer
   heads, the last-good effective VRP set (so the RTR serial line can
   continue), and the RTR serial itself.  Caches, memos and grace memory are
   deliberately not persisted — they are re-derivable and carry no evidence.

   Restore is fail-closed: a snapshot that is missing, corrupt, stale, or
   internally inconsistent (rehydrated log disagreeing with its own signed
   head) yields [Recovered_fresh] with a typed reason.  It never crashes and
   never silently trusts. *)

module Tlog = Rpki_transparency.Log
module Der = Rpki_asn.Der

type fresh_reason =
  | No_snapshot
  | Snapshot_corrupt of string
  | Snapshot_stale of { snap_generation : int; marker : int }
  | Log_inconsistent of string

let fresh_reason_to_string = function
  | No_snapshot -> "no snapshot"
  | Snapshot_corrupt why -> Printf.sprintf "snapshot corrupt: %s" why
  | Snapshot_stale { snap_generation; marker } ->
    Printf.sprintf "snapshot stale: generation %d behind marker %d" snap_generation marker
  | Log_inconsistent why -> Printf.sprintf "log inconsistent: %s" why

type recovery =
  | Recovered of { rc_generation : int; rc_saved_at : int; rc_rtr_serial : int }
  | Recovered_fresh of fresh_reason

let recovery_to_string = function
  | Recovered r ->
    Printf.sprintf "recovered generation %d (saved @t%d, rtr serial %d)" r.rc_generation
      r.rc_saved_at r.rc_rtr_serial
  | Recovered_fresh reason -> Printf.sprintf "fresh start: %s" (fresh_reason_to_string reason)

exception Restore_error of string

let vrp_to_der (v : Vrp.t) =
  Der.Sequence
    [ Der.int_ (Rpki_ip.V4.Prefix.addr v.Vrp.prefix);
      Der.int_ (Rpki_ip.V4.Prefix.len v.Vrp.prefix);
      Der.int_ v.Vrp.max_len;
      Der.int_ v.Vrp.asn ]

let vrp_of_der = function
  | Der.Sequence
      [ (Der.Integer _ as a); (Der.Integer _ as l); (Der.Integer _ as m);
        (Der.Integer _ as s) ] ->
    Vrp.make ~max_len:(Der.to_int_exn m)
      (Rpki_ip.V4.Prefix.make (Der.to_int_exn a) (Der.to_int_exn l))
      (Der.to_int_exn s)
  | _ -> raise (Restore_error "VRP record is not an integer quadruple")

let record kind payload = { Rpki_persist.Codec.r_kind = kind; r_payload = payload }

(* The Merkle checkpoint a segment is sealed under: the previous persisted
   head plus the consistency proof from it to the head the segment carries.
   Restore walks these from base through every segment — a chain that does
   not prove one append-only history is refused wholesale. *)
let encode_checkpoint ~prev ~proof =
  Der.encode
    (Der.Sequence
       [ Der.Octet_string (Tlog.encode_head prev);
         Der.Sequence (List.map (fun h -> Der.Octet_string h) proof) ])

let decode_checkpoint payload =
  match Der.decode payload with
  | Ok (Der.Sequence [ Der.Octet_string prev; Der.Sequence hashes ]) -> (
    let proof =
      List.map
        (function
          | Der.Octet_string h -> h
          | _ -> raise (Restore_error "malformed checkpoint proof"))
        hashes
    in
    match Tlog.decode_head prev with
    | Some h -> (h, proof)
    | None -> raise (Restore_error "malformed checkpoint head"))
  | _ -> raise (Restore_error "malformed checkpoint record")

(* Every container — full base or sealed segment — carries the bounded
   state records: identity, current signed head, gossip-verified peer heads
   and the last-good VRP set.  Restore takes the newest.  Only the
   observation list is history-sized, and the segmented path writes just
   the observations appended since the store's mark. *)
let bounded_records t ~now ~rtr_serial =
  let meta =
    Der.encode
      (Der.Sequence
         [ Der.Utf8 t.name; Der.int_ t.asn; Der.int_ t.log_epoch; Der.int_ rtr_serial ])
  in
  let sh = signed_tree_head t ~now in
  let sth =
    Der.encode
      (Der.Sequence
         [ Der.Octet_string (Tlog.encode_head sh.Tlog.sh_head);
           Der.Octet_string sh.Tlog.sh_sig ])
  in
  let peers =
    List.rev_map
      (fun (peer, h) ->
        record "peer"
          (Der.encode
             (Der.Sequence [ Der.Utf8 peer; Der.Octet_string (Tlog.encode_head h) ])))
      t.peer_heads
  in
  let vrps =
    record "vrps" (Der.encode (Der.Sequence (List.map vrp_to_der t.effective_vrps)))
  in
  (record "meta" meta, record "sth" sth, peers, vrps, sh.Tlog.sh_head)

let save t ~now ?(rtr_serial = 0) ?(mode = `Auto) store =
  let meta, sth, peers, vrps, head = bounded_records t ~now ~rtr_serial in
  let size = Tlog.size t.tlog in
  let key = Rpki_persist.Store.name store in
  let mark =
    match mode with
    | `Full -> None
    | `Auto -> (
      match Hashtbl.find_opt t.persist_marks key with
      | Some m
        when Rpki_persist.Store.generation store > 0
             && m.pm_obs <= size
             && String.equal m.pm_head.Tlog.h_log_id (Tlog.log_id t.tlog) ->
        Some m
      | _ -> None (* no usable mark (wiped store, log reset): full save *))
  in
  let generation =
    match mark with
    | None ->
      let obs =
        List.map (fun o -> record "obs" (Tlog.encode_observation o)) (Tlog.observations t.tlog)
      in
      Rpki_persist.Store.save store ~now ((meta :: sth :: obs) @ peers @ [ vrps ])
    | Some m ->
      (* O(delta): only the observations appended since the mark, sealed
         under the checkpoint that ties them to the previous head *)
      let fresh =
        List.map
          (fun (_, o) -> record "obs" (Tlog.encode_observation o))
          (Tlog.since t.tlog m.pm_obs)
      in
      let proof =
        if m.pm_obs = 0 then []
        else Tlog.consistency_proof t.tlog ~old_size:m.pm_obs ~size
      in
      let ckpt = record "ckpt" (encode_checkpoint ~prev:m.pm_head ~proof) in
      Rpki_persist.Store.append store ~now
        ((meta :: sth :: ckpt :: fresh) @ peers @ [ vrps ])
  in
  Hashtbl.replace t.persist_marks key { pm_obs = size; pm_head = head };
  generation

(* Fold a segmented chain back into one full-shaped base container: every
   observation in order, the newest container's meta/sth/peers/vrps, no
   checkpoints (the folded base has no predecessor).  Restore cannot tell a
   folded base from a full save. *)
let fold_containers containers =
  let is kind (r : Rpki_persist.Codec.record) = String.equal r.Rpki_persist.Codec.r_kind kind in
  let obs = List.concat_map (List.filter (is "obs")) containers in
  let last = List.nth containers (List.length containers - 1) in
  let keep kind = List.filter (is kind) last in
  keep "meta" @ keep "sth" @ obs @ keep "peer" @ keep "vrps"

let compact_store store ~now = Rpki_persist.Store.compact store ~now ~fold:fold_containers

let restore t store =
  match Rpki_persist.Store.load_chain store with
  | Error Rpki_persist.Store.No_snapshot -> Recovered_fresh No_snapshot
  | Error (Rpki_persist.Store.Corrupt why) -> Recovered_fresh (Snapshot_corrupt why)
  | Error (Rpki_persist.Store.Stale { snap_generation; marker }) ->
    Recovered_fresh (Snapshot_stale { snap_generation; marker })
  | Ok containers -> (
    let bad fmt = Printf.ksprintf (fun s -> raise (Restore_error s)) fmt in
    try
      let meta = ref None in
      let sth = ref None in
      let obs = ref [] in
      let peers = ref [] in
      let vrps = ref None in
      (* Walk the chain base-first.  Observations accumulate across
         containers (each segment holds only its delta); the bounded
         records are rewritten whole on every save, so the newest container
         wins.  Each segment must carry a checkpoint naming the previous
         container's head byte-for-byte and a consistency proof from it to
         the segment's own head — the chain is one append-only history or
         it is refused. *)
      let prev_head = ref None in
      List.iter
        (fun (snap : Rpki_persist.Codec.snapshot) ->
          let g = snap.Rpki_persist.Codec.s_generation in
          let c_meta = ref None in
          let c_sth = ref None in
          let c_ckpt = ref None in
          let c_peers = ref [] in
          let c_vrps = ref None in
          List.iter
            (fun (r : Rpki_persist.Codec.record) ->
              let payload = r.Rpki_persist.Codec.r_payload in
              match r.Rpki_persist.Codec.r_kind with
              | "meta" -> (
                match Der.decode payload with
                | Ok
                    (Der.Sequence
                      [ Der.Utf8 n; (Der.Integer _ as a); (Der.Integer _ as e);
                        (Der.Integer _ as s) ]) ->
                  c_meta := Some (n, Der.to_int_exn a, Der.to_int_exn e, Der.to_int_exn s)
                | _ -> bad "malformed meta record")
              | "sth" -> (
                match Der.decode payload with
                | Ok (Der.Sequence [ Der.Octet_string head; Der.Octet_string signature ]) -> (
                  match Tlog.decode_head head with
                  | Some h -> c_sth := Some { Tlog.sh_head = h; sh_sig = signature }
                  | None -> bad "malformed persisted tree head")
                | _ -> bad "malformed sth record")
              | "ckpt" -> c_ckpt := Some (decode_checkpoint payload)
              | "obs" -> (
                match Tlog.decode_observation payload with
                | Some o -> obs := o :: !obs
                | None -> bad "malformed observation record")
              | "peer" -> (
                match Der.decode payload with
                | Ok (Der.Sequence [ Der.Utf8 peer; Der.Octet_string head ]) -> (
                  match Tlog.decode_head head with
                  | Some h -> c_peers := (peer, h) :: !c_peers
                  | None -> bad "malformed peer head for %s" peer)
                | _ -> bad "malformed peer record")
              | "vrps" -> (
                match Der.decode payload with
                | Ok (Der.Sequence vs) -> c_vrps := Some (List.map vrp_of_der vs)
                | _ -> bad "malformed vrps record")
              | other -> bad "unknown record kind %S" other)
            snap.Rpki_persist.Codec.s_records;
          let c_sth =
            match !c_sth with
            | Some s -> s
            | None -> bad "container %d missing its signed tree head" g
          in
          (match (!prev_head, !c_ckpt) with
          | None, None -> () (* the base container: no predecessor to prove *)
          | None, Some _ -> bad "base container carries a checkpoint"
          | Some _, None -> bad "segment %d missing its checkpoint" g
          | Some prev, Some (ckpt_head, proof) ->
            if not (String.equal (Tlog.encode_head ckpt_head) (Tlog.encode_head prev)) then
              bad "segment %d checkpoint does not name the previous head" g;
            if
              not
                (Tlog.verify_head_consistency ~old_head:ckpt_head
                   ~new_head:c_sth.Tlog.sh_head proof)
            then bad "segment %d consistency proof fails" g);
          prev_head := Some c_sth.Tlog.sh_head;
          sth := Some c_sth;
          (match !c_meta with
          | Some m -> meta := Some m
          | None -> bad "container %d missing its meta record" g);
          (match !c_vrps with
          | Some v -> vrps := Some v
          | None -> bad "container %d missing its vrps record" g);
          peers := !c_peers)
        containers;
      let name, _asn, epoch, rtr_serial =
        match !meta with Some m -> m | None -> bad "missing meta record"
      in
      if not (String.equal name t.name) then
        bad "snapshot belongs to vantage %S, not %S" name t.name;
      let sth = match !sth with Some s -> s | None -> bad "missing signed tree head" in
      let vrps = match !vrps with Some v -> v | None -> bad "missing vrps record" in
      (* Rehydrate the log by replaying the observations in order; the replay
         must reproduce the persisted head bit-for-bit (same id, size and
         Merkle root) and the head must verify under this vantage's key.
         Anything less and we refuse the snapshot wholesale. *)
      let log = Tlog.create ~log_id:(log_id_for ~name:t.name ~epoch) in
      List.iter
        (fun o ->
          match Tlog.append log o with
          | `Appended _ -> ()
          | `Unchanged -> bad "replay produced a duplicate observation")
        (List.rev !obs);
      let h = sth.Tlog.sh_head in
      if not (String.equal h.Tlog.h_log_id (Tlog.log_id log)) then
        bad "persisted head names log %S, expected %S" h.Tlog.h_log_id (Tlog.log_id log);
      if h.Tlog.h_size <> Tlog.size log then
        bad "persisted head size %d, rehydrated log has %d" h.Tlog.h_size (Tlog.size log);
      let rebuilt = Tlog.head log ~at:h.Tlog.h_at in
      if not (String.equal rebuilt.Tlog.h_root h.Tlog.h_root) then
        bad "Merkle root mismatch between persisted head and rehydrated log";
      if not (Tlog.verify_head ~key:(transparency_key t) sth) then
        bad "persisted tree head signature does not verify";
      t.log_epoch <- epoch;
      t.tlog <- log;
      t.log_baseline <- Tlog.size log;
      t.peer_heads <- !peers;
      t.effective_vrps <- Vrp.normalize vrps;
      t.index <- Origin_validation.build t.effective_vrps;
      (* the verified final head doubles as the next save's checkpoint, so
         the first post-restore save appends instead of rewriting history *)
      Hashtbl.replace t.persist_marks (Rpki_persist.Store.name store)
        { pm_obs = Tlog.size log; pm_head = sth.Tlog.sh_head };
      let newest = List.nth containers (List.length containers - 1) in
      Recovered
        { rc_generation = newest.Rpki_persist.Codec.s_generation;
          rc_saved_at = newest.Rpki_persist.Codec.s_saved_at;
          rc_rtr_serial = rtr_serial }
    with
    | Restore_error why -> Recovered_fresh (Log_inconsistent why)
    | Der.Decode_error why -> Recovered_fresh (Log_inconsistent why)
    | Invalid_argument why -> Recovered_fresh (Log_inconsistent why))
