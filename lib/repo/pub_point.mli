(** A publication point: the rsync-served directory where one authority
    publishes everything it has issued (RFC 6481).

    The paper's Section 3 design decisions live here: objects are delivered
    out of band from a directory {e controlled by their issuer}, and an
    issuer may silently delete or overwrite anything in its own directory.

    The type is opaque; all mutation goes through {!put} / {!delete} /
    {!replace_files} / {!corrupt} so the point can maintain a cached
    content {!fingerprint} that relying parties use to skip re-validating
    unchanged points. *)

type t

val create : uri:string -> addr:Rpki_ip.Addr.V4.t -> host_asn:int -> t

val uri : t -> string
(** e.g. ["rsync://rpki.sprint.net/repo"]. *)

val addr : t -> Rpki_ip.Addr.V4.t
(** Where the repository host lives. *)

val host_asn : t -> int
(** The AS hosting the repository. *)

val put : t -> filename:string -> string -> unit
(** Publish or overwrite one file. *)

val delete : t -> filename:string -> unit
val get : t -> filename:string -> string option

val files : t -> (string * string) list
(** The listing, sorted by filename. *)

val filenames : t -> string list
val mem : t -> filename:string -> bool

val snapshot : t -> (string * string) list
(** A point-in-time copy, as an rsync client would obtain. *)

val replace_files : t -> (string * string) list -> unit
(** Overwrite the whole listing (mirror refresh). *)

val fingerprint : t -> string
(** SHA-256 over the sorted listing, cached until the next mutation, so
    an unchanged point answers in O(1). *)

val fingerprint_of_listing : (string * string) list -> string
(** The same digest computed over an arbitrary listing (e.g. a relying
    party's cached snapshot). *)

val corrupt : t -> filename:string -> byte_index:int -> bool
(** Flip one byte of a stored file (the transient corruption of Section 6);
    [false] when the file does not exist. *)

val pp : Format.formatter -> t -> unit
