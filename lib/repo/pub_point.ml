(* A publication point: the rsync-served directory where one authority
   publishes every object it has issued (RFC 6481).

   The paper's Section 3 design decisions live here: objects are delivered
   out of band from a directory *controlled by their issuer*, and an issuer
   may silently delete or overwrite anything in its own directory.

   Each point maintains a content fingerprint — SHA-256 over the sorted
   (filename, bytes) listing — recomputed lazily and invalidated on every
   mutation.  Relying parties compare fingerprints to decide whether a
   point changed since their last sync, which is what makes a warm tick
   skip re-validation of the unchanged bulk of the universe. *)

type t = {
  uri : string;                    (* e.g. "rsync://rpki.sprint.net/repo" *)
  addr : Rpki_ip.Addr.V4.t;        (* where the repository host lives *)
  host_asn : int;                  (* the AS hosting the repository *)
  mutable files : (string * string) list; (* filename -> DER bytes, sorted *)
  mutable fp : string option;      (* cached listing fingerprint *)
}

let create ~uri ~addr ~host_asn = { uri; addr; host_asn; files = []; fp = None }

let uri t = t.uri
let addr t = t.addr
let host_asn t = t.host_asn

let sort files = List.sort (fun (a, _) (b, _) -> String.compare a b) files

(* Publish (or overwrite) one file. *)
let put t ~filename bytes =
  t.files <- sort ((filename, bytes) :: List.remove_assoc filename t.files);
  t.fp <- None

let delete t ~filename =
  t.files <- List.remove_assoc filename t.files;
  t.fp <- None

let get t ~filename = List.assoc_opt filename t.files

let files t = t.files
let filenames t = List.map fst t.files
let mem t ~filename = List.mem_assoc filename t.files

(* A point-in-time copy, as an rsync client would obtain. *)
let snapshot t = t.files

let replace_files t files =
  t.files <- sort files;
  t.fp <- None

(* SHA-256 over a length-prefixed encoding of the sorted listing, so that
   file boundaries cannot alias ("ab","c" vs "a","bc"). *)
let fingerprint_of_listing files =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (name, bytes) ->
      Buffer.add_string buf (string_of_int (String.length name));
      Buffer.add_char buf ':';
      Buffer.add_string buf name;
      Buffer.add_string buf (string_of_int (String.length bytes));
      Buffer.add_char buf ':';
      Buffer.add_string buf bytes)
    (sort files);
  Rpki_crypto.Sha256.digest (Buffer.contents buf)

let fingerprint t =
  match t.fp with
  | Some fp -> fp
  | None ->
    let fp = fingerprint_of_listing t.files in
    t.fp <- Some fp;
    fp

(* Flip one byte of a stored file: the transient corruption of Section 6. *)
let corrupt t ~filename ~byte_index =
  match get t ~filename with
  | None -> false
  | Some bytes ->
    let i = byte_index mod max 1 (String.length bytes) in
    let b = Bytes.of_string bytes in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x01));
    put t ~filename (Bytes.to_string b);
    true

let pp fmt t =
  Format.fprintf fmt "%s (@%s, AS%d): %s" t.uri
    (Rpki_ip.Addr.V4.to_string t.addr)
    t.host_asn
    (String.concat ", " (filenames t))
