(** A stateful RPKI authority (certification authority).

    Owns a keypair, an RC signed by its parent (or self-signed for a trust
    anchor), and a publication point holding everything it has issued: child
    RCs, ROAs, its CRL and its manifest (RFC 6481 layout).

    All legitimate operations {e and} all of the paper's manipulations are
    methods here — a misbehaving authority is just an authority whose owner
    calls the wrong methods, which is exactly the paper's point. *)

open Rpki_core
open Rpki_crypto

type t
(** Opaque; every state change flows through the operations below, so the
    publication point is always republished consistently. *)

val name : t -> string

val key : t -> Rsa.keypair
(** The current CA keypair (changes across RFC 6489 key rollover). *)

val ee_key : t -> Rsa.keypair
(** Reused for EE certificates; reuse is permitted and cuts keygen cost. *)

val cert : t -> Cert.t
(** The current RC (parent-signed, or self-signed for a trust anchor). *)

val parent : t -> t option
val pub : t -> Pub_point.t
val children : t -> t list

val roas : t -> (string * Roa.t) list
(** Currently issued ROAs, filename first. *)

val revoked : t -> int list
(** Serials on this authority's CRL. *)

val crl_filename : t -> string
val manifest_filename : t -> string
val cert_filename : string -> string

val default_validity : int
val default_refresh : int

val create_trust_anchor :
  name:string ->
  resources:Resources.t ->
  uri:string ->
  addr:Rpki_ip.Addr.V4.t ->
  host_asn:int ->
  now:Rtime.t ->
  universe:Universe.t ->
  ?key_bits:int ->
  ?validity:int ->
  ?refresh_interval:int ->
  unit ->
  t

val tal : t -> string * Rsa.public * string * string
(** [(name, public key, repository URI, certificate filename)] — what a
    relying party needs to start from this trust anchor.  Raises
    [Invalid_argument] on a non-root authority. *)

val create_child :
  t ->
  name:string ->
  resources:Resources.t ->
  uri:string ->
  addr:Rpki_ip.Addr.V4.t ->
  host_asn:int ->
  now:Rtime.t ->
  universe:Universe.t ->
  ?key_bits:int ->
  ?validity:int ->
  ?refresh_interval:int ->
  unit ->
  t
(** Issue a child CA with its own key, certificate and publication point. *)

val issue_roa :
  t ->
  asid:int ->
  v4_entries:Roa.v4_entry list ->
  ?v6_entries:Roa.v6_entry list ->
  now:Rtime.t ->
  unit ->
  string * Roa.t
(** Issue and publish a ROA; returns its filename. *)

val issue_simple_roa :
  t ->
  asid:int ->
  prefix:Rpki_ip.V4.Prefix.t ->
  ?max_len:int ->
  now:Rtime.t ->
  unit ->
  string * Roa.t

(** {2 Legitimate maintenance} *)

val refresh : t -> now:Rtime.t -> unit
(** Re-sign the CRL and manifest with fresh windows. *)

val renew_roa : t -> filename:string -> now:Rtime.t -> Roa.t
(** Re-sign an expiring ROA in place. *)

val maintain : t -> now:Rtime.t -> unit
(** Full upkeep of the whole subtree rooted here: re-sign every ROA and
    refresh every CRL/manifest window — a healthy operator's cron job.  The
    stall experiments run it every tick, so only a relying party that cannot
    {e fetch} sees objects age toward expiry. *)

val roll_key : t -> now:Rtime.t -> unit
(** RFC 6489 key rollover: new keypair, new RC from the parent (old serial
    revoked), every issued object re-signed.  Filenames persist. *)

(** {2 The fault corpus's authority-side misbehaviors}

    The real RPKI's background noise (the SNIPPETS.md RP error corpus):
    authorities that keep their publication point self-consistent while
    violating one currency or containment rule.  Fed by the weighted
    sampler in {!Fault_corpus} / {!Fault_mix}. *)

val expire_crl : t -> now:Rtime.t -> unit
(** Publish a CRL whose nextUpdate is already past (47x "CRL has expired").
    The manifest is regenerated over it, so the lapsed window is the only
    fault.  {!refresh} repairs. *)

val expire_roa : t -> filename:string -> now:Rtime.t -> unit
(** Re-sign a ROA with an already-closed validity window (13x "certificate
    has expired").  {!renew_roa} repairs. *)

val postdate_roa : t -> filename:string -> delay:int -> now:Rtime.t -> unit
(** Re-sign a ROA forward-dated by [delay] ticks (7x "not yet valid").
    {!renew_roa} repairs. *)

val skip_manifest_numbers : t -> gap:int -> now:Rtime.t -> unit
(** Jump the manifest number forward by [gap] (18x "seqnum gap detected"). *)

val regress_manifest_number : t -> by:int -> now:Rtime.t -> unit
(** Publish with a manifest number [by] lower than the last one served (2x
    "manifest numbers lower than expected"). *)

val overclaim_roa : t -> asid:int -> prefix:Rpki_ip.V4.Prefix.t -> now:Rtime.t -> string
(** Issue a ROA for space outside this authority's own certificate (7x
    "RFC 3779 resource not subset of parent's resources").  Returns the
    filename; {!revoke_roa} repairs. *)

val withhold_manifest : t -> unit
(** Stop serving a manifest (20x "no valid manifest available") without
    touching anything else.  {!refresh} repairs. *)

(** {2 The paper's manipulations (Section 3)} *)

val revoke_child : t -> t -> now:Rtime.t -> unit
(** Overt revocation of a child RC via the CRL (Side Effect 1). *)

val revoke_roa : t -> filename:string -> now:Rtime.t -> unit
(** Overt revocation of a ROA's EE certificate. *)

val stealth_delete_roa : t -> filename:string -> now:Rtime.t -> unit
(** Side Effect 2: delete the object, leave the CRL untouched.  The manifest
    is regenerated — the authority controls it, so nothing looks locally
    inconsistent. *)

val stealth_delete_child_cert : t -> t -> now:Rtime.t -> unit

val shrink_child_cert : t -> t -> resources:Resources.t -> now:Rtime.t -> Cert.t
(** Overwrite a child's RC with one for a different resource set — the
    primitive behind targeted whacking (Side Effect 3).  Stealthy: no CRL
    entry. *)

val certify_key :
  t ->
  subject:string ->
  public_key:Rsa.public ->
  resources:Resources.t ->
  repo_uri:string ->
  manifest_uri:string ->
  now:Rtime.t ->
  string * Cert.t
(** Certify another authority's existing key directly — the "reissue the
    damaged descendant objects as its own" step of make-before-break
    (Figure 3). *)

(** {2 Traversal} *)

val iter_descendants : t -> f:(t -> unit) -> unit
val descendants : t -> t list
val find_descendant : t -> name:string -> t option

val all_roas : t -> (t * string * Roa.t) list
(** Every ROA currently published by [t] or any descendant. *)

val pp : Format.formatter -> t -> unit
