(** The fault-mix engine: corpus-weighted background faults for a run.

    Wraps {!Fault_corpus}'s weighted sampler in a per-tick injection loop:
    each target authority independently draws against the fault rate, and a
    firing draw injects the sampled category as a real misbehavior —
    authority-side ({!Authority.expire_crl}, {!Authority.withhold_manifest},
    seqnum gaps, expired / forward-dated ROAs, RFC 3779 overclaims,
    manifest-number regressions) or transport-side (DNS failure, refused /
    timed-out connects, cross-origin redirects on every given transport).
    Faults age out after [repair_after] ticks and the engine runs the
    matching repair, so the mix churns instead of decaying monotonically.

    All randomness flows through one seeded generator consumed in a fixed
    order; at [rate = 0.] the generator is never consulted and nothing is
    touched, so a rate-zero run is byte-identical to one without the engine
    (pinned by the QCheck suite). *)

open Rpki_core

type active = {
  af_category : Fault_corpus.category;
  af_authority : string;
  af_at : Rtime.t;                (** when it was injected *)
  af_repair : now:Rtime.t -> unit;
  af_description : string;
}

type injection = {
  inj_category : Fault_corpus.category;
  inj_authority : string;
  inj_at : Rtime.t;
  inj_description : string;
}

type t

val create : seed:int -> rate:float -> ?repair_after:int -> unit -> t
(** [rate] is each target's per-tick fault probability, in [\[0,1\]];
    [repair_after] (default 4) is how many ticks an injected fault lives
    before the engine repairs it. *)

val tick :
  t -> targets:Authority.t list -> transports:Transport.t list -> now:Rtime.t ->
  injection list
(** One engine step: repair aged-out faults, then roll every target.
    Transport-category faults are set on every transport in [transports]
    (a dead server is dead for all clients).  Returns this tick's fresh
    injections. *)

val rate : t -> float
val active : t -> active list
(** Currently live (unrepaired) faults. *)

val injected : t -> int
(** Total injections since creation. *)

val repaired : t -> int

val counts : t -> (Fault_corpus.category * int) list
(** Injection counts per category, in corpus-table order; categories never
    fired are omitted. *)
