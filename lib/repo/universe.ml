(* The set of all publication points, addressable by URI.

   This stands in for "repositories distributed throughout the Internet":
   the relying party resolves an rsync URI here, subject to a caller-supplied
   reachability oracle (the simulation layer wires that oracle to the BGP
   data plane, closing the paper's Figure 1 loop). *)

type rrdp_endpoint = {
  ep_point : Pub_point.t; (* addressing only: uri / addr / host AS *)
  ep_server : Rrdp.server;
}

type t = {
  mutable points : (string * Pub_point.t) list;
  mutable mirrors : (string * Pub_point.t) list; (* primary uri -> mirror point *)
  mutable rrdp : (string * rrdp_endpoint) list;  (* primary uri -> RRDP service *)
}

let create () = { points = []; mirrors = []; rrdp = [] }

let add t (p : Pub_point.t) =
  let uri = Pub_point.uri p in
  if List.mem_assoc uri t.points then
    invalid_arg (Printf.sprintf "Universe.add: duplicate uri %s" uri);
  t.points <- (uri, p) :: t.points

let find t uri = List.assoc_opt uri t.points
let points t = List.map snd t.points

(* Register a mirror of [of_uri] (draft-ietf-sidr-multiple-publication-points:
   the same objects served from a second location, ideally hosted outside
   the address space the objects themselves validate).  The mirror must be
   refreshed explicitly — mirrors lag reality, like real ones. *)
let add_mirror t ~of_uri (mirror : Pub_point.t) =
  if not (List.mem_assoc of_uri t.points) then
    invalid_arg (Printf.sprintf "Universe.add_mirror: no primary at %s" of_uri);
  t.mirrors <- (of_uri, mirror) :: t.mirrors

let mirrors_of t uri = List.filter_map (fun (u, m) -> if u = uri then Some m else None) t.mirrors

(* Copy the primary's current files onto each of its mirrors. *)
let refresh_mirrors t =
  List.iter
    (fun (uri, (mirror : Pub_point.t)) ->
      match find t uri with
      | None -> ()
      | Some primary -> Pub_point.replace_files mirror (Pub_point.snapshot primary))
    t.mirrors

(* Register an RRDP service for [of_uri] (RFC 8182): the same objects,
   delivered as serial-numbered deltas from a notification endpoint.  The
   endpoint point carries only addressing (its own URI, host address and
   AS) — which is what lets a transport price and fault it independently
   of the rsync primary. *)
let add_rrdp t ~of_uri (endpoint : Pub_point.t) =
  match find t of_uri with
  | None -> invalid_arg (Printf.sprintf "Universe.add_rrdp: no primary at %s" of_uri)
  | Some primary ->
    if List.mem_assoc of_uri t.rrdp then
      invalid_arg (Printf.sprintf "Universe.add_rrdp: duplicate RRDP service for %s" of_uri);
    let server = Rrdp.create primary in
    ignore (Rrdp.publish_now server);
    t.rrdp <- (of_uri, { ep_point = endpoint; ep_server = server }) :: t.rrdp

let rrdp_of t uri =
  Option.map (fun ep -> (ep.ep_point, ep.ep_server)) (List.assoc_opt uri t.rrdp)

(* Version each RRDP server against its primary's current content (the
   repository-side publication pipeline running; RRDP lags until then,
   like mirrors do). *)
let refresh_rrdp t =
  List.iter (fun (_, ep) -> ignore (Rrdp.publish_now ep.ep_server)) t.rrdp

let find_exn t uri =
  match find t uri with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Universe.find_exn: no publication point at %s" uri)
