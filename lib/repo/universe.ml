(* The set of all publication points, addressable by URI.

   This stands in for "repositories distributed throughout the Internet":
   the relying party resolves an rsync URI here, subject to a caller-supplied
   reachability oracle (the simulation layer wires that oracle to the BGP
   data plane, closing the paper's Figure 1 loop). *)

type t = {
  mutable points : (string * Pub_point.t) list;
  mutable mirrors : (string * Pub_point.t) list; (* primary uri -> mirror point *)
}

let create () = { points = []; mirrors = [] }

let add t (p : Pub_point.t) =
  let uri = Pub_point.uri p in
  if List.mem_assoc uri t.points then
    invalid_arg (Printf.sprintf "Universe.add: duplicate uri %s" uri);
  t.points <- (uri, p) :: t.points

let find t uri = List.assoc_opt uri t.points
let points t = List.map snd t.points

(* Register a mirror of [of_uri] (draft-ietf-sidr-multiple-publication-points:
   the same objects served from a second location, ideally hosted outside
   the address space the objects themselves validate).  The mirror must be
   refreshed explicitly — mirrors lag reality, like real ones. *)
let add_mirror t ~of_uri (mirror : Pub_point.t) =
  if not (List.mem_assoc of_uri t.points) then
    invalid_arg (Printf.sprintf "Universe.add_mirror: no primary at %s" of_uri);
  t.mirrors <- (of_uri, mirror) :: t.mirrors

let mirrors_of t uri = List.filter_map (fun (u, m) -> if u = uri then Some m else None) t.mirrors

(* Copy the primary's current files onto each of its mirrors. *)
let refresh_mirrors t =
  List.iter
    (fun (uri, (mirror : Pub_point.t)) ->
      match find t uri with
      | None -> ()
      | Some primary -> Pub_point.replace_files mirror (Pub_point.snapshot primary))
    t.mirrors

let find_exn t uri =
  match find t uri with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Universe.find_exn: no publication point at %s" uri)
