(* The empirical RP fault corpus, as a checked-in weight table.

   SNIPPETS.md carries a field survey of what real relying parties actually
   hit: expired CRLs by the dozen, missing manifests, manifest seqnum gaps,
   expired and forward-dated certificates, RFC 3779 violations, the odd
   manifest-number regression — plus the transport outcomes (DNS failures,
   refused and timed-out connects, a cross-origin redirect).  This module
   encodes those observation counts verbatim and samples categories in
   proportion, so fault-mix runs exercise the error distribution the real
   RPKI exhibits rather than a uniform or adversary-shaped one. *)

type category =
  | Expired_crl            (* "CRL has expired" *)
  | Missing_manifest       (* "no valid manifest available" *)
  | Seqnum_gap             (* "seqnum gap detected" *)
  | Expired_cert           (* "certificate has expired" *)
  | Not_yet_valid_cert     (* "not yet valid" *)
  | Rfc3779_violation      (* "RFC 3779 resource not subset of parent's" *)
  | Manifest_regression    (* "manifest numbers lower than expected" *)
  | Dns_failure            (* "no address associated with name" *)
  | Connect_refused        (* "connect refused" *)
  | Connect_timeout        (* "connect timeout" *)
  | Cross_origin_redirect  (* "cross origin redirect to ..." *)

(* Observation counts from the corpus, one row per category.  The
   authority-side counts are the "47+ instances" figures; the transport
   rows count the concrete hosts listed under each heading. *)
let weights =
  [
    (Expired_crl, 47);
    (Missing_manifest, 20);
    (Seqnum_gap, 18);
    (Expired_cert, 13);
    (Not_yet_valid_cert, 7);
    (Rfc3779_violation, 7);
    (Manifest_regression, 2);
    (Dns_failure, 3);
    (Connect_refused, 4);
    (Connect_timeout, 4);
    (Cross_origin_redirect, 1);
  ]

let total_weight = List.fold_left (fun acc (_, w) -> acc + w) 0 weights

let to_string = function
  | Expired_crl -> "expired-crl"
  | Missing_manifest -> "missing-manifest"
  | Seqnum_gap -> "seqnum-gap"
  | Expired_cert -> "expired-cert"
  | Not_yet_valid_cert -> "not-yet-valid"
  | Rfc3779_violation -> "rfc3779-violation"
  | Manifest_regression -> "manifest-regression"
  | Dns_failure -> "dns-failure"
  | Connect_refused -> "connect-refused"
  | Connect_timeout -> "connect-timeout"
  | Cross_origin_redirect -> "cross-origin-redirect"

let is_transport = function
  | Dns_failure | Connect_refused | Connect_timeout | Cross_origin_redirect -> true
  | Expired_crl | Missing_manifest | Seqnum_gap | Expired_cert | Not_yet_valid_cert
  | Rfc3779_violation | Manifest_regression -> false

let expected_frequency c =
  match List.assoc_opt c weights with
  | Some w -> float_of_int w /. float_of_int total_weight
  | None -> 0.

(* Weighted draw by cumulative walk over the table, in table order — one
   [Rng.int] consumption per call, so streams are easy to reason about. *)
let sample rng =
  let r = Rpki_util.Rng.int rng total_weight in
  let rec walk acc = function
    | [] -> assert false
    | (c, w) :: rest -> if r < acc + w then c else walk (acc + w) rest
  in
  walk 0 weights
