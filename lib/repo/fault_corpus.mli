(** The empirical RP fault corpus (SNIPPETS.md) as a checked-in weight
    table with a seeded weighted sampler.

    Real relying parties face a background of expired CRLs, missing
    manifests, seqnum gaps, expired / forward-dated certificates, RFC 3779
    violations and dead transports — not just named adversaries.  The table
    encodes the survey's observation counts; {!sample} draws categories in
    proportion, so a fault-mix run reproduces the error distribution the
    real RPKI exhibits.  {!Fault_mix} turns sampled categories into actual
    authority- and transport-side faults. *)

type category =
  | Expired_crl            (** 47x "CRL has expired" *)
  | Missing_manifest       (** 20x "no valid manifest available" *)
  | Seqnum_gap             (** 18x "seqnum gap detected" *)
  | Expired_cert           (** 13x "certificate has expired" *)
  | Not_yet_valid_cert     (** 7x "not yet valid" *)
  | Rfc3779_violation      (** 7x "RFC 3779 resource not subset of parent's" *)
  | Manifest_regression    (** 2x "manifest numbers lower than expected" *)
  | Dns_failure            (** "no address associated with name" *)
  | Connect_refused        (** "connect refused" / no route to host *)
  | Connect_timeout        (** "connect timeout" *)
  | Cross_origin_redirect  (** "cross origin redirect to ..." *)

val weights : (category * int) list
(** The corpus table: one row per category, observation counts verbatim. *)

val total_weight : int

val to_string : category -> string

val is_transport : category -> bool
(** Whether the category manifests as a transport fault (set on the fetch
    path) rather than misbehavior in the authority's published objects. *)

val expected_frequency : category -> float
(** The category's weight as a fraction of {!total_weight} — what a large
    sample's empirical frequency converges to. *)

val sample : Rpki_util.Rng.t -> category
(** One weighted draw.  Consumes exactly one [Rng.int] call, so callers can
    reason about stream alignment; a fixed seed gives a fixed sequence. *)
