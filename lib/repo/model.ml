(* The paper's model RPKI (Figure 2), reconstructed from the text.

   The figure itself is an image; every object below is pinned by a claim in
   the prose:

   - ARIN certifies Sprint for 63.160.0.0/12 (Section 2, Table 4);
   - Sprint issues exactly two RCs (ETB S.A. ESP., Continental Broadband)
     and two ROAs, the two ROAs carrying maxLength 24 (Section 2);
   - Continental Broadband issues five ROAs, among them the two whacking
     targets (63.174.16.0/20, AS 17054) and (63.174.16.0/22, AS 7341):
     revoking CB's RC whacks the target "plus four additional ROAs"
     (Section 3.1);
   - Sprint can whack (63.174.16.0/20, AS 17054) cleanly by reissuing CB's
     RC as [63.174.16.0-63.174.23.255] u [63.174.25.0-63.174.31.255], i.e.
     by carving out 63.174.24.0/24 (Section 3.1) — so no other CB object
     may overlap that /24;
   - routes for 63.160.0.0/12 are "unknown" while routes for 63.174.17.0/24
     are "invalid" (Section 4 / Figure 5 left) — so no ROA covers the /12
     top but the /20 ROA exists;
   - if the ROA (63.174.16.0/22, AS 7341) goes missing, its route turns
     invalid because of the covering /20 ROA (Side Effect 6);
   - Continental Broadband (AS 17054) hosts its own repository at
     63.174.23.0 (Section 6). *)

open Rpki_core
open Rpki_ip

type t = {
  universe : Universe.t;
  arin : Authority.t;
  sprint : Authority.t;
  etb : Authority.t;
  continental : Authority.t;
  (* ROA publication filenames, keyed for the experiments *)
  roa_sprint_1 : string; (* (63.161.0.0/16-24, AS 1239) *)
  roa_sprint_2 : string; (* (63.168.0.0/16-24, AS 1239) *)
  roa_etb : string;      (* (63.170.0.0/16, AS 19429) *)
  roa_target20 : string; (* (63.174.16.0/20, AS 17054) — whack target 1 *)
  roa_target22 : string; (* (63.174.16.0/22, AS 7341)  — whack target 2 *)
  roa_cb_25 : string;    (* (63.174.25.0/24, AS 17054) *)
  roa_cb_26 : string;    (* (63.174.26.0/24, AS 17054) *)
  roa_cb_28 : string;    (* (63.174.28.0/24, AS 17054) *)
}

let as_sprint = 1239
let as_etb = 19429
let as_continental = 17054
let as_customer7341 = 7341

(* Where each repository is hosted.  Continental Broadband's address is the
   paper's 63.174.23.0 — inside its own certified space, which is what makes
   Section 6 circular. *)
let arin_repo_addr = V4.addr_of_string_exn "199.5.26.10"
let sprint_repo_addr = V4.addr_of_string_exn "63.161.1.10"
let etb_repo_addr = V4.addr_of_string_exn "63.170.0.10"
let continental_repo_addr = V4.addr_of_string_exn "63.174.23.0"

let as_arin_host = 3856 (* ARIN's own network *)

let build ?(now = Rtime.epoch) ?(key_bits = Rpki_crypto.Rsa.default_bits)
    ?(validity = Authority.default_validity) ?(refresh_interval = Authority.default_refresh) () =
  let universe = Universe.create () in
  (* children inherit validity / refresh_interval from their parent *)
  let arin =
    Authority.create_trust_anchor ~name:"ARIN" ~resources:(Resources.of_v4_strings [ "63.0.0.0/8" ])
      ~uri:"rsync://rpki.arin.net/repo" ~addr:arin_repo_addr ~host_asn:as_arin_host ~now ~universe
      ~key_bits ~validity ~refresh_interval ()
  in
  let sprint =
    Authority.create_child arin ~name:"Sprint"
      ~resources:(Resources.of_v4_strings [ "63.160.0.0/12" ])
      ~uri:"rsync://rpki.sprint.net/repo" ~addr:sprint_repo_addr ~host_asn:as_sprint ~now
      ~universe ()
  in
  let etb =
    Authority.create_child sprint ~name:"ETB"
      ~resources:(Resources.of_v4_strings [ "63.170.0.0/16" ])
      ~uri:"rsync://rpki.etb.net.co/repo" ~addr:etb_repo_addr ~host_asn:as_etb ~now ~universe ()
  in
  let continental =
    Authority.create_child sprint ~name:"Continental"
      ~resources:(Resources.of_v4_strings [ "63.174.16.0/20" ])
      ~uri:"rsync://rpki.continental.net/repo" ~addr:continental_repo_addr
      ~host_asn:as_continental ~now ~universe ()
  in
  let roa_sprint_1, _ =
    Authority.issue_simple_roa sprint ~asid:as_sprint ~prefix:(V4.p "63.161.0.0/16") ~max_len:24
      ~now ()
  in
  let roa_sprint_2, _ =
    Authority.issue_simple_roa sprint ~asid:as_sprint ~prefix:(V4.p "63.168.0.0/16") ~max_len:24
      ~now ()
  in
  let roa_etb, _ =
    Authority.issue_simple_roa etb ~asid:as_etb ~prefix:(V4.p "63.170.0.0/16") ~now ()
  in
  let roa_target20, _ =
    Authority.issue_simple_roa continental ~asid:as_continental ~prefix:(V4.p "63.174.16.0/20")
      ~now ()
  in
  let roa_target22, _ =
    Authority.issue_simple_roa continental ~asid:as_customer7341 ~prefix:(V4.p "63.174.16.0/22")
      ~now ()
  in
  let roa_cb_25, _ =
    Authority.issue_simple_roa continental ~asid:as_continental ~prefix:(V4.p "63.174.25.0/24")
      ~now ()
  in
  let roa_cb_26, _ =
    Authority.issue_simple_roa continental ~asid:as_continental ~prefix:(V4.p "63.174.26.0/24")
      ~now ()
  in
  let roa_cb_28, _ =
    Authority.issue_simple_roa continental ~asid:as_continental ~prefix:(V4.p "63.174.28.0/24")
      ~now ()
  in
  { universe; arin; sprint; etb; continental; roa_sprint_1; roa_sprint_2; roa_etb; roa_target20;
    roa_target22; roa_cb_25; roa_cb_26; roa_cb_28 }

(* The new large-prefix ROA of Figure 5 (right) / Side Effect 5. *)
let add_fig5_right_roa t ~now =
  fst
    (Authority.issue_roa t.sprint ~asid:as_sprint
       ~v4_entries:[ Roa.entry ~max_len:13 (V4.p "63.160.0.0/12") ]
       ~now ())

(* A relying party configured with ARIN as its single trust anchor. *)
let relying_party ?(name = "rp0") ?(asn = 7018) ?use_stale ?grace ?log_epoch t =
  Relying_party.create ~name ~asn ~tals:[ Relying_party.tal_of_authority t.arin ] ?use_stale
    ?grace ?log_epoch ()

(* Print the hierarchy — the textual rendering of Figure 2. *)
let render t =
  let buf = Buffer.create 512 in
  let rec go (a : Authority.t) depth =
    Buffer.add_string buf
      (Printf.sprintf "%s%s  RC [%s]\n"
         (String.make (2 * depth) ' ')
         (Authority.name a)
         (Resources.to_string (Authority.cert a).Cert.resources));
    List.iter
      (fun (_, roa) ->
        Buffer.add_string buf
          (Printf.sprintf "%s- %s\n" (String.make ((2 * depth) + 2) ' ') (Roa.to_string roa)))
      (Authority.roas a);
    List.iter (fun c -> go c (depth + 1)) (Authority.children a)
  in
  go t.arin 0;
  Buffer.contents buf
