(** An RRDP-style delta protocol (RFC 8182, simplified): serial-numbered
    deltas over a notification file, with snapshot fallback.

    The paper predates RRDP, but its Section 6 point — RPKI delivery rides
    over the very TCP/IP routes the RPKI validates — is
    delivery-protocol-independent, and modelling both rsync-style and
    RRDP-style sync lets the experiments say so. *)

type publish_el = { filename : string; bytes : string }
type withdraw_el = { w_filename : string; w_hash : string }

type delta = {
  d_serial : int;
  publishes : publish_el list;
  withdraws : withdraw_el list;
}

type notification = { n_session : string; n_serial : int }

type server

val create : ?session_seed:string -> ?history_limit:int -> Pub_point.t -> server
(** Track one publication point; the session id is derived from the seed
    and the point's URI. *)

val publish_now : server -> delta option
(** Version the point's current content; [None] when nothing changed. *)

val notification : server -> notification
val snapshot : server -> int * (string * string) list

val deltas_since : server -> serial:int -> delta list option
(** Oldest-first deltas from [serial] to now; [None] when out of window. *)

type client
(** Opaque client state: (session, serial) plus the mirrored files. *)

val create_client :
  ?session:string -> ?serial:int -> ?files:(string * string) list -> unit -> client
(** A fresh client knows nothing; the optional arguments seed a client at a
    chosen (session, serial, files) state, e.g. to simulate desync. *)

val client_session : client -> string option
val client_serial : client -> int

exception Desync of string

val apply_delta : client -> delta -> unit
(** Raises {!Desync} on serial gaps, withdraws of absent files, or withdraw
    hash mismatches. *)

type sync_kind = Up_to_date | Applied_deltas of int | Full_snapshot

val sync : client -> server -> sync_kind
(** One RRDP round: notification, then deltas or snapshot. *)

val client_files : client -> (string * string) list
(** The client's state, sorted by filename. *)
