(** The shared validation plane: a content-addressed verification cache
    consulted by every relying-party vantage in a simulation tick.

    Two memo layers, both keyed purely by content: RSA signature verdicts
    under [(issuer key id, SHA-256 of signature + message)], and whole
    publication-point validation outcomes under [(issuing certificate
    digest, listing fingerprint)] guarded by the validity-window boundaries
    the original validation consulted.

    Split-view safety is structural: a forked manifest changes the victim's
    listing fingerprint, so victim and honest vantages key to different
    cache lines and the cache can never merge the two views.  Transport
    accounting, transparency observations and gossip evidence stay
    per-vantage — cache hits skip crypto, never transport. *)

open Rpki_core

type t
(** The shared cache.  One instance serves any number of relying parties;
    sharing is transparent (same results as independent validation). *)

val create : unit -> t

val clear : t -> unit
(** The operator's wipe: drop every memoized verdict and outcome and reset
    all statistics, eviction counters included.  Distinct from {!evict} —
    a wipe zeroes the counters, so it can never masquerade as eviction in a
    bench. *)

(** {2 Publication-point outcomes} *)

type outcome = {
  o_parent_fp : string;     (** digest of the issuing cert's encoding *)
  o_snap_fp : string;       (** fingerprint of the listing validated *)
  o_at : Rtime.t;           (** when it was validated *)
  o_boundaries : Rtime.t list;  (** every validity boundary consulted *)
  o_subject : string;
  o_vrps : Vrp.t list;      (** the point's direct VRP contribution *)
  o_issues : (string option * Validation.issue_kind * string) list;
      (** (filename, kind, reason) — deliberately URI-free: the outcome is a
          function of content only, and each relying party re-attaches its
          own URI when replaying *)
  o_failed_resources : Resources.t;
      (** resources claimed by child CA certificates that failed validation
          at this point — the unsafe-VRP analysis' per-point contribution,
          a pure function of content like everything else here *)
  o_children : Cert.t list; (** validated child CA certs, in file order *)
  o_mft_number : int;       (** manifest number as served; 0 if none *)
  o_mft_hash : string;      (** SHA-256 of the manifest bytes; "" if none *)
}
(** The full validation outcome of one publication point under one issuing
    certificate — what the relying party's per-vantage memo stores, minus
    anything vantage-specific. *)

val outcome_current : outcome -> now:Rtime.t -> bool
(** Whether the outcome is replayable at [now]: true when [now] sits on the
    same side of every boundary in [o_boundaries] as [o_at] did. *)

val find_point : t -> parent_fp:string -> snap_fp:string -> now:Rtime.t -> outcome option
(** A memoized outcome for this (issuing certificate, listing) pair, if one
    exists and is replayable at [now]. *)

val store_point : t -> outcome -> unit
(** Memoize an outcome under its own [(o_parent_fp, o_snap_fp)] key. *)

(** {2 RSA verdicts} *)

val verify : t -> key:Rpki_crypto.Rsa.public -> signature:string -> string -> bool
(** A memoizing {!Rpki_crypto.Rsa.verify}: the first call for a given
    (key, signature, message) executes the real verification, later calls
    replay the verdict.  Shaped to slot into {!Validation}'s [?verify]
    hook. *)

(** {2 The batch scheduler's tick boundary} *)

val universe_digest : Universe.t -> string
(** One digest over every publication point's URI and content fingerprint —
    the tick's walk plan, computed once by the loop and shared by all
    vantages rather than recomputed per vantage. *)

val begin_tick : t -> digest:string -> unit
(** Mark a tick boundary: record the universe digest for this tick and
    snapshot the statistics baseline {!tick_stats} diffs against.  Memoized
    content is kept — entries are content-addressed, so stale ones can only
    miss. *)

val digest : t -> string
(** The digest recorded by the last {!begin_tick} ([""] before the first). *)

(** {2 Epoch-based eviction} *)

val evict : t -> now:Rtime.t -> unit
(** Drop exactly the entries whose every consulted validity boundary lies
    strictly before [now]: publication-point outcomes all of whose windows
    have closed, and RSA verdicts whose inherited deadline (the latest
    boundary among the outcomes whose validation consulted them) has
    passed.  Pure memo, so eviction can never change results — only re-run
    crypto; entries for live content are untouched. *)

val end_tick : t -> now:Rtime.t -> unit
(** The tick-boundary hook the simulation loop calls after a tick's
    validations finish: currently {!evict}[ ~now]. *)

type residency = {
  rs_verdicts : int;          (** memoized verdicts currently resident *)
  rs_outcomes : int;          (** point outcomes currently resident *)
  rs_verdicts_evicted : int;  (** cumulative verdicts dropped by {!evict} *)
  rs_outcomes_evicted : int;  (** cumulative outcomes dropped by {!evict} *)
}

val residency : t -> residency
(** Current table sizes and cumulative eviction counts — the flat-memory
    evidence the soak bench records. *)

(** {2 Statistics} *)

type stats = {
  sig_checked : int;   (** RSA verifications executed through the cache *)
  sig_saved : int;     (** verifications answered from a memoized verdict *)
  point_hits : int;    (** publication-point outcomes replayed *)
  point_misses : int;  (** outcomes validated from scratch *)
}

val stats : t -> stats
(** Cumulative since creation (or the last {!clear}). *)

val tick_stats : t -> stats
(** Since the last {!begin_tick}. *)
