(* An RRDP-style delta protocol (RFC 8182, simplified).

   The paper predates RRDP, but its Section 6 analysis is about *delivery*:
   rsync re-fetches whole directories, RRDP ships serial-numbered deltas
   from a notification file.  Modelling both lets the experiments ask
   whether the delivery protocol changes the circular-dependency story (it
   does not: RRDP still rides over TCP/IP whose routes the RPKI itself
   validates).

   A server tracks one publication point and versions its content; clients
   hold (session, serial) and apply deltas, falling back to a full snapshot
   on session change or when their serial has left the retained window. *)

type publish_el = { filename : string; bytes : string }
type withdraw_el = { w_filename : string; w_hash : string (* SHA-256 of the removed bytes *) }

type delta = {
  d_serial : int;
  publishes : publish_el list;  (* additions and overwrites *)
  withdraws : withdraw_el list;
}

type notification = {
  n_session : string;
  n_serial : int;
}

type server = {
  session : string;              (* random, changes on server reset *)
  point : Pub_point.t;           (* the source of truth *)
  mutable serial : int;
  mutable published : (string * string) list; (* state as of [serial] *)
  mutable deltas : delta list;   (* newest first *)
  history_limit : int;
}

let create ?(session_seed = "rrdp-session") ?(history_limit = 32) (point : Pub_point.t) =
  { session = Rpki_util.Hex.abbrev ~len:16 (Rpki_crypto.Sha256.digest (session_seed ^ Pub_point.uri point));
    point; serial = 0; published = []; deltas = []; history_limit }

(* Version the point's current content: compute the delta since the last
   [publish_now], if anything changed. *)
let publish_now server =
  let current = Pub_point.snapshot server.point in
  if current = server.published then None
  else begin
    let publishes =
      List.filter_map
        (fun (filename, bytes) ->
          match List.assoc_opt filename server.published with
          | Some old when String.equal old bytes -> None
          | _ -> Some { filename; bytes })
        current
    in
    let withdraws =
      List.filter_map
        (fun (filename, bytes) ->
          if List.mem_assoc filename current then None
          else Some { w_filename = filename; w_hash = Rpki_crypto.Sha256.digest bytes })
        server.published
    in
    server.serial <- server.serial + 1;
    let delta = { d_serial = server.serial; publishes; withdraws } in
    server.deltas <- delta :: server.deltas;
    if List.length server.deltas > server.history_limit then
      server.deltas <- List.filteri (fun i _ -> i < server.history_limit) server.deltas;
    server.published <- current;
    Some delta
  end

let notification server = { n_session = server.session; n_serial = server.serial }

let snapshot server = (server.serial, server.published)

(* The deltas needed to go from [serial] to the current state, oldest first;
   [None] when the window no longer reaches back that far. *)
let deltas_since server ~serial =
  if serial = server.serial then Some []
  else begin
    let needed = List.filter (fun d -> d.d_serial > serial) server.deltas in
    (* complete iff the oldest needed delta is serial+1 *)
    let sorted = List.sort (fun a b -> Int.compare a.d_serial b.d_serial) needed in
    match sorted with
    | first :: _ when first.d_serial = serial + 1 -> Some sorted
    | [] -> None
    | _ -> None
  end

(* --- client --- *)

type client = {
  mutable c_session : string option;
  mutable c_serial : int;
  mutable c_files : (string * string) list;
}

let create_client ?session ?(serial = 0) ?(files = []) () =
  { c_session = session; c_serial = serial; c_files = files }

let client_session client = client.c_session
let client_serial client = client.c_serial

exception Desync of string
(** A withdraw whose hash does not match is a protocol violation. *)

let apply_delta client (d : delta) =
  if d.d_serial <> client.c_serial + 1 then
    raise (Desync (Printf.sprintf "delta %d does not follow %d" d.d_serial client.c_serial));
  List.iter
    (fun w ->
      match List.assoc_opt w.w_filename client.c_files with
      | None -> raise (Desync (Printf.sprintf "withdraw of absent %s" w.w_filename))
      | Some bytes ->
        if not (Rpki_crypto.Hmac.equal_digest (Rpki_crypto.Sha256.digest bytes) w.w_hash) then
          raise (Desync (Printf.sprintf "withdraw hash mismatch on %s" w.w_filename));
        client.c_files <- List.remove_assoc w.w_filename client.c_files)
    d.withdraws;
  List.iter
    (fun p ->
      client.c_files <- (p.filename, p.bytes) :: List.remove_assoc p.filename client.c_files)
    d.publishes;
  client.c_serial <- d.d_serial

type sync_kind = Up_to_date | Applied_deltas of int | Full_snapshot

(* One RRDP round: read the notification, then either apply deltas or pull
   the snapshot. *)
let sync client server =
  let n = notification server in
  let take_snapshot () =
    let serial, files = snapshot server in
    client.c_session <- Some n.n_session;
    client.c_serial <- serial;
    client.c_files <- files;
    Full_snapshot
  in
  match client.c_session with
  | Some s when s = n.n_session -> (
    if client.c_serial = n.n_serial then Up_to_date
    else
      match deltas_since server ~serial:client.c_serial with
      | Some ds ->
        List.iter (apply_delta client) ds;
        Applied_deltas (List.length ds)
      | None -> take_snapshot ())
  | _ -> take_snapshot ()

let client_files client = List.sort (fun (a, _) (b, _) -> String.compare a b) client.c_files
