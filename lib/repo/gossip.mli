(** Tree-head gossip between relying-party vantages: split-view (mirror
    world) detection.

    The paper's Section 7 asks for monitoring that {e deters} manipulation
    by making it detectable.  A single vantage cannot tell a targeted
    split view from legitimate change: the forked repository it is served
    is internally consistent and properly signed.  What it {e can} do is
    commit to everything it saw ({!Relying_party.transparency_log}) and
    compare commitments with peers.  This module is that comparison.

    Protocol (pull-based; one round = every (receiver, peer) edge the
    {!Overlay} selects): each receiver fetches from each of its peers —
    over the receiver's own {!Transport}, so gossip pays latency and can
    itself be stalled or partitioned — a message containing the peer's
    current signed tree head, a Merkle consistency proof from the head the
    receiver last saw, and the observation records appended since, each
    with an inclusion proof.  The receiver verifies signature, consistency
    and inclusions, then cross-checks every received observation against
    its own log under the (publication point, manifest number) key.

    Outcomes, as typed {!alarm}s:
    - {!alarm.Fork}: the same (point, manifest number) maps to different
      content hashes in the two logs — a split view.  Carries both sides'
      observations, inclusion proofs and signed heads; {!verify_fork}
      re-checks the evidence from scratch, so the alarm is portable.
    - {!alarm.Inconsistent_heads}: a peer's new head does not extend the
      head it previously gossiped — the peer (or whoever serves its log)
      rewrote history.
    - {!alarm.Bad_head_signature} / {!alarm.Bad_inclusion}: a message that
      fails cryptographic verification; its records are not trusted.

    Honest vantages over faulty-but-consistent transports (slow, stalling,
    partitioned) never produce {!alarm.Fork} or
    {!alarm.Inconsistent_heads}: delays postpone exchanges and stale
    caches dedup to nothing, but no honest sequence of observations can
    fork a log.

    {1 Scaling}

    A full pairwise mesh is O(n²) pulls per round — the per-tick hot path
    at high vantage counts.  {!Overlay} replaces it with partial meshes
    (O(n·k) pulls), and a round-level cache makes each pull cheaper: every
    served log signs its head once per round, every distinct (peer, head,
    signature) triple is verified once per round, and Merkle proofs are
    built once per (tree root, range) and shared across receivers —
    honest vantages hold identical logs, so proof generation collapses to
    one per distinct range instead of one per edge.  All of it is
    observational: the alarms raised are exactly those of uncached pulls.

    Detection under a partial mesh is a {e reachability} property: a
    receiver only cross-checks a peer's delta against its own log, so a
    fork against vantage v is caught in the first round where v exchanges
    with any honest vantage that saw the honest side.  All honest vantages
    log the same honest observations, so any honest neighbor of the victim
    raises the same (uri, serial) fork — which is why any connected
    overlay eventually raises the same forks as the full mesh, only later.

    {1 Byzantine vantages}

    {!set_server} lets an adversary take over what a vantage {e serves}:
    a per-receiver choice of relying party, i.e. equivocation inside
    gossip itself (different signed heads to different peers — see
    {!Rpki_attack.Equivocator}).  A Byzantine vantage also stops pulling:
    a traitor would not report what it finds, so its selected edges are
    skipped (counted in {!round_report.r_skipped}).  Detection then needs
    the victim to be overlay-adjacent to at least one {e honest} vantage —
    the BGP-Sentry-style honest-majority threshold quantified in
    [bench gossip]. *)

open Rpki_core
open Rpki_crypto
module Log = Rpki_transparency.Log
module Merkle = Rpki_transparency.Merkle

(** Who pulls from whom each round.  Every generator is deterministic in
    [(spec, seed, names, round)] — re-running a round re-selects the same
    edges. *)
module Overlay : sig
  type spec =
    | Full_mesh
        (** every ordered pair, the legacy O(n²) mesh *)
    | K_regular of int
        (** [K_regular k]: a seeded circulant graph — the vantages on a
            shuffled Hamiltonian cycle plus chords at ring offsets
            [2..⌈k/2⌉] — so every vantage has ≈k undirected neighbors and
            the cycle keeps it connected by construction.  Pulls run both
            directions of every edge: O(n·k) per round. *)
    | Star of int
        (** [Star h]: the {e last} [h] vantages in registration order are
            hubs (monitors register after the primary, so hubs are
            monitors).  Spokes pull from hubs only; hubs pull from
            everyone.  Connected for any [h ≥ 1], but detection dies with
            the hubs — the Byzantine sweep shows the cliff. *)
    | Random_peers of int
        (** [Random_peers k]: each receiver pulls from a fresh seeded
            sample of [k] peers every round (the round number is mixed
            into the seed).  Any single round may be disconnected; the
            union over rounds covers the mesh quickly. *)

  val default_seed : int

  val to_string : spec -> string
  (** ["full"], ["k:4"], ["star:2"], ["random:3"] — inverse of
      {!of_string}. *)

  val of_string : string -> spec option
  (** Accepts ["full"]/["full-mesh"]/["mesh"], ["k:N"]/["k-regular:N"],
      ["star"]/["star:N"], ["random:N"]/["random-peers:N"]. *)

  val pulls :
    spec -> seed:int -> round:int -> string list -> (string * string) list
  (** The ordered (receiver, peer) pulls of one round over the given
      vantage names.  Deterministic; [round] only matters for
      [Random_peers].  Raises [Invalid_argument] on a degree < 1. *)

  val connected : (string * string) list -> names:string list -> bool
  (** Whether the pulls, read as undirected edges, connect all [names]. *)
end

type vantage = {
  v_name : string;
  mutable v_rp : Relying_party.t;
                             (** mutable: a restarted vantage re-enters the
                                 mesh as a new RP instance under its name *)
  v_endpoint : Pub_point.t;  (** where this vantage's log server answers —
                                 addressing only; gossip to it is priced and
                                 faulted like any repository fetch *)
  v_transport : Transport.t; (** the network as this vantage experiences it;
                                 its pulls travel through this *)
}

(** One side of a fork: an observation bound to its vantage's signed head. *)
type attested = {
  att_vantage : string;
  att_obs : Log.observation;
  att_index : int;           (** leaf index in that vantage's log *)
  att_head : Log.signed_head;
  att_proof : Merkle.proof;  (** inclusion of the leaf under the head *)
}

type alarm =
  | Fork of {
      fork_uri : string;
      fork_serial : int;
      left : attested;   (** the receiver's own record *)
      right : attested;  (** the peer's conflicting record *)
    }
  | Inconsistent_heads of {
      ih_peer : string;
      ih_seen_by : string;
      ih_old : Log.head;  (** what the peer gossiped before *)
      ih_new : Log.head;  (** what it claims now *)
    }
  | Bad_head_signature of { bs_peer : string; bs_seen_by : string }
  | Bad_inclusion of { bi_peer : string; bi_seen_by : string; bi_index : int }
  | Rollback of {
      rb_uri : string;
      rb_earlier : attested;
          (** recorded earlier in the peer's log, higher manifest number *)
      rb_later : attested;
          (** appended later, lower manifest number — a served rollback.
              Both sides attest under the {e same} signed head of the same
              log, so the evidence is one log contradicting itself. *)
    }
  | Log_reset of {
      lr_peer : string;
      lr_seen_by : string;
      lr_old : Log.head;  (** the last head verified for the previous log *)
      lr_new : Log.head;  (** the head of the new incarnation (new log id) *)
    }
      (** The peer's log id changed: it restarted without its baseline.
          Informational — every verified state for the old log is dropped,
          because judging the new log against the old one's heads would
          misread any fresh restart as history rewriting.  This is exactly
          the window a rollback adversary exploits. *)

val is_fork : alarm -> bool
val is_rollback : alarm -> bool
val describe_alarm : alarm -> string

val verify_fork :
  key_of:(string -> Rsa.public option) -> alarm -> bool
(** Re-verify fork or rollback evidence from scratch.  For a [Fork]: both
    signed heads under their vantages' keys ([key_of] by vantage name), both
    inclusion proofs, key equality and content divergence.  For a
    [Rollback]: both inclusions under the {e same} signed head of one log,
    append order, and the manifest number going backwards.  [false] for
    other alarms or when any check fails — a [true] here is proof that
    needs no trust in whoever raised the alarm. *)

type exchange = {
  ex_from : string;                         (** the peer pulled from *)
  ex_to : string;                           (** the receiver *)
  ex_outcome : [ `Ok of int | `Stalled | `Unroutable ];
      (** [`Ok n]: n observation records transferred *)
  ex_elapsed : int;                         (** transport ticks spent *)
  ex_proof_bytes : int;                     (** Merkle proof payload moved *)
}

type round_report = {
  r_at : int;
  r_exchanges : exchange list;
  r_alarms : alarm list;     (** new alarms this round only *)
  r_proof_bytes : int;       (** total proof payload this round — wire
                                 bytes: proof sharing saves generation
                                 cost, not transfer volume *)
  r_elapsed : int;           (** total transport time this round *)
  r_pulls : int;             (** pulls executed (overlay edges that ran) *)
  r_skipped : int;           (** overlay edges dropped: a dead endpoint, or
                                 a Byzantine receiver that stays silent *)
  r_sths_signed : int;       (** tree heads signed — one per served log *)
  r_verifies : int;          (** head-signature verifications executed *)
  r_verifies_saved : int;    (** verifications answered by the round memo *)
  r_proofs_built : int;      (** Merkle proofs generated this round *)
  r_proofs_reused : int;     (** proofs served from the round cache *)
}

type t

val create :
  ?timeout:int -> ?overlay:Overlay.spec -> ?overlay_seed:int ->
  vantage list -> t
(** A gossip mesh over the given vantages.  [timeout] (default 32) caps
    each pull, like a fetch-policy point timeout.  [overlay] (default
    {!Overlay.spec.Full_mesh}) selects who pulls from whom each round;
    [overlay_seed] (default {!Overlay.default_seed}) fixes the shuffle. *)

val vantages : t -> vantage list

val overlay : t -> Overlay.spec

val set_server :
  t -> name:string -> ?refresh:(now:Rtime.t -> unit) ->
  (receiver:string -> Relying_party.t) -> unit
(** Make vantage [name] Byzantine: what it serves to [receiver] is whatever
    relying party the callback returns — its own for some receivers, a
    same-named shadow for others, i.e. gossip-level equivocation.  The
    optional [refresh] runs at the start of every round [name] is alive in
    (sync the shadow's view before serving it).  While overridden, [name]
    stops pulling — a traitor would not report what it finds.  Raises
    [Invalid_argument] for an unknown vantage. *)

val clear_server : t -> name:string -> unit
(** Return vantage [name] to honest serving (and pulling). *)

val server_names : t -> string list
(** The currently Byzantine vantages, in registration order. *)

val round : ?alive:(string -> bool) -> t -> now:Rtime.t -> round_report
(** Run one gossip round over the overlay's selected edges.  [alive]
    (default: everyone) filters participants — a killed vantage neither
    pulls nor answers.  Alarms deduplicate across rounds: a fork already
    reported for a (uri, serial, pair) key stays reported but is not
    re-raised. *)

val forget_receiver : t -> name:string -> unit
(** Drop every verified-peer-state entry where [name] is the receiver.  A
    vantage's gossip memory is process state: a restart loses it.  Gossip
    continues, but [name] re-verifies its peers from scratch. *)

val reseed_receiver : t -> name:string -> unit
(** Rehydrate [name]'s consistency baselines from the peer heads its
    relying party persisted ({!Relying_party.peer_heads}) — the
    persistence-on counterpart of {!forget_receiver}. *)

val alarms : t -> alarm list
(** Every alarm ever raised, oldest first. *)

val forks : t -> alarm list
(** Just the {!alarm.Fork}s. *)

val rollbacks : t -> alarm list
(** Just the {!alarm.Rollback}s. *)

val pp_report : Format.formatter -> round_report -> unit
