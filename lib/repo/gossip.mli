(** Tree-head gossip between relying-party vantages: split-view (mirror
    world) detection.

    The paper's Section 7 asks for monitoring that {e deters} manipulation
    by making it detectable.  A single vantage cannot tell a targeted
    split view from legitimate change: the forked repository it is served
    is internally consistent and properly signed.  What it {e can} do is
    commit to everything it saw ({!Relying_party.transparency_log}) and
    compare commitments with peers.  This module is that comparison.

    Protocol (pull-based, one round = every ordered vantage pair):
    each receiver fetches from each peer — over the receiver's own
    {!Transport}, so gossip pays latency and can itself be stalled or
    partitioned — a message containing the peer's current signed tree
    head, a Merkle consistency proof from the head the receiver last saw,
    and the observation records appended since, each with an inclusion
    proof.  The receiver verifies signature, consistency and inclusions,
    then cross-checks every received observation against its own log under
    the (publication point, manifest number) key.

    Outcomes, as typed {!alarm}s:
    - {!alarm.Fork}: the same (point, manifest number) maps to different
      content hashes in the two logs — a split view.  Carries both sides'
      observations, inclusion proofs and signed heads; {!verify_fork}
      re-checks the evidence from scratch, so the alarm is portable.
    - {!alarm.Inconsistent_heads}: a peer's new head does not extend the
      head it previously gossiped — the peer (or whoever serves its log)
      rewrote history.
    - {!alarm.Bad_head_signature} / {!alarm.Bad_inclusion}: a message that
      fails cryptographic verification; its records are not trusted.

    Honest vantages over faulty-but-consistent transports (slow, stalling,
    partitioned) never produce {!alarm.Fork} or
    {!alarm.Inconsistent_heads}: delays postpone exchanges and stale
    caches dedup to nothing, but no honest sequence of observations can
    fork a log. *)

open Rpki_core
open Rpki_crypto
module Log = Rpki_transparency.Log
module Merkle = Rpki_transparency.Merkle

type vantage = {
  v_name : string;
  mutable v_rp : Relying_party.t;
                             (** mutable: a restarted vantage re-enters the
                                 mesh as a new RP instance under its name *)
  v_endpoint : Pub_point.t;  (** where this vantage's log server answers —
                                 addressing only; gossip to it is priced and
                                 faulted like any repository fetch *)
  v_transport : Transport.t; (** the network as this vantage experiences it;
                                 its pulls travel through this *)
}

(** One side of a fork: an observation bound to its vantage's signed head. *)
type attested = {
  att_vantage : string;
  att_obs : Log.observation;
  att_index : int;           (** leaf index in that vantage's log *)
  att_head : Log.signed_head;
  att_proof : Merkle.proof;  (** inclusion of the leaf under the head *)
}

type alarm =
  | Fork of {
      fork_uri : string;
      fork_serial : int;
      left : attested;   (** the receiver's own record *)
      right : attested;  (** the peer's conflicting record *)
    }
  | Inconsistent_heads of {
      ih_peer : string;
      ih_seen_by : string;
      ih_old : Log.head;  (** what the peer gossiped before *)
      ih_new : Log.head;  (** what it claims now *)
    }
  | Bad_head_signature of { bs_peer : string; bs_seen_by : string }
  | Bad_inclusion of { bi_peer : string; bi_seen_by : string; bi_index : int }
  | Rollback of {
      rb_uri : string;
      rb_earlier : attested;
          (** recorded earlier in the peer's log, higher manifest number *)
      rb_later : attested;
          (** appended later, lower manifest number — a served rollback.
              Both sides attest under the {e same} signed head of the same
              log, so the evidence is one log contradicting itself. *)
    }
  | Log_reset of {
      lr_peer : string;
      lr_seen_by : string;
      lr_old : Log.head;  (** the last head verified for the previous log *)
      lr_new : Log.head;  (** the head of the new incarnation (new log id) *)
    }
      (** The peer's log id changed: it restarted without its baseline.
          Informational — every verified state for the old log is dropped,
          because judging the new log against the old one's heads would
          misread any fresh restart as history rewriting.  This is exactly
          the window a rollback adversary exploits. *)

val is_fork : alarm -> bool
val is_rollback : alarm -> bool
val describe_alarm : alarm -> string

val verify_fork :
  key_of:(string -> Rsa.public option) -> alarm -> bool
(** Re-verify fork or rollback evidence from scratch.  For a [Fork]: both
    signed heads under their vantages' keys ([key_of] by vantage name), both
    inclusion proofs, key equality and content divergence.  For a
    [Rollback]: both inclusions under the {e same} signed head of one log,
    append order, and the manifest number going backwards.  [false] for
    other alarms or when any check fails — a [true] here is proof that
    needs no trust in whoever raised the alarm. *)

type exchange = {
  ex_from : string;                         (** the peer pulled from *)
  ex_to : string;                           (** the receiver *)
  ex_outcome : [ `Ok of int | `Stalled | `Unroutable ];
      (** [`Ok n]: n observation records transferred *)
  ex_elapsed : int;                         (** transport ticks spent *)
  ex_proof_bytes : int;                     (** Merkle proof payload moved *)
}

type round_report = {
  r_at : int;
  r_exchanges : exchange list;
  r_alarms : alarm list;     (** new alarms this round only *)
  r_proof_bytes : int;       (** total proof payload this round *)
  r_elapsed : int;           (** total transport time this round *)
}

type t

val create : ?timeout:int -> vantage list -> t
(** A gossip mesh over the given vantages.  [timeout] (default 32) caps
    each pull, like a fetch-policy point timeout. *)

val vantages : t -> vantage list

val round : ?alive:(string -> bool) -> t -> now:Rtime.t -> round_report
(** Run one full round of pairwise exchanges.  [alive] (default: everyone)
    filters participants — a killed vantage neither pulls nor answers.
    Alarms deduplicate across rounds: a fork already reported for a
    (uri, serial, pair) key stays reported but is not re-raised. *)

val forget_receiver : t -> name:string -> unit
(** Drop every verified-peer-state entry where [name] is the receiver.  A
    vantage's gossip memory is process state: a restart loses it.  Gossip
    continues, but [name] re-verifies its peers from scratch. *)

val reseed_receiver : t -> name:string -> unit
(** Rehydrate [name]'s consistency baselines from the peer heads its
    relying party persisted ({!Relying_party.peer_heads}) — the
    persistence-on counterpart of {!forget_receiver}. *)

val alarms : t -> alarm list
(** Every alarm ever raised, oldest first. *)

val forks : t -> alarm list
(** Just the {!alarm.Fork}s. *)

val rollbacks : t -> alarm list
(** Just the {!alarm.Rollback}s. *)

val pp_report : Format.formatter -> round_report -> unit
