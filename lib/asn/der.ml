(* A DER subset: the TLV universe needed to give RPKI objects a canonical
   byte encoding (signatures must be over real bytes, and the repository
   layer stores and hashes those bytes).

   Supported universal types: BOOLEAN, INTEGER (non-negative), BIT STRING
   (whole bytes), OCTET STRING, NULL, OBJECT IDENTIFIER, UTF8String,
   SEQUENCE, SET, plus context-specific constructed tags.  Definite lengths
   only, minimal-length encodings only — i.e. actual DER, not BER. *)

open Rpki_bignum

type t =
  | Boolean of bool
  | Integer of Nat.t
  | Bit_string of string
  | Octet_string of string
  | Null
  | Oid of int list
  | Utf8 of string
  | Sequence of t list
  | Set of t list
  | Context of int * t list (* context-specific, constructed *)

exception Decode_error of string

let decode_error fmt = Printf.ksprintf (fun s -> raise (Decode_error s)) fmt

(* --- encoding --- *)

let encode_length buf n =
  if n < 0x80 then Buffer.add_char buf (Char.chr n)
  else begin
    let rec bytes_of n acc = if n = 0 then acc else bytes_of (n lsr 8) (Char.chr (n land 0xff) :: acc) in
    let bs = bytes_of n [] in
    Buffer.add_char buf (Char.chr (0x80 lor List.length bs));
    List.iter (Buffer.add_char buf) bs
  end

let encode_oid_arcs arcs =
  match arcs with
  | a :: b :: rest when a >= 0 && a <= 2 && b >= 0 && (a = 2 || b < 40) ->
    let buf = Buffer.create 8 in
    let add_base128 v =
      let rec digits v acc = if v = 0 && acc <> [] then acc else digits (v lsr 7) ((v land 0x7f) :: acc) in
      let ds = digits v [] in
      let n = List.length ds in
      List.iteri
        (fun i d -> Buffer.add_char buf (Char.chr (if i = n - 1 then d else d lor 0x80)))
        ds
    in
    add_base128 ((40 * a) + b);
    List.iter add_base128 rest;
    Buffer.contents buf
  | _ -> invalid_arg "Der.encode: malformed OID"

(* Minimal big-endian encoding of a non-negative integer, with a leading
   0x00 when the top bit is set (DER two's complement rule). *)
let encode_integer_body n =
  if Nat.is_zero n then "\x00"
  else begin
    let b = Nat.to_bytes_be n in
    if Char.code b.[0] >= 0x80 then "\x00" ^ b else b
  end

let rec encode_to buf t =
  let tlv tag body =
    Buffer.add_char buf (Char.chr tag);
    encode_length buf (String.length body);
    Buffer.add_string buf body
  in
  match t with
  | Boolean b -> tlv 0x01 (if b then "\xff" else "\x00")
  | Integer n -> tlv 0x02 (encode_integer_body n)
  | Bit_string s -> tlv 0x03 ("\x00" ^ s) (* zero unused bits *)
  | Octet_string s -> tlv 0x04 s
  | Null -> tlv 0x05 ""
  | Oid arcs -> tlv 0x06 (encode_oid_arcs arcs)
  | Utf8 s -> tlv 0x0c s
  | Sequence items -> tlv 0x30 (encode_items items)
  | Set items -> tlv 0x31 (encode_items items)
  | Context (n, items) ->
    if n < 0 || n > 30 then invalid_arg "Der.encode: context tag out of range";
    tlv (0xa0 lor n) (encode_items items)

and encode_items items =
  let buf = Buffer.create 64 in
  List.iter (encode_to buf) items;
  Buffer.contents buf

let encode t =
  let buf = Buffer.create 64 in
  encode_to buf t;
  Buffer.contents buf

(* --- decoding --- *)

type cursor = { data : string; mutable pos : int; limit : int }

let byte cur =
  if cur.pos >= cur.limit then decode_error "unexpected end of input at %d" cur.pos;
  let c = Char.code cur.data.[cur.pos] in
  cur.pos <- cur.pos + 1;
  c

let take cur n =
  if cur.pos + n > cur.limit then decode_error "truncated value at %d (want %d bytes)" cur.pos n;
  let s = String.sub cur.data cur.pos n in
  cur.pos <- cur.pos + n;
  s

let decode_length cur =
  let first = byte cur in
  if first < 0x80 then first
  else begin
    let n = first land 0x7f in
    if n = 0 then decode_error "indefinite length is not DER";
    if n > 4 then decode_error "length of length %d too large" n;
    let rec go i acc =
      if i = 0 then acc
      else begin
        let b = byte cur in
        (* a leading zero byte means fewer length bytes would have done *)
        if i = n && b = 0 then decode_error "non-minimal length encoding";
        go (i - 1) ((acc lsl 8) lor b)
      end
    in
    let len = go n 0 in
    if len < 0x80 && n = 1 then decode_error "non-minimal length encoding";
    len
  end

let decode_oid_arcs body =
  if body = "" then decode_error "empty OID";
  let cur = { data = body; pos = 0; limit = String.length body } in
  let read_arc () =
    let rec go acc =
      let b = byte cur in
      let acc = (acc lsl 7) lor (b land 0x7f) in
      if b land 0x80 = 0 then acc else go acc
    in
    go 0
  in
  let first = read_arc () in
  let a = min (first / 40) 2 in
  let b = first - (40 * a) in
  let rest = ref [] in
  while cur.pos < cur.limit do
    rest := read_arc () :: !rest
  done;
  a :: b :: List.rev !rest

let rec decode_value cur =
  let tag = byte cur in
  let len = decode_length cur in
  let body = take cur len in
  match tag with
  | 0x01 ->
    if len <> 1 then decode_error "BOOLEAN must be one byte";
    (match body.[0] with
    | '\x00' -> Boolean false
    | '\xff' -> Boolean true
    | _ -> decode_error "BOOLEAN must be 00 or FF in DER")
  | 0x02 ->
    if len = 0 then decode_error "empty INTEGER";
    if Char.code body.[0] >= 0x80 then decode_error "negative INTEGER unsupported";
    if len > 1 && body.[0] = '\x00' && Char.code body.[1] < 0x80 then
      decode_error "non-minimal INTEGER";
    Integer (Nat.of_bytes_be body)
  | 0x03 ->
    if len = 0 then decode_error "empty BIT STRING";
    if body.[0] <> '\x00' then decode_error "partial-byte BIT STRING unsupported";
    Bit_string (String.sub body 1 (len - 1))
  | 0x04 -> Octet_string body
  | 0x05 ->
    if len <> 0 then decode_error "NULL with content";
    Null
  | 0x06 -> Oid (decode_oid_arcs body)
  | 0x0c -> Utf8 body
  | 0x30 -> Sequence (decode_all body)
  | 0x31 -> Set (decode_all body)
  | t when t land 0xe0 = 0xa0 -> Context (t land 0x1f, decode_all body)
  | t -> decode_error "unsupported tag 0x%02x" t

and decode_all data =
  let cur = { data; pos = 0; limit = String.length data } in
  let rec go acc = if cur.pos >= cur.limit then List.rev acc else go (decode_value cur :: acc) in
  go []

let decode s =
  match decode_all s with
  | [ v ] -> Ok v
  | [] -> Error "empty input"
  | _ -> Error "trailing data after value"
  | exception Decode_error msg -> Error msg

let decode_exn s =
  match decode s with Ok v -> v | Error msg -> raise (Decode_error msg)

(* --- helpers for building/destructuring RPKI structures --- *)

let int_ i = Integer (Nat.of_int i)

let to_int_exn = function
  | Integer n -> Nat.to_int_exn n
  | _ -> decode_error "expected INTEGER"

let to_string_exn = function
  | Utf8 s | Octet_string s -> s
  | _ -> decode_error "expected string"

let to_list_exn = function
  | Sequence l | Set l | Context (_, l) -> l
  | _ -> decode_error "expected constructed value"

let rec pp fmt t =
  match t with
  | Boolean b -> Format.fprintf fmt "BOOLEAN %b" b
  | Integer n -> Format.fprintf fmt "INTEGER %a" Nat.pp n
  | Bit_string s -> Format.fprintf fmt "BIT STRING (%d bytes)" (String.length s)
  | Octet_string s -> Format.fprintf fmt "OCTET STRING %s" (Rpki_util.Hex.abbrev ~len:16 s)
  | Null -> Format.fprintf fmt "NULL"
  | Oid arcs -> Format.fprintf fmt "OID %s" (String.concat "." (List.map string_of_int arcs))
  | Utf8 s -> Format.fprintf fmt "UTF8 %S" s
  | Sequence l -> Format.fprintf fmt "SEQUENCE {@[<hov>%a@]}" pp_items l
  | Set l -> Format.fprintf fmt "SET {@[<hov>%a@]}" pp_items l
  | Context (n, l) -> Format.fprintf fmt "[%d] {@[<hov>%a@]}" n pp_items l

and pp_items fmt l =
  Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt ";@ ") pp fmt l
