(* RSA signatures in the PKCS#1 v1.5 style, built on [Rpki_bignum].

   Production RPKI mandates RSA-2048 with SHA-256 (RFC 6485/7935).  We keep
   the same signature pipeline (DigestInfo wrapping, type-01 padding, modular
   exponentiation) at a configurable modulus size, defaulting to 512 bits so
   that building thousand-certificate hierarchies in tests stays cheap.  The
   substitution is documented in DESIGN.md. *)

open Rpki_bignum

type public = { n : Nat.t; e : Nat.t }
type private_ = { pub : public; d : Nat.t; p : Nat.t; q : Nat.t }

type keypair = { public : public; private_ : private_ }

let default_bits = 512

let modulus_bytes pub = (Nat.num_bits pub.n + 7) / 8

(* Deterministic keygen from a DRBG-seeded RNG. *)
let min_bits = 496 (* smallest modulus that fits PKCS#1 v1.5 + DigestInfo *)

let generate ?(bits = default_bits) rng =
  if bits < min_bits then
    invalid_arg (Printf.sprintf "Rsa.generate: %d-bit modulus cannot carry SHA-256 PKCS#1 padding (min %d)" bits min_bits);
  let e = Nat.of_int 65537 in
  let half = bits / 2 in
  let rec go () =
    let p = Prime.generate rng ~bits:half in
    let q = Prime.generate rng ~bits:(bits - half) in
    if Nat.equal p q then go ()
    else begin
      let n = Nat.mul p q in
      let phi = Nat.mul (Nat.pred p) (Nat.pred q) in
      match Zint.mod_inverse e ~modulus:phi with
      | None -> go ()
      | Some d ->
        if Nat.num_bits n <> bits then go ()
        else begin
          let pub = { n; e } in
          { public = pub; private_ = { pub; d; p; q } }
        end
    end
  in
  go ()

(* DigestInfo prefix for SHA-256 (RFC 8017 section 9.2 notes). *)
let sha256_digest_info =
  "\x30\x31\x30\x0d\x06\x09\x60\x86\x48\x01\x65\x03\x04\x02\x01\x05\x00\x04\x20"

(* EMSA-PKCS1-v1_5 encoding of a message digest into [len] bytes. *)
let pkcs1_encode digest len =
  let t = sha256_digest_info ^ digest in
  let tlen = String.length t in
  if len < tlen + 11 then invalid_arg "Rsa.pkcs1_encode: modulus too small";
  "\x00\x01" ^ String.make (len - tlen - 3) '\xff' ^ "\x00" ^ t

let sign ~key msg =
  let digest = Sha256.digest msg in
  let len = modulus_bytes key.pub in
  let em = Nat.of_bytes_be (pkcs1_encode digest len) in
  let s = Nat.pow_mod ~base:em ~exp:key.d ~modulus:key.pub.n in
  Nat.to_bytes_be_padded s len

(* Global count of RSA verifications actually performed — the ground truth
   the multi-vantage benchmark audits cache-on and cache-off runs against. *)
let verifications = ref 0

let verification_count () = !verifications

let verify ~key ~signature msg =
  incr verifications;
  let len = modulus_bytes key in
  if String.length signature <> len then false
  else begin
    let s = Nat.of_bytes_be signature in
    if not (Nat.lt s key.n) then false
    else begin
      let em = Nat.pow_mod ~base:s ~exp:key.e ~modulus:key.n in
      let expected = Nat.of_bytes_be (pkcs1_encode (Sha256.digest msg) len) in
      Nat.equal em expected
    end
  end

(* Stable identifier for a public key: SHA-256 of its canonical encoding,
   analogous to the RPKI's Subject Key Identifier. *)
let key_id pub =
  let nb = Nat.to_bytes_be pub.n and eb = Nat.to_bytes_be pub.e in
  Sha256.digest (Printf.sprintf "%d:%s:%d:%s" (String.length nb) nb (String.length eb) eb)

let pp_public fmt pub =
  Format.fprintf fmt "rsa-%d:%s" (Nat.num_bits pub.n) (Rpki_util.Hex.abbrev (key_id pub))

let equal_public a b = Nat.equal a.n b.n && Nat.equal a.e b.e
