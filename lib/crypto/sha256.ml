(* SHA-256 (FIPS 180-4), implemented over Int32.

   Used for object digests, manifest file hashes, key identifiers and as the
   compression function inside HMAC / HMAC-DRBG.  The implementation is the
   straightforward 64-round schedule; throughput is measured in the bench
   suite. *)

let k =
  [| 0x428a2f98l; 0x71374491l; 0xb5c0fbcfl; 0xe9b5dba5l; 0x3956c25bl; 0x59f111f1l;
     0x923f82a4l; 0xab1c5ed5l; 0xd807aa98l; 0x12835b01l; 0x243185bel; 0x550c7dc3l;
     0x72be5d74l; 0x80deb1fel; 0x9bdc06a7l; 0xc19bf174l; 0xe49b69c1l; 0xefbe4786l;
     0x0fc19dc6l; 0x240ca1ccl; 0x2de92c6fl; 0x4a7484aal; 0x5cb0a9dcl; 0x76f988dal;
     0x983e5152l; 0xa831c66dl; 0xb00327c8l; 0xbf597fc7l; 0xc6e00bf3l; 0xd5a79147l;
     0x06ca6351l; 0x14292967l; 0x27b70a85l; 0x2e1b2138l; 0x4d2c6dfcl; 0x53380d13l;
     0x650a7354l; 0x766a0abbl; 0x81c2c92el; 0x92722c85l; 0xa2bfe8a1l; 0xa81a664bl;
     0xc24b8b70l; 0xc76c51a3l; 0xd192e819l; 0xd6990624l; 0xf40e3585l; 0x106aa070l;
     0x19a4c116l; 0x1e376c08l; 0x2748774cl; 0x34b0bcb5l; 0x391c0cb3l; 0x4ed8aa4al;
     0x5b9cca4fl; 0x682e6ff3l; 0x748f82eel; 0x78a5636fl; 0x84c87814l; 0x8cc70208l;
     0x90befffal; 0xa4506cebl; 0xbef9a3f7l; 0xc67178f2l |]

type ctx = {
  mutable h0 : int32; mutable h1 : int32; mutable h2 : int32; mutable h3 : int32;
  mutable h4 : int32; mutable h5 : int32; mutable h6 : int32; mutable h7 : int32;
  buf : Bytes.t;            (* pending partial block *)
  mutable buf_len : int;
  mutable total : int;      (* total bytes fed so far *)
}

let init () =
  { h0 = 0x6a09e667l; h1 = 0xbb67ae85l; h2 = 0x3c6ef372l; h3 = 0xa54ff53al;
    h4 = 0x510e527fl; h5 = 0x9b05688cl; h6 = 0x1f83d9abl; h7 = 0x5be0cd19l;
    buf = Bytes.create 64; buf_len = 0; total = 0 }

let rotr x n = Int32.logor (Int32.shift_right_logical x n) (Int32.shift_left x (32 - n))
let ( +% ) = Int32.add
let ( ^% ) = Int32.logxor
let ( &% ) = Int32.logand

let w = Array.make 64 0l

(* Process one 64-byte block starting at [off] in [block]. *)
let compress ctx block off =
  for t = 0 to 15 do
    let i = off + (4 * t) in
    w.(t) <-
      Int32.logor
        (Int32.shift_left (Int32.of_int (Char.code (Bytes.get block i))) 24)
        (Int32.logor
           (Int32.shift_left (Int32.of_int (Char.code (Bytes.get block (i + 1)))) 16)
           (Int32.logor
              (Int32.shift_left (Int32.of_int (Char.code (Bytes.get block (i + 2)))) 8)
              (Int32.of_int (Char.code (Bytes.get block (i + 3))))))
  done;
  for t = 16 to 63 do
    let s0 = rotr w.(t - 15) 7 ^% rotr w.(t - 15) 18 ^% Int32.shift_right_logical w.(t - 15) 3 in
    let s1 = rotr w.(t - 2) 17 ^% rotr w.(t - 2) 19 ^% Int32.shift_right_logical w.(t - 2) 10 in
    w.(t) <- w.(t - 16) +% s0 +% w.(t - 7) +% s1
  done;
  let a = ref ctx.h0 and b = ref ctx.h1 and c = ref ctx.h2 and d = ref ctx.h3 in
  let e = ref ctx.h4 and f = ref ctx.h5 and g = ref ctx.h6 and h = ref ctx.h7 in
  for t = 0 to 63 do
    let s1 = rotr !e 6 ^% rotr !e 11 ^% rotr !e 25 in
    let ch = (!e &% !f) ^% (Int32.lognot !e &% !g) in
    let t1 = !h +% s1 +% ch +% k.(t) +% w.(t) in
    let s0 = rotr !a 2 ^% rotr !a 13 ^% rotr !a 22 in
    let maj = (!a &% !b) ^% (!a &% !c) ^% (!b &% !c) in
    let t2 = s0 +% maj in
    h := !g; g := !f; f := !e; e := !d +% t1;
    d := !c; c := !b; b := !a; a := t1 +% t2
  done;
  ctx.h0 <- ctx.h0 +% !a; ctx.h1 <- ctx.h1 +% !b;
  ctx.h2 <- ctx.h2 +% !c; ctx.h3 <- ctx.h3 +% !d;
  ctx.h4 <- ctx.h4 +% !e; ctx.h5 <- ctx.h5 +% !f;
  ctx.h6 <- ctx.h6 +% !g; ctx.h7 <- ctx.h7 +% !h

let feed ctx s =
  let s = Bytes.unsafe_of_string s in
  let len = Bytes.length s in
  ctx.total <- ctx.total + len;
  let pos = ref 0 in
  (* fill a pending partial block first *)
  if ctx.buf_len > 0 then begin
    let need = min (64 - ctx.buf_len) len in
    Bytes.blit s 0 ctx.buf ctx.buf_len need;
    ctx.buf_len <- ctx.buf_len + need;
    pos := need;
    if ctx.buf_len = 64 then begin
      compress ctx ctx.buf 0;
      ctx.buf_len <- 0
    end
  end;
  while len - !pos >= 64 do
    compress ctx s !pos;
    pos := !pos + 64
  done;
  if !pos < len then begin
    Bytes.blit s !pos ctx.buf 0 (len - !pos);
    ctx.buf_len <- len - !pos
  end

let finish ctx =
  let bitlen = Int64.of_int (8 * ctx.total) in
  let pad_len =
    let r = (ctx.total + 1 + 8) mod 64 in
    if r = 0 then 1 + 8 else 1 + 8 + (64 - r)
  in
  let pad = Bytes.make (pad_len - 8) '\x00' in
  Bytes.set pad 0 '\x80';
  feed ctx (Bytes.to_string pad);
  let lenb = Bytes.create 8 in
  for i = 0 to 7 do
    Bytes.set lenb i
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical bitlen (8 * (7 - i))) 0xffL)))
  done;
  feed ctx (Bytes.to_string lenb);
  assert (ctx.buf_len = 0);
  let out = Bytes.create 32 in
  let put i v =
    for j = 0 to 3 do
      Bytes.set out ((4 * i) + j)
        (Char.chr (Int32.to_int (Int32.logand (Int32.shift_right_logical v (8 * (3 - j))) 0xffl)))
    done
  in
  put 0 ctx.h0; put 1 ctx.h1; put 2 ctx.h2; put 3 ctx.h3;
  put 4 ctx.h4; put 5 ctx.h5; put 6 ctx.h6; put 7 ctx.h7;
  Bytes.to_string out

(* One-shot digest of a string; result is 32 raw bytes. *)
let digest s =
  let ctx = init () in
  feed ctx s;
  finish ctx

(* Digest of a concatenation, streamed — H(a || b || ...) without building
   the concatenated string (domain-separated hashing feeds tag and payload
   as separate parts). *)
let digest_list parts =
  let ctx = init () in
  List.iter (feed ctx) parts;
  finish ctx

let hexdigest s = Rpki_util.Hex.of_string (digest s)
