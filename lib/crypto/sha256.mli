(** SHA-256 (FIPS 180-4), vector-tested against the NIST examples. *)

type ctx
(** Streaming hash state. *)

val init : unit -> ctx

val feed : ctx -> string -> unit
(** Absorb bytes; may be called any number of times. *)

val finish : ctx -> string
(** Pad, finalize, and return the 32-byte digest. The context must not be
    reused afterwards. *)

val digest : string -> string
(** One-shot digest: 32 raw bytes. *)

val digest_list : string list -> string
(** [digest_list parts] is [digest (String.concat "" parts)], streamed —
    the natural shape for domain-separated hashing (tag, then payload). *)

val hexdigest : string -> string
(** One-shot digest in lowercase hex. *)
