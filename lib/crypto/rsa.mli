(** RSA signatures in the PKCS#1 v1.5 style, over {!Rpki_bignum}.

    Production RPKI mandates RSA-2048 with SHA-256 (RFC 7935); this
    implementation keeps the same signing pipeline (DigestInfo wrapping,
    type-01 padding, modular exponentiation) at a configurable modulus size,
    defaulting to 512 bits so that building large certificate hierarchies in
    tests stays cheap. *)

open Rpki_bignum

type public = { n : Nat.t; e : Nat.t }
type private_ = { pub : public; d : Nat.t; p : Nat.t; q : Nat.t }
type keypair = { public : public; private_ : private_ }

val default_bits : int
(** 512. *)

val min_bits : int
(** The smallest modulus that can carry PKCS#1 v1.5 + SHA-256 DigestInfo. *)

val modulus_bytes : public -> int
(** Signature width in bytes. *)

val generate : ?bits:int -> Rpki_util.Rng.t -> keypair
(** Deterministic keygen from the given RNG; [e = 65537].
    Raises [Invalid_argument] below {!min_bits}. *)

val sign : key:private_ -> string -> string
(** Sign the SHA-256 digest of the message; the result is exactly
    [modulus_bytes] long. *)

val verify : key:public -> signature:string -> string -> bool
(** Verify a signature over a message. Never raises. *)

val verification_count : unit -> int
(** Number of {!verify} calls executed since process start — a monotonic
    global counter.  Benchmarks diff it around a region to audit how much
    signature checking a configuration actually performed. *)

val key_id : public -> string
(** A stable 32-byte identifier for a public key (the profile's analogue of
    the Subject Key Identifier). *)

val pp_public : Format.formatter -> public -> unit

val equal_public : public -> public -> bool
