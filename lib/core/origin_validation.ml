(* Route-origin validation (RFC 6811 / RFC 6483), the semantics at the heart
   of Section 4 of the paper.

   Given the relying party's set of validated ROA payloads, each BGP route is
   classified:

   - [Valid]   — some VRP matches: same origin AS, VRP prefix covers the
                 route's prefix, and the route's length <= maxLength;
   - [Unknown] — no VRP even covers the route's prefix (the RFC's NotFound);
   - [Invalid] — some VRP covers the prefix, but none matches.

   The index is a prefix trie so classification of a route needs only the
   VRPs on its covering path.  The trie is never rebuilt from scratch on a
   steady-state tick: {!apply_diff} patches the nodes a sync's VRP diff
   touches, which is what makes the relying party's warm tick cheap. *)

open Rpki_ip

type state = Valid | Invalid | Unknown

let state_to_string = function Valid -> "valid" | Invalid -> "invalid" | Unknown -> "unknown"
let pp_state fmt s = Format.pp_print_string fmt (state_to_string s)
let equal_state (a : state) b = a = b

type index = { trie : Vrp.t list V4.Trie.t; count : int }

let empty_index = { trie = V4.Trie.empty; count = 0 }

(* The index is a set: each VRP appears at most once at its prefix node. *)
let node_mem vrps vrp = List.exists (Vrp.equal vrp) vrps

let add_vrps idx vrps =
  List.fold_left
    (fun idx (vrp : Vrp.t) ->
      match V4.Trie.find_exact idx.trie vrp.Vrp.prefix with
      | Some existing when node_mem existing vrp -> idx
      | Some existing ->
        { trie = V4.Trie.insert idx.trie vrp.Vrp.prefix (vrp :: existing);
          count = idx.count + 1 }
      | None ->
        { trie = V4.Trie.insert idx.trie vrp.Vrp.prefix [ vrp ]; count = idx.count + 1 })
    idx vrps

let remove_vrps idx vrps =
  List.fold_left
    (fun idx (vrp : Vrp.t) ->
      match V4.Trie.find_exact idx.trie vrp.Vrp.prefix with
      | None -> idx
      | Some existing ->
        if not (node_mem existing vrp) then idx
        else begin
          match List.filter (fun v -> not (Vrp.equal v vrp)) existing with
          | [] -> { trie = V4.Trie.remove idx.trie vrp.Vrp.prefix; count = idx.count - 1 }
          | rest -> { trie = V4.Trie.insert idx.trie vrp.Vrp.prefix rest; count = idx.count - 1 }
        end)
    idx vrps

let apply_diff idx (d : Vrp.diff) = add_vrps (remove_vrps idx d.Vrp.removed) d.Vrp.added

let build vrps = add_vrps empty_index vrps

let vrp_count idx = idx.count

let vrps idx = List.concat_map snd (V4.Trie.to_list idx.trie)

(* All VRPs whose prefix covers [prefix]. *)
let covering_vrps idx prefix = List.concat_map snd (V4.Trie.covering idx.trie prefix)

let fold_covering idx prefix ~init ~f =
  List.fold_left
    (fun acc (_, vrps) -> List.fold_left f acc vrps)
    init
    (V4.Trie.covering idx.trie prefix)

let fold_covered idx prefix ~init ~f =
  List.fold_left (fun acc (p, vrps) -> f acc p vrps) init (V4.Trie.covered idx.trie prefix)

let covered_strictly_below idx prefix =
  fold_covered idx prefix ~init:false ~f:(fun acc p _ ->
      acc || not (V4.Prefix.equal p prefix))

let matches (vrp : Vrp.t) (route : Route.t) =
  vrp.Vrp.asn = route.Route.origin
  && vrp.Vrp.asn <> 0 (* AS0 ROAs authorize no one, RFC 6483 section 4 *)
  && V4.Prefix.covers vrp.Vrp.prefix route.Route.prefix
  && V4.Prefix.len route.Route.prefix <= vrp.Vrp.max_len

(* Classification is a single covering walk: Unknown until a covering VRP is
   seen, Valid as soon as one matches. *)
let classify idx (route : Route.t) =
  fold_covering idx route.Route.prefix ~init:Unknown ~f:(fun st vrp ->
      match st with
      | Valid -> Valid
      | Invalid | Unknown -> if matches vrp route then Valid else Invalid)

(* The matching VRPs (evidence for a Valid answer) and covering VRPs
   (evidence for an Invalid answer). *)
let explain idx (route : Route.t) =
  let covering = covering_vrps idx route.Route.prefix in
  let matching = List.filter (fun vrp -> matches vrp route) covering in
  (classify idx route, matching, covering)
