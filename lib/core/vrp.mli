(** Validated ROA Payloads: the (prefix, maxLength, origin AS) triples that
    survive validation and drive route-origin validation (RFC 6811). *)

open Rpki_ip

type t = { prefix : V4.Prefix.t; max_len : int; asn : int }

val make : ?max_len:int -> V4.Prefix.t -> int -> t
(** [max_len] defaults to the prefix length. Raises [Invalid_argument] when
    outside [len..32]. *)

val compare : t -> t -> int
val equal : t -> t -> bool

val of_roa : Roa.t -> t list
(** One VRP per IPv4 entry of the ROA. *)

(** {2 Set operations}

    VRP sets are represented as sorted ({!compare}) duplicate-free lists;
    {!normalize} produces that form.  Diffs are the currency of the
    incremental pipeline: the relying party emits one per sync, the
    origin-validation index patches its trie with it, and the RTR cache
    serves it as a serial-numbered delta. *)

val normalize : t list -> t list
(** Sort and de-duplicate. *)

type diff = {
  added : t list;    (** present after, absent before *)
  removed : t list;  (** present before, absent after *)
}

val empty_diff : diff
val diff_is_empty : diff -> bool
val diff_size : diff -> int

val diff_of : before:t list -> after:t list -> diff
(** Set difference in both directions.  Both inputs must be normalized
    (sorted, duplicate-free); the result lists are normalized too.  Runs in
    linear time by sorted merge. *)

val apply_diff : t list -> diff -> t list
(** Patch a normalized set with a diff, returning a normalized set.
    [apply_diff before (diff_of ~before ~after) = after]. *)

val invert_diff : diff -> diff
(** Swap announce and withdraw: [apply_diff (apply_diff s d) (invert_diff d)]
    = [s].  Used to recover the base set a diff was computed against. *)

val fingerprint : t list -> int64
(** An order-independent-after-{!normalize} digest of a VRP set (FNV-1a over
    the sorted triples).  Cheap enough to compute per publish; used by the
    RTR plane to check that a diff is being applied to the set it was
    computed against (see {!Rpki_rtr.Session.publish_diff}).  Not
    cryptographic — a guard against plumbing bugs, not adversaries. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
