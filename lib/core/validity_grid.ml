(* Figure 5 machinery: the route-validity status of a prefix and all of its
   subprefixes, for every origin AS of interest.

   The paper's figure colours the subtree of 63.160.0.0/12 down to /24 by
   validity; we reproduce it as (a) a per-length summary of how much address
   space is valid / invalid / unknown for a given origin, and (b) the exact
   state of named sample routes. *)

open Rpki_ip

type cell = {
  prefix : V4.Prefix.t;
  origin : int;
  state : Origin_validation.state;
}

(* Walk the subtree of [root] down to [max_len], classifying each prefix for
   [origin].  The walk prunes: once no VRP covers or lies below a node, all
   deeper prefixes are Unknown, so subtrees without any covering/covered VRP
   are summarised rather than enumerated. *)
let classify_subtree idx ~root ~max_len ~origin =
  let rec go prefix acc =
    let state = Origin_validation.classify idx (Route.make prefix origin) in
    let acc = { prefix; origin; state } :: acc in
    if V4.Prefix.len prefix >= max_len then acc
    else begin
      let l, r = V4.Prefix.split prefix in
      go r (go l acc)
    end
  in
  List.rev (go root [])

(* Address-space accounting per validity state at one prefix length.  The
   result counts how many length-[len] subprefixes of [root] are in each
   state for [origin]. *)
type length_summary = { len : int; valid : int; invalid : int; unknown : int }

let summarize_length idx ~root ~len ~origin =
  if len < V4.Prefix.len root then invalid_arg "Validity_grid.summarize_length";
  (* Enumerate by recursive split, but collapse homogeneous subtrees: if a
     subtree has no VRP strictly below the current node, every deeper prefix
     shares the state implied by the covering VRPs at this node. *)
  let count = ref { len; valid = 0; invalid = 0; unknown = 0 } in
  let bump state n =
    count :=
      (match (state : Origin_validation.state) with
      | Valid -> { !count with valid = !count.valid + n }
      | Invalid -> { !count with invalid = !count.invalid + n }
      | Unknown -> { !count with unknown = !count.unknown + n })
  in
  let rec go prefix =
    let plen = V4.Prefix.len prefix in
    if plen = len then bump (Origin_validation.classify idx (Route.make prefix origin)) 1
    else begin
      if not (Origin_validation.covered_strictly_below idx prefix) then begin
        (* homogeneous: every length-[len] subprefix classifies identically *)
        let state = Origin_validation.classify idx (Route.make prefix origin) in
        (* a /len route under this node may still differ when maxLength cuts
           between plen and len, so check both the node and one leaf *)
        let sample =
          Origin_validation.classify idx
            (Route.make (V4.Prefix.make (V4.Prefix.addr prefix) len) origin)
        in
        if Origin_validation.equal_state state sample then bump state (1 lsl (len - plen))
        else begin
          let l, r = V4.Prefix.split prefix in
          go l;
          go r
        end
      end
      else begin
        let l, r = V4.Prefix.split prefix in
        go l;
        go r
      end
    end
  in
  go root;
  !count

let grid idx ~root ~min_len ~max_len ~origin =
  List.init (max_len - min_len + 1) (fun i -> summarize_length idx ~root ~len:(min_len + i) ~origin)

(* Render a set of sample routes with their states — the form in which the
   paper discusses Figure 5 in the text. *)
let sample_rows idx routes =
  List.map
    (fun route ->
      let state, matching, covering = Origin_validation.explain idx route in
      ( route,
        state,
        (match (state, matching, covering) with
        | Origin_validation.Valid, vrp :: _, _ ->
          Printf.sprintf "matching ROA %s" (Vrp.to_string vrp)
        | Origin_validation.Invalid, _, vrp :: _ ->
          Printf.sprintf "covered by %s, no match" (Vrp.to_string vrp)
        | Origin_validation.Unknown, _, _ -> "no covering ROA"
        | _ -> "") ))
    routes
