(* Validated ROA Payloads: the (prefix, max length, origin AS) triples that
   survive validation and drive route-origin validation (RFC 6811 calls the
   set of these the "VRP set"). *)

open Rpki_ip

type t = { prefix : V4.Prefix.t; max_len : int; asn : int }

let make ?max_len prefix asn =
  let max_len = Option.value max_len ~default:(V4.Prefix.len prefix) in
  if max_len < V4.Prefix.len prefix || max_len > 32 then invalid_arg "Vrp.make: bad max_len";
  { prefix; max_len; asn }

let compare a b =
  let c = V4.Prefix.compare a.prefix b.prefix in
  if c <> 0 then c
  else begin
    let c = Int.compare a.max_len b.max_len in
    if c <> 0 then c else Int.compare a.asn b.asn
  end

let equal a b = compare a b = 0

let of_roa (roa : Roa.t) =
  List.map (fun (e : Roa.v4_entry) -> { prefix = e.Roa.prefix; max_len = e.Roa.max_len; asn = roa.Roa.asid }) roa.Roa.v4_entries

let normalize vrps = List.sort_uniq compare vrps

type diff = { added : t list; removed : t list }

let empty_diff = { added = []; removed = [] }
let diff_is_empty d = d.added = [] && d.removed = []
let diff_size d = List.length d.added + List.length d.removed

(* Sorted-merge set difference in both directions: O(|before| + |after|). *)
let diff_of ~before ~after =
  let rec go before after added removed =
    match (before, after) with
    | [], [] -> { added = List.rev added; removed = List.rev removed }
    | [], a :: rest -> go [] rest (a :: added) removed
    | b :: rest, [] -> go rest [] added (b :: removed)
    | b :: brest, a :: arest ->
      let c = compare b a in
      if c = 0 then go brest arest added removed
      else if c < 0 then go brest after added (b :: removed)
      else go before arest (a :: added) removed
  in
  go before after [] []

(* Patch a sorted set: drop [removed], merge in [added]. *)
let apply_diff set d =
  let rec drop set removed =
    match (set, removed) with
    | _, [] | [], _ -> set
    | s :: srest, r :: rrest ->
      let c = compare s r in
      if c = 0 then drop srest rrest
      else if c < 0 then s :: drop srest removed
      else drop set rrest
  in
  let rec merge set added =
    match (set, added) with
    | _, [] -> set
    | [], _ -> added
    | s :: srest, a :: arest ->
      let c = compare s a in
      if c = 0 then s :: merge srest arest
      else if c < 0 then s :: merge srest added
      else a :: merge set arest
  in
  merge (drop set d.removed) d.added

let invert_diff d = { added = d.removed; removed = d.added }

(* FNV-1a over the sorted triples: order-independent once normalized, cheap
   enough to run on every publish.  A plumbing guard, not a MAC. *)
let fingerprint vrps =
  let prime = 0x100000001b3L in
  let mix h x = Int64.mul (Int64.logxor h (Int64.of_int x)) prime in
  List.fold_left
    (fun h v ->
      mix (mix (mix h (V4.Prefix.addr v.prefix lor (V4.Prefix.len v.prefix lsl 32))) v.max_len)
        v.asn)
    0xcbf29ce484222325L vrps

let to_string t =
  if t.max_len = V4.Prefix.len t.prefix then
    Printf.sprintf "(%s, AS%d)" (V4.Prefix.to_string t.prefix) t.asn
  else Printf.sprintf "(%s-%d, AS%d)" (V4.Prefix.to_string t.prefix) t.max_len t.asn

let pp fmt t = Format.pp_print_string fmt (to_string t)
