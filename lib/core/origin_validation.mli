(** Route-origin validation (RFC 6811 / RFC 6483) — the semantics at the
    heart of the paper's Section 4.

    Given the relying party's validated ROA payloads, each route is:
    - [Valid] — some VRP matches (same origin, covering prefix, length
      within maxLength);
    - [Unknown] — no VRP even covers the prefix (the RFC's NotFound);
    - [Invalid] — some VRP covers the prefix but none matches.

    It is the [Invalid]-versus-[Unknown] distinction that creates Side
    Effects 5 and 6.

    The index is an opaque prefix trie and supports incremental
    maintenance: {!apply_diff} (or {!add_vrps} / {!remove_vrps}) patches
    only the nodes a sync's VRP diff touches, so a steady-state
    relying-party tick never rebuilds the index from scratch.  The index
    has set semantics: adding a VRP already present, or removing one that
    is absent, is a no-op. *)

open Rpki_ip

type state = Valid | Invalid | Unknown

val state_to_string : state -> string
val pp_state : Format.formatter -> state -> unit
val equal_state : state -> state -> bool

type index
(** A prefix-trie index over a VRP set. *)

val empty_index : index

val build : Vrp.t list -> index
(** Index a VRP set from scratch (duplicates are collapsed). *)

val add_vrps : index -> Vrp.t list -> index
(** Insert VRPs; already-present VRPs are ignored. *)

val remove_vrps : index -> Vrp.t list -> index
(** Delete VRPs; absent VRPs are ignored.  Trie nodes left without any
    VRP are pruned. *)

val apply_diff : index -> Vrp.diff -> index
(** [apply_diff idx d = add_vrps (remove_vrps idx d.removed) d.added].
    If [idx] indexes [before], then [apply_diff idx (Vrp.diff_of ~before
    ~after)] indexes [after]. *)

val vrp_count : index -> int
(** Number of VRPs indexed, maintained incrementally. *)

val vrps : index -> Vrp.t list
(** All indexed VRPs (unspecified order). *)

val covering_vrps : index -> V4.Prefix.t -> Vrp.t list
(** All VRPs whose prefix covers the given prefix, shortest first. *)

val fold_covering : index -> V4.Prefix.t -> init:'a -> f:('a -> Vrp.t -> 'a) -> 'a
(** Fold over the VRPs on the covering path of a prefix (shortest prefix
    first) without materializing the list. *)

val fold_covered :
  index -> V4.Prefix.t -> init:'a -> f:('a -> V4.Prefix.t -> Vrp.t list -> 'a) -> 'a
(** Fold over the indexed prefixes at or below a prefix, with the VRPs
    stored at each. *)

val covered_strictly_below : index -> V4.Prefix.t -> bool
(** Does any indexed prefix sit strictly below (longer than) the given
    prefix?  Used by the validity-grid pruning walk. *)

val matches : Vrp.t -> Route.t -> bool
(** The RFC 6811 match predicate (AS0 VRPs never match, per RFC 6483). *)

val classify : index -> Route.t -> state

val explain : index -> Route.t -> state * Vrp.t list * Vrp.t list
(** [(state, matching, covering)] — evidence for the verdict. *)
