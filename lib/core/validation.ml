(* Object validation (RFC 6487 / 6488-style checks, simplified).

   Every check returns typed evidence on failure rather than a boolean, so
   that the attack, monitor and simulation layers can attribute a validity
   change to the specific manipulation that caused it. *)

open Rpki_crypto

type failure =
  | Expired of { not_after : Rtime.t; now : Rtime.t }
  | Not_yet_valid of { not_before : Rtime.t; now : Rtime.t }
  | Bad_signature of string (* which object *)
  | Wrong_issuer of { expected : string; got : string }
  | Resource_overclaim of { subject : string; excess : Resources.t }
  | Revoked of { serial : int; issuer : string }
  | Stale_crl of { next_update : Rtime.t; now : Rtime.t }
  | Not_a_ca of string
  | Is_a_ca of string (* EE slot filled by a CA certificate *)
  | Bad_max_length of { len : int; max_len : int }
  | Malformed of string

let pp_failure fmt = function
  | Expired { not_after; now } ->
    Format.fprintf fmt "expired (notAfter=%a, now=%a)" Rtime.pp not_after Rtime.pp now
  | Not_yet_valid { not_before; now } ->
    Format.fprintf fmt "not yet valid (notBefore=%a, now=%a)" Rtime.pp not_before Rtime.pp now
  | Bad_signature what -> Format.fprintf fmt "bad signature on %s" what
  | Wrong_issuer { expected; got } ->
    Format.fprintf fmt "wrong issuer (expected %s, got %s)" expected got
  | Resource_overclaim { subject; excess } ->
    Format.fprintf fmt "resource overclaim by %s: %a" subject Resources.pp excess
  | Revoked { serial; issuer } -> Format.fprintf fmt "revoked (serial %d by %s)" serial issuer
  | Stale_crl { next_update; now } ->
    Format.fprintf fmt "stale CRL (nextUpdate=%a, now=%a)" Rtime.pp next_update Rtime.pp now
  | Not_a_ca s -> Format.fprintf fmt "%s is not a CA" s
  | Is_a_ca s -> Format.fprintf fmt "%s is a CA where an EE is required" s
  | Bad_max_length { len; max_len } ->
    Format.fprintf fmt "maxLength %d shorter than prefix length %d" max_len len
  | Malformed what -> Format.fprintf fmt "malformed %s" what

let failure_to_string f = Format.asprintf "%a" pp_failure f

(* The relying party's issue taxonomy.  Validation failures map onto it via
   {!failure_kind}; the fetch path adds transport-shaped kinds of its own.
   The categories mirror the real-world RP error corpus (SNIPPETS.md):
   expired CRLs, missing manifests, seqnum gaps, expired / not-yet-valid
   certificates, RFC 3779 violations, manifest-number regressions, and the
   transport outcomes (DNS, refused, timeout, cross-origin redirect). *)
type issue_kind =
  | Ik_expired                (* certificate / ROA EE past notAfter *)
  | Ik_not_yet_valid          (* forward-dated certificate *)
  | Ik_expired_crl            (* CRL past nextUpdate *)
  | Ik_stale_manifest         (* manifest past nextUpdate *)
  | Ik_missing_manifest       (* no usable manifest at the point *)
  | Ik_missing_crl            (* CRL absent or undecodable *)
  | Ik_missing_object         (* listed on the manifest but not served *)
  | Ik_hash_mismatch          (* served bytes disagree with manifest hash *)
  | Ik_unlisted_object        (* served but not on the manifest *)
  | Ik_seqnum_gap             (* manifest number jumped implausibly far *)
  | Ik_manifest_regression    (* manifest number went backwards *)
  | Ik_bad_signature
  | Ik_wrong_issuer
  | Ik_rfc3779_overclaim      (* resources not a subset of the parent's *)
  | Ik_revoked
  | Ik_bad_max_length
  | Ik_profile                (* CA/EE role violation *)
  | Ik_malformed
  | Ik_transport_unreachable
  | Ik_transport_refused
  | Ik_transport_dns
  | Ik_transport_timeout      (* stalled past the fetch timeout *)
  | Ik_transport_redirect     (* cross-origin redirect, not followed *)
  | Ik_budget_exhausted
  | Ik_no_publication_point
  | Ik_rrdp_desync
  | Ik_grace_hold
  | Ik_unsafe_vrp             (* VRP overlapping a failed CA's resources *)

let issue_kind_to_string = function
  | Ik_expired -> "expired-cert"
  | Ik_not_yet_valid -> "not-yet-valid"
  | Ik_expired_crl -> "expired-crl"
  | Ik_stale_manifest -> "stale-manifest"
  | Ik_missing_manifest -> "missing-manifest"
  | Ik_missing_crl -> "missing-crl"
  | Ik_missing_object -> "missing-object"
  | Ik_hash_mismatch -> "hash-mismatch"
  | Ik_unlisted_object -> "unlisted-object"
  | Ik_seqnum_gap -> "seqnum-gap"
  | Ik_manifest_regression -> "manifest-regression"
  | Ik_bad_signature -> "bad-signature"
  | Ik_wrong_issuer -> "wrong-issuer"
  | Ik_rfc3779_overclaim -> "rfc3779-overclaim"
  | Ik_revoked -> "revoked"
  | Ik_bad_max_length -> "bad-max-length"
  | Ik_profile -> "profile"
  | Ik_malformed -> "malformed"
  | Ik_transport_unreachable -> "transport-unreachable"
  | Ik_transport_refused -> "transport-refused"
  | Ik_transport_dns -> "transport-dns"
  | Ik_transport_timeout -> "transport-timeout"
  | Ik_transport_redirect -> "transport-redirect"
  | Ik_budget_exhausted -> "budget-exhausted"
  | Ik_no_publication_point -> "no-publication-point"
  | Ik_rrdp_desync -> "rrdp-desync"
  | Ik_grace_hold -> "grace-hold"
  | Ik_unsafe_vrp -> "unsafe-vrp"

let failure_kind = function
  | Expired _ -> Ik_expired
  | Not_yet_valid _ -> Ik_not_yet_valid
  | Bad_signature _ -> Ik_bad_signature
  | Wrong_issuer _ -> Ik_wrong_issuer
  | Resource_overclaim _ -> Ik_rfc3779_overclaim
  | Revoked _ -> Ik_revoked
  | Stale_crl _ -> Ik_expired_crl
  | Not_a_ca _ | Is_a_ca _ -> Ik_profile
  | Bad_max_length _ -> Ik_bad_max_length
  | Malformed _ -> Ik_malformed

let ( let* ) = Result.bind

let check_window ~now ~not_before ~not_after =
  if Rtime.( < ) now not_before then Error (Not_yet_valid { not_before; now })
  else if Rtime.( < ) not_after now then Error (Expired { not_after; now })
  else Ok ()

(* Every signature check below funnels through the [verify] parameter; the
   default is the real {!Rsa.verify}.  A caller may substitute a memoizing
   wrapper (the shared validation plane's verdict cache) — substitution is
   sound because RSA verification is a pure function of (key, signature,
   message). *)
type verifier = key:Rsa.public -> signature:string -> string -> bool

let default_verify : verifier = fun ~key ~signature msg -> Rsa.verify ~key ~signature msg

(* Validate a CRL against its issuing CA. *)
let validate_crl ?(verify = default_verify) ~now ~(parent : Cert.t) (crl : Crl.t) =
  let* () =
    if crl.Crl.issuer <> parent.Cert.subject then
      Error (Wrong_issuer { expected = parent.Cert.subject; got = crl.Crl.issuer })
    else Ok ()
  in
  let* () =
    if verify ~key:parent.Cert.public_key ~signature:crl.Crl.signature (Crl.tbs_bytes crl)
    then Ok ()
    else Error (Bad_signature "CRL")
  in
  if Rtime.( < ) crl.Crl.next_update now then
    Error (Stale_crl { next_update = crl.Crl.next_update; now })
  else Ok ()

(* Validate one certificate under a validated parent.  [crl], when present,
   must already have been validated against the same parent. *)
let validate_cert ?(verify = default_verify) ~now ~(parent : Cert.t) ?crl (cert : Cert.t) =
  let* () =
    if not parent.Cert.is_ca then Error (Not_a_ca parent.Cert.subject) else Ok ()
  in
  let* () =
    if cert.Cert.issuer <> parent.Cert.subject then
      Error (Wrong_issuer { expected = parent.Cert.subject; got = cert.Cert.issuer })
    else Ok ()
  in
  let* () =
    if verify ~key:parent.Cert.public_key ~signature:cert.Cert.signature (Cert.tbs_bytes cert)
    then Ok ()
    else Error (Bad_signature (Printf.sprintf "certificate for %s" cert.Cert.subject))
  in
  let* () = check_window ~now ~not_before:cert.Cert.not_before ~not_after:cert.Cert.not_after in
  let* () =
    let excess =
      Resources.overclaim ~claimed:cert.Cert.resources ~allowed:parent.Cert.resources
    in
    if Resources.is_empty excess then Ok ()
    else Error (Resource_overclaim { subject = cert.Cert.subject; excess })
  in
  match crl with
  | Some crl when Crl.revokes crl cert.Cert.serial ->
    Error (Revoked { serial = cert.Cert.serial; issuer = parent.Cert.subject })
  | _ -> Ok ()

(* Validate a trust-anchor certificate against its out-of-band key (the TAL
   model: the relying party is configured with the TA's public key). *)
let validate_trust_anchor ?(verify = default_verify) ~now ~(expected_key : Rsa.public)
    (cert : Cert.t) =
  let* () =
    if Rsa.equal_public cert.Cert.public_key expected_key then Ok ()
    else Error (Bad_signature "trust anchor key mismatch")
  in
  let* () =
    if verify ~key:expected_key ~signature:cert.Cert.signature (Cert.tbs_bytes cert) then Ok ()
    else Error (Bad_signature "trust anchor certificate")
  in
  let* () = check_window ~now ~not_before:cert.Cert.not_before ~not_after:cert.Cert.not_after in
  if cert.Cert.is_ca then Ok () else Error (Not_a_ca cert.Cert.subject)

(* Validate a ROA under a validated parent CA; returns the VRPs it yields. *)
let validate_roa ?(verify = default_verify) ~now ~(parent : Cert.t) ?crl (roa : Roa.t) =
  let ee = roa.Roa.ee in
  let* () = validate_cert ~verify ~now ~parent ?crl ee in
  let* () = if ee.Cert.is_ca then Error (Is_a_ca ee.Cert.subject) else Ok () in
  let* () =
    if verify ~key:ee.Cert.public_key ~signature:roa.Roa.signature (Roa.content_bytes roa)
    then Ok ()
    else Error (Bad_signature "ROA content")
  in
  (* each prefix must sit inside the EE certificate's resources *)
  let* () =
    let claimed = Roa.resources roa in
    let excess = Resources.overclaim ~claimed ~allowed:ee.Cert.resources in
    if Resources.is_empty excess then Ok ()
    else Error (Resource_overclaim { subject = ee.Cert.subject; excess })
  in
  let* () =
    List.fold_left
      (fun acc (e : Roa.v4_entry) ->
        let* () = acc in
        let len = Rpki_ip.V4.Prefix.len e.Roa.prefix in
        if e.Roa.max_len < len || e.Roa.max_len > 32 then
          Error (Bad_max_length { len; max_len = e.Roa.max_len })
        else Ok ())
      (Ok ()) roa.Roa.v4_entries
  in
  Ok (Vrp.of_roa roa)

(* Validate a manifest under a validated parent CA. *)
let validate_manifest ?(verify = default_verify) ~now ~(parent : Cert.t) ?crl
    (mft : Manifest.t) =
  let ee = mft.Manifest.ee in
  let* () = validate_cert ~verify ~now ~parent ?crl ee in
  let* () = if ee.Cert.is_ca then Error (Is_a_ca ee.Cert.subject) else Ok () in
  let* () =
    if
      verify ~key:ee.Cert.public_key ~signature:mft.Manifest.signature
        (Manifest.content_bytes mft)
    then Ok ()
    else Error (Bad_signature "manifest content")
  in
  if Rtime.( < ) mft.Manifest.next_update now then
    Error (Stale_crl { next_update = mft.Manifest.next_update; now })
  else Ok ()
