(** Object validation (RFC 6487/6488-style checks, simplified).

    Every check returns typed evidence on failure rather than a boolean, so
    the attack, monitor and simulation layers can attribute a validity
    change to the specific manipulation that caused it. *)

open Rpki_crypto

type failure =
  | Expired of { not_after : Rtime.t; now : Rtime.t }
  | Not_yet_valid of { not_before : Rtime.t; now : Rtime.t }
  | Bad_signature of string            (** which object *)
  | Wrong_issuer of { expected : string; got : string }
  | Resource_overclaim of { subject : string; excess : Resources.t }
  | Revoked of { serial : int; issuer : string }
  | Stale_crl of { next_update : Rtime.t; now : Rtime.t }
  | Not_a_ca of string
  | Is_a_ca of string                  (** EE slot filled by a CA cert *)
  | Bad_max_length of { len : int; max_len : int }
  | Malformed of string

val pp_failure : Format.formatter -> failure -> unit
val failure_to_string : failure -> string

type verifier = key:Rsa.public -> signature:string -> string -> bool
(** The shape of a signature check.  Every validation function below takes
    an optional [?verify] with {!Rsa.verify} semantics as the default; a
    caller may substitute a memoizing wrapper (the shared validation
    plane's verdict cache).  Substitution is sound because RSA verification
    is a pure function of (key, signature, message). *)

val validate_crl :
  ?verify:verifier -> now:Rtime.t -> parent:Cert.t -> Crl.t -> (unit, failure) result
(** Check a CRL's issuer, signature and currency against its issuing CA. *)

val validate_cert :
  ?verify:verifier ->
  now:Rtime.t -> parent:Cert.t -> ?crl:Crl.t -> Cert.t -> (unit, failure) result
(** Validate one certificate under a validated parent: issuer match,
    signature, validity window, RFC 3779 resource containment, and (when a
    validated [crl] is supplied) revocation. *)

val validate_trust_anchor :
  ?verify:verifier ->
  now:Rtime.t -> expected_key:Rsa.public -> Cert.t -> (unit, failure) result
(** TAL-model validation: the relying party is configured out of band with
    the trust anchor's public key. *)

val validate_roa :
  ?verify:verifier ->
  now:Rtime.t -> parent:Cert.t -> ?crl:Crl.t -> Roa.t -> (Vrp.t list, failure) result
(** Validate a ROA under a validated parent CA: EE chain, content signature,
    prefix containment in the EE's resources, maxLength sanity.  Returns the
    VRPs the ROA yields. *)

val validate_manifest :
  ?verify:verifier ->
  now:Rtime.t -> parent:Cert.t -> ?crl:Crl.t -> Manifest.t -> (unit, failure) result
