(** Object validation (RFC 6487/6488-style checks, simplified).

    Every check returns typed evidence on failure rather than a boolean, so
    the attack, monitor and simulation layers can attribute a validity
    change to the specific manipulation that caused it. *)

open Rpki_crypto

type failure =
  | Expired of { not_after : Rtime.t; now : Rtime.t }
  | Not_yet_valid of { not_before : Rtime.t; now : Rtime.t }
  | Bad_signature of string            (** which object *)
  | Wrong_issuer of { expected : string; got : string }
  | Resource_overclaim of { subject : string; excess : Resources.t }
  | Revoked of { serial : int; issuer : string }
  | Stale_crl of { next_update : Rtime.t; now : Rtime.t }
  | Not_a_ca of string
  | Is_a_ca of string                  (** EE slot filled by a CA cert *)
  | Bad_max_length of { len : int; max_len : int }
  | Malformed of string

val pp_failure : Format.formatter -> failure -> unit
val failure_to_string : failure -> string

(** The relying party's issue taxonomy — every reportable sync problem as a
    closed category, mirroring the real-world RP error corpus (SNIPPETS.md):
    expired CRLs, missing manifests, seqnum gaps, expired / not-yet-valid
    certificates, RFC 3779 violations, manifest-number regressions, plus the
    transport outcomes (DNS failure, connection refused, timeout,
    cross-origin redirect).  Free-form reason strings remain as human
    detail; the kind is what counters and benches aggregate over. *)
type issue_kind =
  | Ik_expired
  | Ik_not_yet_valid
  | Ik_expired_crl
  | Ik_stale_manifest
  | Ik_missing_manifest
  | Ik_missing_crl
  | Ik_missing_object
  | Ik_hash_mismatch
  | Ik_unlisted_object
  | Ik_seqnum_gap
  | Ik_manifest_regression
  | Ik_bad_signature
  | Ik_wrong_issuer
  | Ik_rfc3779_overclaim
  | Ik_revoked
  | Ik_bad_max_length
  | Ik_profile
  | Ik_malformed
  | Ik_transport_unreachable
  | Ik_transport_refused
  | Ik_transport_dns
  | Ik_transport_timeout
  | Ik_transport_redirect
  | Ik_budget_exhausted
  | Ik_no_publication_point
  | Ik_rrdp_desync
  | Ik_grace_hold
  | Ik_unsafe_vrp

val issue_kind_to_string : issue_kind -> string
(** Stable kebab-case label, e.g. ["expired-crl"] — used in run summaries
    and bench JSON. *)

val failure_kind : failure -> issue_kind
(** Where a validation {!failure} falls in the taxonomy.  [Stale_crl] maps
    to [Ik_expired_crl]; callers validating a {e manifest} window should
    re-map it to [Ik_stale_manifest] themselves (the failure type is shared
    between the two checks). *)

type verifier = key:Rsa.public -> signature:string -> string -> bool
(** The shape of a signature check.  Every validation function below takes
    an optional [?verify] with {!Rsa.verify} semantics as the default; a
    caller may substitute a memoizing wrapper (the shared validation
    plane's verdict cache).  Substitution is sound because RSA verification
    is a pure function of (key, signature, message). *)

val validate_crl :
  ?verify:verifier -> now:Rtime.t -> parent:Cert.t -> Crl.t -> (unit, failure) result
(** Check a CRL's issuer, signature and currency against its issuing CA. *)

val validate_cert :
  ?verify:verifier ->
  now:Rtime.t -> parent:Cert.t -> ?crl:Crl.t -> Cert.t -> (unit, failure) result
(** Validate one certificate under a validated parent: issuer match,
    signature, validity window, RFC 3779 resource containment, and (when a
    validated [crl] is supplied) revocation. *)

val validate_trust_anchor :
  ?verify:verifier ->
  now:Rtime.t -> expected_key:Rsa.public -> Cert.t -> (unit, failure) result
(** TAL-model validation: the relying party is configured out of band with
    the trust anchor's public key. *)

val validate_roa :
  ?verify:verifier ->
  now:Rtime.t -> parent:Cert.t -> ?crl:Crl.t -> Roa.t -> (Vrp.t list, failure) result
(** Validate a ROA under a validated parent CA: EE chain, content signature,
    prefix containment in the EE's resources, maxLength sanity.  Returns the
    VRPs the ROA yields. *)

val validate_manifest :
  ?verify:verifier ->
  now:Rtime.t -> parent:Cert.t -> ?crl:Crl.t -> Manifest.t -> (unit, failure) result
