(* The Stalloris-style stalling adversary (Hlavacek et al., USENIX Security
   2022, applied to this paper's misbehaving-authority setting).

   Where Whack manipulates repository *content*, Stall manipulates the
   *transport*: the adversary controls (or sits on the path to) targeted
   publication points and serves them at a trickle — each request completes,
   eventually, but only after [intensity] times the honest transfer time.
   Against a relying party with patient timeouts and eager retries, a single
   stalled point exhausts the whole sync budget; the rest of the RPKI goes
   unfetched, caches go stale, and once the cached objects' validity windows
   lapse the RP degrades toward no VRPs at all — an RPKI downgrade without
   touching a single signed object. *)

open Rpki_repo

type t = {
  targets : string list; (* publication-point URIs being throttled *)
  intensity : int;       (* transfer-time multiplier *)
}

let plan ~targets ~intensity =
  if intensity < 1 then invalid_arg "Stall.plan: intensity must be >= 1";
  if targets = [] then invalid_arg "Stall.plan: no targets";
  { targets = List.sort_uniq compare targets; intensity }

(* Target an authority's whole subtree: its publication point and every
   descendant's — the points a relying party must keep fresh for the
   victim's ROAs to stay validated. *)
let plan_against ~victim ~intensity =
  let uris = ref [ Pub_point.uri (Authority.pub victim) ] in
  Authority.iter_descendants victim ~f:(fun a ->
      uris := Pub_point.uri (Authority.pub a) :: !uris);
  plan ~targets:!uris ~intensity

let targets t = t.targets
let intensity t = t.intensity

let apply t transport =
  List.iter
    (fun uri -> Transport.set_fault transport ~uri (Transport.Stalling t.intensity))
    t.targets

(* End the campaign: only faults this plan installed are cleared, and only
   if still ours (an operator may have re-marked a point meanwhile). *)
let lift t transport =
  List.iter
    (fun uri ->
      match Transport.fault_of transport ~uri with
      | Transport.Stalling k when k = t.intensity -> Transport.clear_fault transport ~uri
      | _ -> ())
    t.targets

let describe t =
  Printf.sprintf "stall x%d on %d point(s): %s" t.intensity (List.length t.targets)
    (String.concat ", " t.targets)
