(* Byzantine gossip equivocator: see the .mli for the model.  The
   mechanics ride on Gossip.set_server — per-receiver choice of which
   same-named relying party answers a pull — plus the round-start refresh
   hook, which keeps the shadow's log in sync with whatever view its
   private transport serves. *)

open Rpki_repo

type t = {
  name : string;
  shadow : Relying_party.t;
  shadow_transport : Transport.t;
  universe : Universe.t;
  policy : Relying_party.fetch_policy;
  fork_to : string -> bool;
  mutable served_forked : int;
  mutable served_honest : int;
}

let plan ~universe ~name ~shadow ?(policy = Relying_party.default_policy)
    ~fork_to () =
  if not (String.equal (Relying_party.name shadow) name) then
    invalid_arg
      (Printf.sprintf
         "Equivocator.plan: shadow is named %S, not %S — a differently-named \
          log signs under a different key and would not equivocate"
         (Relying_party.name shadow) name);
  { name; shadow; shadow_transport = Transport.create (); universe; policy;
    fork_to; served_forked = 0; served_honest = 0 }

let name t = t.name
let shadow t = t.shadow
let shadow_transport t = t.shadow_transport
let served_forked t = t.served_forked
let served_honest t = t.served_honest

let key_id rp = Rpki_crypto.Rsa.key_id (Relying_party.transparency_key rp)

let apply t g =
  let v =
    match
      List.find_opt (fun v -> String.equal v.Gossip.v_name t.name) (Gossip.vantages g)
    with
    | Some v -> v
    | None -> invalid_arg ("Equivocator.apply: no vantage named " ^ t.name)
  in
  if not (String.equal (key_id t.shadow) (key_id v.Gossip.v_rp)) then
    invalid_arg
      "Equivocator.apply: shadow transparency key differs from the vantage's";
  Gossip.set_server g ~name:t.name
    ~refresh:(fun ~now ->
      ignore
        (Relying_party.sync t.shadow ~now ~universe:t.universe
           ~transport:t.shadow_transport ~policy:t.policy ()))
    (fun ~receiver ->
      if t.fork_to receiver then begin
        t.served_forked <- t.served_forked + 1;
        t.shadow
      end
      else begin
        t.served_honest <- t.served_honest + 1;
        (* read through the vantage record: a restart swaps v_rp and the
           equivocator keeps serving whatever the vantage currently runs *)
        v.Gossip.v_rp
      end)

let lift t g = Gossip.clear_server g ~name:t.name

let describe t =
  Printf.sprintf
    "gossip equivocator at %s: shadow log to targeted receivers (%d served), \
     honest log to the rest (%d served); the traitor itself pulls nothing"
    t.name t.served_forked t.served_honest
