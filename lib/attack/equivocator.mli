(** The Byzantine gossip adversary: a compromised vantage that equivocates
    {e inside gossip itself}, serving different signed tree heads to
    different peers.

    A {!Split_view} forks what an authority serves; this forks what a
    {e monitor} attests.  The attacker controls a vantage and keeps two
    relying parties under its name: the vantage's real one (syncing the
    honest view) and a {e shadow} — same name, hence the same
    deterministically-derived transparency key and log id — syncing
    through a transport the attacker also controls (typically with a
    {!Split_view} installed on it).  In gossip, receivers the attacker
    wants to keep deceived are served the shadow log; everyone else gets
    the honest one.  Each receiver sees a self-consistent, properly
    signed head sequence, so no [Inconsistent_heads] or
    [Bad_head_signature] ever fires: the equivocation is only visible if
    the deceived receiver also talks to an {e honest} vantage — the
    honest-majority / overlay-connectivity question [bench gossip]
    sweeps.

    The compromised vantage also stops pulling while the override is
    installed ({!Rpki_repo.Gossip.set_server}): a traitor would not
    report the forks it could see. *)

open Rpki_repo

type t

val plan :
  universe:Universe.t ->
  name:string ->
  shadow:Relying_party.t ->
  ?policy:Relying_party.fetch_policy ->
  fork_to:(string -> bool) ->
  unit ->
  t
(** A campaign compromising vantage [name].  [shadow] must be a relying
    party created under the {e same} name (that is what makes its head
    signatures verify as the vantage's — raises [Invalid_argument]
    otherwise).  [fork_to receiver] decides, per gossip receiver, whether
    the shadow log or the vantage's honest log is served.  The shadow
    syncs from [universe] through its own private transport
    ({!shadow_transport}) at the start of every gossip round — install
    the view to equivocate about on that transport. *)

val name : t -> string

val shadow : t -> Relying_party.t

val shadow_transport : t -> Transport.t
(** The transport the shadow relying party syncs through.  Apply a
    {!Split_view} (or any fault/view) here to choose what the deceived
    receivers are told. *)

val served_forked : t -> int
(** How many gossip pulls were answered with the shadow log so far. *)

val served_honest : t -> int

val apply : t -> Gossip.t -> unit
(** Install the override on the mesh.  Raises [Invalid_argument] if the
    mesh has no vantage [name], or if the shadow's transparency key
    differs from the vantage's (the equivocation would be caught as a bad
    signature, not a fork). *)

val lift : t -> Gossip.t -> unit
(** Return the vantage to honest serving and pulling. *)

val describe : t -> string
