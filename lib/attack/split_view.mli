(** The split-view ("mirror world") adversary: an authority that serves a
    forked copy of its own publication point to one targeted relying-party
    vantage while everyone else keeps seeing the honest contents.

    This is the end of the paper's stealth spectrum: {!Whack} changes what
    everyone sees, {!Stall} only delays, but a split view is — per vantage —
    indistinguishable from legitimate operation.  Under [Stealthy] the
    authority re-signs the manifest over the reduced listing with its own
    keys, reusing the honest manifest number and validity windows, so the
    victim's local validation is perfectly clean; the targeted ROA's VRPs
    simply never materialize at that vantage.  Detection requires comparing
    observations {e across} vantages, which is what the transparency log
    plus {!Rpki_repo.Gossip} provide: the fork necessarily yields two
    verifiable observations with the same (publication point, manifest
    number) key and different content.

    The fork is installed as a per-URI view on the victim's {!Transport}
    ({!Rpki_repo.Transport.set_view}) — the out-of-band rsync delivery model
    means the repository chooses per client what to serve. *)

open Rpki_repo

type stealth =
  | Overt     (** drop the file but keep the honest manifest: the victim's
                  own validation reports it missing *)
  | Stealthy  (** re-sign the manifest over the reduced listing: locally
                  clean, only cross-vantage comparison can catch it *)

val stealth_to_string : stealth -> string

type t
(** An immutable split-view campaign: authority, target file, stealth. *)

val plan :
  authority:Authority.t -> target_filename:string -> ?stealth:stealth -> unit -> t
(** Fork the authority's publication point by suppressing
    [target_filename] (default [Stealthy]).  Raises [Invalid_argument] if
    the authority does not currently publish that file. *)

val uri : t -> string
(** The forked publication point's URI. *)

val target : t -> string
val stealth : t -> stealth

val apply : t -> Transport.t -> unit
(** Serve the fork to whoever fetches through this transport.  The forked
    listing is recomputed per fetch from the authority's current honest
    contents, so it tracks legitimate republishes. *)

val lift : t -> Transport.t -> unit
(** Stop discriminating: the transport sees honest contents again. *)

val describe : t -> string
