(* The split-view ("mirror world") adversary: a misbehaving authority that
   shows one RPKI to its victim and another to the rest of the world.

   Whack changes what an authority publishes for *everyone*; Stall changes
   nothing but the transport.  Split_view is the stealthiest point in that
   design space: the authority (which holds all the keys) serves a forked
   copy of its own publication point to a single targeted relying-party
   vantage — the victim's ROA deleted, everything re-signed — while every
   other vantage keeps receiving the honest contents.  No single vantage
   can distinguish the fork from legitimate change: both views are
   internally consistent, properly signed, and fresh.

   The fork is installed as a per-URI view on the *victim's* transport
   (Transport.set_view): the paper's out-of-band rsync delivery means the
   repository decides per-client what to serve, so discriminating by
   requester costs the authority nothing.

   Detection is the transparency layer's job: the fork necessarily creates
   two observations with the same (publication point, manifest number) key
   and different content hashes, one in the victim's log and one in any
   honest vantage's — which gossip turns into verifiable fork evidence.

   Two stealth levels:
   - [Overt]: the target file is dropped from the served listing but the
     manifest still lists it, so the victim's own validation reports a
     missing-from-manifest issue — locally visible misbehavior.
   - [Stealthy]: the manifest is re-signed by the authority over the
     reduced listing, reusing the honest manifest number, windows and EE
     serial.  The victim sees a perfectly clean point; only cross-vantage
     comparison can catch it. *)

open Rpki_core
open Rpki_crypto
open Rpki_repo

type stealth = Overt | Stealthy

let stealth_to_string = function Overt -> "overt" | Stealthy -> "stealthy"

type t = {
  authority : Authority.t;
  target_filename : string;
  stealth : stealth;
  rng : Rpki_util.Rng.t; (* entropy for manifest re-signing *)
}

let plan ~authority ~target_filename ?(stealth = Stealthy) () =
  if not (Pub_point.mem (Authority.pub authority) ~filename:target_filename) then
    invalid_arg
      (Printf.sprintf "Split_view.plan: %s does not publish %s" (Authority.name authority)
         target_filename);
  { authority; target_filename; stealth;
    rng =
      Drbg.to_rng
        (Drbg.create ~seed:("split-view:" ^ Authority.name authority ^ ":" ^ target_filename)) }

let uri t = Pub_point.uri (Authority.pub t.authority)
let target t = t.target_filename
let stealth t = t.stealth

(* The mirror world, recomputed per fetch so it tracks the honest view:
   whatever the authority currently publishes, minus the target — and under
   [Stealthy], with the manifest re-signed by the authority's own keys at
   the honest manifest number, so the fork is locally indistinguishable
   from the genuine article. *)
let forked_listing t () =
  let pub = Authority.pub t.authority in
  let mft_name = Authority.manifest_filename t.authority in
  let files = List.remove_assoc t.target_filename (Pub_point.snapshot pub) in
  match t.stealth with
  | Overt -> files
  | Stealthy -> (
    match List.assoc_opt mft_name files with
    | None -> files
    | Some mft_bytes -> (
      match Manifest.decode mft_bytes with
      | Error _ -> files
      | Ok honest ->
        let listed = List.filter (fun (name, _) -> name <> mft_name) files in
        let forked =
          Manifest.issue
            ~ca_key:(Authority.key t.authority).Rsa.private_
            ~ca_subject:(Authority.name t.authority)
            ~serial:honest.Manifest.ee.Cert.serial
            ~rng:t.rng
            ~ee_key:(Authority.ee_key t.authority)
            ~manifest_number:honest.Manifest.manifest_number
            ~this_update:honest.Manifest.this_update
            ~next_update:honest.Manifest.next_update
            ~files:listed ()
        in
        List.sort
          (fun (a, _) (b, _) -> compare a b)
          ((mft_name, Manifest.encode forked) :: listed)))

(* Install the fork on the victim's transport.  Only that vantage sees the
   mirror world; every other transport keeps serving the honest listing. *)
let apply t transport = Transport.set_view transport ~uri:(uri t) (forked_listing t)

let lift t transport = Transport.clear_view transport ~uri:(uri t)

let describe t =
  Printf.sprintf "split-view (%s) of %s: victim is served %s without %s"
    (stealth_to_string t.stealth) (Authority.name t.authority) (uri t) t.target_filename
