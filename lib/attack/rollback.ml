(* The rollback adversary: replaying a genuinely old repository state to a
   relying party that restarted.

   This is *not* equivocation.  Split_view forges a second present; Rollback
   serves an authentic past — a byte-for-byte capture of the authority's
   publication point from before a revocation, old manifest (with its old,
   lower manifest number), old signatures, old everything.  Nothing about
   the served bytes is invalid; they were the truth once, and may even still
   be within their validity windows.

   That is why the fresh-start oracle matters (the gap this PR closes): a
   victim whose transparency log died with its process has no baseline —
   to it the replayed past is simply the current state of the world, and
   content cross-checks with peers agree: honest vantages recorded exactly
   these bytes under exactly this manifest number back when they were
   current.  Only *history* contradicts the replay: a persisted own log
   whose latest manifest number for the point is higher (a local
   Serial_regression at the first sync), or peers' persisted memory of the
   victim's log / the point's serial line (a gossip Rollback alarm).

   Like Split_view, the replay is installed as a per-URI view on the
   victim's transport: the repository (or a coerced parent, or an on-path
   attacker for unauthenticated rsync) decides per-client what to serve. *)

open Rpki_repo

type t = {
  authority : Authority.t;
  mutable captured : (string * string) list option; (* the frozen past *)
  mutable captured_at : int;
}

let plan ~authority = { authority; captured = None; captured_at = 0 }

let uri t = Pub_point.uri (Authority.pub t.authority)

(* Freeze the authority's current publication-point state verbatim.  Called
   while the state is still honest (pre-revocation): this is the past the
   adversary will later replay. *)
let capture t ~now =
  t.captured <- Some (Pub_point.snapshot (Authority.pub t.authority));
  t.captured_at <- now

let captured t = t.captured <> None
let captured_at t = t.captured_at

(* Serve the frozen capture to the victim.  Unlike Split_view's listing the
   view does not track the honest state — replaying the past means serving
   the same stale bytes forever. *)
let apply t transport =
  match t.captured with
  | None -> invalid_arg "Rollback.apply: nothing captured (call capture first)"
  | Some files -> Transport.set_view transport ~uri:(uri t) (fun () -> files)

let lift t transport = Transport.clear_view transport ~uri:(uri t)

let describe t =
  match t.captured with
  | None -> Printf.sprintf "rollback of %s: nothing captured yet" (uri t)
  | Some files ->
    Printf.sprintf
      "rollback of %s: victim is served the authentic %d-file state captured @t%d"
      (uri t) (List.length files) t.captured_at
