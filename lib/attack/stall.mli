(** The Stalloris-style stalling adversary (Hlavacek et al., USENIX Security
    2022, in this paper's misbehaving-authority setting).

    Where {!Whack} manipulates repository {e content}, Stall manipulates the
    {e transport}: targeted publication points are served at a trickle —
    every request would complete, but only after [intensity] times the
    honest transfer time, which a sane per-request timeout cuts short.
    Against a relying party with patient timeouts and eager retries
    ({!Rpki_repo.Relying_party.naive_policy}) one stalled point exhausts the
    sync budget, the rest of the RPKI goes unfetched, and once cached
    objects' validity windows lapse the RP degrades toward an empty VRP set
    — an RPKI downgrade without touching a single signed object.  Bounded
    retries plus mirror/RRDP fallback
    ({!Rpki_repo.Relying_party.resilient_policy}) confine the damage. *)

open Rpki_repo

type t
(** An immutable stalling campaign: targets plus intensity. *)

val plan : targets:string list -> intensity:int -> t
(** Throttle the given publication-point URIs by [intensity] (transfer-time
    multiplier, >= 1).  Raises [Invalid_argument] on an empty target list or
    nonsensical intensity. *)

val plan_against : victim:Authority.t -> intensity:int -> t
(** Target the victim authority's whole subtree: its publication point and
    every descendant's — the points a relying party must keep fresh for the
    victim's ROAs to stay validated. *)

val targets : t -> string list
val intensity : t -> int

val apply : t -> Transport.t -> unit
(** Install a [Stalling intensity] fault on every target. *)

val lift : t -> Transport.t -> unit
(** End the campaign.  Only faults this plan installed are cleared; a fault
    someone else re-marked meanwhile is left alone. *)

val describe : t -> string
