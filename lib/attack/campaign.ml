(* Censorship campaigns: many targeted whacks with one objective.

   The paper's motivation is state-sponsored coercion — "centralized
   authorities are an easy target for lawful (or extralegal) coercion by
   state-sponsored actors seeking to impose censorship".  A coerced
   authority rarely wants one ROA gone; it wants an AS, a network, or a
   whole country off the map.  This module plans such campaigns as a set of
   single-ROA whacks (plus direct revocations for the manipulator's own
   ROAs), and reports what the campaign costs in reissued objects — the
   paper's detectability currency. *)

open Rpki_core
open Rpki_repo
open Rpki_ip

type objective =
  | Target_asns of int list       (* silence these origin ASes *)
  | Target_space of V4.Set.t      (* silence everything in this space *)

let roa_matches objective (roa : Roa.t) =
  match objective with
  | Target_asns asns -> List.mem roa.Roa.asid asns
  | Target_space space -> V4.Set.overlaps (Roa.resources roa).Resources.v4 space

type step =
  | Whack_step of Whack.plan
  | Revoke_own of { filename : string; roa : Roa.t }

type plan = {
  objective : objective;
  steps : step list;
  unplannable : (string * string * string) list; (* issuer, filename, reason *)
}

let objective_to_string = function
  | Target_asns asns ->
    Printf.sprintf "silence AS%s" (String.concat ", AS" (List.map string_of_int asns))
  | Target_space space -> Printf.sprintf "silence [%s]" (V4.Set.to_string space)

(* Enumerate every matching ROA below (or at) the manipulator and plan its
   removal. *)
let plan ~(manipulator : Authority.t) ~objective =
  let own =
    List.filter_map
      (fun (filename, roa) ->
        if roa_matches objective roa then Some (Revoke_own { filename; roa }) else None)
      (Authority.roas manipulator)
  in
  let steps = ref own in
  let unplannable = ref [] in
  Authority.iter_descendants manipulator ~f:(fun issuer ->
      List.iter
        (fun (filename, roa) ->
          if roa_matches objective roa then begin
            match
              Whack.plan_targeted ~manipulator ~target_issuer:(Authority.name issuer)
                ~target_filename:filename
            with
            | p -> steps := Whack_step p :: !steps
            | exception Whack.Cannot_whack reason ->
              unplannable := ((Authority.name issuer), filename, reason) :: !unplannable
          end)
        (Authority.roas issuer));
  { objective; steps = List.rev !steps; unplannable = List.rev !unplannable }

let targets plan =
  List.map
    (function
      | Whack_step p -> p.Whack.target
      | Revoke_own { roa; _ } -> roa)
    plan.steps

(* Reissued objects the campaign requires — the paper's detectability cost. *)
let reissue_count plan =
  List.fold_left
    (fun acc step ->
      match step with Whack_step p -> acc + List.length p.Whack.reissues | Revoke_own _ -> acc)
    0 plan.steps

(* Execute every step.  Whack plans are re-derived against current state
   because earlier steps change the hierarchy (shrunken RCs shift the atoms
   available to later ones). *)
let execute ~(manipulator : Authority.t) (c : plan) ~now =
  let executed = ref 0 and failed = ref [] in
  List.iter
    (fun step ->
      match step with
      | Revoke_own { filename; _ } ->
        Authority.revoke_roa manipulator ~filename ~now;
        incr executed
      | Whack_step p -> (
        match
          Whack.plan_targeted ~manipulator ~target_issuer:p.Whack.target_issuer
            ~target_filename:p.Whack.target_filename
        with
        | fresh ->
          ignore (Whack.execute ~manipulator fresh ~now);
          incr executed
        | exception Whack.Cannot_whack reason ->
          failed := (p.Whack.target_issuer, p.Whack.target_filename, reason) :: !failed))
    c.steps;
  (!executed, List.rev !failed)

let describe (c : plan) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "campaign: %s\n" (objective_to_string c.objective));
  List.iter
    (fun step ->
      match step with
      | Revoke_own { roa; _ } ->
        Buffer.add_string buf (Printf.sprintf "  revoke own %s\n" (Roa.to_string roa))
      | Whack_step p ->
        Buffer.add_string buf
          (Printf.sprintf "  whack %s at %s (%d reissues)\n" (Roa.to_string p.Whack.target)
             p.Whack.target_issuer
             (List.length p.Whack.reissues)))
    c.steps;
  List.iter
    (fun (issuer, filename, reason) ->
      Buffer.add_string buf (Printf.sprintf "  CANNOT whack %s/%s: %s\n" issuer filename reason))
    c.unplannable;
  Buffer.contents buf

(* --- bridging the jurisdiction dataset to a live hierarchy --- *)

(* Build a real certificate hierarchy from an allocation dataset: one trust
   anchor per RIR present, one holder CA per RC record, one ROA per
   suballocation.  This is what lets Table 4's "can whack" become an
   executable "does whack". *)
let hierarchy_of_dataset ?(now = Rtime.epoch) (records : Rpki_juris.Dataset.rc_record list) =
  let universe = Universe.create () in
  let rirs =
    List.sort_uniq compare (List.map (fun (r : Rpki_juris.Dataset.rc_record) -> r.Rpki_juris.Dataset.parent_rir) records)
  in
  let rir_tas =
    List.map
      (fun rir ->
        let name = Rpki_juris.Country.rir_to_string rir in
        let resources =
          (* the union of the member RCs' space, rounded up to /8s *)
          let v4 =
            V4.Set.of_prefixes
              (List.concat_map
                 (fun (r : Rpki_juris.Dataset.rc_record) ->
                   if r.Rpki_juris.Dataset.parent_rir = rir then
                     [ V4.Prefix.make (V4.Prefix.addr r.Rpki_juris.Dataset.rc_prefix) 8 ]
                   else [])
                 records)
          in
          Resources.make ~v4 ()
        in
        let ta =
          Authority.create_trust_anchor ~name ~resources
            ~uri:(Printf.sprintf "rsync://rpki.%s.net/repo" (String.lowercase_ascii name))
            ~addr:(199 lsl 24) ~host_asn:3856 ~now ~universe ()
        in
        (rir, ta))
      rirs
  in
  let holders =
    List.mapi
      (fun i (r : Rpki_juris.Dataset.rc_record) ->
        let ta = List.assoc r.Rpki_juris.Dataset.parent_rir rir_tas in
        let name = Printf.sprintf "%s-%d" r.Rpki_juris.Dataset.holder i in
        let holder =
          Authority.create_child ta ~name
            ~resources:(Resources.make ~v4:(V4.Set.of_prefix r.Rpki_juris.Dataset.rc_prefix) ())
            ~uri:(Printf.sprintf "rsync://repo-%d.example/repo" i)
            ~addr:(V4.Prefix.addr r.Rpki_juris.Dataset.rc_prefix + 1)
            ~host_asn:(20000 + i) ~now ~universe ()
        in
        List.iter
          (fun (s : Rpki_juris.Dataset.suballocation) ->
            ignore
              (Authority.issue_simple_roa holder ~asid:s.Rpki_juris.Dataset.customer_as
                 ~prefix:s.Rpki_juris.Dataset.sub_prefix ~now ()))
          r.Rpki_juris.Dataset.suballocations;
        (r, holder))
      records
  in
  (universe, rir_tas, holders)

(* The AS numbers serving a given country in the dataset. *)
let asns_of_country (records : Rpki_juris.Dataset.rc_record list) country =
  List.sort_uniq Int.compare
    (List.concat_map
       (fun (r : Rpki_juris.Dataset.rc_record) ->
         List.filter_map
           (fun (s : Rpki_juris.Dataset.suballocation) ->
             if s.Rpki_juris.Dataset.country = country then Some s.Rpki_juris.Dataset.customer_as
             else None)
           r.Rpki_juris.Dataset.suballocations)
       records)
