(** The rollback adversary: replay a genuinely old publication-point state
    to a restarted relying-party vantage.

    Unlike {!Split_view}, nothing is forged: the adversary captures the
    authority's honest state before a revocation and later serves those
    authentic bytes — old manifest number, old signatures — to the victim.
    A victim with no persisted transparency baseline (the fresh-start
    oracle) accepts the past as the present, and content cross-checks with
    peers agree, because honest vantages once recorded exactly this state.
    Detection requires {e history}: a restored own log (local
    {!Rpki_repo.Relying_party.regression}) or peers' memory of the point's
    serial line (a gossip {!Rpki_repo.Gossip.alarm.Rollback}). *)

open Rpki_repo

type t

val plan : authority:Authority.t -> t
(** Target an authority's publication point.  Nothing is captured yet. *)

val uri : t -> string

val capture : t -> now:int -> unit
(** Freeze the authority's current publication-point state verbatim — the
    past that will be replayed.  Call while the state is still honest
    (before the revocation the adversary wants undone). *)

val captured : t -> bool
val captured_at : t -> int

val apply : t -> Transport.t -> unit
(** Serve the frozen capture to the victim whose transport this is.  Raises
    [Invalid_argument] if nothing was captured. *)

val lift : t -> Transport.t -> unit

val describe : t -> string
