(* The whacking engine: Section 3 of the paper.

   "We say that an RPKI manipulator *whacks* a target ROA" — by revocation,
   stealthy deletion, or the targeted RC-shrinking attacks of Section 3.1.
   This module plans and executes all of them against a live authority
   hierarchy, and predicts collateral damage before acting (the deterrent
   the paper says overt revocation carries).

   Planning for the targeted attack:
     1. let T be the target ROA's address space;
     2. find a sliver S of T that overlaps no *other* object hanging off the
        certification path from the manipulator down to the target's issuer
        (an "atom" of T under those objects), minimizing overlap otherwise;
     3. for every object that S unavoidably damages, schedule a reissue
        "as the manipulator's own" (make-before-break): sibling ROAs are
        re-signed by the manipulator; intermediate RCs on the path are
        re-certified directly under the manipulator with S carved out;
     4. finally overwrite the manipulator's child RC with S carved out.

   A grandchild target needs no RC reissues (Side Effect 3); deeper targets
   need one reissued RC per extra level (Side Effect 4), which is the
   paper's point about detectability. *)

open Rpki_core
open Rpki_repo
open Rpki_ip

type reissue =
  | Reissue_roa of { asid : int; v4_entries : Roa.v4_entry list; original_issuer : string }
  | Reissue_rc of { subject : string; new_resources : Resources.t }

type plan = {
  manipulator : string;
  child : string;             (* the manipulator's direct child whose RC shrinks *)
  path : string list;         (* authorities from child down to the target's issuer *)
  target_issuer : string;
  target_filename : string;
  target : Roa.t;
  sliver : V4.Set.t;          (* address space carved out of the chain *)
  shrink_child_to : Resources.t;
  reissues : reissue list;
  unavoidable_damage : string list; (* descriptions of objects S overlaps *)
}

(* Only objects that currently validate can suffer collateral damage: a ROA
   whose space has already been carved out of its issuer's RC is dead, so it
   is neither an obstacle nor worth reissuing.  (Relevant when chaining
   whacks, as in a censorship campaign.) *)
let roa_live (authority : Authority.t) (roa : Roa.t) =
  Resources.subset (Roa.resources roa) (Authority.cert authority).Cert.resources

let rc_live (authority : Authority.t) (child : Authority.t) =
  Resources.subset (Authority.cert child).Cert.resources (Authority.cert authority).Cert.resources

(* All non-path live objects issued by [authority], as (description, v4 space). *)
let sibling_spaces (authority : Authority.t) ~except_child ~except_roa =
  let roas =
    List.filter_map
      (fun (filename, roa) ->
        if Some filename = except_roa || not (roa_live authority roa) then None
        else
          Some
            ( Printf.sprintf "ROA %s by %s" (Roa.to_string roa) (Authority.name authority),
              (Roa.resources roa).Resources.v4 ))
      (Authority.roas authority)
  in
  let rcs =
    List.filter_map
      (fun (c : Authority.t) ->
        if Some (Authority.name c) = except_child || not (rc_live authority c) then None
        else
          Some
            ( Printf.sprintf "RC %s by %s" (Authority.name c) (Authority.name authority),
              (Authority.cert c).Cert.resources.Resources.v4 ))
      (Authority.children authority)
  in
  roas @ rcs

(* Split [space] into atoms by the given (description, set) obstacles; each
   atom carries the obstacles it overlaps. *)
let atoms space obstacles =
  List.fold_left
    (fun atoms (desc, obs) ->
      List.concat_map
        (fun (s, damaged) ->
          let hit = V4.Set.inter s obs in
          let clear = V4.Set.diff s obs in
          (if V4.Set.is_empty hit then [] else [ (hit, desc :: damaged) ])
          @ if V4.Set.is_empty clear then [] else [ (clear, damaged) ])
        atoms)
    [ (space, []) ] obstacles

(* The chain of authorities from [manipulator] (exclusive) down to
   [target_issuer] (inclusive). *)
let path_to ~(manipulator : Authority.t) ~(target_issuer : string) =
  let rec go (a : Authority.t) =
    if (Authority.name a) = target_issuer then Some [ a ]
    else
      List.find_map (fun c -> Option.map (fun rest -> a :: rest) (go c)) (Authority.children a)
  in
  List.find_map go (Authority.children manipulator)

exception Cannot_whack of string

(* Build the targeted-whack plan.  Raises [Cannot_whack] when the target is
   not a strict descendant's ROA. *)
let plan_targeted ~(manipulator : Authority.t) ~(target_issuer : string) ~(target_filename : string) =
  if (Authority.name manipulator) = target_issuer then
    raise
      (Cannot_whack "target is the manipulator's own ROA; use revoke/stealth-delete instead");
  let path =
    match path_to ~manipulator ~target_issuer with
    | Some p -> p
    | None ->
      raise
        (Cannot_whack
           (Printf.sprintf "%s is not a descendant of %s" target_issuer
              (Authority.name manipulator)))
  in
  let issuer = List.nth path (List.length path - 1) in
  let target =
    match List.assoc_opt target_filename (Authority.roas issuer) with
    | Some r -> r
    | None -> raise (Cannot_whack (Printf.sprintf "no ROA %s at %s" target_filename target_issuer))
  in
  let target_space = (Roa.resources target).Resources.v4 in
  if V4.Set.is_empty target_space then raise (Cannot_whack "target ROA has no IPv4 space");
  (* obstacles: at each path level, the objects that are neither the next
     path RC nor the target itself *)
  let obstacles =
    List.concat
      (List.mapi
         (fun i (a : Authority.t) ->
           let next_child =
             if i + 1 < List.length path then Some (Authority.name (List.nth path (i + 1)))
             else None
           in
           let except_roa = if i = List.length path - 1 then Some target_filename else None in
           sibling_spaces a ~except_child:next_child ~except_roa)
         path)
  in
  let candidate_atoms = atoms target_space obstacles in
  (* fewest damaged obstacles; ties broken toward smaller slivers *)
  let best =
    List.fold_left
      (fun best (s, damaged) ->
        match best with
        | None -> Some (s, damaged)
        | Some (_, bd) when List.length damaged < List.length bd -> Some (s, damaged)
        | Some _ -> best)
      None candidate_atoms
  in
  let sliver_space, damaged =
    match best with Some x -> x | None -> raise (Cannot_whack "empty atom decomposition")
  in
  (* carve just one minimal prefix out of the chosen atom — the paper's
     example removes a single /24, the finest granularity that matters to
     globally-routable BGP *)
  let sliver =
    match V4.Set.to_prefixes sliver_space with
    | [] -> raise (Cannot_whack "empty sliver")
    | ps ->
      let longest = List.fold_left (fun m p -> max m (V4.Prefix.len p)) 0 ps in
      let p = List.find (fun p -> V4.Prefix.len p = longest) ps in
      let p =
        if V4.Prefix.len p >= 24 then p else V4.Prefix.make (V4.Prefix.addr p) 24
      in
      V4.Set.of_prefix p
  in
  let child = List.hd path in
  (* reissues: intermediate RCs (everything on the path below the child) get
     re-certified under the manipulator with the sliver carved out ... *)
  let rc_reissues =
    List.map
      (fun (a : Authority.t) ->
        Reissue_rc
          { subject = (Authority.name a);
            new_resources =
              { (Authority.cert a).Cert.resources with
                Resources.v4 = V4.Set.diff (Authority.cert a).Cert.resources.Resources.v4 sliver } })
      (List.tl path)
  in
  (* ... and damaged sibling ROAs get re-signed by the manipulator *)
  let damaged_roa_reissues =
    List.concat_map
      (fun (a : Authority.t) ->
        List.filter_map
          (fun (filename, roa) ->
            if (filename = target_filename && (Authority.name a) = target_issuer)
               || not (roa_live a roa)
            then None
            else if V4.Set.overlaps (Roa.resources roa).Resources.v4 sliver then
              Some
                (Reissue_roa
                   { asid = roa.Roa.asid; v4_entries = roa.Roa.v4_entries;
                     original_issuer = (Authority.name a) })
            else None)
          (Authority.roas a))
      path
  in
  let shrink_child_to =
    { (Authority.cert child).Cert.resources with
      Resources.v4 = V4.Set.diff (Authority.cert child).Cert.resources.Resources.v4 sliver }
  in
  { manipulator = (Authority.name manipulator);
    child = (Authority.name child);
    path = List.map (fun (a : Authority.t) -> (Authority.name a)) path;
    target_issuer;
    target_filename;
    target;
    sliver;
    shrink_child_to;
    reissues = rc_reissues @ damaged_roa_reissues;
    unavoidable_damage = damaged }

(* Make-before-break is needed exactly when something must be reissued. *)
let needs_make_before_break plan = plan.reissues <> []

(* Execute: reissues first (make before...), then the RC overwrite
   (...break). *)
let execute ~(manipulator : Authority.t) (plan : plan) ~now =
  if (Authority.name manipulator) <> plan.manipulator then
    invalid_arg "Whack.execute: wrong manipulator";
  let reissued =
    List.map
      (fun r ->
        match r with
        | Reissue_roa { asid; v4_entries; _ } ->
          let filename, _ = Authority.issue_roa manipulator ~asid ~v4_entries ~now () in
          `Roa filename
        | Reissue_rc { subject; new_resources } -> (
          match Authority.find_descendant manipulator ~name:subject with
          | None -> raise (Cannot_whack ("lost descendant " ^ subject))
          | Some a ->
            let filename, _ =
              Authority.certify_key manipulator ~subject ~public_key:(Authority.key a).Rpki_crypto.Rsa.public
                ~resources:new_resources ~repo_uri:(Pub_point.uri (Authority.pub a))
                ~manifest_uri:(subject ^ ".mft") ~now
            in
            `Rc filename))
      plan.reissues
  in
  let child =
    match
      List.find_opt (fun (c : Authority.t) -> (Authority.name c) = plan.child)
        (Authority.children manipulator)
    with
    | Some c -> c
    | None -> raise (Cannot_whack ("lost child " ^ plan.child))
  in
  let _ = Authority.shrink_child_cert manipulator child ~resources:plan.shrink_child_to ~now in
  reissued

let describe (plan : plan) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "whack plan: %s -> %s (issued by %s)\n" plan.manipulator
       (Roa.to_string plan.target) plan.target_issuer);
  Buffer.add_string buf
    (Printf.sprintf "  path: %s\n" (String.concat " -> " (plan.manipulator :: plan.path)));
  Buffer.add_string buf (Printf.sprintf "  carve out: %s\n" (V4.Set.to_string plan.sliver));
  Buffer.add_string buf
    (Printf.sprintf "  shrink %s's RC to: %s\n" plan.child
       (Resources.to_string plan.shrink_child_to));
  if plan.reissues = [] then Buffer.add_string buf "  no reissues needed (clean whack)\n"
  else
    List.iter
      (fun r ->
        match r with
        | Reissue_roa { asid; v4_entries; original_issuer } ->
          Buffer.add_string buf
            (Printf.sprintf "  reissue ROA (%s, AS%d) originally by %s\n"
               (String.concat ", "
                  (List.map
                     (fun (e : Roa.v4_entry) -> V4.Prefix.to_string e.Roa.prefix)
                     v4_entries))
               asid original_issuer)
        | Reissue_rc { subject; new_resources } ->
          Buffer.add_string buf
            (Printf.sprintf "  reissue RC for %s with [%s]\n" subject
               (Resources.to_string new_resources)))
      plan.reissues;
  Buffer.contents buf
