(* Synthesizing an RPKI universe onto a generated AS graph.

   The paper's model world (Figure 2) is four authorities over a fixed
   topology; this module builds the same kind of world at any size.  Given
   an {!Rpki_bgp.As_graph} the synthesis:

   - allocates address space proportionally to customer-cone size: a
     spanning tree of the provider DAG (every AS hangs off its
     largest-cone provider) is walked in preorder, handing each AS one /24
     out of 10.0.0.0/8 and each subtree a contiguous range — so an ISP's
     allocation covers exactly its customers', like RIR address delegation;

   - raises a CA hierarchy mirroring the provider hierarchy: one RIR-like
     trust anchor, a CA for every tier-1 and for every transit AS whose
     subtree is big enough ([ca_min_cone]), each certified for its subtree
     range, each publishing at a repository hosted in its own /24 — the
     Section 6 circularity (repository reachability depends on objects the
     repository serves) reproduced at scale;

   - issues ROAs for a configurable fraction of ASes ([roa_coverage] — the
     real RPKI covers only part of the routing table), each signed by the
     nearest ancestor CA; the chosen victim additionally gets a covering
     ROA from its CA's ASN (the provider-aggregate / Side Effect 6 shape),
     so suppressing the victim's own ROA turns its route invalid, not
     unknown.

   The fork target, victim and relying-party placement are chosen
   deterministically from the graph: the victim is the deepest stub, the
   relying party the best-connected other stub. *)

open Rpki_core
open Rpki_repo
open Rpki_bgp

type spec = {
  graph : As_graph.spec;
  ca_min_cone : int;       (* transits with a subtree at least this big get CAs *)
  roa_coverage : float;    (* fraction of ASes whose /24 gets a ROA *)
  key_bits : int option;   (* None = Rsa.default_bits *)
  validity : int option;
  refresh_interval : int option;
}

let default_spec =
  { graph = As_graph.default_spec; ca_min_cone = 25; roa_coverage = 0.3;
    key_bits = None; validity = None; refresh_interval = None }

type world = {
  w_spec : spec;
  w_graph : As_graph.t;
  w_universe : Universe.t;
  w_root : Authority.t;                  (* the RIR-like trust anchor *)
  w_cas : (int * Authority.t) list;      (* ascending ASN *)
  w_prefixes : (int, Rpki_ip.V4.Prefix.t) Hashtbl.t;
  w_roas : (int, string) Hashtbl.t;      (* asn -> its own-ROA filename *)
  w_parent : (int, int) Hashtbl.t;       (* spanning-tree parent; tier-1s absent *)
  w_depth : (int, int) Hashtbl.t;        (* tree depth, tier-1 = 1 *)
  w_victim : int;
  w_victim_ca : Authority.t;
  w_victim_roa : string;                 (* the split-view / whack target *)
  w_victim_cover_roa : string;           (* the covering aggregate ROA *)
  w_rp_asn : int;                        (* where the primary relying party sits *)
}

let graph w = w.w_graph
let universe w = w.w_universe
let root w = w.w_root
let cas w = w.w_cas
let victim w = w.w_victim
let victim_ca w = w.w_victim_ca
let victim_roa w = w.w_victim_roa
let rp_asn w = w.w_rp_asn

let prefix_of w asn =
  match Hashtbl.find_opt w.w_prefixes asn with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Synthesis.prefix_of: unknown AS%d" asn)

let roa_of w asn = Hashtbl.find_opt w.w_roas asn

let depth_of w asn = Option.value (Hashtbl.find_opt w.w_depth asn) ~default:0

(* Address arithmetic: /24 number [k] inside 10.0.0.0/8.  Addr.V4.t is an
   int of the address bits. *)
let addr_of ~slot ~host : Rpki_ip.Addr.V4.t =
  (10 lsl 24) lor (slot lsl 8) lor (host land 0xff)

let host_addr w ~asn ~host =
  let p = prefix_of w asn in
  let base : int = Rpki_ip.V4.Prefix.addr p in
  (base land lnot 0xff) lor (host land 0xff)

(* The nearest ancestor CA (self included): every tier-1 has a CA, so the
   walk terminates. *)
let ca_of w asn =
  let rec go asn =
    match List.assoc_opt asn w.w_cas with
    | Some ca -> ca
    | None -> (
      match Hashtbl.find_opt w.w_parent asn with
      | Some p -> go p
      | None -> w.w_root)
  in
  go asn

let announcement_for w asn = { Propagation.prefix = prefix_of w asn; origin = asn }

(* Routes the scenarios need on the data plane: every repository host (the
   CA ASes and the trust anchor's host), the victim's prefix, and the
   relying party's own /24 (its gossip log endpoint lives there).  Kept
   deliberately small — the data plane computes one full RIB per announced
   prefix. *)
let base_announcements w =
  let hosts = List.map fst w.w_cas in
  let root_host = Pub_point.host_asn (Authority.pub w.w_root) in
  let wanted =
    (root_host :: hosts) @ [ w.w_victim; w.w_rp_asn ]
    |> List.sort_uniq Int.compare
  in
  List.map (announcement_for w) wanted

let build ?(now = Rtime.epoch) (spec : spec) : world =
  if spec.graph.As_graph.ases > 65536 then
    invalid_arg "Synthesis.build: more ASes than /24s in 10.0.0.0/8";
  if spec.roa_coverage < 0. || spec.roa_coverage > 1. then
    invalid_arg "Synthesis.build: roa_coverage out of [0,1]";
  let g = As_graph.generate spec.graph in
  let topo = As_graph.topology g in
  (* spanning tree: every non-tier-1 AS hangs off its heaviest provider *)
  let parent = Hashtbl.create 256 in
  let children = Hashtbl.create 256 in
  let tier1s = As_graph.tier1s g in
  List.iter
    (fun asn ->
      match Topology.providers topo asn with
      | [] -> ()
      | ps ->
        let best =
          List.fold_left
            (fun acc p ->
              match acc with
              | None -> Some p
              | Some q ->
                let cp = As_graph.cone_size g p and cq = As_graph.cone_size g q in
                if cp > cq || (cp = cq && p < q) then Some p else Some q)
            None ps
        in
        let p = Option.get best in
        Hashtbl.replace parent asn p;
        Hashtbl.replace children p
          (asn :: Option.value (Hashtbl.find_opt children p) ~default:[]))
    (As_graph.asns g);
  let children_of p =
    Option.value (Hashtbl.find_opt children p) ~default:[] |> List.sort Int.compare
  in
  (* preorder /24 allocation: each subtree gets a contiguous [lo, hi] slot
     range, each AS its own slot *)
  let slot = Hashtbl.create 256 in
  let range = Hashtbl.create 256 in (* asn -> (lo, hi) inclusive *)
  let depth = Hashtbl.create 256 in
  let next = ref 0 in
  let rec alloc asn d =
    Hashtbl.replace slot asn !next;
    Hashtbl.replace depth asn d;
    incr next;
    List.iter (fun c -> alloc c (d + 1)) (children_of asn);
    Hashtbl.replace range asn (Hashtbl.find slot asn, !next - 1)
  in
  List.iter (fun t1 -> alloc t1 1) tier1s;
  let prefixes = Hashtbl.create 256 in
  Hashtbl.iter
    (fun asn s ->
      Hashtbl.replace prefixes asn (Rpki_ip.V4.Prefix.make (addr_of ~slot:s ~host:0) 24))
    slot;
  let subtree_size asn =
    let lo, hi = Hashtbl.find range asn in
    hi - lo + 1
  in
  (* the trust anchor, hosted by the best-connected tier-1 *)
  let root_host = List.hd (List.filter (fun a -> List.mem a tier1s) (As_graph.by_degree g)) in
  let universe = Universe.create () in
  let key_bits = Option.value spec.key_bits ~default:Rpki_crypto.Rsa.default_bits in
  let validity = Option.value spec.validity ~default:Authority.default_validity in
  let refresh_interval =
    Option.value spec.refresh_interval ~default:Authority.default_refresh
  in
  let root =
    Authority.create_trust_anchor ~name:"RIR"
      ~resources:(Resources.of_v4_strings [ "10.0.0.0/8" ])
      ~uri:"rsync://rir.world/repo"
      ~addr:(addr_of ~slot:(Hashtbl.find slot root_host) ~host:10)
      ~host_asn:root_host ~now ~universe ~key_bits ~validity ~refresh_interval ()
  in
  (* CAs: every tier-1, plus transits with a big enough subtree; created in
     preorder so parents exist first *)
  let is_ca asn =
    List.mem asn tier1s
    || (As_graph.role g asn = As_graph.Transit && subtree_size asn >= spec.ca_min_cone)
  in
  let cas = ref [] in
  let rec grow_cas asn (parent_ca : Authority.t) =
    let parent_ca =
      if is_ca asn then begin
        let lo, hi = Hashtbl.find range asn in
        let res =
          Resources.make
            ~v4:
              (Rpki_ip.V4.Set.of_range
                 (Rpki_ip.V4.Range.make (addr_of ~slot:lo ~host:0)
                    (addr_of ~slot:hi ~host:255)))
            ()
        in
        let ca =
          Authority.create_child parent_ca ~name:(Printf.sprintf "AS%d" asn)
            ~resources:res
            ~uri:(Printf.sprintf "rsync://as%d.world/repo" asn)
            ~addr:(addr_of ~slot:(Hashtbl.find slot asn) ~host:10)
            ~host_asn:asn ~now ~universe ~key_bits ~validity ~refresh_interval ()
        in
        cas := (asn, ca) :: !cas;
        ca
      end
      else parent_ca
    in
    List.iter (fun c -> grow_cas c parent_ca) (children_of asn)
  in
  List.iter (fun t1 -> grow_cas t1 root) tier1s;
  let cas = List.sort (fun (a, _) (b, _) -> Int.compare a b) !cas in
  let nearest_ca asn =
    let rec go asn =
      match List.assoc_opt asn cas with
      | Some ca -> ca
      | None -> (
        match Hashtbl.find_opt parent asn with Some p -> go p | None -> root)
    in
    go asn
  in
  (* victim: the deepest stub (ties toward the lower ASN) *)
  let stubs = As_graph.stubs g in
  if stubs = [] then invalid_arg "Synthesis.build: world has no stubs";
  let victim =
    List.fold_left
      (fun acc s ->
        let d = Hashtbl.find depth s in
        match acc with
        | None -> Some (s, d)
        | Some (_, bd) when d > bd -> Some (s, d)
        | acc -> acc)
      None stubs
    |> Option.get |> fst
  in
  (* the relying party: the best-connected other stub (or any other AS) *)
  let rp_asn =
    match List.filter (fun a -> a <> victim && As_graph.role g a = As_graph.Stub)
            (As_graph.by_degree g) with
    | a :: _ -> a
    | [] -> List.hd (List.filter (fun a -> a <> victim) (As_graph.by_degree g))
  in
  (* ROAs: a deterministic [roa_coverage] sample, the victim always in *)
  let cov_rng = Rpki_util.Rng.create (spec.graph.As_graph.seed lxor 0x5eed) in
  let roas = Hashtbl.create 256 in
  List.iter
    (fun asn ->
      if asn = victim || Rpki_util.Rng.float cov_rng < spec.roa_coverage then begin
        let f, _ =
          Authority.issue_simple_roa (nearest_ca asn) ~asid:asn
            ~prefix:(Hashtbl.find prefixes asn) ~now ()
        in
        Hashtbl.replace roas asn f
      end)
    (As_graph.asns g);
  let victim_ca = nearest_ca victim in
  let victim_roa = Hashtbl.find roas victim in
  (* the covering aggregate: the CA's own ASN claims the victim's /24, so
     losing the victim's ROA leaves the route covered-but-invalid (Side
     Effect 6), not unknown-and-routable *)
  let victim_cover_roa, _ =
    Authority.issue_simple_roa victim_ca
      ~asid:(Pub_point.host_asn (Authority.pub victim_ca))
      ~prefix:(Hashtbl.find prefixes victim) ~now ()
  in
  { w_spec = spec; w_graph = g; w_universe = universe; w_root = root; w_cas = cas;
    w_prefixes = prefixes; w_roas = roas; w_parent = parent; w_depth = depth;
    w_victim = victim; w_victim_ca = victim_ca; w_victim_roa = victim_roa;
    w_victim_cover_roa = victim_cover_roa; w_rp_asn = rp_asn }

let summary w =
  Printf.sprintf
    "%s; %d CAs (+1 TA), %d ROAs, victim AS%d (depth %d, CA %s), rp AS%d"
    (As_graph.summary w.w_graph)
    (List.length w.w_cas) (Hashtbl.length w.w_roas) w.w_victim
    (depth_of w w.w_victim)
    (Authority.name w.w_victim_ca)
    w.w_rp_asn
