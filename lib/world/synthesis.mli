(** Synthesizing an RPKI universe onto a generated AS graph.

    The paper's model world (Figure 2) at any size: address space is
    allocated proportionally to customer-cone size (a spanning tree of the
    provider DAG walked in preorder hands each AS one /24 of 10.0.0.0/8 and
    each subtree a contiguous range); a CA hierarchy mirrors the provider
    hierarchy (an RIR-like trust anchor, a CA per tier-1 and per
    big-enough transit, each certified for its subtree range and publishing
    from a repository hosted inside its own /24 — the Section 6
    circularity at scale); ROAs cover a configurable fraction of ASes.

    The designated victim (the deepest stub) always has a ROA {e and} a
    covering aggregate ROA signed to its CA's ASN, so suppressing the
    victim's ROA — the split-view / whack move — turns its route invalid
    rather than unknown (the Side Effect 6 shape). *)

open Rpki_core
open Rpki_repo
open Rpki_bgp

type spec = {
  graph : As_graph.spec;
  ca_min_cone : int;     (** transits with a subtree at least this big get CAs *)
  roa_coverage : float;  (** fraction of ASes whose /24 gets a ROA *)
  key_bits : int option; (** [None] = {!Rpki_crypto.Rsa.default_bits} *)
  validity : int option;
  refresh_interval : int option;
}

val default_spec : spec
(** {!As_graph.default_spec} (1000 ASes), CAs for subtrees of 25+, 30% ROA
    coverage. *)

type world

val build : ?now:Rtime.t -> spec -> world
(** Deterministic in [spec].  Raises [Invalid_argument] on empty-stub
    worlds, more than 65536 ASes, or [roa_coverage] outside [0,1]. *)

val graph : world -> As_graph.t
val universe : world -> Universe.t
val root : world -> Authority.t
(** The RIR-like trust anchor; its TAL seeds the relying parties. *)

val cas : world -> (int * Authority.t) list
(** Host ASN and authority of every CA below the root, ascending ASN. *)

val ca_of : world -> int -> Authority.t
(** The nearest ancestor CA of an AS (itself included) — the issuer of its
    ROA. *)

val prefix_of : world -> int -> Rpki_ip.V4.Prefix.t
(** The /24 allocated to an AS.  Raises [Invalid_argument] on unknown
    ASNs. *)

val roa_of : world -> int -> string option
(** The AS's own-ROA publication filename, when covered. *)

val depth_of : world -> int -> int
(** Spanning-tree depth (tier-1 = 1). *)

val host_addr : world -> asn:int -> host:int -> Rpki_ip.Addr.V4.t
(** An address inside the AS's /24 — repository, monitor-endpoint and probe
    placement. *)

val victim : world -> int
val victim_ca : world -> Authority.t
val victim_roa : world -> string
(** The fork / whack target: the victim's own ROA's publication filename
    at {!victim_ca}'s repository. *)

val rp_asn : world -> int
(** Where the primary relying party sits: the best-connected stub other
    than the victim. *)

val announcement_for : world -> int -> Propagation.announcement
(** The AS originating its own /24. *)

val base_announcements : world -> Propagation.announcement list
(** The routes the scenarios need: every repository-hosting AS, the victim
    and the relying party's AS, each originating its /24.  Kept small: the
    data plane computes one RIB per announced prefix. *)

val summary : world -> string
(** One line: graph shape, CA/ROA counts, victim and RP placement. *)
