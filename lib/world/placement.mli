(** Vantage placement over a generated world.

    Where monitors sit decides how fast a split view is caught: the
    placement policies pick the ASes whose relying parties join the gossip
    mesh. *)

open Rpki_bgp

type policy =
  | By_degree      (** the best-connected ASes first *)
  | By_role        (** round-robin tier-1 / transit / stub, each by degree *)
  | Random of int  (** uniform, seeded — the baseline *)

val policy_to_string : policy -> string

val policy_of_string : string -> policy option
(** ["degree"], ["role"], ["random"] or ["random:<seed>"]. *)

val vantage_asns : As_graph.t -> policy -> count:int -> exclude:int list -> int list
(** The first [count] ASes of the policy's order, [exclude]d ASes skipped.
    Raises [Invalid_argument] when fewer than [count] remain. *)
