(* Vantage placement over a generated world.

   Where monitors sit in the topology decides how fast a split view is
   caught and how expensive gossip pulls are (the routeserver measurement
   literature's point: validation placement determines blast radius).
   Three policies:

   - [By_degree]: the best-connected ASes — realistic for monitors run by
     large ISPs and IXPs, and the configuration the scale bench asserts
     detection under;
   - [By_role]: round-robin tier-1 / transit / stub (each bucket by
     descending degree) — spreads vantages across hierarchy layers;
   - [Random seed]: uniform, the baseline a placement policy must beat. *)

open Rpki_bgp

type policy =
  | By_degree
  | By_role
  | Random of int (* seed *)

let policy_to_string = function
  | By_degree -> "degree"
  | By_role -> "role"
  | Random s -> Printf.sprintf "random:%d" s

let policy_of_string s =
  match String.lowercase_ascii s with
  | "degree" -> Some By_degree
  | "role" -> Some By_role
  | s when String.length s >= 7 && String.sub s 0 7 = "random:" -> (
    match int_of_string_opt (String.sub s 7 (String.length s - 7)) with
    | Some seed -> Some (Random seed)
    | None -> None)
  | "random" -> Some (Random 1)
  | _ -> None

(* Round-robin across role buckets, each bucket by descending degree. *)
let by_role_order (g : As_graph.t) =
  let ordered = As_graph.by_degree g in
  let bucket r = List.filter (fun a -> As_graph.role g a = r) ordered in
  let buckets = [ bucket As_graph.Tier1; bucket As_graph.Transit; bucket As_graph.Stub ] in
  let rec weave = function
    | [] -> []
    | buckets ->
      let heads = List.filter_map (function [] -> None | h :: _ -> Some h) buckets in
      let tails = List.filter_map (function [] | [ _ ] -> None | _ :: t -> Some t) buckets in
      heads @ weave tails
  in
  weave buckets

let vantage_asns (g : As_graph.t) (policy : policy) ~count ~exclude =
  if count < 0 then invalid_arg "Placement.vantage_asns: negative count";
  let order =
    match policy with
    | By_degree -> As_graph.by_degree g
    | By_role -> by_role_order g
    | Random seed ->
      let rng = Rpki_util.Rng.create seed in
      Rpki_util.Rng.shuffle rng (As_graph.asns g)
  in
  let eligible = List.filter (fun a -> not (List.mem a exclude)) order in
  if List.length eligible < count then
    invalid_arg
      (Printf.sprintf "Placement.vantage_asns: only %d eligible ASes for %d vantages"
         (List.length eligible) count);
  List.filteri (fun i _ -> i < count) eligible
