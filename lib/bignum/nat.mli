(** Arbitrary-precision natural numbers.

    Little-endian base-2{^30} limbs in a native int array; the substrate for
    the RSA implementation. Division is Knuth's Algorithm D; multiplication
    switches to Karatsuba above a fixed limb threshold. *)

type t
(** An immutable natural number. *)

val zero : t
val one : t
val two : t

val is_zero : t -> bool

val of_int : int -> t
(** Raises [Invalid_argument] on negatives. *)

val to_int_opt : t -> int option
(** [Some i] when the value fits in a native int. *)

val to_int_exn : t -> int
(** Like {!to_int_opt} but raises [Failure] when it does not fit. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val lt : t -> t -> bool
val le : t -> t -> bool

val num_bits : t -> int
(** Bit width; [num_bits zero = 0]. *)

val testbit : t -> int -> bool
(** [testbit a i] is bit [i], least-significant first. *)

val add : t -> t -> t

val sub : t -> t -> t
(** Raises [Invalid_argument] when the result would be negative. *)

val mul : t -> t -> t
(** Karatsuba above the threshold, schoolbook below. *)

val mul_schoolbook : t -> t -> t
(** Always-quadratic multiplication, exposed for cross-checking. *)

val shift_left : t -> int -> t
val shift_right : t -> int -> t

val divmod : t -> t -> t * t
(** [divmod a b] is [(a / b, a mod b)]. Raises [Division_by_zero]. *)

val div : t -> t -> t
val rem : t -> t -> t

val gcd : t -> t -> t

val pow_mod : base:t -> exp:t -> modulus:t -> t
(** Modular exponentiation.  Odd moduli with non-trivial exponents use a
    4-bit sliding window over Montgomery multiplication; even moduli and
    tiny exponents fall back to {!pow_mod_simple}.  The two always agree.
    Raises [Division_by_zero] on a zero modulus. *)

val pow_mod_simple : base:t -> exp:t -> modulus:t -> t
(** Left-to-right square-and-multiply modular exponentiation — the
    reference implementation, exposed for cross-checking {!pow_mod}.
    Raises [Division_by_zero] on a zero modulus. *)

val succ : t -> t
val pred : t -> t

val of_bytes_be : string -> t
(** Big-endian bytes to natural. *)

val to_bytes_be : t -> string
(** Minimal big-endian encoding; [to_bytes_be zero = "\x00"]. *)

val to_bytes_be_padded : t -> int -> string
(** Fixed-width big-endian, left-padded with zeros.
    Raises [Invalid_argument] when the value is too wide. *)

val of_hex : string -> t
val to_hex : t -> string

val of_decimal : string -> t
(** Raises [Invalid_argument] on non-digit characters or the empty string. *)

val to_decimal : t -> string

val pp : Format.formatter -> t -> unit

val random : Rpki_util.Rng.t -> bound:t -> t
(** Uniform in [\[0, bound)] by rejection sampling. *)

val random_bits : Rpki_util.Rng.t -> bits:int -> t
(** A random natural with exactly [bits] bits (top bit forced on). *)
