(* Arbitrary-precision natural numbers.

   Representation: little-endian array of limbs in base 2^30, with no
   high-order zero limbs (so zero is the empty array).  Base 2^30 keeps every
   intermediate product/carry below 2^62, safely inside OCaml's 63-bit native
   int on 64-bit platforms.

   The implementation favours clarity over micro-optimisation; the only
   algorithmically interesting parts are Knuth's Algorithm D for division and
   Karatsuba multiplication above a fixed threshold. *)

let limb_bits = 30
let base = 1 lsl limb_bits
let mask = base - 1

type t = int array
(* invariant: t = [||] or t.(Array.length t - 1) <> 0; every limb in [0, base) *)

let zero : t = [||]
let is_zero (a : t) = Array.length a = 0

(* Drop high zero limbs to restore the canonical form. *)
let normalize (a : int array) : t =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do decr n done;
  if !n = Array.length a then a else Array.sub a 0 !n

let of_int i =
  if i < 0 then invalid_arg "Nat.of_int: negative";
  if i = 0 then zero
  else if i < base then [| i |]
  else if i < base * base then [| i land mask; i lsr limb_bits |]
  else [| i land mask; (i lsr limb_bits) land mask; i lsr (2 * limb_bits) |]

let one = of_int 1
let two = of_int 2

let to_int_opt (a : t) =
  match Array.length a with
  | 0 -> Some 0
  | 1 -> Some a.(0)
  | 2 -> Some ((a.(1) lsl limb_bits) lor a.(0))
  | 3 when a.(2) < 1 lsl (62 - (2 * limb_bits)) ->
    Some ((a.(2) lsl (2 * limb_bits)) lor (a.(1) lsl limb_bits) lor a.(0))
  | _ -> None

let to_int_exn a =
  match to_int_opt a with
  | Some i -> i
  | None -> failwith "Nat.to_int_exn: does not fit in int"

let compare (a : t) (b : t) =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else
    let rec go i = if i < 0 then 0 else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i) else go (i - 1) in
    go (la - 1)

let equal a b = compare a b = 0
let lt a b = compare a b < 0
let le a b = compare a b <= 0

let num_bits (a : t) =
  let n = Array.length a in
  if n = 0 then 0
  else
    let top = a.(n - 1) in
    let rec width v acc = if v = 0 then acc else width (v lsr 1) (acc + 1) in
    ((n - 1) * limb_bits) + width top 0

let testbit (a : t) i =
  let limb = i / limb_bits and off = i mod limb_bits in
  limb < Array.length a && (a.(limb) lsr off) land 1 = 1

let add (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  let n = max la lb in
  let r = Array.make (n + 1) 0 in
  let carry = ref 0 in
  for i = 0 to n - 1 do
    let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    r.(i) <- s land mask;
    carry := s lsr limb_bits
  done;
  r.(n) <- !carry;
  normalize r

(* [sub a b] requires a >= b. *)
let sub (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  if la < lb then invalid_arg "Nat.sub: negative result";
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if d < 0 then begin
      r.(i) <- d + base;
      borrow := 1
    end else begin
      r.(i) <- d;
      borrow := 0
    end
  done;
  if !borrow <> 0 then invalid_arg "Nat.sub: negative result";
  normalize r

let mul_schoolbook (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.(i) in
      for j = 0 to lb - 1 do
        let cur = (ai * b.(j)) + r.(i + j) + !carry in
        r.(i + j) <- cur land mask;
        carry := cur lsr limb_bits
      done;
      (* propagate the final carry, which may itself overflow a limb *)
      let k = ref (i + lb) in
      while !carry <> 0 do
        let cur = r.(!k) + !carry in
        r.(!k) <- cur land mask;
        carry := cur lsr limb_bits;
        incr k
      done
    done;
    normalize r
  end

let karatsuba_threshold = 32

(* Split [a] at limb position [k] into (low, high). *)
let split_at (a : t) k =
  let n = Array.length a in
  if n <= k then (a, zero)
  else (normalize (Array.sub a 0 k), normalize (Array.sub a k (n - k)))

let shift_limbs (a : t) k =
  if is_zero a then zero
  else begin
    let n = Array.length a in
    let r = Array.make (n + k) 0 in
    Array.blit a 0 r k n;
    r
  end

let rec mul (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  if la < karatsuba_threshold || lb < karatsuba_threshold then mul_schoolbook a b
  else begin
    let k = (max la lb + 1) / 2 in
    let a0, a1 = split_at a k and b0, b1 = split_at b k in
    let z0 = mul a0 b0 in
    let z2 = mul a1 b1 in
    let z1 = sub (mul (add a0 a1) (add b0 b1)) (add z0 z2) in
    add (add z0 (shift_limbs z1 k)) (shift_limbs z2 (2 * k))
  end

let shift_left (a : t) bits =
  if bits < 0 then invalid_arg "Nat.shift_left";
  if is_zero a || bits = 0 then a
  else begin
    let limbs = bits / limb_bits and off = bits mod limb_bits in
    let n = Array.length a in
    let r = Array.make (n + limbs + 1) 0 in
    for i = 0 to n - 1 do
      let v = a.(i) lsl off in
      r.(i + limbs) <- r.(i + limbs) lor (v land mask);
      r.(i + limbs + 1) <- r.(i + limbs + 1) lor (v lsr limb_bits)
    done;
    normalize r
  end

let shift_right (a : t) bits =
  if bits < 0 then invalid_arg "Nat.shift_right";
  if is_zero a || bits = 0 then a
  else begin
    let limbs = bits / limb_bits and off = bits mod limb_bits in
    let n = Array.length a in
    if limbs >= n then zero
    else begin
      let m = n - limbs in
      let r = Array.make m 0 in
      for i = 0 to m - 1 do
        let lo = a.(i + limbs) lsr off in
        let hi = if off > 0 && i + limbs + 1 < n then (a.(i + limbs + 1) lsl (limb_bits - off)) land mask else 0 in
        r.(i) <- lo lor hi
      done;
      normalize r
    end
  end

(* Division by a single limb; returns (quotient, remainder). *)
let divmod_limb (a : t) (d : int) =
  if d <= 0 || d >= base then invalid_arg "Nat.divmod_limb";
  let n = Array.length a in
  let q = Array.make n 0 in
  let r = ref 0 in
  for i = n - 1 downto 0 do
    let cur = (!r lsl limb_bits) lor a.(i) in
    q.(i) <- cur / d;
    r := cur mod d
  done;
  (normalize q, !r)

(* Knuth TAOCP vol. 2, Algorithm D.  Requires [b] non-zero. *)
let divmod (a : t) (b : t) : t * t =
  if is_zero b then raise Division_by_zero;
  if compare a b < 0 then (zero, a)
  else if Array.length b = 1 then begin
    let q, r = divmod_limb a b.(0) in
    (q, of_int r)
  end
  else begin
    (* Normalize so the divisor's top limb has its high bit set. *)
    let shift =
      let top = b.(Array.length b - 1) in
      let rec go v acc = if v >= base / 2 then acc else go (v lsl 1) (acc + 1) in
      go top 0
    in
    let u = shift_left a shift and v = shift_left b shift in
    let n = Array.length v in
    let m = Array.length u - n in
    (* Working copy of u with an extra high limb. *)
    let w = Array.make (Array.length u + 1) 0 in
    Array.blit u 0 w 0 (Array.length u);
    let q = Array.make (m + 1) 0 in
    let vtop = v.(n - 1) in
    let vnext = v.(n - 2) in
    for j = m downto 0 do
      (* Estimate the quotient digit from the top two/three limbs. *)
      let num = (w.(j + n) lsl limb_bits) lor w.(j + n - 1) in
      let qhat = ref (num / vtop) in
      let rhat = ref (num mod vtop) in
      let adjust () =
        while
          !qhat >= base
          || (!qhat * vnext) > ((!rhat lsl limb_bits) lor w.(j + n - 2))
        do
          decr qhat;
          rhat := !rhat + vtop;
          if !rhat >= base then begin
            (* rhat overflowed a limb: the comparison above can no longer
               fail, so stop adjusting. *)
            rhat := base (* sentinel making the guard false *)
          end
        done
      in
      if !rhat < base then adjust ();
      (* Multiply-and-subtract: w[j .. j+n] -= qhat * v. *)
      let borrow = ref 0 and carry = ref 0 in
      for i = 0 to n - 1 do
        let p = (!qhat * v.(i)) + !carry in
        carry := p lsr limb_bits;
        let d = w.(i + j) - (p land mask) - !borrow in
        if d < 0 then begin
          w.(i + j) <- d + base;
          borrow := 1
        end else begin
          w.(i + j) <- d;
          borrow := 0
        end
      done;
      let d = w.(j + n) - !carry - !borrow in
      if d < 0 then begin
        (* qhat was one too large: add v back once. *)
        w.(j + n) <- d + base;
        decr qhat;
        let c = ref 0 in
        for i = 0 to n - 1 do
          let s = w.(i + j) + v.(i) + !c in
          w.(i + j) <- s land mask;
          c := s lsr limb_bits
        done;
        w.(j + n) <- (w.(j + n) + !c) land mask
      end else w.(j + n) <- d;
      q.(j) <- !qhat
    done;
    let rem = normalize (Array.sub w 0 n) in
    (normalize q, shift_right rem shift)
  end

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let rec gcd a b = if is_zero b then a else gcd b (rem a b)

(* Left-to-right square-and-multiply modular exponentiation.  Kept as the
   reference implementation: [pow_mod] below cross-dispatches to it for even
   moduli and tiny exponents, and the test suite checks the two agree. *)
let pow_mod_simple ~base:g ~exp ~modulus:m =
  if is_zero m then raise Division_by_zero;
  if equal m one then zero
  else begin
    let g = rem g m in
    let result = ref one in
    let bits = num_bits exp in
    for i = bits - 1 downto 0 do
      result := rem (mul !result !result) m;
      if testbit exp i then result := rem (mul !result g) m
    done;
    !result
  end

(* --- Montgomery modular arithmetic ---

   For an odd modulus m of n limbs, work with residues x·R mod m where
   R = (2^30)^n.  A Montgomery product computes a·b·R^-1 mod m with plain
   limb arithmetic and shifts — no division — so a modular exponentiation
   pays for one real division (computing R^2 mod m) up front and none in
   the loop.  The CIOS inner products stay below 2^62: a_i·b_j + t_j + c
   <= (2^30-1)^2 + 2·(2^30-1). *)

type mont = {
  mm : int array; (* modulus, fixed width, mn limbs *)
  mn : int;
  m' : int; (* -m^-1 mod 2^30 *)
  r2 : int array; (* R^2 mod m, fixed width *)
}

(* Pad a canonical value (< 2^(30n)) out to a fixed n-limb array. *)
let fixed (a : t) n =
  let r = Array.make n 0 in
  Array.blit a 0 r 0 (Array.length a);
  r

let mont_init (m_nat : t) =
  let mn = Array.length m_nat in
  let m0 = m_nat.(0) in
  (* Hensel-lift the inverse of m0 mod 2^30: x <- x(2 - m0·x) doubles the
     number of correct low bits each round, starting from 3 (odd m0 is its
     own inverse mod 8). *)
  let x = ref m0 in
  for _ = 1 to 5 do
    let y = (2 - (m0 * !x)) land mask in
    x := (!x * y) land mask
  done;
  let m' = (base - !x) land mask in
  let r2 = rem (shift_left one (2 * limb_bits * mn)) m_nat in
  { mm = Array.copy m_nat; mn; m'; r2 = fixed r2 mn }

(* CIOS Montgomery product: a·b·R^-1 mod m, fixed-width in and out. *)
let mont_mul ctx (a : int array) (b : int array) =
  let n = ctx.mn and m = ctx.mm and m' = ctx.m' in
  let t = Array.make (n + 2) 0 in
  for i = 0 to n - 1 do
    let ai = a.(i) in
    let c = ref 0 in
    for j = 0 to n - 1 do
      let s = t.(j) + (ai * b.(j)) + !c in
      t.(j) <- s land mask;
      c := s lsr limb_bits
    done;
    let s = t.(n) + !c in
    t.(n) <- s land mask;
    t.(n + 1) <- t.(n + 1) + (s lsr limb_bits);
    (* fold in u·m with u chosen so the low limb cancels *)
    let u = (t.(0) * m') land mask in
    let c = ref ((t.(0) + (u * m.(0))) lsr limb_bits) in
    for j = 1 to n - 1 do
      let s = t.(j) + (u * m.(j)) + !c in
      t.(j - 1) <- s land mask;
      c := s lsr limb_bits
    done;
    let s = t.(n) + !c in
    t.(n - 1) <- s land mask;
    let s2 = t.(n + 1) + (s lsr limb_bits) in
    t.(n) <- s2 land mask;
    t.(n + 1) <- s2 lsr limb_bits
  done;
  (* t[0..n] < 2m: one conditional subtract restores the range. *)
  let ge_m =
    if t.(n) <> 0 then true
    else begin
      let rec go i =
        if i < 0 then true else if t.(i) <> m.(i) then t.(i) > m.(i) else go (i - 1)
      in
      go (n - 1)
    end
  in
  let r = Array.make n 0 in
  if ge_m then begin
    let borrow = ref 0 in
    for i = 0 to n - 1 do
      let d = t.(i) - m.(i) - !borrow in
      if d < 0 then begin
        r.(i) <- d + base;
        borrow := 1
      end else begin
        r.(i) <- d;
        borrow := 0
      end
    done
  end else Array.blit t 0 r 0 n;
  r

(* 4-bit sliding-window exponentiation over Montgomery products.  Requires
   an odd modulus > 1. *)
let pow_mod_mont ~base:g ~exp ~modulus:m_nat =
  let ctx = mont_init m_nat in
  let n = ctx.mn in
  let gm = mont_mul ctx (fixed (rem g m_nat) n) ctx.r2 in
  (* odd powers g^1, g^3, ..., g^15 in Montgomery form *)
  let g2 = mont_mul ctx gm gm in
  let table = Array.make 8 gm in
  for k = 1 to 7 do
    table.(k) <- mont_mul ctx table.(k - 1) g2
  done;
  let one_f = fixed one n in
  let result = ref (mont_mul ctx ctx.r2 one_f) (* R mod m, i.e. 1 in-domain *) in
  let i = ref (num_bits exp - 1) in
  while !i >= 0 do
    if not (testbit exp !i) then begin
      result := mont_mul ctx !result !result;
      decr i
    end else begin
      (* widest window of <= 4 bits ending on a set bit *)
      let l = ref (max (!i - 3) 0) in
      while not (testbit exp !l) do incr l done;
      let w = ref 0 in
      for j = !i downto !l do
        w := (!w lsl 1) lor (if testbit exp j then 1 else 0)
      done;
      for _ = !l to !i do
        result := mont_mul ctx !result !result
      done;
      result := mont_mul ctx !result table.((!w - 1) / 2);
      i := !l - 1
    end
  done;
  normalize (mont_mul ctx !result one_f)

let pow_mod ~base:g ~exp ~modulus:m =
  if is_zero m then raise Division_by_zero;
  if equal m one then zero
  else if m.(0) land 1 = 1 && num_bits exp >= 8 then pow_mod_mont ~base:g ~exp ~modulus:m
  else pow_mod_simple ~base:g ~exp ~modulus:m

let succ a = add a one
let pred a = sub a one

let of_bytes_be s =
  let r = ref zero in
  String.iter (fun c -> r := add (shift_left !r 8) (of_int (Char.code c))) s;
  !r

let to_bytes_be a =
  if is_zero a then "\x00"
  else begin
    let nbytes = (num_bits a + 7) / 8 in
    String.init nbytes (fun i ->
        let bit = (nbytes - 1 - i) * 8 in
        let limb = bit / limb_bits and off = bit mod limb_bits in
        let lo = a.(limb) lsr off in
        let hi =
          if off > limb_bits - 8 && limb + 1 < Array.length a then a.(limb + 1) lsl (limb_bits - off)
          else 0
        in
        Char.chr ((lo lor hi) land 0xff))
  end

(* Fixed-width big-endian encoding, left-padded with zeros. *)
let to_bytes_be_padded a width =
  let s = to_bytes_be a in
  let s = if equal a zero then "" else s in
  let n = String.length s in
  if n > width then invalid_arg "Nat.to_bytes_be_padded: too wide";
  String.make (width - n) '\x00' ^ s

let of_hex h = of_bytes_be (Rpki_util.Hex.to_string (if String.length h mod 2 = 1 then "0" ^ h else h))

let to_hex a =
  let s = Rpki_util.Hex.of_string (to_bytes_be a) in
  (* strip a single leading zero nibble for canonical output *)
  if String.length s > 1 && s.[0] = '0' then String.sub s 1 (String.length s - 1) else s

let of_decimal s =
  if s = "" then invalid_arg "Nat.of_decimal: empty";
  let r = ref zero in
  String.iter
    (fun c ->
      if c < '0' || c > '9' then invalid_arg "Nat.of_decimal: bad digit";
      r := add (mul !r (of_int 10)) (of_int (Char.code c - Char.code '0')))
    s;
  !r

let to_decimal a =
  if is_zero a then "0"
  else begin
    let buf = Buffer.create 32 in
    let r = ref a in
    while not (is_zero !r) do
      let q, d = divmod_limb !r 10 in
      Buffer.add_char buf (Char.chr (Char.code '0' + d));
      r := q
    done;
    let s = Buffer.contents buf in
    String.init (String.length s) (fun i -> s.[String.length s - 1 - i])
  end

let pp fmt a = Format.pp_print_string fmt (to_decimal a)

(* Uniform random natural in [0, bound) via rejection sampling. *)
let random rng ~bound =
  if is_zero bound then invalid_arg "Nat.random: zero bound";
  let bits = num_bits bound in
  let nbytes = (bits + 7) / 8 in
  let topmask = if bits mod 8 = 0 then 0xff else (1 lsl (bits mod 8)) - 1 in
  let rec go () =
    let b = Bytes.of_string (Rpki_util.Rng.bytes rng nbytes) in
    Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) land topmask));
    let candidate = of_bytes_be (Bytes.to_string b) in
    if lt candidate bound then candidate else go ()
  in
  go ()

(* Random natural with exactly [bits] bits (top bit forced on). *)
let random_bits rng ~bits =
  if bits <= 0 then invalid_arg "Nat.random_bits";
  let nbytes = (bits + 7) / 8 in
  let b = Bytes.of_string (Rpki_util.Rng.bytes rng nbytes) in
  let top_off = (bits - 1) mod 8 in
  let topmask = (1 lsl (top_off + 1)) - 1 in
  Bytes.set b 0 (Char.chr ((Char.code (Bytes.get b 0) land topmask) lor (1 lsl top_off)));
  of_bytes_be (Bytes.to_string b)
