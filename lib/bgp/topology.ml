(* AS-level topology with Gao-Rexford business relationships.

   Customer-provider links form a DAG (enforced at insertion); peering links
   are symmetric.  This is the standard model used by the BGP security
   literature the paper builds on (e.g. Goldberg et al., SIGCOMM'10).

   Membership and cycle checks are O(1)/O(edges): the generated worlds build
   graphs of thousands of ASes, where the original list-based membership
   test made construction quadratic. *)

type rel = Customer | Provider | Peer

type t = {
  mutable asns : int list;               (* insertion order, newest first *)
  members : (int, unit) Hashtbl.t;       (* same set, O(1) membership *)
  providers : (int, int list) Hashtbl.t; (* asn -> its providers *)
  customers : (int, int list) Hashtbl.t; (* asn -> its customers *)
  peers : (int, int list) Hashtbl.t;     (* asn -> its peers *)
  mutable version : int;                 (* bumped on every mutation, so
                                            derived structures can memoize *)
}

let create () =
  { asns = []; members = Hashtbl.create 64; providers = Hashtbl.create 64;
    customers = Hashtbl.create 64; peers = Hashtbl.create 64; version = 0 }

let mem t asn = Hashtbl.mem t.members asn

let add_as t asn =
  if not (mem t asn) then begin
    Hashtbl.replace t.members asn ();
    t.asns <- asn :: t.asns;
    t.version <- t.version + 1
  end

let get tbl asn = Option.value (Hashtbl.find_opt tbl asn) ~default:[]

let providers t asn = get t.providers asn
let customers t asn = get t.customers asn
let peers t asn = get t.peers asn

let asns t = List.sort Int.compare t.asns

let as_count t = Hashtbl.length t.members

let version t = t.version

(* True when [target] is reachable from [from] by walking provider links —
   used to reject provider cycles.  The visited set keeps the walk linear in
   edges; providers in generated graphs are heavily shared, and the naive
   DFS revisits them exponentially often. *)
let reaches_via_providers t ~from ~target =
  let visited = Hashtbl.create 16 in
  let rec go from =
    from = target
    || (not (Hashtbl.mem visited from)
       && begin
            Hashtbl.add visited from ();
            List.exists go (providers t from)
          end)
  in
  go from

let link t ~provider ~customer =
  if provider = customer then invalid_arg "Topology.link: self link";
  if reaches_via_providers t ~from:provider ~target:customer then
    invalid_arg
      (Printf.sprintf "Topology.link: AS%d->AS%d would create a provider cycle" provider customer);
  add_as t provider;
  add_as t customer;
  if not (List.mem provider (providers t customer)) then begin
    Hashtbl.replace t.providers customer (provider :: providers t customer);
    Hashtbl.replace t.customers provider (customer :: customers t provider);
    t.version <- t.version + 1
  end

let peer t a b =
  if a = b then invalid_arg "Topology.peer: self peering";
  add_as t a;
  add_as t b;
  if not (List.mem b (peers t a)) then begin
    Hashtbl.replace t.peers a (b :: peers t a);
    Hashtbl.replace t.peers b (a :: peers t b);
    t.version <- t.version + 1
  end

(* Neighbours with the relationship *of the neighbour to [asn]*:
   (n, Customer) means n is a customer of asn. *)
let neighbours t asn =
  List.map (fun n -> (n, Customer)) (customers t asn)
  @ List.map (fun n -> (n, Peer)) (peers t asn)
  @ List.map (fun n -> (n, Provider)) (providers t asn)

let degree t asn =
  List.length (providers t asn) + List.length (customers t asn)
  + List.length (peers t asn)

let rel_to_string = function Customer -> "customer" | Provider -> "provider" | Peer -> "peer"
