(** Synthetic Internet-like AS topologies.

    A thin front-end over {!As_graph} since the world generator landed:
    [generate] delegates to {!As_graph.tiered} (tier-1 clique, multihomed
    tier-2 ISPs with lateral peerings, stub ASes), and the fixed Table-6
    scenario gains an {!As_graph.of_topology} wrapper.  New code wanting
    internet-scale graphs should use {!As_graph.generate} directly. *)

type spec = {
  tier1 : int;
  tier2 : int;
  stubs : int;
  providers_per_tier2 : int;
  providers_per_stub : int;
  peer_fraction : float;
  seed : int;
}

val default_spec : spec
(** 4 tier-1s, 20 tier-2s, 100 stubs. *)

type generated = {
  topo : Topology.t;
  graph : As_graph.t;  (** the same topology with world-generator metadata
                           (roles, degrees, customer cones) *)
  tier1_asns : int list;
  tier2_asns : int list;
  stub_asns : int list;
}

val generate : spec -> generated
(** Deterministic in [spec.seed]. *)

(** The small fixed topology used by the Table 6 and Section 6 narratives:
    two peered tier-1s, three mid ISPs, a victim, a multihomed source, and
    an attacker homed high in the hierarchy. *)
type small = {
  small_topo : Topology.t;
  t1a : int;
  t1b : int;
  mid1 : int;
  mid2 : int;
  mid3 : int;
  victim : int;   (** AS 17054 *)
  source : int;   (** AS 7018, the observing relying party *)
  attacker : int; (** AS 666 *)
}

val small_scenario : unit -> small

val small_graph : small -> As_graph.t
(** The fixed topology wrapped in world-generator metadata ([t1a]/[t1b]
    classed tier-1). *)
