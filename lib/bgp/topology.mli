(** AS-level topology with Gao-Rexford business relationships.

    Customer-provider links form a DAG (enforced at insertion); peering
    links are symmetric.  The standard model of the BGP-security literature
    the paper builds on. *)

type rel = Customer | Provider | Peer

type t

val create : unit -> t
val mem : t -> int -> bool
val add_as : t -> int -> unit

val providers : t -> int -> int list
val customers : t -> int -> int list
val peers : t -> int -> int list

val asns : t -> int list
(** All ASes, sorted. *)

val as_count : t -> int

val version : t -> int
(** Bumped on every mutation (AS or edge added) — lets derived structures
    (adjacency indexes, graph metadata) detect staleness cheaply. *)

val link : t -> provider:int -> customer:int -> unit
(** Add a customer-provider edge. Raises [Invalid_argument] on self links or
    provider cycles. *)

val peer : t -> int -> int -> unit
(** Add a symmetric peering. Raises [Invalid_argument] on self peering. *)

val neighbours : t -> int -> (int * rel) list
(** Each neighbour with {e its} relationship to the queried AS:
    [(n, Customer)] means [n] is a customer of the queried AS. *)

val degree : t -> int -> int
(** Total neighbour count (providers + customers + peers). *)

val rel_to_string : rel -> string
