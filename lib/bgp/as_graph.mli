(** Internet-like AS graphs with power-law degree distributions.

    Graphs are grown the way the Internet grew: a fully peered tier-1
    clique, then preferential attachment — each new AS multihomes to
    providers drawn with probability proportional to their current degree
    (Barabasi-Albert), yielding the heavy-tailed (CAIDA-like) degree
    distribution of the real AS graph; degree-biased lateral peerings are
    sprinkled among transit ASes.

    Valley-freeness holds by construction: customer-provider edges always
    run from an existing AS to the newly attached one, so the provider
    relation is a DAG and every AS has a provider chain into the tier-1
    clique — any stub's announcement reaches the whole graph under
    Gao-Rexford export.

    [of_topology] wraps hand-built topologies (the fixed paper scenarios)
    in the same metadata — roles, degrees, customer cones — so generated
    and fixed worlds share one analysis surface. *)

type role = Tier1 | Transit | Stub

val role_to_string : role -> string

type spec = {
  ases : int;            (** total AS count *)
  tier1 : int;           (** size of the fully peered top clique *)
  attach : int;          (** provider links per newly attached AS *)
  peer_fraction : float; (** lateral transit peerings, as a fraction of [ases] *)
  seed : int;
  first_asn : int;       (** ASNs are [first_asn .. first_asn + ases - 1] *)
}

val default_spec : spec
(** 1000 ASes, a 5-wide tier-1 clique, 2 providers per AS, seed 11. *)

type t

val generate : spec -> t
(** Deterministic in [spec.seed].  Raises [Invalid_argument] on
    non-positive sizes or [ases < tier1]. *)

val tiered :
  tier1:int ->
  tier2:int ->
  stubs:int ->
  providers_per_tier2:int ->
  providers_per_stub:int ->
  peer_fraction:float ->
  seed:int ->
  unit ->
  t
(** The fixed-depth hierarchy the pre-world {!Topo_gen} generated (tier-1
    clique, multihomed tier-2s with lateral peerings, stubs homed to
    tier-2s), as a second front-end over the same metadata machinery.
    ASNs: tier-1 from 100, tier-2 from 1000, stubs from 10000. *)

val of_topology : ?tier1:int list -> Topology.t -> t
(** Wrap an existing topology.  [tier1] names the clique explicitly;
    by default every provider-less AS is classed tier-1.  Raises
    [Invalid_argument] if the provider relation is not a DAG. *)

val topology : t -> Topology.t
val spec : t -> spec option
(** The generating spec; [None] for {!of_topology} / {!tiered} wrappers. *)

val size : t -> int
val asns : t -> int list
(** All ASNs, sorted. *)

val role : t -> int -> role
(** Tier-1 = named clique (or provider-less); stub = no customers;
    transit = the rest.  Raises [Invalid_argument] on unknown ASNs. *)

val degree : t -> int -> int
val cone_size : t -> int -> int
(** Customer-cone size (self included): how many ASes sit at or below this
    AS in the provider hierarchy — the standard proxy for ISP weight, used
    to size prefix allocations in synthesized worlds. *)

val tier1s : t -> int list
val transits : t -> int list
val stubs : t -> int list

val by_degree : t -> int list
(** ASNs by descending degree, ties toward the lower ASN — vantage
    placement order for degree-based policies. *)

type degree_stats = {
  d_max : int;
  d_median : int;
  d_mean : float;
}

val degree_stats : t -> degree_stats

val summary : t -> string
(** One line: sizes per role and the degree statistics. *)
