(* Internet-like AS graphs with power-law degree distributions.

   Real AS-relationship data (CAIDA) is not available offline, so we grow
   graphs the way the Internet grew: a clique of tier-1 providers, then
   preferential attachment — each new AS multihomes to providers chosen with
   probability proportional to their current degree (Barabasi-Albert), which
   yields the heavy-tailed degree distribution measured on the real AS graph.
   Lateral peerings are sprinkled among transit ASes, again degree-biased.

   Valley-freeness holds by construction: every customer-provider edge goes
   from an existing AS (provider) to the newly attached one (customer), so
   the provider relation is a DAG, and every AS has a provider chain ending
   in the tier-1 clique — a stub's announcement reaches the whole graph.

   Beyond generation, [of_topology] wraps any hand-built topology in the
   same metadata (roles, degrees, customer cones), so the fixed paper
   scenarios and the generated worlds share one analysis surface. *)

type role = Tier1 | Transit | Stub

let role_to_string = function
  | Tier1 -> "tier1"
  | Transit -> "transit"
  | Stub -> "stub"

type spec = {
  ases : int;            (* total AS count *)
  tier1 : int;           (* size of the fully peered top clique *)
  attach : int;          (* provider links per newly attached AS *)
  peer_fraction : float; (* lateral transit peerings, as a fraction of [ases] *)
  seed : int;
  first_asn : int;       (* ASNs are [first_asn .. first_asn + ases - 1] *)
}

let default_spec =
  { ases = 1000; tier1 = 5; attach = 2; peer_fraction = 0.05; seed = 11; first_asn = 1 }

type t = {
  topo : Topology.t;
  graph_spec : spec option;          (* None for [of_topology] wrappers *)
  asn_of_index : int array;          (* generation (or sorted) order *)
  index_of_asn : (int, int) Hashtbl.t;
  roles : role array;
  degrees : int array;
  cones : int array;                 (* customer-cone size, self included *)
}

let topology t = t.topo
let spec t = t.graph_spec

let index_exn t asn =
  match Hashtbl.find_opt t.index_of_asn asn with
  | Some i -> i
  | None -> invalid_arg (Printf.sprintf "As_graph: unknown AS%d" asn)

let role t asn = t.roles.(index_exn t asn)
let degree t asn = t.degrees.(index_exn t asn)
let cone_size t asn = t.cones.(index_exn t asn)

let asns t = Array.to_list t.asn_of_index |> List.sort Int.compare
let size t = Array.length t.asn_of_index

let with_role t r =
  Array.to_list t.asn_of_index
  |> List.filter (fun asn -> t.roles.(index_exn t asn) = r)
  |> List.sort Int.compare

let tier1s t = with_role t Tier1
let transits t = with_role t Transit
let stubs t = with_role t Stub

(* ASNs by descending degree; ties break toward the lower ASN so the order
   is deterministic. *)
let by_degree t =
  Array.to_list t.asn_of_index
  |> List.sort (fun a b ->
         match Int.compare (degree t b) (degree t a) with
         | 0 -> Int.compare a b
         | c -> c)

type degree_stats = {
  d_max : int;
  d_median : int;
  d_mean : float;
}

let degree_stats t =
  let ds = Array.copy t.degrees in
  Array.sort Int.compare ds;
  let n = Array.length ds in
  if n = 0 then { d_max = 0; d_median = 0; d_mean = 0. }
  else
    { d_max = ds.(n - 1);
      d_median = ds.(n / 2);
      d_mean = float_of_int (Array.fold_left ( + ) 0 ds) /. float_of_int n }

(* --- shared metadata computation ---------------------------------------- *)

(* Customer cones via per-AS bitsets folded in reverse topological order of
   the provider DAG (customers before their providers): cone(a) = {a} union
   the cones of a's customers.  Bitsets make the union O(n/64) per edge, so
   the whole computation is O(edges * n / 64) — fine for thousands of ASes. *)
let compute_cones (topo : Topology.t) (asn_of_index : int array)
    (index_of_asn : (int, int) Hashtbl.t) : int array =
  let n = Array.length asn_of_index in
  let words = (n + 62) / 63 in
  let bits = Array.make_matrix n words 0 in
  let popcount x =
    let rec go x acc = if x = 0 then acc else go (x lsr 1) (acc + (x land 1)) in
    go x 0
  in
  (* Kahn order over customer edges: start from ASes with no customers *)
  let remaining = Array.make n 0 in
  Array.iteri
    (fun i asn -> remaining.(i) <- List.length (Topology.customers topo asn))
    asn_of_index;
  let queue = Queue.create () in
  Array.iteri (fun i r -> if r = 0 then Queue.push i queue) remaining;
  let cones = Array.make n 1 in
  let processed = ref 0 in
  while not (Queue.is_empty queue) do
    let i = Queue.pop queue in
    incr processed;
    let row = bits.(i) in
    row.(i / 63) <- row.(i / 63) lor (1 lsl (i mod 63));
    List.iter
      (fun c ->
        let ci = Hashtbl.find index_of_asn c in
        let crow = bits.(ci) in
        for w = 0 to words - 1 do
          row.(w) <- row.(w) lor crow.(w)
        done)
      (Topology.customers topo asn_of_index.(i));
    let count = ref 0 in
    for w = 0 to words - 1 do
      count := !count + popcount row.(w)
    done;
    cones.(i) <- !count;
    List.iter
      (fun p ->
        let pi = Hashtbl.find index_of_asn p in
        remaining.(pi) <- remaining.(pi) - 1;
        if remaining.(pi) = 0 then Queue.push pi queue)
      (Topology.providers topo asn_of_index.(i))
  done;
  if !processed <> n then invalid_arg "As_graph: provider relation is not a DAG";
  cones

let wrap ?(graph_spec : spec option) ?(tier1 : int list option)
    (topo : Topology.t) (asn_of_index : int array) : t =
  let n = Array.length asn_of_index in
  let index_of_asn = Hashtbl.create (2 * n) in
  Array.iteri (fun i asn -> Hashtbl.replace index_of_asn asn i) asn_of_index;
  let degrees = Array.map (Topology.degree topo) asn_of_index in
  let cones = compute_cones topo asn_of_index index_of_asn in
  let is_tier1 =
    match tier1 with
    | Some l -> fun asn -> List.mem asn l
    | None -> fun asn -> Topology.providers topo asn = []
  in
  let roles =
    Array.map
      (fun asn ->
        if is_tier1 asn then Tier1
        else if Topology.customers topo asn = [] then Stub
        else Transit)
      asn_of_index
  in
  { topo; graph_spec; asn_of_index; index_of_asn; roles; degrees; cones }

let of_topology ?tier1 (topo : Topology.t) : t =
  wrap ?tier1 topo (Array.of_list (Topology.asns topo))

(* --- the power-law generator -------------------------------------------- *)

let generate (s : spec) : t =
  if s.tier1 < 1 then invalid_arg "As_graph.generate: tier1 must be positive";
  if s.ases < s.tier1 then invalid_arg "As_graph.generate: ases < tier1";
  if s.attach < 1 then invalid_arg "As_graph.generate: attach must be positive";
  if s.peer_fraction < 0. then invalid_arg "As_graph.generate: negative peer_fraction";
  let rng = Rpki_util.Rng.create s.seed in
  let topo = Topology.create () in
  let asn i = s.first_asn + i in
  let asn_of_index = Array.init s.ases asn in
  (* the degree-biased ball: every node appears once as a baseline and once
     per incident customer/provider edge end, so drawing uniformly from the
     ball is preferential attachment *)
  let ball =
    Array.make ((s.tier1 * s.tier1) + (2 * s.attach * s.ases) + s.ases + 16) 0
  in
  let ball_len = ref 0 in
  let push i =
    ball.(!ball_len) <- i;
    incr ball_len
  in
  (* tier-1 clique: full peer mesh *)
  for i = 0 to s.tier1 - 1 do
    Topology.add_as topo (asn i);
    push i;
    for j = i + 1 to s.tier1 - 1 do
      Topology.peer topo (asn i) (asn j)
    done
  done;
  (* growth: each new AS multihomes to [attach] distinct degree-biased
     providers among the ASes already present *)
  let chosen = Hashtbl.create 8 in
  for i = s.tier1 to s.ases - 1 do
    Hashtbl.reset chosen;
    let want = min s.attach i in
    let tries = ref 0 in
    while Hashtbl.length chosen < want do
      incr tries;
      let p =
        if !tries <= 64 * want then ball.(Rpki_util.Rng.int rng !ball_len)
        else Rpki_util.Rng.int rng i (* degenerate ball: fall back to uniform *)
      in
      if p < i && not (Hashtbl.mem chosen p) then Hashtbl.replace chosen p ()
    done;
    Hashtbl.iter
      (fun p () ->
        Topology.link topo ~provider:(asn p) ~customer:(asn i);
        push p;
        push i)
      chosen;
    push i (* baseline: every AS is attachable even at degree 0 extras *)
  done;
  (* lateral peerings among transit ASes, degree-biased on both ends *)
  let peer_links = int_of_float (s.peer_fraction *. float_of_int s.ases) in
  let links = ref 0 in
  let attempts = ref 0 in
  while !links < peer_links && !attempts < 64 * (peer_links + 1) do
    incr attempts;
    let a = ball.(Rpki_util.Rng.int rng !ball_len) in
    let b = ball.(Rpki_util.Rng.int rng !ball_len) in
    let aa = asn a and ab = asn b in
    let related =
      a = b
      || List.mem ab (Topology.peers topo aa)
      || List.mem ab (Topology.providers topo aa)
      || List.mem ab (Topology.customers topo aa)
    in
    (* peer only transit-to-transit: stubs buy transit, they do not peer *)
    let transit x = Topology.customers topo x <> [] in
    if (not related) && transit aa && transit ab then begin
      Topology.peer topo aa ab;
      incr links
    end
  done;
  wrap ~graph_spec:s ~tier1:(List.init s.tier1 asn) topo asn_of_index

(* --- the tiered generator (the pre-world Topo_gen shape) ---------------- *)

(* Kept as a second front-end over the same machinery: fixed-depth hierarchy
   with uniform (not preferential) provider choice.  [Topo_gen.generate] is
   a thin wrapper over this. *)
let tiered ~tier1 ~tier2 ~stubs ~providers_per_tier2 ~providers_per_stub
    ~peer_fraction ~seed () : t =
  let rng = Rpki_util.Rng.create seed in
  let topo = Topology.create () in
  let tier1_asns = List.init tier1 (fun i -> 100 + i) in
  let tier2_asns = List.init tier2 (fun i -> 1000 + i) in
  let stub_asns = List.init stubs (fun i -> 10000 + i) in
  List.iter (Topology.add_as topo) tier1_asns;
  List.iteri
    (fun i a -> List.iteri (fun j b -> if i < j then Topology.peer topo a b) tier1_asns)
    tier1_asns;
  List.iter
    (fun t2 ->
      Rpki_util.Rng.shuffle rng tier1_asns
      |> List.filteri (fun i _ -> i < providers_per_tier2)
      |> List.iter (fun p -> Topology.link topo ~provider:p ~customer:t2))
    tier2_asns;
  List.iteri
    (fun i a ->
      List.iteri
        (fun j b ->
          if i < j && Rpki_util.Rng.float rng < peer_fraction then Topology.peer topo a b)
        tier2_asns)
    tier2_asns;
  List.iter
    (fun st ->
      Rpki_util.Rng.shuffle rng tier2_asns
      |> List.filteri (fun i _ -> i < providers_per_stub)
      |> List.iter (fun p -> Topology.link topo ~provider:p ~customer:st))
    stub_asns;
  let asn_of_index = Array.of_list (tier1_asns @ tier2_asns @ stub_asns) in
  wrap ~tier1:tier1_asns topo asn_of_index

let summary t =
  let st = degree_stats t in
  Printf.sprintf
    "%d ASes (%d tier-1, %d transit, %d stub), degrees max %d / median %d / mean %.1f"
    (size t)
    (List.length (tier1s t))
    (List.length (transits t))
    (List.length (stubs t))
    st.d_max st.d_median st.d_mean
