(* Synthetic Internet-like AS topologies.

   Since the world generator landed, this module is a thin front-end over
   {!As_graph}: [generate] delegates to [As_graph.tiered] (the fixed-depth
   hierarchy the earlier experiments were built on), and [small_scenario]
   wraps the fixed Table-6 topology.  New code should use {!As_graph}
   directly — the power-law generator scales to thousands of ASes and
   carries roles, degrees and customer cones. *)

type spec = {
  tier1 : int;            (* size of the top clique *)
  tier2 : int;
  stubs : int;
  providers_per_tier2 : int;
  providers_per_stub : int;
  peer_fraction : float;  (* probability of lateral tier-2 peering *)
  seed : int;
}

let default_spec =
  { tier1 = 4; tier2 = 20; stubs = 100; providers_per_tier2 = 2; providers_per_stub = 2;
    peer_fraction = 0.1; seed = 7 }

type generated = {
  topo : Topology.t;
  graph : As_graph.t;     (* the same topology with world-generator metadata *)
  tier1_asns : int list;
  tier2_asns : int list;
  stub_asns : int list;
}

let generate (spec : spec) =
  let graph =
    As_graph.tiered ~tier1:spec.tier1 ~tier2:spec.tier2 ~stubs:spec.stubs
      ~providers_per_tier2:spec.providers_per_tier2
      ~providers_per_stub:spec.providers_per_stub ~peer_fraction:spec.peer_fraction
      ~seed:spec.seed ()
  in
  (* the tiered ASN ranges are part of this module's contract *)
  let in_range lo hi asn = asn >= lo && asn < hi in
  let all = As_graph.asns graph in
  { topo = As_graph.topology graph;
    graph;
    tier1_asns = List.filter (in_range 100 1000) all;
    tier2_asns = List.filter (in_range 1000 10000) all;
    stub_asns = List.filter (in_range 10000 max_int) all }

(* The small fixed topology used by the Table 6 and Section 6 narratives:

              T1a ===== T1b          (tier-1 peers)
             /   \      /  \
          Mid1   Mid2 Mid3  Attacker(AS 666)
           |       \   /
         Victim    Source

   Victim originates the protected prefix; Source is a typical relying
   party; Attacker is multihomed high in the hierarchy, the hard case. *)
type small = {
  small_topo : Topology.t;
  t1a : int; t1b : int;
  mid1 : int; mid2 : int; mid3 : int;
  victim : int;
  source : int;
  attacker : int;
}

let small_scenario () =
  let topo = Topology.create () in
  let t1a = 100 and t1b = 101 in
  let mid1 = 1001 and mid2 = 1002 and mid3 = 1003 in
  let victim = 17054 and source = 7018 and attacker = 666 in
  Topology.peer topo t1a t1b;
  Topology.link topo ~provider:t1a ~customer:mid1;
  Topology.link topo ~provider:t1a ~customer:mid2;
  Topology.link topo ~provider:t1b ~customer:mid3;
  Topology.link topo ~provider:t1b ~customer:attacker;
  Topology.link topo ~provider:mid1 ~customer:victim;
  Topology.link topo ~provider:mid2 ~customer:source;
  Topology.link topo ~provider:mid3 ~customer:source;
  { small_topo = topo; t1a; t1b; mid1; mid2; mid3; victim; source; attacker }

let small_graph (s : small) = As_graph.of_topology ~tier1:[ s.t1a; s.t1b ] s.small_topo
