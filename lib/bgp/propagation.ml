(* BGP route propagation under Gao-Rexford export rules, with RPKI-aware
   route selection.

   For one prefix at a time: every announcement (origin) is flooded through
   the topology; each AS repeatedly selects its best route among what its
   neighbours export to it, until a fixpoint.  Validity-aware policies
   filter (drop) or rank (depref) routes by their origin-validation state.

   Export rule (Gao-Rexford): a route learned from a customer (or
   self-originated) is exported to everyone; a route learned from a peer or
   provider is exported only to customers.

   Selection order:
     1. (drop-invalid) invalid routes are not even candidates
     2. (depref-invalid) validity: valid > unknown > invalid
     3. relationship preference: customer > peer > provider
     4. shorter AS path
     5. lower next-hop ASN (determinism) *)

open Rpki_core

type announcement = {
  prefix : Rpki_ip.V4.Prefix.t;
  origin : int; (* the AS number placed in the origin position *)
}

type learned = From_customer | From_peer | From_provider | Self_originated

type entry = {
  ann : announcement;
  path : int list;     (* this AS first, origin last *)
  learned : learned;
  validity : Origin_validation.state;
}

let rel_rank = function
  | Self_originated -> 3
  | From_customer -> 2
  | From_peer -> 1
  | From_provider -> 0

(* Total preference order for routes at an AS with policy [policy]; bigger
   is better.  Returns a comparable key. *)
let preference_key ~(policy : Policy.t) (e : entry) =
  let validity_component =
    match policy with
    | Policy.Depref_invalid | Policy.Drop_invalid -> Policy.validity_rank e.validity
    | Policy.Ignore_rpki -> 0
  in
  (validity_component, rel_rank e.learned, -List.length e.path,
   -(match e.path with _ :: next :: _ -> next | _ -> 0))

let admissible ~(policy : Policy.t) (e : entry) =
  match policy with
  | Policy.Drop_invalid -> not (Origin_validation.equal_state e.validity Invalid)
  | Policy.Depref_invalid | Policy.Ignore_rpki -> true

let better ~policy a b = compare (preference_key ~policy a) (preference_key ~policy b) > 0

(* Would [holder] export its current entry to neighbour [rel_of_neighbour]?
   [rel_of_neighbour] is the neighbour's relationship to the holder. *)
let exports (e : entry) ~(to_ : Topology.rel) =
  match (e.learned, to_) with
  | (Self_originated | From_customer), _ -> true
  | (From_peer | From_provider), Topology.Customer -> true
  | (From_peer | From_provider), (Topology.Peer | Topology.Provider) -> false

type rib = (int, entry) Hashtbl.t (* asn -> best route for the prefix *)

(* A compact adjacency index over a topology snapshot: ASNs are renumbered
   to dense indices and every AS's neighbour list is one immutable array.
   The fixpoint below touches neighbour lists many times per AS; rebuilding
   them from three hashtable lookups per visit (as [Topology.neighbours]
   does) dominated propagation time on 2000+ AS graphs. *)
type adjacency = {
  adj_version : int;              (* Topology.version at build time *)
  index_of : (int, int) Hashtbl.t;
  asn_of : int array;             (* index -> asn, ascending *)
  neigh : (int * Topology.rel) array array;
      (* per index: (neighbour index, neighbour's relationship to this AS),
         in [Topology.neighbours] order *)
}

let build_adjacency (topo : Topology.t) : adjacency =
  let adj_version = Topology.version topo in
  let asn_of = Array.of_list (Topology.asns topo) in
  let n = Array.length asn_of in
  let index_of = Hashtbl.create (2 * n) in
  Array.iteri (fun i asn -> Hashtbl.replace index_of asn i) asn_of;
  let neigh =
    Array.map
      (fun asn ->
        Topology.neighbours topo asn
        |> List.map (fun (m, rel) -> (Hashtbl.find index_of m, rel))
        |> Array.of_list)
      asn_of
  in
  { adj_version; index_of; asn_of; neigh }

(* A few adjacencies are memoized, keyed by physical topology identity: the
   loop recomputes a data plane (one [compute] per announced prefix) every
   tick over the same topology object. *)
let adjacency_memo : (Topology.t * adjacency) list ref = ref []

let adjacency_of (topo : Topology.t) : adjacency =
  match List.find_opt (fun (t, _) -> t == topo) !adjacency_memo with
  | Some (_, adj) when adj.adj_version = Topology.version topo -> adj
  | _ ->
    let adj = build_adjacency topo in
    let others = List.filter (fun (t, _) -> t != topo) !adjacency_memo in
    adjacency_memo := (topo, adj) :: List.filteri (fun i _ -> i < 3) others;
    adj

(* Compute every AS's best route for one prefix.

   Worklist fixpoint: only ASes whose entry just improved re-export, instead
   of sweeping every AS each round.  Each replacement strictly improves the
   holder's preference key and paths are loop-free, so the monotone process
   terminates at the same fixpoint the full sweep reached. *)
let compute ~(topo : Topology.t) ~(policy_of : int -> Policy.t)
    ~(validity_of : Route.t -> Origin_validation.state) (anns : announcement list) : rib =
  let adj = adjacency_of topo in
  let n = Array.length adj.asn_of in
  let best : entry option array = Array.make n None in
  let policy = Array.map policy_of adj.asn_of in
  let queue = Queue.create () in
  let queued = Array.make n false in
  let enqueue i =
    if not queued.(i) then begin
      queued.(i) <- true;
      Queue.push i queue
    end
  in
  (* seed self-originations *)
  List.iter
    (fun ann ->
      match Hashtbl.find_opt adj.index_of ann.origin with
      | None -> ()
      | Some i ->
        let e =
          { ann; path = [ ann.origin ]; learned = Self_originated;
            validity = validity_of (Route.make ann.prefix ann.origin) }
        in
        if admissible ~policy:policy.(i) e then begin
          match best.(i) with
          | Some cur when not (better ~policy:policy.(i) e cur) -> ()
          | _ ->
            best.(i) <- Some e;
            enqueue i
        end)
    anns;
  (* drain: the popped AS re-exports its (possibly improved) route *)
  let steps = ref 0 in
  let limit = 4 * n * (n + 2) in
  while not (Queue.is_empty queue) do
    incr steps;
    if !steps > limit then failwith "Propagation.compute: no convergence";
    let i = Queue.pop queue in
    queued.(i) <- false;
    match best.(i) with
    | None -> ()
    | Some e ->
      Array.iter
        (fun (j, rel_j_to_i) ->
          (* [rel_j_to_i] is neighbour j's relationship to the exporter i;
             that is exactly the [to_] the export rule judges *)
          if exports e ~to_:rel_j_to_i then begin
            let learned =
              (* j learns the route over the converse relationship: if j is
                 i's customer, j learned it from its provider i *)
              match rel_j_to_i with
              | Topology.Customer -> From_provider
              | Topology.Provider -> From_customer
              | Topology.Peer -> From_peer
            in
            let candidate = { e with learned } in
            let asn_j = adj.asn_of.(j) in
            if admissible ~policy:policy.(j) candidate
               && not (List.mem asn_j candidate.path)
            then begin
              let candidate = { candidate with path = asn_j :: candidate.path } in
              match best.(j) with
              | Some cur when not (better ~policy:policy.(j) candidate cur) -> ()
              | _ ->
                best.(j) <- Some candidate;
                enqueue j
            end
          end)
        adj.neigh.(i)
  done;
  let rib : rib = Hashtbl.create (2 * n) in
  Array.iteri
    (fun i e -> match e with None -> () | Some e -> Hashtbl.replace rib adj.asn_of.(i) e)
    best;
  rib

let route rib asn = Hashtbl.find_opt rib asn

let next_hop (e : entry) = match e.path with _ :: n :: _ -> Some n | _ -> None
