(* RTR cache server and router client state machines (RFC 6810 section 4).

   The cache stores the current VRP set plus a window of serial-numbered
   *deltas* (the same `Vrp.diff` the relying party emits per sync), so a
   Serial Query is answered by composing stored deltas instead of diffing
   two full snapshots.  Wire format is the byte-exact [Pdu] encoding, so a
   round trip through [encode]/[decode] happens on every exchange even
   though transport is an in-memory string. *)

open Rpki_core
open Rpki_ip

(* --- cache (server) side --- *)

type cache = {
  session_id : int;
  mutable serial : int;
  mutable feed : Vrp.t list; (* the relying party's view, holds ignored *)
  mutable current : Vrp.t list; (* what routers see: [feed] with holds applied *)
  mutable holds : (V4.Prefix.t * Vrp.t list) list; (* pinned prefix -> last-good VRPs *)
  mutable deltas : (int * Vrp.diff) list; (* serial -> diff from serial-1, newest first *)
  mutable data_age : int; (* staleness of the RP data behind [current] *)
  history_limit : int;
}

let create_cache ?(session_id = 0x5c1) ?(history_limit = 16) () =
  { session_id; serial = 0; feed = []; current = []; holds = []; deltas = [];
    data_age = 0; history_limit }

let cache_session_id cache = cache.session_id
let cache_serial cache = cache.serial
let cache_vrps cache = cache.current
let cache_holds cache = cache.holds

(* The serial says how current the *protocol* state is; the data age says
   how current the *data* is.  A cache fed by a relying party syncing from
   stale copies keeps bumping serials over old data — this is how routers
   (and monitors) can tell the difference. *)
let set_data_age cache age = cache.data_age <- max 0 age
let cache_data_age cache = cache.data_age

(* The evidence-triggered freeze: under a hold, VRPs covered by the held
   prefix are replaced by the pinned last-good set, whatever the relying
   party currently believes. *)
let apply_holds cache vrps =
  match cache.holds with
  | [] -> vrps
  | holds ->
    let covered (v : Vrp.t) = List.exists (fun (p, _) -> V4.Prefix.covers p v.Vrp.prefix) holds in
    Vrp.normalize
      (List.filter (fun v -> not (covered v)) vrps @ List.concat_map snd holds)

(* Re-derive the router-visible set from the feed; bump the serial and
   record the delta only when something actually changed. *)
let republish cache =
  let vrps = apply_holds cache cache.feed in
  let d = Vrp.diff_of ~before:cache.current ~after:vrps in
  if not (Vrp.diff_is_empty d) then begin
    cache.serial <- cache.serial + 1;
    cache.current <- vrps;
    cache.deltas <- (cache.serial, d) :: cache.deltas;
    if List.length cache.deltas > cache.history_limit then
      cache.deltas <- List.filteri (fun i _ -> i < cache.history_limit) cache.deltas
  end

let install cache vrps =
  cache.feed <- vrps;
  republish cache

let publish cache vrps = install cache (Vrp.normalize vrps)

exception Base_mismatch of { expected : int64; actual : int64 }

let feed_fingerprint cache = Vrp.fingerprint cache.feed

(* Install the relying party's sync diff directly as the next serial delta.
   The diff must be relative to the cache's *feed* — which holds when the
   cache is fed every sync of one relying party, diff-empty syncs included
   (they are no-ops here).  [expect_base] turns that precondition into a
   check: a diff computed against any other set raises instead of silently
   corrupting the delta window.  Holds are applied on top, so a frozen
   prefix stays at its pinned VRPs no matter what the diff says. *)
let publish_diff ?expect_base cache diff =
  (match expect_base with
  | Some expected ->
    let actual = feed_fingerprint cache in
    if not (Int64.equal expected actual) then raise (Base_mismatch { expected; actual })
  | None -> ());
  install cache (Vrp.apply_diff cache.feed diff)

let hold cache ~prefix ~vrps =
  cache.holds <-
    (prefix, Vrp.normalize vrps)
    :: List.filter (fun (p, _) -> not (V4.Prefix.equal p prefix)) cache.holds;
  republish cache

let release cache ~prefix =
  cache.holds <- List.filter (fun (p, _) -> not (V4.Prefix.equal p prefix)) cache.holds;
  republish cache

(* Rehydrate from a persisted (serial, VRP set) pair.  The delta window is
   gone — routers whose serial does not match will take one Cache Reset —
   but the serial line continues instead of restarting from 0. *)
let restore cache ~serial ~vrps =
  let vrps = Vrp.normalize vrps in
  cache.serial <- max 0 serial;
  cache.feed <- vrps;
  cache.current <- vrps;
  cache.holds <- [];
  cache.deltas <- []

let notify cache = Pdu.Serial_notify { session_id = cache.session_id; serial = cache.serial }

(* The net announce/withdraw sets between [serial] and now, by composing the
   stored deltas oldest-first; [None] when the window no longer reaches back
   that far.  Composition cancels flapping: a VRP removed then re-added (or
   added then removed) across the window must not appear at all, or the
   router would see a withdrawal of a VRP it never had. *)
(* The accumulator is a hashtable keyed by VRP — O(1) per delta entry
   instead of a map's O(log n) per op (and no quadratic list appends),
   which matters when the serving plane composes deep windows for
   thousands of sessions under churn.  Results are sorted before
   returning so the output — and hence every encoded response buffer —
   stays deterministic. *)
let changes_since cache ~serial =
  if serial = cache.serial then Some ([], [])
  else if serial > cache.serial || serial < cache.serial - List.length cache.deltas then None
  else begin
    let tbl = Hashtbl.create 64 in
    (* first op tells the state at [serial] (a withdraw implies it was
       present); last op tells the state now.  [deltas] is newest-first, so
       walk its reverse to apply oldest-first. *)
    let record op v =
      match Hashtbl.find_opt tbl v with
      | None -> Hashtbl.replace tbl v (op, op)
      | Some (first, _) -> Hashtbl.replace tbl v (first, op)
    in
    List.iter
      (fun (s, (d : Vrp.diff)) ->
        if s > serial then begin
          List.iter (record `Withdraw) d.Vrp.removed;
          List.iter (record `Announce) d.Vrp.added
        end)
      (List.rev cache.deltas);
    (* only genuine transitions are emitted *)
    let announced, withdrawn =
      Hashtbl.fold
        (fun v (first, last) (announced, withdrawn) ->
          match (first, last) with
          | `Announce, `Announce -> (v :: announced, withdrawn)
          | `Withdraw, `Withdraw -> (announced, v :: withdrawn)
          | `Announce, `Withdraw | `Withdraw, `Announce -> (announced, withdrawn))
        tbl ([], [])
    in
    Some (List.sort Vrp.compare announced, List.sort Vrp.compare withdrawn)
  end

(* Serve one client request; returns the response PDU sequence (as bytes). *)
let serve cache (request_bytes : string) =
  let respond pdus = String.concat "" (List.map Pdu.encode pdus) in
  match Pdu.decode request_bytes with
  | Pdu.Reset_query ->
    respond
      ((Pdu.Cache_response { session_id = cache.session_id }
       :: List.map Pdu.of_vrp cache.current)
      @ [ Pdu.End_of_data { session_id = cache.session_id; serial = cache.serial } ])
  | Pdu.Serial_query { session_id; serial } ->
    if session_id <> cache.session_id then respond [ Pdu.Cache_reset ]
    else begin
      match changes_since cache ~serial with
      | None -> respond [ Pdu.Cache_reset ] (* too old: client must reset *)
      | Some (announced, withdrawn) ->
        respond
          ((Pdu.Cache_response { session_id = cache.session_id }
           :: List.map (Pdu.of_vrp ~flags:Pdu.Announce) announced)
          @ List.map (Pdu.of_vrp ~flags:Pdu.Withdraw) withdrawn
          @ [ Pdu.End_of_data { session_id = cache.session_id; serial = cache.serial } ])
    end
  | _ ->
    respond
      [ Pdu.Error_report { error_code = Pdu.err_invalid_request; message = "unexpected PDU" } ]
  | exception Pdu.Parse_error m ->
    respond [ Pdu.Error_report { error_code = Pdu.err_corrupt_data; message = m } ]

(* --- router (client) side --- *)

type router = {
  mutable r_session : int option;
  mutable r_serial : int;
  mutable r_vrps : Vrp.t list;
}

let create_router () = { r_session = None; r_serial = 0; r_vrps = [] }

(* The client side of acting on a Cache Reset: forget everything and start
   over with a Reset Query. *)
let reset_router router =
  router.r_session <- None;
  router.r_serial <- 0;
  router.r_vrps <- []

let router_session router = router.r_session
let router_serial router = router.r_serial
let router_vrps router = router.r_vrps

exception Protocol_error of string

(* Apply a cache response to the router state. *)
let apply_response router (bytes : string) =
  let pdus = Pdu.decode_all bytes in
  let go pdus =
    match pdus with
    | Pdu.Cache_reset :: _ ->
      (* full resynchronisation required *)
      router.r_session <- None;
      `Reset_required
    | Pdu.Cache_response { session_id } :: rest ->
      (match router.r_session with
      | Some s when s <> session_id -> raise (Protocol_error "session mismatch")
      | _ -> router.r_session <- Some session_id);
      let rec consume acc = function
        | [ Pdu.End_of_data { serial; session_id = sid } ] ->
          if Some sid <> router.r_session then raise (Protocol_error "session mismatch at EOD");
          router.r_serial <- serial;
          router.r_vrps <- List.sort_uniq Vrp.compare acc;
          `Synced
        | Pdu.Ipv4_prefix { flags = Pdu.Announce; prefix; max_len; asn } :: rest ->
          consume (Vrp.make ~max_len prefix asn :: acc) rest
        | Pdu.Ipv4_prefix { flags = Pdu.Withdraw; prefix; max_len; asn } :: rest ->
          let v = Vrp.make ~max_len prefix asn in
          if not (List.exists (Vrp.equal v) acc) then
            raise (Protocol_error "withdrawal of unknown VRP");
          consume (List.filter (fun x -> not (Vrp.equal x v)) acc) rest
        | Pdu.Ipv6_prefix _ :: rest -> consume acc rest (* carried but unindexed *)
        | [] -> raise (Protocol_error "missing End of Data")
        | p :: _ -> raise (Protocol_error ("unexpected " ^ Pdu.to_string p))
      in
      consume router.r_vrps rest
    | Pdu.Error_report { error_code; message } :: _ ->
      raise (Protocol_error (Printf.sprintf "cache error %d: %s" error_code message))
    | p :: _ -> raise (Protocol_error ("unexpected " ^ Pdu.to_string p))
    | [] -> raise (Protocol_error "empty response")
  in
  go pdus

(* One synchronisation round against a cache: incremental when possible,
   falling back to reset.  Returns the router's resulting VRP set. *)
let synchronize router cache =
  let query =
    match router.r_session with
    | Some sid when sid = cache.session_id ->
      Pdu.encode (Pdu.Serial_query { session_id = sid; serial = router.r_serial })
    | _ ->
      (* new or different cache: start a fresh session from nothing *)
      router.r_vrps <- [];
      router.r_serial <- 0;
      router.r_session <- None;
      Pdu.encode Pdu.Reset_query
  in
  match apply_response router (serve cache query) with
  | `Synced -> router.r_vrps
  | `Reset_required -> (
    (* the incremental window closed: start over from scratch *)
    router.r_vrps <- [];
    router.r_serial <- 0;
    router.r_session <- None;
    match apply_response router (serve cache (Pdu.encode Pdu.Reset_query)) with
    | `Synced -> router.r_vrps
    | `Reset_required -> raise (Protocol_error "reset loop"))
