(* The RTR serving plane: one cache multiplexed to thousands of router
   sessions, with encode-once shared response buffers and batched
   serial-notify.

   The protocol state machines live in [Session]; this module owns the
   fan-out.  The core idea is that at any moment the response to "I am at
   serial s" is the same byte string for every session at s, so it is
   encoded once into a shared buffer keyed by s and replayed.  Publishes
   never touch a session — they invalidate the buffers and mark a notify
   pending; [flush] then sends one Serial Notify to everybody and drives
   every session back to convergence, which is how rapid republishes
   within a tick coalesce into a single fan-out.

   [flush ~domains:n] spreads the per-session decode/apply work across
   Domains.  The shared buffers are pre-encoded sequentially before the
   fan-out, each session is touched by exactly one domain, and per-domain
   accounting is reduced in domain order — so the observable behaviour
   (and every byte counter) is identical for any [domains]. *)

open Rpki_core

type session = {
  router : Session.router;
  mutable tx : int;     (* query bytes sent to the server *)
  mutable rx : int;     (* notify + response bytes received *)
  mutable resets : int; (* Cache Reset PDUs acted upon *)
  mutable live : bool;
}

type stats = {
  publishes : int;
  serial_bumps : int;
  notify_batches : int;
  coalesced : int;
  encode_calls : int;
  bytes_encoded : int;
  bytes_sent : int;
  bytes_received : int;
  replays : int;
  resets : int;
}

type t = {
  cache : Session.cache;
  mutable sessions : session list; (* newest first; pruned on detach *)
  buffers : (int, string) Hashtbl.t;
      (* base serial -> encoded response bytes for base -> current; valid
         only for the cache's current serial (cleared on every bump) *)
  mutable snapshot : string option; (* encoded full Cache Response -> current *)
  reset_bytes : string;             (* the 8-byte Cache Reset, encoded once *)
  mutable dirty : bool;             (* router-visible state changed since the
                                       last flush *)
  mutable bumps_pending : int;      (* serial bumps since the last flush *)
  mutable publishes : int;
  mutable serial_bumps : int;
  mutable notify_batches : int;
  mutable coalesced : int;
  mutable encode_calls : int;
  mutable bytes_encoded : int;
  mutable bytes_sent : int;
  mutable bytes_received : int;
  mutable replays : int;
  mutable resets : int;
  mutable unsafe_count : int;       (* unsafe VRPs behind the published set *)
}

let of_cache cache =
  { cache; sessions = []; buffers = Hashtbl.create 32; snapshot = None;
    reset_bytes = Pdu.encode Pdu.Cache_reset; dirty = false; bumps_pending = 0;
    publishes = 0;
    serial_bumps = 0; notify_batches = 0; coalesced = 0; encode_calls = 0;
    bytes_encoded = 0; bytes_sent = 0; bytes_received = 0; replays = 0; resets = 0;
    unsafe_count = 0 }

let create ?session_id ?history_limit () =
  of_cache (Session.create_cache ?session_id ?history_limit ())

let cache t = t.cache

let stats t =
  { publishes = t.publishes; serial_bumps = t.serial_bumps;
    notify_batches = t.notify_batches; coalesced = t.coalesced;
    encode_calls = t.encode_calls; bytes_encoded = t.bytes_encoded;
    bytes_sent = t.bytes_sent; bytes_received = t.bytes_received;
    replays = t.replays; resets = t.resets }

(* --- the publishing side --- *)

(* Run a cache mutation; when it changed the router-visible state, drop the
   shared buffers (they encode paths to the old serial) and mark the notify
   pending.  A bump landing on an already-pending batch is a coalesced
   republish: routers will never see it as a separate notify. *)
let mutating ?(force = false) t f =
  let before = Session.cache_serial t.cache in
  f ();
  if force || Session.cache_serial t.cache <> before then begin
    Hashtbl.reset t.buffers;
    t.snapshot <- None;
    t.serial_bumps <- t.serial_bumps + 1;
    t.bumps_pending <- t.bumps_pending + 1;
    if t.dirty then t.coalesced <- t.coalesced + 1;
    t.dirty <- true
  end

let publish t vrps =
  t.publishes <- t.publishes + 1;
  mutating t (fun () -> Session.publish t.cache vrps)

let publish_diff ?expect_base t diff =
  t.publishes <- t.publishes + 1;
  mutating t (fun () -> Session.publish_diff ?expect_base t.cache diff)

let set_data_age t age = Session.set_data_age t.cache age

(* Unsafe-VRP accounting rides next to data age: a pure annotation on the
   published set, no PDU or buffer consequences. *)
let set_unsafe t n = t.unsafe_count <- n
let unsafe_count t = t.unsafe_count

let hold t ~prefix ~vrps = mutating t (fun () -> Session.hold t.cache ~prefix ~vrps)
let release t ~prefix = mutating t (fun () -> Session.release t.cache ~prefix)

(* A restore can land on the very serial it left off at, so the bump check
   cannot be trusted: force the next flush to renotify everybody. *)
let restore t ~serial ~vrps =
  mutating ~force:true t (fun () -> Session.restore t.cache ~serial ~vrps)

(* --- sessions --- *)

let attach t =
  let s = { router = Session.create_router (); tx = 0; rx = 0; resets = 0; live = true } in
  t.sessions <- s :: t.sessions;
  s

let detach t s =
  s.live <- false;
  t.sessions <- List.filter (fun x -> x != s) t.sessions

let session_count t = List.length t.sessions

let session_serial s = Session.router_serial s.router
let session_vrps s = Session.router_vrps s.router
let session_tx_bytes s = s.tx
let session_rx_bytes s = s.rx
let session_resets (s : session) = s.resets

let session_synced t s =
  s.live
  && Session.router_session s.router = Some (Session.cache_session_id t.cache)
  && Session.router_serial s.router = Session.cache_serial t.cache

(* --- the notify batch --- *)

let pending t = t.dirty

type flush_report = {
  fr_serial : int;
  fr_notified : int;
  fr_advanced : int;
  fr_resets : int;
  fr_skipped : int;
  fr_coalesced : int;
}

(* What one session needs this flush, decided from its router state alone. *)
type plan =
  | Skip                (* at the current serial: notify only *)
  | Delta of int        (* pull base -> current from the shared buffer *)
  | Reset_stale         (* serial query answered Cache Reset, then snapshot *)
  | Reset_fresh         (* no session yet: straight to Reset Query + snapshot *)

(* Per-chunk accounting, reduced in domain order after the joins. *)
type acct = {
  mutable a_sent : int;
  mutable a_received : int;
  mutable a_replays : int;
  mutable a_resets : int;
  mutable a_advanced : int;
  mutable a_reset_count : int;
  mutable a_skipped : int;
}

let fresh_acct () =
  { a_sent = 0; a_received = 0; a_replays = 0; a_resets = 0; a_advanced = 0;
    a_reset_count = 0; a_skipped = 0 }

(* Run [f lo hi] over [0, n) in [domains] chunks; with one domain (or one
   chunk) this degenerates to a plain call on the current domain. *)
let par_chunks ~domains n f =
  let d = max 1 (min domains n) in
  if d <= 1 then [ f 0 n ]
  else begin
    let chunk = (n + d - 1) / d in
    let spawned =
      List.init d (fun i ->
          Domain.spawn (fun () -> f (i * chunk) (min n ((i + 1) * chunk))))
    in
    List.map Domain.join spawned
  end

let encode_response pdus = String.concat "" (List.map Pdu.encode pdus)

let flush ?(domains = 1) t =
  let cache = t.cache in
  let current = Session.cache_serial cache in
  let sid = Session.cache_session_id cache in
  let sessions = Array.of_list (List.rev t.sessions) in
  let n = Array.length sessions in
  let notifying = t.dirty && n > 0 in
  (* 1. classify every session; memoize the window composition per distinct
     base serial so a thousand sessions at the same serial cost one
     [changes_since], not a thousand. *)
  let window = Hashtbl.create 8 in
  let changes base =
    match Hashtbl.find_opt window base with
    | Some r -> r
    | None ->
      let r = Session.changes_since cache ~serial:base in
      Hashtbl.replace window base r;
      r
  in
  let plans =
    Array.map
      (fun s ->
        match Session.router_session s.router with
        | Some rsid when rsid = sid ->
          let base = Session.router_serial s.router in
          if base = current then Skip
          else (match changes base with Some _ -> Delta base | None -> Reset_stale)
        | Some _ -> Reset_stale
        | None -> Reset_fresh)
      sessions
  in
  (* Nothing pending and everyone synced: a zero report, no traffic. *)
  if (not t.dirty) && Array.for_all (fun p -> p = Skip) plans then
    { fr_serial = current; fr_notified = 0; fr_advanced = 0; fr_resets = 0;
      fr_skipped = 0; fr_coalesced = 0 }
  else begin
    (* 2. pre-encode every buffer the fan-out will read, exactly once.  The
       fan-out below only ever reads [t.buffers] / [t.snapshot], so it can
       run on many domains against read-only shared state. *)
    let need_snapshot = ref false in
    let missing = Hashtbl.create 8 in
    Array.iter
      (fun p ->
        match p with
        | Delta base -> if not (Hashtbl.mem t.buffers base) then Hashtbl.replace missing base ()
        | Reset_stale | Reset_fresh -> need_snapshot := true
        | Skip -> ())
      plans;
    let bases = Hashtbl.fold (fun b () acc -> b :: acc) missing [] in
    let bases = Array.of_list (List.sort compare bases) in
    let encoded =
      (* distinct bases are rare (most sessions share one), but a restart
         storm can leave many: the encode pipeline itself fans out *)
      par_chunks ~domains (Array.length bases) (fun lo hi ->
          Array.init (hi - lo) (fun i ->
              let base = bases.(lo + i) in
              let announced, withdrawn =
                match changes base with Some aw -> aw | None -> assert false
              in
              let body =
                (Pdu.Cache_response { session_id = sid }
                 :: List.map (Pdu.of_vrp ~flags:Pdu.Announce) announced)
                @ List.map (Pdu.of_vrp ~flags:Pdu.Withdraw) withdrawn
                @ [ Pdu.End_of_data { session_id = sid; serial = current } ]
              in
              (base, encode_response body)))
    in
    List.iter
      (Array.iter (fun (base, bytes) ->
           Hashtbl.replace t.buffers base bytes;
           t.encode_calls <- t.encode_calls + 1;
           t.bytes_encoded <- t.bytes_encoded + String.length bytes))
      encoded;
    if !need_snapshot && t.snapshot = None then begin
      let body =
        (Pdu.Cache_response { session_id = sid }
        :: List.map Pdu.of_vrp (Session.cache_vrps cache))
        @ [ Pdu.End_of_data { session_id = sid; serial = current } ]
      in
      let bytes = encode_response body in
      t.snapshot <- Some bytes;
      t.encode_calls <- t.encode_calls + 1;
      t.bytes_encoded <- t.bytes_encoded + String.length bytes
    end;
    let notify_bytes =
      if notifying then begin
        let b = Pdu.encode (Session.notify cache) in
        t.encode_calls <- t.encode_calls + 1;
        t.bytes_encoded <- t.bytes_encoded + String.length b;
        b
      end
      else ""
    in
    let notify_len = String.length notify_bytes in
    (* 3. the fan-out: every session independently replays shared bytes into
       its own router state machine.  [`Synced] is the only acceptable
       outcome of each exchange — anything else is a server bug. *)
    let expect_synced = function
      | `Synced -> ()
      | `Reset_required -> failwith "Rtr.Server: unexpected Cache Reset"
    in
    let snapshot_of () =
      match t.snapshot with Some b -> b | None -> assert false
    in
    let serve_one acct s plan =
      if notifying then s.rx <- s.rx + notify_len;
      match plan with
      | Skip -> acct.a_skipped <- acct.a_skipped + 1
      | Delta base ->
        let query =
          Pdu.encode (Pdu.Serial_query { session_id = sid; serial = base })
        in
        s.tx <- s.tx + String.length query;
        acct.a_received <- acct.a_received + String.length query;
        let resp = Hashtbl.find t.buffers base in
        s.rx <- s.rx + String.length resp;
        acct.a_sent <- acct.a_sent + String.length resp;
        acct.a_replays <- acct.a_replays + 1;
        expect_synced (Session.apply_response s.router resp);
        acct.a_advanced <- acct.a_advanced + 1
      | Reset_stale | Reset_fresh ->
        (match plan with
        | Reset_stale ->
          (* the session asks from where it was; the server's answer is the
             shared Cache Reset, which the router acts on before starting
             over *)
          let query =
            Pdu.encode
              (Pdu.Serial_query
                 { session_id =
                     Option.value ~default:sid (Session.router_session s.router);
                   serial = Session.router_serial s.router })
          in
          s.tx <- s.tx + String.length query;
          acct.a_received <- acct.a_received + String.length query;
          s.rx <- s.rx + String.length t.reset_bytes;
          acct.a_sent <- acct.a_sent + String.length t.reset_bytes;
          acct.a_replays <- acct.a_replays + 1;
          (match Session.apply_response s.router t.reset_bytes with
          | `Reset_required -> ()
          | `Synced -> failwith "Rtr.Server: Cache Reset not taken");
          s.resets <- s.resets + 1;
          acct.a_resets <- acct.a_resets + 1
        | _ -> ());
        Session.reset_router s.router;
        let query = Pdu.encode Pdu.Reset_query in
        s.tx <- s.tx + String.length query;
        acct.a_received <- acct.a_received + String.length query;
        let resp = snapshot_of () in
        s.rx <- s.rx + String.length resp;
        acct.a_sent <- acct.a_sent + String.length resp;
        acct.a_replays <- acct.a_replays + 1;
        expect_synced (Session.apply_response s.router resp);
        acct.a_reset_count <- acct.a_reset_count + 1
    in
    let accts =
      par_chunks ~domains n (fun lo hi ->
          let acct = fresh_acct () in
          for i = lo to hi - 1 do
            serve_one acct sessions.(i) plans.(i)
          done;
          acct)
    in
    let advanced = ref 0 and reset_count = ref 0 and skipped = ref 0 in
    List.iter
      (fun a ->
        t.bytes_sent <- t.bytes_sent + a.a_sent;
        t.bytes_received <- t.bytes_received + a.a_received;
        t.replays <- t.replays + a.a_replays;
        t.resets <- t.resets + a.a_resets;
        advanced := !advanced + a.a_advanced;
        reset_count := !reset_count + a.a_reset_count;
        skipped := !skipped + a.a_skipped)
      accts;
    if notifying then begin
      t.bytes_sent <- t.bytes_sent + (notify_len * n);
      t.notify_batches <- t.notify_batches + 1
    end;
    let fr_coalesced = max 0 (t.bumps_pending - 1) in
    t.bumps_pending <- 0;
    t.dirty <- false;
    { fr_serial = current; fr_notified = (if notifying then n else 0);
      fr_advanced = !advanced; fr_resets = !reset_count; fr_skipped = !skipped;
      fr_coalesced }
  end

let all_synced t =
  let want = Session.cache_vrps t.cache in
  List.for_all
    (fun s ->
      Session.router_serial s.router = Session.cache_serial t.cache
      && List.equal Vrp.equal (Session.router_vrps s.router) want)
    t.sessions
