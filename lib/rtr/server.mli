(** The RTR serving plane: one cache, thousands of routers, encode-once
    deltas.

    A {!Session.cache} answers one router at a time, and {!Session.serve}
    re-encodes the response PDUs on every call.  Production relying parties
    fan one validated view out to thousands of concurrent RTR sessions, so
    this module multiplexes a single cache behind a server that

    - keeps a {e shared delta buffer} per base serial: the response bytes
      (Cache Response … End of Data) for "serial [s] → current" are encoded
      exactly once and replayed verbatim to every session that is at [s] —
      bytes encoded per serial is flat in the session count;
    - {e batches serial-notify}: publishes mark the server dirty, and one
      {!flush} fans a single Serial Notify out to every session, rapid
      republishes between flushes coalescing into one batch;
    - tracks each session as nothing more than its embedded
      {!Session.router} state machine plus tx/rx byte accounting; and
    - optionally spreads the per-session decode/apply fan-out across
      {e Domains} ([flush ~domains:n]) — sessions are independent once the
      shared buffers are pre-encoded, so the fan-out parallelises without
      changing a single byte of the accounting.

    The underlying cache state machine is unchanged and reachable via
    {!cache} for code that predates the server (the loop's persistence
    path, single-router tests); everything that mutates it should go
    through the forwarding functions here so buffer invalidation and
    notify batching stay correct. *)

open Rpki_core
open Rpki_ip

type t
(** A multiplexed RTR server over one {!Session.cache}. *)

type session
(** A registered router session: embedded router state machine, byte
    accounting, reset count.  Handles stay valid until {!detach}. *)

val create : ?session_id:int -> ?history_limit:int -> unit -> t
(** A server over a fresh cache (same defaults as
    {!Session.create_cache}). *)

val of_cache : Session.cache -> t
(** Wrap an existing cache — the migration path for code that built the
    cache first.  The cache must from then on be mutated only through this
    server. *)

val cache : t -> Session.cache
(** The underlying cache: serial, VRPs, holds and data age are read
    straight off it.  Mutations must go through the server. *)

(** {2 The publishing side}

    Forwarders for the cache mutators.  Each call that changes the
    router-visible state invalidates the shared buffers and marks a notify
    pending; none of them contacts a session — that is {!flush}'s job, so
    any number of publishes between flushes cost one notify fan-out. *)

val publish : t -> Vrp.t list -> unit

val publish_diff : ?expect_base:int64 -> t -> Vrp.diff -> unit
(** See {!Session.publish_diff}; raises {!Session.Base_mismatch} when
    [expect_base] disagrees with the feed. *)

val set_data_age : t -> int -> unit

val set_unsafe : t -> int -> unit
(** Record how many unsafe VRPs sit behind the published set (reported by
    the relying party's unsafe-VRP analysis).  Pure annotation — routers
    never see it on the wire, monitoring reads it off the serving plane
    via {!unsafe_count}. *)

val unsafe_count : t -> int

val hold : t -> prefix:V4.Prefix.t -> vrps:Vrp.t list -> unit
val release : t -> prefix:V4.Prefix.t -> unit

val restore : t -> serial:int -> vrps:Vrp.t list -> unit
(** Rehydrate after a restart ({!Session.restore}).  Every session takes
    one Cache Reset at the next flush unless its serial happens to match;
    the next flush always notifies. *)

(** {2 Sessions} *)

val attach : t -> session
(** Register a router.  It converges at the next {!flush} (or call
    {!flush} immediately to seed it). *)

val detach : t -> session -> unit
(** Deregister; the handle is dead afterwards. *)

val session_count : t -> int

val session_serial : session -> int

val session_synced : t -> session -> bool
(** Attached and at the cache's current serial. *)

val session_vrps : session -> Vrp.t list

val session_tx_bytes : session -> int
(** Query bytes this session has sent. *)

val session_rx_bytes : session -> int
(** Notify + response bytes it has received. *)

val session_resets : session -> int
(** Cache Resets it has taken. *)

(** {2 The notify batch} *)

val pending : t -> bool
(** Whether the router-visible state changed since the last flush. *)

type flush_report = {
  fr_serial : int;     (** the serial the batch converged sessions to *)
  fr_notified : int;   (** sessions that received the Serial Notify *)
  fr_advanced : int;   (** sessions that pulled an incremental delta *)
  fr_resets : int;     (** sessions that took a Cache Reset + full snapshot *)
  fr_skipped : int;    (** sessions already at the serial (notify only) *)
  fr_coalesced : int;  (** state-changing publishes absorbed into this batch
                           beyond the first *)
}

val flush : ?domains:int -> t -> flush_report
(** One batched notify fan-out: encode the Serial Notify once, deliver it
    to every session, and drive each session back to convergence from the
    shared buffers — encoding each needed response exactly once, replaying
    bytes for every further session at the same serial.  A no-op report
    (all zeros except [fr_serial]) when nothing is {!pending} and every
    session is synced.

    [domains > 1] runs the per-session decode/apply fan-out on that many
    Domains.  Buffers are pre-encoded before the fan-out, sessions are
    touched by exactly one domain each, and per-domain accounting is
    reduced in deterministic order — the report, the byte counters and
    every session's state are identical whatever [domains] is. *)

val all_synced : t -> bool
(** Every attached session holds exactly the cache's current VRP set. *)

(** {2 Accounting} *)

type stats = {
  publishes : int;      (** publish/publish_diff calls *)
  serial_bumps : int;   (** how many changed the router-visible state *)
  notify_batches : int; (** flushes that fanned out a notify *)
  coalesced : int;      (** serial bumps absorbed into an already-pending
                            batch — republishes routers never saw
                            individually *)
  encode_calls : int;   (** distinct response encodings performed *)
  bytes_encoded : int;  (** response bytes actually encoded — the encode-once
                            metric: flat in the session count *)
  bytes_sent : int;     (** response + notify bytes delivered to sessions —
                            grows with the session count *)
  bytes_received : int; (** query bytes received from sessions *)
  replays : int;        (** responses answered from an already-encoded
                            buffer *)
  resets : int;         (** Cache Reset decisions served *)
}

val stats : t -> stats
(** Cumulative since {!create}. *)
