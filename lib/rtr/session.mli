(** RTR cache-server and router-client state machines (RFC 6810 section 4).

    The cache stores the current VRP set plus a window of serial-numbered
    deltas — the same {!Vrp.diff} the relying party emits per sync — so a
    Serial Query is answered by composing stored deltas rather than
    diffing full snapshots.  Every exchange round-trips through the
    byte-exact {!Pdu} encoding.

    This module is the {e protocol core}: one cache, and the router state
    machine that talks to it.  Production relying parties fan the same
    cache out to thousands of routers — that multiplexed serving plane,
    with shared encode-once response buffers and batched serial-notify,
    is {!Server}; {!serve} below remains the one-session path it is built
    from (and the compatibility surface for code that predates it). *)

open Rpki_core
open Rpki_ip

(** {2 Cache (server) side} *)

type cache
(** Opaque cache state: session id, serial, current set, delta window. *)

val create_cache : ?session_id:int -> ?history_limit:int -> unit -> cache
(** [history_limit] bounds the retained delta window; serial queries from
    before the window are answered with Cache Reset. *)

val cache_session_id : cache -> int
val cache_serial : cache -> int

val cache_vrps : cache -> Vrp.t list
(** The currently installed (normalized) VRP set. *)

val set_data_age : cache -> int -> unit
(** Record the staleness of the relying-party data behind the current set
    (see {!Rpki_repo.Relying_party.max_data_age}).  Clamped at 0. *)

val cache_data_age : cache -> int
(** The serial says how current the {e protocol} state is; the data age says
    how current the {e data} is.  A cache fed from stale copies keeps
    bumping serials over old data — this is how routers and monitors can
    tell the difference.  0 until {!set_data_age} is called. *)

val publish : cache -> Vrp.t list -> unit
(** Install a new VRP set (e.g. after each relying-party sync); bumps the
    serial and records a delta only when the set actually changed. *)

exception
  Base_mismatch of {
    expected : int64;  (** fingerprint the producer computed its diff against *)
    actual : int64;    (** fingerprint of the set the cache actually holds *)
  }
(** Raised by {!publish_diff} when [expect_base] disagrees with the cache's
    feed: the diff was computed against some other set, and applying it
    would silently corrupt the delta window (routers would receive
    withdrawals of VRPs they never held, or miss announcements). *)

val feed_fingerprint : cache -> int64
(** {!Vrp.fingerprint} of the relying-party feed the cache holds (holds
    excluded) — what {!publish_diff}'s [expect_base] is checked against. *)

val publish_diff : ?expect_base:int64 -> cache -> Vrp.diff -> unit
(** Install a relying party's sync diff directly as the next serial delta.
    The diff must be relative to the cache's current feed — which holds when
    the cache is fed every sync of one relying party (empty diffs are
    no-ops).  Pass [expect_base] (the {!Vrp.fingerprint} of the set the
    diff was computed against) to have that precondition {e checked}:
    a disagreement raises {!Base_mismatch} instead of corrupting the
    window.  Without [expect_base] the historical unchecked behaviour is
    kept. *)

val hold : cache -> prefix:V4.Prefix.t -> vrps:Vrp.t list -> unit
(** Evidence-triggered freeze: pin every VRP covered by [prefix] at the
    given last-good set.  Takes effect immediately (serial bump if the
    router-visible set changes) and survives subsequent {!publish} /
    {!publish_diff} calls until {!release}d.  A second hold on the same
    prefix replaces the first. *)

val release : cache -> prefix:V4.Prefix.t -> unit
(** Drop the hold on [prefix]; the relying party's feed shows through again
    on the next republish (immediate serial bump if it differs). *)

val cache_holds : cache -> (V4.Prefix.t * Vrp.t list) list
(** Active holds, newest first. *)

val restore : cache -> serial:int -> vrps:Vrp.t list -> unit
(** Rehydrate from a persisted (serial, VRP set) pair after a restart.  The
    delta window is empty — non-matching routers take one Cache Reset — but
    the serial line continues instead of restarting from 0.  Clears holds. *)

val notify : cache -> Pdu.t
(** The Serial Notify a cache would push to connected routers. *)

val changes_since : cache -> serial:int -> (Vrp.t list * Vrp.t list) option
(** [(announced, withdrawn)] net of delta composition since [serial] —
    VRPs that flapped within the window are cancelled out; [None] when
    [serial] has left the retained window. *)

val serve : cache -> string -> string
(** Handle one encoded client request, returning the encoded response
    sequence (Cache Response … End of Data, or Cache Reset, or an Error
    Report).

    This is the one-session path: every call re-encodes the response from
    scratch.  Serving many routers from one cache goes through {!Server},
    which encodes each serial diff exactly once and replays the bytes;
    [serve] is kept as the single-router compatibility shim and as the
    reference the multiplexed plane is tested against. *)

(** {2 Router (client) side} *)

type router
(** Opaque router state: (session, serial) plus the VRPs it holds. *)

val create_router : unit -> router

val reset_router : router -> unit
(** Forget session, serial and VRPs — the client side of acting on a Cache
    Reset, before issuing a fresh Reset Query.  {!synchronize} does this
    internally; {!Server} needs it spelled out because it drives the
    exchange itself from shared buffers. *)

val router_session : router -> int option
val router_serial : router -> int
val router_vrps : router -> Vrp.t list

exception Protocol_error of string

val apply_response : router -> string -> [ `Synced | `Reset_required ]
(** Apply an encoded cache response to the router state. *)

val synchronize : router -> cache -> Vrp.t list
(** One synchronisation round: incremental when the session and serial
    allow, otherwise a full reset.  Returns the router's resulting VRPs. *)
