(* Closing the loop (Section 6): RPKI -> route validity -> BGP -> repository
   reachability -> RPKI.

   A discrete-time simulator in which, each tick, the relying party syncs
   the RPKI *over the data plane its previous sync produced*: a publication
   point can be fetched only if the RP currently has a working route to the
   repository's address.  A transient fault that invalidates the route to a
   repository therefore prevents the fetch that would repair it — the
   paper's persistent-failure mechanism.

   The sync is incremental across ticks: the relying party carries its
   origin-validation index forward and each tick's VRP diff is pushed into
   an RTR cache as a serial-numbered delta, so attached routers receive
   genuine RFC 6810 incremental updates rather than full resets. *)

open Rpki_core
open Rpki_repo
open Rpki_bgp
open Rpki_ip

type probe = {
  label : string;
  addr : Rpki_ip.Addr.V4.t;
  expected_origin : int;
}

type t = {
  universe : Universe.t;
  topo : Topology.t;
  policy : Policy.t;              (* uniform policy at every AS *)
  mutable rp : Relying_party.t;   (* mutable: a restart replaces the instance *)
  rtr : Rpki_rtr.Server.t;        (* the serving plane: fed one serial delta per
                                     changed tick, flushed once per tick *)
  mutable rtr_domains : int;      (* Domains for the flush fan-out *)
  announcements : Propagation.announcement list;
  probes : probe list;
  transport : Transport.t;        (* priced off the previous tick's data plane *)
  mutable fetch_policy : Relying_party.fetch_policy;
  mutable per_hop_latency : int;  (* transport ticks per forwarding hop *)
  mutable net : Data_plane.network option; (* data plane after the last tick *)
  mutable history : tick_record list;      (* newest first *)
  mutable vantages : Gossip.vantage list;  (* gossip mesh members, in
                                              registration order *)
  mutable gossip : Gossip.t option;        (* set by [enable_gossip] *)
  mutable gossip_period : int;    (* run a gossip round every this many ticks *)
  mutable disk : Rpki_persist.Disk.t option;     (* set by [enable_persistence] *)
  mutable stores : (string * Rpki_persist.Store.t) list; (* per-vantage snapshots *)
  mutable dead : string list;     (* killed vantages: no sync, no gossip, no save *)
  mutable epochs : (string * int) list;    (* last known log epoch per vantage *)
  mutable recoveries : (Rtime.t * string * Relying_party.recovery) list;
                                  (* every restart's outcome, newest first *)
  mutable point_good : (string * Vrp.t list) list;
                                  (* per publication point, the last VRP set the
                                     primary validated before any contradiction
                                     was served — what a hold pins *)
  mutable held_uris : (string * V4.Prefix.t list) list;
                                  (* points already frozen, with the prefixes
                                     their hold pinned *)
  mutable valcache : Valcache.t option;
                                  (* the shared validation plane every vantage
                                     syncs through; None = independent
                                     per-vantage validation (results are
                                     identical either way — only the crypto
                                     cost differs) *)
  mutable valcache_evict : bool;  (* run Valcache.end_tick at every tick end,
                                     dropping window-expired entries — flat
                                     residency under churn.  Pure memo: results
                                     are identical with it off *)
  mutable compact_every : int;    (* fold every persistence chain back into its
                                     base every this many ticks; 0 = never *)
  mutable save_full : bool;       (* force O(history) full snapshots instead of
                                     O(delta) segments — the pre-segmentation
                                     baseline the soak bench compares against *)
  mutable keep_history : bool;    (* accumulate tick records in [history];
                                     long soaks turn this off so the run's
                                     memory stays flat *)
}

and tick_record = {
  time : Rtime.t;
  vrp_count : int;
  issue_count : int;
  fetch_failures : string list; (* URIs not freshly fetched *)
  probe_results : (string * bool) list;
  vrp_diff : Vrp.diff;          (* change relative to the previous tick *)
  rtr_serial : int;             (* RTR cache serial after this tick *)
  points_reused : int;          (* publication points replayed from memo *)
  points_revalidated : int;     (* publication points validated from scratch *)
  sync_elapsed : int;           (* transport time the sync spent *)
  max_data_age : int;           (* worst staleness the sync accepted *)
  budget_exhausted : bool;      (* the fetch budget ran out this tick *)
  gossip_report : Gossip.round_report option;
                                (* the gossip round run this tick, if any *)
  regressions : Relying_party.regression list;
                                (* the primary's own-history contradictions *)
  rtr_holds : int;              (* evidence-triggered holds active on the cache *)
  sig_checks : int;             (* RSA verifications executed during this tick's
                                   sync phase, across all vantages *)
  sig_saved : int;              (* verifications answered by the shared
                                   validation plane's verdict memo; 0 without it *)
  unsafe_count : int;           (* unsafe VRPs the primary's sync reported *)
}

(* Latency of one request to a publication point, from the data plane the
   previous tick produced: the forwarding path's hop count times the per-hop
   cost — the Section 6 circularity as time, not just a boolean.  Traffic
   delivered to the wrong origin (a hijacker) is no route at all.  Before
   the first tick routing works and nothing has been priced yet. *)
let latency_from t ~asn (pp : Pub_point.t) =
  match t.net with
  | None -> Some 0
  | Some net -> (
    match Data_plane.trace net ~src:asn ~addr:(Pub_point.addr pp) with
    | Data_plane.Delivered { origin; hops } when origin = Pub_point.host_asn pp ->
      Some (t.per_hop_latency * List.length hops)
    | Data_plane.Delivered _ | Data_plane.No_route _ | Data_plane.Loop _ -> None)

let point_latency t pp = latency_from t ~asn:(Relying_party.asn t.rp) pp

let create ~universe ~topo ~policy ~rp ~announcements ~probes =
  let t =
    { universe; topo; policy; rp; rtr = Rpki_rtr.Server.create (); rtr_domains = 1;
      announcements; probes;
      transport = Transport.create (); fetch_policy = Relying_party.default_policy;
      per_hop_latency = 1; net = None; history = []; vantages = []; gossip = None;
      gossip_period = 1; disk = None; stores = []; dead = []; epochs = [];
      recoveries = []; point_good = []; held_uris = [];
      valcache = Some (Valcache.create ()); valcache_evict = true;
      compact_every = 0; save_full = false; keep_history = true }
  in
  Transport.set_latency_of t.transport (point_latency t);
  t

let rtr_server t = t.rtr
let rtr_cache t = Rpki_rtr.Server.cache t.rtr
let transport t = t.transport
let set_fetch_policy t p = t.fetch_policy <- p
let set_per_hop_latency t c = t.per_hop_latency <- max 0 c

(* Toggle the shared validation plane.  Enabling mid-run starts from an
   empty cache; disabling drops it (results are unaffected either way). *)
let set_valcache t enabled =
  match (enabled, t.valcache) with
  | true, Some _ | false, None -> ()
  | true, None -> t.valcache <- Some (Valcache.create ())
  | false, Some _ -> t.valcache <- None

let valcache t = t.valcache
let valcache_enabled t = Option.is_some t.valcache

(* --- vantages and gossip --- *)

let check_not_gossiping t caller =
  if Option.is_some t.gossip then
    invalid_arg (caller ^ ": gossip already enabled; register vantages first")

let add_vantage t v =
  if List.exists (fun w -> String.equal w.Gossip.v_name v.Gossip.v_name) t.vantages then
    invalid_arg ("Loop: duplicate vantage " ^ v.Gossip.v_name);
  t.vantages <- t.vantages @ [ v ]

let primary_vantage t ~endpoint =
  check_not_gossiping t "Loop.primary_vantage";
  add_vantage t
    { Gossip.v_name = Relying_party.name t.rp; v_rp = t.rp; v_endpoint = endpoint;
      v_transport = t.transport }

let register_vantage t ~name ~rp ~endpoint =
  check_not_gossiping t "Loop.register_vantage";
  (* the extra vantage experiences the same network, but from its own AS:
     its transport prices every request off the previous tick's data plane
     as seen from [rp]'s seat *)
  let tr = Transport.create () in
  Transport.set_latency_of tr (latency_from t ~asn:(Relying_party.asn rp));
  add_vantage t { Gossip.v_name = name; v_rp = rp; v_endpoint = endpoint; v_transport = tr }

let vantage_names t = List.map (fun v -> v.Gossip.v_name) t.vantages

let vantage t ~name =
  match List.find_opt (fun v -> String.equal v.Gossip.v_name name) t.vantages with
  | Some v -> v
  | None -> invalid_arg ("Loop.vantage: unknown vantage " ^ name)

let vantage_transport t ~name = (vantage t ~name).Gossip.v_transport

let enable_gossip ?(period = 1) ?timeout ?overlay ?overlay_seed t =
  check_not_gossiping t "Loop.enable_gossip";
  t.gossip <- Some (Gossip.create ?timeout ?overlay ?overlay_seed t.vantages);
  t.gossip_period <- max 1 period

let gossip_mesh t = t.gossip

(* --- persistence, crash and restart --- *)

let is_dead t name = List.mem name t.dead

let vantage_alive t ~name = not (is_dead t name)

let enable_persistence t disk = t.disk <- Some disk

let persistence_enabled t = Option.is_some t.disk

(* --- configuration record --- *)

module Config = struct
  type vantage_spec = {
    name : string;
    rp : Relying_party.t;
    endpoint : Pub_point.t;
  }

  type t = {
    fetch_policy : Relying_party.fetch_policy;
    per_hop_latency : int;
    valcache : bool;
    valcache_evict : bool;
    rtr_domains : int;
    primary_endpoint : Pub_point.t option;
    vantages : vantage_spec list;
    gossip_period : int option;
    gossip_timeout : int option;
    gossip_overlay : Gossip.Overlay.spec;
    gossip_overlay_seed : int;
    persistence : Rpki_persist.Disk.t option;
    compact_every : int;
    save_full : bool;
    keep_history : bool;
  }

  let default =
    { fetch_policy = Relying_party.default_policy; per_hop_latency = 1;
      valcache = true; valcache_evict = true; rtr_domains = 1;
      primary_endpoint = None; vantages = [];
      gossip_period = None; gossip_timeout = None;
      gossip_overlay = Gossip.Overlay.Full_mesh;
      gossip_overlay_seed = Gossip.Overlay.default_seed; persistence = None;
      compact_every = 0; save_full = false; keep_history = true }
end

(* Apply the knobs in dependency order: scalars first, then vantage
   registration (primary before extras, so the mesh order is stable), then
   gossip — which freezes the vantage list — and persistence last. *)
let configure t (c : Config.t) =
  set_fetch_policy t c.Config.fetch_policy;
  set_per_hop_latency t c.Config.per_hop_latency;
  set_valcache t c.Config.valcache;
  t.valcache_evict <- c.Config.valcache_evict;
  t.compact_every <- max 0 c.Config.compact_every;
  t.save_full <- c.Config.save_full;
  t.keep_history <- c.Config.keep_history;
  t.rtr_domains <- max 1 c.Config.rtr_domains;
  Option.iter (fun endpoint -> primary_vantage t ~endpoint) c.Config.primary_endpoint;
  List.iter
    (fun (v : Config.vantage_spec) ->
      register_vantage t ~name:v.Config.name ~rp:v.Config.rp ~endpoint:v.Config.endpoint)
    c.Config.vantages;
  Option.iter
    (fun period ->
      enable_gossip ~period ?timeout:c.Config.gossip_timeout
        ~overlay:c.Config.gossip_overlay ~overlay_seed:c.Config.gossip_overlay_seed t)
    c.Config.gossip_period;
  Option.iter (fun disk -> enable_persistence t disk) c.Config.persistence

(* One snapshot store per vantage, named after it, created lazily on the
   shared simulated disk. *)
let store_for t name =
  match t.disk with
  | None -> None
  | Some disk -> (
    match List.assoc_opt name t.stores with
    | Some s -> Some s
    | None ->
      let s = Rpki_persist.Store.create disk ~name in
      t.stores <- (name, s) :: t.stores;
      Some s)

let vantage_store t ~name =
  match store_for t name with
  | Some s -> s
  | None -> invalid_arg "Loop.vantage_store: persistence is not enabled"

let note_epoch t name epoch =
  t.epochs <- (name, epoch) :: List.remove_assoc name t.epochs

let known_vantage t name =
  String.equal name (Relying_party.name t.rp)
  || List.exists (fun v -> String.equal v.Gossip.v_name name) t.vantages

let kill_vantage t ~name =
  if not (known_vantage t name) then
    invalid_arg ("Loop.kill_vantage: unknown vantage " ^ name);
  if not (is_dead t name) then t.dead <- name :: t.dead

(* Bring a killed vantage back as a *new relying-party instance* under the
   same name: process state (caches, memos, gossip memory) is gone; only
   what [Relying_party.save] persisted can come back, and only if the
   snapshot survives its own verification.  [make] rebuilds the instance —
   it is handed the pessimistic next log epoch, which [restore] overrides
   with the persisted epoch when the snapshot is good, so a failed restore
   visibly starts a new log incarnation instead of impersonating a
   truncated continuation of the old one. *)
let restart_vantage t ~name ~now ~make =
  if not (is_dead t name) then
    invalid_arg ("Loop.restart_vantage: " ^ name ^ " is not down");
  let next_epoch = 1 + Option.value ~default:0 (List.assoc_opt name t.epochs) in
  let rp = (make ~log_epoch:next_epoch : Relying_party.t) in
  if not (String.equal (Relying_party.name rp) name) then
    invalid_arg "Loop.restart_vantage: the rebuilt relying party must keep the name";
  let recovery =
    match store_for t name with
    | None -> Relying_party.Recovered_fresh Relying_party.No_snapshot
    | Some store -> Relying_party.restore rp store
  in
  let primary = String.equal name (Relying_party.name t.rp) in
  if primary then t.rp <- rp;
  List.iter
    (fun v -> if String.equal v.Gossip.v_name name then v.Gossip.v_rp <- rp)
    t.vantages;
  if primary then begin
    (* the RTR cache is fed by the primary: rehydrate its serial line from
       the snapshot, or concede a session-visible reset when nothing could
       be restored.  Holds are process state and do not survive. *)
    (match recovery with
    | Relying_party.Recovered { rc_rtr_serial; _ } ->
      Rpki_rtr.Server.restore t.rtr ~serial:rc_rtr_serial ~vrps:(Relying_party.vrps rp)
    | Relying_party.Recovered_fresh _ ->
      Rpki_rtr.Server.restore t.rtr ~serial:0 ~vrps:[]);
    t.held_uris <- [];
    (* the per-point last-good memory is the victim's memory: it survives
       exactly when the snapshot did *)
    (match recovery with
    | Relying_party.Recovered _ -> ()
    | Relying_party.Recovered_fresh _ -> t.point_good <- [])
  end;
  (match t.gossip with
  | None -> ()
  | Some g ->
    Gossip.forget_receiver g ~name;
    (match recovery with
    | Relying_party.Recovered _ -> Gossip.reseed_receiver g ~name
    | Relying_party.Recovered_fresh _ -> ()));
  note_epoch t name (Relying_party.log_epoch rp);
  t.dead <- List.filter (fun n -> not (String.equal n name)) t.dead;
  t.recoveries <- (now, name, recovery) :: t.recoveries;
  recovery

let recoveries t = List.rev t.recoveries

(* Freeze the router-visible VRPs of every prefix a publication point
   contributes, at the last state validated before any contradiction was
   served.  Prefixes the tainted view adds beyond the last-good set are
   pinned empty — the replayed object is stripped, not trusted. *)
let install_hold t ~uri =
  if not (List.mem_assoc uri t.held_uris) then begin
    let good = Option.value ~default:[] (List.assoc_opt uri t.point_good) in
    let current =
      if is_dead t (Relying_party.name t.rp) then []
      else Relying_party.point_vrps t.rp ~uri
    in
    let prefixes =
      List.sort_uniq compare
        (List.map (fun (v : Vrp.t) -> v.Vrp.prefix) (good @ current))
    in
    List.iter
      (fun prefix ->
        let pinned =
          List.filter (fun (v : Vrp.t) -> V4.Prefix.equal v.Vrp.prefix prefix) good
        in
        Rpki_rtr.Server.hold t.rtr ~prefix ~vrps:pinned)
      prefixes;
    if prefixes <> [] then t.held_uris <- (uri, prefixes) :: t.held_uris
  end

let release_hold t ~uri =
  match List.assoc_opt uri t.held_uris with
  | None -> ()
  | Some prefixes ->
    List.iter (fun prefix -> Rpki_rtr.Server.release t.rtr ~prefix) prefixes;
    t.held_uris <- List.remove_assoc uri t.held_uris

(* Reachability of a publication point from the RP's AS, judged on the data
   plane computed at the previous tick.  Before the first tick the RP has
   never applied RPKI filtering, so everything is reachable (deployment
   starts from working routing). *)
let point_reachable t (pp : Pub_point.t) =
  match t.net with
  | None -> true
  | Some net ->
    Data_plane.reaches net ~src:(Relying_party.asn t.rp) ~addr:(Pub_point.addr pp)
      ~expected:(Pub_point.host_asn pp)

let regression_uri = function
  | Relying_party.Serial_regression { rg_uri; _ }
  | Relying_party.Content_equivocation { rg_uri; _ } -> rg_uri

let step t ~now =
  Universe.refresh_mirrors t.universe;
  Universe.refresh_rrdp t.universe;
  (* batch scheduling: one universe digest for the whole tick — the walk
     plan every vantage shares — computed here rather than once per
     vantage.  The shared plane's per-tick statistics baseline is reset at
     the same boundary. *)
  (match t.valcache with
  | Some vc -> Valcache.begin_tick vc ~digest:(Valcache.universe_digest t.universe)
  | None -> ());
  let verifies_before = Rpki_crypto.Rsa.verification_count () in
  let primary_alive = not (is_dead t (Relying_party.name t.rp)) in
  let result =
    if primary_alive then
      Some
        (Relying_party.sync t.rp ~now ~universe:t.universe ~transport:t.transport
           ~policy:t.fetch_policy ?valcache:t.valcache ())
    else None
  in
  (* every other live vantage observes the same universe this tick, over its
     own transport (same previous-tick data plane, priced from its own AS) —
     filling its transparency log with what *it* was served.  All vantages
     consult the same shared validation plane: content they observe
     identically is verified once, content a split view forked hashes to a
     different cache line and is verified per view. *)
  List.iter
    (fun (v : Gossip.vantage) ->
      if (not (v.Gossip.v_rp == t.rp)) && not (is_dead t v.Gossip.v_name) then
        ignore
          (Relying_party.sync v.Gossip.v_rp ~now ~universe:t.universe
             ~transport:v.Gossip.v_transport ~policy:t.fetch_policy
             ?valcache:t.valcache ()))
    t.vantages;
  let sig_checks = Rpki_crypto.Rsa.verification_count () - verifies_before in
  let sig_saved =
    match t.valcache with
    | Some vc -> (Valcache.tick_stats vc).Valcache.sig_saved
    | None -> 0
  in
  (* the sync's diff becomes the RTR cache's next serial delta; the sync's
     data staleness rides along so routers can tell fresh serials over old
     data from fresh data.  A dead primary feeds nothing: routers keep the
     cache's last state, exactly as real RTR clients would. *)
  (match result with
  | Some r ->
    (* the diff was computed against the previous sync's VRPs — recover that
       base and fingerprint it, so a diff fed against any other state is a
       typed error instead of silent delta-window corruption *)
    let base =
      Vrp.apply_diff r.Relying_party.vrps (Vrp.invert_diff r.Relying_party.diff)
    in
    Rpki_rtr.Server.publish_diff ~expect_base:(Vrp.fingerprint base) t.rtr
      r.Relying_party.diff;
    Rpki_rtr.Server.set_data_age t.rtr (Relying_party.max_data_age r);
    Rpki_rtr.Server.set_unsafe t.rtr (List.length r.Relying_party.unsafe_vrps)
  | None -> ());
  (* a sync that contradicted the primary's own restored history is local
     evidence — no gossip needed — and freezes the affected prefixes at the
     last-good set before the data plane is rebuilt *)
  let regressions =
    match result with Some r -> r.Relying_party.regressions | None -> []
  in
  List.iter (fun rg -> install_hold t ~uri:(regression_uri rg)) regressions;
  (* routers act on the RTR cache — the primary's feed with any holds
     applied — so the data plane is classified from the cache's view *)
  let rtr_index = Origin_validation.build (Rpki_rtr.Session.cache_vrps (rtr_cache t)) in
  let validity_of r = Origin_validation.classify rtr_index r in
  let net =
    Data_plane.build ~topo:t.topo ~policy_of:(fun _ -> t.policy) ~validity_of t.announcements
  in
  t.net <- Some net;
  let probe_results =
    List.map
      (fun p ->
        ( p.label,
          Data_plane.reaches net ~src:(Relying_party.asn t.rp) ~addr:p.addr
            ~expected:p.expected_origin ))
      t.probes
  in
  let fetch_failures =
    match result with
    | None -> []
    | Some r ->
      List.filter_map
        (fun (uri, st) ->
          match st with
          | Relying_party.Fetched | Relying_party.Fetched_mirror
          | Relying_party.Fetched_rrdp ->
            None (* mirror and RRDP copies are fresh data, not failures *)
          | Relying_party.Stale_cache | Relying_party.Unavailable -> Some uri)
        r.Relying_party.fetches
  in
  (* gossip runs after routing converges: tree-head pulls travel the data
     plane this tick produced, so a partitioned vantage also cannot gossip —
     and neither can a killed one *)
  let gossip_report =
    match t.gossip with
    | Some g when now mod t.gossip_period = 0 ->
      Some (Gossip.round ~alive:(fun n -> not (is_dead t n)) g ~now)
    | _ -> None
  in
  (* cross-vantage evidence (fork or served rollback) that re-verifies from
     scratch under the vantages' own keys also triggers a hold; it lands on
     the next tick's data plane, gossip having run after this one's *)
  (match gossip_report with
  | None -> ()
  | Some rep ->
    let key_of vname =
      List.find_map
        (fun v ->
          if String.equal v.Gossip.v_name vname then
            Some (Relying_party.transparency_key v.Gossip.v_rp)
          else None)
        t.vantages
    in
    (* the proven-honest side of an evidence bundle: for a fork involving
       the primary, the attested record from the *other* vantage; for a
       served rollback, the state recorded earlier under the higher
       manifest number.  A fork between two non-primary monitors proves
       nothing about the primary's own state, so it installs a plain hold. *)
    let primary_name = Relying_party.name t.rp in
    let honest_side = function
      | Gossip.Fork { left; right; _ } ->
        if String.equal left.Gossip.att_vantage primary_name then Some right
        else if String.equal right.Gossip.att_vantage primary_name then Some left
        else None
      | Gossip.Rollback { rb_earlier; _ } -> Some rb_earlier
      | _ -> None
    in
    List.iter
      (fun alarm ->
        match alarm with
        | Gossip.Fork { fork_uri = uri; _ } | Gossip.Rollback { rb_uri = uri; _ } ->
          if Gossip.verify_fork ~key_of alarm then begin
            (* When gossip proves the fork late (period > 1), the tainted
               view has already been absorbed into [point_good] by earlier
               ticks.  Roll last-good back to the newest state this vantage
               itself validated under the proven-honest side's VRP-set
               hash, so the hold freezes at honest data instead of pinning
               the tainted view.  No match (restarted vantage, state never
               seen) leaves last-good alone — the pre-existing fail-safe. *)
            (match honest_side alarm with
            | None -> ()
            | Some side ->
              let vrp_hash =
                side.Gossip.att_obs.Rpki_transparency.Log.ob_vrp_hash
              in
              (match Relying_party.rollback_last_good t.rp ~uri ~vrp_hash with
              | Some vrps ->
                t.point_good <- (uri, vrps) :: List.remove_assoc uri t.point_good
              | None -> ()));
            install_hold t ~uri
          end
        | Gossip.Inconsistent_heads _ | Gossip.Bad_head_signature _
        | Gossip.Bad_inclusion _ | Gossip.Log_reset _ -> ())
      rep.Gossip.r_alarms);
  (* update the per-point last-good memory — but never from a point that is
     under a hold or contradicted history this tick: that state is tainted *)
  (match result with
  | None -> ()
  | Some r ->
    let regressed = List.map regression_uri regressions in
    List.iter
      (fun (uri, _) ->
        if (not (List.mem_assoc uri t.held_uris)) && not (List.mem uri regressed)
        then
          t.point_good <-
            (uri, Relying_party.point_vrps t.rp ~uri)
            :: List.remove_assoc uri t.point_good)
      r.Relying_party.fetches);
  (* durable state is snapshotted after gossip, so the peer heads verified
     this round are part of the baseline a restart gets back *)
  if persistence_enabled t then begin
    let mode = if t.save_full then `Full else `Auto in
    if primary_alive then
      Option.iter
        (fun store ->
          ignore
            (Relying_party.save t.rp ~now ~mode
               ~rtr_serial:(Rpki_rtr.Session.cache_serial (rtr_cache t)) store))
        (store_for t (Relying_party.name t.rp));
    List.iter
      (fun (v : Gossip.vantage) ->
        if (not (v.Gossip.v_rp == t.rp)) && not (is_dead t v.Gossip.v_name) then
          Option.iter
            (fun store -> ignore (Relying_party.save v.Gossip.v_rp ~now ~mode store))
            (store_for t v.Gossip.v_name))
      t.vantages;
    (* scheduled compaction: fold each chain back into its base.  A
       detected disk fault leaves the store segmented and loadable, so the
       result is deliberately ignored here — restore still works either
       way, and benches read the fault trail off the disk itself *)
    if t.compact_every > 0 && now mod t.compact_every = 0 then
      List.iter
        (fun (_, store) -> ignore (Relying_party.compact_store store ~now))
        t.stores
  end;
  (* one batched notify per tick: the sync's publish and every hold taken
     this tick (local regressions and gossip-verified evidence) coalesce
     into a single Serial Notify fan-out to the attached sessions *)
  ignore (Rpki_rtr.Server.flush ~domains:t.rtr_domains t.rtr);
  let record =
    { time = now;
      vrp_count =
        (match result with
        | Some r -> List.length r.Relying_party.vrps
        | None -> List.length (Rpki_rtr.Session.cache_vrps (rtr_cache t)));
      issue_count =
        (match result with Some r -> List.length r.Relying_party.issues | None -> 0);
      fetch_failures;
      probe_results;
      vrp_diff =
        (match result with Some r -> r.Relying_party.diff | None -> Vrp.empty_diff);
      rtr_serial = Rpki_rtr.Session.cache_serial (rtr_cache t);
      points_reused =
        (match result with Some r -> r.Relying_party.points_reused | None -> 0);
      points_revalidated =
        (match result with Some r -> r.Relying_party.points_revalidated | None -> 0);
      sync_elapsed =
        (match result with Some r -> r.Relying_party.sync_elapsed | None -> 0);
      max_data_age =
        (match result with Some r -> Relying_party.max_data_age r | None -> 0);
      budget_exhausted =
        (match result with Some r -> r.Relying_party.budget_exhausted | None -> false);
      gossip_report;
      regressions;
      rtr_holds = List.length (Rpki_rtr.Session.cache_holds (rtr_cache t));
      sig_checks;
      sig_saved;
      unsafe_count =
        (match result with
        | Some r -> List.length r.Relying_party.unsafe_vrps
        | None -> 0) }
  in
  (* epoch-based eviction at the tick boundary: entries whose every
     consulted validity window has closed can never serve another hit *)
  (match t.valcache with
  | Some vc when t.valcache_evict -> Valcache.end_tick vc ~now
  | _ -> ());
  if t.keep_history then t.history <- record :: t.history;
  record

let history t = List.rev t.history

let first_fork_tick t =
  List.find_map
    (fun r ->
      match r.gossip_report with
      | Some rep when List.exists Gossip.is_fork rep.Gossip.r_alarms -> Some r.time
      | _ -> None)
    (history t)

let first_rollback_tick t =
  List.find_map
    (fun r ->
      let local = r.regressions <> [] in
      let gossiped =
        match r.gossip_report with
        | Some rep -> List.exists Gossip.is_rollback rep.Gossip.r_alarms
        | None -> false
      in
      if local || gossiped then Some r.time else None)
    (history t)

let pp_record fmt r =
  Format.fprintf fmt "%a: %d VRPs (%+d/-%d), %d issues, %d fetch failures, rtr#%d, probes: %s"
    Rtime.pp r.time r.vrp_count
    (List.length r.vrp_diff.Vrp.added)
    (List.length r.vrp_diff.Vrp.removed)
    r.issue_count
    (List.length r.fetch_failures)
    r.rtr_serial
    (String.concat ", "
       (List.map (fun (l, ok) -> Printf.sprintf "%s=%s" l (if ok then "up" else "DOWN"))
          r.probe_results));
  match r.gossip_report with
  | None -> ()
  | Some rep ->
    Format.fprintf fmt ", gossip: %d alarm(s)%s"
      (List.length rep.Gossip.r_alarms)
      (if List.exists Gossip.is_fork rep.Gossip.r_alarms then " [FORK]" else "")

(* --- the canned Section 6 scenario --- *)

type section6 = {
  sim : t;
  model : Model.t;
  continental_repo : Pub_point.t;
  target_filename : string; (* the ROA whose corruption starts the spiral *)
}

(* Figure 5 (right) state: model RPKI plus Sprint's covering ROA; the small
   topology with every repository host attached; Continental Broadband
   hosting its own repository inside 63.174.16.0/20 (AS 17054). *)
let section6_scenario ?(policy = Policy.Drop_invalid) ?grace ?(mirrored = false)
    ?(rrdp = false) ?validity ?refresh_interval () =
  let model = Model.build ?validity ?refresh_interval () in
  let _ = Model.add_fig5_right_roa model ~now:Rtime.epoch in
  let s = Topo_gen.small_scenario () in
  let topo = s.Topo_gen.small_topo in
  (* attach the repository-hosting ASes *)
  Topology.link topo ~provider:s.Topo_gen.t1a ~customer:Model.as_sprint;
  Topology.link topo ~provider:s.Topo_gen.mid1 ~customer:Model.as_etb;
  Topology.link topo ~provider:s.Topo_gen.t1b ~customer:Model.as_arin_host;
  (* AS 17054 (Continental) is already in the topology as the "victim" *)
  let ann prefix origin = { Propagation.prefix = V4.p prefix; origin } in
  let announcements =
    [ ann "199.5.26.0/24" Model.as_arin_host;       (* ARIN repo; no ROA: unknown *)
      ann "63.161.0.0/16" Model.as_sprint;           (* Sprint repo; valid *)
      ann "63.170.0.0/16" Model.as_etb;              (* ETB repo; valid *)
      ann "63.174.16.0/20" Model.as_continental ]    (* Continental repo; valid iff /20 ROA fetched *)
  in
  let rp = Model.relying_party ~asn:s.Topo_gen.source ?grace model in
  (* optional mitigation (draft-sidr-multiple-publication-points): mirror
     Continental's repository inside Sprint's address space, whose route
     does not depend on Continental's own objects *)
  if mirrored then begin
    let mirror =
      Pub_point.create ~uri:"rsync://mirror.sprint.net/continental"
        ~addr:(V4.addr_of_string_exn "63.161.200.1") ~host_asn:Model.as_sprint
    in
    Universe.add_mirror model.Model.universe
      ~of_uri:(Pub_point.uri (Authority.pub model.Model.continental)) mirror
  end;
  (* optional RRDP delta service (RFC 8182) for Continental's repository,
     its notification endpoint likewise hosted in Sprint's address space *)
  if rrdp then begin
    let endpoint =
      Pub_point.create ~uri:"https://rrdp.sprint.net/continental"
        ~addr:(V4.addr_of_string_exn "63.161.200.2") ~host_asn:Model.as_sprint
    in
    Universe.add_rrdp model.Model.universe
      ~of_uri:(Pub_point.uri (Authority.pub model.Model.continental)) endpoint
  end;
  let probes =
    [ { label = "continental-repo"; addr = Model.continental_repo_addr;
        expected_origin = Model.as_continental };
      { label = "sprint-repo"; addr = Model.sprint_repo_addr; expected_origin = Model.as_sprint } ]
  in
  let sim = create ~universe:model.Model.universe ~topo ~policy ~rp ~announcements ~probes in
  let continental_repo = Authority.pub model.Model.continental in
  { sim; model; continental_repo; target_filename = model.Model.roa_target20 }

(* Run the Side Effect 7 timeline: healthy ticks, a transient corruption of
   the critical ROA, repair, then more ticks.  Returns the full history. *)
let run_section6 ?(policy = Policy.Drop_invalid) ?(flush_cache_at = None) ?grace
    ?(mirrored = false) () =
  let sc = section6_scenario ~policy ?grace ~mirrored () in
  let t = sc.sim in
  (* ticks 1-2: healthy *)
  ignore (step t ~now:1);
  ignore (step t ~now:2);
  (* tick 3: the RP receives a corrupted copy of the critical ROA *)
  let fault =
    Fault.corrupt_object sc.continental_repo ~filename:sc.target_filename ()
  in
  ignore (step t ~now:3);
  (* tick 4: the repository is repaired... *)
  Option.iter Fault.repair fault;
  ignore (step t ~now:4);
  (* ticks 5-7: ...but can the RP see the repair? *)
  ignore (step t ~now:5);
  (match flush_cache_at with
  | Some tick when tick <= 6 -> Relying_party.flush_cache t.rp
  | _ -> ());
  ignore (step t ~now:6);
  ignore (step t ~now:7);
  (sc, history t)

(* --- the canned split-view scenario --- *)

type split_view = {
  sv_sim : t;
  sv_model : Model.t;
  sv_target_filename : string;
  sv_monitors : string list;
}

(* Monitor vantages sit at the repository-hosting ASes already attached to
   the Section 6 topology; each log endpoint lives inside a prefix that AS
   announces, so gossip pulls have a route to travel. *)
let monitor_specs =
  [ ("monitor-sprint", "63.161.200.9");
    ("monitor-etb", "63.170.200.9");
    ("monitor-arin", "199.5.26.9") ]

let monitor_asn = function
  | "monitor-sprint" -> Model.as_sprint
  | "monitor-etb" -> Model.as_etb
  | "monitor-arin" -> Model.as_arin_host
  | name -> invalid_arg ("Loop.monitor_asn: " ^ name)

(* Beyond the three named monitors, further vantages are synthesized
   round-robin over the same repository-hosting ASes, each with its own log
   endpoint inside a prefix that AS announces — the scaling configuration
   for the multi-vantage experiments. *)
let monitor_spec i =
  match List.nth_opt monitor_specs i with
  | Some (name, addr) -> (name, addr, monitor_asn name)
  | None -> (
    let i' = i - List.length monitor_specs in
    let j = (i' / 3) + 1 in
    match i' mod 3 with
    | 0 ->
      ( Printf.sprintf "monitor-sprint-%d" j,
        Printf.sprintf "63.161.%d.%d" (201 + (j / 200)) (10 + (j mod 200)),
        Model.as_sprint )
    | 1 ->
      ( Printf.sprintf "monitor-etb-%d" j,
        Printf.sprintf "63.170.%d.%d" (201 + (j / 200)) (10 + (j mod 200)),
        Model.as_etb )
    | _ ->
      (* ARIN's repo prefix is a single /24: capped well below its width *)
      if j > 240 then invalid_arg "Loop.split_view_scenario: too many monitors";
      (Printf.sprintf "monitor-arin-%d" j, Printf.sprintf "199.5.26.%d" (10 + j),
       Model.as_arin_host))

let split_view_scenario ?(policy = Policy.Drop_invalid) ?(grace = 4) ?(monitors = 2)
    ?(gossip_period = 1) ?(overlay = Gossip.Overlay.Full_mesh)
    ?(overlay_seed = Gossip.Overlay.default_seed)
    ?(fetch_policy = Relying_party.resilient_policy)
    ?validity ?refresh_interval ?(valcache = true) () =
  if monitors < 0 then invalid_arg "Loop.split_view_scenario: negative monitors";
  let model = Model.build ?validity ?refresh_interval () in
  let _ = Model.add_fig5_right_roa model ~now:Rtime.epoch in
  let s = Topo_gen.small_scenario () in
  let topo = s.Topo_gen.small_topo in
  Topology.link topo ~provider:s.Topo_gen.t1a ~customer:Model.as_sprint;
  Topology.link topo ~provider:s.Topo_gen.mid1 ~customer:Model.as_etb;
  Topology.link topo ~provider:s.Topo_gen.t1b ~customer:Model.as_arin_host;
  let ann prefix origin = { Propagation.prefix = V4.p prefix; origin } in
  let announcements =
    [ ann "199.5.26.0/24" Model.as_arin_host;
      ann "63.161.0.0/16" Model.as_sprint;
      ann "63.170.0.0/16" Model.as_etb;
      ann "63.174.16.0/20" Model.as_continental;
      (* the victim vantage's own log endpoint: benchmark space with no
         covering ROA, so the route is unknown and survives filtering *)
      ann "198.18.0.0/24" s.Topo_gen.source ]
  in
  (* the victim runs grace (Suspenders): a forked-away VRP is held for
     [grace] ticks, which is the window gossip detection has to beat *)
  let rp = Model.relying_party ~name:"victim-rp" ~asn:s.Topo_gen.source ~grace model in
  let probes =
    [ { label = "continental-repo"; addr = Model.continental_repo_addr;
        expected_origin = Model.as_continental };
      { label = "sprint-repo"; addr = Model.sprint_repo_addr; expected_origin = Model.as_sprint } ]
  in
  let sim = create ~universe:model.Model.universe ~topo ~policy ~rp ~announcements ~probes in
  let chosen = List.init monitors monitor_spec in
  configure sim
    { Config.default with
      Config.fetch_policy; valcache;
      primary_endpoint =
        Some
          (Pub_point.create ~uri:"rsync://victim-rp.example/log"
             ~addr:(V4.addr_of_string_exn "198.18.0.7") ~host_asn:s.Topo_gen.source);
      vantages =
        List.map
          (fun (name, addr, asn) ->
            { Config.name; rp = Model.relying_party ~name ~asn model;
              endpoint =
                Pub_point.create
                  ~uri:("rsync://" ^ name ^ ".example/log")
                  ~addr:(V4.addr_of_string_exn addr) ~host_asn:asn })
          chosen;
      gossip_period = (if monitors > 0 then Some gossip_period else None);
      gossip_overlay = overlay; gossip_overlay_seed = overlay_seed };
  { sv_sim = sim; sv_model = model; sv_target_filename = model.Model.roa_target20;
    sv_monitors = List.map (fun (n, _, _) -> n) chosen }

(* --- the canned restart / rollback scenario --- *)

type restart_rig = {
  rr_sv : split_view;
  rr_disk : Rpki_persist.Disk.t;
  rr_respawn : log_epoch:int -> Relying_party.t;
}

(* The split-view setting rigged for crash-and-rollback experiments: the
   victim vantage gets a snapshot store on [rr_disk] (when [persist]), and
   [rr_respawn] rebuilds the victim instance for [restart_vantage] — same
   name, AS, trust anchor and grace as the original, so the only thing a
   restart changes is what survived on disk. *)
let restart_scenario ?(persist = true) ?(grace = 4) ?(monitors = 2)
    ?(gossip_period = 1) ?valcache () =
  let sv = split_view_scenario ~grace ~monitors ~gossip_period ?valcache () in
  let disk = Rpki_persist.Disk.create () in
  if persist then enable_persistence sv.sv_sim disk;
  let asn = Relying_party.asn sv.sv_sim.rp in
  let respawn ~log_epoch =
    Model.relying_party ~name:"victim-rp" ~asn ~grace ~log_epoch sv.sv_model
  in
  { rr_sv = sv; rr_disk = disk; rr_respawn = respawn }

(* --- scenarios on generated worlds --------------------------------------

   The same split-view / stall / restart settings, parameterized by an
   {!Rpki_world.Synthesis} world instead of the fixed Section 6 model: the
   graph is generated (power-law, thousands of ASes), the universe is
   synthesized onto it, monitor vantages are placed by a
   {!Rpki_world.Placement} policy, and transport is priced off the
   generated data plane exactly as for the canned scenarios. *)

module World = Rpki_world.Synthesis
module Placement = Rpki_world.Placement

type world_rig = {
  wr_sim : t;
  wr_world : World.world;
  wr_target_filename : string;     (* the victim's ROA — the fork target *)
  wr_target_authority : Authority.t;
  wr_monitors : string list;
  wr_disk : Rpki_persist.Disk.t option;
  wr_respawn : (log_epoch:int -> Relying_party.t) option;
}

(* A fetch policy scaled to the world: the resilient shape, with the sync
   budget sized to the number of publication points times a generous
   per-point transport allowance (generated graphs have diameter ~5-6). *)
let world_fetch_policy (w : World.world) =
  let points = List.length (World.cas w) + 1 in
  { Relying_party.resilient_policy with
    Relying_party.sync_budget =
      max Relying_party.resilient_policy.Relying_party.sync_budget (64 * points) }

let world_scenario ?(policy = Policy.Drop_invalid) ?(grace = 4) ?(monitors = 2)
    ?(placement = Placement.By_degree) ?(gossip_period = 1)
    ?(overlay = Gossip.Overlay.Full_mesh)
    ?(overlay_seed = Gossip.Overlay.default_seed) ?fetch_policy
    ?(valcache = true) ?(persist = false) ?(world = World.default_spec) () =
  if monitors < 0 then invalid_arg "Loop.world_scenario: negative monitors";
  let w = World.build world in
  let g = World.graph w in
  let rp_asn = World.rp_asn w in
  let tals = [ Relying_party.tal_of_authority (World.root w) ] in
  let rp = Relying_party.create ~name:"victim-rp" ~asn:rp_asn ~tals ~grace () in
  let monitor_asns =
    Placement.vantage_asns g placement ~count:monitors ~exclude:[ rp_asn ]
  in
  let announcements =
    World.base_announcements w
    @ List.map (World.announcement_for w) monitor_asns
    |> List.sort_uniq compare
  in
  let probes =
    [ { label = "victim-prefix";
        addr = World.host_addr w ~asn:(World.victim w) ~host:1;
        expected_origin = World.victim w } ]
  in
  let sim =
    create ~universe:(World.universe w) ~topo:(As_graph.topology g) ~policy ~rp
      ~announcements ~probes
  in
  let fetch_policy =
    match fetch_policy with Some p -> p | None -> world_fetch_policy w
  in
  let monitor_name asn = Printf.sprintf "monitor-as%d" asn in
  configure sim
    { Config.default with
      Config.fetch_policy; valcache;
      primary_endpoint =
        Some
          (Pub_point.create ~uri:"rsync://victim-rp.world/log"
             ~addr:(World.host_addr w ~asn:rp_asn ~host:7) ~host_asn:rp_asn);
      vantages =
        List.map
          (fun asn ->
            let name = monitor_name asn in
            { Config.name;
              rp = Relying_party.create ~name ~asn ~tals ();
              endpoint =
                Pub_point.create
                  ~uri:(Printf.sprintf "rsync://%s.world/log" name)
                  ~addr:(World.host_addr w ~asn ~host:9) ~host_asn:asn })
          monitor_asns;
      gossip_period = (if monitors > 0 then Some gossip_period else None);
      gossip_overlay = overlay; gossip_overlay_seed = overlay_seed };
  let disk, respawn =
    if persist then begin
      let disk = Rpki_persist.Disk.create () in
      enable_persistence sim disk;
      ( Some disk,
        Some (fun ~log_epoch ->
            Relying_party.create ~name:"victim-rp" ~asn:rp_asn ~tals ~grace
              ~log_epoch ()) )
    end
    else (None, None)
  in
  { wr_sim = sim; wr_world = w; wr_target_filename = World.victim_roa w;
    wr_target_authority = World.victim_ca w;
    wr_monitors = List.map monitor_name monitor_asns; wr_disk = disk;
    wr_respawn = respawn }

(* --- the canned fault-mix scenario --------------------------------------

   Corpus-calibrated background noise over a closed loop: a
   {!Rpki_repo.Fault_mix} engine rolls every authority each tick against a
   fault rate, injecting the empirical RP error mix (expired CRLs, withheld
   manifests, seqnum gaps, expired / forward-dated ROAs, RFC 3779
   overclaims, manifest regressions, transport failures) while the primary
   syncs under a configurable unsafe-VRP policy.  The rig also names the
   sub-CA whose loss the graceful-degradation demo studies: whacking its
   publication point makes its resources join the failed set, turning the
   parent's covering ROA into an unsafe VRP. *)

type fault_mix_rig = {
  fm_sim : t;
  fm_engine : Fault_mix.t;
  fm_targets : Authority.t list;     (* authorities the engine rolls *)
  fm_victim_authority : Authority.t; (* the sub-CA the downgrade demo whacks *)
  fm_victim_uri : string;            (* its publication point *)
  fm_victim_prefix : V4.Prefix.t;    (* the prefix its ROA protects *)
  fm_victim_origin : int;            (* the legitimate origin AS *)
  fm_model : Model.t option;         (* the canned fixture, when used *)
  fm_world : World.world option;     (* the generated world, when used *)
}

let fault_mix_scenario ?(policy = Policy.Drop_invalid) ?grace
    ?(unsafe = Relying_party.Unsafe_accept)
    ?(fetch_policy = Relying_party.default_policy) ?(seed = 0x5eed)
    ?(rate = 0.) ?repair_after ?world () =
  let engine = Fault_mix.create ~seed ~rate ?repair_after () in
  let fetch_policy = { fetch_policy with Relying_party.unsafe } in
  match world with
  | None ->
    (* the Figure 5 (right) fixture: Continental's /20 ROA under Sprint's
       covering /12-13 ROA — exactly the covering-ROA shape the unsafe
       analysis is about *)
    let sc = section6_scenario ~policy ?grace () in
    set_fetch_policy sc.sim fetch_policy;
    let m = sc.model in
    { fm_sim = sc.sim; fm_engine = engine;
      fm_targets =
        [ m.Model.arin; m.Model.sprint; m.Model.etb; m.Model.continental ];
      fm_victim_authority = m.Model.continental;
      fm_victim_uri = Pub_point.uri (Authority.pub m.Model.continental);
      fm_victim_prefix = V4.p "63.174.16.0/20";
      fm_victim_origin = Model.as_continental;
      fm_model = Some m; fm_world = None }
  | Some spec ->
    let rig = world_scenario ~policy ~monitors:0 ~fetch_policy ~world:spec () in
    let w = rig.wr_world in
    { fm_sim = rig.wr_sim; fm_engine = engine;
      fm_targets = World.root w :: List.map snd (World.cas w);
      fm_victim_authority = rig.wr_target_authority;
      fm_victim_uri = Pub_point.uri (Authority.pub rig.wr_target_authority);
      fm_victim_prefix = World.prefix_of w (World.victim w);
      fm_victim_origin = World.victim w;
      fm_model = None; fm_world = Some w }

(* One fault-mix tick: roll the engine (repairs due faults, injects fresh
   ones on the authorities and the primary's transport), then run the
   ordinary loop step.  Returns the tick's fresh injections with its
   record. *)
let fault_mix_step rig ~now =
  let injections =
    Fault_mix.tick rig.fm_engine ~targets:rig.fm_targets
      ~transports:[ transport rig.fm_sim ] ~now
  in
  let record = step rig.fm_sim ~now in
  (injections, record)

(* --- the canned long-run soak scenario ----------------------------------

   Endurance, not detection: run the split-view setting for thousands of
   ticks under configurable churn, with persistence on, and measure the
   three growth curves the refactor is supposed to flatten — disk bytes per
   save (O(delta) segments vs O(history) full snapshots), Valcache
   residency (epoch eviction vs monotone growth) and Gc live words. *)

type soak_config = {
  sk_ticks : int;
  sk_churn_every : int;      (* maintain ARIN's subtree every n ticks; 0 = no churn *)
  sk_compact_every : int;    (* fold persistence chains every n ticks; 0 = never *)
  sk_evict : bool;           (* epoch-based Valcache eviction at tick end *)
  sk_full_snapshots : bool;  (* force O(history) full saves (the baseline) *)
  sk_valcache : bool;
  sk_monitors : int;
  sk_gossip_period : int;
  sk_sample_every : int;     (* record a sample every n ticks (and at the end) *)
  sk_validity : int option;  (* issuance validity window, in ticks *)
  sk_refresh_interval : int option;
  sk_world : World.spec option;
                             (* Some spec = soak a generated world (churn then
                                maintains the synthesized root's subtree);
                                None = the canned small scenario *)
}

let default_soak =
  { sk_ticks = 2000; sk_churn_every = 0; sk_compact_every = 64; sk_evict = true;
    sk_full_snapshots = false; sk_valcache = true; sk_monitors = 1;
    sk_gossip_period = 16; sk_sample_every = 100; sk_validity = None;
    sk_refresh_interval = None; sk_world = None }

type soak_sample = {
  so_tick : int;
  so_live_words : int;       (* Gc.stat live words after a major collection *)
  so_snapshot_bytes : int;   (* the primary store's base snapshot size *)
  so_chain_bytes : int;      (* base + segments: what a restore must read *)
  so_segments : int;         (* sealed segments beyond the base *)
  so_save_bytes : int;       (* disk bytes written since the previous sample *)
  so_log_size : int;         (* primary transparency-log leaves *)
  so_residency : Valcache.residency option;
}

type soak_report = {
  so_config : soak_config;
  so_samples : soak_sample list;  (* oldest first; the last is the final state *)
  so_saves : int;                 (* saves executed across all vantages *)
  so_total_save_bytes : int;      (* cumulative disk bytes written *)
  so_bytes_per_save : float;
}

let run_soak ?(config = default_soak) () =
  let c = config in
  if c.sk_ticks < 1 then invalid_arg "Loop.run_soak: ticks must be positive";
  let t, churn =
    match c.sk_world with
    | None ->
      let sv =
        split_view_scenario ~monitors:c.sk_monitors ~gossip_period:c.sk_gossip_period
          ?validity:c.sk_validity ?refresh_interval:c.sk_refresh_interval
          ~valcache:c.sk_valcache ()
      in
      (sv.sv_sim, fun ~now -> Authority.maintain sv.sv_model.Model.arin ~now)
    | Some wspec ->
      (* the soak's validity knobs override the world spec's, so one config
         drives both the canned and the generated arms *)
      let wspec =
        { wspec with
          World.validity =
            (match c.sk_validity with Some _ -> c.sk_validity | None -> wspec.World.validity);
          refresh_interval =
            (match c.sk_refresh_interval with
            | Some _ -> c.sk_refresh_interval
            | None -> wspec.World.refresh_interval) }
      in
      let rig =
        world_scenario ~monitors:c.sk_monitors ~gossip_period:c.sk_gossip_period
          ~valcache:c.sk_valcache ~world:wspec ()
      in
      (rig.wr_sim, fun ~now -> Authority.maintain (World.root rig.wr_world) ~now)
  in
  let disk = Rpki_persist.Disk.create () in
  enable_persistence t disk;
  t.valcache_evict <- c.sk_evict;
  t.compact_every <- c.sk_compact_every;
  t.save_full <- c.sk_full_snapshots;
  t.keep_history <- false;
  let primary_store = vantage_store t ~name:(Relying_party.name t.rp) in
  let vantage_count = 1 + c.sk_monitors in
  let samples = ref [] in
  let last_written = ref 0 in
  let sample ~tick =
    Gc.full_major ();
    let written = Rpki_persist.Disk.bytes_written disk in
    samples :=
      { so_tick = tick;
        so_live_words = (Gc.stat ()).Gc.live_words;
        so_snapshot_bytes = Rpki_persist.Store.snapshot_bytes primary_store;
        so_chain_bytes = Rpki_persist.Store.chain_bytes primary_store;
        so_segments = Rpki_persist.Store.segment_count primary_store;
        so_save_bytes = written - !last_written;
        so_log_size = Rpki_transparency.Log.size (Relying_party.transparency_log t.rp);
        so_residency = Option.map Valcache.residency t.valcache }
      :: !samples;
    last_written := written
  in
  for now = 1 to c.sk_ticks do
    if c.sk_churn_every > 0 && now mod c.sk_churn_every = 0 then churn ~now;
    ignore (step t ~now);
    if now mod c.sk_sample_every = 0 || now = c.sk_ticks then sample ~tick:now
  done;
  let saves = c.sk_ticks * vantage_count in
  let total = Rpki_persist.Disk.bytes_written disk in
  { so_config = c; so_samples = List.rev !samples; so_saves = saves;
    so_total_save_bytes = total;
    so_bytes_per_save = float_of_int total /. float_of_int (max 1 saves) }
