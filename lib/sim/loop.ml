(* Closing the loop (Section 6): RPKI -> route validity -> BGP -> repository
   reachability -> RPKI.

   A discrete-time simulator in which, each tick, the relying party syncs
   the RPKI *over the data plane its previous sync produced*: a publication
   point can be fetched only if the RP currently has a working route to the
   repository's address.  A transient fault that invalidates the route to a
   repository therefore prevents the fetch that would repair it — the
   paper's persistent-failure mechanism.

   The sync is incremental across ticks: the relying party carries its
   origin-validation index forward and each tick's VRP diff is pushed into
   an RTR cache as a serial-numbered delta, so attached routers receive
   genuine RFC 6810 incremental updates rather than full resets. *)

open Rpki_core
open Rpki_repo
open Rpki_bgp
open Rpki_ip

type probe = {
  label : string;
  addr : Rpki_ip.Addr.V4.t;
  expected_origin : int;
}

type t = {
  universe : Universe.t;
  topo : Topology.t;
  policy : Policy.t;              (* uniform policy at every AS *)
  rp : Relying_party.t;
  rtr : Rpki_rtr.Session.cache;   (* fed one serial delta per changed tick *)
  announcements : Propagation.announcement list;
  probes : probe list;
  transport : Transport.t;        (* priced off the previous tick's data plane *)
  mutable fetch_policy : Relying_party.fetch_policy;
  mutable per_hop_latency : int;  (* transport ticks per forwarding hop *)
  mutable net : Data_plane.network option; (* data plane after the last tick *)
  mutable history : tick_record list;      (* newest first *)
  mutable vantages : Gossip.vantage list;  (* gossip mesh members, in
                                              registration order *)
  mutable gossip : Gossip.t option;        (* set by [enable_gossip] *)
  mutable gossip_period : int;    (* run a gossip round every this many ticks *)
}

and tick_record = {
  time : Rtime.t;
  vrp_count : int;
  issue_count : int;
  fetch_failures : string list; (* URIs not freshly fetched *)
  probe_results : (string * bool) list;
  vrp_diff : Vrp.diff;          (* change relative to the previous tick *)
  rtr_serial : int;             (* RTR cache serial after this tick *)
  points_reused : int;          (* publication points replayed from memo *)
  points_revalidated : int;     (* publication points validated from scratch *)
  sync_elapsed : int;           (* transport time the sync spent *)
  max_data_age : int;           (* worst staleness the sync accepted *)
  budget_exhausted : bool;      (* the fetch budget ran out this tick *)
  gossip_report : Gossip.round_report option;
                                (* the gossip round run this tick, if any *)
}

(* Latency of one request to a publication point, from the data plane the
   previous tick produced: the forwarding path's hop count times the per-hop
   cost — the Section 6 circularity as time, not just a boolean.  Traffic
   delivered to the wrong origin (a hijacker) is no route at all.  Before
   the first tick routing works and nothing has been priced yet. *)
let latency_from t ~asn (pp : Pub_point.t) =
  match t.net with
  | None -> Some 0
  | Some net -> (
    match Data_plane.trace net ~src:asn ~addr:(Pub_point.addr pp) with
    | Data_plane.Delivered { origin; hops } when origin = Pub_point.host_asn pp ->
      Some (t.per_hop_latency * List.length hops)
    | Data_plane.Delivered _ | Data_plane.No_route _ | Data_plane.Loop _ -> None)

let point_latency t pp = latency_from t ~asn:(Relying_party.asn t.rp) pp

let create ~universe ~topo ~policy ~rp ~announcements ~probes =
  let t =
    { universe; topo; policy; rp; rtr = Rpki_rtr.Session.create_cache (); announcements; probes;
      transport = Transport.create (); fetch_policy = Relying_party.default_policy;
      per_hop_latency = 1; net = None; history = []; vantages = []; gossip = None;
      gossip_period = 1 }
  in
  Transport.set_latency_of t.transport (point_latency t);
  t

let rtr_cache t = t.rtr
let transport t = t.transport
let set_fetch_policy t p = t.fetch_policy <- p
let set_per_hop_latency t c = t.per_hop_latency <- max 0 c

(* --- vantages and gossip --- *)

let check_not_gossiping t caller =
  if Option.is_some t.gossip then
    invalid_arg (caller ^ ": gossip already enabled; register vantages first")

let add_vantage t v =
  if List.exists (fun w -> String.equal w.Gossip.v_name v.Gossip.v_name) t.vantages then
    invalid_arg ("Loop: duplicate vantage " ^ v.Gossip.v_name);
  t.vantages <- t.vantages @ [ v ]

let primary_vantage t ~endpoint =
  check_not_gossiping t "Loop.primary_vantage";
  add_vantage t
    { Gossip.v_name = Relying_party.name t.rp; v_rp = t.rp; v_endpoint = endpoint;
      v_transport = t.transport }

let register_vantage t ~name ~rp ~endpoint =
  check_not_gossiping t "Loop.register_vantage";
  (* the extra vantage experiences the same network, but from its own AS:
     its transport prices every request off the previous tick's data plane
     as seen from [rp]'s seat *)
  let tr = Transport.create () in
  Transport.set_latency_of tr (latency_from t ~asn:(Relying_party.asn rp));
  add_vantage t { Gossip.v_name = name; v_rp = rp; v_endpoint = endpoint; v_transport = tr }

let vantage_names t = List.map (fun v -> v.Gossip.v_name) t.vantages

let vantage t ~name =
  match List.find_opt (fun v -> String.equal v.Gossip.v_name name) t.vantages with
  | Some v -> v
  | None -> invalid_arg ("Loop.vantage: unknown vantage " ^ name)

let vantage_transport t ~name = (vantage t ~name).Gossip.v_transport

let enable_gossip ?(period = 1) ?timeout t =
  check_not_gossiping t "Loop.enable_gossip";
  t.gossip <- Some (Gossip.create ?timeout t.vantages);
  t.gossip_period <- max 1 period

let gossip_mesh t = t.gossip

(* Reachability of a publication point from the RP's AS, judged on the data
   plane computed at the previous tick.  Before the first tick the RP has
   never applied RPKI filtering, so everything is reachable (deployment
   starts from working routing). *)
let point_reachable t (pp : Pub_point.t) =
  match t.net with
  | None -> true
  | Some net ->
    Data_plane.reaches net ~src:(Relying_party.asn t.rp) ~addr:(Pub_point.addr pp)
      ~expected:(Pub_point.host_asn pp)

let step t ~now =
  Universe.refresh_mirrors t.universe;
  Universe.refresh_rrdp t.universe;
  let result =
    Relying_party.sync t.rp ~now ~universe:t.universe ~transport:t.transport
      ~policy:t.fetch_policy ()
  in
  (* every other vantage observes the same universe this tick, over its own
     transport (same previous-tick data plane, priced from its own AS) —
     filling its transparency log with what *it* was served *)
  List.iter
    (fun (v : Gossip.vantage) ->
      if not (v.Gossip.v_rp == t.rp) then
        ignore
          (Relying_party.sync v.Gossip.v_rp ~now ~universe:t.universe
             ~transport:v.Gossip.v_transport ~policy:t.fetch_policy ()))
    t.vantages;
  (* the sync's diff becomes the RTR cache's next serial delta; the sync's
     data staleness rides along so routers can tell fresh serials over old
     data from fresh data *)
  Rpki_rtr.Session.publish_diff t.rtr result.Relying_party.diff;
  Rpki_rtr.Session.set_data_age t.rtr (Relying_party.max_data_age result);
  let validity_of r = Origin_validation.classify result.Relying_party.index r in
  let net =
    Data_plane.build ~topo:t.topo ~policy_of:(fun _ -> t.policy) ~validity_of t.announcements
  in
  t.net <- Some net;
  let probe_results =
    List.map
      (fun p ->
        ( p.label,
          Data_plane.reaches net ~src:(Relying_party.asn t.rp) ~addr:p.addr
            ~expected:p.expected_origin ))
      t.probes
  in
  let fetch_failures =
    List.filter_map
      (fun (uri, st) ->
        match st with
        | Relying_party.Fetched | Relying_party.Fetched_mirror | Relying_party.Fetched_rrdp ->
          None (* mirror and RRDP copies are fresh data, not failures *)
        | Relying_party.Stale_cache | Relying_party.Unavailable -> Some uri)
      result.Relying_party.fetches
  in
  (* gossip runs after routing converges: tree-head pulls travel the data
     plane this tick produced, so a partitioned vantage also cannot gossip *)
  let gossip_report =
    match t.gossip with
    | Some g when now mod t.gossip_period = 0 -> Some (Gossip.round g ~now)
    | _ -> None
  in
  let record =
    { time = now;
      vrp_count = List.length result.Relying_party.vrps;
      issue_count = List.length result.Relying_party.issues;
      fetch_failures;
      probe_results;
      vrp_diff = result.Relying_party.diff;
      rtr_serial = Rpki_rtr.Session.cache_serial t.rtr;
      points_reused = result.Relying_party.points_reused;
      points_revalidated = result.Relying_party.points_revalidated;
      sync_elapsed = result.Relying_party.sync_elapsed;
      max_data_age = Relying_party.max_data_age result;
      budget_exhausted = result.Relying_party.budget_exhausted;
      gossip_report }
  in
  t.history <- record :: t.history;
  record

let history t = List.rev t.history

let first_fork_tick t =
  List.find_map
    (fun r ->
      match r.gossip_report with
      | Some rep when List.exists Gossip.is_fork rep.Gossip.r_alarms -> Some r.time
      | _ -> None)
    (history t)

let pp_record fmt r =
  Format.fprintf fmt "%a: %d VRPs (%+d/-%d), %d issues, %d fetch failures, rtr#%d, probes: %s"
    Rtime.pp r.time r.vrp_count
    (List.length r.vrp_diff.Vrp.added)
    (List.length r.vrp_diff.Vrp.removed)
    r.issue_count
    (List.length r.fetch_failures)
    r.rtr_serial
    (String.concat ", "
       (List.map (fun (l, ok) -> Printf.sprintf "%s=%s" l (if ok then "up" else "DOWN"))
          r.probe_results));
  match r.gossip_report with
  | None -> ()
  | Some rep ->
    Format.fprintf fmt ", gossip: %d alarm(s)%s"
      (List.length rep.Gossip.r_alarms)
      (if List.exists Gossip.is_fork rep.Gossip.r_alarms then " [FORK]" else "")

(* --- the canned Section 6 scenario --- *)

type section6 = {
  sim : t;
  model : Model.t;
  continental_repo : Pub_point.t;
  target_filename : string; (* the ROA whose corruption starts the spiral *)
}

(* Figure 5 (right) state: model RPKI plus Sprint's covering ROA; the small
   topology with every repository host attached; Continental Broadband
   hosting its own repository inside 63.174.16.0/20 (AS 17054). *)
let section6_scenario ?(policy = Policy.Drop_invalid) ?grace ?(mirrored = false)
    ?(rrdp = false) ?validity ?refresh_interval () =
  let model = Model.build ?validity ?refresh_interval () in
  let _ = Model.add_fig5_right_roa model ~now:Rtime.epoch in
  let s = Topo_gen.small_scenario () in
  let topo = s.Topo_gen.small_topo in
  (* attach the repository-hosting ASes *)
  Topology.link topo ~provider:s.Topo_gen.t1a ~customer:Model.as_sprint;
  Topology.link topo ~provider:s.Topo_gen.mid1 ~customer:Model.as_etb;
  Topology.link topo ~provider:s.Topo_gen.t1b ~customer:Model.as_arin_host;
  (* AS 17054 (Continental) is already in the topology as the "victim" *)
  let ann prefix origin = { Propagation.prefix = V4.p prefix; origin } in
  let announcements =
    [ ann "199.5.26.0/24" Model.as_arin_host;       (* ARIN repo; no ROA: unknown *)
      ann "63.161.0.0/16" Model.as_sprint;           (* Sprint repo; valid *)
      ann "63.170.0.0/16" Model.as_etb;              (* ETB repo; valid *)
      ann "63.174.16.0/20" Model.as_continental ]    (* Continental repo; valid iff /20 ROA fetched *)
  in
  let rp = Model.relying_party ~asn:s.Topo_gen.source ?grace model in
  (* optional mitigation (draft-sidr-multiple-publication-points): mirror
     Continental's repository inside Sprint's address space, whose route
     does not depend on Continental's own objects *)
  if mirrored then begin
    let mirror =
      Pub_point.create ~uri:"rsync://mirror.sprint.net/continental"
        ~addr:(V4.addr_of_string_exn "63.161.200.1") ~host_asn:Model.as_sprint
    in
    Universe.add_mirror model.Model.universe
      ~of_uri:(Pub_point.uri (Authority.pub model.Model.continental)) mirror
  end;
  (* optional RRDP delta service (RFC 8182) for Continental's repository,
     its notification endpoint likewise hosted in Sprint's address space *)
  if rrdp then begin
    let endpoint =
      Pub_point.create ~uri:"https://rrdp.sprint.net/continental"
        ~addr:(V4.addr_of_string_exn "63.161.200.2") ~host_asn:Model.as_sprint
    in
    Universe.add_rrdp model.Model.universe
      ~of_uri:(Pub_point.uri (Authority.pub model.Model.continental)) endpoint
  end;
  let probes =
    [ { label = "continental-repo"; addr = Model.continental_repo_addr;
        expected_origin = Model.as_continental };
      { label = "sprint-repo"; addr = Model.sprint_repo_addr; expected_origin = Model.as_sprint } ]
  in
  let sim = create ~universe:model.Model.universe ~topo ~policy ~rp ~announcements ~probes in
  let continental_repo = Authority.pub model.Model.continental in
  { sim; model; continental_repo; target_filename = model.Model.roa_target20 }

(* Run the Side Effect 7 timeline: healthy ticks, a transient corruption of
   the critical ROA, repair, then more ticks.  Returns the full history. *)
let run_section6 ?(policy = Policy.Drop_invalid) ?(flush_cache_at = None) ?grace
    ?(mirrored = false) () =
  let sc = section6_scenario ~policy ?grace ~mirrored () in
  let t = sc.sim in
  (* ticks 1-2: healthy *)
  ignore (step t ~now:1);
  ignore (step t ~now:2);
  (* tick 3: the RP receives a corrupted copy of the critical ROA *)
  let fault =
    Fault.corrupt_object sc.continental_repo ~filename:sc.target_filename ()
  in
  ignore (step t ~now:3);
  (* tick 4: the repository is repaired... *)
  Option.iter Fault.repair fault;
  ignore (step t ~now:4);
  (* ticks 5-7: ...but can the RP see the repair? *)
  ignore (step t ~now:5);
  (match flush_cache_at with
  | Some tick when tick <= 6 -> Relying_party.flush_cache t.rp
  | _ -> ());
  ignore (step t ~now:6);
  ignore (step t ~now:7);
  (sc, history t)

(* --- the canned split-view scenario --- *)

type split_view = {
  sv_sim : t;
  sv_model : Model.t;
  sv_target_filename : string;
  sv_monitors : string list;
}

(* Monitor vantages sit at the repository-hosting ASes already attached to
   the Section 6 topology; each log endpoint lives inside a prefix that AS
   announces, so gossip pulls have a route to travel. *)
let monitor_specs =
  [ ("monitor-sprint", "63.161.200.9");
    ("monitor-etb", "63.170.200.9");
    ("monitor-arin", "199.5.26.9") ]

let monitor_asn = function
  | "monitor-sprint" -> Model.as_sprint
  | "monitor-etb" -> Model.as_etb
  | "monitor-arin" -> Model.as_arin_host
  | name -> invalid_arg ("Loop.monitor_asn: " ^ name)

let split_view_scenario ?(policy = Policy.Drop_invalid) ?(grace = 4) ?(monitors = 2)
    ?(gossip_period = 1) ?(fetch_policy = Relying_party.resilient_policy) () =
  if monitors < 0 || monitors > List.length monitor_specs then
    invalid_arg
      (Printf.sprintf "Loop.split_view_scenario: 0-%d monitors" (List.length monitor_specs));
  let model = Model.build () in
  let _ = Model.add_fig5_right_roa model ~now:Rtime.epoch in
  let s = Topo_gen.small_scenario () in
  let topo = s.Topo_gen.small_topo in
  Topology.link topo ~provider:s.Topo_gen.t1a ~customer:Model.as_sprint;
  Topology.link topo ~provider:s.Topo_gen.mid1 ~customer:Model.as_etb;
  Topology.link topo ~provider:s.Topo_gen.t1b ~customer:Model.as_arin_host;
  let ann prefix origin = { Propagation.prefix = V4.p prefix; origin } in
  let announcements =
    [ ann "199.5.26.0/24" Model.as_arin_host;
      ann "63.161.0.0/16" Model.as_sprint;
      ann "63.170.0.0/16" Model.as_etb;
      ann "63.174.16.0/20" Model.as_continental;
      (* the victim vantage's own log endpoint: benchmark space with no
         covering ROA, so the route is unknown and survives filtering *)
      ann "198.18.0.0/24" s.Topo_gen.source ]
  in
  (* the victim runs grace (Suspenders): a forked-away VRP is held for
     [grace] ticks, which is the window gossip detection has to beat *)
  let rp = Model.relying_party ~name:"victim-rp" ~asn:s.Topo_gen.source ~grace model in
  let probes =
    [ { label = "continental-repo"; addr = Model.continental_repo_addr;
        expected_origin = Model.as_continental };
      { label = "sprint-repo"; addr = Model.sprint_repo_addr; expected_origin = Model.as_sprint } ]
  in
  let sim = create ~universe:model.Model.universe ~topo ~policy ~rp ~announcements ~probes in
  set_fetch_policy sim fetch_policy;
  primary_vantage sim
    ~endpoint:
      (Pub_point.create ~uri:"rsync://victim-rp.example/log"
         ~addr:(V4.addr_of_string_exn "198.18.0.7") ~host_asn:s.Topo_gen.source);
  let chosen = List.filteri (fun i _ -> i < monitors) monitor_specs in
  List.iter
    (fun (name, addr) ->
      let asn = monitor_asn name in
      let mrp = Model.relying_party ~name ~asn model in
      register_vantage sim ~name ~rp:mrp
        ~endpoint:
          (Pub_point.create
             ~uri:("rsync://" ^ name ^ ".example/log")
             ~addr:(V4.addr_of_string_exn addr) ~host_asn:asn))
    chosen;
  if monitors > 0 then enable_gossip ~period:gossip_period sim;
  { sv_sim = sim; sv_model = model; sv_target_filename = model.Model.roa_target20;
    sv_monitors = List.map fst chosen }
