(** Closing the loop (the paper's Section 6): RPKI -> route validity ->
    BGP -> repository reachability -> RPKI.

    A discrete-time simulator in which, each tick, the relying party syncs
    the RPKI {e over the data plane its previous sync produced}: a
    publication point can be fetched only if the RP currently has a working
    route to the repository's address.  A transient fault that invalidates
    the route to a repository therefore prevents the fetch that would repair
    it — Side Effect 7's persistent-failure mechanism.

    Sync is incremental across ticks: the relying party carries its
    origin-validation index forward, and each tick's VRP diff feeds an RTR
    cache as a serial-numbered delta. *)

open Rpki_core
open Rpki_repo
open Rpki_bgp

type probe = {
  label : string;
  addr : Rpki_ip.Addr.V4.t;
  expected_origin : int;
}

type t = {
  universe : Universe.t;
  topo : Topology.t;
  policy : Policy.t;                         (** uniform at every AS *)
  mutable rp : Relying_party.t;              (** mutable: {!restart_vantage}
                                                 replaces the instance *)
  rtr : Rpki_rtr.Server.t;                   (** the RTR serving plane: fed one
                                                 delta per changed tick, flushed
                                                 (one batched notify) at tick
                                                 end *)
  mutable rtr_domains : int;                 (** Domains for the flush fan-out *)
  announcements : Propagation.announcement list;
  probes : probe list;
  transport : Transport.t;                   (** priced off the previous tick's
                                                 data plane *)
  mutable fetch_policy : Relying_party.fetch_policy;
  mutable per_hop_latency : int;             (** transport ticks per hop *)
  mutable net : Data_plane.network option;
  mutable history : tick_record list;
  mutable vantages : Gossip.vantage list;    (** gossip mesh members *)
  mutable gossip : Gossip.t option;
  mutable gossip_period : int;
  mutable disk : Rpki_persist.Disk.t option;
  mutable stores : (string * Rpki_persist.Store.t) list;
  mutable dead : string list;
  mutable epochs : (string * int) list;
  mutable recoveries : (Rtime.t * string * Relying_party.recovery) list;
  mutable point_good : (string * Vrp.t list) list;
  mutable held_uris : (string * Rpki_ip.V4.Prefix.t list) list;
  mutable valcache : Valcache.t option;
      (** the shared validation plane all vantages sync through (on by
          default); [None] = independent per-vantage validation.  Results
          are identical either way — only crypto cost differs. *)
  mutable valcache_evict : bool;
      (** run {!Valcache.end_tick} at every tick end (on by default),
          dropping window-expired entries so residency stays flat under
          churn.  Pure memo — results are identical with it off. *)
  mutable compact_every : int;
      (** fold every persistence chain into its base snapshot every this
          many ticks ({!Relying_party.compact_store}); 0 (default) = never *)
  mutable save_full : bool;
      (** force O(history) full snapshots instead of O(delta) segments —
          the pre-segmentation baseline the soak bench compares against *)
  mutable keep_history : bool;
      (** accumulate tick records in [history] (on by default); long soaks
          turn this off so the run's memory stays flat *)
}

and tick_record = {
  time : Rtime.t;
  vrp_count : int;
  issue_count : int;
  fetch_failures : string list;
  probe_results : (string * bool) list;
  vrp_diff : Vrp.diff;          (** change relative to the previous tick *)
  rtr_serial : int;             (** RTR cache serial after this tick *)
  points_reused : int;          (** publication points replayed from memo *)
  points_revalidated : int;     (** publication points validated from scratch *)
  sync_elapsed : int;           (** transport time the sync spent *)
  max_data_age : int;           (** worst staleness the sync accepted *)
  budget_exhausted : bool;      (** the fetch budget ran out this tick *)
  gossip_report : Gossip.round_report option;
      (** the gossip round run this tick; [None] when gossip is disabled or
          off-period this tick *)
  regressions : Relying_party.regression list;
      (** the primary's own-history contradictions this tick — the local
          (no gossip needed) rollback signal, possible only with a restored
          log *)
  rtr_holds : int;              (** evidence-triggered holds active on the
                                    RTR cache after this tick *)
  sig_checks : int;             (** RSA verifications executed during this
                                    tick's sync phase, across all vantages *)
  sig_saved : int;              (** verifications answered by the shared
                                    validation plane's verdict memo this
                                    tick; 0 when it is disabled *)
  unsafe_count : int;           (** unsafe VRPs the primary's sync reported
                                    this tick (see
                                    {!Relying_party.unsafe_policy}); also
                                    annotated on the RTR serving plane *)
}

val create :
  universe:Universe.t ->
  topo:Topology.t ->
  policy:Policy.t ->
  rp:Relying_party.t ->
  announcements:Propagation.announcement list ->
  probes:probe list ->
  t

(** {2 Configuration}

    Everything that used to be scattered over mutators and enable-flags
    ([set_fetch_policy] / [set_per_hop_latency] / [set_valcache] /
    [primary_vantage] / [register_vantage] / [enable_gossip] /
    [enable_persistence]) collapsed into one record: build a {!Config.t}
    from {!Config.default}, apply it once with {!configure}.  The
    individual functions remain as thin deprecated wrappers so existing
    callers keep compiling. *)

module Config : sig
  type vantage_spec = {
    name : string;
    rp : Relying_party.t;
    endpoint : Pub_point.t;  (** where peers pull this vantage's log from *)
  }

  type t = {
    fetch_policy : Relying_party.fetch_policy;
        (** default {!Relying_party.default_policy} *)
    per_hop_latency : int;   (** transport ticks per forwarding hop; default 1 *)
    valcache : bool;         (** shared validation plane; default [true] *)
    valcache_evict : bool;   (** epoch-based eviction at tick end; default
                                 [true].  Pure memo — results identical off *)
    rtr_domains : int;       (** Domains for the RTR flush fan-out; default 1 *)
    primary_endpoint : Pub_point.t option;
        (** register the loop's own RP as a gossip vantage at this endpoint *)
    vantages : vantage_spec list;  (** extra vantages, in registration order *)
    gossip_period : int option;
        (** [Some p] freezes the vantages into a gossip mesh, one round every
            [p] ticks; [None] (default) = no gossip *)
    gossip_timeout : int option;   (** per-pull cap, see {!Gossip.create} *)
    gossip_overlay : Gossip.Overlay.spec;
        (** who pulls from whom each round; default
            {!Gossip.Overlay.spec.Full_mesh} *)
    gossip_overlay_seed : int;     (** default {!Gossip.Overlay.default_seed} *)
    persistence : Rpki_persist.Disk.t option;
        (** [Some disk] snapshots every live vantage each tick *)
    compact_every : int;     (** fold persistence chains every this many
                                 ticks; 0 (default) = never *)
    save_full : bool;        (** force O(history) full snapshots; default
                                 [false] (O(delta) segmented saves) *)
    keep_history : bool;     (** accumulate tick records; default [true] *)
  }

  val default : t
  (** No vantages, no gossip, no persistence; resilient defaults otherwise
      (default fetch policy, 1 tick/hop, valcache on, 1 Domain). *)
end

val configure : t -> Config.t -> unit
(** Apply a configuration to a freshly {!create}d loop: policy knobs first,
    then the primary endpoint and extra vantages, then gossip and
    persistence.  Raises [Invalid_argument] under the same conditions as
    the individual wrappers (duplicate vantage names, gossip already
    enabled). *)

val rtr_server : t -> Rpki_rtr.Server.t
(** The RTR serving plane fed by the loop: attach router sessions with
    {!Rpki_rtr.Server.attach}; every {!step} ends with one batched
    {!Rpki_rtr.Server.flush} (publish + any holds coalesce into a single
    notify), run on {!Config.rtr_domains} Domains. *)

val rtr_cache : t -> Rpki_rtr.Session.cache
(** The serving plane's underlying cache; single-router code can still
    attach to it directly with {!Rpki_rtr.Session.synchronize}.  Its data
    age tracks the worst staleness of each tick's sync.  Deprecated in
    favour of {!rtr_server} — kept so pre-server callers compile. *)

val transport : t -> Transport.t
(** The loop's transport.  Its latency oracle is wired to the previous
    tick's data plane ([per_hop_latency] transport ticks per forwarding
    hop; no valid route — or traffic delivered to a hijacker — is no
    route).  Adversaries ({!Rpki_attack.Stall}) and operators inject
    faults here. *)

val set_fetch_policy : t -> Relying_party.fetch_policy -> unit
(** Replace the fetch policy used by subsequent {!step}s
    (default {!Relying_party.default_policy}).  Deprecated wrapper:
    prefer {!Config.fetch_policy}. *)

val set_per_hop_latency : t -> int -> unit
(** Transport ticks charged per forwarding hop (default 1; clamped at 0).
    0 restores PR-1's boolean-reachability behaviour exactly. *)

val set_valcache : t -> bool -> unit
(** Enable (default) or disable the shared validation plane.  Enabling
    mid-run starts from an empty cache; either way every sync result,
    detection tick and piece of evidence is identical — the cache is
    transparent, only the number of RSA verifications executed changes.
    Deprecated wrapper: prefer {!Config.valcache}. *)

val valcache : t -> Valcache.t option
(** The loop's shared validation plane, for statistics
    ({!Valcache.stats} / {!Valcache.tick_stats}). *)

val valcache_enabled : t -> bool

val point_reachable : t -> Pub_point.t -> bool
(** Reachability of a publication point from the RP's AS, judged on the data
    plane of the previous tick (everything is reachable before the first). *)

val step : t -> now:Rtime.t -> tick_record
(** One tick: refresh mirrors, sync the RP over the previous data plane
    (incrementally), push the VRP diff into the RTR cache, recompute the
    data plane, run the probes. *)

val history : t -> tick_record list
val pp_record : Format.formatter -> tick_record -> unit

(** {2 Vantages and gossip}

    A loop can run additional relying-party {e vantages} alongside its
    primary RP: each extra vantage syncs the same universe every tick over
    its own transport, priced off the same previous-tick data plane but
    from its own AS.  Once vantages are registered, {!enable_gossip} builds
    a {!Gossip} mesh over them; every [period] ticks a gossip round runs
    {e after} routing converges (so a partitioned vantage also cannot
    gossip) and its report — including any split-view {!Gossip.alarm.Fork}
    alarms — lands on that tick's record. *)

val primary_vantage : t -> endpoint:Pub_point.t -> unit
(** Register the loop's own relying party (under its RP name) as a gossip
    vantage reachable at [endpoint].  The endpoint's address must be
    routable for peers to pull from it.  Deprecated wrapper: prefer
    {!Config.primary_endpoint}. *)

val register_vantage : t -> name:string -> rp:Relying_party.t -> endpoint:Pub_point.t -> unit
(** Add an extra vantage.  [rp] is synced every subsequent {!step} over a
    transport created here and priced from [rp]'s AS.  Raises
    [Invalid_argument] on duplicate names or after {!enable_gossip}.
    Deprecated wrapper: prefer {!Config.vantages}. *)

val vantage_names : t -> string list

val vantage : t -> name:string -> Gossip.vantage

val vantage_transport : t -> name:string -> Transport.t
(** The named vantage's transport — where adversaries install per-vantage
    faults or {!Transport.set_view} forks. *)

val enable_gossip :
  ?period:int -> ?timeout:int -> ?overlay:Gossip.Overlay.spec ->
  ?overlay_seed:int -> t -> unit
(** Freeze the registered vantages into a gossip mesh; a round runs every
    [period] ticks (default 1).  [timeout] caps each pull and [overlay]
    selects who pulls from whom (see {!Gossip.create}).  Deprecated
    wrapper: prefer {!Config.gossip_period}. *)

val gossip_mesh : t -> Gossip.t option

val first_fork_tick : t -> Rtime.t option
(** The earliest tick whose gossip round raised a {!Gossip.alarm.Fork} —
    the moment a split view became detected, for detection-latency
    measurements. *)

val first_rollback_tick : t -> Rtime.t option
(** The earliest tick on which a served rollback became detected — by the
    primary's own restored history (a non-empty [regressions] list) or by a
    gossip {!Gossip.alarm.Rollback} — for detection-latency measurements
    against a restart adversary. *)

(** {2 Persistence, crash and restart}

    With {!enable_persistence}, every live vantage snapshots its durable
    state ({!Relying_party.save}) at the end of each tick, to a
    per-vantage generation-numbered store on a shared simulated disk —
    where experiments arm {!Rpki_persist.Disk.inject} faults.
    {!kill_vantage} stops a vantage mid-run (no sync, no gossip, no
    saves); {!restart_vantage} brings it back as a new relying-party
    instance whose only link to its past is whatever {!Relying_party.restore}
    can verifiably recover.  The primary's RTR cache continues its serial
    line on a good restore and takes a visible reset otherwise.

    Detected contradictions — a local {!Relying_party.regression} or
    verified gossip fork/rollback evidence — freeze the affected prefixes
    on the RTR cache ({!Rpki_rtr.Session.hold}) at the last VRPs validated
    before the contradiction was served. *)

val enable_persistence : t -> Rpki_persist.Disk.t -> unit
(** Snapshot every live vantage's durable state at the end of each tick
    onto [disk] (one {!Rpki_persist.Store.t} per vantage, named after it).
    Deprecated wrapper: prefer {!Config.persistence}. *)

val persistence_enabled : t -> bool

val vantage_store : t -> name:string -> Rpki_persist.Store.t
(** The named vantage's snapshot store (created on first use).  Raises
    [Invalid_argument] when persistence is not enabled. *)

val vantage_alive : t -> name:string -> bool

val kill_vantage : t -> name:string -> unit
(** Crash a vantage (the primary included): from now it neither syncs, nor
    gossips, nor saves; peers see its endpoint go silent.  Process state
    dies with it — only its snapshot store survives. *)

val restart_vantage :
  t ->
  name:string ->
  now:Rtime.t ->
  make:(log_epoch:int -> Relying_party.t) ->
  Relying_party.recovery
(** Restart a killed vantage as a fresh relying-party instance built by
    [make] (same name required).  [make] receives the pessimistic next log
    epoch; a verified snapshot restore overrides it with the persisted
    epoch, so only a failed restore starts a visibly new log incarnation.
    On restore the gossip mesh reseeds the vantage's consistency baselines
    from its persisted peer heads; otherwise its gossip memory starts
    empty (and peers will raise {!Gossip.alarm.Log_reset}).  Raises
    [Invalid_argument] unless the vantage is down. *)

val recoveries : t -> (Rtime.t * string * Relying_party.recovery) list
(** Every restart's outcome, oldest first. *)

val release_hold : t -> uri:string -> unit
(** Operator override: drop the evidence-triggered hold installed for a
    publication point. *)

(** {2 The canned Section 6 scenario} *)

type section6 = {
  sim : t;
  model : Model.t;
  continental_repo : Pub_point.t;
  target_filename : string; (** the ROA whose corruption starts the spiral *)
}

val section6_scenario :
  ?policy:Policy.t ->
  ?grace:int ->
  ?mirrored:bool ->
  ?rrdp:bool ->
  ?validity:int ->
  ?refresh_interval:int ->
  unit ->
  section6
(** Figure 5 (right) validity, the small topology with every repository host
    attached, Continental hosting its own repository inside its certified
    /20.  [mirrored] registers a mirror of Continental's repository inside
    Sprint's address space (the draft-multiple-publication-points
    mitigation); [rrdp] registers an RRDP delta service for it, endpoint
    likewise in Sprint's space; [grace] enables the Suspenders-style hold on
    the RP.  [validity] / [refresh_interval] shorten every authority's
    issuance windows (see {!Model.build}) so stall experiments can age a
    starved cache to expiry within a few ticks. *)

val run_section6 :
  ?policy:Policy.t ->
  ?flush_cache_at:int option ->
  ?grace:int ->
  ?mirrored:bool ->
  unit ->
  section6 * tick_record list
(** The Side Effect 7 timeline: two healthy ticks, a one-tick corruption of
    the critical ROA, repair, then observation through tick 7. *)

(** {2 The canned split-view scenario} *)

type split_view = {
  sv_sim : t;
  sv_model : Model.t;
  sv_target_filename : string;  (** the ROA the fork suppresses
                                    ([roa_target20], guarding the victim
                                    route 63.174.16.0/20 AS 17054) *)
  sv_monitors : string list;    (** registered monitor vantage names *)
}

val split_view_scenario :
  ?policy:Policy.t ->
  ?grace:int ->
  ?monitors:int ->
  ?gossip_period:int ->
  ?overlay:Gossip.Overlay.spec ->
  ?overlay_seed:int ->
  ?fetch_policy:Relying_party.fetch_policy ->
  ?validity:int ->
  ?refresh_interval:int ->
  ?valcache:bool ->
  unit ->
  split_view
(** The Section 6 setting rigged for split-view detection: the victim
    relying party ("victim-rp", at the source AS, running [grace] — default
    4 — and [fetch_policy] — default {!Relying_party.resilient_policy})
    plus [monitors] (default 2) monitor vantages at the repository-hosting
    ASes (Sprint, ETB, ARIN's host), all gossiping every [gossip_period]
    ticks over [overlay] (default full mesh — see {!Gossip.Overlay}).
    Beyond three, monitors are synthesized round-robin over the
    same three ASes with their own in-prefix log endpoints — the scaling
    configuration for the multi-vantage experiments.  With [monitors = 0]
    no gossip mesh is built — the single-vantage baseline that cannot
    detect a fork.

    [refresh_interval] shortens every authority's re-issuance period (see
    {!Model.build}) so scaling runs can churn the universe every tick;
    [valcache] (default true) controls the loop's shared validation plane
    ({!set_valcache}).

    The split-view whack itself is the caller's move:
    [Rpki_attack.Split_view.plan ~authority:sv_model.continental
    ~target_filename:sv_target_filename ()] applied to
    [transport sv_sim] forks only the victim's view.  Grace then holds the
    suppressed VRP for [grace] ticks, which is the window gossip detection
    must beat for the alarm to precede the route going invalid. *)

(** {2 The canned restart / rollback scenario} *)

type restart_rig = {
  rr_sv : split_view;
  rr_disk : Rpki_persist.Disk.t;   (** the shared simulated disk — arm
                                       {!Rpki_persist.Disk.inject} faults here *)
  rr_respawn : log_epoch:int -> Relying_party.t;
      (** rebuilds the victim instance for {!restart_vantage}: same name,
          AS, trust anchor and grace as the original *)
}

val restart_scenario :
  ?persist:bool ->
  ?grace:int ->
  ?monitors:int ->
  ?gossip_period:int ->
  ?valcache:bool ->
  unit ->
  restart_rig
(** The split-view setting rigged for crash-and-rollback experiments.
    [persist] (default true) enables end-of-tick snapshots for every
    vantage; with [persist = false] the rig measures the fresh-start
    oracle — the victim restarts with no baseline and a served rollback
    goes undetected. *)

(** {2 Scenarios on generated worlds}

    The split-view / stall / restart settings parameterized by a generated
    {!Rpki_world.Synthesis} world instead of the fixed Section 6 model:
    power-law graph, synthesized CA hierarchy and ROAs, monitor vantages
    placed by an {!Rpki_world.Placement} policy, transport priced off the
    generated data plane. *)

type world_rig = {
  wr_sim : t;
  wr_world : Rpki_world.Synthesis.world;
  wr_target_filename : string;
      (** the victim's ROA — apply
          [Rpki_attack.Split_view.plan ~authority:wr_target_authority
          ~target_filename:wr_target_filename ()] to [transport wr_sim] to
          fork the victim's view, or corrupt/stall the same point for the
          other scenario families *)
  wr_target_authority : Rpki_repo.Authority.t;
  wr_monitors : string list;  (** registered monitor vantage names *)
  wr_disk : Rpki_persist.Disk.t option;  (** with [persist]: the simulated
                                             disk, for fault injection *)
  wr_respawn : (log_epoch:int -> Relying_party.t) option;
      (** with [persist]: rebuilds the victim instance for
          {!restart_vantage} *)
}

val world_scenario :
  ?policy:Policy.t ->
  ?grace:int ->
  ?monitors:int ->
  ?placement:Rpki_world.Placement.policy ->
  ?gossip_period:int ->
  ?overlay:Gossip.Overlay.spec ->
  ?overlay_seed:int ->
  ?fetch_policy:Relying_party.fetch_policy ->
  ?valcache:bool ->
  ?persist:bool ->
  ?world:Rpki_world.Synthesis.spec ->
  unit ->
  world_rig
(** Build a world from [world] (default {!Rpki_world.Synthesis.default_spec})
    and rig it like {!split_view_scenario}: the primary relying party
    ("victim-rp", grace default 4) at the world's designated RP stub,
    [monitors] (default 2) monitor vantages at ASes chosen by [placement]
    (default [By_degree]), all gossiping every [gossip_period] ticks.  The
    default [fetch_policy] is the resilient shape with the sync budget
    scaled to the world's publication-point count.  [persist] (default
    false) adds end-of-tick snapshots on a fresh simulated disk and a
    respawn builder — the restart-scenario rigging. *)

(** {2 The canned fault-mix scenario}

    Corpus-calibrated background noise over a closed loop: a
    {!Rpki_repo.Fault_mix} engine rolls every authority each tick against a
    fault rate, injecting the empirical relying-party error mix while the
    primary syncs under a configurable {!Relying_party.unsafe_policy}. *)

type fault_mix_rig = {
  fm_sim : t;
  fm_engine : Rpki_repo.Fault_mix.t;
  fm_targets : Rpki_repo.Authority.t list;
      (** the authorities the engine rolls each tick *)
  fm_victim_authority : Rpki_repo.Authority.t;
      (** the sub-CA whose loss the graceful-degradation demo studies:
          whack or unroute its point and its resources join the failed
          set, turning the parent's covering ROA into an unsafe VRP *)
  fm_victim_uri : string;          (** its publication point *)
  fm_victim_prefix : Rpki_ip.V4.Prefix.t;  (** the prefix its ROA protects *)
  fm_victim_origin : int;          (** the legitimate origin AS *)
  fm_model : Model.t option;       (** the canned fixture, when used *)
  fm_world : Rpki_world.Synthesis.world option;
}

val fault_mix_scenario :
  ?policy:Policy.t ->
  ?grace:int ->
  ?unsafe:Relying_party.unsafe_policy ->
  ?fetch_policy:Relying_party.fetch_policy ->
  ?seed:int ->
  ?rate:float ->
  ?repair_after:int ->
  ?world:Rpki_world.Synthesis.spec ->
  unit ->
  fault_mix_rig
(** Without [world]: the {!section6_scenario} fixture (Continental's /20
    ROA under Sprint's covering /12-13 ROA — exactly the covering-ROA
    shape the unsafe analysis is about), victim = Continental.  With
    [world]: a generated world via {!world_scenario} (no monitors),
    victim = the world's designated victim CA.  [unsafe] (default
    [Unsafe_accept]) is spliced into [fetch_policy] (default
    {!Relying_party.default_policy}); [seed]/[rate]/[repair_after] go to
    {!Rpki_repo.Fault_mix.create}. *)

val fault_mix_step : fault_mix_rig -> now:Rtime.t -> Rpki_repo.Fault_mix.injection list * tick_record
(** One fault-mix tick: {!Rpki_repo.Fault_mix.tick} the engine (repair due
    faults, inject fresh ones on the targets and the primary's transport),
    then {!step}. *)

(** {2 The canned long-run soak scenario}

    Endurance, not detection: run the split-view setting for thousands of
    ticks under configurable churn, with persistence on, and measure the
    growth curves the endurance refactor flattens — disk bytes per save
    (O(delta) segments vs O(history) full snapshots), Valcache residency
    (epoch eviction vs monotone growth) and Gc live words. *)

type soak_config = {
  sk_ticks : int;            (** simulation length, in ticks *)
  sk_churn_every : int;      (** re-issue ARIN's subtree every n ticks
                                 ({!Rpki_repo.Authority.maintain});
                                 0 = no churn *)
  sk_compact_every : int;    (** fold persistence chains every n ticks;
                                 0 = never *)
  sk_evict : bool;           (** epoch-based Valcache eviction at tick end *)
  sk_full_snapshots : bool;  (** force O(history) full saves (the baseline) *)
  sk_valcache : bool;        (** shared validation plane on *)
  sk_monitors : int;         (** monitor vantages alongside the primary *)
  sk_gossip_period : int;
  sk_sample_every : int;     (** record a sample every n ticks (and at the
                                 last tick regardless) *)
  sk_validity : int option;  (** issuance validity window, in ticks — short
                                 windows are what make entries evictable *)
  sk_refresh_interval : int option;
  sk_world : Rpki_world.Synthesis.spec option;
      (** [Some spec] soaks a generated world (built via {!world_scenario};
          churn maintains the synthesized root's subtree; the soak's
          validity knobs override the spec's); [None] (default) soaks the
          canned small scenario *)
}

val default_soak : soak_config
(** 2000 ticks, no churn, compaction every 64 ticks, eviction on, segmented
    saves, 1 monitor, gossip every 16 ticks, a sample every 100 ticks. *)

type soak_sample = {
  so_tick : int;
  so_live_words : int;       (** [Gc.stat].live_words after [Gc.full_major] *)
  so_snapshot_bytes : int;   (** the primary store's base snapshot size *)
  so_chain_bytes : int;      (** base + segments: what a restore must read *)
  so_segments : int;         (** sealed segments beyond the base *)
  so_save_bytes : int;       (** disk bytes written since the previous sample *)
  so_log_size : int;         (** primary transparency-log leaves *)
  so_residency : Valcache.residency option;
}

type soak_report = {
  so_config : soak_config;
  so_samples : soak_sample list;  (** oldest first; last = final state *)
  so_saves : int;                 (** saves executed across all vantages *)
  so_total_save_bytes : int;      (** cumulative disk bytes written *)
  so_bytes_per_save : float;
}

val run_soak : ?config:soak_config -> unit -> soak_report
(** Build a {!split_view_scenario} with persistence on a fresh simulated
    disk, apply the config's endurance knobs ([keep_history] off so the
    run itself stays flat), drive [sk_ticks] ticks with the configured
    churn, and sample the growth curves. *)
