(** Closing the loop (the paper's Section 6): RPKI -> route validity ->
    BGP -> repository reachability -> RPKI.

    A discrete-time simulator in which, each tick, the relying party syncs
    the RPKI {e over the data plane its previous sync produced}: a
    publication point can be fetched only if the RP currently has a working
    route to the repository's address.  A transient fault that invalidates
    the route to a repository therefore prevents the fetch that would repair
    it — Side Effect 7's persistent-failure mechanism.

    Sync is incremental across ticks: the relying party carries its
    origin-validation index forward, and each tick's VRP diff feeds an RTR
    cache as a serial-numbered delta. *)

open Rpki_core
open Rpki_repo
open Rpki_bgp

type probe = {
  label : string;
  addr : Rpki_ip.Addr.V4.t;
  expected_origin : int;
}

type t = {
  universe : Universe.t;
  topo : Topology.t;
  policy : Policy.t;                         (** uniform at every AS *)
  rp : Relying_party.t;
  rtr : Rpki_rtr.Session.cache;              (** fed one delta per changed tick *)
  announcements : Propagation.announcement list;
  probes : probe list;
  transport : Transport.t;                   (** priced off the previous tick's
                                                 data plane *)
  mutable fetch_policy : Relying_party.fetch_policy;
  mutable per_hop_latency : int;             (** transport ticks per hop *)
  mutable net : Data_plane.network option;
  mutable history : tick_record list;
}

and tick_record = {
  time : Rtime.t;
  vrp_count : int;
  issue_count : int;
  fetch_failures : string list;
  probe_results : (string * bool) list;
  vrp_diff : Vrp.diff;          (** change relative to the previous tick *)
  rtr_serial : int;             (** RTR cache serial after this tick *)
  points_reused : int;          (** publication points replayed from memo *)
  points_revalidated : int;     (** publication points validated from scratch *)
  sync_elapsed : int;           (** transport time the sync spent *)
  max_data_age : int;           (** worst staleness the sync accepted *)
  budget_exhausted : bool;      (** the fetch budget ran out this tick *)
}

val create :
  universe:Universe.t ->
  topo:Topology.t ->
  policy:Policy.t ->
  rp:Relying_party.t ->
  announcements:Propagation.announcement list ->
  probes:probe list ->
  t

val rtr_cache : t -> Rpki_rtr.Session.cache
(** The RTR cache fed by the loop; attach routers to it with
    {!Rpki_rtr.Session.synchronize}.  Its data age tracks the worst
    staleness of each tick's sync. *)

val transport : t -> Transport.t
(** The loop's transport.  Its latency oracle is wired to the previous
    tick's data plane ([per_hop_latency] transport ticks per forwarding
    hop; no valid route — or traffic delivered to a hijacker — is no
    route).  Adversaries ({!Rpki_attack.Stall}) and operators inject
    faults here. *)

val set_fetch_policy : t -> Relying_party.fetch_policy -> unit
(** Replace the fetch policy used by subsequent {!step}s
    (default {!Relying_party.default_policy}). *)

val set_per_hop_latency : t -> int -> unit
(** Transport ticks charged per forwarding hop (default 1; clamped at 0).
    0 restores PR-1's boolean-reachability behaviour exactly. *)

val point_reachable : t -> Pub_point.t -> bool
(** Reachability of a publication point from the RP's AS, judged on the data
    plane of the previous tick (everything is reachable before the first). *)

val step : t -> now:Rtime.t -> tick_record
(** One tick: refresh mirrors, sync the RP over the previous data plane
    (incrementally), push the VRP diff into the RTR cache, recompute the
    data plane, run the probes. *)

val history : t -> tick_record list
val pp_record : Format.formatter -> tick_record -> unit

(** {2 The canned Section 6 scenario} *)

type section6 = {
  sim : t;
  model : Model.t;
  continental_repo : Pub_point.t;
  target_filename : string; (** the ROA whose corruption starts the spiral *)
}

val section6_scenario :
  ?policy:Policy.t ->
  ?grace:int ->
  ?mirrored:bool ->
  ?rrdp:bool ->
  ?validity:int ->
  ?refresh_interval:int ->
  unit ->
  section6
(** Figure 5 (right) validity, the small topology with every repository host
    attached, Continental hosting its own repository inside its certified
    /20.  [mirrored] registers a mirror of Continental's repository inside
    Sprint's address space (the draft-multiple-publication-points
    mitigation); [rrdp] registers an RRDP delta service for it, endpoint
    likewise in Sprint's space; [grace] enables the Suspenders-style hold on
    the RP.  [validity] / [refresh_interval] shorten every authority's
    issuance windows (see {!Model.build}) so stall experiments can age a
    starved cache to expiry within a few ticks. *)

val run_section6 :
  ?policy:Policy.t ->
  ?flush_cache_at:int option ->
  ?grace:int ->
  ?mirrored:bool ->
  unit ->
  section6 * tick_record list
(** The Side Effect 7 timeline: two healthy ticks, a one-tick corruption of
    the critical ROA, repair, then observation through tick 7. *)
