(** RFC 6962-style Merkle hash trees over {!Rpki_crypto.Sha256}.

    The transparency log's cryptographic core: an append-only sequence of
    leaves committed to by a single 32-byte root, with O(log n) {e inclusion}
    proofs ("this leaf is in the tree of size n") and {e consistency} proofs
    ("the tree of size n extends the tree of size m") — the two primitives
    that make a publication history verifiable without trusting its keeper.

    Hashing is domain-separated exactly as in RFC 6962 section 2.1: a leaf
    hashes as [H(0x00 || leaf)], an interior node as [H(0x01 || l || r)],
    and the split point of a tree of size n is the largest power of two
    strictly below n.  The empty tree hashes to [H("")].

    Proof {e generation} walks the leaf array (O(n) time — fine at
    simulation scale); proof {e size} is what the experiments report, and
    that is O(log n) by construction. *)

type t
(** A mutable append-only tree. *)

val create : unit -> t

val add : t -> string -> int
(** Append a leaf (raw bytes); returns its index. *)

val size : t -> int

val leaf : t -> int -> string
(** The leaf data at an index.  Raises [Invalid_argument] out of range. *)

val leaf_hash : string -> string
(** [H(0x00 || leaf)]. *)

val root : t -> string
(** Root over the whole current tree. *)

val root_at : t -> size:int -> string
(** Root over the first [size] leaves (a past head of the same log).
    Raises [Invalid_argument] when [size] exceeds the tree. *)

type proof = string list
(** An audit path: sibling hashes, leaf-to-root order. *)

val proof_bytes : proof -> int
(** Wire size of a proof (32 bytes per hash). *)

val inclusion_proof : t -> index:int -> size:int -> proof
(** The RFC 6962 PATH(index, D[0:size]).  Raises [Invalid_argument] unless
    [0 <= index < size <= size t]. *)

val verify_inclusion :
  leaf:string -> index:int -> size:int -> root:string -> proof -> bool
(** Does [proof] connect [H(0x00 || leaf)] at [index] to [root] over a tree
    of [size] leaves?  Never raises. *)

val consistency_proof : t -> old_size:int -> size:int -> proof
(** The RFC 6962 PROOF(old_size, D[0:size]).  Raises [Invalid_argument]
    unless [0 < old_size <= size <= size t]. *)

val verify_consistency :
  old_size:int ->
  old_root:string ->
  size:int ->
  root:string ->
  proof ->
  bool
(** Does [proof] show that the tree of [size] leaves with head [root] is an
    append-only extension of the tree of [old_size] leaves with head
    [old_root]?  [old_size = 0] is vacuously consistent with anything (the
    proof must be empty); [old_size = size] demands equal roots.  Never
    raises. *)
