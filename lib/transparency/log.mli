(** The transparency log: an append-only, Merkle-tree-backed history of
    publication-point states.

    The paper's Section 7 countermeasure is making authority misbehavior
    {e detectable}: a misbehaving authority should be unable to show one
    RPKI view to its victim and another to the rest of the world without
    leaving cryptographic evidence.  Each relying-party vantage keeps one
    of these logs; every sync appends a content-addressed {!observation}
    per fetched publication point (point URI, manifest number, manifest
    hash, VRP-set hash, listing fingerprint).  The log commits to its whole
    history through a {!head} (root hash + size), which the vantage signs
    ({!signed_head}) and gossips to its peers.

    Two honest vantages watching the same honest authority record the same
    observation for a given (point, manifest number); a split-view
    ("mirror world") authority necessarily creates two observations with
    the same key but different hashes — and each side's inclusion proof
    under its signed head turns that divergence into portable, verifiable
    fork evidence.  A vantage that rewrites its own history is caught by a
    consistency-proof failure between its successive heads.

    Appends are deduplicated per point: re-observing an unchanged state
    (e.g. a stale-cache fallback under a stalled transport) appends
    nothing, so faulty-but-consistent transports never fork the log. *)

open Rpki_crypto

type observation = {
  ob_uri : string;            (** the publication point *)
  ob_serial : int;            (** manifest number as served; 0 if no manifest *)
  ob_manifest_hash : string;  (** SHA-256 of the manifest bytes; [""] if absent *)
  ob_vrp_hash : string;       (** SHA-256 over the point's sorted VRP strings *)
  ob_snapshot_fp : string;    (** the served listing's fingerprint *)
  ob_at : int;                (** tick the state was first observed *)
}

val encode_observation : observation -> string
(** Canonical length-prefixed leaf encoding; what the Merkle tree hashes. *)

val decode_observation : string -> observation option
(** Inverse of {!encode_observation}; [None] on malformed input. *)

val observation_equal : observation -> observation -> bool
(** Equality of the observed {e state} — everything but [ob_at]. *)

val observation_to_string : observation -> string

type t
(** One vantage's append-only log. *)

val create : log_id:string -> t
(** [log_id] names the vantage; it is bound into every head. *)

val log_id : t -> string
val size : t -> int

val append : t -> observation -> [ `Appended of int | `Unchanged ]
(** Record an observation.  [`Unchanged] when the point's last recorded
    state is identical (modulo [ob_at]) — the dedup that keeps delayed
    re-observations from growing or forking the log. *)

val observation : t -> int -> observation
(** By index.  Raises [Invalid_argument] out of range. *)

val observations : t -> observation list
(** Oldest first. *)

val since : t -> int -> (int * observation) list
(** Entries with index >= the given size (a gossip delta), oldest first. *)

val find : t -> uri:string -> serial:int -> (int * observation) option
(** The first observation recorded for (point, manifest number) — the
    cross-vantage conflict-detection key. *)

val latest_for : t -> uri:string -> observation option

type head = {
  h_log_id : string;
  h_size : int;
  h_root : string;   (** Merkle root over the first [h_size] leaves *)
  h_at : int;        (** tick the head was cut *)
}

val head : t -> at:int -> head
val encode_head : head -> string

val decode_head : string -> head option
(** Inverse of {!encode_head}; [None] on malformed input.  What the
    persistence layer stores and rehydrates. *)

val head_to_string : head -> string

type signed_head = {
  sh_head : head;
  sh_sig : string;   (** RSA signature over {!encode_head} *)
}

val sign_head : key:Rsa.private_ -> head -> signed_head
val verify_head : key:Rsa.public -> signed_head -> bool

val inclusion_proof : t -> index:int -> size:int -> Merkle.proof
(** Proof that leaf [index] is in this log's tree of [size] leaves. *)

val verify_observation_inclusion :
  observation -> index:int -> head:head -> Merkle.proof -> bool
(** Verify an observation against a (peer's) head — no log needed. *)

val consistency_proof : t -> old_size:int -> size:int -> Merkle.proof

val verify_head_consistency : old_head:head -> new_head:head -> Merkle.proof -> bool
(** Do two heads of the same log describe one append-only history?
    Checks log-id equality, then the Merkle consistency proof. *)
