(* RFC 6962-style Merkle hash trees over Rpki_crypto.Sha256.

   Domain-separated hashing (section 2.1): H(0x00 || leaf) for leaves,
   H(0x01 || l || r) for interior nodes, split at the largest power of two
   strictly below the subtree size.  Proof generation recomputes subtree
   roots from the stored leaf hashes — O(n) time, O(log n) proof size; at
   simulation scale the simplicity is worth more than cached interior
   nodes. *)

module Sha256 = Rpki_crypto.Sha256

let leaf_hash l = Sha256.digest_list [ "\x00"; l ]
let node_hash l r = Sha256.digest_list [ "\x01"; l; r ]

(* Largest power of two strictly below n (n >= 2). *)
let split_point n =
  let k = ref 1 in
  while !k * 2 < n do
    k := !k * 2
  done;
  !k

type t = {
  mutable leaves : string array;      (* raw leaf data *)
  mutable hashes : string array;      (* H(0x00 || leaf), same order *)
  mutable count : int;
}

let create () = { leaves = Array.make 16 ""; hashes = Array.make 16 ""; count = 0 }

let size t = t.count

let leaf t i =
  if i < 0 || i >= t.count then invalid_arg "Merkle.leaf: index out of range";
  t.leaves.(i)

let add t l =
  if t.count = Array.length t.leaves then begin
    let grow a = Array.init (2 * Array.length a) (fun i -> if i < t.count then a.(i) else "") in
    t.leaves <- grow t.leaves;
    t.hashes <- grow t.hashes
  end;
  let i = t.count in
  t.leaves.(i) <- l;
  t.hashes.(i) <- leaf_hash l;
  t.count <- i + 1;
  i

(* MTH over hashes[lo, lo+n). *)
let rec mth hashes lo n =
  if n = 0 then Sha256.digest ""
  else if n = 1 then hashes.(lo)
  else
    let k = split_point n in
    node_hash (mth hashes lo k) (mth hashes (lo + k) (n - k))

let root_at t ~size =
  if size < 0 || size > t.count then invalid_arg "Merkle.root_at: size out of range";
  mth t.hashes 0 size

let root t = root_at t ~size:t.count

type proof = string list

let proof_bytes p = 32 * List.length p

(* PATH(m, D[lo, lo+n)), leaf-to-root order. *)
let rec path hashes m lo n =
  if n <= 1 then []
  else
    let k = split_point n in
    if m < k then path hashes m lo k @ [ mth hashes (lo + k) (n - k) ]
    else path hashes (m - k) (lo + k) (n - k) @ [ mth hashes lo k ]

let inclusion_proof t ~index ~size =
  if size < 1 || size > t.count then invalid_arg "Merkle.inclusion_proof: size out of range";
  if index < 0 || index >= size then invalid_arg "Merkle.inclusion_proof: index out of range";
  path t.hashes index 0 size

(* RFC 6962 section 2.1.1 verification: walk the path combining left or
   right according to the index bits, tracking the subtree extent. *)
let verify_inclusion ~leaf ~index ~size ~root proof =
  if index < 0 || size < 1 || index >= size then false
  else begin
    let fn = ref index and sn = ref (size - 1) in
    let r = ref (leaf_hash leaf) in
    let ok = ref true in
    List.iter
      (fun c ->
        if !sn = 0 then ok := false
        else begin
          if !fn land 1 = 1 || !fn = !sn then begin
            r := node_hash c !r;
            if !fn land 1 = 0 then
              while !fn land 1 = 0 && !fn <> 0 do
                fn := !fn lsr 1;
                sn := !sn lsr 1
              done
          end
          else r := node_hash !r c;
          fn := !fn lsr 1;
          sn := !sn lsr 1
        end)
      proof;
    !ok && !sn = 0 && String.equal !r root
  end

(* SUBPROOF(m, D[lo, lo+n), flag), RFC 6962 section 2.1.2. *)
let rec subproof hashes m lo n flag =
  if m = n then if flag then [] else [ mth hashes lo n ]
  else
    let k = split_point n in
    if m <= k then subproof hashes m lo k flag @ [ mth hashes (lo + k) (n - k) ]
    else subproof hashes (m - k) (lo + k) (n - k) false @ [ mth hashes lo k ]

let consistency_proof t ~old_size ~size =
  if size > t.count then invalid_arg "Merkle.consistency_proof: size out of range";
  if old_size < 1 || old_size > size then
    invalid_arg "Merkle.consistency_proof: old_size out of range";
  if old_size = size then [] else subproof t.hashes old_size 0 size true

(* RFC 6962 section 2.1.2 / RFC 9162 section 2.1.4.2 verification. *)
let verify_consistency ~old_size ~old_root ~size ~root proof =
  if old_size < 0 || old_size > size then false
  else if old_size = 0 then proof = []
  else if old_size = size then proof = [] && String.equal old_root root
  else begin
    (* when old_size is an exact power of two, the old root itself seeds
       the walk and is not repeated inside the proof *)
    let proof = if old_size land (old_size - 1) = 0 then old_root :: proof else proof in
    match proof with
    | [] -> false
    | seed :: rest ->
      let fn = ref (old_size - 1) and sn = ref (size - 1) in
      while !fn land 1 = 1 do
        fn := !fn lsr 1;
        sn := !sn lsr 1
      done;
      let fr = ref seed and sr = ref seed in
      let ok = ref true in
      List.iter
        (fun c ->
          if !sn = 0 then ok := false
          else begin
            if !fn land 1 = 1 || !fn = !sn then begin
              fr := node_hash c !fr;
              sr := node_hash c !sr;
              if !fn land 1 = 0 then
                while !fn land 1 = 0 && !fn <> 0 do
                  fn := !fn lsr 1;
                  sn := !sn lsr 1
                done
            end
            else sr := node_hash !sr c;
            fn := !fn lsr 1;
            sn := !sn lsr 1
          end)
        rest;
      !ok && !sn = 0 && String.equal !fr old_root && String.equal !sr root
  end
