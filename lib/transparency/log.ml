(* The transparency log: an append-only, Merkle-tree-backed history of
   publication-point states (see the .mli for the detection story).

   Leaves are canonical length-prefixed encodings of observation records,
   so a leaf is content-addressed: two vantages that observed the same
   state produce byte-identical leaves, and any difference in what an
   authority served them shows up as differing leaf hashes under the same
   (uri, manifest number) key. *)

open Rpki_crypto

type observation = {
  ob_uri : string;
  ob_serial : int;
  ob_manifest_hash : string;
  ob_vrp_hash : string;
  ob_snapshot_fp : string;
  ob_at : int;
}

(* Canonical encoding: "rpki-obs-v1" then each field length-prefixed with a
   fixed-width decimal, integers in decimal.  Unambiguous and stable — the
   Merkle leaf hash depends on nothing else. *)
let encode_field b s =
  Buffer.add_string b (Printf.sprintf "%08d:" (String.length s));
  Buffer.add_string b s

let encode_observation o =
  let b = Buffer.create 128 in
  Buffer.add_string b "rpki-obs-v1\n";
  encode_field b o.ob_uri;
  encode_field b (string_of_int o.ob_serial);
  encode_field b o.ob_manifest_hash;
  encode_field b o.ob_vrp_hash;
  encode_field b o.ob_snapshot_fp;
  encode_field b (string_of_int o.ob_at);
  Buffer.contents b

let decode_observation s =
  let magic = "rpki-obs-v1\n" in
  let n = String.length s in
  let pos = ref 0 in
  let fail = ref false in
  let expect m =
    let l = String.length m in
    if !pos + l <= n && String.sub s !pos l = m then pos := !pos + l else fail := true
  in
  let field () =
    if !fail then ""
    else if !pos + 9 > n then (fail := true; "")
    else
      let len_s = String.sub s !pos 8 in
      match int_of_string_opt len_s with
      | None -> fail := true; ""
      | Some len ->
        if s.[!pos + 8] <> ':' || !pos + 9 + len > n then (fail := true; "")
        else begin
          let v = String.sub s (!pos + 9) len in
          pos := !pos + 9 + len;
          v
        end
  in
  let int_field () =
    match int_of_string_opt (field ()) with
    | Some i -> i
    | None -> fail := true; 0
  in
  expect magic;
  let ob_uri = field () in
  let ob_serial = int_field () in
  let ob_manifest_hash = field () in
  let ob_vrp_hash = field () in
  let ob_snapshot_fp = field () in
  let ob_at = int_field () in
  if !fail || !pos <> n then None
  else Some { ob_uri; ob_serial; ob_manifest_hash; ob_vrp_hash; ob_snapshot_fp; ob_at }

(* State equality: everything but the observation time. *)
let observation_equal a b =
  String.equal a.ob_uri b.ob_uri
  && a.ob_serial = b.ob_serial
  && String.equal a.ob_manifest_hash b.ob_manifest_hash
  && String.equal a.ob_vrp_hash b.ob_vrp_hash
  && String.equal a.ob_snapshot_fp b.ob_snapshot_fp

let short h = if h = "" then "-" else Rpki_util.Hex.of_string (String.sub h 0 4)

let observation_to_string o =
  Printf.sprintf "%s #%d mft=%s vrps=%s fp=%s @t%d" o.ob_uri o.ob_serial
    (short o.ob_manifest_hash) (short o.ob_vrp_hash) (short o.ob_snapshot_fp) o.ob_at

type t = {
  id : string;
  tree : Merkle.t;
  obs : (int, observation) Hashtbl.t;            (* index -> record *)
  last_by_uri : (string, observation) Hashtbl.t; (* dedup key *)
  by_key : (string * int, int) Hashtbl.t;        (* (uri, serial) -> first index *)
}

let create ~log_id =
  { id = log_id; tree = Merkle.create (); obs = Hashtbl.create 64;
    last_by_uri = Hashtbl.create 16; by_key = Hashtbl.create 64 }

let log_id t = t.id
let size t = Merkle.size t.tree

let append t o =
  match Hashtbl.find_opt t.last_by_uri o.ob_uri with
  | Some last when observation_equal last o -> `Unchanged
  | _ ->
    let i = Merkle.add t.tree (encode_observation o) in
    Hashtbl.replace t.obs i o;
    Hashtbl.replace t.last_by_uri o.ob_uri o;
    if not (Hashtbl.mem t.by_key (o.ob_uri, o.ob_serial)) then
      Hashtbl.replace t.by_key (o.ob_uri, o.ob_serial) i;
    `Appended i

let observation t i =
  match Hashtbl.find_opt t.obs i with
  | Some o -> o
  | None -> invalid_arg "Log.observation: index out of range"

let observations t = List.init (size t) (observation t)

let since t from = List.init (max 0 (size t - from)) (fun k -> (from + k, observation t (from + k)))

let find t ~uri ~serial =
  Option.map (fun i -> (i, observation t i)) (Hashtbl.find_opt t.by_key (uri, serial))

let latest_for t ~uri = Hashtbl.find_opt t.last_by_uri uri

type head = {
  h_log_id : string;
  h_size : int;
  h_root : string;
  h_at : int;
}

let head t ~at = { h_log_id = t.id; h_size = size t; h_root = Merkle.root t.tree; h_at = at }

let encode_head h =
  let b = Buffer.create 64 in
  Buffer.add_string b "rpki-sth-v1\n";
  encode_field b h.h_log_id;
  encode_field b (string_of_int h.h_size);
  encode_field b h.h_root;
  encode_field b (string_of_int h.h_at);
  Buffer.contents b

let decode_head s =
  let magic = "rpki-sth-v1\n" in
  let n = String.length s in
  let pos = ref 0 in
  let fail = ref false in
  let expect m =
    let l = String.length m in
    if !pos + l <= n && String.sub s !pos l = m then pos := !pos + l else fail := true
  in
  let field () =
    if !fail then ""
    else if !pos + 9 > n then (fail := true; "")
    else
      let len_s = String.sub s !pos 8 in
      match int_of_string_opt len_s with
      | None -> fail := true; ""
      | Some len ->
        if s.[!pos + 8] <> ':' || !pos + 9 + len > n then (fail := true; "")
        else begin
          let v = String.sub s (!pos + 9) len in
          pos := !pos + 9 + len;
          v
        end
  in
  let int_field () =
    match int_of_string_opt (field ()) with
    | Some i -> i
    | None -> fail := true; 0
  in
  expect magic;
  let h_log_id = field () in
  let h_size = int_field () in
  let h_root = field () in
  let h_at = int_field () in
  if !fail || !pos <> n then None else Some { h_log_id; h_size; h_root; h_at }

let head_to_string h =
  Printf.sprintf "%s[%d]=%s @t%d" h.h_log_id h.h_size (short h.h_root) h.h_at

type signed_head = {
  sh_head : head;
  sh_sig : string;
}

let sign_head ~key h = { sh_head = h; sh_sig = Rsa.sign ~key (encode_head h) }
let verify_head ~key sh = Rsa.verify ~key ~signature:sh.sh_sig (encode_head sh.sh_head)

let inclusion_proof t ~index ~size = Merkle.inclusion_proof t.tree ~index ~size

let verify_observation_inclusion o ~index ~head proof =
  Merkle.verify_inclusion ~leaf:(encode_observation o) ~index ~size:head.h_size
    ~root:head.h_root proof

let consistency_proof t ~old_size ~size = Merkle.consistency_proof t.tree ~old_size ~size

let verify_head_consistency ~old_head ~new_head proof =
  String.equal old_head.h_log_id new_head.h_log_id
  && old_head.h_size <= new_head.h_size
  && Merkle.verify_consistency ~old_size:old_head.h_size ~old_root:old_head.h_root
       ~size:new_head.h_size ~root:new_head.h_root proof
