lib/asn/der.ml: Buffer Char Format List Nat Printf Rpki_bignum Rpki_util String
