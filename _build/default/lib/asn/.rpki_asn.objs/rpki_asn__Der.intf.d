lib/asn/der.mli: Format Nat Rpki_bignum
