(** A DER subset: the canonical TLV encoding RPKI objects are signed over.

    Definite, minimal-length encodings only — actual DER, not BER. The
    decoder rejects indefinite lengths, non-minimal lengths, non-minimal or
    negative INTEGERs, and malformed BOOLEANs. *)

open Rpki_bignum

type t =
  | Boolean of bool
  | Integer of Nat.t           (** non-negative only *)
  | Bit_string of string       (** whole bytes; zero unused bits *)
  | Octet_string of string
  | Null
  | Oid of int list
  | Utf8 of string
  | Sequence of t list
  | Set of t list
  | Context of int * t list    (** context-specific, constructed, tag 0-30 *)

exception Decode_error of string

val decode_error : ('a, unit, string, 'b) format4 -> 'a
(** Raise {!Decode_error} with a formatted message (used by the object
    parsers layered on top). *)

val encode : t -> string
(** The DER byte encoding. Raises [Invalid_argument] on malformed OIDs or
    out-of-range context tags. *)

val decode : string -> (t, string) result
(** Parse exactly one value; trailing bytes are an error. *)

val decode_exn : string -> t
(** Like {!decode} but raises {!Decode_error}. *)

val decode_all : string -> t list
(** Parse a concatenation of values. Raises {!Decode_error}. *)

val int_ : int -> t
(** [int_ i] is [Integer (Nat.of_int i)]. *)

val to_int_exn : t -> int
(** Project an INTEGER; raises {!Decode_error} otherwise. *)

val to_string_exn : t -> string
(** Project a UTF8String or OCTET STRING. *)

val to_list_exn : t -> t list
(** Project any constructed value's children. *)

val pp : Format.formatter -> t -> unit
