(** Allocation datasets for the cross-jurisdiction analysis (Table 4).

    Two sources stand in for the paper's BGP/RIR/CAIDA feeds: the embedded
    fixture realising Table 4's exact rows, and a calibrated synthetic
    generator.  Both produce the same record shape. *)

open Rpki_ip

type suballocation = {
  sub_prefix : V4.Prefix.t;
  customer_as : int;
  country : string;
}

type rc_record = {
  holder : string;
  rc_prefix : V4.Prefix.t;
  parent_rir : Country.rir;
  holder_country : string;
  suballocations : suballocation list;
}

val paper_rows : (string * string * Country.rir * string * string list) list
(** Table 4 verbatim: holder, RC prefix, serving RIR, holder country, and
    the out-of-jurisdiction countries the paper reports. *)

val paper_fixture : unit -> rc_record list
(** The nine RCs with synthetic suballocations realising the reported
    country sets (one customer per country, placed deterministically). *)

type synthetic_spec = {
  providers : int;
  customers_per_provider : int;
  cross_border_fraction : float;
  seed : int;
}

val default_synthetic : synthetic_spec
val all_countries : string list
val synthetic : synthetic_spec -> rc_record list
