(* Cross-jurisdiction certification analysis (Section 3.2, Table 4).

   An RC "covers" a country when some suballocation under it serves an AS in
   that country; the RC's holder (and every ancestor authority, up to the
   RIR) can whack the corresponding ROAs.  The question the paper asks: how
   often does that power cross the issuing RIR's jurisdiction? *)

type rc_exposure = {
  record : Dataset.rc_record;
  foreign_countries : string list; (* outside the parent RIR's jurisdiction *)
}

let exposure (r : Dataset.rc_record) =
  let foreign =
    List.sort_uniq String.compare
      (List.filter_map
         (fun (s : Dataset.suballocation) ->
           if Country.in_jurisdiction ~rir:r.Dataset.parent_rir s.Dataset.country then None
           else Some s.Dataset.country)
         r.Dataset.suballocations)
  in
  { record = r; foreign_countries = foreign }

(* RCs that cover at least one out-of-jurisdiction country — Table 4. *)
let cross_jurisdiction_rcs records =
  List.filter (fun e -> e.foreign_countries <> []) (List.map exposure records)

(* Per-RIR reach: the countries outside its region whose ROAs it could
   whack through its certification chains. *)
let rir_reach records =
  let rirs = [ Country.ARIN; Country.RIPE; Country.APNIC; Country.LACNIC; Country.AFRINIC ] in
  List.map
    (fun rir ->
      let reach =
        List.sort_uniq String.compare
          (List.concat_map
             (fun (r : Dataset.rc_record) ->
               if r.Dataset.parent_rir = rir then (exposure r).foreign_countries else [])
             records)
      in
      (rir, reach))
    rirs

(* Aggregate statistics for the synthetic sweep. *)
type stats = {
  total_rcs : int;
  cross_border_rcs : int;
  fraction : float;
  mean_foreign_countries : float;
}

let stats records =
  let exposures = List.map exposure records in
  let crossing = List.filter (fun e -> e.foreign_countries <> []) exposures in
  let total = List.length exposures in
  let nc = List.length crossing in
  { total_rcs = total;
    cross_border_rcs = nc;
    fraction = (if total = 0 then 0.0 else float_of_int nc /. float_of_int total);
    mean_foreign_countries =
      (if nc = 0 then 0.0
       else
         float_of_int (List.fold_left (fun a e -> a + List.length e.foreign_countries) 0 crossing)
         /. float_of_int nc) }
