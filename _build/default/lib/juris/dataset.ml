(* Allocation datasets for the cross-jurisdiction analysis.

   The paper used BGP dumps, RIR allocation files and AS-to-country mappings
   — none of which are available offline — so two sources stand in:

   1. [paper_fixture]: the exact nine RCs of the paper's Table 4 together
      with synthetic suballocation records realising the country sets the
      paper reports (one customer AS per listed country, placed inside the
      RC's prefix deterministically);

   2. [synthetic]: a generated deployment calibrated to the paper's scale
      notes (production RPKI ~1200-1400 ROAs, i.e. <1% of projected full
      deployment), with providers certified under their home RIR and
      customers drawn from a country distribution with cross-border mass.

   Both produce the same record shape so the analysis code cannot tell them
   apart. *)

open Rpki_ip

type suballocation = {
  sub_prefix : V4.Prefix.t;
  customer_as : int;
  country : string;
}

type rc_record = {
  holder : string;
  rc_prefix : V4.Prefix.t;
  parent_rir : Country.rir;
  holder_country : string;
  suballocations : suballocation list;
}

(* Carve the [i]th /24 out of [prefix] (wrapping if the prefix is small). *)
let nth_slot prefix i =
  let base = V4.Prefix.addr prefix in
  let span = 32 - V4.Prefix.len prefix in
  let slots = if span <= 8 then 1 else 1 lsl (span - 8) in
  let slot = i mod slots in
  V4.Prefix.make (base + (slot * 256)) (min 32 (max 24 (V4.Prefix.len prefix)))

(* The rows of Table 4, verbatim: holder, RC, serving RIR, and the covered
   countries outside the RIR's jurisdiction.  Holder countries per the
   organisations' homes. *)
let paper_rows =
  [ ("Level3", "8.0.0.0/8", Country.ARIN, "US",
     [ "RU"; "FR"; "NL"; "CN"; "TW"; "JP"; "GU"; "AU"; "GB"; "MX" ]);
    ("Cogent", "38.0.0.0/8", Country.ARIN, "US",
     [ "GU"; "GT"; "HK"; "GB"; "IN"; "PH"; "MX" ]);
    ("Verizon", "65.192.0.0/11", Country.ARIN, "US",
     [ "CO"; "IT"; "AN"; "AS"; "GB"; "EU"; "SG" ]);
    ("Sprint", "208.0.0.0/11", Country.ARIN, "US", [ "AS"; "BO"; "CO"; "ES"; "EC" ]);
    ("Sprint", "63.160.0.0/12", Country.ARIN, "US", [ "FR"; "CO"; "YE"; "AN"; "HN" ]);
    ("Tata Comm.", "64.86.0.0/16", Country.ARIN, "US",
     [ "GU"; "CO"; "MH"; "HN"; "PH"; "ZW" ]);
    ("Columbus", "63.245.0.0/17", Country.ARIN, "US",
     [ "NI"; "GT"; "CO"; "AN"; "HN"; "MX" ]);
    ("Servcorp", "61.28.192.0/19", Country.APNIC, "AU",
     [ "FR"; "AE"; "CA"; "US"; "GB" ]);
    ("Resilans", "192.71.0.0/16", Country.RIPE, "SE", [ "US"; "IN" ]) ]

let paper_fixture () =
  List.mapi
    (fun row_i (holder, prefix_s, parent_rir, holder_country, countries) ->
      let rc_prefix = V4.p prefix_s in
      (* a home-country customer plus one per foreign country *)
      let all_countries = holder_country :: countries in
      let suballocations =
        List.mapi
          (fun i country ->
            { sub_prefix = nth_slot rc_prefix i;
              customer_as = 20000 + (row_i * 100) + i;
              country })
          all_countries
      in
      { holder; rc_prefix; parent_rir; holder_country; suballocations })
    paper_rows

(* --- synthetic deployment --- *)

type synthetic_spec = {
  providers : int;            (* number of provider RCs *)
  customers_per_provider : int;
  cross_border_fraction : float; (* probability a customer is foreign *)
  seed : int;
}

let default_synthetic =
  { providers = 60; customers_per_provider = 20; cross_border_fraction = 0.15; seed = 11 }

let all_countries = List.map fst Country.table

let synthetic (spec : synthetic_spec) =
  let rng = Rpki_util.Rng.create spec.seed in
  List.init spec.providers (fun i ->
      let holder = Printf.sprintf "ISP-%02d" i in
      let holder_country = Rpki_util.Rng.pick rng all_countries in
      let parent_rir =
        match Country.rir_of_country holder_country with Some r -> r | None -> Country.ARIN
      in
      (* providers get /12s spread over distinct space *)
      let rc_prefix = V4.Prefix.make ((16 + (i mod 200)) lsl 24) 12 in
      let domestic = Country.countries_of_rir parent_rir in
      let suballocations =
        List.init spec.customers_per_provider (fun j ->
            let country =
              if Rpki_util.Rng.float rng < spec.cross_border_fraction then
                Rpki_util.Rng.pick rng all_countries
              else Rpki_util.Rng.pick rng domestic
            in
            { sub_prefix = nth_slot rc_prefix j;
              customer_as = 40000 + (i * 1000) + j;
              country })
      in
      { holder; rc_prefix; parent_rir; holder_country; suballocations })
