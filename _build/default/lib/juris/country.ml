(* Countries and RIR service regions (Section 3.2).

   Jurisdiction is modelled at the granularity the paper uses: ISO 3166
   alpha-2 codes, each mapped to the RIR that serves it.  The mapping covers
   every code appearing in the paper's Table 4 plus enough of each region to
   drive the synthetic-deployment generator. *)

type rir = ARIN | RIPE | APNIC | LACNIC | AFRINIC

let rir_to_string = function
  | ARIN -> "ARIN"
  | RIPE -> "RIPE"
  | APNIC -> "APNIC"
  | LACNIC -> "LACNIC"
  | AFRINIC -> "AFRINIC"

let rir_of_string = function
  | "ARIN" -> Some ARIN
  | "RIPE" -> Some RIPE
  | "APNIC" -> Some APNIC
  | "LACNIC" -> Some LACNIC
  | "AFRINIC" -> Some AFRINIC
  | _ -> None

(* country code -> serving RIR *)
let table =
  [ (* ARIN: North America and parts of the Caribbean *)
    ("US", ARIN); ("CA", ARIN); ("PR", ARIN);
    (* RIPE: Europe, Middle East, Central Asia *)
    ("FR", RIPE); ("NL", RIPE); ("GB", RIPE); ("RU", RIPE); ("IT", RIPE); ("ES", RIPE);
    ("SE", RIPE); ("DE", RIPE); ("EU", RIPE); ("YE", RIPE); ("AE", RIPE); ("TR", RIPE);
    ("CH", RIPE); ("PL", RIPE);
    (* APNIC: Asia-Pacific, including the US Pacific territories (Guam,
       American Samoa) — which is what puts them outside ARIN's reach in
       the paper's Table 4 *)
    ("CN", APNIC); ("TW", APNIC); ("JP", APNIC); ("AU", APNIC); ("IN", APNIC); ("HK", APNIC);
    ("PH", APNIC); ("SG", APNIC); ("MH", APNIC); ("KR", APNIC); ("ID", APNIC); ("NZ", APNIC);
    ("GU", APNIC); ("AS", APNIC);
    (* LACNIC: Latin America & Caribbean (incl. the former Netherlands
       Antilles) *)
    ("MX", LACNIC); ("GT", LACNIC); ("CO", LACNIC); ("BO", LACNIC); ("EC", LACNIC);
    ("HN", LACNIC); ("NI", LACNIC); ("BR", LACNIC); ("AR", LACNIC); ("CL", LACNIC);
    ("PE", LACNIC); ("VE", LACNIC); ("AN", LACNIC);
    (* AFRINIC *)
    ("ZW", AFRINIC); ("ZA", AFRINIC); ("NG", AFRINIC); ("KE", AFRINIC); ("EG", AFRINIC);
    ("GH", AFRINIC) ]

let rir_of_country cc = List.assoc_opt cc table

let known cc = rir_of_country cc <> None

let countries_of_rir rir = List.filter_map (fun (cc, r) -> if r = rir then Some cc else None) table

(* Is [cc] inside the given RIR's service region (i.e. the RIR is
   accountable to it)? Unknown codes are conservatively out of region. *)
let in_jurisdiction ~rir cc = rir_of_country cc = Some rir
