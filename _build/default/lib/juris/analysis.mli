(** Cross-jurisdiction certification analysis (Section 3.2, Table 4).

    An RC "covers" a country when some suballocation under it serves an AS
    there; the RC's holder — and every ancestor authority up to the RIR —
    can whack the corresponding ROAs.  How often does that power cross the
    issuing RIR's jurisdiction? *)

type rc_exposure = {
  record : Dataset.rc_record;
  foreign_countries : string list; (** outside the parent RIR's region *)
}

val exposure : Dataset.rc_record -> rc_exposure

val cross_jurisdiction_rcs : Dataset.rc_record list -> rc_exposure list
(** RCs covering at least one out-of-jurisdiction country — Table 4. *)

val rir_reach : Dataset.rc_record list -> (Country.rir * string list) list
(** Per RIR, the foreign countries reachable through its chains. *)

type stats = {
  total_rcs : int;
  cross_border_rcs : int;
  fraction : float;
  mean_foreign_countries : float;
}

val stats : Dataset.rc_record list -> stats
