lib/juris/analysis.ml: Country Dataset List String
