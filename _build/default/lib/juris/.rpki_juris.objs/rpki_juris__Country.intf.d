lib/juris/country.mli:
