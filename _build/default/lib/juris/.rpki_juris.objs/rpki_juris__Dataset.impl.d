lib/juris/dataset.ml: Country List Printf Rpki_ip Rpki_util V4
