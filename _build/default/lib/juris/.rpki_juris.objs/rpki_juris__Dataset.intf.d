lib/juris/dataset.mli: Country Rpki_ip V4
