lib/juris/country.ml: List
