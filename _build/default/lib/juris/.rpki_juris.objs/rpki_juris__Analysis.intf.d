lib/juris/analysis.mli: Country Dataset
