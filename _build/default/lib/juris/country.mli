(** Countries and RIR service regions (the paper's Section 3.2).

    Jurisdiction at the granularity the paper uses: ISO 3166 alpha-2 codes
    mapped to the serving RIR.  Covers every code in the paper's Table 4
    plus enough of each region for the synthetic generator. *)

type rir = ARIN | RIPE | APNIC | LACNIC | AFRINIC

val rir_to_string : rir -> string
val rir_of_string : string -> rir option

val table : (string * rir) list
(** country code -> serving RIR *)

val rir_of_country : string -> rir option
val known : string -> bool
val countries_of_rir : rir -> string list

val in_jurisdiction : rir:rir -> string -> bool
(** Is the RIR accountable to this country?  Unknown codes are
    conservatively out of region. *)
