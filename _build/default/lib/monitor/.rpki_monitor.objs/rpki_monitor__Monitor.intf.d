lib/monitor/monitor.mli: Cert Crl Format Roa Rpki_core Rpki_repo Rtime
