lib/monitor/monitor.ml: Cert Crl Format List Obj Option Printf Resources Roa Rpki_core Rpki_repo Rtime String Vrp
