lib/repo/fault.ml: List Printf Pub_point
