lib/repo/universe.ml: List Printf Pub_point
