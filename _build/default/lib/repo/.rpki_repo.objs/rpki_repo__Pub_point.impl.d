lib/repo/pub_point.ml: Bytes Char Format List Rpki_ip String
