lib/repo/fault.mli: Pub_point
