lib/repo/authority.ml: Cert Crl Drbg Format List Manifest Option Printf Pub_point Resources Roa Rpki_core Rpki_crypto Rpki_util Rsa Rtime Universe
