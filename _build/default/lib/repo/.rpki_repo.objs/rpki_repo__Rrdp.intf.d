lib/repo/rrdp.mli: Pub_point
