lib/repo/universe.mli: Pub_point
