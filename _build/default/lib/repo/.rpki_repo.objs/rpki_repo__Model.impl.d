lib/repo/model.ml: Authority Buffer Cert List Printf Relying_party Resources Roa Rpki_core Rpki_crypto Rpki_ip Rtime String Universe V4
