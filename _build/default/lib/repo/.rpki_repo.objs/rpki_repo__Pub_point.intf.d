lib/repo/pub_point.mli: Format Rpki_ip
