lib/repo/model.mli: Authority Relying_party Rpki_core Rpki_ip Rtime Universe
