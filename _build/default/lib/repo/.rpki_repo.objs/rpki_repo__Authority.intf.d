lib/repo/authority.mli: Cert Format Pub_point Resources Roa Rpki_core Rpki_crypto Rpki_ip Rpki_util Rsa Rtime Universe
