lib/repo/rrdp.ml: Int List Printf Pub_point Rpki_crypto Rpki_util String
