lib/repo/relying_party.mli: Authority Origin_validation Pub_point Rpki_core Rpki_crypto Rtime Universe Vrp
