lib/repo/relying_party.ml: Authority Cert Hashtbl List Manifest Obj Option Origin_validation Printf Pub_point Rpki_core Rpki_crypto Rtime Universe Validation Vrp
