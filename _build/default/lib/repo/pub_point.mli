(** A publication point: the rsync-served directory where one authority
    publishes everything it has issued (RFC 6481).

    The paper's Section 3 design decisions live here: objects are delivered
    out of band from a directory {e controlled by their issuer}, and an
    issuer may silently delete or overwrite anything in its own directory. *)

type t = {
  uri : string;                 (** e.g. ["rsync://rpki.sprint.net/repo"] *)
  addr : Rpki_ip.Addr.V4.t;     (** where the repository host lives *)
  host_asn : int;               (** the AS hosting the repository *)
  mutable files : (string * string) list; (** filename -> DER bytes, sorted *)
}

val create : uri:string -> addr:Rpki_ip.Addr.V4.t -> host_asn:int -> t

val put : t -> filename:string -> string -> unit
(** Publish or overwrite one file. *)

val delete : t -> filename:string -> unit
val get : t -> filename:string -> string option
val files : t -> (string * string) list
val filenames : t -> string list
val mem : t -> filename:string -> bool

val snapshot : t -> (string * string) list
(** A point-in-time copy, as an rsync client would obtain. *)

val corrupt : t -> filename:string -> byte_index:int -> bool
(** Flip one byte of a stored file (the transient corruption of Section 6);
    [false] when the file does not exist. *)

val pp : Format.formatter -> t -> unit
