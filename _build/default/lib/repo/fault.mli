(** Third-party fault injection against publication points.

    These are {e not} authority operations: they model filesystem
    corruption, server failures and expiry (Side Effect 6's "information can
    be missing for a variety of reasons"), so they do not update the
    manifest — leaving the inconsistencies a manifest exists to expose. *)

type applied = {
  description : string;
  undo : unit -> unit; (** repair the fault (restore the previous bytes) *)
}

val delete_object : Pub_point.t -> filename:string -> applied option
(** [None] when the file does not exist. *)

val corrupt_object :
  Pub_point.t -> filename:string -> ?byte_index:int -> unit -> applied option
(** Flip one byte. *)

val wipe : Pub_point.t -> applied
(** Remove every file: total repository loss. *)

val repair : applied -> unit
