(* A publication point: the rsync-served directory where one authority
   publishes every object it has issued (RFC 6481).

   The paper's Section 3 design decisions live here: objects are delivered
   out of band from a directory *controlled by their issuer*, and an issuer
   may silently delete or overwrite anything in its own directory. *)

type t = {
  uri : string;                    (* e.g. "rsync://rpki.sprint.net/repo" *)
  addr : Rpki_ip.Addr.V4.t;        (* where the repository host lives *)
  host_asn : int;                  (* the AS hosting the repository *)
  mutable files : (string * string) list; (* filename -> DER bytes, sorted *)
}

let create ~uri ~addr ~host_asn = { uri; addr; host_asn; files = [] }

let sort files = List.sort (fun (a, _) (b, _) -> String.compare a b) files

(* Publish (or overwrite) one file. *)
let put t ~filename bytes =
  t.files <- sort ((filename, bytes) :: List.remove_assoc filename t.files)

let delete t ~filename = t.files <- List.remove_assoc filename t.files

let get t ~filename = List.assoc_opt filename t.files

let files t = t.files
let filenames t = List.map fst t.files
let mem t ~filename = List.mem_assoc filename t.files

(* A point-in-time copy, as an rsync client would obtain. *)
let snapshot t = t.files

(* Flip one byte of a stored file: the transient corruption of Section 6. *)
let corrupt t ~filename ~byte_index =
  match get t ~filename with
  | None -> false
  | Some bytes ->
    let i = byte_index mod max 1 (String.length bytes) in
    let b = Bytes.of_string bytes in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x01));
    put t ~filename (Bytes.to_string b);
    true

let pp fmt t =
  Format.fprintf fmt "%s (@%s, AS%d): %s" t.uri
    (Rpki_ip.Addr.V4.to_string t.addr)
    t.host_asn
    (String.concat ", " (filenames t))
