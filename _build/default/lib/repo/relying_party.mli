(** The relying party: fetches the distributed RPKI and computes the set of
    validated ROA payloads (RFC 6480 section 6, RFC 6483).

    Fetching is subject to a reachability oracle — in the closed-loop
    simulation that oracle is the RP's own BGP data plane, which is how the
    paper's Section 6 circularity arises.  Like rsync, the RP keeps the last
    successfully fetched copy of each publication point and falls back to it
    when the point is unreachable. *)

open Rpki_core

type tal = {
  ta_name : string;
  ta_key : Rpki_crypto.Rsa.public;
  ta_uri : string;
  ta_cert_filename : string;
}

val tal_of_authority : Authority.t -> tal
(** The TAL of a trust-anchor authority. *)

type fetch_status =
  | Fetched          (** live copy obtained *)
  | Fetched_mirror   (** primary unreachable; a mirror served the copy *)
  | Stale_cache      (** unreachable; last-known snapshot used *)
  | Unavailable      (** unreachable and nothing cached *)

type issue = {
  uri : string;
  filename : string option;
  reason : string;
}
(** One fetch or validation problem, attributed to a location. *)

type sync_result = {
  vrps : Vrp.t list;                       (** the effective VRP set *)
  issues : issue list;
  fetches : (string * fetch_status) list;
  cas_validated : string list;
}

type t = {
  name : string;
  asn : int;                (** the AS where this relying party sits *)
  tals : tal list;
  use_stale : bool;
  grace : int option;
    (** Suspenders-style fail-safe (the paper's ref [25]): when set, a VRP
        that disappears keeps being used for this many ticks after it was
        last seen — softening Side Effects 6 and 7 at the price of delaying
        legitimate revocations by the same window. *)
  mutable cache : (string * (string * string) list) list;
  mutable vrp_memory : (Vrp.t * Rtime.t) list;
  mutable last_result : sync_result option;
}

val create :
  name:string -> asn:int -> tals:tal list -> ?use_stale:bool -> ?grace:int -> unit -> t

val flush_cache : t -> unit
(** Drop cached snapshots and grace memory (the manual operator intervention
    the paper mentions for Side Effect 7 recovery). *)

val sync :
  t ->
  now:Rtime.t ->
  universe:Universe.t ->
  ?reachable:(Pub_point.t -> bool) ->
  unit ->
  sync_result
(** Fetch from every trust anchor down, validate top-down (manifest and CRL
    checks included), and return the validated ROA payloads together with
    every problem encountered. *)

val sync_index :
  t ->
  now:Rtime.t ->
  universe:Universe.t ->
  ?reachable:(Pub_point.t -> bool) ->
  unit ->
  sync_result * Origin_validation.index
(** {!sync} plus the origin-validation index over its VRPs. *)
