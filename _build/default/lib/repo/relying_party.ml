(* The relying party: fetches the distributed RPKI and computes the set of
   validated ROA payloads (RFC 6480 section 6, RFC 6483).

   Fetching is subject to a reachability oracle — in the closed-loop
   simulation that oracle is the RP's own BGP data plane, which is how the
   paper's Section 6 circularity arises.  Like rsync, the RP keeps the last
   successfully fetched copy of each publication point and falls back to it
   when the point is unreachable. *)

open Rpki_core

type tal = {
  ta_name : string;
  ta_key : Rpki_crypto.Rsa.public;
  ta_uri : string;
  ta_cert_filename : string;
}

let tal_of_authority a =
  let ta_name, ta_key, ta_uri, ta_cert_filename = Authority.tal a in
  { ta_name; ta_key; ta_uri; ta_cert_filename }

type fetch_status =
  | Fetched                 (* live copy obtained *)
  | Fetched_mirror          (* primary unreachable; a mirror served the copy *)
  | Stale_cache             (* unreachable; last-known snapshot used *)
  | Unavailable             (* unreachable and nothing cached *)

type issue = {
  uri : string;
  filename : string option;
  reason : string;
}

type sync_result = {
  vrps : Vrp.t list;
  issues : issue list;
  fetches : (string * fetch_status) list;
  cas_validated : string list;
}

type t = {
  name : string;
  asn : int; (* the AS where this relying party sits *)
  tals : tal list;
  use_stale : bool;
  grace : int option;
  (* Suspenders-style fail-safe (Kent & Mandelberg, the paper's ref [25]):
     when set, a VRP that disappears keeps being used for this many ticks
     after it was last seen, softening Side Effects 6 and 7 — at the price
     of delaying legitimate revocations by the same window. *)
  mutable cache : (string * (string * string) list) list; (* uri -> snapshot *)
  mutable vrp_memory : (Vrp.t * Rtime.t) list; (* vrp -> last time seen *)
  mutable last_result : sync_result option;
}

let create ~name ~asn ~tals ?(use_stale = true) ?grace () =
  { name; asn; tals; use_stale; grace; cache = []; vrp_memory = []; last_result = None }

(* Drop a cached snapshot (manual operator intervention; the paper notes
   recovery from Side Effect 7 requires exactly this kind of manual fix). *)
let flush_cache t =
  t.cache <- [];
  t.vrp_memory <- []

let sync t ~now ~universe ?(reachable = fun (_ : Pub_point.t) -> true) () =
  let issues = ref [] in
  let vrps = ref [] in
  let fetches = ref [] in
  let cas = ref [] in
  let seen_keys = Hashtbl.create 16 in
  let problem ~uri ?filename reason = issues := { uri; filename; reason } :: !issues in
  let fetch uri =
    let record st = fetches := (uri, st) :: !fetches in
    match Universe.find universe uri with
    | None ->
      record Unavailable;
      problem ~uri "no such publication point";
      None
    | Some pp ->
      if reachable pp then begin
        let snap = Pub_point.snapshot pp in
        t.cache <- (uri, snap) :: List.remove_assoc uri t.cache;
        record Fetched;
        Some snap
      end
      else begin
        (* primary unreachable: try registered mirrors first, then the
           stale local cache *)
        let reachable_mirror =
          List.find_opt reachable (Universe.mirrors_of universe uri)
        in
        match reachable_mirror with
        | Some mirror ->
          let snap = Pub_point.snapshot mirror in
          t.cache <- (uri, snap) :: List.remove_assoc uri t.cache;
          record Fetched_mirror;
          problem ~uri
            (Printf.sprintf "primary unreachable; fetched mirror %s" mirror.Pub_point.uri);
          Some snap
        | None -> (
          match List.assoc_opt uri t.cache with
          | Some snap when t.use_stale ->
            record Stale_cache;
            problem ~uri "publication point unreachable; using stale cache";
            Some snap
          | _ ->
            record Unavailable;
            problem ~uri "publication point unreachable";
            None)
      end
  in
  (* Validate and walk one CA's publication point. *)
  let rec process_ca (ca_cert : Cert.t) =
    let key = Cert.key_id ca_cert in
    if Hashtbl.mem seen_keys key then ()
    else begin
      Hashtbl.add seen_keys key ();
      cas := ca_cert.Cert.subject :: !cas;
      match ca_cert.Cert.repo_uri with
      | None -> problem ~uri:"-" (Printf.sprintf "CA %s has no repository" ca_cert.Cert.subject)
      | Some uri -> (
        match fetch uri with
        | None -> ()
        | Some snapshot ->
          let decode_file filename =
            match List.assoc_opt filename snapshot with
            | None -> None
            | Some bytes -> (
              match Obj.decode ~filename bytes with
              | Ok o -> Some o
              | Error e ->
                problem ~uri ~filename e;
                None)
          in
          (* the CA's own manifest, if present and well-formed *)
          let mft_name =
            Option.value ca_cert.Cert.manifest_uri ~default:(ca_cert.Cert.subject ^ ".mft")
          in
          let manifest =
            match decode_file mft_name with
            | Some (Obj.Manifest m) -> (
              match Validation.validate_manifest ~now ~parent:ca_cert m with
              | Ok () -> Some m
              | Error f ->
                problem ~uri ~filename:mft_name (Validation.failure_to_string f);
                None)
            | Some _ ->
              problem ~uri ~filename:mft_name "manifest slot holds a different object";
              None
            | None ->
              problem ~uri ~filename:mft_name "manifest missing or undecodable";
              None
          in
          (* manifest completeness / integrity check *)
          (match manifest with
          | None -> ()
          | Some m ->
            List.iter
              (fun (e : Manifest.entry) ->
                match List.assoc_opt e.Manifest.filename snapshot with
                | None ->
                  problem ~uri ~filename:e.Manifest.filename "listed on manifest but missing"
                | Some bytes ->
                  if not (Rpki_crypto.Hmac.equal_digest (Rpki_crypto.Sha256.digest bytes) e.Manifest.hash)
                  then problem ~uri ~filename:e.Manifest.filename "hash mismatch with manifest")
              m.Manifest.entries;
            List.iter
              (fun (filename, _) ->
                if filename <> mft_name && Manifest.find m filename = None then
                  problem ~uri ~filename "present but not listed on manifest")
              snapshot);
          (* the CA's CRL for the objects it issued *)
          let crl_name = ca_cert.Cert.subject ^ ".crl" in
          let crl =
            match decode_file crl_name with
            | Some (Obj.Crl c) -> (
              match Validation.validate_crl ~now ~parent:ca_cert c with
              | Ok () -> Some c
              | Error f ->
                problem ~uri ~filename:crl_name (Validation.failure_to_string f);
                None)
            | Some _ | None ->
              problem ~uri ~filename:crl_name "CRL missing or undecodable";
              None
          in
          (* process every other object at the point *)
          List.iter
            (fun (filename, _) ->
              if filename = mft_name || filename = crl_name then ()
              else begin
                match decode_file filename with
                | None -> ()
                | Some (Obj.Cert c) -> (
                  match Validation.validate_cert ~now ~parent:ca_cert ?crl c with
                  | Ok () -> if c.Cert.is_ca then process_ca c
                  | Error f -> problem ~uri ~filename (Validation.failure_to_string f))
                | Some (Obj.Roa r) -> (
                  match Validation.validate_roa ~now ~parent:ca_cert ?crl r with
                  | Ok vs -> vrps := vs @ !vrps
                  | Error f -> problem ~uri ~filename (Validation.failure_to_string f))
                | Some (Obj.Crl _) ->
                  problem ~uri ~filename "unexpected extra CRL"
                | Some (Obj.Manifest _) ->
                  problem ~uri ~filename "unexpected extra manifest"
              end)
            snapshot)
    end
  in
  List.iter
    (fun tal ->
      match fetch tal.ta_uri with
      | None -> ()
      | Some snapshot -> (
        match List.assoc_opt tal.ta_cert_filename snapshot with
        | None -> problem ~uri:tal.ta_uri ~filename:tal.ta_cert_filename "TA certificate missing"
        | Some bytes -> (
          match Cert.decode bytes with
          | Error e -> problem ~uri:tal.ta_uri ~filename:tal.ta_cert_filename e
          | Ok cert -> (
            match Validation.validate_trust_anchor ~now ~expected_key:tal.ta_key cert with
            | Ok () -> process_ca cert
            | Error f ->
              problem ~uri:tal.ta_uri ~filename:tal.ta_cert_filename
                (Validation.failure_to_string f)))))
    t.tals;
  let current = List.sort_uniq Vrp.compare !vrps in
  let effective =
    match t.grace with
    | None -> current
    | Some grace ->
      (* remember when each VRP was last seen; resurrect those seen within
         the grace window *)
      let seen_now = List.map (fun v -> (v, now)) current in
      let remembered =
        List.filter
          (fun (v, _) -> not (List.exists (fun (v', _) -> Vrp.equal v v') seen_now))
          t.vrp_memory
      in
      t.vrp_memory <- seen_now @ remembered;
      let held =
        List.filter_map
          (fun (v, last) ->
            if Rtime.( <= ) (Rtime.diff now last) grace && not (List.exists (Vrp.equal v) current)
            then Some v
            else None)
          t.vrp_memory
      in
      List.iter
        (fun v ->
          issues :=
            { uri = "-"; filename = None;
              reason = Printf.sprintf "grace: holding disappeared VRP %s" (Vrp.to_string v) }
            :: !issues)
        held;
      List.sort_uniq Vrp.compare (current @ held)
  in
  let result =
    { vrps = effective;
      issues = List.rev !issues;
      fetches = List.rev !fetches;
      cas_validated = List.rev !cas }
  in
  t.last_result <- Some result;
  result

(* Sync and build the origin-validation index in one step. *)
let sync_index t ~now ~universe ?reachable () =
  let result = sync t ~now ~universe ?reachable () in
  (result, Origin_validation.build result.vrps)
