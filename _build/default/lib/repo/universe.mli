(** The set of all publication points, addressable by URI — the stand-in for
    "repositories distributed throughout the Internet".

    The relying party resolves rsync URIs here, subject to a caller-supplied
    reachability oracle; the simulation layer wires that oracle to the BGP
    data plane, closing the paper's Figure 1 loop. *)

type t

val create : unit -> t

val add : t -> Pub_point.t -> unit
(** Raises [Invalid_argument] on a duplicate URI. *)

val find : t -> string -> Pub_point.t option
val find_exn : t -> string -> Pub_point.t
val points : t -> Pub_point.t list

val add_mirror : t -> of_uri:string -> Pub_point.t -> unit
(** Register a mirror of an existing point
    (draft-ietf-sidr-multiple-publication-points, the paper's ref [16]):
    the same objects served from a second location, ideally hosted outside
    the address space the objects themselves validate.  Raises
    [Invalid_argument] when the primary is unknown. *)

val mirrors_of : t -> string -> Pub_point.t list

val refresh_mirrors : t -> unit
(** Copy each primary's current files onto its mirrors.  Mirrors lag until
    refreshed, like real ones. *)
