(* Certificate revocation lists (RFC 5280 profile, simplified).

   Signed directly by the issuing CA.  The paper's Side Effect 1 is that
   revocation doubles as unilateral reclamation of address space; Side
   Effect 2 is that deletion from the repository achieves the same end
   *without* leaving a CRL trace — the monitor library exploits exactly this
   distinction. *)

open Rpki_crypto
open Rpki_asn

type t = {
  issuer : string;
  this_update : Rtime.t;
  next_update : Rtime.t;
  revoked_serials : int list; (* sorted ascending *)
  signature : string;
}

let tbs_der t =
  Der.Sequence
    [ Der.Utf8 t.issuer;
      Der.int_ t.this_update;
      Der.int_ t.next_update;
      Der.Sequence (List.map Der.int_ t.revoked_serials) ]

let tbs_bytes t = Der.encode (tbs_der t)
let to_der t = Der.Sequence [ tbs_der t; Der.Bit_string t.signature ]
let encode t = Der.encode (to_der t)

let of_der = function
  | Der.Sequence
      [ Der.Sequence [ Der.Utf8 issuer; tu; nu; Der.Sequence serials ]; Der.Bit_string signature ] ->
    { issuer;
      this_update = Der.to_int_exn tu;
      next_update = Der.to_int_exn nu;
      revoked_serials = List.map Der.to_int_exn serials;
      signature }
  | _ -> Der.decode_error "bad CRL structure"

let decode s =
  match Der.decode s with
  | Error e -> Error e
  | Ok d -> ( try Ok (of_der d) with Der.Decode_error m -> Error m)

let issue ~ca_key ~issuer ~this_update ~next_update ~revoked_serials =
  let revoked_serials = List.sort_uniq Int.compare revoked_serials in
  let unsigned = { issuer; this_update; next_update; revoked_serials; signature = "" } in
  { unsigned with signature = Rsa.sign ~key:ca_key (tbs_bytes unsigned) }

let revokes t serial = List.mem serial t.revoked_serials

let pp fmt t =
  Format.fprintf fmt "CRL %s [%a..%a] revoked={%s}" t.issuer Rtime.pp t.this_update Rtime.pp
    t.next_update
    (String.concat "," (List.map string_of_int t.revoked_serials))
