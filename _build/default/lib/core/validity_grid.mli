(** Figure 5 machinery: the route-validity status of a prefix and all of its
    subprefixes, for a given origin AS. *)

open Rpki_ip

type cell = {
  prefix : V4.Prefix.t;
  origin : int;
  state : Origin_validation.state;
}

val classify_subtree :
  Origin_validation.index ->
  root:V4.Prefix.t ->
  max_len:int ->
  origin:int ->
  cell list
(** Every prefix in the subtree of [root] down to [max_len], classified for
    [origin], in pre-order. *)

type length_summary = { len : int; valid : int; invalid : int; unknown : int }

val summarize_length :
  Origin_validation.index ->
  root:V4.Prefix.t ->
  len:int ->
  origin:int ->
  length_summary
(** Counts of length-[len] subprefixes of [root] in each state, computed
    with subtree pruning so [len] up to 24 over a /12 is cheap. *)

val grid :
  Origin_validation.index ->
  root:V4.Prefix.t ->
  min_len:int ->
  max_len:int ->
  origin:int ->
  length_summary list

val sample_rows :
  Origin_validation.index ->
  Route.t list ->
  (Route.t * Origin_validation.state * string) list
(** Each route with its state and a one-line explanation — the form in which
    the paper discusses Figure 5. *)
