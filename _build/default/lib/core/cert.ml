(* Resource certificates (RFC 6487 profile, simplified).

   An RC binds a subject's public key to a resource bundle and carries the
   URIs that stitch the distributed RPKI together: where the subject
   publishes (SIA), where the issuer's certificate lives (AIA) and where the
   issuer's CRL lives (CRL-DP).  EE certificates are the same structure with
   [is_ca = false]. *)

open Rpki_crypto
open Rpki_asn

type t = {
  serial : int;
  issuer : string;  (* issuer's subject name *)
  subject : string;
  public_key : Rsa.public;
  resources : Resources.t;
  not_before : Rtime.t;
  not_after : Rtime.t;
  is_ca : bool;
  crl_uri : string option;      (* where the issuer publishes revocations *)
  aia_uri : string option;      (* where this certificate's issuer cert lives *)
  repo_uri : string option;     (* SIA: the subject's publication point *)
  manifest_uri : string option; (* SIA: the subject's manifest *)
  signature : string;           (* issuer's signature over the TBS encoding *)
}

let der_of_opt = function None -> Der.Context (0, []) | Some s -> Der.Context (0, [ Der.Utf8 s ])

let opt_of_der = function
  | Der.Context (0, []) -> None
  | Der.Context (0, [ Der.Utf8 s ]) -> Some s
  | _ -> Der.decode_error "bad optional URI"

let der_of_key (k : Rsa.public) = Der.Sequence [ Der.Integer k.Rsa.n; Der.Integer k.Rsa.e ]

let key_of_der = function
  | Der.Sequence [ Der.Integer n; Der.Integer e ] -> { Rsa.n; e }
  | _ -> Der.decode_error "bad public key"

(* The to-be-signed portion; the signature is computed over these bytes. *)
let tbs_der t =
  Der.Sequence
    [ Der.int_ 2; (* version, constant for this profile *)
      Der.int_ t.serial;
      Der.Utf8 t.issuer;
      Der.Utf8 t.subject;
      Der.Sequence [ Der.int_ t.not_before; Der.int_ t.not_after ];
      der_of_key t.public_key;
      Der.Boolean t.is_ca;
      Resources.to_der t.resources;
      der_of_opt t.crl_uri;
      der_of_opt t.aia_uri;
      der_of_opt t.repo_uri;
      der_of_opt t.manifest_uri ]

let tbs_bytes t = Der.encode (tbs_der t)

let to_der t = Der.Sequence [ tbs_der t; Der.Bit_string t.signature ]
let encode t = Der.encode (to_der t)

let of_der d =
  match d with
  | Der.Sequence
      [ Der.Sequence
          [ version; serial; Der.Utf8 issuer; Der.Utf8 subject;
            Der.Sequence [ nb; na ]; key; Der.Boolean is_ca; resources;
            crl_uri; aia_uri; repo_uri; manifest_uri ];
        Der.Bit_string signature ] ->
    if Der.to_int_exn version <> 2 then Der.decode_error "bad certificate version";
    { serial = Der.to_int_exn serial;
      issuer;
      subject;
      public_key = key_of_der key;
      resources = Resources.of_der resources;
      not_before = Der.to_int_exn nb;
      not_after = Der.to_int_exn na;
      is_ca;
      crl_uri = opt_of_der crl_uri;
      aia_uri = opt_of_der aia_uri;
      repo_uri = opt_of_der repo_uri;
      manifest_uri = opt_of_der manifest_uri;
      signature }
  | _ -> Der.decode_error "bad certificate structure"

let decode s =
  match Der.decode s with
  | Error e -> Error e
  | Ok d -> ( try Ok (of_der d) with Der.Decode_error m -> Error m)

(* Issue (sign) a certificate with the issuer's private key.  All issuance
   in the system funnels through here. *)
let issue ~issuer_key ~serial ~issuer ~subject ~public_key ~resources ~not_before ~not_after
    ~is_ca ?crl_uri ?aia_uri ?repo_uri ?manifest_uri () =
  let unsigned =
    { serial; issuer; subject; public_key; resources; not_before; not_after; is_ca;
      crl_uri; aia_uri; repo_uri; manifest_uri; signature = "" }
  in
  { unsigned with signature = Rsa.sign ~key:issuer_key (tbs_bytes unsigned) }

(* Self-signed trust-anchor certificate. *)
let self_signed ~key ~subject ~resources ~not_before ~not_after ?repo_uri ?manifest_uri () =
  issue ~issuer_key:key.Rsa.private_ ~serial:1 ~issuer:subject ~subject
    ~public_key:key.Rsa.public ~resources ~not_before ~not_after ~is_ca:true ?repo_uri
    ?manifest_uri ()

let verify_signature ~issuer_key t = Rsa.verify ~key:issuer_key ~signature:t.signature (tbs_bytes t)

let key_id t = Rsa.key_id t.public_key

(* Identity modulo the signature: used by the monitor to tell "reissued with
   different contents" from "re-signed". *)
let same_contents a b =
  a.serial = b.serial && a.issuer = b.issuer && a.subject = b.subject
  && Rsa.equal_public a.public_key b.public_key
  && Resources.equal a.resources b.resources
  && a.not_before = b.not_before && a.not_after = b.not_after && a.is_ca = b.is_ca

let pp fmt t =
  Format.fprintf fmt "%s #%d: %s -> %s [%s] (%a..%a)%s"
    (if t.is_ca then "RC" else "EE")
    t.serial t.issuer t.subject
    (Resources.to_string t.resources)
    Rtime.pp t.not_before Rtime.pp t.not_after
    (match t.repo_uri with Some u -> " repo=" ^ u | None -> "")
