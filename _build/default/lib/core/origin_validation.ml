(* Route-origin validation (RFC 6811 / RFC 6483), the semantics at the heart
   of Section 4 of the paper.

   Given the relying party's set of validated ROA payloads, each BGP route is
   classified:

   - [Valid]   — some VRP matches: same origin AS, VRP prefix covers the
                 route's prefix, and the route's length <= maxLength;
   - [Unknown] — no VRP even covers the route's prefix (the RFC's NotFound);
   - [Invalid] — some VRP covers the prefix, but none matches.

   The index is a prefix trie so classification of a route needs only the
   VRPs on its covering path. *)

open Rpki_ip

type state = Valid | Invalid | Unknown

let state_to_string = function Valid -> "valid" | Invalid -> "invalid" | Unknown -> "unknown"
let pp_state fmt s = Format.pp_print_string fmt (state_to_string s)
let equal_state (a : state) b = a = b

type index = { trie : Vrp.t list V4.Trie.t; count : int }

let empty_index = { trie = V4.Trie.empty; count = 0 }

let build vrps =
  let trie =
    List.fold_left
      (fun t (vrp : Vrp.t) ->
        V4.Trie.insert_with ~combine:(fun old v -> v @ old) t vrp.Vrp.prefix [ vrp ])
      V4.Trie.empty vrps
  in
  { trie; count = List.length vrps }

let vrp_count idx = idx.count

let vrps idx = List.concat_map snd (V4.Trie.to_list idx.trie)

let trie_of idx = idx.trie

(* All VRPs whose prefix covers [prefix]. *)
let covering_vrps idx prefix = List.concat_map snd (V4.Trie.covering idx.trie prefix)

let matches (vrp : Vrp.t) (route : Route.t) =
  vrp.Vrp.asn = route.Route.origin
  && vrp.Vrp.asn <> 0 (* AS0 ROAs authorize no one, RFC 6483 section 4 *)
  && V4.Prefix.covers vrp.Vrp.prefix route.Route.prefix
  && V4.Prefix.len route.Route.prefix <= vrp.Vrp.max_len

let classify idx (route : Route.t) =
  let covering = covering_vrps idx route.Route.prefix in
  match covering with
  | [] -> Unknown
  | _ -> if List.exists (fun vrp -> matches vrp route) covering then Valid else Invalid

(* The matching VRPs (evidence for a Valid answer) and covering VRPs
   (evidence for an Invalid answer). *)
let explain idx (route : Route.t) =
  let covering = covering_vrps idx route.Route.prefix in
  let matching = List.filter (fun vrp -> matches vrp route) covering in
  (classify idx route, matching, covering)
