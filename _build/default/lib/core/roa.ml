(* Route Origin Authorizations (RFC 6482 profile, simplified).

   A ROA authorizes one AS to originate a list of prefixes, each with an
   optional maximum length.  As in the real RPKI, the ROA content is signed
   by a one-time-use EE certificate which the issuing CA signs in turn; the
   EE's resources must cover the ROA's prefixes. *)

open Rpki_ip
open Rpki_crypto
open Rpki_asn

type v4_entry = { prefix : V4.Prefix.t; max_len : int }
type v6_entry = { prefix6 : V6.Prefix.t; max_len6 : int }

type t = {
  asid : int;
  v4_entries : v4_entry list;
  v6_entries : v6_entry list;
  ee : Cert.t;          (* the one-time-use end-entity certificate *)
  signature : string;   (* EE-key signature over the content encoding *)
}

let entry ?max_len prefix =
  let max_len = Option.value max_len ~default:(V4.Prefix.len prefix) in
  if max_len < V4.Prefix.len prefix || max_len > 32 then invalid_arg "Roa.entry: bad max_len";
  { prefix; max_len }

let entry6 ?max_len prefix6 =
  let max_len6 = Option.value max_len ~default:(V6.Prefix.len prefix6) in
  if max_len6 < V6.Prefix.len prefix6 || max_len6 > 128 then invalid_arg "Roa.entry6: bad max_len";
  { prefix6; max_len6 }

(* The address space a ROA speaks for — what a whacking manipulator must
   carve out of the target's certification path. *)
let resources t =
  Resources.make
    ~v4:(V4.Set.of_prefixes (List.map (fun e -> e.prefix) t.v4_entries))
    ~v6:(V6.Set.of_prefixes (List.map (fun e -> e.prefix6) t.v6_entries))
    ()

let content_der ~asid ~v4_entries ~v6_entries =
  let enc_v4 (e : v4_entry) =
    Der.Sequence
      [ Der.int_ (V4.Prefix.addr e.prefix); Der.int_ (V4.Prefix.len e.prefix); Der.int_ e.max_len ]
  in
  let enc_v6 (e : v6_entry) =
    Der.Sequence
      [ Der.Integer (Resources.nat_of_v6 (V6.Prefix.addr e.prefix6));
        Der.int_ (V6.Prefix.len e.prefix6); Der.int_ e.max_len6 ]
  in
  Der.Sequence
    [ Der.int_ asid;
      Der.Context (1, List.map enc_v4 v4_entries);
      Der.Context (2, List.map enc_v6 v6_entries) ]

let content_bytes t = Der.encode (content_der ~asid:t.asid ~v4_entries:t.v4_entries ~v6_entries:t.v6_entries)

let to_der t =
  Der.Sequence
    [ content_der ~asid:t.asid ~v4_entries:t.v4_entries ~v6_entries:t.v6_entries;
      Cert.to_der t.ee;
      Der.Bit_string t.signature ]

let encode t = Der.encode (to_der t)

let of_der d =
  match d with
  | Der.Sequence [ Der.Sequence [ asid; Der.Context (1, v4s); Der.Context (2, v6s) ]; ee; Der.Bit_string signature ] ->
    let dec_v4 = function
      | Der.Sequence [ addr; len; ml ] ->
        { prefix = V4.Prefix.make (Der.to_int_exn addr) (Der.to_int_exn len);
          max_len = Der.to_int_exn ml }
      | _ -> Der.decode_error "bad ROA v4 entry"
    in
    let dec_v6 = function
      | Der.Sequence [ Der.Integer addr; len; ml ] ->
        { prefix6 = V6.Prefix.make (Resources.v6_of_nat addr) (Der.to_int_exn len);
          max_len6 = Der.to_int_exn ml }
      | _ -> Der.decode_error "bad ROA v6 entry"
    in
    { asid = Der.to_int_exn asid;
      v4_entries = List.map dec_v4 v4s;
      v6_entries = List.map dec_v6 v6s;
      ee = Cert.of_der ee;
      signature }
  | _ -> Der.decode_error "bad ROA structure"

let decode s =
  match Der.decode s with
  | Error e -> Error e
  | Ok d -> ( try Ok (of_der d) with Der.Decode_error m -> Error m)

(* Issue a ROA: mint an EE keypair (or reuse a caller-supplied one), have the
   CA certify it for exactly the ROA's address space, and sign the content
   with the EE key. *)
let issue ~ca_key ~ca_subject ~serial ~rng ?(ee_bits = Rsa.default_bits) ?ee_key ~asid
    ~v4_entries ?(v6_entries = []) ~not_before ~not_after ?crl_uri ?aia_uri () =
  let ee_key = match ee_key with Some k -> k | None -> Rsa.generate ~bits:ee_bits rng in
  let resources =
    Resources.make
      ~v4:(V4.Set.of_prefixes (List.map (fun e -> e.prefix) v4_entries))
      ~v6:(V6.Set.of_prefixes (List.map (fun e -> e.prefix6) v6_entries))
      ()
  in
  let ee =
    Cert.issue ~issuer_key:ca_key ~serial ~issuer:ca_subject
      ~subject:(Printf.sprintf "%s-roa-ee-%d" ca_subject serial)
      ~public_key:ee_key.Rsa.public ~resources ~not_before ~not_after ~is_ca:false ?crl_uri
      ?aia_uri ()
  in
  let content = Der.encode (content_der ~asid ~v4_entries ~v6_entries) in
  { asid; v4_entries; v6_entries; ee; signature = Rsa.sign ~key:ee_key.Rsa.private_ content }

let pp_v4_entry fmt (e : v4_entry) =
  if e.max_len = V4.Prefix.len e.prefix then V4.Prefix.pp fmt e.prefix
  else Format.fprintf fmt "%a-%d" V4.Prefix.pp e.prefix e.max_len

let pp fmt t =
  Format.fprintf fmt "ROA (%s, AS%d)"
    (String.concat ", "
       (List.map (Format.asprintf "%a" pp_v4_entry) t.v4_entries
       @ List.map (fun (e : v6_entry) -> Format.asprintf "%a-%d" V6.Prefix.pp e.prefix6 e.max_len6) t.v6_entries))
    t.asid

let to_string t = Format.asprintf "%a" pp t
