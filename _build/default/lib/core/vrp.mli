(** Validated ROA Payloads: the (prefix, maxLength, origin AS) triples that
    survive validation and drive route-origin validation (RFC 6811). *)

open Rpki_ip

type t = { prefix : V4.Prefix.t; max_len : int; asn : int }

val make : ?max_len:int -> V4.Prefix.t -> int -> t
(** [max_len] defaults to the prefix length. Raises [Invalid_argument] when
    outside [len..32]. *)

val compare : t -> t -> int
val equal : t -> t -> bool

val of_roa : Roa.t -> t list
(** One VRP per IPv4 entry of the ROA. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
