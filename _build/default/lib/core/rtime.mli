(** Simulation time: abstract integer ticks.

    The RPKI cares about time only through validity windows (notBefore /
    notAfter, thisUpdate / nextUpdate).  One tick reads as "an hour" in the
    experiment narratives, but nothing depends on the unit. *)

type t = int

val epoch : t
val add : t -> int -> t
val diff : t -> t -> int
val compare : t -> t -> int
val ( <= ) : t -> t -> bool
val ( < ) : t -> t -> bool
val max_time : t

val year : int
(** Common validity horizons used by issuers, in ticks. *)

val month : int
val day : int

val pp : Format.formatter -> t -> unit
val to_string : t -> string
