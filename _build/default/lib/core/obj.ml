(* The sum of object kinds stored at a publication point, with the filename
   conventions the repository layer uses (.cer / .roa / .crl / .mft, as in
   RFC 6481). *)

type t =
  | Cert of Cert.t
  | Roa of Roa.t
  | Crl of Crl.t
  | Manifest of Manifest.t

let encode = function
  | Cert c -> Cert.encode c
  | Roa r -> Roa.encode r
  | Crl c -> Crl.encode c
  | Manifest m -> Manifest.encode m

let kind_of_filename name =
  match String.rindex_opt name '.' with
  | None -> None
  | Some i -> (
    match String.sub name (i + 1) (String.length name - i - 1) with
    | "cer" -> Some `Cert
    | "roa" -> Some `Roa
    | "crl" -> Some `Crl
    | "mft" -> Some `Manifest
    | _ -> None)

let decode ~filename bytes =
  match kind_of_filename filename with
  | None -> Error (Printf.sprintf "unknown object kind for %S" filename)
  | Some `Cert -> Result.map (fun c -> Cert c) (Cert.decode bytes)
  | Some `Roa -> Result.map (fun r -> Roa r) (Roa.decode bytes)
  | Some `Crl -> Result.map (fun c -> Crl c) (Crl.decode bytes)
  | Some `Manifest -> Result.map (fun m -> Manifest m) (Manifest.decode bytes)

let pp fmt = function
  | Cert c -> Cert.pp fmt c
  | Roa r -> Roa.pp fmt r
  | Crl c -> Crl.pp fmt c
  | Manifest m -> Manifest.pp fmt m
