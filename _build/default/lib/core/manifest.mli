(** Manifests (RFC 6486 profile, simplified): a signed listing of every file
    at a publication point with its SHA-256 hash.

    Manifests let a relying party detect deletions and corruptions — which
    is what makes the paper's "stealthy" manipulations a matter of policy
    rather than detectability: the RFCs do not say what to do when the
    manifest check fails (Section 4's "difficult tradeoff"). *)

open Rpki_crypto

type entry = { filename : string; hash : string (** SHA-256, raw bytes *) }

type t = {
  manifest_number : int;
  this_update : Rtime.t;
  next_update : Rtime.t;
  entries : entry list; (** sorted by filename *)
  ee : Cert.t;
  signature : string;
}

val content_der :
  manifest_number:int ->
  this_update:Rtime.t ->
  next_update:Rtime.t ->
  entries:entry list ->
  Rpki_asn.Der.t

val content_bytes : t -> string
val to_der : t -> Rpki_asn.Der.t
val encode : t -> string
val of_der : Rpki_asn.Der.t -> t
val decode : string -> (t, string) result

val entry_of_file : filename:string -> contents:string -> entry

val issue :
  ca_key:Rsa.private_ ->
  ca_subject:string ->
  serial:int ->
  rng:Rpki_util.Rng.t ->
  ?ee_bits:int ->
  ?ee_key:Rsa.keypair ->
  manifest_number:int ->
  this_update:Rtime.t ->
  next_update:Rtime.t ->
  files:(string * string) list ->
  unit ->
  t
(** Issue a manifest over (filename, bytes) pairs; EE-signed like a ROA. *)

val find : t -> string -> entry option
val pp : Format.formatter -> t -> unit
