(** Resource certificates (RFC 6487 profile, simplified).

    An RC binds a subject's public key to a resource bundle and carries the
    URIs that stitch the distributed RPKI together: where the subject
    publishes (SIA), where the issuer's certificate lives (AIA) and where
    the issuer's CRL lives (CRL-DP).  EE certificates are the same structure
    with [is_ca = false]. *)

open Rpki_crypto

type t = {
  serial : int;
  issuer : string;              (** issuer's subject name *)
  subject : string;
  public_key : Rsa.public;
  resources : Resources.t;
  not_before : Rtime.t;
  not_after : Rtime.t;
  is_ca : bool;
  crl_uri : string option;      (** where the issuer publishes revocations *)
  aia_uri : string option;      (** where this certificate's issuer cert lives *)
  repo_uri : string option;     (** SIA: the subject's publication point *)
  manifest_uri : string option; (** SIA: the subject's manifest filename *)
  signature : string;           (** issuer's signature over the TBS bytes *)
}

val tbs_der : t -> Rpki_asn.Der.t
(** The to-be-signed structure (everything but the signature). *)

val tbs_bytes : t -> string
(** DER bytes the signature is computed over. *)

val to_der : t -> Rpki_asn.Der.t
val encode : t -> string

val of_der : Rpki_asn.Der.t -> t
(** Raises {!Rpki_asn.Der.Decode_error} on structural mismatch. *)

val decode : string -> (t, string) result

val issue :
  issuer_key:Rsa.private_ ->
  serial:int ->
  issuer:string ->
  subject:string ->
  public_key:Rsa.public ->
  resources:Resources.t ->
  not_before:Rtime.t ->
  not_after:Rtime.t ->
  is_ca:bool ->
  ?crl_uri:string ->
  ?aia_uri:string ->
  ?repo_uri:string ->
  ?manifest_uri:string ->
  unit ->
  t
(** Sign a certificate with the issuer's private key.  All issuance in the
    system funnels through here. *)

val self_signed :
  key:Rsa.keypair ->
  subject:string ->
  resources:Resources.t ->
  not_before:Rtime.t ->
  not_after:Rtime.t ->
  ?repo_uri:string ->
  ?manifest_uri:string ->
  unit ->
  t
(** A trust-anchor certificate (serial 1, issuer = subject). *)

val verify_signature : issuer_key:Rsa.public -> t -> bool

val key_id : t -> string
(** The subject key identifier (SHA-256 of the public key). *)

val same_contents : t -> t -> bool
(** Identity modulo the signature: lets the monitor tell "reissued with
    different contents" from "re-signed". *)

val pp : Format.formatter -> t -> unit
