lib/core/obj.mli: Cert Crl Format Manifest Roa
