lib/core/roa.mli: Cert Format Resources Rpki_asn Rpki_crypto Rpki_ip Rpki_util Rsa Rtime V4 V6
