lib/core/roa.ml: Cert Der Format List Option Printf Resources Rpki_asn Rpki_crypto Rpki_ip Rsa String V4 V6
