lib/core/origin_validation.ml: Format List Route Rpki_ip V4 Vrp
