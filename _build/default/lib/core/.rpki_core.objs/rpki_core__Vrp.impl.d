lib/core/vrp.ml: Format Int List Option Printf Roa Rpki_ip V4
