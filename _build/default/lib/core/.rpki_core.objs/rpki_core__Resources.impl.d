lib/core/resources.ml: As_res Der Format Int64 List Nat Rpki_asn Rpki_bignum Rpki_ip String V4 V6
