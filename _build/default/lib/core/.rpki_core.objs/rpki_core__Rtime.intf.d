lib/core/rtime.mli: Format
