lib/core/crl.ml: Der Format Int List Rpki_asn Rpki_crypto Rsa Rtime String
