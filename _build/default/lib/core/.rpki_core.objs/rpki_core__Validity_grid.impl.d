lib/core/validity_grid.ml: List Origin_validation Printf Route Rpki_ip V4 Vrp
