lib/core/manifest.mli: Cert Format Rpki_asn Rpki_crypto Rpki_util Rsa Rtime
