lib/core/rtime.ml: Format Int Printf Stdlib
