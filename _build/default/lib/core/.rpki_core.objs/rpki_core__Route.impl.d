lib/core/route.ml: Format Int Printf Rpki_ip V4
