lib/core/crl.mli: Format Rpki_asn Rpki_crypto Rsa Rtime
