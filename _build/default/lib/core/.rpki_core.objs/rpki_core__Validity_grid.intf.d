lib/core/validity_grid.mli: Origin_validation Route Rpki_ip V4
