lib/core/route.mli: Format Rpki_ip V4
