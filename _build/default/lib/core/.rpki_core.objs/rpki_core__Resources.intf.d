lib/core/resources.mli: Addr As_res Format Rpki_asn Rpki_bignum Rpki_ip V4 V6
