lib/core/manifest.ml: Cert Der Format List Printf Resources Rpki_asn Rpki_crypto Rsa Rtime Sha256 String
