lib/core/cert.mli: Format Resources Rpki_asn Rpki_crypto Rsa Rtime
