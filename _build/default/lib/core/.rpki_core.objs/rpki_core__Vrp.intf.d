lib/core/vrp.mli: Format Roa Rpki_ip V4
