lib/core/obj.ml: Cert Crl Manifest Printf Result Roa String
