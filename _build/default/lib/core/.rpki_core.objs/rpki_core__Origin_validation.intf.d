lib/core/origin_validation.mli: Format Route Rpki_ip V4 Vrp
