lib/core/validation.ml: Cert Crl Format List Manifest Printf Resources Result Roa Rpki_crypto Rpki_ip Rsa Rtime Vrp
