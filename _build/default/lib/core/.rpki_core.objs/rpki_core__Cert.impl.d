lib/core/cert.ml: Der Format Resources Rpki_asn Rpki_crypto Rsa Rtime
