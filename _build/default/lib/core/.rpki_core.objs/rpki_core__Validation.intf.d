lib/core/validation.mli: Cert Crl Format Manifest Resources Roa Rpki_crypto Rsa Rtime Vrp
