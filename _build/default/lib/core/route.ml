(* A BGP route, for the purposes of origin validation: an IP prefix and the
   AS that originates it (exactly the paper's definition in Section 2). *)

open Rpki_ip

type t = { prefix : V4.Prefix.t; origin : int }

let make prefix origin = { prefix; origin }

let compare a b =
  let c = V4.Prefix.compare a.prefix b.prefix in
  if c <> 0 then c else Int.compare a.origin b.origin

let equal a b = compare a b = 0

let to_string t = Printf.sprintf "(%s, AS%d)" (V4.Prefix.to_string t.prefix) t.origin
let pp fmt t = Format.pp_print_string fmt (to_string t)
