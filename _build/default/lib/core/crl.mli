(** Certificate revocation lists (RFC 5280 profile, simplified), signed
    directly by the issuing CA.

    Side Effect 1 of the paper: revocation doubles as unilateral reclamation
    of address space.  Side Effect 2: deletion from the repository achieves
    the same end {e without} leaving a CRL trace — the monitor library keys
    on exactly this distinction. *)

open Rpki_crypto

type t = {
  issuer : string;
  this_update : Rtime.t;
  next_update : Rtime.t;
  revoked_serials : int list; (** sorted ascending, deduplicated *)
  signature : string;
}

val tbs_der : t -> Rpki_asn.Der.t
val tbs_bytes : t -> string
val to_der : t -> Rpki_asn.Der.t
val encode : t -> string
val of_der : Rpki_asn.Der.t -> t
val decode : string -> (t, string) result

val issue :
  ca_key:Rsa.private_ ->
  issuer:string ->
  this_update:Rtime.t ->
  next_update:Rtime.t ->
  revoked_serials:int list ->
  t

val revokes : t -> int -> bool
val pp : Format.formatter -> t -> unit
