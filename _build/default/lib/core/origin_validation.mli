(** Route-origin validation (RFC 6811 / RFC 6483) — the semantics at the
    heart of the paper's Section 4.

    Given the relying party's validated ROA payloads, each route is:
    - [Valid] — some VRP matches (same origin, covering prefix, length
      within maxLength);
    - [Unknown] — no VRP even covers the prefix (the RFC's NotFound);
    - [Invalid] — some VRP covers the prefix but none matches.

    It is the [Invalid]-versus-[Unknown] distinction that creates Side
    Effects 5 and 6. *)

open Rpki_ip

type state = Valid | Invalid | Unknown

val state_to_string : state -> string
val pp_state : Format.formatter -> state -> unit
val equal_state : state -> state -> bool

type index
(** A prefix-trie index over a VRP set. *)

val empty_index : index
val build : Vrp.t list -> index
val vrp_count : index -> int
val vrps : index -> Vrp.t list

val covering_vrps : index -> V4.Prefix.t -> Vrp.t list
(** All VRPs whose prefix covers the given prefix. *)

val matches : Vrp.t -> Route.t -> bool
(** The RFC 6811 match predicate (AS0 VRPs never match, per RFC 6483). *)

val classify : index -> Route.t -> state

val explain : index -> Route.t -> state * Vrp.t list * Vrp.t list
(** [(state, matching, covering)] — evidence for the verdict. *)

(* The trie is exposed for the validity-grid pruning walk. *)
val trie_of : index -> Vrp.t list V4.Trie.t
