(* Validated ROA Payloads: the (prefix, max length, origin AS) triples that
   survive validation and drive route-origin validation (RFC 6811 calls the
   set of these the "VRP set"). *)

open Rpki_ip

type t = { prefix : V4.Prefix.t; max_len : int; asn : int }

let make ?max_len prefix asn =
  let max_len = Option.value max_len ~default:(V4.Prefix.len prefix) in
  if max_len < V4.Prefix.len prefix || max_len > 32 then invalid_arg "Vrp.make: bad max_len";
  { prefix; max_len; asn }

let compare a b =
  let c = V4.Prefix.compare a.prefix b.prefix in
  if c <> 0 then c
  else begin
    let c = Int.compare a.max_len b.max_len in
    if c <> 0 then c else Int.compare a.asn b.asn
  end

let equal a b = compare a b = 0

let of_roa (roa : Roa.t) =
  List.map (fun (e : Roa.v4_entry) -> { prefix = e.Roa.prefix; max_len = e.Roa.max_len; asn = roa.Roa.asid }) roa.Roa.v4_entries

let to_string t =
  if t.max_len = V4.Prefix.len t.prefix then
    Printf.sprintf "(%s, AS%d)" (V4.Prefix.to_string t.prefix) t.asn
  else Printf.sprintf "(%s-%d, AS%d)" (V4.Prefix.to_string t.prefix) t.max_len t.asn

let pp fmt t = Format.pp_print_string fmt (to_string t)
