(* Simulation time.

   The RPKI cares about time only through validity windows (notBefore /
   notAfter, thisUpdate / nextUpdate).  We model time as abstract integer
   ticks — one tick is "an hour" in the experiment narratives, but nothing
   depends on the unit. *)

type t = int

let epoch : t = 0
let add t n : t = t + n
let diff a b = a - b
let compare = Int.compare
let ( <= ) (a : t) (b : t) = Stdlib.( <= ) a b
let ( < ) (a : t) (b : t) = Stdlib.( < ) a b
let max_time : t = max_int

(* Common validity horizons used by issuers. *)
let year = 24 * 365
let month = 24 * 30
let day = 24

let pp fmt t = Format.fprintf fmt "t+%d" t
let to_string t = Printf.sprintf "t+%d" t
