(** A BGP route for the purposes of origin validation: an IP prefix and the
    AS that originates it (the paper's Section 2 definition). *)

open Rpki_ip

type t = { prefix : V4.Prefix.t; origin : int }

val make : V4.Prefix.t -> int -> t
val compare : t -> t -> int
val equal : t -> t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit
