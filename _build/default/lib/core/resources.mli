(** The resource bundle carried by a certificate: IPv4 + IPv6 address space
    and AS numbers, per RFC 3779.

    The containment partial order on these bundles is what the RPKI's
    "principle of least privilege" enforces — and what the whacking attacks
    manipulate. *)

open Rpki_ip

type t = {
  v4 : V4.Set.t;
  v6 : V6.Set.t;
  asns : As_res.Set.t;
}

val empty : t
val make : ?v4:V4.Set.t -> ?v6:V6.Set.t -> ?asns:As_res.Set.t -> unit -> t

val of_v4_strings : string list -> t
(** Build an IPv4-only bundle from strings like ["63.160.0.0/12"] or
    ["63.174.16.0-63.174.23.255"]. *)

val is_empty : t -> bool
val subset : t -> t -> bool
val equal : t -> t -> bool
val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val overlaps : t -> t -> bool

val overclaim : claimed:t -> allowed:t -> t
(** The part of [claimed] exceeding [allowed]; empty iff contained. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

(** {2 DER encoding} *)

val to_der : t -> Rpki_asn.Der.t
val of_der : Rpki_asn.Der.t -> t

val nat_of_v6 : Addr.V6.t -> Rpki_bignum.Nat.t
(** 128-bit address as a natural, for INTEGER encoding. *)

val v6_of_nat : Rpki_bignum.Nat.t -> Addr.V6.t
