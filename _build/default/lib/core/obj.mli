(** The sum of object kinds stored at a publication point, with RFC 6481
    filename conventions (.cer / .roa / .crl / .mft). *)

type t =
  | Cert of Cert.t
  | Roa of Roa.t
  | Crl of Crl.t
  | Manifest of Manifest.t

val encode : t -> string

val kind_of_filename : string -> [ `Cert | `Roa | `Crl | `Manifest ] option

val decode : filename:string -> string -> (t, string) result
(** Dispatch on the filename extension, then parse. *)

val pp : Format.formatter -> t -> unit
