(* Manifests (RFC 6486 profile, simplified).

   A manifest lists every file at a publication point together with its
   SHA-256 hash, so a relying party can detect deletions and corruptions —
   which is precisely what makes the paper's "stealthy" manipulations a
   matter of *policy* rather than detectability: the RFCs do not say what to
   do when the manifest check fails (Section 4, "a difficult tradeoff"). *)

open Rpki_crypto
open Rpki_asn

type entry = { filename : string; hash : string (* SHA-256, raw bytes *) }

type t = {
  manifest_number : int;
  this_update : Rtime.t;
  next_update : Rtime.t;
  entries : entry list; (* sorted by filename *)
  ee : Cert.t;
  signature : string;
}

let content_der ~manifest_number ~this_update ~next_update ~entries =
  Der.Sequence
    [ Der.int_ manifest_number;
      Der.int_ this_update;
      Der.int_ next_update;
      Der.Sequence
        (List.map
           (fun e -> Der.Sequence [ Der.Utf8 e.filename; Der.Octet_string e.hash ])
           entries) ]

let content_bytes t =
  Der.encode
    (content_der ~manifest_number:t.manifest_number ~this_update:t.this_update
       ~next_update:t.next_update ~entries:t.entries)

let to_der t =
  Der.Sequence
    [ content_der ~manifest_number:t.manifest_number ~this_update:t.this_update
        ~next_update:t.next_update ~entries:t.entries;
      Cert.to_der t.ee;
      Der.Bit_string t.signature ]

let encode t = Der.encode (to_der t)

let of_der = function
  | Der.Sequence [ Der.Sequence [ mn; tu; nu; Der.Sequence files ]; ee; Der.Bit_string signature ] ->
    let dec = function
      | Der.Sequence [ Der.Utf8 filename; Der.Octet_string hash ] -> { filename; hash }
      | _ -> Der.decode_error "bad manifest entry"
    in
    { manifest_number = Der.to_int_exn mn;
      this_update = Der.to_int_exn tu;
      next_update = Der.to_int_exn nu;
      entries = List.map dec files;
      ee = Cert.of_der ee;
      signature }
  | _ -> Der.decode_error "bad manifest structure"

let decode s =
  match Der.decode s with
  | Error e -> Error e
  | Ok d -> ( try Ok (of_der d) with Der.Decode_error m -> Error m)

let entry_of_file ~filename ~contents = { filename; hash = Sha256.digest contents }

(* Issue a manifest over a list of (filename, file bytes).  Like a ROA, the
   manifest is signed by a fresh EE certificate; the EE carries the CA's
   resources trimmed to empty since a manifest speaks for no address space. *)
let issue ~ca_key ~ca_subject ~serial ~rng ?(ee_bits = Rsa.default_bits) ?ee_key
    ~manifest_number ~this_update ~next_update ~files () =
  let entries =
    List.sort
      (fun a b -> String.compare a.filename b.filename)
      (List.map (fun (filename, contents) -> entry_of_file ~filename ~contents) files)
  in
  let ee_key = match ee_key with Some k -> k | None -> Rsa.generate ~bits:ee_bits rng in
  let ee =
    Cert.issue ~issuer_key:ca_key ~serial ~issuer:ca_subject
      ~subject:(Printf.sprintf "%s-mft-ee-%d" ca_subject serial)
      ~public_key:ee_key.Rsa.public ~resources:Resources.empty ~not_before:this_update
      ~not_after:next_update ~is_ca:false ()
  in
  let content = Der.encode (content_der ~manifest_number ~this_update ~next_update ~entries) in
  { manifest_number; this_update; next_update; entries; ee;
    signature = Rsa.sign ~key:ee_key.Rsa.private_ content }

let find t filename = List.find_opt (fun e -> e.filename = filename) t.entries

let pp fmt t =
  Format.fprintf fmt "MFT #%d [%a..%a] %d files" t.manifest_number Rtime.pp t.this_update Rtime.pp
    t.next_update (List.length t.entries)
