(** Route Origin Authorizations (RFC 6482 profile, simplified).

    A ROA authorizes one AS to originate a list of prefixes, each with an
    optional maximum length.  As in the real RPKI, the content is signed by
    an end-entity certificate which the issuing CA signs in turn; the EE's
    resources must cover the ROA's prefixes. *)

open Rpki_ip
open Rpki_crypto

type v4_entry = { prefix : V4.Prefix.t; max_len : int }
type v6_entry = { prefix6 : V6.Prefix.t; max_len6 : int }

type t = {
  asid : int;
  v4_entries : v4_entry list;
  v6_entries : v6_entry list;
  ee : Cert.t;         (** the one-time-use end-entity certificate *)
  signature : string;  (** EE-key signature over the content bytes *)
}

val entry : ?max_len:int -> V4.Prefix.t -> v4_entry
(** [max_len] defaults to the prefix length. Raises [Invalid_argument] when
    out of [len..32]. *)

val entry6 : ?max_len:int -> V6.Prefix.t -> v6_entry

val resources : t -> Resources.t
(** The address space the ROA speaks for — what a whacking manipulator must
    carve out of the target's certification path. *)

val content_der :
  asid:int -> v4_entries:v4_entry list -> v6_entries:v6_entry list -> Rpki_asn.Der.t

val content_bytes : t -> string
(** The bytes the EE signature covers. *)

val to_der : t -> Rpki_asn.Der.t
val encode : t -> string
val of_der : Rpki_asn.Der.t -> t
val decode : string -> (t, string) result

val issue :
  ca_key:Rsa.private_ ->
  ca_subject:string ->
  serial:int ->
  rng:Rpki_util.Rng.t ->
  ?ee_bits:int ->
  ?ee_key:Rsa.keypair ->
  asid:int ->
  v4_entries:v4_entry list ->
  ?v6_entries:v6_entry list ->
  not_before:Rtime.t ->
  not_after:Rtime.t ->
  ?crl_uri:string ->
  ?aia_uri:string ->
  unit ->
  t
(** Issue a ROA: mint an EE keypair (or reuse [ee_key]), certify it for
    exactly the ROA's address space, and sign the content with it. *)

val pp_v4_entry : Format.formatter -> v4_entry -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string
