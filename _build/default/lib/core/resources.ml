(* The resource bundle carried by a certificate: IPv4 + IPv6 address space
   and AS numbers, per RFC 3779.  The containment partial order on these
   bundles is what the RPKI's "principle of least privilege" enforces — and
   what the whacking attacks manipulate. *)

open Rpki_ip

type t = {
  v4 : V4.Set.t;
  v6 : V6.Set.t;
  asns : As_res.Set.t;
}

let empty = { v4 = V4.Set.empty; v6 = V6.Set.empty; asns = As_res.Set.empty }

let make ?(v4 = V4.Set.empty) ?(v6 = V6.Set.empty) ?(asns = As_res.Set.empty) () = { v4; v6; asns }

let of_v4_strings strs = { empty with v4 = V4.set_of_strings strs }

let is_empty t = V4.Set.is_empty t.v4 && V6.Set.is_empty t.v6 && As_res.Set.is_empty t.asns

let subset a b =
  V4.Set.subset a.v4 b.v4 && V6.Set.subset a.v6 b.v6 && As_res.Set.subset a.asns b.asns

let equal a b = V4.Set.equal a.v4 b.v4 && V6.Set.equal a.v6 b.v6 && As_res.Set.equal a.asns b.asns

let union a b =
  { v4 = V4.Set.union a.v4 b.v4; v6 = V6.Set.union a.v6 b.v6; asns = As_res.Set.union a.asns b.asns }

let inter a b =
  { v4 = V4.Set.inter a.v4 b.v4; v6 = V6.Set.inter a.v6 b.v6; asns = As_res.Set.inter a.asns b.asns }

let diff a b =
  { v4 = V4.Set.diff a.v4 b.v4; v6 = V6.Set.diff a.v6 b.v6; asns = As_res.Set.diff a.asns b.asns }

let overlaps a b = not (is_empty (inter a b))

(* The part of [a] that exceeds [b]; empty iff [subset a b]. *)
let overclaim ~claimed ~allowed = diff claimed allowed

let to_string t =
  let parts = ref [] in
  if not (As_res.Set.is_empty t.asns) then parts := ("AS " ^ As_res.Set.to_string t.asns) :: !parts;
  if not (V6.Set.is_empty t.v6) then parts := V6.Set.to_string t.v6 :: !parts;
  if not (V4.Set.is_empty t.v4) then parts := V4.Set.to_string t.v4 :: !parts;
  if !parts = [] then "(empty)" else String.concat "; " !parts

let pp fmt t = Format.pp_print_string fmt (to_string t)

(* --- DER encoding --- *)

open Rpki_asn

let der_of_v4_range (r : V4.Range.t) =
  Der.Sequence [ Der.int_ (V4.Range.lo r); Der.int_ (V4.Range.hi r) ]

let v4_range_of_der d =
  match d with
  | Der.Sequence [ lo; hi ] -> V4.Range.make (Der.to_int_exn lo) (Der.to_int_exn hi)
  | _ -> Der.decode_error "bad v4 range"

let nat_of_v6 ((h, l) : Rpki_ip.Addr.V6.t) =
  let open Rpki_bignum in
  let of64 x =
    Nat.add
      (Nat.shift_left (Nat.of_int (Int64.to_int (Int64.shift_right_logical x 32))) 32)
      (Nat.of_int (Int64.to_int (Int64.logand x 0xFFFFFFFFL)))
  in
  Nat.add (Nat.shift_left (of64 h) 64) (of64 l)

let v6_of_nat n =
  let open Rpki_bignum in
  let to64 n =
    let hi = Nat.to_int_exn (Nat.shift_right n 32) in
    let lo = Nat.to_int_exn (Nat.rem n (Nat.shift_left Nat.one 32)) in
    Int64.logor (Int64.shift_left (Int64.of_int hi) 32) (Int64.of_int lo)
  in
  let low64 = Nat.rem n (Nat.shift_left Nat.one 64) in
  let high64 = Nat.shift_right n 64 in
  (to64 high64, to64 low64)

let der_of_v6_range (r : V6.Range.t) =
  Der.Sequence [ Der.Integer (nat_of_v6 (V6.Range.lo r)); Der.Integer (nat_of_v6 (V6.Range.hi r)) ]

let v6_range_of_der d =
  match d with
  | Der.Sequence [ Der.Integer lo; Der.Integer hi ] -> V6.Range.make (v6_of_nat lo) (v6_of_nat hi)
  | _ -> Der.decode_error "bad v6 range"

let der_of_as_range (r : As_res.Range.t) =
  Der.Sequence [ Der.int_ (As_res.Range.lo r); Der.int_ (As_res.Range.hi r) ]

let as_range_of_der d =
  match d with
  | Der.Sequence [ lo; hi ] -> As_res.Range.make (Der.to_int_exn lo) (Der.to_int_exn hi)
  | _ -> Der.decode_error "bad AS range"

let to_der t =
  Der.Sequence
    [ Der.Context (1, List.map der_of_v4_range (V4.Set.to_ranges t.v4));
      Der.Context (2, List.map der_of_v6_range (V6.Set.to_ranges t.v6));
      Der.Context (3, List.map der_of_as_range (As_res.Set.to_ranges t.asns)) ]

let of_der d =
  match d with
  | Der.Sequence [ Der.Context (1, v4s); Der.Context (2, v6s); Der.Context (3, ass) ] ->
    { v4 = V4.Set.of_ranges (List.map v4_range_of_der v4s);
      v6 = V6.Set.of_ranges (List.map v6_range_of_der v6s);
      asns = As_res.Set.of_ranges (List.map as_range_of_der ass) }
  | _ -> Der.decode_error "bad resources"
