(* Hexadecimal encoding helpers shared by the crypto and ASN.1 layers. *)

let of_string s =
  let buf = Buffer.create (2 * String.length s) in
  String.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents buf

let digit c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> invalid_arg "Hex.digit"

let to_string h =
  let n = String.length h in
  if n mod 2 <> 0 then invalid_arg "Hex.to_string: odd length";
  String.init (n / 2) (fun i -> Char.chr ((digit h.[2 * i] lsl 4) lor digit h.[(2 * i) + 1]))

(* Short fingerprint used when printing keys and hashes in tables. *)
let abbrev ?(len = 8) s =
  let h = of_string s in
  if String.length h <= len then h else String.sub h 0 len
