(** Hexadecimal encoding helpers. *)

val of_string : string -> string
(** [of_string s] is the lowercase hex rendering of the raw bytes [s]. *)

val digit : char -> int
(** The value of one hex digit. Raises [Invalid_argument] otherwise. *)

val to_string : string -> string
(** [to_string h] decodes lowercase or uppercase hex back to raw bytes.
    Raises [Invalid_argument] on odd length or bad digits. *)

val abbrev : ?len:int -> string -> string
(** [abbrev bytes] is a short hex fingerprint (default 8 hex chars) used when
    printing keys and hashes in tables. *)
