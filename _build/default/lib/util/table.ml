(* Plain-text table rendering for the experiment harness.

   The benches must print rows that look like the paper's tables, so we keep
   a tiny column-aligned renderer here rather than pulling in a TUI
   dependency. *)

type align = Left | Right

type t = {
  headers : string list;
  aligns : align list;
  mutable rows : string list list; (* stored in reverse insertion order *)
}

let create ?aligns headers =
  let aligns =
    match aligns with
    | Some a ->
      if List.length a <> List.length headers then
        invalid_arg "Table.create: aligns/headers length mismatch";
      a
    | None -> List.map (fun _ -> Left) headers
  in
  { headers; aligns; rows = [] }

let add_row t row =
  if List.length row <> List.length t.headers then
    invalid_arg "Table.add_row: wrong arity";
  t.rows <- row :: t.rows

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    match align with
    | Left -> s ^ String.make (width - n) ' '
    | Right -> String.make (width - n) ' ' ^ s

let render t =
  let rows = List.rev t.rows in
  let all = t.headers :: rows in
  let widths =
    List.fold_left
      (fun acc row -> List.map2 (fun w cell -> max w (String.length cell)) acc row)
      (List.map (fun _ -> 0) t.headers)
      all
  in
  let line row =
    let cells =
      List.map2 (fun (a, w) cell -> pad a w cell) (List.combine t.aligns widths) row
    in
    "| " ^ String.concat " | " cells ^ " |"
  in
  let sep =
    "|" ^ String.concat "|" (List.map (fun w -> String.make (w + 2) '-') widths) ^ "|"
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (line t.headers);
  Buffer.add_char buf '\n';
  Buffer.add_string buf sep;
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (line row);
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let print t = print_string (render t)
