(** Plain-text column-aligned table rendering for the experiment harness. *)

type align = Left | Right

type t
(** A table under construction. *)

val create : ?aligns:align list -> string list -> t
(** [create headers] makes an empty table; [aligns] defaults to all [Left]
    and must match the header arity when given. *)

val add_row : t -> string list -> unit
(** Append a row. Raises [Invalid_argument] on arity mismatch. *)

val render : t -> string
(** The table as a GitHub-style markdown string. *)

val print : t -> unit
(** [print t] writes [render t] to standard output. *)
