lib/util/table.mli:
