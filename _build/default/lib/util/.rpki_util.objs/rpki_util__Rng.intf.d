lib/util/rng.mli:
