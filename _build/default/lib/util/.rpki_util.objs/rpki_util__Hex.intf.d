lib/util/hex.mli:
