(* Deterministic pseudo-random number generation.

   All randomness in the repository flows through a seeded [t] so that every
   experiment and test is reproducible bit-for-bit.  The generator is
   SplitMix64 (Steele, Lea & Flood, OOPSLA 2014): a tiny, statistically
   strong, splittable generator that needs only 64-bit arithmetic. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let of_int64 seed = { state = seed }

let copy t = { state = t.state }

let golden_gamma = 0x9E3779B97F4A7C15L

(* One SplitMix64 step: advance the state by the golden gamma and scramble. *)
let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* A fresh generator whose stream is independent of the parent's future. *)
let split t =
  let seed = next_int64 t in
  { state = seed }

(* Non-negative int uniform in [0, bound). *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let raw = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  raw mod bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let float t =
  (* 53 random bits scaled to [0, 1). *)
  let bits = Int64.to_int (Int64.shift_right_logical (next_int64 t) 11) in
  float_of_int bits /. 9007199254740992.0

(* [bits t n] returns a non-negative int with exactly the low [n] bits
   random, for 1 <= n <= 62. *)
let bits t n =
  if n < 1 || n > 62 then invalid_arg "Rng.bits: want 1..62";
  Int64.to_int (Int64.shift_right_logical (next_int64 t) (64 - n))

let byte t = bits t 8

let bytes t n =
  let b = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.set b i (Char.chr (byte t))
  done;
  Bytes.unsafe_to_string b

(* Fisher-Yates shuffle of a fresh copy of the input list. *)
let shuffle t l =
  let a = Array.of_list l in
  let n = Array.length a in
  for i = n - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a

let pick t l =
  match l with
  | [] -> invalid_arg "Rng.pick: empty list"
  | _ -> List.nth l (int t (List.length l))
