(** Deterministic pseudo-random number generation (SplitMix64).

    Every source of randomness in the repository flows through a seeded [t],
    so experiments and tests are reproducible bit-for-bit. *)

type t
(** A mutable generator state. *)

val create : int -> t
(** [create seed] makes a generator from an integer seed. *)

val of_int64 : int64 -> t
(** [of_int64 seed] makes a generator from a full 64-bit seed. *)

val copy : t -> t
(** [copy t] is an independent generator starting at [t]'s current state. *)

val next_int64 : t -> int64
(** The next raw 64-bit output. *)

val split : t -> t
(** [split t] derives a child generator whose stream is independent of the
    parent's future outputs. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Raises [Invalid_argument] when
    [bound <= 0]. *)

val bool : t -> bool
(** A uniform boolean. *)

val float : t -> float
(** Uniform in [\[0, 1)], with 53 bits of precision. *)

val bits : t -> int -> int
(** [bits t n] is a non-negative int with exactly the low [n] bits random,
    for [1 <= n <= 62]. *)

val byte : t -> int
(** A uniform byte in [\[0, 255\]]. *)

val bytes : t -> int -> string
(** [bytes t n] is a string of [n] uniform bytes. *)

val shuffle : t -> 'a list -> 'a list
(** Fisher-Yates shuffle of a fresh copy of the list. *)

val pick : t -> 'a list -> 'a
(** A uniform element. Raises [Invalid_argument] on the empty list. *)
