(* Synthetic Internet-like AS topologies.

   Real AS-relationship data (CAIDA) is not available offline, so we
   generate hierarchical topologies with the familiar structure: a clique of
   tier-1 providers peering with each other, tier-2 ISPs multihomed to
   tier-1s and peering laterally, and stub ASes homed to tier-2s.  The
   experiments only need shape (who wins a hijack, how far routes spread),
   which this preserves. *)

type spec = {
  tier1 : int;            (* size of the top clique *)
  tier2 : int;
  stubs : int;
  providers_per_tier2 : int;
  providers_per_stub : int;
  peer_fraction : float;  (* probability of lateral tier-2 peering *)
  seed : int;
}

let default_spec =
  { tier1 = 4; tier2 = 20; stubs = 100; providers_per_tier2 = 2; providers_per_stub = 2;
    peer_fraction = 0.1; seed = 7 }

type generated = {
  topo : Topology.t;
  tier1_asns : int list;
  tier2_asns : int list;
  stub_asns : int list;
}

let generate (spec : spec) =
  let rng = Rpki_util.Rng.create spec.seed in
  let topo = Topology.create () in
  let tier1_asns = List.init spec.tier1 (fun i -> 100 + i) in
  let tier2_asns = List.init spec.tier2 (fun i -> 1000 + i) in
  let stub_asns = List.init spec.stubs (fun i -> 10000 + i) in
  List.iter (Topology.add_as topo) tier1_asns;
  (* tier-1 full mesh of peerings *)
  List.iteri
    (fun i a -> List.iteri (fun j b -> if i < j then Topology.peer topo a b) tier1_asns)
    tier1_asns;
  (* tier-2: multihome to distinct tier-1s *)
  List.iter
    (fun t2 ->
      let providers =
        Rpki_util.Rng.shuffle rng tier1_asns
        |> List.filteri (fun i _ -> i < spec.providers_per_tier2)
      in
      List.iter (fun p -> Topology.link topo ~provider:p ~customer:t2) providers)
    tier2_asns;
  (* lateral tier-2 peerings *)
  List.iteri
    (fun i a ->
      List.iteri
        (fun j b ->
          if i < j && Rpki_util.Rng.float rng < spec.peer_fraction then Topology.peer topo a b)
        tier2_asns)
    tier2_asns;
  (* stubs: homed to tier-2s *)
  List.iter
    (fun s ->
      let providers =
        Rpki_util.Rng.shuffle rng tier2_asns
        |> List.filteri (fun i _ -> i < spec.providers_per_stub)
      in
      List.iter (fun p -> Topology.link topo ~provider:p ~customer:s) providers)
    stub_asns;
  { topo; tier1_asns; tier2_asns; stub_asns }

(* The small fixed topology used by the Table 6 and Section 6 narratives:

              T1a ===== T1b          (tier-1 peers)
             /   \      /  \
          Mid1   Mid2 Mid3  Attacker(AS 666)
           |       \   /
         Victim    Source

   Victim originates the protected prefix; Source is a typical relying
   party; Attacker is multihomed high in the hierarchy, the hard case. *)
type small = {
  small_topo : Topology.t;
  t1a : int; t1b : int;
  mid1 : int; mid2 : int; mid3 : int;
  victim : int;
  source : int;
  attacker : int;
}

let small_scenario () =
  let topo = Topology.create () in
  let t1a = 100 and t1b = 101 in
  let mid1 = 1001 and mid2 = 1002 and mid3 = 1003 in
  let victim = 17054 and source = 7018 and attacker = 666 in
  Topology.peer topo t1a t1b;
  Topology.link topo ~provider:t1a ~customer:mid1;
  Topology.link topo ~provider:t1a ~customer:mid2;
  Topology.link topo ~provider:t1b ~customer:mid3;
  Topology.link topo ~provider:t1b ~customer:attacker;
  Topology.link topo ~provider:mid1 ~customer:victim;
  Topology.link topo ~provider:mid2 ~customer:source;
  Topology.link topo ~provider:mid3 ~customer:source;
  { small_topo = topo; t1a; t1b; mid1; mid2; mid3; victim; source; attacker }
