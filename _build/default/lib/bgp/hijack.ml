(* Hijack scenario construction (the attacks the RPKI is designed to stop,
   Section 1 of the paper). *)

open Rpki_ip

type kind =
  | Prefix_hijack                          (* announce the victim's exact prefix *)
  | Subprefix_hijack of V4.Prefix.t        (* announce this subprefix of the victim's *)

(* The subprefix of [victim_prefix] at length [len] containing [addr] — the
   part of the victim's space the hijacker actually wants. *)
let subprefix_containing ~victim_prefix ~addr ~len =
  if len <= V4.Prefix.len victim_prefix || len > 32 then
    invalid_arg "Hijack.subprefix_containing: length must be strictly longer";
  if not (V4.Prefix.contains_addr victim_prefix addr) then
    invalid_arg "Hijack.subprefix_containing: address outside victim prefix";
  V4.Prefix.make addr len

(* The announcements present during an attack: the victim's legitimate
   origination plus the attacker's. *)
let announcements ~victim_prefix ~victim_as ~attacker_as kind : Propagation.announcement list =
  let legit = { Propagation.prefix = victim_prefix; origin = victim_as } in
  match kind with
  | Prefix_hijack -> [ legit; { Propagation.prefix = victim_prefix; origin = attacker_as } ]
  | Subprefix_hijack sub ->
    if not (V4.Prefix.covers victim_prefix sub) || V4.Prefix.equal victim_prefix sub then
      invalid_arg "Hijack.announcements: not a strict subprefix of the victim's";
    [ legit; { Propagation.prefix = sub; origin = attacker_as } ]

let kind_to_string = function
  | Prefix_hijack -> "prefix hijack"
  | Subprefix_hijack sub -> Printf.sprintf "subprefix hijack (%s)" (V4.Prefix.to_string sub)
