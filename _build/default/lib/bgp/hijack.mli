(** Hijack scenario construction — the attacks the RPKI is designed to stop
    (the paper's Section 1). *)

open Rpki_ip

type kind =
  | Prefix_hijack                   (** announce the victim's exact prefix *)
  | Subprefix_hijack of V4.Prefix.t (** announce this subprefix of the victim's *)

val subprefix_containing :
  victim_prefix:V4.Prefix.t -> addr:Addr.V4.t -> len:int -> V4.Prefix.t
(** The length-[len] subprefix of the victim's prefix containing [addr] —
    the part of the victim's space the hijacker actually wants.  Raises
    [Invalid_argument] when [len] is not strictly longer or [addr] is
    outside. *)

val announcements :
  victim_prefix:V4.Prefix.t ->
  victim_as:int ->
  attacker_as:int ->
  kind ->
  Propagation.announcement list
(** The announcements present during the attack: the victim's legitimate
    origination plus the attacker's. *)

val kind_to_string : kind -> string
