(* AS-level topology with Gao-Rexford business relationships.

   Customer-provider links form a DAG (enforced at insertion); peering links
   are symmetric.  This is the standard model used by the BGP security
   literature the paper builds on (e.g. Goldberg et al., SIGCOMM'10). *)

type rel = Customer | Provider | Peer

type t = {
  mutable asns : int list;
  providers : (int, int list) Hashtbl.t; (* asn -> its providers *)
  customers : (int, int list) Hashtbl.t; (* asn -> its customers *)
  peers : (int, int list) Hashtbl.t;     (* asn -> its peers *)
}

let create () =
  { asns = []; providers = Hashtbl.create 64; customers = Hashtbl.create 64;
    peers = Hashtbl.create 64 }

let mem t asn = List.mem asn t.asns

let add_as t asn = if not (mem t asn) then t.asns <- asn :: t.asns

let get tbl asn = Option.value (Hashtbl.find_opt tbl asn) ~default:[]

let providers t asn = get t.providers asn
let customers t asn = get t.customers asn
let peers t asn = get t.peers asn

let asns t = List.sort Int.compare t.asns

(* True when [ancestor] is reachable from [asn] by walking provider links —
   used to reject provider cycles. *)
let rec reaches_via_providers t ~from ~target =
  from = target
  || List.exists (fun p -> reaches_via_providers t ~from:p ~target) (providers t from)

let link t ~provider ~customer =
  if provider = customer then invalid_arg "Topology.link: self link";
  if reaches_via_providers t ~from:provider ~target:customer then
    invalid_arg
      (Printf.sprintf "Topology.link: AS%d->AS%d would create a provider cycle" provider customer);
  add_as t provider;
  add_as t customer;
  if not (List.mem provider (providers t customer)) then begin
    Hashtbl.replace t.providers customer (provider :: providers t customer);
    Hashtbl.replace t.customers provider (customer :: customers t provider)
  end

let peer t a b =
  if a = b then invalid_arg "Topology.peer: self peering";
  add_as t a;
  add_as t b;
  if not (List.mem b (peers t a)) then begin
    Hashtbl.replace t.peers a (b :: peers t a);
    Hashtbl.replace t.peers b (a :: peers t b)
  end

(* Neighbours with the relationship *of the neighbour to [asn]*:
   (n, Customer) means n is a customer of asn. *)
let neighbours t asn =
  List.map (fun n -> (n, Customer)) (customers t asn)
  @ List.map (fun n -> (n, Peer)) (peers t asn)
  @ List.map (fun n -> (n, Provider)) (providers t asn)

let rel_to_string = function Customer -> "customer" | Provider -> "provider" | Peer -> "peer"
