lib/bgp/topo_gen.ml: List Rpki_util Topology
