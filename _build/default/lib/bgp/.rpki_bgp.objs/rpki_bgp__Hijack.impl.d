lib/bgp/hijack.ml: Printf Propagation Rpki_ip V4
