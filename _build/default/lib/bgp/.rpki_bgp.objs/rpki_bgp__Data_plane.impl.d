lib/bgp/data_plane.ml: List Option Propagation Rpki_ip Topology V4
