lib/bgp/topology.mli:
