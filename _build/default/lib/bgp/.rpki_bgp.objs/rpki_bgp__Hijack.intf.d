lib/bgp/hijack.mli: Addr Propagation Rpki_ip V4
