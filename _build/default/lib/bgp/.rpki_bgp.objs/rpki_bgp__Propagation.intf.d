lib/bgp/propagation.mli: Hashtbl Origin_validation Policy Route Rpki_core Rpki_ip Topology
