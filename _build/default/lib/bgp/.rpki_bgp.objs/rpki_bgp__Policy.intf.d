lib/bgp/policy.mli: Format Rpki_core
