lib/bgp/data_plane.mli: Addr Origin_validation Policy Propagation Route Rpki_core Rpki_ip Topology V4
