lib/bgp/propagation.ml: Hashtbl List Origin_validation Policy Route Rpki_core Rpki_ip Topology
