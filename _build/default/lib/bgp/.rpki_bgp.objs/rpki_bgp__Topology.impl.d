lib/bgp/topology.ml: Hashtbl Int List Option Printf
