lib/bgp/policy.ml: Format Rpki_core
