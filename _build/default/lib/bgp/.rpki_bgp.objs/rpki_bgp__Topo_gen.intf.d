lib/bgp/topo_gen.mli: Topology
