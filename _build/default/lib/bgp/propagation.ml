(* BGP route propagation under Gao-Rexford export rules, with RPKI-aware
   route selection.

   For one prefix at a time: every announcement (origin) is flooded through
   the topology; each AS repeatedly selects its best route among what its
   neighbours export to it, until a fixpoint.  Validity-aware policies
   filter (drop) or rank (depref) routes by their origin-validation state.

   Export rule (Gao-Rexford): a route learned from a customer (or
   self-originated) is exported to everyone; a route learned from a peer or
   provider is exported only to customers.

   Selection order:
     1. (drop-invalid) invalid routes are not even candidates
     2. (depref-invalid) validity: valid > unknown > invalid
     3. relationship preference: customer > peer > provider
     4. shorter AS path
     5. lower next-hop ASN (determinism) *)

open Rpki_core

type announcement = {
  prefix : Rpki_ip.V4.Prefix.t;
  origin : int; (* the AS number placed in the origin position *)
}

type learned = From_customer | From_peer | From_provider | Self_originated

type entry = {
  ann : announcement;
  path : int list;     (* this AS first, origin last *)
  learned : learned;
  validity : Origin_validation.state;
}

let rel_rank = function
  | Self_originated -> 3
  | From_customer -> 2
  | From_peer -> 1
  | From_provider -> 0

(* Total preference order for routes at an AS with policy [policy]; bigger
   is better.  Returns a comparable key. *)
let preference_key ~(policy : Policy.t) (e : entry) =
  let validity_component =
    match policy with
    | Policy.Depref_invalid | Policy.Drop_invalid -> Policy.validity_rank e.validity
    | Policy.Ignore_rpki -> 0
  in
  (validity_component, rel_rank e.learned, -List.length e.path,
   -(match e.path with _ :: next :: _ -> next | _ -> 0))

let admissible ~(policy : Policy.t) (e : entry) =
  match policy with
  | Policy.Drop_invalid -> not (Origin_validation.equal_state e.validity Invalid)
  | Policy.Depref_invalid | Policy.Ignore_rpki -> true

let better ~policy a b = compare (preference_key ~policy a) (preference_key ~policy b) > 0

(* Would [holder] export its current entry to neighbour [rel_of_neighbour]?
   [rel_of_neighbour] is the neighbour's relationship to the holder. *)
let exports (e : entry) ~(to_ : Topology.rel) =
  match (e.learned, to_) with
  | (Self_originated | From_customer), _ -> true
  | (From_peer | From_provider), Topology.Customer -> true
  | (From_peer | From_provider), (Topology.Peer | Topology.Provider) -> false

type rib = (int, entry) Hashtbl.t (* asn -> best route for the prefix *)

(* Compute every AS's best route for one prefix. *)
let compute ~(topo : Topology.t) ~(policy_of : int -> Policy.t)
    ~(validity_of : Route.t -> Origin_validation.state) (anns : announcement list) : rib =
  let rib : rib = Hashtbl.create 64 in
  let all_asns = Topology.asns topo in
  (* seed self-originations *)
  List.iter
    (fun ann ->
      if Topology.mem topo ann.origin then begin
        let e =
          { ann; path = [ ann.origin ]; learned = Self_originated;
            validity = validity_of (Route.make ann.prefix ann.origin) }
        in
        if admissible ~policy:(policy_of ann.origin) e then begin
          match Hashtbl.find_opt rib ann.origin with
          | Some cur when not (better ~policy:(policy_of ann.origin) e cur) -> ()
          | _ -> Hashtbl.replace rib ann.origin e
        end
      end)
    anns;
  (* iterate to fixpoint *)
  let changed = ref true in
  let rounds = ref 0 in
  while !changed do
    changed := false;
    incr rounds;
    if !rounds > 4 * (List.length all_asns + 2) then failwith "Propagation.compute: no convergence";
    List.iter
      (fun asn ->
        let policy = policy_of asn in
        let consider (candidate : entry) =
          if admissible ~policy candidate && not (List.mem asn candidate.path) then begin
            let candidate = { candidate with path = asn :: candidate.path } in
            match Hashtbl.find_opt rib asn with
            | Some cur when not (better ~policy candidate cur) -> ()
            | _ ->
              Hashtbl.replace rib asn candidate;
              changed := true
          end
        in
        List.iter
          (fun (n, rel) ->
            (* [rel] is n's relationship to asn; the exporter n sees asn with
               the converse relationship *)
            let to_ : Topology.rel =
              match rel with
              | Topology.Customer -> Topology.Provider
              | Topology.Provider -> Topology.Customer
              | Topology.Peer -> Topology.Peer
            in
            match Hashtbl.find_opt rib n with
            | None -> ()
            | Some e ->
              if exports e ~to_ then begin
                let learned =
                  match rel with
                  | Topology.Customer -> From_customer
                  | Topology.Provider -> From_provider
                  | Topology.Peer -> From_peer
                in
                consider { e with learned }
              end)
          (Topology.neighbours topo asn))
      all_asns
  done;
  rib

let route rib asn = Hashtbl.find_opt rib asn

let next_hop (e : entry) = match e.path with _ :: n :: _ -> Some n | _ -> None
