(* Relying-party local policies (Section 5 of the paper).

   The two plausible policies suggested by RFC 6483, plus the pre-RPKI
   baseline.  Table 6 is the tradeoff between the first two. *)

type t =
  | Drop_invalid    (* never select an invalid route *)
  | Depref_invalid  (* prefer valid > unknown > invalid, but still usable *)
  | Ignore_rpki     (* route as if the RPKI did not exist *)

let to_string = function
  | Drop_invalid -> "drop invalid"
  | Depref_invalid -> "depref invalid"
  | Ignore_rpki -> "ignore RPKI"

let pp fmt t = Format.pp_print_string fmt (to_string t)

let all = [ Drop_invalid; Depref_invalid; Ignore_rpki ]

(* Rank used during route selection when the policy is validity-aware. *)
let validity_rank (s : Rpki_core.Origin_validation.state) =
  match s with Valid -> 2 | Unknown -> 1 | Invalid -> 0
