(** The data plane: longest-prefix-match forwarding over per-prefix RIBs.

    This is where subprefix hijacks bite ("when a router is offered BGP
    routes for a prefix and its subprefix, it always chooses the subprefix
    route") and where the paper's reachability questions are answered. *)

open Rpki_core
open Rpki_ip

type network = {
  topo : Topology.t;
  ribs : (V4.Prefix.t * Propagation.rib) list; (** one RIB per announced prefix *)
}

val build :
  topo:Topology.t ->
  policy_of:(int -> Policy.t) ->
  validity_of:(Route.t -> Origin_validation.state) ->
  Propagation.announcement list ->
  network
(** Compute RIBs for every distinct announced prefix. *)

val forwarding_entry :
  network -> asn:int -> addr:Addr.V4.t -> (V4.Prefix.t * Propagation.entry) option
(** The LPM decision of [asn] for a destination address. *)

type delivery =
  | Delivered of { origin : int; hops : int list } (** reached this origin *)
  | No_route of int                                (** stuck at this AS *)
  | Loop of int list

val trace : network -> src:int -> addr:Addr.V4.t -> delivery
(** Hop-by-hop forwarding; each hop re-evaluates LPM with its own RIB, so a
    subprefix hijack diverts traffic even at ASes still holding the victim's
    covering route. *)

val reaches : network -> src:int -> addr:Addr.V4.t -> expected:int -> bool
(** Does traffic from [src] to [addr] reach the AS [expected]? *)

val reachability_fraction : network -> addr:Addr.V4.t -> expected:int -> float
(** Fraction of all ASes whose traffic to [addr] reaches [expected]. *)
