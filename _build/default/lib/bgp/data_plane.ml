(* The data plane: longest-prefix-match forwarding over per-prefix RIBs.

   This is where subprefix hijacks bite ("when a router is offered BGP
   routes for a prefix and its subprefix, it always chooses the subprefix
   route") and where the paper's reachability questions (Table 6, Section 6)
   are answered. *)

open Rpki_ip

type network = {
  topo : Topology.t;
  ribs : (V4.Prefix.t * Propagation.rib) list; (* one rib per announced prefix *)
}

(* Compute RIBs for every distinct announced prefix. *)
let build ~topo ~policy_of ~validity_of (anns : Propagation.announcement list) =
  let prefixes =
    List.sort_uniq V4.Prefix.compare (List.map (fun a -> a.Propagation.prefix) anns)
  in
  let ribs =
    List.map
      (fun prefix ->
        let relevant = List.filter (fun a -> V4.Prefix.equal a.Propagation.prefix prefix) anns in
        (prefix, Propagation.compute ~topo ~policy_of ~validity_of relevant))
      prefixes
  in
  { topo; ribs }

(* The forwarding decision of [asn] for destination [addr]: the entry of the
   longest prefix covering [addr] for which the AS holds a route. *)
let forwarding_entry net ~asn ~addr =
  let candidates =
    List.filter_map
      (fun (prefix, rib) ->
        if V4.Prefix.contains_addr prefix addr then
          Option.map (fun e -> (prefix, e)) (Propagation.route rib asn)
        else None)
      net.ribs
  in
  match candidates with
  | [] -> None
  | _ ->
    Some
      (List.fold_left
         (fun best c ->
           let (bp, _) = best and (cp, _) = c in
           if V4.Prefix.len cp > V4.Prefix.len bp then c else best)
         (List.hd candidates) (List.tl candidates))

type delivery =
  | Delivered of { origin : int; hops : int list } (* reached the origin AS *)
  | No_route of int                                (* AS with no route *)
  | Loop of int list

(* Trace a packet from [src] AS toward [addr], hop by hop.  Each hop
   re-evaluates LPM with its own RIB, so a subprefix hijack diverts traffic
   even at ASes that still hold the victim's covering route. *)
let trace net ~src ~addr =
  let rec go asn visited =
    if List.mem asn visited then Loop (List.rev (asn :: visited))
    else begin
      match forwarding_entry net ~asn ~addr with
      | None -> No_route asn
      | Some (_, e) -> (
        if e.Propagation.ann.Propagation.origin = asn then
          Delivered { origin = asn; hops = List.rev (asn :: visited) }
        else
          match Propagation.next_hop e with
          | None -> Delivered { origin = asn; hops = List.rev (asn :: visited) }
          | Some nh -> go nh (asn :: visited))
    end
  in
  go src []

(* Does traffic from [src] to [addr] reach [expected] (the legitimate
   origin)? *)
let reaches net ~src ~addr ~expected =
  match trace net ~src ~addr with
  | Delivered { origin; _ } -> origin = expected
  | No_route _ | Loop _ -> false

(* Fraction of ASes whose traffic to [addr] reaches [expected]. *)
let reachability_fraction net ~addr ~expected =
  let asns = Topology.asns net.topo in
  let ok = List.length (List.filter (fun a -> reaches net ~src:a ~addr ~expected) asns) in
  float_of_int ok /. float_of_int (List.length asns)
