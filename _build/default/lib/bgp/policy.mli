(** Relying-party local policies (the paper's Section 5).

    The two plausible policies suggested by RFC 6483, plus the pre-RPKI
    baseline.  Table 6 is the tradeoff between the first two. *)

type t =
  | Drop_invalid    (** never select an invalid route *)
  | Depref_invalid  (** prefer valid > unknown > invalid, but still usable *)
  | Ignore_rpki     (** route as if the RPKI did not exist *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
val all : t list

val validity_rank : Rpki_core.Origin_validation.state -> int
(** The ranking used by validity-aware route selection: valid 2, unknown 1,
    invalid 0. *)
