(** Synthetic Internet-like AS topologies.

    Real AS-relationship data (CAIDA) is not available offline, so these
    generators produce the familiar hierarchy: a tier-1 clique, multihomed
    tier-2 ISPs with lateral peerings, and stub ASes.  The experiments need
    only shape (who wins a hijack, how far routes spread), which this
    preserves. *)

type spec = {
  tier1 : int;
  tier2 : int;
  stubs : int;
  providers_per_tier2 : int;
  providers_per_stub : int;
  peer_fraction : float;
  seed : int;
}

val default_spec : spec
(** 4 tier-1s, 20 tier-2s, 100 stubs. *)

type generated = {
  topo : Topology.t;
  tier1_asns : int list;
  tier2_asns : int list;
  stub_asns : int list;
}

val generate : spec -> generated
(** Deterministic in [spec.seed]. *)

(** The small fixed topology used by the Table 6 and Section 6 narratives:
    two peered tier-1s, three mid ISPs, a victim, a multihomed source, and
    an attacker homed high in the hierarchy. *)
type small = {
  small_topo : Topology.t;
  t1a : int;
  t1b : int;
  mid1 : int;
  mid2 : int;
  mid3 : int;
  victim : int;   (** AS 17054 *)
  source : int;   (** AS 7018, the observing relying party *)
  attacker : int; (** AS 666 *)
}

val small_scenario : unit -> small
