(** BGP route propagation under Gao-Rexford export rules, with RPKI-aware
    route selection.

    Export rule: a route learned from a customer (or self-originated) is
    exported to everyone; a route learned from a peer or provider is
    exported only to customers.  Selection: (drop-invalid filters, then)
    validity > relationship preference > path length > lowest next hop. *)

open Rpki_core

type announcement = {
  prefix : Rpki_ip.V4.Prefix.t;
  origin : int; (** the AS in the origin position *)
}

type learned = From_customer | From_peer | From_provider | Self_originated

type entry = {
  ann : announcement;
  path : int list;   (** this AS first, origin last *)
  learned : learned;
  validity : Origin_validation.state;
}

val rel_rank : learned -> int

val preference_key : policy:Policy.t -> entry -> int * int * int * int
(** Total preference order at an AS (bigger wins). *)

val admissible : policy:Policy.t -> entry -> bool
(** Drop-invalid refuses invalid candidates outright. *)

val better : policy:Policy.t -> entry -> entry -> bool

val exports : entry -> to_:Topology.rel -> bool
(** Gao-Rexford export predicate; [to_] is the neighbour's relationship as
    seen by the route holder. *)

type rib = (int, entry) Hashtbl.t
(** Best route per AS, for one prefix. *)

val compute :
  topo:Topology.t ->
  policy_of:(int -> Policy.t) ->
  validity_of:(Route.t -> Origin_validation.state) ->
  announcement list ->
  rib
(** Fixpoint propagation of one prefix's announcements through the
    topology.  Raises [Failure] if no convergence (cannot happen on
    valley-free topologies). *)

val route : rib -> int -> entry option
val next_hop : entry -> int option
