(** Signed arbitrary-precision integers, a thin layer over {!Nat} providing
    just what the extended Euclidean algorithm needs. *)

type t
(** A signed integer. *)

val zero : t
val of_nat : Nat.t -> t
val of_int : int -> t
val neg : t -> t
val is_zero : t -> bool
val is_neg : t -> bool
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val compare : t -> t -> int
val equal : t -> t -> bool

val erem : t -> Nat.t -> Nat.t
(** Euclidean remainder modulo a positive natural, always in [\[0, m)]. *)

val to_nat_exn : t -> Nat.t
(** Raises [Invalid_argument] on negatives. *)

val pp : Format.formatter -> t -> unit

val egcd : Nat.t -> Nat.t -> Nat.t * t * t
(** [egcd a b] is [(g, x, y)] with [a*x + b*y = g = gcd a b]. *)

val mod_inverse : Nat.t -> modulus:Nat.t -> Nat.t option
(** The inverse of [a] modulo [modulus], or [None] when not coprime. *)
