(* Signed arbitrary-precision integers, as a thin layer over [Nat].

   Only the operations needed by the extended Euclidean algorithm and RSA key
   generation are provided; the RPKI layers never manipulate negative
   quantities directly. *)

type sign = Pos | Neg

type t = { sign : sign; mag : Nat.t }
(* invariant: if mag = 0 then sign = Pos *)

let make sign mag = if Nat.is_zero mag then { sign = Pos; mag } else { sign; mag }

let zero = { sign = Pos; mag = Nat.zero }
let of_nat mag = { sign = Pos; mag }
let of_int i = if i < 0 then make Neg (Nat.of_int (-i)) else of_nat (Nat.of_int i)

let neg a = make (match a.sign with Pos -> Neg | Neg -> Pos) a.mag

let is_zero a = Nat.is_zero a.mag
let is_neg a = a.sign = Neg && not (is_zero a)

let add a b =
  match (a.sign, b.sign) with
  | Pos, Pos -> make Pos (Nat.add a.mag b.mag)
  | Neg, Neg -> make Neg (Nat.add a.mag b.mag)
  | Pos, Neg | Neg, Pos ->
    let c = Nat.compare a.mag b.mag in
    if c = 0 then zero
    else if c > 0 then make a.sign (Nat.sub a.mag b.mag)
    else make b.sign (Nat.sub b.mag a.mag)

let sub a b = add a (neg b)

let mul a b =
  let sign = if a.sign = b.sign then Pos else Neg in
  make sign (Nat.mul a.mag b.mag)

let compare a b =
  match (is_neg a, is_neg b) with
  | true, false -> -1
  | false, true -> 1
  | false, false -> Nat.compare a.mag b.mag
  | true, true -> Nat.compare b.mag a.mag

let equal a b = compare a b = 0

(* Euclidean remainder of [a] modulo positive natural [m], always in [0, m). *)
let erem a m =
  let r = Nat.rem a.mag m in
  if a.sign = Pos || Nat.is_zero r then r else Nat.sub m r

let to_nat_exn a =
  if is_neg a then invalid_arg "Zint.to_nat_exn: negative";
  a.mag

let pp fmt a =
  if is_neg a then Format.pp_print_char fmt '-';
  Nat.pp fmt a.mag

(* Extended Euclid: returns (g, x, y) with a*x + b*y = g = gcd(a, b). *)
let egcd (a : Nat.t) (b : Nat.t) =
  let rec go r0 r1 s0 s1 t0 t1 =
    if Nat.is_zero r1 then (r0, s0, t0)
    else begin
      let q, r2 = Nat.divmod r0 r1 in
      let qz = of_nat q in
      go r1 r2 s1 (sub s0 (mul qz s1)) t1 (sub t0 (mul qz t1))
    end
  in
  go a b (of_int 1) zero zero (of_int 1)

(* Modular inverse of [a] modulo [m]; None when gcd(a, m) <> 1. *)
let mod_inverse (a : Nat.t) ~(modulus : Nat.t) =
  let g, x, _ = egcd (Nat.rem a modulus) modulus in
  if not (Nat.equal g Nat.one) then None else Some (erem x modulus)
