(* Probabilistic primality testing and prime generation for RSA keygen.

   Miller-Rabin with a caller-chosen round count (40 rounds gives a
   2^-80 error bound, far below any concern for a simulation substrate).
   Candidates are pre-sieved against small primes to skip most composites
   before the expensive modular exponentiations. *)

let small_primes =
  [ 2; 3; 5; 7; 11; 13; 17; 19; 23; 29; 31; 37; 41; 43; 47; 53; 59; 61; 67;
    71; 73; 79; 83; 89; 97; 101; 103; 107; 109; 113; 127; 131; 137; 139; 149;
    151; 157; 163; 167; 173; 179; 181; 191; 193; 197; 199; 211; 223; 227; 229 ]

(* Write n - 1 = d * 2^s with d odd. *)
let decompose n =
  let n1 = Nat.pred n in
  let rec go d s = if Nat.testbit d 0 then (d, s) else go (Nat.shift_right d 1) (s + 1) in
  go n1 0

let miller_rabin_witness n ~d ~s a =
  (* returns true if [a] witnesses that [n] is composite *)
  let x = Nat.pow_mod ~base:a ~exp:d ~modulus:n in
  let n1 = Nat.pred n in
  if Nat.equal x Nat.one || Nat.equal x n1 then false
  else begin
    let rec squares x i =
      if i >= s - 1 then true
      else begin
        let x = Nat.rem (Nat.mul x x) n in
        if Nat.equal x n1 then false else squares x (i + 1)
      end
    in
    squares x 0
  end

let is_probably_prime ?(rounds = 40) rng n =
  match Nat.to_int_opt n with
  | Some i when i < 4 -> i = 2 || i = 3
  | _ ->
    if not (Nat.testbit n 0) then false
    else if
      List.exists
        (fun p ->
          let pn = Nat.of_int p in
          Nat.is_zero (Nat.rem n pn) && not (Nat.equal n pn))
        small_primes
    then false
    else begin
      let d, s = decompose n in
      let n3 = Nat.sub n (Nat.of_int 3) in
      let rec trial k =
        if k = 0 then true
        else begin
          (* a uniform in [2, n-2] *)
          let a = Nat.add (Nat.random rng ~bound:(Nat.succ n3)) Nat.two in
          if miller_rabin_witness n ~d ~s a then false else trial (k - 1)
        end
      in
      trial rounds
    end

(* Generate a random prime with exactly [bits] bits. *)
let generate ?(rounds = 40) rng ~bits =
  if bits < 4 then invalid_arg "Prime.generate: want >= 4 bits";
  let rec go () =
    let candidate = Nat.random_bits rng ~bits in
    (* force odd *)
    let candidate = if Nat.testbit candidate 0 then candidate else Nat.succ candidate in
    if Nat.num_bits candidate = bits && is_probably_prime ~rounds rng candidate then candidate
    else go ()
  in
  go ()
