(** Probabilistic primality testing and prime generation for RSA keygen. *)

val small_primes : int list
(** The trial-division sieve applied before Miller-Rabin. *)

val is_probably_prime : ?rounds:int -> Rpki_util.Rng.t -> Nat.t -> bool
(** Miller-Rabin with [rounds] random bases (default 40, error below
    2{^-80}). Deterministic for values below 4. *)

val generate : ?rounds:int -> Rpki_util.Rng.t -> bits:int -> Nat.t
(** A random probable prime with exactly [bits] bits.
    Raises [Invalid_argument] below 4 bits. *)
