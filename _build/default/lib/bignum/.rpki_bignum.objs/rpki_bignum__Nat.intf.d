lib/bignum/nat.mli: Format Rpki_util
