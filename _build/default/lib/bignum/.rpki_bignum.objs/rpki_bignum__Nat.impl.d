lib/bignum/nat.ml: Array Buffer Bytes Char Format Rpki_util Stdlib String
