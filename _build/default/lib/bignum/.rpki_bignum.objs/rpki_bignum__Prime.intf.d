lib/bignum/prime.mli: Nat Rpki_util
