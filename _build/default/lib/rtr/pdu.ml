(* RPKI-to-Router protocol PDUs (RFC 6810), byte-exact.

   The last leg of Figure 1's dependency chain: the relying party's cache
   speaks this protocol to routers, pushing validated ROA payloads.  All
   integers are big-endian; the common 8-byte header is
   version / pdu type / session-or-zero / total length. *)

type flags = Announce | Withdraw

type t =
  | Serial_notify of { session_id : int; serial : int }
  | Serial_query of { session_id : int; serial : int }
  | Reset_query
  | Cache_response of { session_id : int }
  | Ipv4_prefix of {
      flags : flags;
      prefix : Rpki_ip.V4.Prefix.t;
      max_len : int;
      asn : int;
    }
  | Ipv6_prefix of {
      flags : flags;
      prefix6 : Rpki_ip.V6.Prefix.t;
      max_len : int;
      asn : int;
    }
  | End_of_data of { session_id : int; serial : int }
  | Cache_reset
  | Error_report of { error_code : int; message : string }

let protocol_version = 0

(* RFC 6810 error codes *)
let err_corrupt_data = 0
let err_internal = 1
let err_no_data_available = 2
let err_invalid_request = 3
let err_unsupported_version = 4
let err_unsupported_pdu = 5
let err_unknown_withdrawal = 6
let err_duplicate_announcement = 7

exception Parse_error of string

let put_u8 buf v = Buffer.add_char buf (Char.chr (v land 0xff))

let put_u16 buf v =
  put_u8 buf (v lsr 8);
  put_u8 buf v

let put_u32 buf v =
  put_u16 buf (v lsr 16);
  put_u16 buf (v land 0xffff)

let header buf ~pdu_type ~session ~length =
  put_u8 buf protocol_version;
  put_u8 buf pdu_type;
  put_u16 buf session;
  put_u32 buf length

let encode (t : t) =
  let buf = Buffer.create 32 in
  (match t with
  | Serial_notify { session_id; serial } ->
    header buf ~pdu_type:0 ~session:session_id ~length:12;
    put_u32 buf serial
  | Serial_query { session_id; serial } ->
    header buf ~pdu_type:1 ~session:session_id ~length:12;
    put_u32 buf serial
  | Reset_query -> header buf ~pdu_type:2 ~session:0 ~length:8
  | Cache_response { session_id } -> header buf ~pdu_type:3 ~session:session_id ~length:8
  | Ipv4_prefix { flags; prefix; max_len; asn } ->
    header buf ~pdu_type:4 ~session:0 ~length:20;
    put_u8 buf (match flags with Announce -> 1 | Withdraw -> 0);
    put_u8 buf (Rpki_ip.V4.Prefix.len prefix);
    put_u8 buf max_len;
    put_u8 buf 0;
    put_u32 buf (Rpki_ip.V4.Prefix.addr prefix);
    put_u32 buf asn
  | Ipv6_prefix { flags; prefix6; max_len; asn } ->
    header buf ~pdu_type:6 ~session:0 ~length:32;
    put_u8 buf (match flags with Announce -> 1 | Withdraw -> 0);
    put_u8 buf (Rpki_ip.V6.Prefix.len prefix6);
    put_u8 buf max_len;
    put_u8 buf 0;
    let h, l = Rpki_ip.V6.Prefix.addr prefix6 in
    put_u32 buf (Int64.to_int (Int64.shift_right_logical h 32));
    put_u32 buf (Int64.to_int (Int64.logand h 0xFFFFFFFFL));
    put_u32 buf (Int64.to_int (Int64.shift_right_logical l 32));
    put_u32 buf (Int64.to_int (Int64.logand l 0xFFFFFFFFL));
    put_u32 buf asn
  | End_of_data { session_id; serial } ->
    header buf ~pdu_type:7 ~session:session_id ~length:12;
    put_u32 buf serial
  | Cache_reset -> header buf ~pdu_type:8 ~session:0 ~length:8
  | Error_report { error_code; message } ->
    (* encapsulated-PDU length 0; message text follows *)
    header buf ~pdu_type:10 ~session:error_code ~length:(8 + 4 + 4 + String.length message);
    put_u32 buf 0;
    put_u32 buf (String.length message);
    Buffer.add_string buf message);
  Buffer.contents buf

let get_u8 s off = Char.code s.[off]
let get_u16 s off = (get_u8 s off lsl 8) lor get_u8 s (off + 1)
let get_u32 s off = (get_u16 s off lsl 16) lor get_u16 s (off + 2)

(* Decode one PDU from [s] starting at [off]; returns (pdu, bytes consumed). *)
let decode_at s off =
  if String.length s - off < 8 then raise (Parse_error "truncated header");
  let version = get_u8 s off in
  if version <> protocol_version then
    raise (Parse_error (Printf.sprintf "unsupported version %d" version));
  let pdu_type = get_u8 s (off + 1) in
  let session = get_u16 s (off + 2) in
  let length = get_u32 s (off + 4) in
  if length < 8 || String.length s - off < length then raise (Parse_error "truncated PDU");
  let pdu =
    match pdu_type with
    | 0 -> Serial_notify { session_id = session; serial = get_u32 s (off + 8) }
    | 1 -> Serial_query { session_id = session; serial = get_u32 s (off + 8) }
    | 2 -> Reset_query
    | 3 -> Cache_response { session_id = session }
    | 4 ->
      if length <> 20 then raise (Parse_error "bad IPv4 prefix PDU length");
      let flags = if get_u8 s (off + 8) land 1 = 1 then Announce else Withdraw in
      let plen = get_u8 s (off + 9) in
      let max_len = get_u8 s (off + 10) in
      let addr = get_u32 s (off + 12) in
      if plen > 32 || max_len > 32 || max_len < plen then
        raise (Parse_error "bad IPv4 prefix lengths");
      Ipv4_prefix { flags; prefix = Rpki_ip.V4.Prefix.make addr plen; max_len;
                    asn = get_u32 s (off + 16) }
    | 6 ->
      if length <> 32 then raise (Parse_error "bad IPv6 prefix PDU length");
      let flags = if get_u8 s (off + 8) land 1 = 1 then Announce else Withdraw in
      let plen = get_u8 s (off + 9) in
      let max_len = get_u8 s (off + 10) in
      if plen > 128 || max_len > 128 || max_len < plen then
        raise (Parse_error "bad IPv6 prefix lengths");
      let w i = Int64.of_int (get_u32 s (off + 12 + (4 * i))) in
      let h = Int64.logor (Int64.shift_left (w 0) 32) (w 1) in
      let l = Int64.logor (Int64.shift_left (w 2) 32) (w 3) in
      Ipv6_prefix { flags; prefix6 = Rpki_ip.V6.Prefix.make (h, l) plen; max_len;
                    asn = get_u32 s (off + 28) }
    | 7 -> End_of_data { session_id = session; serial = get_u32 s (off + 8) }
    | 8 -> Cache_reset
    | 10 ->
      let msg_len = get_u32 s (off + 12) in
      Error_report { error_code = session; message = String.sub s (off + 16) msg_len }
    | n -> raise (Parse_error (Printf.sprintf "unsupported PDU type %d" n))
  in
  (pdu, length)

let decode s =
  let p, n = decode_at s 0 in
  if n <> String.length s then raise (Parse_error "trailing bytes");
  p

(* Decode a stream of concatenated PDUs. *)
let decode_all s =
  let rec go off acc =
    if off >= String.length s then List.rev acc
    else begin
      let p, n = decode_at s off in
      go (off + n) (p :: acc)
    end
  in
  go 0 []

let of_vrp ?(flags = Announce) (v : Rpki_core.Vrp.t) =
  Ipv4_prefix { flags; prefix = v.Rpki_core.Vrp.prefix; max_len = v.Rpki_core.Vrp.max_len;
                asn = v.Rpki_core.Vrp.asn }

let to_string = function
  | Serial_notify { session_id; serial } -> Printf.sprintf "SerialNotify(%d,%d)" session_id serial
  | Serial_query { session_id; serial } -> Printf.sprintf "SerialQuery(%d,%d)" session_id serial
  | Reset_query -> "ResetQuery"
  | Cache_response { session_id } -> Printf.sprintf "CacheResponse(%d)" session_id
  | Ipv4_prefix { flags; prefix; max_len; asn } ->
    Printf.sprintf "IPv4Prefix(%s,%s-%d,AS%d)"
      (match flags with Announce -> "+" | Withdraw -> "-")
      (Rpki_ip.V4.Prefix.to_string prefix) max_len asn
  | Ipv6_prefix { flags; prefix6; max_len; asn } ->
    Printf.sprintf "IPv6Prefix(%s,%s-%d,AS%d)"
      (match flags with Announce -> "+" | Withdraw -> "-")
      (Rpki_ip.V6.Prefix.to_string prefix6) max_len asn
  | End_of_data { session_id; serial } -> Printf.sprintf "EndOfData(%d,%d)" session_id serial
  | Cache_reset -> "CacheReset"
  | Error_report { error_code; message } -> Printf.sprintf "ErrorReport(%d,%S)" error_code message
