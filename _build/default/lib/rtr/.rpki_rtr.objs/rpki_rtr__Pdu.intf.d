lib/rtr/pdu.mli: Rpki_core Rpki_ip
