lib/rtr/pdu.ml: Buffer Char Int64 List Printf Rpki_core Rpki_ip String
