lib/rtr/session.mli: Pdu Rpki_core Vrp
