lib/rtr/session.ml: List Pdu Printf Rpki_core String Vrp
