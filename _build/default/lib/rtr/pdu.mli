(** RPKI-to-Router protocol PDUs (RFC 6810), byte-exact big-endian wire
    format. *)

type flags = Announce | Withdraw

type t =
  | Serial_notify of { session_id : int; serial : int }
  | Serial_query of { session_id : int; serial : int }
  | Reset_query
  | Cache_response of { session_id : int }
  | Ipv4_prefix of {
      flags : flags;
      prefix : Rpki_ip.V4.Prefix.t;
      max_len : int;
      asn : int;
    }
  | Ipv6_prefix of {
      flags : flags;
      prefix6 : Rpki_ip.V6.Prefix.t;
      max_len : int;
      asn : int;
    }
  | End_of_data of { session_id : int; serial : int }
  | Cache_reset
  | Error_report of { error_code : int; message : string }

val protocol_version : int
(** 0, per RFC 6810. *)

(** RFC 6810 section 10 error codes. *)

val err_corrupt_data : int
val err_internal : int
val err_no_data_available : int
val err_invalid_request : int
val err_unsupported_version : int
val err_unsupported_pdu : int
val err_unknown_withdrawal : int
val err_duplicate_announcement : int

exception Parse_error of string

val encode : t -> string

val decode_at : string -> int -> t * int
(** Decode one PDU at an offset; returns it and the bytes consumed. *)

val decode : string -> t
(** Exactly one PDU; trailing bytes raise {!Parse_error}. *)

val decode_all : string -> t list
(** A concatenated PDU stream. *)

val of_vrp : ?flags:flags -> Rpki_core.Vrp.t -> t
(** The IPv4 Prefix PDU carrying a VRP. *)

val to_string : t -> string
