(** RTR cache-server and router-client state machines (RFC 6810 section 4).

    The cache holds serial-numbered versions of the relying party's VRP set;
    routers synchronise with Reset Query (full state) or Serial Query
    (incremental deltas).  Every exchange round-trips through the byte-exact
    {!Pdu} encoding. *)

open Rpki_core

module Vrp_set : sig
  val diff : from:Vrp.t list -> to_:Vrp.t list -> Vrp.t list * Vrp.t list
  (** [(announced, withdrawn)]. *)
end

(** {2 Cache (server) side} *)

type cache = {
  session_id : int;
  mutable serial : int;
  mutable current : Vrp.t list;
  mutable versions : (int * Vrp.t list) list; (** serial -> snapshot *)
  history_limit : int;
}

val create_cache : ?session_id:int -> ?history_limit:int -> unit -> cache

val publish : cache -> Vrp.t list -> unit
(** Install a new VRP set (e.g. after each relying-party sync); bumps the
    serial only when the set actually changed. *)

val notify : cache -> Pdu.t
(** The Serial Notify a cache would push to connected routers. *)

val serve : cache -> string -> string
(** Handle one encoded client request, returning the encoded response
    sequence (Cache Response … End of Data, or Cache Reset, or an Error
    Report). *)

(** {2 Router (client) side} *)

type router = {
  mutable r_session : int option;
  mutable r_serial : int;
  mutable r_vrps : Vrp.t list;
}

val create_router : unit -> router

exception Protocol_error of string

val apply_response : router -> string -> [ `Synced | `Reset_required ]
(** Apply an encoded cache response to the router state. *)

val synchronize : router -> cache -> Vrp.t list
(** One synchronisation round: incremental when the session and serial
    allow, otherwise a full reset.  Returns the router's resulting VRPs. *)
