(** Collateral-damage assessment: the difference between the VRP sets a
    relying party computes before and after a manipulation.

    The paper argues overt revocation is deterred by "the outcry from this
    collateral damage"; this module is the outcry's ledger. *)

open Rpki_core

type delta = {
  lost : Vrp.t list;     (** VRPs that disappeared *)
  gained : Vrp.t list;   (** VRPs that appeared (e.g. make-before-break reissues) *)
  net_lost : Vrp.t list; (** lost and not re-provided under any guise *)
}

val vrp_covers_same : Vrp.t -> Vrp.t -> bool
(** Same routing meaning (prefix, maxLength, origin) regardless of issuer. *)

val diff : before:Vrp.t list -> after:Vrp.t list -> delta

val validity_changes :
  before:Vrp.t list ->
  after:Vrp.t list ->
  Route.t list ->
  (Route.t * Origin_validation.state * Origin_validation.state) list
(** Routes whose validity state changed between two VRP sets. *)

val measure :
  rp:Rpki_repo.Relying_party.t ->
  universe:Rpki_repo.Universe.t ->
  now:Rtime.t ->
  target:Vrp.t list ->
  (unit -> unit) ->
  delta * Vrp.t list
(** Sync, run the mutation, sync again; returns the delta and the net VRP
    losses other than the intended target (the collateral). *)
