(* Collateral-damage assessment: the difference between the VRP sets a
   relying party computes before and after a manipulation.

   The paper argues overt revocation is deterred by "the outcry from this
   collateral damage"; this module is the outcry's ledger. *)

open Rpki_core

type delta = {
  lost : Vrp.t list;     (* VRPs that disappeared *)
  gained : Vrp.t list;   (* VRPs that appeared (e.g. make-before-break reissues) *)
  net_lost : Vrp.t list; (* lost and not re-provided under any guise *)
}

let vrp_covers_same (a : Vrp.t) (b : Vrp.t) =
  (* same routing meaning regardless of issuer *)
  Rpki_ip.V4.Prefix.equal a.Vrp.prefix b.Vrp.prefix
  && a.Vrp.max_len = b.Vrp.max_len && a.Vrp.asn = b.Vrp.asn

let diff ~before ~after =
  let lost = List.filter (fun v -> not (List.exists (Vrp.equal v) after)) before in
  let gained = List.filter (fun v -> not (List.exists (Vrp.equal v) before)) after in
  let net_lost = List.filter (fun v -> not (List.exists (vrp_covers_same v) after)) lost in
  { lost; gained; net_lost }

(* Routes whose validity state changed between two VRP sets. *)
let validity_changes ~before ~after routes =
  let ib = Origin_validation.build before and ia = Origin_validation.build after in
  List.filter_map
    (fun route ->
      let sb = Origin_validation.classify ib route and sa = Origin_validation.classify ia route in
      if Origin_validation.equal_state sb sa then None else Some (route, sb, sa))
    routes

(* Collateral of a plan, measured end to end: sync a relying party against
   the live universe, run [mutate], sync again, and report net VRP loss
   other than the intended target. *)
let measure ~(rp : Rpki_repo.Relying_party.t) ~universe ~now ~(target : Vrp.t list) mutate =
  let before = (Rpki_repo.Relying_party.sync rp ~now ~universe ()).Rpki_repo.Relying_party.vrps in
  mutate ();
  let after = (Rpki_repo.Relying_party.sync rp ~now ~universe ()).Rpki_repo.Relying_party.vrps in
  let d = diff ~before ~after in
  let collateral =
    List.filter (fun v -> not (List.exists (vrp_covers_same v) target)) d.net_lost
  in
  (d, collateral)
