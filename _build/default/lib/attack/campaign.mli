(** Censorship campaigns: many targeted whacks with one objective.

    The paper's motivation is state-sponsored coercion.  A coerced authority
    rarely wants one ROA gone; it wants an AS, a network, or a country off
    the map.  Plans are sets of single-ROA whacks plus direct revocations
    for the manipulator's own ROAs. *)

open Rpki_core
open Rpki_repo
open Rpki_ip

type objective =
  | Target_asns of int list  (** silence these origin ASes *)
  | Target_space of V4.Set.t (** silence everything overlapping this space *)

val roa_matches : objective -> Roa.t -> bool

type step =
  | Whack_step of Whack.plan
  | Revoke_own of { filename : string; roa : Roa.t }

type plan = {
  objective : objective;
  steps : step list;
  unplannable : (string * string * string) list; (** issuer, filename, reason *)
}

val objective_to_string : objective -> string

val plan : manipulator:Authority.t -> objective:objective -> plan
(** Enumerate every matching ROA at or below the manipulator and plan its
    removal. *)

val targets : plan -> Roa.t list

val reissue_count : plan -> int
(** Reissued objects the campaign requires — the paper's detectability
    currency. *)

val execute :
  manipulator:Authority.t -> plan -> now:Rtime.t -> int * (string * string * string) list
(** Execute each step, re-deriving whack plans against current state
    (earlier steps shift the atoms available to later ones).  Returns
    (executed count, failures). *)

val describe : plan -> string

(** {2 Bridging the jurisdiction dataset to a live hierarchy} *)

val hierarchy_of_dataset :
  ?now:Rtime.t ->
  Rpki_juris.Dataset.rc_record list ->
  Universe.t
  * (Rpki_juris.Country.rir * Authority.t) list
  * (Rpki_juris.Dataset.rc_record * Authority.t) list
(** Build a real certificate hierarchy from allocation records: one trust
    anchor per RIR present, one holder CA per RC, one ROA per
    suballocation — turning Table 4's "can whack" into an executable
    "does whack". *)

val asns_of_country : Rpki_juris.Dataset.rc_record list -> string -> int list
