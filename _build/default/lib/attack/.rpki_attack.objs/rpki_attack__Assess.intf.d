lib/attack/assess.mli: Origin_validation Route Rpki_core Rpki_repo Rtime Vrp
