lib/attack/whack.ml: Authority Buffer Cert List Option Printf Pub_point Resources Roa Rpki_core Rpki_crypto Rpki_ip Rpki_repo String V4
