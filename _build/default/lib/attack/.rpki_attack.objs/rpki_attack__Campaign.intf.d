lib/attack/campaign.mli: Authority Roa Rpki_core Rpki_ip Rpki_juris Rpki_repo Rtime Universe V4 Whack
