lib/attack/assess.ml: List Origin_validation Rpki_core Rpki_ip Rpki_repo Vrp
