lib/attack/campaign.ml: Authority Buffer Int List Printf Resources Roa Rpki_core Rpki_ip Rpki_juris Rpki_repo Rtime String Universe V4 Whack
