lib/attack/whack.mli: Authority Resources Roa Rpki_core Rpki_ip Rpki_repo Rtime V4
