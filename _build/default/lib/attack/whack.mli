(** The whacking engine (the paper's Section 3).

    "We say that an RPKI manipulator {e whacks} a target ROA" — by
    revocation, stealthy deletion, or the targeted RC-shrinking attacks of
    Section 3.1.  This module plans and executes the targeted attacks
    against a live authority hierarchy, predicting collateral damage before
    acting.

    Planning: find a sliver of the target ROA's address space overlapping no
    other object on the certification path (an "atom"); schedule a
    make-before-break reissue for anything the sliver unavoidably damages
    (sibling ROAs re-signed by the manipulator, intermediate RCs
    re-certified directly under it); finally overwrite the manipulator's
    child RC with the sliver carved out.  A grandchild target needs no RC
    reissues (Side Effect 3); each extra level costs one reissued RC (Side
    Effect 4) — the paper's detectability gradient. *)

open Rpki_core
open Rpki_repo
open Rpki_ip

type reissue =
  | Reissue_roa of { asid : int; v4_entries : Roa.v4_entry list; original_issuer : string }
  | Reissue_rc of { subject : string; new_resources : Resources.t }

type plan = {
  manipulator : string;
  child : string;         (** the manipulator's direct child whose RC shrinks *)
  path : string list;     (** authorities from child down to the target's issuer *)
  target_issuer : string;
  target_filename : string;
  target : Roa.t;
  sliver : V4.Set.t;      (** address space carved out of the chain *)
  shrink_child_to : Resources.t;
  reissues : reissue list;
  unavoidable_damage : string list;
}

val atoms : V4.Set.t -> (string * V4.Set.t) list -> (V4.Set.t * string list) list
(** Split a space into atoms by (description, set) obstacles; each atom
    carries the obstacles it overlaps.  Exposed for testing. *)

val path_to : manipulator:Authority.t -> target_issuer:string -> Authority.t list option
(** The authority chain from the manipulator (exclusive) down to the
    target's issuer (inclusive). *)

exception Cannot_whack of string

val plan_targeted :
  manipulator:Authority.t -> target_issuer:string -> target_filename:string -> plan
(** Build the targeted-whack plan.  Raises {!Cannot_whack} when the target
    is not a strict descendant's ROA. *)

val needs_make_before_break : plan -> bool

val execute :
  manipulator:Authority.t -> plan -> now:Rtime.t -> [ `Roa of string | `Rc of string ] list
(** Apply the plan: reissues first (make before…), then the RC overwrite
    (…break).  Returns the filenames of reissued objects. *)

val describe : plan -> string
(** Human-readable rendering of the plan. *)
