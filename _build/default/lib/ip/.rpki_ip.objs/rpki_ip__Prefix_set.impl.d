lib/ip/prefix_set.ml: Addr Format List Printf Stdlib String
