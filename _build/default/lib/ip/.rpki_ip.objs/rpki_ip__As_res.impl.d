lib/ip/as_res.ml: Addr Int List Prefix_set Range Set Stdlib
