lib/ip/addr.ml: Array Int Int64 List Printf Stdlib String
