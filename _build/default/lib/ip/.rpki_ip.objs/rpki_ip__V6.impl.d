lib/ip/v6.ml: Addr Prefix Prefix_set Printf
