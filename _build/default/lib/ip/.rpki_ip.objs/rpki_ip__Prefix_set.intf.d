lib/ip/prefix_set.mli: Addr Format
