lib/ip/v4.ml: Addr List Prefix Prefix_set Printf Range Set
