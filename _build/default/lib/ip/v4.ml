(* IPv4 instantiation of the generic prefix/range/set/trie machinery.

   This is the family the paper works in ("the smallest IPv4 prefix length
   which is globally routable in BGP is a /24"). *)

include Prefix_set.Make (Addr.V4)

let addr_of_string_exn s =
  match Addr.V4.of_string s with
  | Some a -> a
  | None -> invalid_arg (Printf.sprintf "V4.addr_of_string_exn: %S" s)

let range_of_string_exn s =
  match Range.of_string s with
  | Some r -> r
  | None -> invalid_arg (Printf.sprintf "V4.range_of_string_exn: %S" s)

(* Convenience: "63.160.0.0/12" -> prefix. *)
let p = Prefix.of_string_exn

(* Convenience: a set from a mix of "a.b.c.d/len" and "lo-hi" strings. *)
let set_of_strings strs = Set.of_ranges (List.map range_of_string_exn strs)
