(* Autonomous-system-number resources.

   RFC 3779 certificates carry AS-number sets alongside IP resources.  AS
   numbers are 32-bit, so we reuse the generic range/set machinery over a
   trivial "address" family that prints plain integers. *)

module As_num : Addr.S with type t = int = struct
  type t = int

  let bits = 32
  let zero = 0
  let max_addr = 0xFFFFFFFF
  let compare = Stdlib.compare
  let equal = Int.equal
  let succ a = a + 1
  let pred a = a - 1
  let testbit a i = (a lsr (31 - i)) land 1 = 1
  let host_mask len = if len >= 32 then 0 else (1 lsl (32 - len)) - 1
  let network a len = a land lnot (host_mask len) land max_addr
  let broadcast a len = a lor host_mask len
  let set_bit a i = a lor (1 lsl (31 - i))
  let to_string = string_of_int

  let of_string s =
    match int_of_string_opt s with
    | Some v when v >= 0 && v <= max_addr -> Some v
    | _ -> None
end

include Prefix_set.Make (As_num)

let singleton asn = Set.of_range (Range.make asn asn)
let of_list asns = Set.of_ranges (List.map (fun a -> Range.make a a) asns)
let mem set asn = Set.mem_addr set asn
