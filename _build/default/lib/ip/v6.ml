(* IPv6 instantiation of the generic prefix/range/set/trie machinery. *)

include Prefix_set.Make (Addr.V6)

let addr_of_string_exn s =
  match Addr.V6.of_string s with
  | Some a -> a
  | None -> invalid_arg (Printf.sprintf "V6.addr_of_string_exn: %S" s)

let p = Prefix.of_string_exn
