(* Prefixes, inclusive ranges, and normalized resource sets over any address
   family.

   RFC 3779 resource extensions are arbitrary unions of address ranges, and
   the paper's whacking attacks are exactly set algebra: "reissue the child's
   RC for (child resources) minus (target ROA prefixes)".  [Set] therefore
   supports exact union / intersection / difference / containment on
   sorted, disjoint, maximally-merged range lists. *)

module Make (A : Addr.S) = struct
  type addr = A.t

  module Prefix = struct
    type t = { addr : A.t; len : int }
    (* invariant: 0 <= len <= A.bits and the host bits of [addr] are zero *)

    let make addr len =
      if len < 0 || len > A.bits then invalid_arg "Prefix.make: bad length";
      { addr = A.network addr len; len }

    let addr t = t.addr
    let len t = t.len
    let first t = t.addr
    let last t = A.broadcast t.addr t.len

    let compare a b =
      let c = A.compare a.addr b.addr in
      if c <> 0 then c else Stdlib.compare a.len b.len

    let equal a b = compare a b = 0

    (* [covers p q]: q's address space is a (non-strict) subset of p's. *)
    let covers p q = p.len <= q.len && A.equal (A.network q.addr p.len) p.addr

    let contains_addr p a = A.equal (A.network a p.len) p.addr

    (* The two halves of a prefix; undefined at maximum length. *)
    let split p =
      if p.len >= A.bits then invalid_arg "Prefix.split: host prefix";
      let left = { addr = p.addr; len = p.len + 1 } in
      let right = { addr = A.set_bit p.addr p.len; len = p.len + 1 } in
      (left, right)

    let to_string p = Printf.sprintf "%s/%d" (A.to_string p.addr) p.len

    let of_string s =
      match String.rindex_opt s '/' with
      | None -> None
      | Some i -> (
        let addr_s = String.sub s 0 i in
        let len_s = String.sub s (i + 1) (String.length s - i - 1) in
        match (A.of_string addr_s, int_of_string_opt len_s) with
        | Some addr, Some len when len >= 0 && len <= A.bits ->
          (* reject non-canonical prefixes like 10.0.0.1/8 *)
          if A.equal (A.network addr len) addr then Some { addr; len } else None
        | _ -> None)

    let of_string_exn s =
      match of_string s with
      | Some p -> p
      | None -> invalid_arg (Printf.sprintf "Prefix.of_string_exn: %S" s)

    let pp fmt p = Format.pp_print_string fmt (to_string p)
  end

  module Range = struct
    type t = { lo : A.t; hi : A.t } (* inclusive; invariant lo <= hi *)

    let make lo hi =
      if A.compare lo hi > 0 then invalid_arg "Range.make: lo > hi";
      { lo; hi }

    let lo t = t.lo
    let hi t = t.hi
    let of_prefix (p : Prefix.t) = { lo = Prefix.first p; hi = Prefix.last p }

    let compare a b =
      let c = A.compare a.lo b.lo in
      if c <> 0 then c else A.compare a.hi b.hi

    let equal a b = compare a b = 0
    let contains_addr r a = A.compare r.lo a <= 0 && A.compare a r.hi <= 0
    let subset inner outer = A.compare outer.lo inner.lo <= 0 && A.compare inner.hi outer.hi <= 0
    let overlaps a b = A.compare a.lo b.hi <= 0 && A.compare b.lo a.hi <= 0

    (* Minimal CIDR decomposition of an arbitrary range. *)
    let to_prefixes r =
      let rec fit lo len =
        if len = 0 then len
        else if A.equal (A.network lo (len - 1)) lo && A.compare (A.broadcast lo (len - 1)) r.hi <= 0
        then fit lo (len - 1)
        else len
      in
      let rec go lo acc =
        let len = fit lo A.bits in
        let p = Prefix.make lo len in
        let top = Prefix.last p in
        if A.compare top r.hi >= 0 then List.rev (p :: acc) else go (A.succ top) (p :: acc)
      in
      go r.lo []

    let to_string r = Printf.sprintf "%s-%s" (A.to_string r.lo) (A.to_string r.hi)

    let of_string s =
      match String.index_opt s '-' with
      | None -> (
        (* allow a bare prefix as a range *)
        match Prefix.of_string s with Some p -> Some (of_prefix p) | None -> None)
      | Some i -> (
        let lo_s = String.sub s 0 i and hi_s = String.sub s (i + 1) (String.length s - i - 1) in
        match (A.of_string lo_s, A.of_string hi_s) with
        | Some lo, Some hi when A.compare lo hi <= 0 -> Some { lo; hi }
        | _ -> None)

    let pp fmt r = Format.pp_print_string fmt (to_string r)
  end

  module Set = struct
    type t = Range.t list
    (* invariant: sorted by lo, pairwise disjoint, and no two ranges are
       mergeable (adjacent or overlapping) *)

    let empty : t = []
    let is_empty t = t = []

    (* Sort + merge overlapping/adjacent ranges into canonical form. *)
    let normalize ranges : t =
      let sorted = List.sort Range.compare ranges in
      let merge acc (r : Range.t) =
        match acc with
        | [] -> [ r ]
        | (cur : Range.t) :: rest ->
          let adjacent =
            A.compare cur.Range.hi A.max_addr < 0 && A.compare (A.succ cur.Range.hi) r.Range.lo >= 0
          in
          if A.compare r.Range.lo cur.Range.hi <= 0 || adjacent then begin
            let hi = if A.compare cur.Range.hi r.Range.hi >= 0 then cur.Range.hi else r.Range.hi in
            Range.make cur.Range.lo hi :: rest
          end
          else r :: acc
      in
      List.rev (List.fold_left merge [] sorted)

    let of_ranges rs = normalize rs
    let of_prefixes ps = normalize (List.map Range.of_prefix ps)
    let of_prefix p = [ Range.of_prefix p ]
    let of_range r : t = [ r ]
    let full : t = [ Range.make A.zero A.max_addr ]

    let to_ranges (t : t) = t
    let to_prefixes t = List.concat_map Range.to_prefixes t

    let union a b = normalize (a @ b)

    let inter (a : t) (b : t) : t =
      let rec go a b acc =
        match (a, b) with
        | [], _ | _, [] -> List.rev acc
        | (ra : Range.t) :: ta, (rb : Range.t) :: tb ->
          let lo = if A.compare ra.Range.lo rb.Range.lo >= 0 then ra.Range.lo else rb.Range.lo in
          let hi = if A.compare ra.Range.hi rb.Range.hi <= 0 then ra.Range.hi else rb.Range.hi in
          let acc = if A.compare lo hi <= 0 then Range.make lo hi :: acc else acc in
          if A.compare ra.Range.hi rb.Range.hi < 0 then go ta b acc else go a tb acc
      in
      go a b []

    (* a \ b *)
    let diff (a : t) (b : t) : t =
      let rec go a b acc =
        match a with
        | [] -> List.rev acc
        | (ra : Range.t) :: ta -> (
          match b with
          | [] -> List.rev_append acc a
          | (rb : Range.t) :: tb ->
            if A.compare rb.Range.hi ra.Range.lo < 0 then go a tb acc
            else if A.compare ra.Range.hi rb.Range.lo < 0 then go ta b (ra :: acc)
            else begin
              (* overlap: keep the part of ra before rb, requeue the part after *)
              let acc =
                if A.compare ra.Range.lo rb.Range.lo < 0 then
                  Range.make ra.Range.lo (A.pred rb.Range.lo) :: acc
                else acc
              in
              if A.compare rb.Range.hi ra.Range.hi < 0 then
                go (Range.make (A.succ rb.Range.hi) ra.Range.hi :: ta) tb acc
              else go ta b acc
            end)
      in
      go a b []

    let equal (a : t) (b : t) = List.length a = List.length b && List.for_all2 Range.equal a b
    let subset a b = is_empty (diff a b)
    let overlaps a b = not (is_empty (inter a b))
    let mem_addr t a = List.exists (fun r -> Range.contains_addr r a) t
    let mem_prefix t p = subset (of_prefix p) t
    let mem_range t r = subset (of_range r) t

    (* Number of distinct addresses, when it fits in an int (always for v4). *)
    let cardinal_opt (t : t) =
      let range_card (r : Range.t) =
        (* count via the prefix decomposition to stay in int range when possible *)
        List.fold_left
          (fun acc (p : Prefix.t) ->
            match acc with
            | None -> None
            | Some n ->
              let host = A.bits - p.Prefix.len in
              if host >= 62 then None else Some (n + (1 lsl host)))
          (Some 0) (Range.to_prefixes r)
      in
      List.fold_left
        (fun acc r -> match (acc, range_card r) with Some a, Some b -> Some (a + b) | _ -> None)
        (Some 0) t

    let to_string t = String.concat ", " (List.map Range.to_string t)
    let pp fmt t = Format.pp_print_string fmt (to_string t)
  end

  (* Binary (bit-at-a-time) trie keyed by prefixes.  Used for route tables
     and for the relying party's validated-ROA index: longest-prefix match,
     "all covering entries" and "all covered entries" are the three queries
     route-origin validation needs. *)
  module Trie = struct
    type 'a t = Leaf | Node of 'a node
    and 'a node = { value : 'a option; zero : 'a t; one : 'a t }

    let empty = Leaf

    let node value zero one =
      match (value, zero, one) with
      | None, Leaf, Leaf -> Leaf
      | _ -> Node { value; zero; one }

    let insert_with ~combine t (p : Prefix.t) v =
      let rec go t depth =
        let { value; zero; one } =
          match t with Leaf -> { value = None; zero = Leaf; one = Leaf } | Node n -> n
        in
        if depth = p.Prefix.len then begin
          let value = match value with None -> Some v | Some old -> Some (combine old v) in
          Node { value; zero; one }
        end
        else if A.testbit p.Prefix.addr depth then Node { value; zero; one = go one (depth + 1) }
        else Node { value; zero = go zero (depth + 1); one }
      in
      go t 0

    let insert t p v = insert_with ~combine:(fun _ v -> v) t p v

    let remove t (p : Prefix.t) =
      let rec go t depth =
        match t with
        | Leaf -> Leaf
        | Node n ->
          if depth = p.Prefix.len then node None n.zero n.one
          else if A.testbit p.Prefix.addr depth then node n.value n.zero (go n.one (depth + 1))
          else node n.value (go n.zero (depth + 1)) n.one
      in
      go t 0

    let find_exact t (p : Prefix.t) =
      let rec go t depth =
        match t with
        | Leaf -> None
        | Node n ->
          if depth = p.Prefix.len then n.value
          else if A.testbit p.Prefix.addr depth then go n.one (depth + 1)
          else go n.zero (depth + 1)
      in
      go t 0

    (* Deepest valued node on the path to [p] (inclusive). *)
    let longest_match t (p : Prefix.t) =
      let rec go t depth addr best =
        match t with
        | Leaf -> best
        | Node n ->
          let best =
            match n.value with Some v -> Some (Prefix.make addr depth, v) | None -> best
          in
          if depth = p.Prefix.len then best
          else if A.testbit p.Prefix.addr depth then
            go n.one (depth + 1) (A.set_bit addr depth) best
          else go n.zero (depth + 1) addr best
      in
      go t 0 A.zero None

    (* All valued nodes on the path to [p] (inclusive): entries whose prefix
       covers [p], shortest first. *)
    let covering t (p : Prefix.t) =
      let rec go t depth addr acc =
        match t with
        | Leaf -> List.rev acc
        | Node n ->
          let acc =
            match n.value with Some v -> (Prefix.make addr depth, v) :: acc | None -> acc
          in
          if depth = p.Prefix.len then List.rev acc
          else if A.testbit p.Prefix.addr depth then go n.one (depth + 1) (A.set_bit addr depth) acc
          else go n.zero (depth + 1) addr acc
      in
      go t 0 A.zero []

    (* All valued nodes inside the subtree rooted at [p]: entries covered by
       [p], in address order. *)
    let covered t (p : Prefix.t) =
      let rec walk t depth addr acc =
        match t with
        | Leaf -> acc
        | Node n ->
          let acc = walk n.one (depth + 1) (A.set_bit addr depth) acc in
          let acc = walk n.zero (depth + 1) addr acc in
          (match n.value with Some v -> (Prefix.make addr depth, v) :: acc | None -> acc)
      in
      let rec go t depth addr =
        match t with
        | Leaf -> []
        | Node n ->
          if depth = p.Prefix.len then walk t depth addr []
          else if A.testbit p.Prefix.addr depth then go n.one (depth + 1) (A.set_bit addr depth)
          else go n.zero (depth + 1) addr
      in
      go t 0 A.zero

    let fold f t init =
      let rec go t depth addr acc =
        match t with
        | Leaf -> acc
        | Node n ->
          let acc = match n.value with Some v -> f (Prefix.make addr depth) v acc | None -> acc in
          let acc = go n.zero (depth + 1) addr acc in
          go n.one (depth + 1) (A.set_bit addr depth) acc
      in
      go t 0 A.zero init

    let to_list t = List.rev (fold (fun p v acc -> (p, v) :: acc) t [])
    let cardinal t = fold (fun _ _ n -> n + 1) t 0
    let of_list l = List.fold_left (fun t (p, v) -> insert t p v) empty l
  end
end
