(** Prefixes, inclusive ranges, normalized resource sets, and LPM tries over
    any address family.

    RFC 3779 resource extensions are arbitrary unions of address ranges, and
    the paper's whacking attacks are exactly set algebra — "reissue the
    child's RC for (child resources) minus (target ROA prefixes)" — so
    the [Set] submodule supports exact union / intersection / difference /
    containment on canonical range lists. *)

module Make (A : Addr.S) : sig
  type addr = A.t

  (** CIDR prefixes, kept canonical (host bits zero). *)
  module Prefix : sig
    type t

    val make : addr -> int -> t
    (** [make addr len] canonicalizes by masking host bits.
        Raises [Invalid_argument] on a bad length. *)

    val addr : t -> addr
    val len : t -> int

    val first : t -> addr
    (** Lowest covered address. *)

    val last : t -> addr
    (** Highest covered address. *)

    val compare : t -> t -> int
    val equal : t -> t -> bool

    val covers : t -> t -> bool
    (** [covers p q]: [q]'s address space is a (non-strict) subset of
        [p]'s — the paper's "P covers π". *)

    val contains_addr : t -> addr -> bool

    val split : t -> t * t
    (** The two length+1 halves. Raises [Invalid_argument] on a host
        prefix. *)

    val to_string : t -> string

    val of_string : string -> t option
    (** Parses ["a.b.c.d/len"]; rejects non-canonical prefixes such as
        10.0.0.1/8. *)

    val of_string_exn : string -> t
    val pp : Format.formatter -> t -> unit
  end

  (** Inclusive address ranges. *)
  module Range : sig
    type t

    val make : addr -> addr -> t
    (** Raises [Invalid_argument] when [lo > hi]. *)

    val lo : t -> addr
    val hi : t -> addr
    val of_prefix : Prefix.t -> t
    val compare : t -> t -> int
    val equal : t -> t -> bool
    val contains_addr : t -> addr -> bool
    val subset : t -> t -> bool
    val overlaps : t -> t -> bool

    val to_prefixes : t -> Prefix.t list
    (** Minimal CIDR decomposition. *)

    val to_string : t -> string

    val of_string : string -> t option
    (** Parses ["lo-hi"] or a bare prefix. *)

    val pp : Format.formatter -> t -> unit
  end

  (** Normalized resource sets: sorted, disjoint, maximally merged ranges. *)
  module Set : sig
    type t

    val empty : t
    val is_empty : t -> bool
    val of_ranges : Range.t list -> t
    val of_prefixes : Prefix.t list -> t
    val of_prefix : Prefix.t -> t
    val of_range : Range.t -> t

    val full : t
    (** The whole address space. *)

    val to_ranges : t -> Range.t list
    val to_prefixes : t -> Prefix.t list
    val union : t -> t -> t
    val inter : t -> t -> t

    val diff : t -> t -> t
    (** [diff a b] is [a \ b] — the whack-planning primitive. *)

    val equal : t -> t -> bool
    val subset : t -> t -> bool
    val overlaps : t -> t -> bool
    val mem_addr : t -> addr -> bool
    val mem_prefix : t -> Prefix.t -> bool
    val mem_range : t -> Range.t -> bool

    val cardinal_opt : t -> int option
    (** Number of addresses when it fits in an int (always for IPv4). *)

    val to_string : t -> string
    val pp : Format.formatter -> t -> unit
  end

  (** Binary trie keyed by prefixes: the index for route tables and
      route-origin validation. *)
  module Trie : sig
    type 'a t

    val empty : 'a t
    val insert : 'a t -> Prefix.t -> 'a -> 'a t

    val insert_with : combine:('a -> 'a -> 'a) -> 'a t -> Prefix.t -> 'a -> 'a t
    (** Like {!insert} but merges with an existing value. *)

    val remove : 'a t -> Prefix.t -> 'a t
    val find_exact : 'a t -> Prefix.t -> 'a option

    val longest_match : 'a t -> Prefix.t -> (Prefix.t * 'a) option
    (** The deepest entry whose prefix covers the query. *)

    val covering : 'a t -> Prefix.t -> (Prefix.t * 'a) list
    (** Entries whose prefix covers the query, shortest first. *)

    val covered : 'a t -> Prefix.t -> (Prefix.t * 'a) list
    (** Entries covered by the query. *)

    val fold : (Prefix.t -> 'a -> 'b -> 'b) -> 'a t -> 'b -> 'b
    val to_list : 'a t -> (Prefix.t * 'a) list
    val cardinal : 'a t -> int
    val of_list : (Prefix.t * 'a) list -> 'a t
  end
end
