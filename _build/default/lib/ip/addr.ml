(* IP addresses, generically.

   Everything downstream (prefixes, ranges, resource sets, tries) is written
   against [S] so that IPv4 and IPv6 share one implementation.  IPv4
   addresses live in a native int (32 bits fit easily in OCaml's 63-bit
   ints); IPv6 addresses are a pair of int64s. *)

module type S = sig
  type t

  val bits : int
  (** address width in bits: 32 or 128 *)

  val zero : t
  val max_addr : t
  val compare : t -> t -> int
  val equal : t -> t -> bool

  val succ : t -> t
  (** next address; [succ max_addr] is undefined, callers guard with compare *)

  val pred : t -> t

  val testbit : t -> int -> bool
  (** [testbit a i] is bit [i] counting from the most significant bit (i=0) *)

  val network : t -> int -> t
  (** [network a len] clears all but the top [len] bits *)

  val broadcast : t -> int -> t
  (** [network a len] with all host bits set *)

  val set_bit : t -> int -> t
  (** set bit [i] (MSB-first index) *)

  val to_string : t -> string
  val of_string : string -> t option
end

module V4 : S with type t = int = struct
  type t = int

  let bits = 32
  let zero = 0
  let max_addr = 0xFFFFFFFF
  let compare = Stdlib.compare
  let equal = Int.equal
  let succ a = a + 1
  let pred a = a - 1
  let testbit a i = (a lsr (31 - i)) land 1 = 1

  let host_mask len = if len >= 32 then 0 else (1 lsl (32 - len)) - 1
  let network a len = a land lnot (host_mask len) land max_addr
  let broadcast a len = a lor host_mask len
  let set_bit a i = a lor (1 lsl (31 - i))

  let to_string a =
    Printf.sprintf "%d.%d.%d.%d" ((a lsr 24) land 0xff) ((a lsr 16) land 0xff)
      ((a lsr 8) land 0xff) (a land 0xff)

  let of_string s =
    match String.split_on_char '.' s with
    | [ a; b; c; d ] -> (
      try
        let parse x =
          if x = "" || String.length x > 3 then failwith "octet";
          String.iter (fun c -> if c < '0' || c > '9' then failwith "octet") x;
          let v = int_of_string x in
          if v > 255 then failwith "octet" else v
        in
        Some ((parse a lsl 24) lor (parse b lsl 16) lor (parse c lsl 8) lor parse d)
      with _ -> None)
    | _ -> None
end

module V6 : S with type t = int64 * int64 = struct
  type t = int64 * int64 (* (high 64 bits, low 64 bits) *)

  let bits = 128
  let zero = (0L, 0L)
  let max_addr = (-1L, -1L)

  (* int64 comparison treating values as unsigned *)
  let ucmp a b = Int64.unsigned_compare a b

  let compare (ah, al) (bh, bl) =
    let c = ucmp ah bh in
    if c <> 0 then c else ucmp al bl

  let equal a b = compare a b = 0

  let succ (h, l) = if l = -1L then (Int64.add h 1L, 0L) else (h, Int64.add l 1L)
  let pred (h, l) = if l = 0L then (Int64.sub h 1L, -1L) else (h, Int64.sub l 1L)

  let testbit (h, l) i =
    if i < 64 then Int64.logand (Int64.shift_right_logical h (63 - i)) 1L = 1L
    else Int64.logand (Int64.shift_right_logical l (127 - i)) 1L = 1L

  (* mask with the top [len] bits of a 64-bit word set *)
  let top_mask len =
    if len <= 0 then 0L else if len >= 64 then -1L else Int64.shift_left (-1L) (64 - len)

  let network (h, l) len = (Int64.logand h (top_mask len), Int64.logand l (top_mask (len - 64)))

  let broadcast (h, l) len =
    (Int64.logor h (Int64.lognot (top_mask len)), Int64.logor l (Int64.lognot (top_mask (len - 64))))

  let set_bit (h, l) i =
    if i < 64 then (Int64.logor h (Int64.shift_left 1L (63 - i)), l)
    else (h, Int64.logor l (Int64.shift_left 1L (127 - i)))

  let group (h, l) i =
    (* 16-bit group [i] of 8, left to right *)
    let word = if i < 4 then h else l in
    let sh = 48 - (16 * (i mod 4)) in
    Int64.to_int (Int64.logand (Int64.shift_right_logical word sh) 0xffffL)

  let to_string a =
    (* canonical RFC 5952-ish: compress the longest zero run *)
    let groups = Array.init 8 (group a) in
    let best_start = ref (-1) and best_len = ref 0 in
    let i = ref 0 in
    while !i < 8 do
      if groups.(!i) = 0 then begin
        let j = ref !i in
        while !j < 8 && groups.(!j) = 0 do incr j done;
        if !j - !i > !best_len then begin
          best_len := !j - !i;
          best_start := !i
        end;
        i := !j
      end
      else incr i
    done;
    if !best_len < 2 then
      String.concat ":" (Array.to_list (Array.map (Printf.sprintf "%x") groups))
    else begin
      let part lo hi =
        String.concat ":"
          (List.filter_map
             (fun k -> if k >= lo && k < hi then Some (Printf.sprintf "%x" groups.(k)) else None)
             [ 0; 1; 2; 3; 4; 5; 6; 7 ])
      in
      part 0 !best_start ^ "::" ^ part (!best_start + !best_len) 8
    end

  let parse_group g =
    if g = "" || String.length g > 4 then None
    else begin
      let ok = String.for_all (function '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> true | _ -> false) g in
      if not ok then None else Some (int_of_string ("0x" ^ g))
    end

  let build groups =
    if List.length groups <> 8 then None
    else begin
      let arr = Array.of_list groups in
      let word lo =
        let w = ref 0L in
        for k = lo to lo + 3 do
          w := Int64.logor (Int64.shift_left !w 16) (Int64.of_int arr.(k))
        done;
        !w
      in
      Some (word 0, word 4)
    end

  let all_some l =
    List.fold_right
      (fun x acc -> match (x, acc) with Some v, Some a -> Some (v :: a) | _ -> None)
      l (Some [])

  (* Split a textual v6 address on an optional single "::" and expand the
     elided zero groups. *)
  let of_string s =
    let split_groups part =
      if part = "" then Some [] else all_some (List.map parse_group (String.split_on_char ':' part))
    in
    let find_double s =
      let n = String.length s in
      let rec go i = if i + 1 >= n then None else if s.[i] = ':' && s.[i + 1] = ':' then Some i else go (i + 1) in
      go 0
    in
    match find_double s with
    | None -> (
      match split_groups s with
      | Some gs when List.length gs = 8 -> build gs
      | _ -> None)
    | Some i -> (
      let left = String.sub s 0 i in
      let right = String.sub s (i + 2) (String.length s - i - 2) in
      (* a second "::" is illegal *)
      if find_double right <> None then None
      else
        match (split_groups left, split_groups right) with
        | Some l, Some r when List.length l + List.length r < 8 ->
          let fill = List.init (8 - List.length l - List.length r) (fun _ -> 0) in
          build (l @ fill @ r)
        | _ -> None)
end
