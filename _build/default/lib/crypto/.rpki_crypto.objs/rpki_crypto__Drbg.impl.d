lib/crypto/drbg.ml: Buffer Char Hmac Int64 Rpki_util String
