lib/crypto/rsa.mli: Format Nat Rpki_bignum Rpki_util
