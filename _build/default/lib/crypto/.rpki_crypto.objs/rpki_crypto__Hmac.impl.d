lib/crypto/hmac.ml: Char Rpki_util Sha256 String
