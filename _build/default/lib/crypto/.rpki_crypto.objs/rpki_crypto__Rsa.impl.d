lib/crypto/rsa.ml: Format Nat Prime Printf Rpki_bignum Rpki_util Sha256 String Zint
