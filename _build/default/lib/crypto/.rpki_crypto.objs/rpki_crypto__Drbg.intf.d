lib/crypto/drbg.mli: Rpki_util
