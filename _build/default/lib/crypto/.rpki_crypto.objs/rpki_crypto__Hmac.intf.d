lib/crypto/hmac.mli:
