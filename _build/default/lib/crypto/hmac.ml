(* HMAC-SHA256 (RFC 2104 / FIPS 198-1). *)

let block_size = 64

let normalize_key key =
  let key = if String.length key > block_size then Sha256.digest key else key in
  key ^ String.make (block_size - String.length key) '\x00'

let xor_pad key byte = String.map (fun c -> Char.chr (Char.code c lxor byte)) key

let sha256 ~key msg =
  let key = normalize_key key in
  let inner = Sha256.digest (xor_pad key 0x36 ^ msg) in
  Sha256.digest (xor_pad key 0x5c ^ inner)

let hex ~key msg = Rpki_util.Hex.of_string (sha256 ~key msg)

(* Constant-time comparison; timing is irrelevant in a simulator but the
   discipline costs nothing. *)
let equal_digest a b =
  String.length a = String.length b
  && begin
       let acc = ref 0 in
       String.iteri (fun i c -> acc := !acc lor (Char.code c lxor Char.code b.[i])) a;
       !acc = 0
     end
