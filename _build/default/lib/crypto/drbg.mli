(** HMAC-DRBG (NIST SP 800-90A) over HMAC-SHA256.

    RSA key generation draws candidate primes from a DRBG seeded with the
    authority's name, making every hierarchy deterministic while exercising
    real keygen. *)

type t
(** DRBG instance state. *)

val create : seed:string -> t

val reseed : t -> seed:string -> unit
(** Mix additional entropy into the state. *)

val generate : t -> int -> string
(** [generate t n] is [n] pseudo-random bytes, advancing the state. *)

val to_rng : t -> Rpki_util.Rng.t
(** Derive an {!Rpki_util.Rng.t} whose seed comes from the DRBG stream, for
    APIs that consume the generic RNG interface. *)
