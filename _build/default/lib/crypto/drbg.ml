(* HMAC-DRBG (NIST SP 800-90A) instantiated with HMAC-SHA256.

   RSA key generation draws its candidate primes from a DRBG seeded with the
   authority's name, which makes every certificate hierarchy in tests and
   experiments fully deterministic while still exercising real keygen. *)

type t = { mutable key : string; mutable v : string }

let update t provided =
  t.key <- Hmac.sha256 ~key:t.key (t.v ^ "\x00" ^ provided);
  t.v <- Hmac.sha256 ~key:t.key t.v;
  if provided <> "" then begin
    t.key <- Hmac.sha256 ~key:t.key (t.v ^ "\x01" ^ provided);
    t.v <- Hmac.sha256 ~key:t.key t.v
  end

let create ~seed =
  let t = { key = String.make 32 '\x00'; v = String.make 32 '\x01' } in
  update t seed;
  t

let reseed t ~seed = update t seed

let generate t n =
  let buf = Buffer.create n in
  while Buffer.length buf < n do
    t.v <- Hmac.sha256 ~key:t.key t.v;
    Buffer.add_string buf t.v
  done;
  update t "";
  String.sub (Buffer.contents buf) 0 n

(* Adapt a DRBG to the [Rpki_util.Rng] byte interface used by [Prime]. *)
let to_rng t =
  (* Seed a SplitMix with DRBG output: Prime only needs uniform bytes and the
     DRBG remains the single source of entropy. *)
  let s = generate t 8 in
  let seed = ref 0L in
  String.iter (fun c -> seed := Int64.logor (Int64.shift_left !seed 8) (Int64.of_int (Char.code c))) s;
  Rpki_util.Rng.of_int64 !seed
