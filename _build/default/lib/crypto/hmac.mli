(** HMAC-SHA256 (RFC 2104 / FIPS 198-1), vector-tested against RFC 4231. *)

val block_size : int
(** The SHA-256 block size (64 bytes). *)

val sha256 : key:string -> string -> string
(** [sha256 ~key msg] is the 32-byte MAC. Long keys are pre-hashed. *)

val hex : key:string -> string -> string
(** {!sha256} rendered in lowercase hex. *)

val equal_digest : string -> string -> bool
(** Constant-time comparison of equal-length digests. *)
