lib/sim/deployment.mli: Origin_validation Route Rpki_core Rpki_ip V4 Vrp
