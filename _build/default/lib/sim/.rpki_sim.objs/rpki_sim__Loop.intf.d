lib/sim/loop.mli: Data_plane Format Model Policy Propagation Pub_point Relying_party Rpki_bgp Rpki_core Rpki_ip Rpki_repo Rtime Topology Universe
