lib/sim/deployment.ml: List Origin_validation Printf Route Rpki_core Rpki_ip Rpki_util V4 Vrp
