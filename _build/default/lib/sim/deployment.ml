(* Partial-deployment modelling (Side Effect 5).

   "A new ROA can cause many routes to become invalid": if a large network
   issues a ROA for a covering prefix before its customers' subprefix ROAs
   exist, every customer route flips from unknown to invalid.  The paper
   points at Wählisch et al.'s measurement of exactly this in the production
   RPKI.

   The model works at the VRP level (no crypto needed): providers hold large
   prefixes and announce them; customers announce subprefixes with their own
   origin ASes; adoption is a fraction of customers with ROAs.  We then
   sweep the customer-adoption fraction and count validity flips when the
   providers issue their covering ROAs. *)

open Rpki_core
open Rpki_ip

type customer = { route : Route.t; has_roa : bool }

type provider = {
  name : string;
  prefix : V4.Prefix.t;
  asn : int;
  customers : customer list;
}

type world = { providers : provider list }

type spec = {
  n_providers : int;
  customers_per_provider : int;
  customer_adoption : float; (* fraction of customers with their own ROA *)
  seed : int;
}

let default_spec = { n_providers = 50; customers_per_provider = 25; customer_adoption = 0.5; seed = 3 }

let generate (spec : spec) =
  let rng = Rpki_util.Rng.create spec.seed in
  let providers =
    List.init spec.n_providers (fun i ->
        let prefix = V4.Prefix.make ((16 + (i mod 200)) lsl 24) 12 in
        let asn = 2000 + i in
        let customers =
          List.init spec.customers_per_provider (fun j ->
              (* distinct /20 subprefixes *)
              let sub = V4.Prefix.make (V4.Prefix.addr prefix + (j lsl 12)) 20 in
              { route = Route.make sub (30000 + (i * 100) + j);
                has_roa = Rpki_util.Rng.float rng < spec.customer_adoption })
        in
        { name = Printf.sprintf "P%02d" i; prefix; asn; customers })
  in
  { providers }

let routes world =
  List.concat_map
    (fun p -> Route.make p.prefix p.asn :: List.map (fun c -> c.route) p.customers)
    world.providers

(* VRPs before/after the providers issue covering ROAs. *)
let customer_vrps world =
  List.concat_map
    (fun p ->
      List.filter_map
        (fun c -> if c.has_roa then Some (Vrp.make c.route.Route.prefix c.route.Route.origin) else None)
        p.customers)
    world.providers

let provider_vrps world =
  List.map (fun p -> Vrp.make ~max_len:(V4.Prefix.len p.prefix) p.prefix p.asn) world.providers

type counts = { valid : int; invalid : int; unknown : int }

let count_states idx routes =
  List.fold_left
    (fun acc r ->
      match Origin_validation.classify idx r with
      | Origin_validation.Valid -> { acc with valid = acc.valid + 1 }
      | Origin_validation.Invalid -> { acc with invalid = acc.invalid + 1 }
      | Origin_validation.Unknown -> { acc with unknown = acc.unknown + 1 })
    { valid = 0; invalid = 0; unknown = 0 }
    routes

type row = {
  adoption : float;
  total_routes : int;
  before : counts; (* only customer ROAs exist *)
  after : counts;  (* providers issued covering ROAs *)
  flips : int;     (* routes that went unknown -> invalid *)
}

let run_once spec =
  let world = generate spec in
  let rs = routes world in
  let before_idx = Origin_validation.build (customer_vrps world) in
  let after_idx = Origin_validation.build (customer_vrps world @ provider_vrps world) in
  let before = count_states before_idx rs in
  let after = count_states after_idx rs in
  let flips =
    List.length
      (List.filter
         (fun r ->
           Origin_validation.equal_state (Origin_validation.classify before_idx r) Unknown
           && Origin_validation.equal_state (Origin_validation.classify after_idx r) Invalid)
         rs)
  in
  { adoption = spec.customer_adoption;
    total_routes = List.length rs;
    before;
    after;
    flips }

(* The Side Effect 5 sweep: flips as a function of customer adoption. *)
let sweep ?(spec = default_spec) ?(fractions = [ 0.0; 0.25; 0.5; 0.75; 0.9; 1.0 ]) () =
  List.map (fun f -> run_once { spec with customer_adoption = f }) fractions

(* The ordering ablation: issuing subprefix ROAs first leaves no window of
   invalidity, issuing the covering ROA first opens one (the paper's
   deployment rule). *)
type ordering = Cover_first | Subprefixes_first

let invalid_window ~spec ordering =
  let world = generate { spec with customer_adoption = 1.0 } in
  let rs = routes world in
  let mid_vrps =
    match ordering with
    | Cover_first -> provider_vrps world
    | Subprefixes_first -> customer_vrps world
  in
  let mid = count_states (Origin_validation.build mid_vrps) rs in
  mid.invalid
