(** Partial-deployment modelling (Side Effect 5).

    "A new ROA can cause many routes to become invalid": if a large network
    issues a covering ROA before its customers' subprefix ROAs exist, every
    unprotected customer route flips unknown -> invalid.  The model works at
    the VRP level; providers hold large prefixes, customers announce
    subprefixes with their own origins, adoption is the fraction of
    customers holding ROAs. *)

open Rpki_core
open Rpki_ip

type customer = { route : Route.t; has_roa : bool }

type provider = {
  name : string;
  prefix : V4.Prefix.t;
  asn : int;
  customers : customer list;
}

type world = { providers : provider list }

type spec = {
  n_providers : int;
  customers_per_provider : int;
  customer_adoption : float;
  seed : int;
}

val default_spec : spec
(** 50 providers x 25 customers. *)

val generate : spec -> world
val routes : world -> Route.t list
val customer_vrps : world -> Vrp.t list
val provider_vrps : world -> Vrp.t list

type counts = { valid : int; invalid : int; unknown : int }

val count_states : Origin_validation.index -> Route.t list -> counts

type row = {
  adoption : float;
  total_routes : int;
  before : counts; (** only customer ROAs exist *)
  after : counts;  (** providers issued covering ROAs *)
  flips : int;     (** routes that went unknown -> invalid *)
}

val run_once : spec -> row

val sweep : ?spec:spec -> ?fractions:float list -> unit -> row list
(** The Side Effect 5 series: flips as a function of customer adoption. *)

type ordering = Cover_first | Subprefixes_first

val invalid_window : spec:spec -> ordering -> int
(** Routes invalid mid-deployment under each issuance order — the paper's
    deployment rule, quantified. *)
