examples/hijack_lab.ml: Data_plane Hijack List Origin_validation Policy Printf Propagation Rpki_bgp Rpki_core Rpki_ip Rpki_util Topo_gen Topology V4 Vrp
