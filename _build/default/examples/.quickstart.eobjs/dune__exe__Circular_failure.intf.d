examples/circular_failure.mli:
