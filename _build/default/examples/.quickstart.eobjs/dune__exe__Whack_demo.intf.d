examples/whack_demo.mli:
