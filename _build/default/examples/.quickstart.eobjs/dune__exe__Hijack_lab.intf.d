examples/hijack_lab.mli:
