examples/circular_failure.ml: Format List Loop Policy Printf Rpki_bgp Rpki_sim
