examples/quickstart.ml: Authority List Origin_validation Printf Relying_party Resources Roa Route Rpki_core Rpki_ip Rpki_repo Rpki_rtr Rtime Universe V4 Vrp
