examples/quickstart.mli:
