examples/whack_demo.ml: Format List Model Origin_validation Printf Relying_party Route Rpki_attack Rpki_core Rpki_ip Rpki_monitor Rpki_repo V4 Whack
