(* A hijack laboratory on a synthetic Internet.

   Run with: dune exec examples/hijack_lab.exe

   Generates a 124-AS provider/customer/peer topology, gives a stub AS a
   ROA-protected prefix, and measures — for every relying-party policy —
   what fraction of the Internet still reaches the victim during:
     (a) an exact-prefix hijack,
     (b) a subprefix hijack,
     (c) an RPKI manipulation that leaves the victim's route invalid.
   This is Table 6 measured rather than argued. *)

open Rpki_core
open Rpki_bgp
open Rpki_ip

let () =
  let g = Topo_gen.generate Topo_gen.default_spec in
  let victim = List.hd g.Topo_gen.stub_asns in
  let attacker = List.nth g.Topo_gen.stub_asns 42 in
  let victim_prefix = V4.p "203.0.112.0/20" in
  let dst = V4.addr_of_string_exn "203.0.119.80" in
  Printf.printf "topology: %d ASes; victim AS%d holds %s; attacker AS%d\n"
    (List.length (Topology.asns g.Topo_gen.topo))
    victim (V4.Prefix.to_string victim_prefix) attacker;

  (* normal RPKI state: the victim has a ROA *)
  let protected_idx = Origin_validation.build [ Vrp.make ~max_len:20 victim_prefix victim ] in
  (* manipulated state: the victim's ROA is whacked while a covering ROA
     (issued for the provider's /12) remains *)
  let whacked_idx =
    Origin_validation.build [ Vrp.make ~max_len:13 (V4.p "203.0.0.0/12") 64500 ]
  in

  let legit = [ { Propagation.prefix = victim_prefix; origin = victim } ] in
  let sub = Hijack.subprefix_containing ~victim_prefix ~addr:dst ~len:24 in
  let scenarios =
    [ ("no attack", protected_idx, legit);
      ( "prefix hijack",
        protected_idx,
        Hijack.announcements ~victim_prefix ~victim_as:victim ~attacker_as:attacker
          Hijack.Prefix_hijack );
      ( "subprefix hijack",
        protected_idx,
        Hijack.announcements ~victim_prefix ~victim_as:victim ~attacker_as:attacker
          (Hijack.Subprefix_hijack sub) );
      ("RPKI manipulation (ROA whacked)", whacked_idx, legit) ]
  in
  let t =
    Rpki_util.Table.create
      ~aligns:Rpki_util.Table.[ Left; Right; Right; Right ]
      [ "scenario"; "drop invalid"; "depref invalid"; "ignore RPKI" ]
  in
  List.iter
    (fun (name, idx, anns) ->
      let frac policy =
        let net =
          Data_plane.build ~topo:g.Topo_gen.topo ~policy_of:(fun _ -> policy)
            ~validity_of:(Origin_validation.classify idx) anns
        in
        Printf.sprintf "%.2f" (Data_plane.reachability_fraction net ~addr:dst ~expected:victim)
      in
      Rpki_util.Table.add_row t
        [ name; frac Policy.Drop_invalid; frac Policy.Depref_invalid; frac Policy.Ignore_rpki ])
    scenarios;
  print_endline "\nfraction of ASes whose traffic reaches the victim:";
  Rpki_util.Table.print t;
  print_endline
    "\nReading the columns: drop-invalid wins both hijack rows but loses the manipulation\n\
     row; depref/ignore survive manipulation but lose the subprefix hijack. There is no\n\
     column that wins everywhere — the paper's 'difficult tradeoff'."
