(* Section 6's circular dependency, as a watchable timeline.

   Run with: dune exec examples/circular_failure.exe

   Continental Broadband hosts its own RPKI repository at 63.174.23.0
   inside its own certified prefix.  A one-tick corruption of the ROA that
   validates the route to that repository becomes a *permanent* outage for
   a relying party that drops invalid routes — and heals by itself under
   depref-invalid.  This is Side Effect 7. *)

open Rpki_bgp
open Rpki_sim

let show policy =
  Printf.printf "\n=== relying party policy: %s ===\n" (Policy.to_string policy);
  let _, hist = Loop.run_section6 ~policy () in
  List.iter
    (fun (r : Loop.tick_record) ->
      let mark =
        match r.Loop.time with
        | 3 -> "  <- transient fault: RP receives a corrupted ROA"
        | 4 -> "  <- repository repaired"
        | _ -> ""
      in
      Format.printf "%a%s@." Loop.pp_record r mark)
    hist;
  let final = List.nth hist (List.length hist - 1) in
  let up = List.assoc "continental-repo" final.Loop.probe_results in
  Printf.printf "outcome: continental repository is %s four ticks after the repair\n"
    (if up then "REACHABLE again" else "STILL UNREACHABLE")

let () =
  print_endline
    "Circularity: the ROA authorizing the route to Continental's repository is stored\n\
     AT that repository.  Lose the ROA and (under drop-invalid) you lose the route;\n\
     lose the route and you cannot re-fetch the ROA.";
  show Policy.Drop_invalid;
  show Policy.Depref_invalid;
  print_endline
    "\nThe tradeoff of Table 6, closed into a loop: the policy that protects BGP best\n\
     (drop invalid) is the one that turns a transient RPKI fault into a persistent one."
