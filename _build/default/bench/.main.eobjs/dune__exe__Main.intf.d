bench/main.mli:
