(* Tests for SHA-256, HMAC, HMAC-DRBG and RSA against published vectors. *)

open Rpki_crypto

(* --- SHA-256 (FIPS 180-4 / NIST CAVP vectors) --- *)

let sha_vectors =
  [ ("", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
    ("abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
    ( "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1" );
    ( "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno\
       ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
      "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1" );
    ("a", "ca978112ca1bbdcafac231b39a23dc4da786eff8147c4e72b9807785afee48bb") ]

let test_sha_vectors () =
  List.iter
    (fun (msg, want) -> Alcotest.(check string) (String.sub want 0 8) want (Sha256.hexdigest msg))
    sha_vectors

let test_sha_million_a () =
  Alcotest.(check string) "10^6 x a" "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (Sha256.hexdigest (String.make 1_000_000 'a'))

let test_sha_boundary_lengths () =
  (* padding boundaries: 55, 56, 63, 64, 65 bytes *)
  List.iter
    (fun n ->
      let s = String.make n 'x' in
      let ctx = Sha256.init () in
      String.iter (fun c -> Sha256.feed ctx (String.make 1 c)) s;
      Alcotest.(check string)
        (Printf.sprintf "len %d" n)
        (Sha256.hexdigest s)
        (Rpki_util.Hex.of_string (Sha256.finish ctx)))
    [ 0; 1; 55; 56; 63; 64; 65; 127; 128; 129 ]

let prop_incremental =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"chunked feed = one shot"
       QCheck.(pair (string_of_size (Gen.int_bound 300)) (int_bound 300))
       (fun (s, cut) ->
         let cut = if String.length s = 0 then 0 else cut mod (String.length s + 1) in
         let ctx = Sha256.init () in
         Sha256.feed ctx (String.sub s 0 cut);
         Sha256.feed ctx (String.sub s cut (String.length s - cut));
         String.equal (Sha256.finish ctx) (Sha256.digest s)))

(* --- HMAC (RFC 4231) --- *)

let test_hmac_rfc4231 () =
  let check name key data want = Alcotest.(check string) name want (Hmac.hex ~key data) in
  check "case 1" (String.make 20 '\x0b') "Hi There"
    "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7";
  check "case 2" "Jefe" "what do ya want for nothing?"
    "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843";
  check "case 3" (String.make 20 '\xaa') (String.make 50 '\xdd')
    "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe";
  (* case 6: key longer than a block *)
  check "case 6" (String.make 131 '\xaa') "Test Using Larger Than Block-Size Key - Hash Key First"
    "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"

let test_hmac_equal_digest () =
  Alcotest.(check bool) "equal" true (Hmac.equal_digest "abc" "abc");
  Alcotest.(check bool) "unequal" false (Hmac.equal_digest "abc" "abd");
  Alcotest.(check bool) "length mismatch" false (Hmac.equal_digest "abc" "abcd")

(* --- DRBG --- *)

let test_drbg_deterministic () =
  let a = Drbg.create ~seed:"seed-1" and b = Drbg.create ~seed:"seed-1" in
  Alcotest.(check string) "same seed, same stream" (Drbg.generate a 64) (Drbg.generate b 64);
  let c = Drbg.create ~seed:"seed-2" in
  Alcotest.(check bool) "different seed" false
    (String.equal (Drbg.generate (Drbg.create ~seed:"seed-1") 64) (Drbg.generate c 64))

let test_drbg_reseed () =
  let a = Drbg.create ~seed:"seed-1" in
  let before = Drbg.generate a 32 in
  Drbg.reseed a ~seed:"more entropy";
  let after = Drbg.generate a 32 in
  Alcotest.(check bool) "stream changes" false (String.equal before after)

let test_drbg_requests_span_blocks () =
  (* one big request equals nothing in particular, but lengths must be exact *)
  let a = Drbg.create ~seed:"x" in
  List.iter (fun n -> Alcotest.(check int) "length" n (String.length (Drbg.generate a n)))
    [ 1; 31; 32; 33; 64; 100 ]

(* --- RSA --- *)

let keypair =
  lazy (Rsa.generate (Drbg.to_rng (Drbg.create ~seed:"test-rsa-keypair")))

let test_rsa_roundtrip () =
  let kp = Lazy.force keypair in
  let msg = "the quick brown fox" in
  let s = Rsa.sign ~key:kp.Rsa.private_ msg in
  Alcotest.(check bool) "verifies" true (Rsa.verify ~key:kp.Rsa.public ~signature:s msg);
  Alcotest.(check int) "signature width" (Rsa.modulus_bytes kp.Rsa.public) (String.length s)

let test_rsa_rejects_tamper () =
  let kp = Lazy.force keypair in
  let msg = "attack at dawn" in
  let s = Rsa.sign ~key:kp.Rsa.private_ msg in
  Alcotest.(check bool) "wrong msg" false (Rsa.verify ~key:kp.Rsa.public ~signature:s "attack at dusk");
  let s' = Bytes.of_string s in
  Bytes.set s' 3 (Char.chr (Char.code (Bytes.get s' 3) lxor 0x40));
  Alcotest.(check bool) "flipped bit" false
    (Rsa.verify ~key:kp.Rsa.public ~signature:(Bytes.to_string s') msg);
  Alcotest.(check bool) "truncated" false
    (Rsa.verify ~key:kp.Rsa.public ~signature:(String.sub s 0 (String.length s - 1)) msg)

let test_rsa_wrong_key () =
  let kp = Lazy.force keypair in
  let other = Rsa.generate (Drbg.to_rng (Drbg.create ~seed:"another key")) in
  let s = Rsa.sign ~key:kp.Rsa.private_ "msg" in
  Alcotest.(check bool) "other key" false (Rsa.verify ~key:other.Rsa.public ~signature:s "msg")

let test_rsa_deterministic_keygen () =
  let a = Rsa.generate (Drbg.to_rng (Drbg.create ~seed:"same")) in
  let b = Rsa.generate (Drbg.to_rng (Drbg.create ~seed:"same")) in
  Alcotest.(check bool) "same key" true (Rsa.equal_public a.Rsa.public b.Rsa.public);
  Alcotest.(check string) "same key id" (Rsa.key_id a.Rsa.public) (Rsa.key_id b.Rsa.public)

let test_rsa_min_bits () =
  Alcotest.(check bool) "too small raises" true
    (try
       ignore (Rsa.generate ~bits:256 (Drbg.to_rng (Drbg.create ~seed:"small")));
       false
     with Invalid_argument _ -> true)

let prop_rsa_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:25 ~name:"sign/verify roundtrip"
       QCheck.(string_of_size (Gen.int_bound 200))
       (fun msg ->
         let kp = Lazy.force keypair in
         Rsa.verify ~key:kp.Rsa.public ~signature:(Rsa.sign ~key:kp.Rsa.private_ msg) msg))

let () =
  Alcotest.run "crypto"
    [ ( "sha256",
        [ Alcotest.test_case "FIPS vectors" `Quick test_sha_vectors;
          Alcotest.test_case "million a" `Slow test_sha_million_a;
          Alcotest.test_case "padding boundaries" `Quick test_sha_boundary_lengths;
          prop_incremental ] );
      ( "hmac",
        [ Alcotest.test_case "RFC 4231 vectors" `Quick test_hmac_rfc4231;
          Alcotest.test_case "constant-time equality" `Quick test_hmac_equal_digest ] );
      ( "drbg",
        [ Alcotest.test_case "determinism" `Quick test_drbg_deterministic;
          Alcotest.test_case "reseed" `Quick test_drbg_reseed;
          Alcotest.test_case "request sizes" `Quick test_drbg_requests_span_blocks ] );
      ( "rsa",
        [ Alcotest.test_case "roundtrip" `Quick test_rsa_roundtrip;
          Alcotest.test_case "tamper rejection" `Quick test_rsa_rejects_tamper;
          Alcotest.test_case "wrong key" `Quick test_rsa_wrong_key;
          Alcotest.test_case "deterministic keygen" `Quick test_rsa_deterministic_keygen;
          Alcotest.test_case "minimum modulus" `Quick test_rsa_min_bits;
          prop_rsa_roundtrip ] ) ]
