(* Tests for the cross-jurisdiction analysis (Table 4). *)

open Rpki_juris

let test_country_table () =
  Alcotest.(check bool) "US is ARIN" true (Country.rir_of_country "US" = Some Country.ARIN);
  Alcotest.(check bool) "FR is RIPE" true (Country.rir_of_country "FR" = Some Country.RIPE);
  Alcotest.(check bool) "unknown" true (Country.rir_of_country "XX" = None);
  Alcotest.(check bool) "in jurisdiction" true (Country.in_jurisdiction ~rir:Country.ARIN "CA");
  Alcotest.(check bool) "out of jurisdiction" false (Country.in_jurisdiction ~rir:Country.ARIN "FR");
  Alcotest.(check bool) "unknown is out" false (Country.in_jurisdiction ~rir:Country.ARIN "XX");
  Alcotest.(check bool) "arin countries nonempty" true (Country.countries_of_rir Country.ARIN <> [])

let test_every_paper_country_known () =
  (* every country code in the paper's Table 4 must be mapped *)
  List.iter
    (fun (_, _, _, _, countries) ->
      List.iter
        (fun cc -> Alcotest.(check bool) cc true (Country.known cc))
        countries)
    Dataset.paper_rows

let test_paper_fixture_reproduces_table4 () =
  let records = Dataset.paper_fixture () in
  Alcotest.(check int) "nine RCs" 9 (List.length records);
  let exposures = Analysis.cross_jurisdiction_rcs records in
  (* every row of Table 4 crosses a border by construction *)
  Alcotest.(check int) "all nine cross" 9 (List.length exposures);
  (* the reported foreign-country sets are exactly the paper's *)
  List.iter2
    (fun (holder, prefix, _, _, countries) (e : Analysis.rc_exposure) ->
      Alcotest.(check string) "holder" holder e.Analysis.record.Dataset.holder;
      Alcotest.(check string) "prefix" prefix
        (Rpki_ip.V4.Prefix.to_string e.Analysis.record.Dataset.rc_prefix);
      Alcotest.(check (list string))
        (holder ^ " countries")
        (List.sort_uniq String.compare countries)
        e.Analysis.foreign_countries)
    Dataset.paper_rows exposures

let test_home_country_not_foreign () =
  (* the holder's own (in-region) customers never count as foreign *)
  let records = Dataset.paper_fixture () in
  List.iter
    (fun (e : Analysis.rc_exposure) ->
      Alcotest.(check bool) "home excluded" false
        (List.mem e.Analysis.record.Dataset.holder_country e.Analysis.foreign_countries))
    (List.map Analysis.exposure records)

let test_rir_reach () =
  let records = Dataset.paper_fixture () in
  let reach = Analysis.rir_reach records in
  let arin = List.assoc Country.ARIN reach in
  (* "through its certification of Sprint, North America's ARIN can whack
     ROAs for Europe and the Middle East" *)
  Alcotest.(check bool) "ARIN reaches FR" true (List.mem "FR" arin);
  Alcotest.(check bool) "ARIN reaches YE" true (List.mem "YE" arin);
  (* RIPE reaches the Americas via Resilans *)
  let ripe = List.assoc Country.RIPE reach in
  Alcotest.(check bool) "RIPE reaches US" true (List.mem "US" ripe);
  (* AFRINIC certifies nothing in the fixture *)
  Alcotest.(check (list string)) "AFRINIC reach" [] (List.assoc Country.AFRINIC reach)

let test_stats () =
  let records = Dataset.paper_fixture () in
  let s = Analysis.stats records in
  Alcotest.(check int) "total" 9 s.Analysis.total_rcs;
  Alcotest.(check int) "crossing" 9 s.Analysis.cross_border_rcs;
  Alcotest.(check bool) "fraction 1.0" true (s.Analysis.fraction = 1.0);
  Alcotest.(check bool) "mean foreign > 2" true (s.Analysis.mean_foreign_countries > 2.0)

let test_synthetic_generation () =
  let records = Dataset.synthetic Dataset.default_synthetic in
  Alcotest.(check int) "provider count" Dataset.default_synthetic.Dataset.providers
    (List.length records);
  List.iter
    (fun (r : Dataset.rc_record) ->
      Alcotest.(check int) "customer count" Dataset.default_synthetic.Dataset.customers_per_provider
        (List.length r.Dataset.suballocations);
      (* suballocations live inside the RC's prefix *)
      List.iter
        (fun (s : Dataset.suballocation) ->
          Alcotest.(check bool) "covered" true
            (Rpki_ip.V4.Prefix.covers r.Dataset.rc_prefix s.Dataset.sub_prefix))
        r.Dataset.suballocations)
    records

let test_synthetic_cross_border_scales () =
  let stats_at f =
    Analysis.stats
      (Dataset.synthetic { Dataset.default_synthetic with Dataset.cross_border_fraction = f })
  in
  let s0 = stats_at 0.0 and s_half = stats_at 0.5 in
  (* without cross-border customers, almost no RC crosses (only the rare
     provider whose domestic region spans the RIR boundary — none here) *)
  Alcotest.(check bool) "more crossing at 0.5" true
    (s_half.Analysis.cross_border_rcs > s0.Analysis.cross_border_rcs);
  Alcotest.(check bool) "deterministic" true
    ((stats_at 0.5).Analysis.cross_border_rcs = s_half.Analysis.cross_border_rcs)

let () =
  Alcotest.run "juris"
    [ ( "countries",
        [ Alcotest.test_case "rir table" `Quick test_country_table;
          Alcotest.test_case "paper codes known" `Quick test_every_paper_country_known ] );
      ( "table-4",
        [ Alcotest.test_case "fixture reproduces rows" `Quick test_paper_fixture_reproduces_table4;
          Alcotest.test_case "home country excluded" `Quick test_home_country_not_foreign;
          Alcotest.test_case "rir reach" `Quick test_rir_reach;
          Alcotest.test_case "stats" `Quick test_stats ] );
      ( "synthetic",
        [ Alcotest.test_case "generation" `Quick test_synthetic_generation;
          Alcotest.test_case "cross-border scaling" `Quick test_synthetic_cross_border_scales ] ) ]
