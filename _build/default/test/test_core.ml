(* Tests for the RPKI object model, validation and route-origin validation. *)

open Rpki_core
open Rpki_crypto
open Rpki_ip

let rng_of seed = Drbg.to_rng (Drbg.create ~seed)

(* A tiny two-level hierarchy built by hand (no repositories involved). *)
let ta_key = lazy (Rsa.generate (rng_of "core-ta"))
let child_key = lazy (Rsa.generate (rng_of "core-child"))

let resources_of strs = Resources.of_v4_strings strs

let ta_cert =
  lazy
    (Cert.self_signed ~key:(Lazy.force ta_key) ~subject:"TA"
       ~resources:(resources_of [ "10.0.0.0/8" ]) ~not_before:0 ~not_after:1000
       ~repo_uri:"rsync://ta/repo" ~manifest_uri:"TA.mft" ())

let issue_child ?(resources = resources_of [ "10.1.0.0/16" ]) ?(serial = 7) ?(not_after = 500)
    ?(is_ca = true) () =
  Cert.issue ~issuer_key:(Lazy.force ta_key).Rsa.private_ ~serial ~issuer:"TA" ~subject:"Child"
    ~public_key:(Lazy.force child_key).Rsa.public ~resources ~not_before:0 ~not_after ~is_ca
    ~repo_uri:"rsync://child/repo" ~manifest_uri:"Child.mft" ()

let fail_to_string = function Ok _ -> "ok" | Error f -> Validation.failure_to_string f

let check_ok name r = Alcotest.(check string) name "ok" (fail_to_string r)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let check_fails name pattern r =
  match r with
  | Ok _ -> Alcotest.failf "%s: expected failure" name
  | Error f ->
    let s = Validation.failure_to_string f in
    if not (contains s pattern) then Alcotest.failf "%s: expected %S in %S" name pattern s

(* --- certificate encode/decode --- *)

let test_cert_roundtrip () =
  let c = issue_child () in
  match Cert.decode (Cert.encode c) with
  | Error e -> Alcotest.fail e
  | Ok c' ->
    Alcotest.(check bool) "same contents" true (Cert.same_contents c c');
    Alcotest.(check string) "same signature" c.Cert.signature c'.Cert.signature;
    Alcotest.(check (option string)) "repo uri" (Some "rsync://child/repo") c'.Cert.repo_uri

let test_cert_decode_garbage () =
  (match Cert.decode "garbage" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage decoded");
  match Cert.decode (Rpki_asn.Der.encode (Rpki_asn.Der.Sequence [])) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "wrong structure decoded"

(* --- certificate validation --- *)

let test_validate_ok () =
  check_ok "valid child" (Validation.validate_cert ~now:100 ~parent:(Lazy.force ta_cert) (issue_child ()))

let test_validate_expired () =
  check_fails "expired" "expired"
    (Validation.validate_cert ~now:501 ~parent:(Lazy.force ta_cert) (issue_child ()))

let test_validate_not_yet () =
  let c =
    Cert.issue ~issuer_key:(Lazy.force ta_key).Rsa.private_ ~serial:9 ~issuer:"TA" ~subject:"Child"
      ~public_key:(Lazy.force child_key).Rsa.public ~resources:(resources_of [ "10.1.0.0/16" ])
      ~not_before:50 ~not_after:500 ~is_ca:true ()
  in
  check_fails "not yet valid" "not yet valid"
    (Validation.validate_cert ~now:10 ~parent:(Lazy.force ta_cert) c)

let test_validate_bad_signature () =
  let c = issue_child () in
  let tampered = { c with Cert.subject = "Chold" } in
  check_fails "tampered subject" "bad signature"
    (Validation.validate_cert ~now:100 ~parent:(Lazy.force ta_cert) tampered)

let test_validate_overclaim () =
  (* child claims space outside the TA's 10.0.0.0/8 *)
  let c = issue_child ~resources:(resources_of [ "10.1.0.0/16"; "11.0.0.0/16" ]) () in
  check_fails "overclaim" "overclaim"
    (Validation.validate_cert ~now:100 ~parent:(Lazy.force ta_cert) c)

let test_validate_wrong_issuer () =
  let other = Rsa.generate (rng_of "other-ta") in
  let other_cert =
    Cert.self_signed ~key:other ~subject:"OTHER" ~resources:(resources_of [ "10.0.0.0/8" ])
      ~not_before:0 ~not_after:1000 ()
  in
  check_fails "wrong issuer" "wrong issuer"
    (Validation.validate_cert ~now:100 ~parent:other_cert (issue_child ()))

let test_validate_revoked () =
  let crl =
    Crl.issue ~ca_key:(Lazy.force ta_key).Rsa.private_ ~issuer:"TA" ~this_update:90
      ~next_update:200 ~revoked_serials:[ 7 ]
  in
  check_ok "crl itself" (Validation.validate_crl ~now:100 ~parent:(Lazy.force ta_cert) crl);
  check_fails "revoked" "revoked"
    (Validation.validate_cert ~now:100 ~parent:(Lazy.force ta_cert) ~crl (issue_child ~serial:7 ()));
  check_ok "other serial fine"
    (Validation.validate_cert ~now:100 ~parent:(Lazy.force ta_cert) ~crl (issue_child ~serial:8 ()))

let test_validate_stale_crl () =
  let crl =
    Crl.issue ~ca_key:(Lazy.force ta_key).Rsa.private_ ~issuer:"TA" ~this_update:0 ~next_update:50
      ~revoked_serials:[]
  in
  check_fails "stale" "stale" (Validation.validate_crl ~now:100 ~parent:(Lazy.force ta_cert) crl)

let test_validate_crl_bad_sig () =
  let crl =
    Crl.issue ~ca_key:(Lazy.force child_key).Rsa.private_ ~issuer:"TA" ~this_update:0
      ~next_update:500 ~revoked_serials:[]
  in
  check_fails "crl forged" "bad signature"
    (Validation.validate_crl ~now:100 ~parent:(Lazy.force ta_cert) crl)

let test_validate_trust_anchor () =
  check_ok "ta ok"
    (Validation.validate_trust_anchor ~now:100 ~expected_key:(Lazy.force ta_key).Rsa.public
       (Lazy.force ta_cert));
  let other = Rsa.generate (rng_of "impostor") in
  check_fails "key mismatch" "bad signature"
    (Validation.validate_trust_anchor ~now:100 ~expected_key:other.Rsa.public (Lazy.force ta_cert))

(* --- ROAs --- *)

let issue_roa ?(entries = [ Roa.entry ~max_len:24 (V4.p "10.1.0.0/20") ]) ?(asid = 65000) () =
  Roa.issue ~ca_key:(Lazy.force ta_key).Rsa.private_ ~ca_subject:"TA" ~serial:42
    ~rng:(rng_of "roa-ee") ~asid ~v4_entries:entries ~not_before:0 ~not_after:500 ()

let test_roa_roundtrip () =
  let r = issue_roa () in
  match Roa.decode (Roa.encode r) with
  | Error e -> Alcotest.fail e
  | Ok r' ->
    Alcotest.(check int) "asid" r.Roa.asid r'.Roa.asid;
    Alcotest.(check int) "entries" (List.length r.Roa.v4_entries) (List.length r'.Roa.v4_entries);
    Alcotest.(check string) "sig" r.Roa.signature r'.Roa.signature

let test_roa_validates () =
  match Validation.validate_roa ~now:100 ~parent:(Lazy.force ta_cert) (issue_roa ()) with
  | Ok vrps ->
    Alcotest.(check int) "one vrp" 1 (List.length vrps);
    Alcotest.(check string) "vrp" "(10.1.0.0/20-24, AS65000)" (Vrp.to_string (List.hd vrps))
  | Error f -> Alcotest.fail (Validation.failure_to_string f)

let test_roa_tamper () =
  let r = issue_roa () in
  let tampered = { r with Roa.asid = 666 } in
  check_fails "content tamper" "bad signature"
    (Validation.validate_roa ~now:100 ~parent:(Lazy.force ta_cert) tampered)

let test_roa_revoked_ee () =
  let r = issue_roa () in
  let crl =
    Crl.issue ~ca_key:(Lazy.force ta_key).Rsa.private_ ~issuer:"TA" ~this_update:90
      ~next_update:200 ~revoked_serials:[ r.Roa.ee.Cert.serial ]
  in
  check_fails "ee revoked" "revoked"
    (Validation.validate_roa ~now:100 ~parent:(Lazy.force ta_cert) ~crl r)

let test_roa_entry_maxlen () =
  Alcotest.check_raises "maxlen < len" (Invalid_argument "Roa.entry: bad max_len") (fun () ->
      ignore (Roa.entry ~max_len:19 (V4.p "10.1.0.0/20")));
  Alcotest.check_raises "maxlen > 32" (Invalid_argument "Roa.entry: bad max_len") (fun () ->
      ignore (Roa.entry ~max_len:33 (V4.p "10.1.0.0/20")))

let test_roa_v6 () =
  (* a dual-stack ROA: v6 entries flow through issue/validate/roundtrip *)
  let ta6_key = Rsa.generate (rng_of "core-ta6") in
  let resources =
    Resources.make
      ~v4:(V4.Set.of_prefix (V4.p "10.0.0.0/8"))
      ~v6:(V6.Set.of_prefix (V6.p "2001:db8::/32"))
      ()
  in
  let ta6 =
    Cert.self_signed ~key:ta6_key ~subject:"TA6" ~resources ~not_before:0 ~not_after:1000 ()
  in
  let roa =
    Roa.issue ~ca_key:ta6_key.Rsa.private_ ~ca_subject:"TA6" ~serial:5 ~rng:(rng_of "roa6-ee")
      ~asid:64510
      ~v4_entries:[ Roa.entry (V4.p "10.2.0.0/16") ]
      ~v6_entries:[ Roa.entry6 ~max_len:48 (V6.p "2001:db8:a::/48") ]
      ~not_before:0 ~not_after:500 ()
  in
  (match Roa.decode (Roa.encode roa) with
  | Error e -> Alcotest.fail e
  | Ok roa' ->
    Alcotest.(check int) "v6 entries survive" 1 (List.length roa'.Roa.v6_entries));
  (match Validation.validate_roa ~now:100 ~parent:ta6 roa with
  | Ok vrps -> Alcotest.(check int) "v4 vrps only (v6 carried)" 1 (List.length vrps)
  | Error f -> Alcotest.fail (Validation.failure_to_string f));
  (* v6 overclaim is caught too *)
  let bad =
    Roa.issue ~ca_key:ta6_key.Rsa.private_ ~ca_subject:"TA6" ~serial:6 ~rng:(rng_of "roa6-bad")
      ~asid:64510 ~v4_entries:[]
      ~v6_entries:[ Roa.entry6 (V6.p "2001:db9::/32") ]
      ~not_before:0 ~not_after:500 ()
  in
  (* the EE was certified for exactly the ROA's space, so make the EE itself
     overclaim by validating under a parent without that space *)
  check_fails "v6 overclaim" "overclaim" (Validation.validate_roa ~now:100 ~parent:ta6 bad)

(* --- manifests --- *)

let test_manifest () =
  let files = [ ("a.roa", "bytes-a"); ("b.cer", "bytes-b") ] in
  let m =
    Manifest.issue ~ca_key:(Lazy.force ta_key).Rsa.private_ ~ca_subject:"TA" ~serial:50
      ~rng:(rng_of "mft-ee") ~manifest_number:3 ~this_update:0 ~next_update:300 ~files ()
  in
  (match Manifest.decode (Manifest.encode m) with
  | Error e -> Alcotest.fail e
  | Ok m' ->
    Alcotest.(check int) "number" 3 m'.Manifest.manifest_number;
    Alcotest.(check int) "entries" 2 (List.length m'.Manifest.entries));
  check_ok "validates" (Validation.validate_manifest ~now:100 ~parent:(Lazy.force ta_cert) m);
  (* past nextUpdate the manifest's EE certificate has also expired, which
     is the failure validation reports first *)
  check_fails "stale manifest" "expired"
    (Validation.validate_manifest ~now:400 ~parent:(Lazy.force ta_cert) m);
  (match Manifest.find m "a.roa" with
  | Some e ->
    Alcotest.(check bool) "hash matches" true
      (String.equal e.Manifest.hash (Sha256.digest "bytes-a"))
  | None -> Alcotest.fail "entry missing")

(* --- CRL roundtrip --- *)

let test_crl_roundtrip () =
  let crl =
    Crl.issue ~ca_key:(Lazy.force ta_key).Rsa.private_ ~issuer:"TA" ~this_update:1 ~next_update:2
      ~revoked_serials:[ 5; 3; 5; 1 ]
  in
  Alcotest.(check (list int)) "sorted dedup" [ 1; 3; 5 ] crl.Crl.revoked_serials;
  match Crl.decode (Crl.encode crl) with
  | Error e -> Alcotest.fail e
  | Ok crl' -> Alcotest.(check (list int)) "roundtrip" [ 1; 3; 5 ] crl'.Crl.revoked_serials

(* --- route-origin validation (RFC 6811 semantics) --- *)

let state = Alcotest.testable Origin_validation.pp_state Origin_validation.equal_state

let idx =
  lazy
    (Origin_validation.build
       [ Vrp.make ~max_len:24 (V4.p "63.161.0.0/16") 1239;
         Vrp.make ~max_len:20 (V4.p "63.174.16.0/20") 17054;
         Vrp.make ~max_len:22 (V4.p "63.174.16.0/22") 7341 ])

let classify p o = Origin_validation.classify (Lazy.force idx) (Route.make (V4.p p) o)

let test_ov_valid () =
  Alcotest.check state "exact match" Origin_validation.Valid (classify "63.174.16.0/20" 17054);
  Alcotest.check state "within maxlen" Origin_validation.Valid (classify "63.161.7.0/24" 1239);
  Alcotest.check state "at maxlen" Origin_validation.Valid (classify "63.161.0.0/24" 1239)

let test_ov_invalid () =
  Alcotest.check state "wrong origin" Origin_validation.Invalid (classify "63.174.16.0/20" 666);
  Alcotest.check state "beyond maxlen" Origin_validation.Invalid (classify "63.174.17.0/24" 17054);
  Alcotest.check state "subprefix hijack" Origin_validation.Invalid (classify "63.161.0.0/25" 1239);
  Alcotest.check state "deeper than all" Origin_validation.Invalid (classify "63.174.16.0/24" 7341)

let test_ov_unknown () =
  Alcotest.check state "no covering" Origin_validation.Unknown (classify "63.160.0.0/12" 1239);
  Alcotest.check state "sibling space" Origin_validation.Unknown (classify "63.200.0.0/16" 1239)

let test_ov_as0 () =
  (* an AS0 ROA makes routes invalid, never valid (RFC 6483 section 4) *)
  let idx0 = Origin_validation.build [ Vrp.make ~max_len:24 (V4.p "192.0.2.0/24") 0 ] in
  Alcotest.check state "as0 invalidates" Origin_validation.Invalid
    (Origin_validation.classify idx0 (Route.make (V4.p "192.0.2.0/24") 0));
  Alcotest.check state "as0 invalidates others" Origin_validation.Invalid
    (Origin_validation.classify idx0 (Route.make (V4.p "192.0.2.0/24") 7018))

let test_ov_multiple_vrps () =
  (* two ROAs for the same prefix with different origins: both origins valid *)
  let idx2 =
    Origin_validation.build
      [ Vrp.make (V4.p "10.0.0.0/16") 1; Vrp.make (V4.p "10.0.0.0/16") 2 ]
  in
  Alcotest.check state "origin 1" Origin_validation.Valid
    (Origin_validation.classify idx2 (Route.make (V4.p "10.0.0.0/16") 1));
  Alcotest.check state "origin 2" Origin_validation.Valid
    (Origin_validation.classify idx2 (Route.make (V4.p "10.0.0.0/16") 2));
  Alcotest.check state "origin 3 invalid" Origin_validation.Invalid
    (Origin_validation.classify idx2 (Route.make (V4.p "10.0.0.0/16") 3))

let test_ov_explain () =
  let st, matching, covering =
    Origin_validation.explain (Lazy.force idx) (Route.make (V4.p "63.174.17.0/24") 17054)
  in
  Alcotest.check state "invalid" Origin_validation.Invalid st;
  Alcotest.(check int) "no matches" 0 (List.length matching);
  Alcotest.(check bool) "has covering" true (covering <> [])

(* validity grid agrees with direct classification *)
let test_grid_consistency () =
  let summary =
    Validity_grid.summarize_length (Lazy.force idx) ~root:(V4.p "63.160.0.0/12") ~len:20
      ~origin:17054
  in
  (* brute force over all /20s under the /12 *)
  let brute = ref (0, 0, 0) in
  let base = V4.Prefix.addr (V4.p "63.160.0.0/12") in
  for i = 0 to (1 lsl 8) - 1 do
    let prefix = V4.Prefix.make (base + (i lsl 12)) 20 in
    match Origin_validation.classify (Lazy.force idx) (Route.make prefix 17054) with
    | Origin_validation.Valid -> let v, x, u = !brute in brute := (v + 1, x, u)
    | Origin_validation.Invalid -> let v, x, u = !brute in brute := (v, x + 1, u)
    | Origin_validation.Unknown -> let v, x, u = !brute in brute := (v, x, u + 1)
  done;
  let v, x, u = !brute in
  Alcotest.(check int) "valid" v summary.Validity_grid.valid;
  Alcotest.(check int) "invalid" x summary.Validity_grid.invalid;
  Alcotest.(check int) "unknown" u summary.Validity_grid.unknown

let test_grid_fig5_shape () =
  (* at /24 under the /12 for an unrelated origin, exactly the covered
     space is invalid and everything else unknown *)
  let s =
    Validity_grid.summarize_length (Lazy.force idx) ~root:(V4.p "63.160.0.0/12") ~len:24
      ~origin:99999
  in
  Alcotest.(check int) "valid none" 0 s.Validity_grid.valid;
  (* covered /24s: 256 under 63.161/16 + 16 under 63.174.16/20 *)
  Alcotest.(check int) "invalid count" (256 + 16) s.Validity_grid.invalid;
  Alcotest.(check int) "unknown rest" (4096 - 256 - 16) s.Validity_grid.unknown

let prop_ov_trie_matches_naive =
  let arb_vrps =
    QCheck.make
      ~print:(fun l -> String.concat "," (List.map Vrp.to_string l))
      QCheck.Gen.(
        list_size (int_bound 20)
          (map3
             (fun a len asn ->
               let len = len mod 25 in
               let prefix = V4.Prefix.make (abs a mod (1 lsl 32)) len in
               Vrp.make ~max_len:(min 32 (len + (abs asn mod 9))) prefix (asn mod 3))
             int (int_bound 24) int))
  in
  let arb_routes =
    QCheck.make
      ~print:(fun l -> String.concat "," (List.map Route.to_string l))
      QCheck.Gen.(
        list_size (int_bound 20)
          (map3
             (fun a len o ->
               Route.make (V4.Prefix.make (abs a mod (1 lsl 32)) (len mod 33)) (o mod 3))
             int (int_bound 32) int))
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"trie classification matches naive RFC 6811"
       (QCheck.pair arb_vrps arb_routes)
       (fun (vrps, routes) ->
         let idx = Origin_validation.build vrps in
         List.for_all
           (fun r ->
             let covering = List.filter (fun (v : Vrp.t) -> V4.Prefix.covers v.Vrp.prefix r.Route.prefix) vrps in
             let matching =
               List.filter
                 (fun (v : Vrp.t) ->
                   v.Vrp.asn = r.Route.origin && v.Vrp.asn <> 0
                   && V4.Prefix.len r.Route.prefix <= v.Vrp.max_len)
                 covering
             in
             let naive : Origin_validation.state =
               if covering = [] then Origin_validation.Unknown
               else if matching <> [] then Origin_validation.Valid
               else Origin_validation.Invalid
             in
             Origin_validation.equal_state naive (Origin_validation.classify idx r))
           routes))

let () =
  Alcotest.run "core"
    [ ( "cert",
        [ Alcotest.test_case "roundtrip" `Quick test_cert_roundtrip;
          Alcotest.test_case "garbage rejected" `Quick test_cert_decode_garbage ] );
      ( "validation",
        [ Alcotest.test_case "valid chain" `Quick test_validate_ok;
          Alcotest.test_case "expired" `Quick test_validate_expired;
          Alcotest.test_case "not yet valid" `Quick test_validate_not_yet;
          Alcotest.test_case "bad signature" `Quick test_validate_bad_signature;
          Alcotest.test_case "resource overclaim" `Quick test_validate_overclaim;
          Alcotest.test_case "wrong issuer" `Quick test_validate_wrong_issuer;
          Alcotest.test_case "revocation" `Quick test_validate_revoked;
          Alcotest.test_case "stale CRL" `Quick test_validate_stale_crl;
          Alcotest.test_case "forged CRL" `Quick test_validate_crl_bad_sig;
          Alcotest.test_case "trust anchor" `Quick test_validate_trust_anchor ] );
      ( "roa",
        [ Alcotest.test_case "roundtrip" `Quick test_roa_roundtrip;
          Alcotest.test_case "validates to VRPs" `Quick test_roa_validates;
          Alcotest.test_case "content tamper" `Quick test_roa_tamper;
          Alcotest.test_case "revoked EE" `Quick test_roa_revoked_ee;
          Alcotest.test_case "maxlen bounds" `Quick test_roa_entry_maxlen;
          Alcotest.test_case "dual-stack (IPv6)" `Quick test_roa_v6 ] );
      ( "manifest-crl",
        [ Alcotest.test_case "manifest" `Quick test_manifest;
          Alcotest.test_case "crl roundtrip" `Quick test_crl_roundtrip ] );
      ( "origin-validation",
        [ Alcotest.test_case "valid states" `Quick test_ov_valid;
          Alcotest.test_case "invalid states" `Quick test_ov_invalid;
          Alcotest.test_case "unknown states" `Quick test_ov_unknown;
          Alcotest.test_case "AS0" `Quick test_ov_as0;
          Alcotest.test_case "multiple VRPs per prefix" `Quick test_ov_multiple_vrps;
          Alcotest.test_case "explain" `Quick test_ov_explain;
          prop_ov_trie_matches_naive ] );
      ( "validity-grid",
        [ Alcotest.test_case "matches brute force" `Quick test_grid_consistency;
          Alcotest.test_case "figure 5 shape" `Quick test_grid_fig5_shape ] ) ]
