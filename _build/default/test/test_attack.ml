(* Tests for the whacking engine against the paper's scenarios. *)

open Rpki_core
open Rpki_repo
open Rpki_attack
open Rpki_ip

let sync (m : Model.t) rp ~now = Relying_party.sync rp ~now ~universe:m.Model.universe ()

let vrp_strings (r : Relying_party.sync_result) = List.map Vrp.to_string r.Relying_party.vrps

(* --- Section 3.1, clean grandchild whack --- *)

let test_clean_whack_plan () =
  let m = Model.build () in
  let plan =
    Whack.plan_targeted ~manipulator:m.Model.sprint ~target_issuer:"Continental"
      ~target_filename:m.Model.roa_target20
  in
  Alcotest.(check bool) "no reissues" false (Whack.needs_make_before_break plan);
  (* the exact sliver and shrunken RC from the paper's prose *)
  Alcotest.(check string) "sliver" "63.174.24.0-63.174.24.255" (V4.Set.to_string plan.Whack.sliver);
  Alcotest.(check string) "new RC ranges"
    "63.174.16.0-63.174.23.255, 63.174.25.0-63.174.31.255"
    (Resources.to_string plan.Whack.shrink_child_to)

let test_clean_whack_execution () =
  let m = Model.build () in
  let rp = Model.relying_party m in
  let before = sync m rp ~now:1 in
  let plan =
    Whack.plan_targeted ~manipulator:m.Model.sprint ~target_issuer:"Continental"
      ~target_filename:m.Model.roa_target20
  in
  ignore (Whack.execute ~manipulator:m.Model.sprint plan ~now:1);
  let after = sync m rp ~now:1 in
  let d =
    Assess.diff ~before:before.Relying_party.vrps ~after:after.Relying_party.vrps
  in
  Alcotest.(check int) "exactly one VRP lost" 1 (List.length d.Assess.net_lost);
  Alcotest.(check string) "it is the target" "(63.174.16.0/20, AS17054)"
    (Vrp.to_string (List.hd d.Assess.net_lost));
  (* all four other Continental ROAs still valid *)
  List.iter
    (fun v -> Alcotest.(check bool) v true (List.mem v (vrp_strings after)))
    [ "(63.174.16.0/22, AS7341)"; "(63.174.25.0/24, AS17054)"; "(63.174.26.0/24, AS17054)";
      "(63.174.28.0/24, AS17054)" ]

(* --- Section 3.1 / Figure 3, make-before-break --- *)

let test_mbb_whack () =
  let m = Model.build () in
  let rp = Model.relying_party m in
  let plan =
    Whack.plan_targeted ~manipulator:m.Model.sprint ~target_issuer:"Continental"
      ~target_filename:m.Model.roa_target22
  in
  Alcotest.(check bool) "needs reissue" true (Whack.needs_make_before_break plan);
  (* the damaged object is the /20 ROA, which must be reissued *)
  Alcotest.(check int) "one reissue" 1 (List.length plan.Whack.reissues);
  (match plan.Whack.reissues with
  | [ Whack.Reissue_roa { asid; original_issuer; _ } ] ->
    Alcotest.(check int) "reissued asid" 17054 asid;
    Alcotest.(check string) "original issuer" "Continental" original_issuer
  | _ -> Alcotest.fail "expected one ROA reissue");
  let target = [ Vrp.make ~max_len:22 (V4.p "63.174.16.0/22") 7341 ] in
  let d, collateral =
    Assess.measure ~rp ~universe:m.Model.universe ~now:1 ~target (fun () ->
        ignore (Whack.execute ~manipulator:m.Model.sprint plan ~now:1))
  in
  Alcotest.(check int) "zero net collateral" 0 (List.length collateral);
  Alcotest.(check bool) "target gone" true
    (List.exists
       (fun (v : Vrp.t) -> V4.Prefix.equal v.Vrp.prefix (V4.p "63.174.16.0/22"))
       d.Assess.net_lost)

(* --- Side Effect 4: great-grandchild whacking --- *)

(* A four-level hierarchy: TA -> Mid -> Leafco, with Leafco holding ROAs. *)
let deep_model () =
  let universe = Universe.create () in
  let now = 0 in
  let ta =
    Authority.create_trust_anchor ~name:"TA0" ~resources:(Resources.of_v4_strings [ "20.0.0.0/8" ])
      ~uri:"rsync://ta0/repo" ~addr:(V4.addr_of_string_exn "198.51.100.1") ~host_asn:1 ~now
      ~universe ()
  in
  let mid =
    Authority.create_child ta ~name:"Mid" ~resources:(Resources.of_v4_strings [ "20.1.0.0/16" ])
      ~uri:"rsync://mid/repo" ~addr:(V4.addr_of_string_exn "20.1.0.1") ~host_asn:2 ~now ~universe ()
  in
  let leaf =
    Authority.create_child mid ~name:"Leafco"
      ~resources:(Resources.of_v4_strings [ "20.1.16.0/20" ]) ~uri:"rsync://leafco/repo"
      ~addr:(V4.addr_of_string_exn "20.1.16.1") ~host_asn:3 ~now ~universe ()
  in
  let target, _ = Authority.issue_simple_roa leaf ~asid:300 ~prefix:(V4.p "20.1.16.0/22") ~now () in
  let other, _ = Authority.issue_simple_roa leaf ~asid:301 ~prefix:(V4.p "20.1.24.0/22") ~now () in
  let mid_roa, _ = Authority.issue_simple_roa mid ~asid:200 ~prefix:(V4.p "20.1.100.0/24") ~now () in
  (universe, ta, mid, leaf, target, other, mid_roa)

let test_great_grandchild_whack () =
  let universe, ta, _mid, _leaf, target, _other, _ = deep_model () in
  let rp =
    Relying_party.create ~name:"rp" ~asn:1 ~tals:[ Relying_party.tal_of_authority ta ] ()
  in
  let plan = Whack.plan_targeted ~manipulator:ta ~target_issuer:"Leafco" ~target_filename:target in
  (* Side Effect 4: deeper targets force reissued RCs along the path *)
  Alcotest.(check bool) "needs mbb" true (Whack.needs_make_before_break plan);
  Alcotest.(check bool) "reissues an RC" true
    (List.exists
       (fun r -> match r with Whack.Reissue_rc { subject = "Leafco"; _ } -> true | _ -> false)
       plan.Whack.reissues);
  let target_vrps = [ Vrp.make ~max_len:22 (V4.p "20.1.16.0/22") 300 ] in
  let d, collateral =
    Assess.measure ~rp ~universe ~now:1 ~target:target_vrps (fun () ->
        ignore (Whack.execute ~manipulator:ta plan ~now:1))
  in
  Alcotest.(check int) "no net collateral" 0 (List.length collateral);
  Alcotest.(check bool) "target whacked" true
    (List.exists (fun (v : Vrp.t) -> v.Vrp.asn = 300) d.Assess.net_lost)

let test_deep_collateral_survives () =
  let universe, ta, _mid, _leaf, target, _other, _ = deep_model () in
  let rp =
    Relying_party.create ~name:"rp" ~asn:1 ~tals:[ Relying_party.tal_of_authority ta ] ()
  in
  let plan = Whack.plan_targeted ~manipulator:ta ~target_issuer:"Leafco" ~target_filename:target in
  ignore (Whack.execute ~manipulator:ta plan ~now:1);
  let after = Relying_party.sync rp ~now:1 ~universe () in
  let strs = List.map Vrp.to_string after.Relying_party.vrps in
  Alcotest.(check bool) "Leafco's other ROA survives" true (List.mem "(20.1.24.0/22, AS301)" strs);
  Alcotest.(check bool) "Mid's ROA survives" true (List.mem "(20.1.100.0/24, AS200)" strs);
  Alcotest.(check bool) "target gone" true (not (List.mem "(20.1.16.0/22, AS300)" strs))

(* --- error paths --- *)

let test_cannot_whack_own () =
  let m = Model.build () in
  Alcotest.(check bool) "own ROA refused" true
    (try
       ignore
         (Whack.plan_targeted ~manipulator:m.Model.sprint ~target_issuer:"Sprint"
            ~target_filename:m.Model.roa_sprint_1);
       false
     with Whack.Cannot_whack _ -> true)

let test_cannot_whack_non_descendant () =
  let m = Model.build () in
  Alcotest.(check bool) "sibling refused" true
    (try
       ignore
         (Whack.plan_targeted ~manipulator:m.Model.etb ~target_issuer:"Continental"
            ~target_filename:m.Model.roa_target20);
       false
     with Whack.Cannot_whack _ -> true)

let test_cannot_whack_unknown_roa () =
  let m = Model.build () in
  Alcotest.(check bool) "unknown filename refused" true
    (try
       ignore
         (Whack.plan_targeted ~manipulator:m.Model.sprint ~target_issuer:"Continental"
            ~target_filename:"nope.roa");
       false
     with Whack.Cannot_whack _ -> true)

(* --- assess module --- *)

let test_assess_diff () =
  let a = Vrp.make (V4.p "10.0.0.0/16") 1 in
  let b = Vrp.make (V4.p "10.1.0.0/16") 2 in
  let c = Vrp.make (V4.p "10.2.0.0/16") 3 in
  let d = Assess.diff ~before:[ a; b ] ~after:[ b; c ] in
  Alcotest.(check int) "lost" 1 (List.length d.Assess.lost);
  Alcotest.(check int) "gained" 1 (List.length d.Assess.gained);
  Alcotest.(check int) "net lost" 1 (List.length d.Assess.net_lost)

let test_assess_validity_changes () =
  let before = [ Vrp.make ~max_len:24 (V4.p "10.0.0.0/16") 1 ] in
  let after = [] in
  let routes = [ Route.make (V4.p "10.0.0.0/16") 1; Route.make (V4.p "99.0.0.0/8") 9 ] in
  let changes = Assess.validity_changes ~before ~after routes in
  Alcotest.(check int) "one change" 1 (List.length changes)

let () =
  Alcotest.run "attack"
    [ ( "clean-whack",
        [ Alcotest.test_case "plan matches paper" `Quick test_clean_whack_plan;
          Alcotest.test_case "execution: zero collateral" `Quick test_clean_whack_execution ] );
      ("make-before-break", [ Alcotest.test_case "figure 3" `Quick test_mbb_whack ]);
      ( "side-effect-4",
        [ Alcotest.test_case "great-grandchild whack" `Quick test_great_grandchild_whack;
          Alcotest.test_case "deep collateral survives" `Quick test_deep_collateral_survives ] );
      ( "refusals",
        [ Alcotest.test_case "own ROA" `Quick test_cannot_whack_own;
          Alcotest.test_case "non-descendant" `Quick test_cannot_whack_non_descendant;
          Alcotest.test_case "unknown ROA" `Quick test_cannot_whack_unknown_roa ] );
      ( "assess",
        [ Alcotest.test_case "diff" `Quick test_assess_diff;
          Alcotest.test_case "validity changes" `Quick test_assess_validity_changes ] ) ]
