(* Tests for addresses, prefixes, ranges, resource sets and the LPM trie. *)

open Rpki_ip

(* --- IPv4 addresses --- *)

let test_v4_parse () =
  let ok s v = Alcotest.(check (option int)) s (Some v) (Addr.V4.of_string s) in
  ok "0.0.0.0" 0;
  ok "255.255.255.255" 0xFFFFFFFF;
  ok "63.160.0.0" ((63 lsl 24) lor (160 lsl 16));
  List.iter
    (fun s -> Alcotest.(check (option int)) s None (Addr.V4.of_string s))
    [ ""; "1.2.3"; "1.2.3.4.5"; "256.0.0.1"; "a.b.c.d"; "1.2.3.-4"; "01x.0.0.0" ]

let test_v4_print () =
  Alcotest.(check string) "roundtrip" "63.174.23.0"
    (Addr.V4.to_string (V4.addr_of_string_exn "63.174.23.0"))

(* --- prefixes --- *)

let p = V4.p

let test_prefix_basics () =
  Alcotest.(check string) "canonical" "10.0.0.0/8" (V4.Prefix.to_string (p "10.0.0.0/8"));
  Alcotest.(check bool) "non-canonical rejected" true (V4.Prefix.of_string "10.0.0.1/8" = None);
  Alcotest.(check bool) "len 33 rejected" true (V4.Prefix.of_string "10.0.0.0/33" = None);
  Alcotest.(check bool) "no slash rejected" true (V4.Prefix.of_string "10.0.0.0" = None);
  Alcotest.(check bool) "/0 accepted" true (V4.Prefix.of_string "0.0.0.0/0" <> None);
  Alcotest.(check bool) "/32 accepted" true (V4.Prefix.of_string "1.2.3.4/32" <> None)

let test_prefix_covers () =
  (* the paper's own example: 63.160.0.0/12 covers 63.168.93.0/24 *)
  Alcotest.(check bool) "paper example" true (V4.Prefix.covers (p "63.160.0.0/12") (p "63.168.93.0/24"));
  Alcotest.(check bool) "self covers" true (V4.Prefix.covers (p "10.0.0.0/8") (p "10.0.0.0/8"));
  Alcotest.(check bool) "child no cover" false (V4.Prefix.covers (p "10.0.0.0/9") (p "10.0.0.0/8"));
  Alcotest.(check bool) "disjoint" false (V4.Prefix.covers (p "10.0.0.0/8") (p "11.0.0.0/8"));
  Alcotest.(check bool) "contains addr" true
    (V4.Prefix.contains_addr (p "63.174.16.0/20") (V4.addr_of_string_exn "63.174.23.0"));
  Alcotest.(check bool) "excludes addr" false
    (V4.Prefix.contains_addr (p "63.174.16.0/24") (V4.addr_of_string_exn "63.174.23.0"))

let test_prefix_split () =
  let l, r = V4.Prefix.split (p "10.0.0.0/8") in
  Alcotest.(check string) "left" "10.0.0.0/9" (V4.Prefix.to_string l);
  Alcotest.(check string) "right" "10.128.0.0/9" (V4.Prefix.to_string r);
  Alcotest.check_raises "split /32" (Invalid_argument "Prefix.split: host prefix") (fun () ->
      ignore (V4.Prefix.split (p "1.2.3.4/32")))

(* --- ranges --- *)

let test_range_decomposition () =
  let check name range want =
    Alcotest.(check (list string)) name want
      (List.map V4.Prefix.to_string (V4.Range.to_prefixes (V4.range_of_string_exn range)))
  in
  check "aligned /21" "63.174.16.0-63.174.23.255" [ "63.174.16.0/21" ];
  check "the paper's second range" "63.174.25.0-63.174.31.255"
    [ "63.174.25.0/24"; "63.174.26.0/23"; "63.174.28.0/22" ];
  check "single address" "1.2.3.4-1.2.3.4" [ "1.2.3.4/32" ];
  check "two addresses" "1.2.3.4-1.2.3.5" [ "1.2.3.4/31" ];
  check "unaligned" "10.0.0.1-10.0.0.8"
    [ "10.0.0.1/32"; "10.0.0.2/31"; "10.0.0.4/30"; "10.0.0.8/32" ];
  check "full space" "0.0.0.0-255.255.255.255" [ "0.0.0.0/0" ]

let test_range_relations () =
  let r = V4.range_of_string_exn in
  Alcotest.(check bool) "subset" true (V4.Range.subset (r "10.0.0.0-10.0.0.255") (r "10.0.0.0-10.255.255.255"));
  Alcotest.(check bool) "overlap" true (V4.Range.overlaps (r "10.0.0.0-10.0.1.0") (r "10.0.1.0-10.0.2.0"));
  Alcotest.(check bool) "no overlap" false (V4.Range.overlaps (r "10.0.0.0-10.0.0.255") (r "10.0.1.0-10.0.1.255"));
  Alcotest.check_raises "inverted" (Invalid_argument "Range.make: lo > hi") (fun () ->
      ignore (V4.Range.make 5 4))

(* --- sets --- *)

let s4 = V4.set_of_strings

let test_set_normalization () =
  Alcotest.(check string) "merge adjacent" "10.0.0.0-10.0.1.255"
    (V4.Set.to_string (s4 [ "10.0.0.0/24"; "10.0.1.0/24" ]));
  Alcotest.(check string) "merge overlap" "10.0.0.0-10.0.255.255"
    (V4.Set.to_string (s4 [ "10.0.0.0/16"; "10.0.4.0/24" ]));
  Alcotest.(check string) "keep gaps" "10.0.0.0-10.0.0.255, 10.0.2.0-10.0.2.255"
    (V4.Set.to_string (s4 [ "10.0.2.0/24"; "10.0.0.0/24" ]));
  Alcotest.(check bool) "empty" true (V4.Set.is_empty V4.Set.empty)

let test_set_paper_algebra () =
  (* the exact shrink from the paper's Section 3.1 *)
  let cb = s4 [ "63.174.16.0/20" ] in
  let sliver = s4 [ "63.174.24.0/24" ] in
  Alcotest.(check string) "shrunk RC" "63.174.16.0-63.174.23.255, 63.174.25.0-63.174.31.255"
    (V4.Set.to_string (V4.Set.diff cb sliver));
  Alcotest.(check bool) "union restores" true (V4.Set.equal cb (V4.Set.union (V4.Set.diff cb sliver) sliver))

let test_set_relations () =
  let a = s4 [ "10.0.0.0/8" ] and b = s4 [ "10.1.0.0/16"; "10.2.0.0/16" ] in
  Alcotest.(check bool) "subset" true (V4.Set.subset b a);
  Alcotest.(check bool) "not subset" false (V4.Set.subset a b);
  Alcotest.(check bool) "overlaps" true (V4.Set.overlaps a b);
  Alcotest.(check bool) "mem_prefix" true (V4.Set.mem_prefix a (p "10.200.0.0/16"));
  Alcotest.(check bool) "mem_addr" true (V4.Set.mem_addr a (V4.addr_of_string_exn "10.9.8.7"));
  Alcotest.(check bool) "not mem_addr" false (V4.Set.mem_addr b (V4.addr_of_string_exn "10.9.8.7"));
  Alcotest.(check (option int)) "cardinal" (Some (1 lsl 24)) (V4.Set.cardinal_opt a);
  Alcotest.(check (option int)) "cardinal full" (Some (1 lsl 32)) (V4.Set.cardinal_opt V4.Set.full)

(* model-based property: set operations agree with per-address membership *)
let sample_addrs = List.init 64 (fun i -> i * 67108863)

let arb_small_set =
  let gen =
    QCheck.Gen.(
      map
        (fun pairs ->
          V4.Set.of_ranges
            (List.map
               (fun (a, b) ->
                 let a = abs a mod (1 lsl 32) and b = abs b mod (1 lsl 32) in
                 V4.Range.make (min a b) (max a b))
               pairs))
        (list_size (int_bound 6) (pair int int)))
  in
  QCheck.make ~print:V4.Set.to_string gen

let prop name f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~count:300 ~name (QCheck.pair arb_small_set arb_small_set) f)

let set_props =
  [ prop "union membership" (fun (a, b) ->
        List.for_all
          (fun x -> V4.Set.mem_addr (V4.Set.union a b) x = (V4.Set.mem_addr a x || V4.Set.mem_addr b x))
          sample_addrs);
    prop "inter membership" (fun (a, b) ->
        List.for_all
          (fun x -> V4.Set.mem_addr (V4.Set.inter a b) x = (V4.Set.mem_addr a x && V4.Set.mem_addr b x))
          sample_addrs);
    prop "diff membership" (fun (a, b) ->
        List.for_all
          (fun x -> V4.Set.mem_addr (V4.Set.diff a b) x = (V4.Set.mem_addr a x && not (V4.Set.mem_addr b x)))
          sample_addrs);
    prop "diff + inter partitions" (fun (a, b) ->
        V4.Set.equal a (V4.Set.union (V4.Set.diff a b) (V4.Set.inter a b)));
    prop "subset iff diff empty" (fun (a, b) ->
        V4.Set.subset a b = V4.Set.is_empty (V4.Set.diff a b));
    prop "normalization canonical" (fun (a, b) ->
        let u1 = V4.Set.union a b and u2 = V4.Set.union b a in
        V4.Set.to_string u1 = V4.Set.to_string u2);
    prop "prefix decomposition covers" (fun (a, _) ->
        V4.Set.equal a (V4.Set.of_prefixes (V4.Set.to_prefixes a))) ]

(* --- trie --- *)

let test_trie_basic () =
  let t = V4.Trie.of_list [ (p "0.0.0.0/0", 0); (p "10.0.0.0/8", 1); (p "10.1.0.0/16", 2) ] in
  Alcotest.(check (option int)) "exact" (Some 1) (V4.Trie.find_exact t (p "10.0.0.0/8"));
  Alcotest.(check (option int)) "exact miss" None (V4.Trie.find_exact t (p "10.0.0.0/9"));
  Alcotest.(check int) "cardinal" 3 (V4.Trie.cardinal t);
  (match V4.Trie.longest_match t (p "10.1.2.0/24") with
  | Some (q, v) -> Alcotest.(check string) "lpm" "10.1.0.0/16" (V4.Prefix.to_string q); Alcotest.(check int) "lpm v" 2 v
  | None -> Alcotest.fail "lpm");
  Alcotest.(check int) "covering count" 3 (List.length (V4.Trie.covering t (p "10.1.2.0/24")));
  Alcotest.(check int) "covered count" 2 (List.length (V4.Trie.covered t (p "10.0.0.0/8")));
  let t = V4.Trie.remove t (p "10.0.0.0/8") in
  Alcotest.(check (option int)) "removed" None (V4.Trie.find_exact t (p "10.0.0.0/8"));
  Alcotest.(check int) "cardinal after remove" 2 (V4.Trie.cardinal t)

let test_trie_combine () =
  let t = V4.Trie.insert_with ~combine:( + ) V4.Trie.empty (p "10.0.0.0/8") 1 in
  let t = V4.Trie.insert_with ~combine:( + ) t (p "10.0.0.0/8") 2 in
  Alcotest.(check (option int)) "combined" (Some 3) (V4.Trie.find_exact t (p "10.0.0.0/8"))

let arb_prefix_list =
  let gen =
    QCheck.Gen.(
      list_size (int_bound 30)
        (map2
           (fun a len ->
             let len = len mod 33 in
             V4.Prefix.make (abs a mod (1 lsl 32)) len)
           int (int_bound 32)))
  in
  QCheck.make ~print:(fun l -> String.concat "," (List.map V4.Prefix.to_string l)) gen

let trie_props =
  [ QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:200 ~name:"trie lpm agrees with naive"
         (QCheck.pair arb_prefix_list arb_prefix_list)
         (fun (entries, queries) ->
           let entries = List.mapi (fun i e -> (e, i)) entries in
           (* later inserts win, as in Trie.insert *)
           let t = V4.Trie.of_list entries in
           List.for_all
             (fun q ->
               let naive =
                 List.fold_left
                   (fun best (e, v) ->
                     if V4.Prefix.covers e q then
                       match best with
                       | Some (b, _) when V4.Prefix.len b > V4.Prefix.len e -> best
                       | _ -> Some (e, v)
                     else best)
                   None entries
               in
               match (V4.Trie.longest_match t q, naive) with
               | None, None -> true
               | Some (pt, _), Some (pn, _) -> V4.Prefix.len pt = V4.Prefix.len pn
               | _ -> false)
             queries));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:200 ~name:"covering+covered consistent"
         (QCheck.pair arb_prefix_list arb_prefix_list)
         (fun (entries, queries) ->
           let entries = List.mapi (fun i e -> (e, i)) entries in
           let t = V4.Trie.of_list entries in
           List.for_all
             (fun q ->
               let covering = V4.Trie.covering t q in
               let covered = V4.Trie.covered t q in
               List.for_all (fun (e, _) -> V4.Prefix.covers e q) covering
               && List.for_all (fun (e, _) -> V4.Prefix.covers q e) covered)
             queries)) ]

(* --- IPv6 --- *)

let test_v6_parse_print () =
  let rt s want =
    match Addr.V6.of_string s with
    | None -> Alcotest.failf "parse %s" s
    | Some a -> Alcotest.(check string) s want (Addr.V6.to_string a)
  in
  rt "::" "::";
  rt "::1" "::1";
  rt "2001:db8::" "2001:db8::";
  rt "2001:db8::1" "2001:db8::1";
  rt "2001:0db8:0000:0000:0000:0000:0000:0001" "2001:db8::1";
  rt "fe80:0:0:0:1:0:0:1" "fe80::1:0:0:1";
  rt "1:2:3:4:5:6:7:8" "1:2:3:4:5:6:7:8";
  List.iter
    (fun s -> Alcotest.(check bool) s true (Addr.V6.of_string s = None))
    [ ""; ":::"; "1:2:3"; "1:2:3:4:5:6:7:8:9"; "2001::db8::1"; "g::1" ]

let test_v6_prefix () =
  Alcotest.(check bool) "covers" true (V6.Prefix.covers (V6.p "2001:db8::/32") (V6.p "2001:db8:1::/48"));
  Alcotest.(check bool) "no cover" false (V6.Prefix.covers (V6.p "2001:db8::/32") (V6.p "2001:db9::/48"));
  Alcotest.(check string) "print" "2001:db8::/32" (V6.Prefix.to_string (V6.p "2001:db8::/32"));
  (* crossing the 64-bit word boundary *)
  Alcotest.(check bool) "/80 covers /96" true
    (V6.Prefix.covers (V6.p "2001:db8:0:0:1::/80") (V6.p "2001:db8:0:0:1:2::/96"))

let test_v6_sets () =
  let s = V6.Set.of_prefixes [ V6.p "2001:db8::/32"; V6.p "2001:db9::/32" ] in
  Alcotest.(check bool) "merged" true (List.length (V6.Set.to_ranges s) = 1);
  let d = V6.Set.diff s (V6.Set.of_prefix (V6.p "2001:db8:ffff::/48")) in
  Alcotest.(check bool) "diff splits" true (List.length (V6.Set.to_ranges d) = 2)

(* --- AS resources --- *)

let test_as_res () =
  let s = As_res.Set.of_ranges [ As_res.Range.make 64496 64511; As_res.Range.make 7018 7018 ] in
  Alcotest.(check bool) "mem" true (As_res.mem s 64500);
  Alcotest.(check bool) "mem single" true (As_res.mem s 7018);
  Alcotest.(check bool) "not mem" false (As_res.mem s 64512);
  Alcotest.(check string) "print" "7018-7018, 64496-64511" (As_res.Set.to_string s);
  Alcotest.(check bool) "subset" true
    (As_res.Set.subset (As_res.singleton 64500) s)

let () =
  Alcotest.run "ip"
    [ ( "v4",
        [ Alcotest.test_case "parse" `Quick test_v4_parse;
          Alcotest.test_case "print" `Quick test_v4_print ] );
      ( "prefix",
        [ Alcotest.test_case "basics" `Quick test_prefix_basics;
          Alcotest.test_case "covering" `Quick test_prefix_covers;
          Alcotest.test_case "split" `Quick test_prefix_split ] );
      ( "range",
        [ Alcotest.test_case "CIDR decomposition" `Quick test_range_decomposition;
          Alcotest.test_case "relations" `Quick test_range_relations ] );
      ( "set",
        [ Alcotest.test_case "normalization" `Quick test_set_normalization;
          Alcotest.test_case "paper shrink algebra" `Quick test_set_paper_algebra;
          Alcotest.test_case "relations" `Quick test_set_relations ] );
      ("set-properties", set_props);
      ( "trie",
        [ Alcotest.test_case "basics" `Quick test_trie_basic;
          Alcotest.test_case "combine" `Quick test_trie_combine ] );
      ("trie-properties", trie_props);
      ( "v6",
        [ Alcotest.test_case "parse/print" `Quick test_v6_parse_print;
          Alcotest.test_case "prefixes" `Quick test_v6_prefix;
          Alcotest.test_case "sets" `Quick test_v6_sets ] );
      ("as-res", [ Alcotest.test_case "sets" `Quick test_as_res ]) ]
