(* Tests for censorship-campaign planning and the dataset-to-hierarchy
   bridge. *)

open Rpki_core
open Rpki_repo
open Rpki_attack
open Rpki_ip

(* --- planning on the model RPKI --- *)

let test_plan_by_asn () =
  let m = Model.build () in
  (* silence AS 17054 from Sprint's position: four Continental ROAs *)
  let c = Campaign.plan ~manipulator:m.Model.sprint ~objective:(Campaign.Target_asns [ 17054 ]) in
  Alcotest.(check int) "four steps" 4 (List.length c.Campaign.steps);
  Alcotest.(check int) "no unplannable" 0 (List.length c.Campaign.unplannable)

let test_plan_by_space () =
  let m = Model.build () in
  let space = V4.Set.of_prefix (V4.p "63.174.16.0/22") in
  let c = Campaign.plan ~manipulator:m.Model.sprint ~objective:(Campaign.Target_space space) in
  (* the /20 ROA and the /22 ROA overlap that space *)
  Alcotest.(check int) "two steps" 2 (List.length c.Campaign.steps)

let test_plan_includes_own_roas () =
  let m = Model.build () in
  let c = Campaign.plan ~manipulator:m.Model.sprint ~objective:(Campaign.Target_asns [ 1239 ]) in
  (* Sprint's own two ROAs: direct revocations, not whacks *)
  Alcotest.(check int) "two revocations" 2
    (List.length
       (List.filter (function Campaign.Revoke_own _ -> true | _ -> false) c.Campaign.steps))

let test_execute_campaign () =
  let m = Model.build () in
  let rp = Model.relying_party m in
  let before =
    (Relying_party.sync rp ~now:1 ~universe:m.Model.universe ()).Relying_party.vrps
  in
  let c = Campaign.plan ~manipulator:m.Model.sprint ~objective:(Campaign.Target_asns [ 17054 ]) in
  let executed, failed = Campaign.execute ~manipulator:m.Model.sprint c ~now:1 in
  Alcotest.(check int) "all executed" 4 executed;
  Alcotest.(check int) "none failed" 0 (List.length failed);
  let after =
    (Relying_party.sync rp ~now:1 ~universe:m.Model.universe ()).Relying_party.vrps
  in
  (* every AS-17054 VRP is gone; everything else survives *)
  Alcotest.(check int) "17054 silenced" 0
    (List.length (List.filter (fun (v : Vrp.t) -> v.Vrp.asn = 17054) after));
  let survivors = List.filter (fun (v : Vrp.t) -> v.Vrp.asn <> 17054) before in
  List.iter
    (fun v ->
      Alcotest.(check bool) (Vrp.to_string v) true
        (List.exists (Assess.vrp_covers_same v) after))
    survivors

let test_campaign_detected () =
  let m = Model.build () in
  let snap0 = Rpki_monitor.Monitor.take ~now:1 m.Model.universe in
  let c = Campaign.plan ~manipulator:m.Model.sprint ~objective:(Campaign.Target_asns [ 17054 ]) in
  ignore (Campaign.execute ~manipulator:m.Model.sprint c ~now:2);
  let snap1 = Rpki_monitor.Monitor.take ~now:2 m.Model.universe in
  let alerts = Rpki_monitor.Monitor.diff ~before:snap0 ~after:snap1 in
  Alcotest.(check bool) "alarms raised" true (Rpki_monitor.Monitor.alarms alerts <> [])

(* --- dataset bridge --- *)

let test_hierarchy_of_dataset () =
  let records = Rpki_juris.Dataset.paper_fixture () in
  let universe, rir_tas, holders = Campaign.hierarchy_of_dataset records in
  Alcotest.(check int) "nine holders" 9 (List.length holders);
  Alcotest.(check bool) "three RIRs involved" true (List.length rir_tas = 3);
  (* every suballocation became a validating ROA *)
  let arin = List.assoc Rpki_juris.Country.ARIN rir_tas in
  let rp =
    Relying_party.create ~name:"rp" ~asn:1
      ~tals:(List.map (fun (_, ta) -> Relying_party.tal_of_authority ta) rir_tas)
      ()
  in
  let r = Relying_party.sync rp ~now:1 ~universe () in
  let total_subs =
    List.fold_left
      (fun acc (r : Rpki_juris.Dataset.rc_record) ->
        acc + List.length r.Rpki_juris.Dataset.suballocations)
      0 records
  in
  Alcotest.(check int) "one VRP per suballocation" total_subs (List.length r.Relying_party.vrps);
  Alcotest.(check int) "no issues" 0 (List.length r.Relying_party.issues);
  ignore arin

let test_country_takedown () =
  (* Colombia appears under several ARIN-certified providers: a coerced ARIN
     can silence all of it *)
  let records = Rpki_juris.Dataset.paper_fixture () in
  let universe, rir_tas, _ = Campaign.hierarchy_of_dataset records in
  let arin = List.assoc Rpki_juris.Country.ARIN rir_tas in
  let co_asns = Campaign.asns_of_country records "CO" in
  Alcotest.(check bool) "CO served by several ASes" true (List.length co_asns >= 3);
  let c = Campaign.plan ~manipulator:arin ~objective:(Campaign.Target_asns co_asns) in
  Alcotest.(check int) "every CO ROA planned" (List.length co_asns)
    (List.length c.Campaign.steps);
  let rp =
    Relying_party.create ~name:"rp" ~asn:1
      ~tals:(List.map (fun (_, ta) -> Relying_party.tal_of_authority ta) rir_tas)
      ()
  in
  let before = (Relying_party.sync rp ~now:1 ~universe ()).Relying_party.vrps in
  let executed, failed = Campaign.execute ~manipulator:arin c ~now:1 in
  Alcotest.(check int) "all executed" (List.length co_asns) executed;
  Alcotest.(check int) "none failed" 0 (List.length failed);
  let after = (Relying_party.sync rp ~now:1 ~universe ()).Relying_party.vrps in
  Alcotest.(check int) "CO silenced" 0
    (List.length (List.filter (fun (v : Vrp.t) -> List.mem v.Vrp.asn co_asns) after));
  (* zero collateral: only CO's VRPs disappeared *)
  let d = Assess.diff ~before ~after in
  Alcotest.(check bool) "only CO lost" true
    (List.for_all (fun (v : Vrp.t) -> List.mem v.Vrp.asn co_asns) d.Assess.net_lost)

let test_cross_border_takedown_is_out_of_jurisdiction () =
  (* the ASes ARIN can silence include ones in countries where ARIN is not
     accountable — Table 4's point, executed *)
  let records = Rpki_juris.Dataset.paper_fixture () in
  let exposures = Rpki_juris.Analysis.cross_jurisdiction_rcs records in
  let arin_foreign =
    List.concat_map
      (fun (e : Rpki_juris.Analysis.rc_exposure) ->
        if e.Rpki_juris.Analysis.record.Rpki_juris.Dataset.parent_rir = Rpki_juris.Country.ARIN
        then e.Rpki_juris.Analysis.foreign_countries
        else [])
      exposures
  in
  Alcotest.(check bool) "ARIN reaches foreign countries" true (List.mem "FR" arin_foreign)

let () =
  Alcotest.run "campaign"
    [ ( "planning",
        [ Alcotest.test_case "by ASN" `Quick test_plan_by_asn;
          Alcotest.test_case "by space" `Quick test_plan_by_space;
          Alcotest.test_case "own ROAs revoked" `Quick test_plan_includes_own_roas ] );
      ( "execution",
        [ Alcotest.test_case "silences the target only" `Quick test_execute_campaign;
          Alcotest.test_case "still detected" `Quick test_campaign_detected ] );
      ( "country-takedown",
        [ Alcotest.test_case "dataset to hierarchy" `Slow test_hierarchy_of_dataset;
          Alcotest.test_case "silence Colombia" `Slow test_country_takedown;
          Alcotest.test_case "cross-border reach" `Quick
            test_cross_border_takedown_is_out_of_jurisdiction ] ) ]
