(* Tests for the BGP substrate: topology, Gao-Rexford propagation, RPKI-aware
   selection, hijacks and the data plane. *)

open Rpki_core
open Rpki_bgp
open Rpki_ip

let all_valid (_ : Route.t) = Origin_validation.Valid

(* --- topology --- *)

let test_topology_links () =
  let t = Topology.create () in
  Topology.link t ~provider:1 ~customer:2;
  Topology.link t ~provider:2 ~customer:3;
  Topology.peer t 1 4;
  Alcotest.(check (list int)) "asns" [ 1; 2; 3; 4 ] (Topology.asns t);
  Alcotest.(check (list int)) "providers of 3" [ 2 ] (Topology.providers t 3);
  Alcotest.(check (list int)) "customers of 1" [ 2 ] (Topology.customers t 1);
  Alcotest.(check (list int)) "peers of 4" [ 1 ] (Topology.peers t 4);
  Alcotest.(check int) "neighbours of 2" 2 (List.length (Topology.neighbours t 2))

let test_topology_rejects_cycle () =
  let t = Topology.create () in
  Topology.link t ~provider:1 ~customer:2;
  Topology.link t ~provider:2 ~customer:3;
  Alcotest.(check bool) "cycle rejected" true
    (try
       Topology.link t ~provider:3 ~customer:1;
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "self link rejected" true
    (try
       Topology.link t ~provider:1 ~customer:1;
       false
     with Invalid_argument _ -> true)

(* --- propagation --- *)

(* chain: 1 <- 2 <- 3 (1 is top provider), plus peer 1~4 *)
let chain () =
  let t = Topology.create () in
  Topology.link t ~provider:1 ~customer:2;
  Topology.link t ~provider:2 ~customer:3;
  Topology.peer t 1 4;
  t

let prefix = V4.p "10.0.0.0/16"

let test_propagation_reaches_everyone () =
  let t = chain () in
  let rib =
    Propagation.compute ~topo:t ~policy_of:(fun _ -> Policy.Ignore_rpki) ~validity_of:all_valid
      [ { Propagation.prefix; origin = 3 } ]
  in
  List.iter
    (fun asn ->
      match Propagation.route rib asn with
      | None -> Alcotest.failf "AS%d has no route" asn
      | Some e -> Alcotest.(check int) (Printf.sprintf "origin at %d" asn) 3
          e.Propagation.ann.Propagation.origin)
    [ 1; 2; 3; 4 ]

let test_propagation_valley_free () =
  (* a route learned from a peer must not be exported to another peer:
     topology 4 ~ 1 ~ 5 (two peerings); origin at 4; 5 must NOT hear it *)
  let t = Topology.create () in
  Topology.peer t 1 4;
  Topology.peer t 1 5;
  let rib =
    Propagation.compute ~topo:t ~policy_of:(fun _ -> Policy.Ignore_rpki) ~validity_of:all_valid
      [ { Propagation.prefix; origin = 4 } ]
  in
  Alcotest.(check bool) "1 hears it" true (Propagation.route rib 1 <> None);
  Alcotest.(check bool) "5 does not (valley-free)" true (Propagation.route rib 5 = None)

let test_propagation_prefers_customer () =
  (* AS 1 can reach the origin 9 via customer 2 or via peer 3; must choose
     the customer path even if longer *)
  let t = Topology.create () in
  Topology.link t ~provider:1 ~customer:2;
  Topology.link t ~provider:2 ~customer:9;
  Topology.peer t 1 3;
  Topology.link t ~provider:3 ~customer:9;
  let rib =
    Propagation.compute ~topo:t ~policy_of:(fun _ -> Policy.Ignore_rpki) ~validity_of:all_valid
      [ { Propagation.prefix; origin = 9 } ]
  in
  match Propagation.route rib 1 with
  | Some e -> Alcotest.(check (option int)) "next hop is customer" (Some 2) (Propagation.next_hop e)
  | None -> Alcotest.fail "no route at 1"

let test_propagation_prefers_shorter () =
  let t = Topology.create () in
  Topology.link t ~provider:1 ~customer:2;
  Topology.link t ~provider:2 ~customer:9;
  Topology.link t ~provider:1 ~customer:9;
  let rib =
    Propagation.compute ~topo:t ~policy_of:(fun _ -> Policy.Ignore_rpki) ~validity_of:all_valid
      [ { Propagation.prefix; origin = 9 } ]
  in
  match Propagation.route rib 1 with
  | Some e -> Alcotest.(check int) "direct path" 2 (List.length e.Propagation.path)
  | None -> Alcotest.fail "no route"

let test_drop_invalid_blocks () =
  let t = chain () in
  let invalid (_ : Route.t) = Origin_validation.Invalid in
  let rib =
    Propagation.compute ~topo:t ~policy_of:(fun _ -> Policy.Drop_invalid) ~validity_of:invalid
      [ { Propagation.prefix; origin = 3 } ]
  in
  List.iter (fun asn -> Alcotest.(check bool) "dropped" true (Propagation.route rib asn = None)) [ 1; 2; 3; 4 ]

let test_depref_prefers_valid () =
  (* two origins for the same prefix; AS 1 hears the invalid one via a
     shorter customer path and the valid one via a longer one — depref must
     pick valid anyway *)
  let t = Topology.create () in
  Topology.link t ~provider:1 ~customer:66;      (* attacker, direct customer *)
  Topology.link t ~provider:1 ~customer:2;
  Topology.link t ~provider:2 ~customer:9;       (* victim, two hops down *)
  let validity (r : Route.t) =
    if r.Route.origin = 9 then Origin_validation.Valid else Origin_validation.Invalid
  in
  let anns = [ { Propagation.prefix; origin = 9 }; { Propagation.prefix; origin = 66 } ] in
  let rib_depref =
    Propagation.compute ~topo:t ~policy_of:(fun _ -> Policy.Depref_invalid) ~validity_of:validity anns
  in
  (match Propagation.route rib_depref 1 with
  | Some e -> Alcotest.(check int) "depref picks valid origin" 9 e.Propagation.ann.Propagation.origin
  | None -> Alcotest.fail "no route");
  let rib_ignore =
    Propagation.compute ~topo:t ~policy_of:(fun _ -> Policy.Ignore_rpki) ~validity_of:validity anns
  in
  match Propagation.route rib_ignore 1 with
  | Some e -> Alcotest.(check int) "ignore picks shorter (attacker)" 66 e.Propagation.ann.Propagation.origin
  | None -> Alcotest.fail "no route"

(* --- data plane --- *)

let test_lpm_forwarding () =
  let s = Topo_gen.small_scenario () in
  let victim_prefix = V4.p "63.174.16.0/20" in
  let dst = V4.addr_of_string_exn "63.174.23.7" in
  let sub = Hijack.subprefix_containing ~victim_prefix ~addr:dst ~len:24 in
  Alcotest.(check string) "subprefix" "63.174.23.0/24" (V4.Prefix.to_string sub);
  let anns =
    Hijack.announcements ~victim_prefix ~victim_as:s.Topo_gen.victim
      ~attacker_as:s.Topo_gen.attacker (Hijack.Subprefix_hijack sub)
  in
  let net =
    Data_plane.build ~topo:s.Topo_gen.small_topo ~policy_of:(fun _ -> Policy.Ignore_rpki)
      ~validity_of:all_valid anns
  in
  (* LPM sends the packet to the hijacker even though the /20 route exists *)
  (match Data_plane.trace net ~src:s.Topo_gen.source ~addr:dst with
  | Data_plane.Delivered { origin; _ } -> Alcotest.(check int) "intercepted" s.Topo_gen.attacker origin
  | _ -> Alcotest.fail "no delivery");
  (* an address outside the hijacked /24 still reaches the victim *)
  let dst2 = V4.addr_of_string_exn "63.174.18.1" in
  match Data_plane.trace net ~src:s.Topo_gen.source ~addr:dst2 with
  | Data_plane.Delivered { origin; _ } -> Alcotest.(check int) "victim" s.Topo_gen.victim origin
  | _ -> Alcotest.fail "no delivery 2"

let test_no_route () =
  let s = Topo_gen.small_scenario () in
  let net =
    Data_plane.build ~topo:s.Topo_gen.small_topo ~policy_of:(fun _ -> Policy.Ignore_rpki)
      ~validity_of:all_valid []
  in
  match Data_plane.trace net ~src:s.Topo_gen.source ~addr:(V4.addr_of_string_exn "8.8.8.8") with
  | Data_plane.No_route _ -> ()
  | _ -> Alcotest.fail "expected no route"

(* --- hijack helpers --- *)

let test_hijack_validation () =
  Alcotest.(check bool) "not a subprefix" true
    (try
       ignore
         (Hijack.announcements ~victim_prefix:prefix ~victim_as:1 ~attacker_as:2
            (Hijack.Subprefix_hijack (V4.p "99.0.0.0/24")));
       false
     with Invalid_argument _ -> true);
  Alcotest.(check int) "prefix hijack: two announcements" 2
    (List.length (Hijack.announcements ~victim_prefix:prefix ~victim_as:1 ~attacker_as:2 Hijack.Prefix_hijack))

(* --- generated topology sanity --- *)

let test_topo_gen () =
  let g = Topo_gen.generate Topo_gen.default_spec in
  let n = List.length (Topology.asns g.Topo_gen.topo) in
  Alcotest.(check int) "as count"
    (Topo_gen.default_spec.Topo_gen.tier1 + Topo_gen.default_spec.Topo_gen.tier2
    + Topo_gen.default_spec.Topo_gen.stubs)
    n;
  (* every stub can reach a tier-1-originated prefix *)
  let origin = List.hd g.Topo_gen.tier1_asns in
  let rib =
    Propagation.compute ~topo:g.Topo_gen.topo ~policy_of:(fun _ -> Policy.Ignore_rpki)
      ~validity_of:all_valid
      [ { Propagation.prefix; origin } ]
  in
  List.iter
    (fun s -> Alcotest.(check bool) (Printf.sprintf "stub %d reached" s) true (Propagation.route rib s <> None))
    g.Topo_gen.stub_asns;
  (* determinism *)
  let g2 = Topo_gen.generate Topo_gen.default_spec in
  Alcotest.(check (list int)) "deterministic" (Topology.asns g.Topo_gen.topo)
    (Topology.asns g2.Topo_gen.topo)

(* --- Table 6 shape on the small scenario --- *)

let table6_cell policy attack =
  let s = Topo_gen.small_scenario () in
  let victim_prefix = V4.p "63.174.16.0/20" in
  let dst = V4.addr_of_string_exn "63.174.23.7" in
  let idx = Origin_validation.build [ Vrp.make ~max_len:20 victim_prefix s.Topo_gen.victim ] in
  let validity r = Origin_validation.classify idx r in
  let anns =
    match attack with
    | `Subprefix_hijack ->
      Hijack.announcements ~victim_prefix ~victim_as:s.Topo_gen.victim
        ~attacker_as:s.Topo_gen.attacker
        (Hijack.Subprefix_hijack (Hijack.subprefix_containing ~victim_prefix ~addr:dst ~len:24))
    | `Rpki_manipulation ->
      (* ROA whacked while a covering ROA exists: victim's route is invalid *)
      [ { Propagation.prefix = victim_prefix; origin = s.Topo_gen.victim } ]
  in
  let validity =
    match attack with
    | `Subprefix_hijack -> validity
    | `Rpki_manipulation ->
      fun (r : Route.t) ->
        Origin_validation.classify
          (Origin_validation.build [ Vrp.make ~max_len:13 (V4.p "63.160.0.0/12") 1239 ])
          r
  in
  let net =
    Data_plane.build ~topo:s.Topo_gen.small_topo ~policy_of:(fun _ -> policy) ~validity_of:validity anns
  in
  Data_plane.reaches net ~src:s.Topo_gen.source ~addr:dst ~expected:s.Topo_gen.victim

let test_table6 () =
  (* drop invalid: reachable under routing attack, not under manipulation *)
  Alcotest.(check bool) "drop/hijack" true (table6_cell Policy.Drop_invalid `Subprefix_hijack);
  Alcotest.(check bool) "drop/manip" false (table6_cell Policy.Drop_invalid `Rpki_manipulation);
  (* depref invalid: the opposite corner *)
  Alcotest.(check bool) "depref/hijack" false (table6_cell Policy.Depref_invalid `Subprefix_hijack);
  Alcotest.(check bool) "depref/manip" true (table6_cell Policy.Depref_invalid `Rpki_manipulation)

let () =
  Alcotest.run "bgp"
    [ ( "topology",
        [ Alcotest.test_case "links" `Quick test_topology_links;
          Alcotest.test_case "cycle rejection" `Quick test_topology_rejects_cycle ] );
      ( "propagation",
        [ Alcotest.test_case "reaches everyone" `Quick test_propagation_reaches_everyone;
          Alcotest.test_case "valley free" `Quick test_propagation_valley_free;
          Alcotest.test_case "prefers customer" `Quick test_propagation_prefers_customer;
          Alcotest.test_case "prefers shorter" `Quick test_propagation_prefers_shorter;
          Alcotest.test_case "drop invalid" `Quick test_drop_invalid_blocks;
          Alcotest.test_case "depref picks valid" `Quick test_depref_prefers_valid ] );
      ( "data-plane",
        [ Alcotest.test_case "LPM forwarding" `Quick test_lpm_forwarding;
          Alcotest.test_case "no route" `Quick test_no_route ] );
      ("hijack", [ Alcotest.test_case "validation" `Quick test_hijack_validation ]);
      ("topo-gen", [ Alcotest.test_case "generated topology" `Quick test_topo_gen ]);
      ("table-6", [ Alcotest.test_case "policy tradeoff" `Quick test_table6 ]) ]
