(* Property test for the whacking engine: on randomly generated hierarchies,
   a planned-and-executed targeted whack always (a) kills exactly the target
   VRP's routing meaning and (b) leaves every other VRP's routing meaning
   intact (possibly reissued by the manipulator).

   This is the paper's central claim — fine-grained control without
   collateral damage — checked as an invariant rather than on one example. *)

open Rpki_core
open Rpki_repo
open Rpki_attack
open Rpki_ip

(* Build a random 3-level hierarchy: TA -> k children, each child issuing a
   few ROAs over disjoint /20 slices of its /16.  Deterministic in [seed]. *)
type world = {
  universe : Universe.t;
  ta : Authority.t;
  targets : (string * string * Vrp.t) list; (* issuer name, filename, vrp *)
}

let build_world seed =
  let rng = Rpki_util.Rng.create seed in
  let universe = Universe.create () in
  let ta =
    Authority.create_trust_anchor
      ~name:(Printf.sprintf "TA%d" seed)
      ~resources:(Resources.of_v4_strings [ "30.0.0.0/8" ])
      ~uri:(Printf.sprintf "rsync://ta%d/repo" seed)
      ~addr:(V4.addr_of_string_exn "198.51.100.1") ~host_asn:1 ~now:0 ~universe ()
  in
  let n_children = 1 + Rpki_util.Rng.int rng 3 in
  let targets = ref [] in
  for c = 0 to n_children - 1 do
    let name = Printf.sprintf "C%d_%d" seed c in
    let base = (30 lsl 24) lor (c lsl 16) in
    let child =
      Authority.create_child ta ~name
        ~resources:
          (Resources.make ~v4:(V4.Set.of_prefix (V4.Prefix.make base 16)) ())
        ~uri:(Printf.sprintf "rsync://%s/repo" name)
        ~addr:(base + 1) ~host_asn:(100 + c) ~now:0 ~universe ()
    in
    let n_roas = 1 + Rpki_util.Rng.int rng 4 in
    for r = 0 to n_roas - 1 do
      (* slice r of the child's /16, as a /20 or /22 *)
      let len = if Rpki_util.Rng.bool rng then 20 else 22 in
      let prefix = V4.Prefix.make (base lor (r lsl 12)) len in
      let asid = 1000 + (c * 10) + r in
      let filename, _ = Authority.issue_simple_roa child ~asid ~prefix ~now:0 () in
      targets := (name, filename, Vrp.make prefix asid) :: !targets
    done
  done;
  { universe; ta; targets = List.rev !targets }

let vrp_meaning_present vrps (v : Vrp.t) =
  List.exists (fun (w : Vrp.t) -> Assess.vrp_covers_same v w) vrps

let whack_invariant seed =
  let w = build_world seed in
  let rng = Rpki_util.Rng.create (seed * 7) in
  let issuer, filename, target_vrp = Rpki_util.Rng.pick rng w.targets in
  let rp =
    Relying_party.create ~name:"rp" ~asn:1 ~tals:[ Relying_party.tal_of_authority w.ta ] ()
  in
  let before = (Relying_party.sync rp ~now:1 ~universe:w.universe ()).Relying_party.vrps in
  let plan = Whack.plan_targeted ~manipulator:w.ta ~target_issuer:issuer ~target_filename:filename in
  ignore (Whack.execute ~manipulator:w.ta plan ~now:1);
  let after = (Relying_party.sync rp ~now:1 ~universe:w.universe ()).Relying_party.vrps in
  (* (a) the target's routing meaning is gone *)
  let target_gone = not (vrp_meaning_present after target_vrp) in
  (* (b) every other pre-existing meaning survives *)
  let others_survive =
    List.for_all
      (fun v -> Assess.vrp_covers_same v target_vrp || vrp_meaning_present after v)
      before
  in
  if not target_gone then QCheck.Test.fail_reportf "target %s survived" (Vrp.to_string target_vrp);
  if not others_survive then
    QCheck.Test.fail_reportf "collateral damage on seed %d:\n  before: %s\n  after: %s" seed
      (String.concat " " (List.map Vrp.to_string before))
      (String.concat " " (List.map Vrp.to_string after));
  true

let prop_no_collateral =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:12 ~name:"targeted whack never causes net collateral"
       (QCheck.make ~print:string_of_int QCheck.Gen.(int_range 1 1000))
       whack_invariant)

(* The monitor always notices a targeted whack. *)
let monitor_notices seed =
  let w = build_world seed in
  let rng = Rpki_util.Rng.create (seed * 13) in
  let issuer, filename, _ = Rpki_util.Rng.pick rng w.targets in
  let snap0 = Rpki_monitor.Monitor.take ~now:1 w.universe in
  let plan = Whack.plan_targeted ~manipulator:w.ta ~target_issuer:issuer ~target_filename:filename in
  ignore (Whack.execute ~manipulator:w.ta plan ~now:2);
  let snap1 = Rpki_monitor.Monitor.take ~now:2 w.universe in
  Rpki_monitor.Monitor.alarms (Rpki_monitor.Monitor.diff ~before:snap0 ~after:snap1) <> []

let prop_detected =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:8 ~name:"targeted whack always raises an alarm"
       (QCheck.make ~print:string_of_int QCheck.Gen.(int_range 1 1000))
       monitor_notices)

let () =
  Alcotest.run "whack-properties" [ ("invariants", [ prop_no_collateral; prop_detected ]) ]
