test/test_juris.ml: Alcotest Analysis Country Dataset List Rpki_ip Rpki_juris String
