test/test_mitigations.ml: Alcotest Authority Cert Fault List Loop Model Policy Pub_point Relying_party Rpki_bgp Rpki_core Rpki_crypto Rpki_ip Rpki_monitor Rpki_repo Rpki_sim String Universe V4
