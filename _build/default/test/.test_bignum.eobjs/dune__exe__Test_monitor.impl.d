test/test_monitor.ml: Alcotest Authority List Model Monitor Pub_point Rpki_attack Rpki_core Rpki_crypto Rpki_ip Rpki_monitor Rpki_repo Rpki_util String Whack
