test/test_campaign.ml: Alcotest Assess Campaign List Model Relying_party Rpki_attack Rpki_core Rpki_ip Rpki_juris Rpki_monitor Rpki_repo V4 Vrp
