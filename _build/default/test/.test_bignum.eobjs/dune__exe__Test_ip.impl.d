test/test_ip.ml: Addr Alcotest As_res List QCheck QCheck_alcotest Rpki_ip String V4 V6
