test/test_asn.mli:
