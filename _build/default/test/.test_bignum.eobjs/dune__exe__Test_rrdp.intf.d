test/test_rrdp.mli:
