test/test_juris.mli:
