test/test_bignum.ml: Alcotest List Nat Prime Printf QCheck QCheck_alcotest Rpki_bignum Rpki_util Zint
