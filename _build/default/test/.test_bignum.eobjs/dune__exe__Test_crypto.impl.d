test/test_crypto.ml: Alcotest Bytes Char Drbg Gen Hmac Lazy List Printf QCheck QCheck_alcotest Rpki_crypto Rpki_util Rsa Sha256 String
