test/test_rrdp.ml: Alcotest List Printf Pub_point QCheck QCheck_alcotest Rpki_repo Rrdp String
