test/test_sim.ml: Alcotest Deployment List Loop Policy Rpki_bgp Rpki_sim
