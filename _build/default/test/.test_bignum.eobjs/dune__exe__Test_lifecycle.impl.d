test/test_lifecycle.ml: Alcotest Authority Fault List Model Option Printf Relying_party Rpki_attack Rpki_core Rpki_ip Rpki_monitor Rpki_repo Rtime V4
