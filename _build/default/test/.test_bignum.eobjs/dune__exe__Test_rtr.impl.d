test/test_rtr.ml: Alcotest Bytes Char Format List Pdu QCheck QCheck_alcotest Rpki_core Rpki_ip Rpki_rtr Session String V4 V6 Vrp
