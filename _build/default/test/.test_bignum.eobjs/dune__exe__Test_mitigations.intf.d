test/test_mitigations.mli:
