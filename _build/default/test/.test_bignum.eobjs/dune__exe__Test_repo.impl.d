test/test_repo.ml: Alcotest Authority Cert Fault Lazy List Model Option Origin_validation Pub_point Relying_party Route Rpki_core Rpki_crypto Rpki_ip Rpki_repo Rtime String Universe V4 Vrp
