test/test_rtr.mli:
