test/test_asn.ml: Alcotest Der Format List Nat Printf QCheck QCheck_alcotest Rpki_asn Rpki_bignum Rpki_util String
