test/test_whack_prop.mli:
