test/test_bgp.ml: Alcotest Data_plane Hijack List Origin_validation Policy Printf Propagation Route Rpki_bgp Rpki_core Rpki_ip Topo_gen Topology V4 Vrp
