test/test_attack.ml: Alcotest Assess Authority List Model Relying_party Resources Route Rpki_attack Rpki_core Rpki_ip Rpki_repo Universe V4 Vrp Whack
