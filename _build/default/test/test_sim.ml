(* Tests for the closed-loop simulator (Side Effect 7) and the deployment
   model (Side Effect 5). *)

open Rpki_sim
open Rpki_bgp

let probe hist label t =
  let r = List.nth hist (t - 1) in
  match List.assoc_opt label r.Loop.probe_results with
  | Some b -> b
  | None -> Alcotest.failf "no probe %s at t%d" label t

(* --- Side Effect 7 --- *)

let test_se7_drop_invalid_persists () =
  let _, hist = Loop.run_section6 ~policy:Policy.Drop_invalid () in
  Alcotest.(check int) "seven ticks" 7 (List.length hist);
  (* healthy before the fault *)
  Alcotest.(check bool) "t1 up" true (probe hist "continental-repo" 1);
  Alcotest.(check bool) "t2 up" true (probe hist "continental-repo" 2);
  (* the corruption lands at t3 and the repo becomes unreachable *)
  Alcotest.(check bool) "t3 down" false (probe hist "continental-repo" 3);
  (* the repository is repaired before t4, yet the failure persists *)
  Alcotest.(check bool) "t4 still down" false (probe hist "continental-repo" 4);
  Alcotest.(check bool) "t7 still down" false (probe hist "continental-repo" 7);
  (* the unrelated repository is never affected *)
  List.iter (fun t -> Alcotest.(check bool) "sprint up" true (probe hist "sprint-repo" t)) [ 1; 7 ]

let test_se7_depref_recovers () =
  let _, hist = Loop.run_section6 ~policy:Policy.Depref_invalid () in
  (* under depref the repo stays reachable (the invalid route is depreffed
     but still selected), so the corrupt ROA is refetched after repair *)
  Alcotest.(check bool) "t4 recovered" true (probe hist "continental-repo" 4);
  Alcotest.(check bool) "t7 up" true (probe hist "continental-repo" 7)

let test_se7_vrp_counts () =
  let _, hist = Loop.run_section6 ~policy:Policy.Drop_invalid () in
  let vrps t = (List.nth hist (t - 1)).Loop.vrp_count in
  Alcotest.(check int) "nine before" 9 (vrps 2);
  Alcotest.(check int) "eight during" 8 (vrps 3);
  Alcotest.(check int) "still eight after repair" 8 (vrps 7)

let test_se7_fetch_failures_recorded () =
  let _, hist = Loop.run_section6 ~policy:Policy.Drop_invalid () in
  let r4 = List.nth hist 3 in
  Alcotest.(check bool) "continental fetch failed at t4" true
    (List.mem "rsync://rpki.continental.net/repo" r4.Loop.fetch_failures)

let test_se7_flush_cache_does_not_rescue () =
  (* the paper: recovery needs a manual fix; merely dropping the stale cache
     does not help because the repository is still unreachable *)
  let _, hist = Loop.run_section6 ~policy:Policy.Drop_invalid ~flush_cache_at:(Some 6) () in
  Alcotest.(check bool) "t7 still down" false (probe hist "continental-repo" 7)

let test_se7_ignore_rpki_immune () =
  let _, hist = Loop.run_section6 ~policy:Policy.Ignore_rpki () in
  List.iter
    (fun t -> Alcotest.(check bool) "always up" true (probe hist "continental-repo" t))
    [ 1; 3; 4; 7 ]

(* --- Side Effect 5 --- *)

let test_se5_monotone () =
  let rows = Deployment.sweep () in
  Alcotest.(check int) "six rows" 6 (List.length rows);
  (* flips decrease monotonically with adoption *)
  let flips = List.map (fun (r : Deployment.row) -> r.Deployment.flips) rows in
  let rec decreasing = function
    | a :: b :: rest -> a >= b && decreasing (b :: rest)
    | _ -> true
  in
  Alcotest.(check bool) "monotone" true (decreasing flips);
  (* zero adoption: every customer route flips *)
  let r0 = List.hd rows in
  Alcotest.(check int) "all customers flip at 0"
    (Deployment.default_spec.Deployment.n_providers
    * Deployment.default_spec.Deployment.customers_per_provider)
    r0.Deployment.flips;
  (* full adoption: nothing flips *)
  let r1 = List.nth rows 5 in
  Alcotest.(check int) "none at 1.0" 0 r1.Deployment.flips

let test_se5_no_invalid_before () =
  List.iter
    (fun (r : Deployment.row) ->
      Alcotest.(check int) "before: no invalid" 0 r.Deployment.before.Deployment.invalid)
    (Deployment.sweep ())

let test_se5_provider_routes_always_fine () =
  (* the provider's own route is valid after it issues its ROA *)
  let r = Deployment.run_once { Deployment.default_spec with Deployment.customer_adoption = 0.0 } in
  Alcotest.(check int) "providers valid after"
    Deployment.default_spec.Deployment.n_providers r.Deployment.after.Deployment.valid

let test_ordering_ablation () =
  let cover = Deployment.invalid_window ~spec:Deployment.default_spec Deployment.Cover_first in
  let sub = Deployment.invalid_window ~spec:Deployment.default_spec Deployment.Subprefixes_first in
  Alcotest.(check bool) "cover-first opens a window" true (cover > 0);
  Alcotest.(check int) "subprefixes-first is safe" 0 sub

let test_deployment_deterministic () =
  let a = Deployment.run_once Deployment.default_spec in
  let b = Deployment.run_once Deployment.default_spec in
  Alcotest.(check int) "same flips" a.Deployment.flips b.Deployment.flips

let () =
  Alcotest.run "sim"
    [ ( "side-effect-7",
        [ Alcotest.test_case "drop-invalid persists" `Quick test_se7_drop_invalid_persists;
          Alcotest.test_case "depref recovers" `Quick test_se7_depref_recovers;
          Alcotest.test_case "vrp counts" `Quick test_se7_vrp_counts;
          Alcotest.test_case "fetch failures" `Quick test_se7_fetch_failures_recorded;
          Alcotest.test_case "cache flush does not rescue" `Quick test_se7_flush_cache_does_not_rescue;
          Alcotest.test_case "ignore-rpki immune" `Quick test_se7_ignore_rpki_immune ] );
      ( "side-effect-5",
        [ Alcotest.test_case "monotone in adoption" `Quick test_se5_monotone;
          Alcotest.test_case "no invalid before" `Quick test_se5_no_invalid_before;
          Alcotest.test_case "provider routes valid" `Quick test_se5_provider_routes_always_fine;
          Alcotest.test_case "ordering ablation" `Quick test_ordering_ablation;
          Alcotest.test_case "deterministic" `Quick test_deployment_deterministic ] ) ]
