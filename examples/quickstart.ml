(* Quickstart: build an RPKI, validate it, classify BGP routes.

   Run with: dune exec examples/quickstart.exe

   This walks the full pipeline of the library in ~60 lines:
     1. create a trust anchor and a delegation chain with real (simulated)
        RSA keys, DER-encoded certificates and signed ROAs;
     2. sync a relying party against the publication points;
     3. classify routes as valid / invalid / unknown (RFC 6811);
     4. feed the validated ROA payloads to a router over RTR (RFC 6810). *)

open Rpki_core
open Rpki_repo
open Rpki_ip

let () =
  let universe = Universe.create () in
  let now = Rtime.epoch in

  (* 1. a registry holding 198.51.0.0/16, delegating a /20 to an ISP *)
  let registry =
    Authority.create_trust_anchor ~name:"Registry"
      ~resources:(Resources.of_v4_strings [ "198.51.0.0/16" ])
      ~uri:"rsync://registry.example/repo"
      ~addr:(V4.addr_of_string_exn "192.0.2.1") ~host_asn:64500 ~now ~universe ()
  in
  let isp =
    Authority.create_child registry ~name:"ExampleISP"
      ~resources:(Resources.of_v4_strings [ "198.51.16.0/20" ])
      ~uri:"rsync://isp.example/repo"
      ~addr:(V4.addr_of_string_exn "198.51.16.1") ~host_asn:64501 ~now ~universe ()
  in
  (* the ISP authorizes its own AS to originate the /20 and subprefixes
     down to /22 *)
  let _ =
    Authority.issue_roa isp ~asid:64501
      ~v4_entries:[ Roa.entry ~max_len:22 (V4.p "198.51.16.0/20") ]
      ~now ()
  in

  (* 2. a relying party syncs from the trust anchor down *)
  let rp =
    Relying_party.create ~name:"rp" ~asn:64999
      ~tals:[ Relying_party.tal_of_authority registry ] ()
  in
  let result = Relying_party.sync rp ~now:(Rtime.add now 1) ~universe () in
  let index = result.Relying_party.index in
  Printf.printf "validated %d ROA payload(s):\n" (List.length result.Relying_party.vrps);
  List.iter (fun v -> Printf.printf "  %s\n" (Vrp.to_string v)) result.Relying_party.vrps;

  (* 3. classify some BGP routes *)
  let classify p origin =
    let route = Route.make (V4.p p) origin in
    Printf.printf "  %-28s -> %s\n" (Route.to_string route)
      (Origin_validation.state_to_string (Origin_validation.classify index route))
  in
  print_endline "route origin validation:";
  classify "198.51.16.0/20" 64501; (* valid: matching ROA *)
  classify "198.51.20.0/22" 64501; (* valid: within maxLength *)
  classify "198.51.16.0/24" 64501; (* invalid: beyond maxLength *)
  classify "198.51.16.0/20" 64666; (* invalid: wrong origin (a hijack) *)
  classify "198.51.64.0/20" 64502; (* unknown: no covering ROA *)

  (* 4. push the VRPs to a router over the RTR protocol *)
  let cache = Rpki_rtr.Session.create_cache () in
  Rpki_rtr.Session.publish cache result.Relying_party.vrps;
  let router = Rpki_rtr.Session.create_router () in
  let received = Rpki_rtr.Session.synchronize router cache in
  Printf.printf "router received %d VRP(s) over RTR (serial %d)\n" (List.length received)
    (Rpki_rtr.Session.router_serial router)
