(* The public monitor at work: snapshot diffs catch a stealth whack.

   Run with: dune exec examples/monitor_demo.exe

   A stealthy manipulator deletes Continental Broadband's ROA from the
   publication point without leaving a CRL trace — the quiet variant of
   the paper's whacking attacks.  A content monitor that diffs daily
   snapshots of every publication point still sees the object vanish.
   We then show the complementary blind spot: a stalling (Stalloris-style)
   transport adversary changes no published object at all, so the content
   diff stays silent — only the relying party's own staleness accounting
   raises the alarm. *)

open Rpki_core
open Rpki_repo
open Rpki_ip

let print_alerts label alerts =
  Printf.printf "%s:\n" label;
  if alerts = [] then print_endline "  (nothing to report)"
  else List.iter (fun a -> Format.printf "  %a@." Rpki_monitor.Monitor.pp_alert a) alerts

let () =
  let m = Model.build () in
  let rp = Model.relying_party m in
  let target = Route.make (V4.p "63.174.16.0/22") 7341 in

  (* day 1: all quiet; the monitor takes its baseline snapshot *)
  let idx1 = (Relying_party.sync rp ~now:1 ~universe:m.Model.universe ()).Relying_party.index in
  Printf.printf "day 1: %s -> %s\n" (Route.to_string target)
    (Origin_validation.state_to_string (Origin_validation.classify idx1 target));
  let snap1 = Rpki_monitor.Monitor.take ~now:1 m.Model.universe in

  (* day 2: the ROA silently disappears — no revocation, no CRL entry *)
  Authority.stealth_delete_roa m.Model.continental ~filename:m.Model.roa_target22 ~now:2;
  let idx2 = (Relying_party.sync rp ~now:2 ~universe:m.Model.universe ()).Relying_party.index in
  Printf.printf "day 2: %s -> %s (ROA stealthily deleted)\n" (Route.to_string target)
    (Origin_validation.state_to_string (Origin_validation.classify idx2 target));

  let snap2 = Rpki_monitor.Monitor.take ~now:2 m.Model.universe in
  let alerts = Rpki_monitor.Monitor.diff ~before:snap1 ~after:snap2 in
  print_alerts "\nwhat the content monitor reports" alerts;
  Printf.printf "%d alarm(s): the deletion left no CRL trace, but the diff sees it.\n"
    (List.length (Rpki_monitor.Monitor.alarms alerts));

  (* day 3: a different adversary — nothing in the repository changes, the
     transport to Continental's publication point simply stalls *)
  let transport = Transport.create () in
  Transport.set_fault transport ~uri:(Pub_point.uri (Authority.pub m.Model.continental))
    (Transport.Stalling 1024);
  let result =
    Relying_party.sync rp ~now:3 ~universe:m.Model.universe ~transport
      ~policy:Relying_party.naive_policy ()
  in
  let snap3 = Rpki_monitor.Monitor.take ~now:3 m.Model.universe in
  print_alerts "\nday 3, stalled transport — what the content monitor reports"
    (Rpki_monitor.Monitor.diff ~before:snap2 ~after:snap3);
  print_alerts "what the relying party's staleness accounting reports"
    (Rpki_monitor.Monitor.staleness_alerts result);
  print_endline "\ncontent diffs catch misbehaving authorities; staleness accounting";
  print_endline "catches misbehaving networks. A monitor needs both.";

  (* day 4: the stealthiest adversary yet — a split view.  Continental
     serves one targeted vantage a re-signed copy of its repository with
     the /20 ROA gone, and everyone else the honest contents.  Nothing in
     the universe changes (the fork lives on the victim's transport), so
     the content monitor is structurally blind; the victim's fetch is live
     and fresh, so staleness accounting is silent too.  Only comparing
     what different vantages were served can catch it: each vantage's
     transparency log commits to its observations, and one gossip round
     turns the divergence into checkable fork evidence. *)
  let victim_route = Route.make (V4.p "63.174.16.0/20") 17054 in
  let victim_rp = Model.relying_party ~name:"victim-rp" m in
  let monitor_rp = Model.relying_party ~name:"monitor-rp" m in
  let victim_tr = Transport.create () and monitor_tr = Transport.create () in
  let fork =
    Rpki_attack.Split_view.plan ~authority:m.Model.continental
      ~target_filename:m.Model.roa_target20 ()
  in
  Printf.printf "\nday 4: %s\n" (Rpki_attack.Split_view.describe fork);
  Rpki_attack.Split_view.apply fork victim_tr;
  let victim_result =
    Relying_party.sync victim_rp ~now:4 ~universe:m.Model.universe ~transport:victim_tr ()
  in
  let monitor_result =
    Relying_party.sync monitor_rp ~now:4 ~universe:m.Model.universe ~transport:monitor_tr ()
  in
  Printf.printf "  victim sees  %s -> %s\n" (Route.to_string victim_route)
    (Origin_validation.state_to_string
       (Origin_validation.classify victim_result.Relying_party.index victim_route));
  Printf.printf "  monitor sees %s -> %s\n" (Route.to_string victim_route)
    (Origin_validation.state_to_string
       (Origin_validation.classify monitor_result.Relying_party.index victim_route));
  let snap4 = Rpki_monitor.Monitor.take ~now:4 m.Model.universe in
  print_alerts "\nwhat the content monitor reports"
    (Rpki_monitor.Monitor.diff ~before:snap3 ~after:snap4);
  print_alerts "what the victim's staleness accounting reports"
    (Rpki_monitor.Monitor.staleness_alerts victim_result);
  let vantage name rp tr addr =
    { Gossip.v_name = name; v_rp = rp;
      v_endpoint = Pub_point.create ~uri:("rsync://" ^ name ^ ".example/log") ~addr ~host_asn:1;
      v_transport = tr }
  in
  let mesh =
    Gossip.create
      [ vantage "victim-rp" victim_rp victim_tr 1; vantage "monitor-rp" monitor_rp monitor_tr 2 ]
  in
  let report = Gossip.round mesh ~now:4 in
  print_alerts "what one round of tree-head gossip reports"
    (Rpki_monitor.Monitor.gossip_alerts report.Gossip.r_alarms);
  let key_of name =
    List.find_opt (fun (v : Gossip.vantage) -> String.equal v.Gossip.v_name name)
      (Gossip.vantages mesh)
    |> Option.map (fun (v : Gossip.vantage) -> Relying_party.transparency_key v.Gossip.v_rp)
  in
  List.iter
    (fun a ->
      Printf.printf "  fork evidence re-verified from scratch: %b\n"
        (Gossip.verify_fork ~key_of a))
    (Gossip.forks mesh);
  print_endline "\nthe split view defeated both the content diff and staleness accounting;";
  print_endline "Merkle-logged observations plus gossip made it detectable — with proof."
