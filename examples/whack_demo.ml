(* The Figure 3 attack, end to end, with the monitor watching.

   Run with: dune exec examples/whack_demo.exe

   Sprint (the grandparent) whacks Continental Broadband's ROA
   (63.174.16.0/22, AS 7341) using make-before-break, and we verify:
     - the target ROA's route flips valid -> invalid,
     - no other route changes validity (zero collateral),
     - the public monitor still catches the manipulation. *)

open Rpki_core
open Rpki_repo
open Rpki_attack
open Rpki_ip

let () =
  let m = Model.build () in
  let rp = Model.relying_party m in
  print_endline "The model RPKI (Figure 2):";
  print_string (Model.render m);

  (* the states before the attack *)
  let before = (Relying_party.sync rp ~now:1 ~universe:m.Model.universe ()).Relying_party.index in
  let target = Route.make (V4.p "63.174.16.0/22") 7341 in
  let bystander = Route.make (V4.p "63.174.25.0/24") 17054 in
  let show idx label =
    Printf.printf "%s:\n  target    %s -> %s\n  bystander %s -> %s\n" label
      (Route.to_string target)
      (Origin_validation.state_to_string (Origin_validation.classify idx target))
      (Route.to_string bystander)
      (Origin_validation.state_to_string (Origin_validation.classify idx bystander))
  in
  show before "\nbefore the attack";

  (* the monitor takes its daily snapshot *)
  let snap0 = Rpki_monitor.Monitor.take ~now:1 m.Model.universe in

  (* Sprint plans and executes the whack *)
  let plan =
    Whack.plan_targeted ~manipulator:m.Model.sprint ~target_issuer:"Continental"
      ~target_filename:m.Model.roa_target22
  in
  print_newline ();
  print_string (Whack.describe plan);
  let reissued = Whack.execute ~manipulator:m.Model.sprint plan ~now:2 in
  Printf.printf "executed; %d object(s) reissued by Sprint\n" (List.length reissued);

  (* the target is whacked, the bystanders are untouched *)
  let after = (Relying_party.sync rp ~now:2 ~universe:m.Model.universe ()).Relying_party.index in
  show after "\nafter the attack";

  (* ... but the monitor sees it *)
  let snap1 = Rpki_monitor.Monitor.take ~now:2 m.Model.universe in
  let alerts = Rpki_monitor.Monitor.diff ~before:snap0 ~after:snap1 in
  print_endline "\nwhat the monitor reports:";
  List.iter (fun a -> Format.printf "  %a@." Rpki_monitor.Monitor.pp_alert a) alerts;
  let alarms = Rpki_monitor.Monitor.alarms alerts in
  Printf.printf "\n%d alarm(s): stealthy whacking is targeted, but not invisible.\n"
    (List.length alarms)
