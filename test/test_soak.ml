(* Long-run endurance, tested as invariants rather than curves:

   - a multi-thousand-tick soak (the canned scenario, churn off) runs with
     flat memory: Gc live words and the base snapshot stay bounded, disk
     cost per save stays O(delta), and compaction keeps the segment chain
     short;
   - under churn with short validity windows, epoch eviction holds the
     Valcache resident population flat where the non-evicting run grows
     monotonically;
   - [Valcache.evict] and [Valcache.clear] are distinguishable by their
     counters: eviction accounts for what it drops, a wipe zeroes
     everything — so a clear can never masquerade as eviction. *)

open Rpki_repo
module Loop = Rpki_sim.Loop

let resident (s : Loop.soak_sample) =
  match s.Loop.so_residency with
  | None -> 0
  | Some rs -> rs.Valcache.rs_verdicts + rs.Valcache.rs_outcomes

let evicted (s : Loop.soak_sample) =
  match s.Loop.so_residency with
  | None -> 0
  | Some rs -> rs.Valcache.rs_verdicts_evicted + rs.Valcache.rs_outcomes_evicted

(* The satellite smoke: >= 2000 ticks under `dune runtest`, asserting the
   growth curves the refactor flattens actually stay flat. *)
let test_soak_flat_memory () =
  let r = Loop.run_soak () in
  let samples = r.Loop.so_samples in
  Alcotest.(check bool) "sampled the whole run" true (List.length samples >= 10);
  let first = List.hd samples in
  let final = List.nth samples (List.length samples - 1) in
  Alcotest.(check bool) "ran >= 2000 ticks" true (final.Loop.so_tick >= 2000);
  (* flat memory: the last sample's live words must stay within a small
     factor of the first sample's, 1900 ticks earlier (the compaction
     sawtooth makes them drift within a cycle, never across cycles) *)
  Alcotest.(check bool)
    (Printf.sprintf "live words flat (%d -> %d)" first.Loop.so_live_words
       final.Loop.so_live_words)
    true
    (final.Loop.so_live_words <= 2 * first.Loop.so_live_words);
  (* O(delta) saves: without churn the per-save disk cost is small and the
     base snapshot does not grow with tick count *)
  Alcotest.(check bool)
    (Printf.sprintf "bytes per save bounded (%.0f)" r.Loop.so_bytes_per_save)
    true (r.Loop.so_bytes_per_save < 5000.);
  Alcotest.(check bool)
    (Printf.sprintf "snapshot bytes flat (%d -> %d)" first.Loop.so_snapshot_bytes
       final.Loop.so_snapshot_bytes)
    true
    (final.Loop.so_snapshot_bytes <= 2 * max 1 first.Loop.so_snapshot_bytes);
  (* compaction keeps the chain a restart must replay short *)
  Alcotest.(check bool) "segment chain bounded by the compaction period" true
    (List.for_all
       (fun (s : Loop.soak_sample) ->
         s.Loop.so_segments <= Loop.default_soak.Loop.sk_compact_every)
       samples)

(* Epoch eviction under churn: with per-tick re-issuance and short validity
   windows the evicting run's resident population plateaus, while the
   non-evicting run grows without bound. *)
let test_eviction_flattens_residency () =
  let config =
    { Loop.default_soak with
      Loop.sk_ticks = 160; sk_churn_every = 1; sk_compact_every = 32;
      sk_validity = Some 24; sk_refresh_interval = Some 24; sk_sample_every = 32 }
  in
  let on = Loop.run_soak ~config () in
  let off = Loop.run_soak ~config:{ config with Loop.sk_evict = false } () in
  let last r =
    List.nth r.Loop.so_samples (List.length r.Loop.so_samples - 1)
  in
  let mid r = List.nth r.Loop.so_samples (List.length r.Loop.so_samples / 2) in
  Alcotest.(check bool) "eviction dropped entries" true (evicted (last on) > 0);
  Alcotest.(check bool)
    (Printf.sprintf "evicting run flat after warmup (%d @t%d vs %d final)"
       (resident (mid on)) (mid on).Loop.so_tick (resident (last on)))
    true
    (resident (last on) <= resident (mid on) + resident (mid on) / 4);
  Alcotest.(check bool)
    (Printf.sprintf "non-evicting run monotone (%d mid, %d final)"
       (resident (mid off)) (resident (last off)))
    true
    (resident (last off) > resident (mid off));
  Alcotest.(check bool)
    (Printf.sprintf "eviction beats no eviction (%d < %d)" (resident (last on))
       (resident (last off)))
    true
    (resident (last on) < resident (last off))

(* Soak on a generated world: [sk_world] swaps the canned split-view rig
   for a synthesized one (world churn re-signs the generated root's
   subtree) without disturbing any endurance invariant. *)
let test_soak_on_generated_world () =
  let module World = Rpki_world.Synthesis in
  let module As_graph = Rpki_bgp.As_graph in
  let wspec =
    { World.default_spec with
      World.graph = { As_graph.default_spec with As_graph.ases = 80; seed = 5 };
      ca_min_cone = 8 }
  in
  let config =
    { Loop.default_soak with
      Loop.sk_ticks = 120; sk_churn_every = 8; sk_compact_every = 32;
      sk_sample_every = 24; sk_world = Some wspec }
  in
  let r = Loop.run_soak ~config () in
  let samples = r.Loop.so_samples in
  let final = List.nth samples (List.length samples - 1) in
  Alcotest.(check bool) "ran the full soak" true (final.Loop.so_tick >= 120);
  Alcotest.(check bool) "saves happened" true (r.Loop.so_saves > 0);
  Alcotest.(check bool) "segmented saves stay O(delta)" true
    (r.Loop.so_bytes_per_save < 20000.);
  Alcotest.(check bool) "compaction bounds the chain" true
    (List.for_all (fun (s : Loop.soak_sample) -> s.Loop.so_segments <= 32) samples)

(* --- clear vs evict ----------------------------------------------------- *)

let outcome ~snap ~boundaries =
  { Valcache.o_parent_fp = "parent-fp"; o_snap_fp = snap; o_at = 1;
    o_boundaries = boundaries; o_subject = "CA"; o_vrps = []; o_issues = [];
    o_failed_resources = Rpki_core.Resources.empty;
    o_children = []; o_mft_number = 1; o_mft_hash = "" }

let test_clear_is_not_evict () =
  let vc = Valcache.create () in
  (* one dead outcome (every window closed), one live *)
  Valcache.store_point vc (outcome ~snap:"dead" ~boundaries:[ 1; 5 ]);
  Valcache.store_point vc (outcome ~snap:"live" ~boundaries:[ 1; 500 ]);
  let r0 = Valcache.residency vc in
  Alcotest.(check int) "two outcomes resident" 2 r0.Valcache.rs_outcomes;
  Valcache.evict vc ~now:100;
  let r1 = Valcache.residency vc in
  Alcotest.(check int) "evict drops only the dead outcome" 1 r1.Valcache.rs_outcomes;
  Alcotest.(check int) "evict accounts for the drop" 1 r1.Valcache.rs_outcomes_evicted;
  (* eviction is idempotent on the survivors and keeps accounting *)
  Valcache.evict vc ~now:100;
  let r2 = Valcache.residency vc in
  Alcotest.(check int) "second evict drops nothing" 1 r2.Valcache.rs_outcomes;
  Alcotest.(check int) "counter unchanged" 1 r2.Valcache.rs_outcomes_evicted;
  (* a wipe removes everything AND zeroes the counters: it reads as an
     operator reset, never as eviction *)
  Valcache.clear vc;
  let r3 = Valcache.residency vc in
  Alcotest.(check int) "clear empties the cache" 0 r3.Valcache.rs_outcomes;
  Alcotest.(check int) "clear zeroes the eviction counters" 0
    r3.Valcache.rs_outcomes_evicted

let test_evict_respects_open_windows () =
  let vc = Valcache.create () in
  Valcache.store_point vc (outcome ~snap:"half" ~boundaries:[ 1; 50; 500 ]);
  Valcache.evict vc ~now:100;
  let r = Valcache.residency vc in
  (* one boundary still ahead: the outcome can still answer a lookup *)
  Alcotest.(check int) "outcome with an open window survives" 1 r.Valcache.rs_outcomes;
  Valcache.evict vc ~now:501;
  let r = Valcache.residency vc in
  Alcotest.(check int) "dropped once every window closed" 0 r.Valcache.rs_outcomes

let () =
  Alcotest.run "soak"
    [ ( "endurance",
        [ Alcotest.test_case "2000-tick soak runs with flat memory" `Slow
            test_soak_flat_memory;
          Alcotest.test_case "epoch eviction flattens residency under churn" `Quick
            test_eviction_flattens_residency;
          Alcotest.test_case "soak runs on a generated world" `Slow
            test_soak_on_generated_world ] );
      ( "clear-vs-evict",
        [ Alcotest.test_case "clear zeroes counters, evict accounts" `Quick
            test_clear_is_not_evict;
          Alcotest.test_case "eviction waits for every window to close" `Quick
            test_evict_respects_open_windows ] ) ]
