(* Tests for the transport layer and the relying party's fetch policy:
   pricing, fault semantics, timeouts, budgets, retries, and the fallback
   ladder live -> mirror -> RRDP -> stale cache. *)

open Rpki_repo

let transfer_of (r : Relying_party.sync_result) uri =
  match
    List.find_opt (fun (tr : Relying_party.transfer) -> tr.Relying_party.t_uri = uri)
      r.Relying_party.transfers
  with
  | Some tr -> tr
  | None -> Alcotest.failf "no transfer recorded for %s" uri

let status_name = function
  | Relying_party.Fetched -> "fetched"
  | Relying_party.Fetched_mirror -> "mirror"
  | Relying_party.Fetched_rrdp -> "rrdp"
  | Relying_party.Stale_cache -> "stale"
  | Relying_party.Unavailable -> "unavailable"

let check_status what expected actual =
  Alcotest.(check string) what (status_name expected) (status_name actual)

(* --- probe pricing --- *)

let test_probe () =
  let pp = Pub_point.create ~uri:"rsync://a/repo" ~addr:1 ~host_asn:1 in
  let tr = Transport.create ~latency_of:(fun _ -> Some 5) () in
  (match Transport.probe tr ~point:pp ~timeout:10 with
  | `Ok 5 -> ()
  | _ -> Alcotest.fail "healthy point at latency 5 should cost 5");
  (match Transport.probe tr ~point:pp ~timeout:4 with
  | `Stalled 4 -> ()
  | _ -> Alcotest.fail "latency above the timeout spends the timeout");
  Transport.set_fault tr ~uri:"rsync://a/repo" (Transport.Slow 10);
  match Transport.probe tr ~point:pp ~timeout:100 with
  | `Ok 15 -> ()
  | _ -> Alcotest.fail "Slow adds to the base latency"

let test_probe_stalling_multiplies () =
  let pp = Pub_point.create ~uri:"rsync://a/repo" ~addr:1 ~host_asn:1 in
  let tr = Transport.create ~latency_of:(fun _ -> Some 5) () in
  Transport.set_fault tr ~uri:"rsync://a/repo" (Transport.Stalling 8);
  (match Transport.probe tr ~point:pp ~timeout:100 with
  | `Ok 48 -> ()
  | r ->
    Alcotest.failf "Stalling 8 over base 5 should cost (5+1)*8=48, got %s"
      (match r with
      | `Ok n -> Printf.sprintf "Ok %d" n
      | `Stalled n -> Printf.sprintf "Stalled %d" n
      | `Unroutable n -> Printf.sprintf "Unroutable %d" n));
  (* a zero-latency link still stalls once throttled hard enough *)
  let tr0 = Transport.create () in
  Transport.set_fault tr0 ~uri:"rsync://a/repo" (Transport.Stalling 50);
  match Transport.probe tr0 ~point:pp ~timeout:10 with
  | `Stalled 10 -> ()
  | _ -> Alcotest.fail "zero-latency stalling point must still stall"

let test_fault_table () =
  let tr = Transport.create () in
  Transport.set_fault tr ~uri:"a" (Transport.Slow 3);
  Transport.set_fault tr ~uri:"b" Transport.Unreachable;
  Alcotest.(check int) "two faults" 2 (List.length (Transport.faults tr));
  Transport.set_fault tr ~uri:"a" Transport.Healthy;
  Alcotest.(check int) "healthy clears" 1 (List.length (Transport.faults tr));
  (match Transport.fault_of tr ~uri:"b" with
  | Transport.Unreachable -> ()
  | _ -> Alcotest.fail "b still unreachable");
  Transport.clear_faults tr;
  Alcotest.(check int) "reset" 0 (List.length (Transport.faults tr))

let test_unroutable () =
  let pp = Pub_point.create ~uri:"rsync://a/repo" ~addr:1 ~host_asn:1 in
  let tr = Transport.create ~latency_of:(fun _ -> None) ~failure_cost:3 () in
  match Transport.probe tr ~point:pp ~timeout:100 with
  | `Unroutable 3 -> ()
  | _ -> Alcotest.fail "no route costs failure_cost"

(* --- fetch policy against the model --- *)

let shared = lazy (Rpki_repo.Model.build ())
let fresh_model () = Model.build ()
let continental_uri (m : Model.t) = Pub_point.uri (Authority.pub m.Model.continental)

let rp_for m = Model.relying_party m

let test_stall_falls_back_to_stale () =
  let m = Lazy.force shared in
  let rp = rp_for m in
  let uri = continental_uri m in
  let tr = Transport.instant () in
  (* healthy first sync seeds the cache *)
  let r1 = Relying_party.sync rp ~now:1 ~universe:m.Model.universe ~transport:tr () in
  check_status "tick 1 live" Relying_party.Fetched (transfer_of r1 uri).Relying_party.t_status;
  Alcotest.(check int) "no staleness" 0 (Relying_party.max_data_age r1);
  (* then the point stalls *)
  Transport.set_fault tr ~uri (Transport.Stalling 1_000_000);
  let r2 = Relying_party.sync rp ~now:4 ~universe:m.Model.universe ~transport:tr () in
  let t2 = transfer_of r2 uri in
  check_status "tick 4 stale" Relying_party.Stale_cache t2.Relying_party.t_status;
  Alcotest.(check int) "data age = now - last good fetch" 3 t2.Relying_party.t_data_age;
  Alcotest.(check int) "result-level max age" 3 (Relying_party.max_data_age r2);
  Alcotest.(check string) "cache channel" "cache" t2.Relying_party.t_channel;
  (* retries were bounded: default policy issues 1 + retries attempts *)
  Alcotest.(check int) "bounded attempts"
    (1 + Relying_party.default_policy.Relying_party.retries)
    t2.Relying_party.t_attempts;
  (* stale copy still validates: same VRPs as the live sync *)
  Alcotest.(check int) "same vrps"
    (List.length r1.Relying_party.vrps)
    (List.length r2.Relying_party.vrps)

let test_mirror_fallback_over_transport () =
  let m = fresh_model () in
  let rp = rp_for m in
  let uri = continental_uri m in
  let mirror =
    Pub_point.create ~uri:"rsync://mirror/continental" ~addr:42 ~host_asn:99
  in
  Universe.add_mirror m.Model.universe ~of_uri:uri mirror;
  Universe.refresh_mirrors m.Model.universe;
  let tr = Transport.instant () in
  Transport.set_fault tr ~uri Transport.Unreachable;
  let r = Relying_party.sync rp ~now:1 ~universe:m.Model.universe ~transport:tr () in
  let t = transfer_of r uri in
  check_status "mirror served" Relying_party.Fetched_mirror t.Relying_party.t_status;
  Alcotest.(check string) "channel names the mirror" "mirror:rsync://mirror/continental"
    t.Relying_party.t_channel;
  Alcotest.(check int) "mirror data is fresh" 0 (Relying_party.max_data_age r)

let test_rrdp_fallback () =
  let m = fresh_model () in
  let rp = rp_for m in
  let uri = continental_uri m in
  let endpoint = Pub_point.create ~uri:"https://rrdp/continental" ~addr:43 ~host_asn:99 in
  Universe.add_rrdp m.Model.universe ~of_uri:uri endpoint;
  Universe.refresh_rrdp m.Model.universe;
  let tr = Transport.instant () in
  Transport.set_fault tr ~uri Transport.Unreachable;
  let r = Relying_party.sync rp ~now:1 ~universe:m.Model.universe ~transport:tr () in
  let t = transfer_of r uri in
  check_status "rrdp served" Relying_party.Fetched_rrdp t.Relying_party.t_status;
  Alcotest.(check string) "channel names the endpoint" "rrdp:https://rrdp/continental"
    t.Relying_party.t_channel;
  Alcotest.(check int) "rrdp data is fresh" 0 (Relying_party.max_data_age r);
  (* VRP set identical to a live sync *)
  let rp2 = rp_for m in
  let r2 = Relying_party.sync rp2 ~now:1 ~universe:m.Model.universe () in
  Alcotest.(check (list string)) "same vrps as live"
    (List.map Rpki_core.Vrp.to_string r2.Relying_party.vrps)
    (List.map Rpki_core.Vrp.to_string r.Relying_party.vrps)

(* RRDP outranks the stale cache but mirrors outrank RRDP *)
let test_fallback_order () =
  let m = fresh_model () in
  let rp = rp_for m in
  let uri = continental_uri m in
  let mirror = Pub_point.create ~uri:"rsync://mirror/continental" ~addr:42 ~host_asn:99 in
  Universe.add_mirror m.Model.universe ~of_uri:uri mirror;
  Universe.refresh_mirrors m.Model.universe;
  let endpoint = Pub_point.create ~uri:"https://rrdp/continental" ~addr:43 ~host_asn:99 in
  Universe.add_rrdp m.Model.universe ~of_uri:uri endpoint;
  Universe.refresh_rrdp m.Model.universe;
  let tr = Transport.instant () in
  Transport.set_fault tr ~uri Transport.Unreachable;
  let r = Relying_party.sync rp ~now:1 ~universe:m.Model.universe ~transport:tr () in
  check_status "mirror first" Relying_party.Fetched_mirror
    (transfer_of r uri).Relying_party.t_status;
  (* mirror also dies: RRDP next *)
  Transport.set_fault tr ~uri:"rsync://mirror/continental" Transport.Unreachable;
  let r = Relying_party.sync rp ~now:2 ~universe:m.Model.universe ~transport:tr () in
  check_status "rrdp second" Relying_party.Fetched_rrdp
    (transfer_of r uri).Relying_party.t_status;
  (* RRDP endpoint dies too: stale cache last *)
  Transport.set_fault tr ~uri:"https://rrdp/continental" Transport.Unreachable;
  let r = Relying_party.sync rp ~now:3 ~universe:m.Model.universe ~transport:tr () in
  check_status "stale last" Relying_party.Stale_cache
    (transfer_of r uri).Relying_party.t_status

let test_budget_exhaustion_starves_later_points () =
  let m = fresh_model () in
  let rp = rp_for m in
  let uri = continental_uri m in
  let tr = Transport.instant () in
  (* seed the cache, then stall the victim under the naive policy *)
  ignore (Relying_party.sync rp ~now:1 ~universe:m.Model.universe ~transport:tr ());
  Transport.set_fault tr ~uri (Transport.Stalling 1_000_000);
  let r =
    Relying_party.sync rp ~now:2 ~universe:m.Model.universe ~transport:tr
      ~policy:Relying_party.naive_policy ()
  in
  Alcotest.(check bool) "budget exhausted" true r.Relying_party.budget_exhausted;
  Alcotest.(check int) "whole budget spent"
    Relying_party.naive_policy.Relying_party.sync_budget r.Relying_party.sync_elapsed;
  (* ETB sits after Continental in the walk and is perfectly healthy, yet
     the naive policy has no budget left for it — collateral starvation *)
  let etb_uri = Pub_point.uri (Authority.pub m.Model.etb) in
  check_status "healthy point starved" Relying_party.Stale_cache
    (transfer_of r etb_uri).Relying_party.t_status;
  (* the resilient policy confines the damage: ETB is fetched live *)
  let rp2 = rp_for m in
  ignore (Relying_party.sync rp2 ~now:1 ~universe:m.Model.universe ~transport:(Transport.instant ()) ());
  let r2 =
    Relying_party.sync rp2 ~now:2 ~universe:m.Model.universe ~transport:tr
      ~policy:Relying_party.resilient_policy ()
  in
  Alcotest.(check bool) "resilient keeps budget" false r2.Relying_party.budget_exhausted;
  check_status "healthy point still live" Relying_party.Fetched
    (transfer_of r2 etb_uri).Relying_party.t_status

let test_per_point_timeout_caps_spend () =
  let m = fresh_model () in
  let rp = rp_for m in
  let uri = continental_uri m in
  let tr = Transport.instant () in
  Transport.set_fault tr ~uri (Transport.Stalling 1_000_000);
  let policy =
    { Relying_party.default_policy with
      Relying_party.point_timeout = 7; retries = 0; backoff = 0 }
  in
  let r = Relying_party.sync rp ~now:1 ~universe:m.Model.universe ~transport:tr ~policy () in
  let t = transfer_of r uri in
  Alcotest.(check int) "one attempt, one timeout spent" 7 t.Relying_party.t_elapsed;
  Alcotest.(check int) "single attempt" 1 t.Relying_party.t_attempts

let test_policy_without_fallbacks () =
  let m = fresh_model () in
  let rp = rp_for m in
  let uri = continental_uri m in
  let mirror = Pub_point.create ~uri:"rsync://mirror/continental" ~addr:42 ~host_asn:99 in
  Universe.add_mirror m.Model.universe ~of_uri:uri mirror;
  Universe.refresh_mirrors m.Model.universe;
  let tr = Transport.instant () in
  Transport.set_fault tr ~uri Transport.Unreachable;
  (* no cache, mirrors disabled: the point is simply unavailable *)
  let policy =
    { Relying_party.default_policy with Relying_party.use_mirrors = false; use_rrdp = false }
  in
  let r = Relying_party.sync rp ~now:1 ~universe:m.Model.universe ~transport:tr ~policy () in
  check_status "unavailable" Relying_party.Unavailable
    (transfer_of r uri).Relying_party.t_status

(* --- the sim loop prices fetches off its own data plane --- *)

let test_loop_latency_circularity () =
  let sc = Rpki_sim.Loop.section6_scenario () in
  let sim = sc.Rpki_sim.Loop.sim in
  let r1 = Rpki_sim.Loop.step sim ~now:1 in
  (* before the first tick everything is priced at zero; afterwards each
     fetch costs per-hop time over the routed path *)
  Alcotest.(check int) "tick 1 free" 0 r1.Rpki_sim.Loop.sync_elapsed;
  let r2 = Rpki_sim.Loop.step sim ~now:2 in
  Alcotest.(check bool) "tick 2 pays per-hop latency" true
    (r2.Rpki_sim.Loop.sync_elapsed > 0);
  Alcotest.(check int) "healthy loop: no staleness" 0 r2.Rpki_sim.Loop.max_data_age;
  Alcotest.(check bool) "healthy loop: within budget" false
    r2.Rpki_sim.Loop.budget_exhausted

(* --- the Stall adversary --- *)

let test_stall_adversary () =
  let m = Lazy.force shared in
  let tr = Transport.instant () in
  let plan = Rpki_attack.Stall.plan_against ~victim:m.Model.sprint ~intensity:16 in
  (* Sprint's subtree: Sprint, ETB, Continental *)
  Alcotest.(check int) "subtree targets" 3
    (List.length (Rpki_attack.Stall.targets plan));
  Rpki_attack.Stall.apply plan tr;
  Alcotest.(check int) "faults installed" 3 (List.length (Transport.faults tr));
  (match Transport.fault_of tr ~uri:(Pub_point.uri (Authority.pub m.Model.etb)) with
  | Transport.Stalling 16 -> ()
  | _ -> Alcotest.fail "ETB should be stalling x16");
  (* lifting does not clobber a fault someone else re-marked *)
  Transport.set_fault tr ~uri:(Pub_point.uri (Authority.pub m.Model.etb)) Transport.Unreachable;
  Rpki_attack.Stall.lift plan tr;
  Alcotest.(check int) "lift leaves the re-marked fault" 1
    (List.length (Transport.faults tr));
  Alcotest.(check bool) "invalid plans rejected" true
    (try ignore (Rpki_attack.Stall.plan ~targets:[] ~intensity:2); false
     with Invalid_argument _ -> true)

(* --- staleness monitoring --- *)

let test_staleness_alerts () =
  let m = fresh_model () in
  let rp = rp_for m in
  let uri = continental_uri m in
  let tr = Transport.instant () in
  let r1 = Relying_party.sync rp ~now:1 ~universe:m.Model.universe ~transport:tr () in
  Alcotest.(check int) "healthy sync: no staleness alerts" 0
    (List.length (Rpki_monitor.Monitor.staleness_alerts r1));
  Transport.set_fault tr ~uri (Transport.Stalling 1_000_000);
  let r2 = Relying_party.sync rp ~now:3 ~universe:m.Model.universe ~transport:tr () in
  let alerts = Rpki_monitor.Monitor.staleness_alerts ~threshold:4 r2 in
  Alcotest.(check int) "stale within threshold: warning" 1
    (List.length (Rpki_monitor.Monitor.warnings alerts));
  Alcotest.(check int) "no alarm yet" 0
    (List.length (Rpki_monitor.Monitor.alarms alerts));
  let r3 = Relying_party.sync rp ~now:9 ~universe:m.Model.universe ~transport:tr () in
  let alerts3 = Rpki_monitor.Monitor.staleness_alerts ~threshold:4 r3 in
  Alcotest.(check bool) "past threshold: alarm" true
    (List.length (Rpki_monitor.Monitor.alarms alerts3) >= 1)

(* --- RTR surfaces data staleness next to its serial --- *)

let test_rtr_data_age () =
  let sc = Rpki_sim.Loop.section6_scenario () in
  let sim = sc.Rpki_sim.Loop.sim in
  ignore (Rpki_sim.Loop.step sim ~now:1);
  let cache = Rpki_sim.Loop.rtr_cache sim in
  Alcotest.(check int) "fresh data age" 0 (Rpki_rtr.Session.cache_data_age cache);
  (* stall every repository: the RP serves pure cache from now on *)
  List.iter
    (fun pp ->
      Rpki_repo.Transport.set_fault (Rpki_sim.Loop.transport sim)
        ~uri:(Pub_point.uri pp) Rpki_repo.Transport.Unreachable)
    (Universe.points sc.Rpki_sim.Loop.model.Model.universe);
  ignore (Rpki_sim.Loop.step sim ~now:5);
  Alcotest.(check int) "serial data now 4 ticks old" 4
    (Rpki_rtr.Session.cache_data_age cache)

let () =
  Alcotest.run "transport"
    [ ( "probe",
        [ Alcotest.test_case "pricing and timeouts" `Quick test_probe;
          Alcotest.test_case "stalling multiplies" `Quick test_probe_stalling_multiplies;
          Alcotest.test_case "fault table" `Quick test_fault_table;
          Alcotest.test_case "unroutable" `Quick test_unroutable ] );
      ( "fetch-policy",
        [ Alcotest.test_case "stall -> stale cache with age" `Quick test_stall_falls_back_to_stale;
          Alcotest.test_case "mirror fallback" `Quick test_mirror_fallback_over_transport;
          Alcotest.test_case "rrdp fallback" `Quick test_rrdp_fallback;
          Alcotest.test_case "fallback order" `Quick test_fallback_order;
          Alcotest.test_case "budget exhaustion starves" `Quick
            test_budget_exhaustion_starves_later_points;
          Alcotest.test_case "per-point timeout" `Quick test_per_point_timeout_caps_spend;
          Alcotest.test_case "fallbacks disabled" `Quick test_policy_without_fallbacks ] );
      ( "loop",
        [ Alcotest.test_case "latency from own data plane" `Quick test_loop_latency_circularity;
          Alcotest.test_case "rtr data age" `Quick test_rtr_data_age ] );
      ( "adversary",
        [ Alcotest.test_case "stall plan/apply/lift" `Quick test_stall_adversary;
          Alcotest.test_case "staleness alerts" `Quick test_staleness_alerts ] ) ]
